// Benchmarks for the NGSI context-broker hot path: concurrent attribute
// upserts and subscription fan-out under a realistic subscription load
// (1k subscriptions, the "thousands of devices per pilot" regime the paper
// names as the platform's scale challenge).
//
// The sweep compares the pre-refactor behavior (CompatLinearScan: every
// update evaluates all 1k subscriptions, one shard ≈ one global lock)
// against the sharded broker with the pattern-shape subscription index.
package swamp_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
)

const (
	benchEntities = 1024
	benchSubs     = 1000
)

func benchEntityID(i int) string { return fmt.Sprintf("urn:bench:probe:%04d", i) }

// newBenchBroker builds a broker carrying benchSubs subscriptions: mostly
// exact-id subscriptions spread over the entity space, plus a small mix of
// prefix and wildcard patterns like a real deployment (dashboards, fog
// sync, per-plot alarms).
func newBenchBroker(b *testing.B, cfg ngsi.BrokerConfig) *ngsi.Broker {
	b.Helper()
	ctx := ngsi.NewBroker(cfg)
	b.Cleanup(ctx.Close)
	var delivered atomic.Uint64
	handler := func(ngsi.Notification) { delivered.Add(1) }
	for i := 0; i < benchSubs; i++ {
		var pattern string
		switch {
		case i%100 == 0: // 1%: catch-all (platform telemetry, dashboards)
			pattern = "*"
		case i%20 == 0: // 5%: prefix (per-farm views)
			pattern = fmt.Sprintf("urn:bench:probe:%02d*", i%100)
		default: // exact-id (per-plot alarms)
			pattern = benchEntityID(i % benchEntities)
		}
		if _, err := ctx.Subscribe(ngsi.Subscription{
			EntityIDPattern: pattern,
			ConditionAttrs:  []string{"soilMoisture_d20"},
			Notifier:        ngsi.Callback(handler),
		}); err != nil {
			b.Fatal(err)
		}
	}
	return ctx
}

func benchConcurrentUpsert(b *testing.B, cfg ngsi.BrokerConfig) {
	ctx := newBenchBroker(b, cfg)
	attrs := map[string]ngsi.Attribute{
		"soilMoisture_d20": {Type: "Number", Value: 0.23},
		"soilMoisture_d50": {Type: "Number", Value: 0.29},
	}
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			id := benchEntityID(int(i % benchEntities))
			if err := ctx.UpdateAttrs(id, "SoilProbe", attrs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBrokerConcurrentUpsert measures concurrent UpdateAttrs
// throughput with 1k live subscriptions: the seed behavior (linear-scan,
// single shard), then the indexed broker at 1/4/8 shards.
func BenchmarkBrokerConcurrentUpsert(b *testing.B) {
	b.Run("legacy-scan-shards-1", func(b *testing.B) {
		b.SetParallelism(4)
		benchConcurrentUpsert(b, ngsi.BrokerConfig{QueueLen: 1024, Shards: 1, CompatLinearScan: true})
	})
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("indexed-shards-%d", shards), func(b *testing.B) {
			b.SetParallelism(4)
			benchConcurrentUpsert(b, ngsi.BrokerConfig{QueueLen: 1024, Shards: shards})
		})
	}
}

// BenchmarkBrokerNotifyFanout measures the cost of evaluating the
// subscription set for one update that matches a single exact-id
// subscription — the common case for per-plot alarms.
func BenchmarkBrokerNotifyFanout(b *testing.B) {
	run := func(b *testing.B, cfg ngsi.BrokerConfig) {
		ctx := newBenchBroker(b, cfg)
		attrs := map[string]ngsi.Attribute{
			"soilMoisture_d20": {Type: "Number", Value: 0.21},
		}
		id := benchEntityID(7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ctx.UpdateAttrs(id, "SoilProbe", attrs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("legacy-scan", func(b *testing.B) {
		run(b, ngsi.BrokerConfig{QueueLen: 1024, Shards: 1, CompatLinearScan: true})
	})
	b.Run("indexed", func(b *testing.B) {
		run(b, ngsi.BrokerConfig{QueueLen: 1024})
	})
}

// BenchmarkBrokerBatchUpdate measures the batched ingest path: 64 entities
// per BatchUpdate (one lock acquisition per touched shard) against the same
// 64 entities applied as individual UpdateAttrs calls.
func BenchmarkBrokerBatchUpdate(b *testing.B) {
	const batchSize = 64
	attrs := func() map[string]ngsi.Attribute {
		return map[string]ngsi.Attribute{
			"soilMoisture_d20": {Type: "Number", Value: 0.23},
		}
	}
	b.Run("individual", func(b *testing.B) {
		ctx := newBenchBroker(b, ngsi.BrokerConfig{QueueLen: 1024})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batchSize; j++ {
				if err := ctx.UpdateAttrs(benchEntityID((i*batchSize+j)%benchEntities), "SoilProbe", attrs()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		ctx := newBenchBroker(b, ngsi.BrokerConfig{QueueLen: 1024})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := make(map[string]ngsi.BatchEntry, batchSize)
			for j := 0; j < batchSize; j++ {
				batch[benchEntityID((i*batchSize+j)%benchEntities)] = ngsi.BatchEntry{Type: "SoilProbe", Attrs: attrs()}
			}
			if err := ctx.BatchUpdate(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBrokerFilteredQuery measures a selective northbound query
// (~1% of a 8k-entity farm matches, page of 10) three ways: the
// pre-redesign shape — clone the whole matching id/type space via
// QueryEntities, then filter and page in the caller — against the query
// engine's pushdown (filter + projection + limit evaluated inside the
// shard scans), ordered and unordered.
func BenchmarkBrokerFilteredQuery(b *testing.B) {
	const queryEntities = 8192
	seed := func(b *testing.B) *ngsi.Broker {
		b.Helper()
		ctx := ngsi.NewBroker(ngsi.BrokerConfig{})
		b.Cleanup(ctx.Close)
		for i := 0; i < queryEntities; i++ {
			err := ctx.UpsertEntity(&ngsi.Entity{
				ID: fmt.Sprintf("urn:bench:q:%05d", i), Type: "SoilProbe",
				Attrs: map[string]ngsi.Attribute{
					"soilMoisture_d20": {Type: "Number", Value: float64(i%1000) / 1000},
					"soilMoisture_d50": {Type: "Number", Value: float64(i%500) / 1000},
					"battery":          {Type: "Number", Value: 0.5},
					"zone":             {Type: "Text", Value: fmt.Sprintf("zone-%d", i%16)},
				},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		return ctx
	}
	conds, err := ngsi.ParseQ("soilMoisture_d20<0.01")
	if err != nil {
		b.Fatal(err)
	}
	const page = 10

	b.Run("filter-after-clone", func(b *testing.B) {
		ctx := seed(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			all := ctx.QueryEntities("*", "SoilProbe") // clones everything
			got := 0
			for _, e := range all {
				if v, ok := e.Attrs["soilMoisture_d20"].Float(); ok && v < 0.01 {
					if got++; got == page {
						break
					}
				}
			}
			if got != page {
				b.Fatalf("matched %d", got)
			}
		}
	})
	b.Run("pushdown-ordered", func(b *testing.B) {
		ctx := seed(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ctx.Query(ngsi.Query{
				Type: "SoilProbe", Conditions: conds,
				OrderBy: ngsi.OrderByID, Limit: page,
			})
			if err != nil || len(res.Entities) != page {
				b.Fatalf("%d entities, %v", len(res.Entities), err)
			}
		}
	})
	b.Run("pushdown-unordered", func(b *testing.B) {
		ctx := seed(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ctx.Query(ngsi.Query{
				Type: "SoilProbe", Conditions: conds, Limit: page,
			})
			if err != nil || len(res.Entities) != page {
				b.Fatalf("%d entities, %v", len(res.Entities), err)
			}
		}
	})
	b.Run("pushdown-projected", func(b *testing.B) {
		ctx := seed(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ctx.Query(ngsi.Query{
				Type: "SoilProbe", Conditions: conds,
				Attrs: []string{"soilMoisture_d20"}, OrderBy: ngsi.OrderByID, Limit: page,
			})
			if err != nil || len(res.Entities) != page {
				b.Fatalf("%d entities, %v", len(res.Entities), err)
			}
		}
	})
}

// BenchmarkBatcherIngest measures the full coalescing path: Add →
// interval flush → BatchUpdate, at the agent's default cadence.
func BenchmarkBatcherIngest(b *testing.B) {
	ctx := newBenchBroker(b, ngsi.BrokerConfig{QueueLen: 1024})
	ba, err := ngsi.NewBatcher(ngsi.BatcherConfig{
		Broker:        ctx,
		FlushInterval: 2 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(ba.Close)
	attrs := map[string]ngsi.Attribute{
		"soilMoisture_d20": {Type: "Number", Value: 0.23},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ba.Add(benchEntityID(i%benchEntities), "SoilProbe", attrs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ba.Flush()
}
