// Benchmarks regenerating every experiment in EXPERIMENTS.md. The paper
// itself publishes no tables or figures (it is a 2-page overview), so each
// benchmark reproduces one *claim* — see DESIGN.md for the mapping.
//
// Macro experiments (seasons, availability runs) execute once per
// iteration and export their headline numbers via b.ReportMetric, so
// `go test -bench . -benchmem` prints the full result set.
package swamp_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/anomaly"
	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/core"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/mqtt"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/security/identity"
	"github.com/swamp-project/swamp/internal/security/oauth"
	"github.com/swamp-project/swamp/internal/security/pep"
	"github.com/swamp-project/swamp/internal/security/secchan"
	"github.com/swamp-project/swamp/internal/simnet"
	"github.com/swamp-project/swamp/internal/tenant"
)

// --- EXP-A1: deployment configurations -----------------------------------

func BenchmarkDeploymentConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.ExpDeploymentConfigs(core.PilotIntercrop, 5, 2*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.DecideLatency.Microseconds()), fmt.Sprintf("%s-decide-us", r.Mode))
			b.ReportMetric(float64(r.SensorToStore.Microseconds()), fmt.Sprintf("%s-ingest-us", r.Mode))
		}
	}
}

// --- EXP-A2: availability through Internet disconnection ------------------

func BenchmarkFogOfflineAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.ExpFogOfflineAvailability(core.PilotIntercrop, 9)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			avail := 1 - float64(r.DecisionFailures)/float64(r.Cycles)
			b.ReportMetric(avail, fmt.Sprintf("%s-availability", r.Mode))
		}
	}
}

// --- EXP-P1: VRI vs uniform (MATOPIBA) ------------------------------------

func BenchmarkVRIvsUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.ExpVRIvsUniform(0.3, 42)
		if err != nil {
			b.Fatal(err)
		}
		vri, uni := rows[0], rows[1]
		b.ReportMetric(vri.WaterM3, "vri-water-m3")
		b.ReportMetric(uni.WaterM3, "uniform-water-m3")
		b.ReportMetric(vri.EnergyKWh, "vri-energy-kWh")
		b.ReportMetric(uni.EnergyKWh, "uniform-energy-kWh")
		b.ReportMetric(100*(1-vri.WaterM3/uni.WaterM3), "water-saving-pct")
		b.ReportMetric(vri.YieldIndex, "vri-yield")
		b.ReportMetric(uni.YieldIndex, "uniform-yield")
	}
}

// --- EXP-P2: canal allocation (CBEC) --------------------------------------

func BenchmarkCanalAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.ExpCanalAllocation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.WorstDelivery, r.Allocator+"-worst-m3")
			b.ReportMetric(r.TotalDelivered, r.Allocator+"-total-m3")
		}
	}
}

// --- EXP-P3: desalination-aware sourcing (Intercrop) -----------------------

func BenchmarkDesalinationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.ExpDesalinationCost(90, 5)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.CostEUR, r.Policy+"-cost-eur")
		}
		b.ReportMetric(100*(1-rows[0].CostEUR/rows[1].CostEUR), "cost-saving-pct")
	}
}

// --- EXP-P4: regulated deficit quality (Guaspari) --------------------------

func BenchmarkDeficitQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.ExpDeficitQuality(9)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.QualityIndex, r.Strategy+"-quality")
			b.ReportMetric(r.IrrigationMM, r.Strategy+"-water-mm")
		}
	}
}

// --- EXP-S1: DoS detection --------------------------------------------------

func BenchmarkDoSDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.ExpDoSDetection([]float64{5, 20, 100, 1000})
		for _, r := range rows {
			if r.Detected {
				b.ReportMetric(float64(r.DetectAfter), fmt.Sprintf("detect-msgs@%.0fps", r.AttackRate))
			}
		}
	}
}

// --- EXP-S2: sensor tamper detection ----------------------------------------

func BenchmarkTamperDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.ExpTamperDetection([]float64{0.03, 0.05, 0.1, 0.2}, 3)
		for _, r := range rows {
			if r.DetectedBy != "" {
				b.ReportMetric(float64(r.SamplesToFlag), fmt.Sprintf("detect-samples@bias%.2f", r.BiasMagnitude))
			}
		}
	}
}

// --- EXP-S3: Sybil detection -------------------------------------------------

func BenchmarkSybilDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := core.ExpSybilDetection([]int{3, 6, 12}, []float64{0})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.DetectedCount)/float64(r.SwarmSize), fmt.Sprintf("recall@swarm%d", r.SwarmSize))
		}
	}
}

// --- EXP-S4: cryptography overhead -------------------------------------------

func BenchmarkCryptoOverhead(b *testing.B) {
	for _, size := range []int{32, 256, 1024} {
		b.Run(fmt.Sprintf("seal-%dB", size), func(b *testing.B) {
			ring := secchan.NewKeyRing()
			if _, err := ring.Generate("dev"); err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, size)
			aad := []byte("ul/key/dev/attrs")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ring.Seal("dev", payload, aad); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("open-%dB", size), func(b *testing.B) {
			ring := secchan.NewKeyRing()
			if _, err := ring.Generate("dev"); err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, size)
			aad := []byte("ul/key/dev/attrs")
			env, err := ring.Seal("dev", payload, aad)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := ring.Open(env, aad); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("plaintext-baseline-256B", func(b *testing.B) {
		payload := make([]byte, 256)
		sink := 0
		for i := 0; i < b.N; i++ {
			sink += len(payload)
		}
		_ = sink
	})
}

// --- EXP-S5: OAuth + PEP pipeline ---------------------------------------------

func BenchmarkAuthPipeline(b *testing.B) {
	idm := identity.NewStore()
	if err := idm.Register(identity.Principal{
		ID: "farmer", Roles: []identity.Role{identity.RoleFarmer}, Owner: "farm1",
	}, "pw"); err != nil {
		b.Fatal(err)
	}
	tokens := oauth.NewServer(idm, oauth.Config{})
	pdp := pep.NewPDP(pep.Policy{
		ID: "own-data", Roles: []identity.Role{identity.RoleFarmer},
		Owners: []tenant.ID{"farm1"}, ResourcePattern: "ngsi:farm1:*", Effect: pep.Permit,
	})
	enforcer := pep.NewPEP(tokens, pdp, nil)

	b.Run("grant", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tokens.GrantPassword("farmer", "pw"); err != nil {
				b.Fatal(err)
			}
		}
	})
	tok, err := tokens.GrantPassword("farmer", "pw")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("authorize-permit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := enforcer.Authorize(tok.Value, "read", "ngsi:farm1:plot1"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("authorize-deny", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := enforcer.Authorize(tok.Value, "read", "ngsi:farm2:plot1"); err == nil {
				b.Fatal("cross-tenant access permitted")
			}
		}
	})
}

// --- EXP-S6: partial view vs baseline quality -----------------------------------

func BenchmarkPartialViewBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.ExpPartialViewBaseline([]int{1, 2, 4, 8, 16}, 5)
		for _, r := range rows {
			caught := 0.0
			if r.TamperCaught {
				caught = 1
			}
			b.ReportMetric(caught, fmt.Sprintf("tpr@%dprobes", r.Probes))
		}
	}
}

// --- Ablations -------------------------------------------------------------------

// BenchmarkQoSOnLossyLink quantifies the QoS 0 vs QoS 1 delivery tradeoff
// on a rural-grade lossy link (DESIGN.md ablation).
func BenchmarkQoSOnLossyLink(b *testing.B) {
	for _, qos := range []byte{0, 1} {
		b.Run(fmt.Sprintf("qos%d", qos), func(b *testing.B) {
			broker := mqtt.NewBroker(mqtt.BrokerConfig{RetryInterval: 20 * time.Millisecond})
			defer broker.Close()

			var delivered atomic.Int64
			subCT, subST, subClean, err := mqtt.NewSimPair(simnet.Config{}, "sub")
			if err != nil {
				b.Fatal(err)
			}
			defer subClean()
			broker.AttachTransport(subST)
			sub, err := mqtt.Connect(subCT, mqtt.ClientConfig{ClientID: "sub"})
			if err != nil {
				b.Fatal(err)
			}
			defer sub.Close()
			if _, err := sub.Subscribe("f/#", qos, func(mqtt.Message) { delivered.Add(1) }); err != nil {
				b.Fatal(err)
			}

			// 15% loss on the publisher link.
			var pub *mqtt.Client
			for attempt := 0; attempt < 20 && pub == nil; attempt++ {
				ct, st, cleanup, err := mqtt.NewSimPair(simnet.Config{LossProb: 0.15, Seed: int64(7 + attempt)}, "pub")
				if err != nil {
					b.Fatal(err)
				}
				broker.AttachTransport(st)
				c, err := mqtt.Connect(ct, mqtt.ClientConfig{
					ClientID: "pub", AckTimeout: 30 * time.Millisecond, PublishRetries: 20,
				})
				if err != nil {
					cleanup()
					continue
				}
				defer cleanup()
				defer c.Close()
				pub = c
			}
			if pub == nil {
				b.Fatal("could not connect over lossy link")
			}

			// Fixed batch per iteration, paced so queues don't overflow:
			// the ratio then reflects link loss + QoS, not benchmark
			// back-pressure.
			const batch = 500
			b.ResetTimer()
			sent := 0
			for i := 0; i < b.N; i++ {
				for m := 0; m < batch; m++ {
					if err := pub.Publish("f/x", []byte("m|0.2"), qos, false); err == nil {
						sent++
					}
					if qos == 0 && m%25 == 0 {
						time.Sleep(time.Millisecond) // pacing for fire-and-forget
					}
				}
			}
			b.StopTimer()
			time.Sleep(100 * time.Millisecond)
			if sent > 0 {
				b.ReportMetric(float64(delivered.Load())/float64(sent), "delivery-ratio")
			}
		})
	}
}

// BenchmarkSubscriptionThrottling measures notification suppression under
// NGSI throttling (DESIGN.md ablation).
func BenchmarkSubscriptionThrottling(b *testing.B) {
	for _, throttle := range []time.Duration{0, time.Second} {
		b.Run(fmt.Sprintf("throttle-%v", throttle), func(b *testing.B) {
			sim := clock.NewSim(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
			ctx := ngsi.NewBroker(ngsi.BrokerConfig{Clock: sim})
			defer ctx.Close()
			var delivered atomic.Int64
			if _, err := ctx.Subscribe(ngsi.Subscription{
				EntityIDPattern: "*",
				Throttling:      throttle,
				Notifier:        ngsi.Callback(func(ngsi.Notification) { delivered.Add(1) }),
			}); err != nil {
				b.Fatal(err)
			}
			// Fixed batch per iteration at 10 updates/sim-second, with
			// drain pauses so the dispatch queue reflects throttling, not
			// benchmark back-pressure.
			const batch = 1000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for u := 0; u < batch; u++ {
					err := ctx.UpdateAttrs("e1", "T", map[string]ngsi.Attribute{
						"v": {Type: "Number", Value: float64(u)},
					})
					if err != nil {
						b.Fatal(err)
					}
					if u%10 == 9 {
						sim.Advance(time.Second)
					}
					if u%100 == 99 {
						time.Sleep(time.Millisecond)
					}
				}
			}
			b.StopTimer()
			time.Sleep(50 * time.Millisecond)
			total := float64(b.N) * batch
			b.ReportMetric(float64(delivered.Load())/total, "notify-ratio")
		})
	}
}

// BenchmarkAnomalyWindow sweeps the DoS window length: longer windows
// smooth bursts but delay detection (DESIGN.md ablation).
func BenchmarkAnomalyWindow(b *testing.B) {
	for _, window := range []time.Duration{time.Second, 10 * time.Second, time.Minute} {
		b.Run(fmt.Sprintf("window-%v", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				det := anomaly.NewRateDetector(anomaly.RateConfig{Window: window, LimitPerSec: 10})
				at := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
				detectAfter := -1
				for m := 0; m < 50_000; m++ {
					if a := det.Observe("flood", at); a != nil {
						detectAfter = m + 1
						break
					}
					at = at.Add(10 * time.Millisecond) // 100 msg/s flood
				}
				if detectAfter > 0 {
					b.ReportMetric(float64(detectAfter), "detect-msgs")
				}
			}
		})
	}
}

// --- micro-benchmarks of the hot paths ------------------------------------------

func BenchmarkMQTTPublishRoundtrip(b *testing.B) {
	broker := mqtt.NewBroker(mqtt.BrokerConfig{})
	defer broker.Close()
	mk := func(id string) *mqtt.Client {
		ct, st, cleanup, err := mqtt.NewSimPair(simnet.Config{}, id)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(cleanup)
		broker.AttachTransport(st)
		c, err := mqtt.Connect(ct, mqtt.ClientConfig{ClientID: id})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		return c
	}
	pub := mk("pub")
	sub := mk("sub")
	got := make(chan struct{}, 256)
	if _, err := sub.Subscribe("bench/#", 1, func(mqtt.Message) { got <- struct{}{} }); err != nil {
		b.Fatal(err)
	}
	payload := []byte("m1|0.231|m2|0.275")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pub.Publish("bench/probe/attrs", payload, 1, false); err != nil {
			b.Fatal(err)
		}
		<-got
	}
}

func BenchmarkNGSIUpdate(b *testing.B) {
	ctx := ngsi.NewBroker(ngsi.BrokerConfig{})
	defer ctx.Close()
	attrs := map[string]ngsi.Attribute{
		"soilMoisture_d20": {Type: "Number", Value: 0.23},
		"soilMoisture_d50": {Type: "Number", Value: 0.29},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.UpdateAttrs("urn:bench:probe", "SoilProbe", attrs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnomalyOnReading(b *testing.B) {
	eng := anomaly.NewEngine(anomaly.EngineConfig{Sink: func(anomaly.Alert) {}})
	at := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.OnReading(model.Reading{
			Device: "p1", Quantity: model.QSoilMoisture,
			Value: 0.25 + float64(i%10)*0.001, At: at,
		})
	}
}

func BenchmarkSeasonSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := core.New(core.Options{Pilot: core.PilotIntercrop, Mode: core.ModeFarmFog, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := p.RunSeason(core.SeasonHooks{})
		if err != nil {
			p.Close()
			b.Fatal(err)
		}
		b.ReportMetric(rep.IrrigationMM, "irrigation-mm")
		b.ReportMetric(rep.YieldIndex, "yield-index")
		p.Close()
	}
}
