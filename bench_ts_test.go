// Benchmarks for the chunked, sharded time-series engine against the
// legacy flat-slice engine it replaced (DESIGN.md §3): aggregate pushdown
// vs copy-under-lock queries, and batched vs individual appends.
//
// The headline acceptance numbers: Summarize over a ≥100k-point series is
// expected ≥5× faster and allocation-free on sealed chunks
// (chunked-pushdown vs legacy-copy, compare ns/op and allocs/op).
package swamp_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/timeseries"
)

const tsBenchPoints = 100_000

var tsBenchT0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func tsBenchKey() timeseries.SeriesKey {
	return timeseries.SeriesKey{Device: "bench-probe", Quantity: "soilMoisture_d20"}
}

func fillChunked(b *testing.B, n int) *timeseries.Store {
	b.Helper()
	s := timeseries.New()
	k := tsBenchKey()
	for i := 0; i < n; i++ {
		if err := s.Append(k, timeseries.Point{
			At: tsBenchT0.Add(time.Duration(i) * time.Second), Value: 0.2 + float64(i%100)/1000,
		}); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func fillLegacy(b *testing.B, n int) *timeseries.LegacyStore {
	b.Helper()
	s := timeseries.NewLegacy(0)
	k := tsBenchKey()
	for i := 0; i < n; i++ {
		if err := s.Append(k, timeseries.Point{
			At: tsBenchT0.Add(time.Duration(i) * time.Second), Value: 0.2 + float64(i%100)/1000,
		}); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

// BenchmarkTSSummarize measures the aggregate query over a 100k-point
// series: the legacy engine copies the whole range under its lock; the
// chunked engine folds precomputed chunk summaries and scans at most two
// edge chunks in place.
func BenchmarkTSSummarize(b *testing.B) {
	k := tsBenchKey()
	from := tsBenchT0.Add(30 * time.Second)
	to := tsBenchT0.Add(time.Duration(tsBenchPoints-30) * time.Second)

	b.Run("legacy-copy", func(b *testing.B) {
		s := fillLegacy(b, tsBenchPoints)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if agg := s.Summarize(k, from, to); agg.Count == 0 {
				b.Fatal("empty aggregate")
			}
		}
	})
	b.Run("chunked-pushdown", func(b *testing.B) {
		s := fillChunked(b, tsBenchPoints)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if agg := s.Summarize(k, from, to); agg.Count == 0 {
				b.Fatal("empty aggregate")
			}
		}
	})
}

// BenchmarkTSDownsample measures windowed aggregation (the dashboard
// series query) over a 100k-point series at 1h windows.
func BenchmarkTSDownsample(b *testing.B) {
	k := tsBenchKey()
	from := tsBenchT0
	to := tsBenchT0.Add(time.Duration(tsBenchPoints) * time.Second)

	b.Run("legacy-copy", func(b *testing.B) {
		s := fillLegacy(b, tsBenchPoints)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if pts, err := s.Downsample(k, from, to, time.Hour); err != nil || len(pts) == 0 {
				b.Fatal(err)
			}
		}
	})
	b.Run("chunked-pushdown", func(b *testing.B) {
		s := fillChunked(b, tsBenchPoints)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if pts, err := s.Downsample(k, from, to, time.Hour); err != nil || len(pts) == 0 {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTSAppend measures the ingest path per point: individual appends
// (one shard lock each) vs AppendBatch (one shard lock per batch), spread
// over a fleet of devices the way the cloud ingestor sees them.
func BenchmarkTSAppend(b *testing.B) {
	const fleet = 512
	keys := make([]timeseries.SeriesKey, fleet)
	for i := range keys {
		keys[i] = timeseries.SeriesKey{Device: fmt.Sprintf("probe-%03d", i), Quantity: "soilMoisture_d20"}
	}

	b.Run("single", func(b *testing.B) {
		s := timeseries.New()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[i%fleet]
			p := timeseries.Point{At: tsBenchT0.Add(time.Duration(i/fleet) * time.Second), Value: 0.25}
			if err := s.Append(k, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-256", func(b *testing.B) {
		s := timeseries.New()
		batch := make([]timeseries.BatchPoint, 256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += len(batch) {
			for j := range batch {
				n := i + j
				batch[j] = timeseries.BatchPoint{
					Key:   keys[n%fleet],
					Point: timeseries.Point{At: tsBenchT0.Add(time.Duration(n/fleet) * time.Second), Value: 0.25},
				}
			}
			if accepted, rejected, err := s.AppendBatch(batch); accepted != len(batch) || rejected != 0 || err != nil {
				b.Fatalf("accepted %d rejected %d err %v", accepted, rejected, err)
			}
		}
	})
}

// BenchmarkTSConcurrentMixed drives appends and pushdown queries at the
// same time — the realistic telemetry-plane load where dashboards query
// while the fleet ingests.
func BenchmarkTSConcurrentMixed(b *testing.B) {
	s := fillChunked(b, tsBenchPoints)
	k := tsBenchKey()
	from, to := tsBenchT0, tsBenchT0.Add(time.Duration(tsBenchPoints)*time.Second)
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if i%4 == 0 {
				p := timeseries.Point{At: to.Add(time.Duration(seq.Add(1)) * time.Millisecond), Value: 0.25}
				if err := s.Append(k, p); err != nil {
					b.Fatal(err)
				}
			} else {
				if agg := s.Summarize(k, from, to); agg.Count == 0 {
					b.Fatal("empty aggregate")
				}
			}
		}
	})
}
