// Benchmarks for the MQTT transport-plane fan-out path: publish→deliver
// latency with and without a stalled subscriber attached, under the
// per-session queued delivery path and the pre-PR synchronous path
// (BrokerConfig.CompatSyncDelivery).
//
// The headline comparison is queued/stalled vs queued/baseline: with
// bounded per-session outbound queues, a subscriber wedged mid-write
// overflows only its own queue, so healthy subscribers' p50 latency stays
// within 2× of the no-stall baseline. On the synchronous path the same
// stall back-pressures the publisher's read goroutine and latency degrades
// with the stall delay (head-of-line blocking).
package swamp_test

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/mqtt"
	"github.com/swamp-project/swamp/internal/simnet"
)

// benchMQTTFanout measures per-message publish→deliver latency to a healthy
// subscriber while three more healthy subscribers (and optionally one
// stalled session) share the fan-out.
func benchMQTTFanout(b *testing.B, compat, stalled bool) {
	const stallDelay = 2 * time.Millisecond
	reg := metrics.NewRegistry()
	broker := mqtt.NewBroker(mqtt.BrokerConfig{
		Metrics:            reg,
		CompatSyncDelivery: compat,
		SessionQueueLen:    64,
	})
	defer broker.Close()

	if stalled {
		st := mqtt.NewSlowTransport(stallDelay)
		defer st.Close()
		broker.AttachTransport(st)
		st.Inject(&mqtt.Packet{Type: mqtt.CONNECT, ClientID: "stalled"})
		st.Inject(&mqtt.Packet{Type: mqtt.SUBSCRIBE, PacketID: 1,
			Filters: []mqtt.Subscription{{Filter: "fan/#"}}})
		deadline := time.Now().Add(2 * time.Second)
		for reg.Counter("mqtt.subscribe.ok").Value() == 0 {
			if time.Now().After(deadline) {
				b.Fatal("stalled session never subscribed")
			}
			time.Sleep(time.Millisecond)
		}
	}

	dial := func(id string) *mqtt.Client {
		ct, st, cleanup, err := mqtt.NewSimPair(simnet.Config{}, id)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(cleanup)
		broker.AttachTransport(st)
		c, err := mqtt.Connect(ct, mqtt.ClientConfig{ClientID: id})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		return c
	}

	// One probe subscriber reports latency; three more add fan-out weight.
	probe := dial("probe-sub")
	lat := make(chan time.Duration, 1)
	if _, err := probe.Subscribe("fan/#", 0, func(m mqtt.Message) {
		at := time.Unix(0, int64(binary.BigEndian.Uint64(m.Payload)))
		lat <- time.Since(at)
	}); err != nil {
		b.Fatal(err)
	}
	var sink atomic.Uint64
	for i := 0; i < 3; i++ {
		sub := dial(fmt.Sprintf("bulk-sub-%d", i))
		if _, err := sub.Subscribe("fan/#", 0, func(mqtt.Message) { sink.Add(1) }); err != nil {
			b.Fatal(err)
		}
	}
	pub := dial("pub")

	hist := metrics.NewHistogram()
	payload := make([]byte, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
		if err := pub.Publish("fan/x", payload, 0, false); err != nil {
			b.Fatal(err)
		}
		select {
		case d := <-lat:
			hist.Observe(d)
		case <-time.After(5 * time.Second):
			b.Fatal("probe subscriber starved")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(hist.Quantile(0.5))/1e3, "p50-µs")
	b.ReportMetric(float64(hist.Quantile(0.99))/1e3, "p99-µs")
}

// BenchmarkMQTTFanOutStalledSubscriber is the transport-plane acceptance
// sweep: compare p50-µs across the four cells. queued/stalled stays within
// 2× of queued/baseline; sync/stalled degrades by the stall delay.
func BenchmarkMQTTFanOutStalledSubscriber(b *testing.B) {
	b.Run("queued-baseline", func(b *testing.B) { benchMQTTFanout(b, false, false) })
	b.Run("queued-stalled", func(b *testing.B) { benchMQTTFanout(b, false, true) })
	b.Run("sync-baseline", func(b *testing.B) { benchMQTTFanout(b, true, false) })
	b.Run("sync-stalled", func(b *testing.B) { benchMQTTFanout(b, true, true) })
}

// BenchmarkMQTTAggregateFanOut measures raw fan-out throughput (messages ×
// subscribers per second) with no stall: the queued path's enqueue-only
// route() against the synchronous write loop.
func BenchmarkMQTTAggregateFanOut(b *testing.B) {
	run := func(b *testing.B, compat bool) {
		broker := mqtt.NewBroker(mqtt.BrokerConfig{CompatSyncDelivery: compat})
		defer broker.Close()
		const nSubs = 8
		var delivered atomic.Uint64
		for i := 0; i < nSubs; i++ {
			ct, st, cleanup, err := mqtt.NewSimPair(simnet.Config{QueueLen: 8192}, fmt.Sprintf("s%d", i))
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(cleanup)
			broker.AttachTransport(st)
			c, err := mqtt.Connect(ct, mqtt.ClientConfig{ClientID: fmt.Sprintf("s%d", i)})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			if _, err := c.Subscribe("agg/#", 1, func(mqtt.Message) { delivered.Add(1) }); err != nil {
				b.Fatal(err)
			}
		}
		ct, st, cleanup, err := mqtt.NewSimPair(simnet.Config{QueueLen: 8192}, "pub")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(cleanup)
		broker.AttachTransport(st)
		pub, err := mqtt.Connect(ct, mqtt.ClientConfig{ClientID: "pub"})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { pub.Close() })

		b.ResetTimer()
		// QoS 1 publishes are broker-acked, so the producer cannot outrun
		// the broker and the measured rate is real routed fan-out.
		for i := 0; i < b.N; i++ {
			if err := pub.Publish("agg/x", []byte("m|0.21"), 1, false); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(delivered.Load())/b.Elapsed().Seconds(), "deliveries/s")
	}
	b.Run("queued", func(b *testing.B) { run(b, false) })
	b.Run("sync", func(b *testing.B) { run(b, true) })
}
