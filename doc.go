// Package swamp is a from-scratch Go reproduction of the system described
// in "SWAMP: Smart Water Management Platform Overview and Security
// Challenges" (Kamienski et al., DSN-W 2018): a FIWARE-style IoT platform
// for precision irrigation — MQTT device transport, an NGSI context broker,
// an UltraLight IoT agent, OAuth2/PEP security enablers, payload
// cryptography, fog computing for offline availability, the four pilots
// (MATOPIBA VRI pivots, Guaspari deficit drip, Intercrop desalination-aware
// scheduling, CBEC canal distribution), and the behavioral-baseline anomaly
// detection the paper names as its central security challenge.
//
// Applications face the platform through the NGSI-v2 northbound HTTP
// API (internal/httpapi): GET /v2/entities with filtered queries (q=),
// attribute projection, ordering and pagination; subscription CRUD under
// /v2/subscriptions with webhook (HTTP POST) notifications; batch ingest
// via POST /v2/op/update; OAuth2 tokens at POST /oauth/token — every
// data route behind the PEP.
//
// State survives restarts through the durability plane (internal/wal): a
// segmented, group-committed write-ahead log plus point-in-time
// snapshots under the context broker and the time-series engine, with
// corruption-tolerant crash recovery on startup. Enable it with
// wal.dir / swampd -wal-dir (DESIGN.md §7 has the recovery protocol).
// New segments use the binary v2 record codec (per-segment string
// interning, delta-encoded telemetry timestamps); v1 JSON segments and
// snapshots replay forever.
//
// Every operational knob lives in one typed schema (internal/config),
// resolved in layers — declared defaults, then a -config file (TOML, or
// JSON by extension), then SWAMP_* environment variables, then
// explicitly set flags, last writer wins with per-knob provenance
// (swampd -config-check prints the resolved stack). The spellings are
// mechanical: knob timeseries.retention ⇔ flag -ts-retention ⇔ env
// SWAMP_TIMESERIES_RETENTION. core.Options is a compatibility shim
// derived from the schema via core.OptionsFromConfig. The knobs, per
// section (defaults in parentheses; (dyn) = reloadable at runtime via
// SIGHUP or POST /admin/reload, validate-then-swap — a bad file or a
// static-field change applies nothing and reports every violation):
//
//	server      listen (127.0.0.1:1883), http_listen (127.0.0.1:8026),
//	            pilot (matopiba), mode (farm-fog), interval (2s),
//	            sealed (false), ready_queue_watermark (100000)
//	log         level (info), format (text)
//	mqtt        session_queue (256, dyn), retry_interval (1s),
//	            flush_watermark (8192, dyn), route_cache (4096, dyn)
//	ngsi        shards (8), agent_batch_interval (2ms),
//	            fog_sync_batches (32)
//	timeseries  shards (8), chunk_size (512), retention (0s, dyn),
//	            eviction_interval (1m)
//	wal         dir (""), segment_bytes (8MiB), fsync_interval (0s),
//	            snapshot_interval (5m, dyn)
//	webhooks    workers (8, dyn), retry_backoff (250ms, dyn), queue (64)
//	security    audit_ring (4096), token_purge_interval (1m)
//	http        query_cap (1000, dyn), default_limit (100)
//	cluster     node_id (""), peers (""), listen (""), partitions (16),
//	            replicas (2), min_isr (1), ack_timeout (5s, dyn),
//	            max_ready_lag (100000, dyn)
//	tenant      enabled (false, dyn), default_msgs_per_sec (1000, dyn),
//	            default_bytes_per_sec (1MiB, dyn),
//	            default_inflight (64, dyn),
//	            default_subscriptions (32, dyn),
//	            default_webhook_share_pct (50, dyn), burst (2s, dyn),
//	            metrics_topk (8, dyn); per-tenant overrides in the
//	            [tenant.quotas] table (id = "msgs=...,bytes=..." spec)
//	sim         seed (1; swampd derives 0 from the clock),
//	            backhaul_latency (0s)
//
// swampd's operational surface (DESIGN.md §9): /healthz liveness,
// /readyz readiness (503 until WAL recovery completes or while the MQTT
// queue depth exceeds server.ready_queue_watermark), /metrics in
// Prometheus text exposition format with every knob exported as a
// config.<name> gauge, POST /admin/reload, structured log/slog logging,
// graceful drain on SIGINT/SIGTERM. examples/swampd.toml is a commented
// starting point.
//
// Setting cluster.node_id (with peers + listen) turns swampd into one
// node of a replicated cluster (internal/cluster, DESIGN.md §10):
// entities and series consistent-hash across nodes, leaders ship their
// committed WAL to followers over TCP (min_isr follower acks before a
// write is acknowledged), deposed leaders are epoch-fenced, and the
// northbound routes writes to the owning leader and scatter-gathers
// queries — the API is unchanged from a client's view. /readyz grows a
// cluster block (partitions led/followed, per-session lag) and 503s
// past cluster.max_ready_lag; /metrics exports the swamp_cluster_*
// gauges. The Dockerfile + docker-compose.yml stand up the 3-node
// reference topology, smoke-tested by scripts/cluster-drill.sh.
//
// With tenant.enabled, the admission plane (internal/tenant, DESIGN.md
// §11) enforces per-tenant token-bucket quotas at every ingress — MQTT
// publishes, HTTP API requests, fog sync — with a graduated shed ladder
// (telemetry sampling, delayed webhooks, HTTP 429 + Retry-After, MQTT
// disconnect last). The ops surface grows GET /admin/tenants and
// GET/PUT /admin/tenants/{id}/quota (validate-then-swap, like a
// reload), and /metrics exports the capped-cardinality swamp_tenant_*
// family. Deprecation note: tenancy used to ride untyped `owner string`
// fields; those are now tenant.ID throughout (ngsi.Subscription.Owner,
// identity.Principal.Owner, the cluster request metadata). JSON wire
// shapes are unchanged — subscription bodies still serialize the tenant
// under the "owner" key — but Go callers of the exported surfaces must
// use the typed ID.
//
// The MQTT broker's fan-out is zero-allocation in steady state: a
// copy-on-write subscription trie read through one atomic load, an
// epoch-validated topic→subscribers route cache, publishes encoded once
// into refcounted shared frames, and per-session writers that coalesce
// whole-queue drains into single buffered flushes (DESIGN.md §4).
//
// The northbound GET /v2/entities path memoizes rendered responses,
// invalidated by the context broker's mutation epoch (ngsi.Broker.Epoch);
// authorization always runs before a cached body is served.
//
// The implementation lives under internal/; see DESIGN.md for the system
// inventory, EXPERIMENTS.md for the derived experiment results, and
// bench_test.go in this directory for the harness that regenerates every
// experiment row.
package swamp
