// Package swamp is a from-scratch Go reproduction of the system described
// in "SWAMP: Smart Water Management Platform Overview and Security
// Challenges" (Kamienski et al., DSN-W 2018): a FIWARE-style IoT platform
// for precision irrigation — MQTT device transport, an NGSI context broker,
// an UltraLight IoT agent, OAuth2/PEP security enablers, payload
// cryptography, fog computing for offline availability, the four pilots
// (MATOPIBA VRI pivots, Guaspari deficit drip, Intercrop desalination-aware
// scheduling, CBEC canal distribution), and the behavioral-baseline anomaly
// detection the paper names as its central security challenge.
//
// Applications face the platform through the NGSI-v2 northbound HTTP
// API (internal/httpapi): GET /v2/entities with filtered queries (q=),
// attribute projection, ordering and pagination; subscription CRUD under
// /v2/subscriptions with webhook (HTTP POST) notifications; batch ingest
// via POST /v2/op/update; OAuth2 tokens at POST /oauth/token — every
// data route behind the PEP.
//
// State survives restarts through the durability plane (internal/wal): a
// segmented, group-committed write-ahead log plus point-in-time
// snapshots under the context broker and the time-series engine, with
// corruption-tolerant crash recovery on startup. Enable it with
// core.Options.WALDir / swampd -wal-dir; tune with -wal-segment-bytes,
// -wal-fsync-interval and -snapshot-interval (DESIGN.md §7 has the full
// knob table and the recovery protocol). New segments use the binary v2
// record codec (per-segment string interning, delta-encoded telemetry
// timestamps); v1 JSON segments and snapshots replay forever.
//
// Hot-path knobs (DESIGN.md §8 has the invariants):
//
//	core.Options.AuditRingSize      PEP audit ring capacity (default 4096;
//	                                overflow counts security.audit.dropped)
//	core.Options.TokenPurgeInterval token purge cadence (default 1m,
//	                                0 = default, negative disables)
//	core.Options.SecurityClock      clock driving token expiry and purge
//	                                (wall clock by default, Sim in tests)
//
// The MQTT broker's fan-out is zero-allocation in steady state: a
// copy-on-write subscription trie read through one atomic load, an
// epoch-validated topic→subscribers route cache, publishes encoded once
// into refcounted shared frames, and per-session writers that coalesce
// whole-queue drains into single buffered flushes (DESIGN.md §4):
//
//	core.Options.MQTTSessionQueue   per-session outbound queue bound
//	                                (default 256; swampd -mqtt-queue)
//	core.Options.MQTTRetryInterval  QoS 1 redelivery / keepalive cadence
//	                                (default 1s; swampd -mqtt-retry)
//	core.Options.MQTTFlushWatermark writer flush threshold in bytes
//	                                (default 8KiB, negative = per-packet
//	                                flush; swampd -mqtt-flush-watermark)
//	core.Options.MQTTRouteCache     route cache capacity (default 4096,
//	                                negative disables; swampd
//	                                -mqtt-route-cache)
//
// The northbound GET /v2/entities path memoizes rendered responses,
// invalidated by the context broker's mutation epoch (ngsi.Broker.Epoch);
// authorization always runs before a cached body is served.
//
// The implementation lives under internal/; see DESIGN.md for the system
// inventory, EXPERIMENTS.md for the derived experiment results, and
// bench_test.go in this directory for the harness that regenerates every
// experiment row.
package swamp
