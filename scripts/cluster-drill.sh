#!/bin/sh
# cluster-drill.sh — smoke drill against a running 3-node swampd cluster.
#
# Usage: cluster-drill.sh [host[:port]...]   (default: n1 n2 n3, port 8026)
#
# For each node: wait for /readyz to report 200, assert it leads at least
# one partition and exports the swamp_cluster_* gauges. Then, through the
# first node only, walk the authenticated northbound: OAuth
# client_credentials grant, scatter-gather entity list, and routed
# fetches of the pilot probe entities (which hash across all leaders).
#
# Exercised by `docker compose run --rm drill`; also runs against a
# hand-started local cluster, e.g.
#   scripts/cluster-drill.sh 127.0.0.1:8081 127.0.0.1:8082 127.0.0.1:8083
set -eu

NODES="${*:-n1 n2 n3}"
fail() { echo "drill: FAIL: $*" >&2; exit 1; }

for n in $NODES; do
  case "$n" in *:*) addr="$n" ;; *) addr="$n:8026" ;; esac

  echo "drill: waiting for $addr/readyz"
  ready=""
  for _ in $(seq 1 120); do
    if curl -fsS -o /tmp/readyz.json "http://$addr/readyz" 2>/dev/null; then
      ready=1
      break
    fi
    sleep 0.5
  done
  [ -n "$ready" ] || fail "$addr never became ready"

  led=$(grep -o '"partitions_led":[0-9]*' /tmp/readyz.json | head -1 | cut -d: -f2)
  [ "${led:-0}" -gt 0 ] || fail "$addr leads no partitions (readyz: $(cat /tmp/readyz.json))"
  grep -q '"max_lag"' /tmp/readyz.json || fail "$addr readyz has no cluster replication detail"

  curl -fsS "http://$addr/metrics" >/tmp/metrics.txt || fail "$addr /metrics unreachable"
  for g in swamp_cluster_role_leader swamp_cluster_partitions_led \
           swamp_cluster_replication_lag swamp_cluster_sessions; do
    grep -q "^$g" /tmp/metrics.txt || fail "$addr missing gauge $g"
  done
  echo "drill: $addr ready, leads $led partitions"
done

set -- $NODES
case "$1" in *:*) api="$1" ;; *) api="$1:8026" ;; esac

echo "drill: authenticating against $api"
tok=$(curl -fsS -X POST "http://$api/oauth/token" \
  -d grant_type=client_credentials -d client_id=svc-irrigation -d client_secret=svc-secret |
  grep -o '"access_token":"[^"]*"' | cut -d'"' -f4)
[ -n "$tok" ] || fail "token grant returned no access_token"

# Scatter-gather list: must fan out across every node and return entities.
curl -fsS -H "Authorization: Bearer $tok" \
  "http://$api/v2/entities?limit=5" >/tmp/entities.json || fail "entity list failed"
grep -q '"id"' /tmp/entities.json || fail "entity list came back empty"

# Routed fetches: the probe ids hash across the partition ring, so a 200
# for each through one node proves cross-node request routing.
for i in 00 01 02 03; do
  curl -fsS -o /dev/null -H "Authorization: Bearer $tok" \
    "http://$api/v2/entities/urn:swamp:matopiba:probe:$i" ||
    fail "routed fetch of probe:$i via $api failed"
done

echo "drill: PASS — $# nodes ready, cluster gauges present, auth + scatter-gather + routed reads OK"
