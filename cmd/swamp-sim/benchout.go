package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// benchJSONPath is the -benchjson flag: when non-empty, each bench
// harness writes its headline numbers there as machine-readable JSON so
// CI's regression guard (cmd/benchguard) can compare them against the
// committed BENCH_<name>.json baselines.
var benchJSONPath string

// benchReport is the BENCH_<name>.json shape. Metric key suffixes encode
// the comparison direction for the guard: `_per_s` and `_x` are
// higher-is-better, `_us` and `_ms` lower-is-better; anything else is
// informational only.
type benchReport struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// writeBenchJSON emits the report when -benchjson is set.
func writeBenchJSON(name string, metrics map[string]float64) error {
	if benchJSONPath == "" {
		return nil
	}
	if dir := filepath.Dir(benchJSONPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(benchReport{Name: name, Metrics: metrics}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchJSONPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench json: wrote %s\n", benchJSONPath)
	return nil
}
