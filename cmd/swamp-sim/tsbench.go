package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/timeseries"
)

// tsBenchConfig parameterizes the telemetry-plane stress run: how many
// simulated device series feed the store, how hard, and through which
// engine.
type tsBenchConfig struct {
	Devices   int           // distinct devices (each contributes 2 series)
	Points    int           // total points appended
	Workers   int           // concurrent writer goroutines
	Batch     int           // points per AppendBatch; 1 = individual Append
	Queries   int           // Summarize+Downsample queries after the load
	Shards    int           // store shards (0 = default)
	ChunkSize int           // points per sealed chunk (0 = default)
	Window    time.Duration // downsample window for the query phase
	Legacy    bool          // drive the legacy flat-slice engine instead
}

// tsAppender abstracts the two engines for the bench loop.
type tsAppender interface {
	Append(timeseries.SeriesKey, timeseries.Point) error
	Summarize(timeseries.SeriesKey, time.Time, time.Time) timeseries.Aggregate
	Downsample(timeseries.SeriesKey, time.Time, time.Time, time.Duration) ([]timeseries.Point, error)
}

// runTSBench drives the chunked time-series engine the way a fleet-scale
// deployment would: Workers concurrent ingest paths appending Points
// samples across Devices×2 series (mostly in-order, with occasional
// backfill), then Queries aggregate queries over the loaded data. With
// -tslegacy the same load runs against the pre-chunking engine for
// comparison.
func runTSBench(cfg tsBenchConfig) error {
	if cfg.Devices <= 0 || cfg.Points <= 0 || cfg.Workers <= 0 || cfg.Batch <= 0 {
		return fmt.Errorf("tsbench: devices, points, workers and batch must be positive")
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Hour
	}

	var store *timeseries.Store
	var engine tsAppender
	if cfg.Legacy {
		engine = timeseries.NewLegacy(0)
	} else {
		store = timeseries.New(
			timeseries.WithShards(cfg.Shards),
			timeseries.WithChunkSize(cfg.ChunkSize),
		)
		defer store.Close()
		engine = store
	}

	name := "chunked"
	batchLabel := fmt.Sprintf("batch %d", cfg.Batch)
	if cfg.Legacy {
		name = "legacy"
		// The legacy engine has no batched append path; don't let the
		// header imply a like-for-like batching comparison.
		batchLabel = "unbatched (legacy has no AppendBatch)"
	}
	fmt.Printf("tsbench(%s): %d devices (%d series), %d points, %d workers, %s\n",
		name, cfg.Devices, 2*cfg.Devices, cfg.Points, cfg.Workers, batchLabel)

	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	// Precompute device ids: a fmt.Sprintf per generated point would cost
	// about as much as the append being measured.
	deviceIDs := make([]string, cfg.Devices)
	for i := range deviceIDs {
		deviceIDs[i] = fmt.Sprintf("urn:sim:probe:%06d", i)
	}
	mkPoint := func(i int) (timeseries.SeriesKey, timeseries.Point) {
		dev := i % cfg.Devices
		quantity := "soilMoisture_d20"
		if (i/cfg.Devices)%2 == 1 { // alternate per sweep so every device gets both series
			quantity = "soilMoisture_d50"
		}
		at := base.Add(time.Duration(i/cfg.Devices) * time.Second)
		if i%97 == 0 { // occasional late arrival exercising the backfill path
			at = at.Add(-time.Minute)
		}
		return timeseries.SeriesKey{Device: deviceIDs[dev], Quantity: quantity},
			timeseries.Point{At: at, Value: 0.20 + float64(i%100)/1000}
	}

	// --- append phase ---
	var next atomic.Uint64
	var appended atomic.Uint64
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]timeseries.BatchPoint, 0, cfg.Batch)
			for {
				batch = batch[:0]
				for len(batch) < cfg.Batch {
					i := int(next.Add(1)) - 1
					if i >= cfg.Points {
						break
					}
					k, p := mkPoint(i)
					batch = append(batch, timeseries.BatchPoint{Key: k, Point: p})
				}
				if len(batch) == 0 {
					return
				}
				if store != nil && cfg.Batch > 1 {
					accepted, rejected, err := store.AppendBatch(batch)
					if err != nil {
						errs <- err
						return
					}
					if rejected > 0 {
						errs <- fmt.Errorf("tsbench: %d points rejected", rejected)
						return
					}
					appended.Add(uint64(accepted))
				} else {
					for _, bp := range batch {
						if err := engine.Append(bp.Key, bp.Point); err != nil {
							errs <- err
							return
						}
					}
					appended.Add(uint64(len(batch)))
				}
			}
		}()
	}
	wg.Wait()
	appendElapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}
	fmt.Printf("appended %d points in %v  (%.0f points/s)\n",
		appended.Load(), appendElapsed.Round(time.Millisecond),
		float64(appended.Load())/appendElapsed.Seconds())

	benchMetrics := map[string]float64{
		"append_points_per_s": float64(appended.Load()) / appendElapsed.Seconds(),
	}

	// --- query phase ---
	if cfg.Queries > 0 {
		from := base.Add(-time.Hour)
		to := base.Add(time.Duration(cfg.Points/cfg.Devices+3600) * time.Second)
		var totalCount atomic.Uint64 // consumed so the queries cannot be elided
		start = time.Now()
		var qwg sync.WaitGroup
		perWorker := cfg.Queries / cfg.Workers
		for w := 0; w < cfg.Workers; w++ {
			n := perWorker
			if w < cfg.Queries%cfg.Workers {
				n++
			}
			qwg.Add(1)
			go func(w, n int) {
				defer qwg.Done()
				for q := 0; q < n; q++ {
					k := timeseries.SeriesKey{Device: deviceIDs[(w+q)%cfg.Devices], Quantity: "soilMoisture_d20"}
					agg := engine.Summarize(k, from, to)
					totalCount.Add(uint64(agg.Count))
					if pts, err := engine.Downsample(k, from, to, cfg.Window); err == nil {
						totalCount.Add(uint64(len(pts)))
					}
				}
			}(w, n)
		}
		qwg.Wait()
		queryElapsed := time.Since(start)
		fmt.Printf("ran %d summarize+downsample query pairs in %v  (%.0f queries/s, %d points touched)\n",
			cfg.Queries, queryElapsed.Round(time.Millisecond),
			float64(cfg.Queries)/queryElapsed.Seconds(), totalCount.Load())
		benchMetrics["queries_per_s"] = float64(cfg.Queries) / queryElapsed.Seconds()
	}

	if store != nil {
		st := store.Stats()
		fmt.Printf("series=%d sealed-chunks=%d points=%d shards=%d\n",
			st.Series, st.SealedChunks, st.Points, store.ShardCount())
	}
	return writeBenchJSON("tsbench", benchMetrics)
}
