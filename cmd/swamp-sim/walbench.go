package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/core"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
	"github.com/swamp-project/swamp/internal/wal"
)

// walBenchConfig parameterizes the durability-plane stress run.
type walBenchConfig struct {
	Dir      string        // WAL directory (empty = a temp dir, bench mode only)
	Points   int           // total telemetry points appended in bench mode
	Batch    int           // points per record / per acked ingest batch
	Workers  int           // concurrent appenders (group commit coalesces across them)
	Devices  int           // distinct devices in ingest mode
	Ingest   bool          // crash-harness producer: sustained acked ingest + manifest
	Verify   bool          // crash-harness checker: recover and compare to manifest
	Manifest string        // manifest path for Ingest/Verify
	SnapIntv time.Duration // snapshot cadence during ingest (0 = 2s)
}

// walManifest is the crash harness contract: a lower bound on the writes
// that were acknowledged (journaled + fsynced) before the kill. The
// producer updates it only after acks; the checker asserts recovery
// yields at least these counts.
type walManifest struct {
	Entities int `json:"entities"`
	Points   int `json:"points"`
}

func runWALBench(cfg walBenchConfig) error {
	switch {
	case cfg.Ingest && cfg.Verify:
		return fmt.Errorf("walbench: -walingest and -walverify are exclusive")
	case cfg.Ingest:
		return walIngest(cfg)
	case cfg.Verify:
		return walVerify(cfg)
	default:
		return walThroughput(cfg)
	}
}

// walThroughput measures (a) group-committed append throughput vs the
// fsync-per-record baseline and (b) recovery time vs store size.
func walThroughput(cfg walBenchConfig) error {
	if cfg.Points <= 0 || cfg.Batch <= 0 || cfg.Workers <= 0 {
		return fmt.Errorf("walbench: points, batch and workers must be positive")
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "walbench-"); err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	records := cfg.Points / cfg.Batch
	if records == 0 {
		records = 1
	}
	fmt.Printf("walbench: %d records × %d points, %d workers\n", records, cfg.Batch, cfg.Workers)

	// --- phase 0: pure codec, no I/O — isolates the record encoding from
	// the fsync-bound append path so a codec regression is visible even
	// when appends are disk-limited ---
	encPerSec, decPerSec, err := walCodecRun(records, cfg.Batch)
	if err != nil {
		return err
	}
	fmt.Printf("codec encode   %8.0f points/s\n", encPerSec)
	fmt.Printf("codec decode   %8.0f points/s\n", decPerSec)

	// --- phase 1: group-committed appends ---
	groupedDir := filepath.Join(dir, "grouped")
	groupedPerSec, err := walAppendRun(groupedDir, records, cfg.Batch, cfg.Workers, false)
	if err != nil {
		return err
	}
	fmt.Printf("group-commit   %8.0f appends/s  (%.0f points/s)\n",
		groupedPerSec, groupedPerSec*float64(cfg.Batch))

	// --- phase 2: fsync-per-record baseline (fewer records: every append
	// pays a full fsync) ---
	syncRecords := records / 10
	if syncRecords < 50 {
		syncRecords = 50
	}
	if syncRecords > 2000 {
		syncRecords = 2000
	}
	syncDir := filepath.Join(dir, "fsync-each")
	syncPerSec, err := walAppendRun(syncDir, syncRecords, cfg.Batch, cfg.Workers, true)
	if err != nil {
		return err
	}
	speedup := 0.0
	if syncPerSec > 0 {
		speedup = groupedPerSec / syncPerSec
	}
	fmt.Printf("fsync-each     %8.0f appends/s  (%d records)\n", syncPerSec, syncRecords)
	fmt.Printf("group-commit speedup: %.1f×\n", speedup)

	// --- phase 3: recovery time vs store size (both dirs, two sizes) ---
	recPerSec := 0.0
	for _, d := range []string{groupedDir, syncDir} {
		perSec, recs, pts, elapsed, err := walRecoverRun(d)
		if err != nil {
			return err
		}
		fmt.Printf("recovery       %d records (%d points) in %v  (%.0f records/s)\n",
			recs, pts, elapsed.Round(time.Millisecond), perSec)
		if d == groupedDir {
			recPerSec = perSec
		}
	}

	return writeBenchJSON("walbench", map[string]float64{
		"grouped_appends_per_s":     groupedPerSec,
		"grouped_points_per_s":      groupedPerSec * float64(cfg.Batch),
		"fsync_each_appends_per_s":  syncPerSec,
		"group_commit_speedup_x":    speedup,
		"recover_records_per_s":     recPerSec,
		"codec_encode_points_per_s": encPerSec,
		"codec_decode_points_per_s": decPerSec,
	})
}

// walCodecRun times telemetry record encode and decode in memory (no
// log, no fsync): the same payload shape the append phases write, so
// the per-point codec cost is measured on its own.
func walCodecRun(records, batch int) (encPerSec, decPerSec float64, err error) {
	if records > 50000 {
		records = 50000 // bounded: every encoded record is held for the decode pass
	}
	key := timeseries.SeriesKey{Device: "urn:sim:probe:000000", Quantity: "soilMoisture_d20"}
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	pts := make([]timeseries.BatchPoint, batch)
	encoded := make([]wal.Record, records)
	start := time.Now()
	for i := range encoded {
		for j := range pts {
			pts[j] = timeseries.BatchPoint{Key: key, Point: timeseries.Point{
				At:    base.Add(time.Duration(i*batch+j) * time.Millisecond),
				Value: 0.2 + float64(j%100)/1000,
			}}
		}
		if encoded[i], err = wal.EncodeTelemetry(pts); err != nil {
			return 0, 0, err
		}
	}
	encPerSec = float64(records*batch) / time.Since(start).Seconds()
	start = time.Now()
	for _, rec := range encoded {
		if _, err = wal.DecodeTelemetry(rec); err != nil {
			return 0, 0, err
		}
	}
	decPerSec = float64(records*batch) / time.Since(start).Seconds()
	return encPerSec, decPerSec, nil
}

// walAppendRun appends records of batch-sized telemetry payloads from
// workers goroutines and returns sustained acked appends/s.
func walAppendRun(dir string, records, batch, workers int, syncEvery bool) (float64, error) {
	m, err := wal.Open(wal.Config{Dir: dir, SyncEveryRecord: syncEvery})
	if err != nil {
		return 0, err
	}
	if _, err := m.Recover(func(wal.Record) error { return nil }); err != nil {
		m.Close()
		return 0, err
	}
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	var next atomic.Uint64
	errs := make(chan error, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := timeseries.SeriesKey{
				Device:   fmt.Sprintf("urn:sim:probe:%06d", w),
				Quantity: "soilMoisture_d20",
			}
			pts := make([]timeseries.BatchPoint, batch)
			for {
				i := int(next.Add(1)) - 1
				if i >= records {
					return
				}
				for j := range pts {
					pts[j] = timeseries.BatchPoint{Key: key, Point: timeseries.Point{
						At:    base.Add(time.Duration(i*batch+j) * time.Millisecond),
						Value: 0.2 + float64(j%100)/1000,
					}}
				}
				rec, err := wal.EncodeTelemetry(pts)
				if err != nil {
					errs <- err
					return
				}
				if err := m.AppendWait(rec); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := m.Close(); err != nil {
		return 0, err
	}
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	reg := m.Metrics()
	fsyncs := reg.Counter("wal.fsync").Value()
	recs := reg.Counter("wal.append.records").Value()
	if fsyncs > 0 {
		fmt.Printf("  [%s] %d records, %d fsyncs (%.1f records/fsync)\n",
			filepath.Base(dir), recs, fsyncs, float64(recs)/float64(fsyncs))
	}
	return float64(records) / elapsed.Seconds(), nil
}

// walRecoverRun replays a WAL directory and reports throughput.
func walRecoverRun(dir string) (perSec float64, recs, pts int, elapsed time.Duration, err error) {
	m, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer m.Close()
	start := time.Now()
	if _, err := m.Recover(func(rec wal.Record) error {
		recs++
		if rec.Type == wal.TypeTelemetry {
			batch, err := wal.DecodeTelemetry(rec)
			if err != nil {
				return err
			}
			pts += len(batch)
		}
		return nil
	}); err != nil {
		return 0, 0, 0, 0, err
	}
	elapsed = time.Since(start)
	if elapsed > 0 {
		perSec = float64(recs) / elapsed.Seconds()
	}
	return perSec, recs, pts, elapsed, nil
}

// walDurablePair builds the standalone broker+store+WAL composition the
// crash harness drives — the same core.OpenDurability wiring the full
// platform uses, minus the farm.
func walDurablePair(dir string, snapIntv time.Duration) (*ngsi.Broker, *timeseries.Store, *core.Durability, error) {
	reg := metrics.NewRegistry()
	broker := ngsi.NewBroker(ngsi.BrokerConfig{Metrics: reg})
	store := timeseries.New()
	d, err := core.OpenDurability(core.DurabilityConfig{
		Dir:              dir,
		SnapshotInterval: snapIntv,
		Metrics:          reg,
	}, broker, store, nil)
	if err != nil {
		broker.Close()
		store.Close()
		return nil, nil, nil, err
	}
	return broker, store, d, nil
}

// walIngest is the crash-harness producer: sustained acked entity +
// telemetry ingest with periodic snapshots, continuously publishing a
// manifest of acknowledged counts. CI SIGKILLs it mid-write and then
// runs walVerify against the same directory.
func walIngest(cfg walBenchConfig) error {
	if cfg.Dir == "" || cfg.Manifest == "" {
		return fmt.Errorf("walbench: -walingest needs -waldir and -walmanifest")
	}
	if cfg.Devices <= 0 || cfg.Batch <= 0 || cfg.Workers <= 0 {
		return fmt.Errorf("walbench: devices, batch and workers must be positive")
	}
	snapIntv := cfg.SnapIntv
	if snapIntv <= 0 {
		snapIntv = 2 * time.Second
	}
	if cfg.Workers > cfg.Devices {
		cfg.Workers = cfg.Devices // one device per worker minimum
	}
	broker, store, d, err := walDurablePair(cfg.Dir, snapIntv)
	if err != nil {
		return err
	}
	recoveredEntities := broker.EntityCount()
	recoveredPoints := store.Stats().Points
	fmt.Printf("walingest: dir=%s devices=%d batch=%d workers=%d snapshots every %v\n",
		cfg.Dir, cfg.Devices, cfg.Batch, cfg.Workers, snapIntv)
	fmt.Printf("walingest: recovered %d snapshot + %d tail records (entities=%d points=%d)\n",
		d.Recovered.SnapshotRecords, d.Recovered.TailRecords,
		recoveredEntities, recoveredPoints)

	// Each worker owns a disjoint slice of the device id space, so the
	// distinct-entity lower bound is exact per worker.
	type workerState struct {
		ackedIters atomic.Uint64
		rangeSize  int
	}
	states := make([]*workerState, cfg.Workers)
	per := cfg.Devices / cfg.Workers
	// Recovered state is durable too (it replays from the retained log
	// and is re-dumped by the next snapshot), so it seeds the manifest —
	// a second kill on a recovered directory must still account for the
	// first run's writes.
	var ackedPoints atomic.Uint64
	ackedPoints.Store(uint64(recoveredPoints))
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

	// Manifest publisher: post-ack counters only, written atomically.
	writeManifest := func() error {
		m := walManifest{Points: int(ackedPoints.Load())}
		for _, st := range states {
			if st == nil {
				continue
			}
			n := int(st.ackedIters.Load())
			if n > st.rangeSize {
				n = st.rangeSize
			}
			m.Entities += n
		}
		if m.Entities < recoveredEntities {
			m.Entities = recoveredEntities
		}
		data, err := json.Marshal(m)
		if err != nil {
			return err
		}
		tmp := cfg.Manifest + ".partial"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, cfg.Manifest)
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		lo := w * per
		hi := lo + per
		if w == cfg.Workers-1 {
			hi = cfg.Devices
		}
		st := &workerState{rangeSize: hi - lo}
		states[w] = st
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			pts := make([]timeseries.BatchPoint, cfg.Batch)
			for iter := 0; ; iter++ {
				dev := entityID(lo + iter%(hi-lo))
				if err := broker.UpdateAttrs(dev, "SoilProbe", simAttrs(iter)); err != nil {
					errs <- err
					return
				}
				// Devices are disjoint across workers and iter increases,
				// so timestamps are unique per series.
				key := timeseries.SeriesKey{Device: dev, Quantity: "soilMoisture_d20"}
				for j := range pts {
					pts[j] = timeseries.BatchPoint{Key: key, Point: timeseries.Point{
						At:    base.Add(time.Duration(iter*cfg.Batch+j) * time.Millisecond),
						Value: 0.2 + float64(j%100)/1000,
					}}
				}
				if _, _, err := store.AppendBatch(pts); err != nil {
					errs <- err
					return
				}
				// Both writes are acked (journaled + fsynced): expose them
				// to the manifest.
				st.ackedIters.Add(1)
				ackedPoints.Add(uint64(cfg.Batch))
			}
		}(w, lo, hi)
	}

	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	report := time.NewTicker(2 * time.Second)
	defer report.Stop()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case err := <-errs:
			return err
		case <-done:
			return nil
		case <-tick.C:
			if err := writeManifest(); err != nil {
				return err
			}
		case <-report.C:
			fmt.Printf("walingest: acked points=%d entities=%d\n",
				ackedPoints.Load(), broker.EntityCount())
		}
	}
}

// walVerify is the crash-harness checker: recover the directory into a
// fresh broker + store and assert at least every manifest-acknowledged
// write survived.
func walVerify(cfg walBenchConfig) error {
	if cfg.Dir == "" || cfg.Manifest == "" {
		return fmt.Errorf("walbench: -walverify needs -waldir and -walmanifest")
	}
	data, err := os.ReadFile(cfg.Manifest)
	if err != nil {
		return fmt.Errorf("walbench: manifest: %w", err)
	}
	var m walManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("walbench: manifest: %w", err)
	}
	start := time.Now()
	broker, store, d, err := walDurablePair(cfg.Dir, -1) // no periodic snapshots
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	defer func() {
		broker.Close()
		store.Close()
		_ = d.Close()
	}()
	entities := broker.EntityCount()
	points := store.Stats().Points
	fmt.Printf("walverify: recovered in %v — snapshot=%d tail=%d records, torn=%v\n",
		elapsed.Round(time.Millisecond),
		d.Recovered.SnapshotRecords, d.Recovered.TailRecords, d.Recovered.Torn)
	fmt.Printf("walverify: entities recovered=%d acked=%d | points recovered=%d acked=%d\n",
		entities, m.Entities, points, m.Points)
	if entities < m.Entities || points < m.Points {
		return fmt.Errorf("walbench: recovery lost acknowledged writes (entities %d<%d or points %d<%d)",
			entities, m.Entities, points, m.Points)
	}
	fmt.Println("walverify: OK — every acknowledged write recovered")
	return nil
}
