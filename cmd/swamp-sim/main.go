// Command swamp-sim runs SWAMP simulations from the command line: a full
// pilot season through the real platform pipeline, the complete derived
// experiment suite (the rows recorded in EXPERIMENTS.md), a context-plane
// stress run that drives the sharded NGSI broker at fleet scale, a
// telemetry-plane stress run that drives the chunked time-series engine
// with fleet-scale append and aggregate-query load, or a transport-plane
// stress run that fans MQTT publishes out to many subscribers with one
// deliberately stalled session attached (queued vs synchronous delivery).
//
// Usage:
//
//	swamp-sim -pilot matopiba -mode farm-fog        # one season
//	swamp-sim -experiments                          # all experiment tables
//	swamp-sim -ctxbench -devices 100000 -updates 1000000 -ctx-shards 16
//	swamp-sim -tsbench -devices 10000 -points 5000000 -batch 256
//	swamp-sim -tsbench -tslegacy ...                # same load, old engine
//	swamp-sim -mqttbench -pubs 4 -fansubs 8 -msgs 2000 -stall 1ms
//	swamp-sim -apibench -devices 10000 -apiqueries 10000 -apisubs 4 -apiupdates 2000
//	swamp-sim -walbench -walpoints 200000 -walworkers 256         # WAL throughput + recovery
//	swamp-sim -walbench -walingest -waldir D -walmanifest M       # crash-harness producer
//	swamp-sim -walbench -walverify -waldir D -walmanifest M       # crash-harness checker
//
// Platform knobs (-pilot, -mode, -sealed, -seed, -ctx-shards, -ts-shards,
// -ts-chunk, -mqtt-queue, ...) come from the shared config schema
// (internal/config), so swampd and swamp-sim accept identical spellings
// and SWAMP_* environment variables work here too. Bench-shape flags
// (-devices, -updates, ...) stay local to this command.
//
// Every bench accepts -benchjson FILE to emit its headline metrics for
// the CI regression guard (cmd/benchguard).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/swamp-project/swamp/internal/config"
	"github.com/swamp-project/swamp/internal/core"
)

func main() {
	var (
		experiments = flag.Bool("experiments", false, "run the full experiment suite instead of a season")

		ctxbench = flag.Bool("ctxbench", false, "stress the context broker instead of a season")
		devices  = flag.Int("devices", 100_000, "ctxbench/tsbench: simulated device count")
		updates  = flag.Int("updates", 1_000_000, "ctxbench: total attribute updates to apply")
		subs     = flag.Int("subs", 1000, "ctxbench: live subscriptions during the run")
		workers  = flag.Int("workers", 8, "ctxbench/tsbench: concurrent writer goroutines")
		batch    = flag.Int("batch", 64, "ctxbench/tsbench: entities (or points) per batch (1 = unbatched)")

		tsbench  = flag.Bool("tsbench", false, "stress the time-series engine instead of a season")
		points   = flag.Int("points", 5_000_000, "tsbench: total points to append")
		queries  = flag.Int("queries", 10_000, "tsbench: summarize+downsample query pairs after the load")
		qwindow  = flag.Duration("qwindow", time.Hour, "tsbench: downsample window for the query phase")
		tslegacy = flag.Bool("tslegacy", false, "tsbench: drive the legacy flat-slice engine for comparison")

		apibench   = flag.Bool("apibench", false, "stress the northbound HTTP API (filtered queries + webhook notifications)")
		apiqueries = flag.Int("apiqueries", 10_000, "apibench: filtered GET /v2/entities requests")
		apisubs    = flag.Int("apisubs", 4, "apibench: healthy webhook subscriptions (one stalled is added)")
		apiupdates = flag.Int("apiupdates", 2_000, "apibench: entity updates driving notifications")

		mqttbench = flag.Bool("mqttbench", false, "stress the MQTT broker fan-out instead of a season")
		pubs      = flag.Int("pubs", 4, "mqttbench: concurrent publisher clients")
		fansubs   = flag.Int("fansubs", 8, "mqttbench: healthy subscriber clients")
		msgs      = flag.Int("msgs", 2000, "mqttbench: total messages published")
		stall     = flag.Duration("stall", time.Millisecond, "mqttbench: per-write delay of the stalled session")

		walbench    = flag.Bool("walbench", false, "stress the durability plane (group-committed WAL appends + recovery)")
		waldir      = flag.String("waldir", "", "walbench: WAL directory (empty = temp dir; required for ingest/verify)")
		walpoints   = flag.Int("walpoints", 200_000, "walbench: total telemetry points appended")
		walbatch    = flag.Int("walbatch", 8, "walbench: telemetry points per record / per acked ingest batch")
		walworkers  = flag.Int("walworkers", 256, "walbench: concurrent appenders sharing each group commit")
		walingest   = flag.Bool("walingest", false, "walbench: crash-harness producer — sustained acked ingest until killed")
		walverify   = flag.Bool("walverify", false, "walbench: crash-harness checker — recover and compare to the manifest")
		walmanifest = flag.String("walmanifest", "", "walbench: acked-writes manifest path for ingest/verify")
		walsnap     = flag.Duration("walsnap", 0, "walbench: snapshot cadence during ingest (0 = 2s)")

		tenantbench = flag.Bool("tenantbench", false, "run the tenant-isolation drill (1 abusive tenant vs a polite fleet)")
		tbpolite    = flag.Int("tbpolite", 8, "tenantbench: polite tenants, each publishing at half quota")
		tbquota     = flag.Int("tbquota", 100, "tenantbench: per-tenant msgs/s quota")
		tbduration  = flag.Duration("tbduration", 4*time.Second, "tenantbench: length of each measured phase")

		clusterbench = flag.Bool("clusterbench", false, "measure cluster-plane ingest scaling and run the leader-kill drill")
		clnodes      = flag.Int("clnodes", 3, "clusterbench: cluster size for the replicated phases (min 3)")
		cldevices    = flag.Int("cldevices", 32, "clusterbench: devices per node (the cluster carries clnodes× the baseline population)")
		clpoints     = flag.Int("clpoints", 51_200, "clusterbench: telemetry points through the single-node baseline")
		clbatch      = flag.Int("clbatch", 32, "clusterbench: points per device emission")
		clinterval   = flag.Duration("clinterval", 60*time.Millisecond, "clusterbench: per-device sampling interval")

		benchjson    = flag.String("benchjson", "", "write the bench's headline metrics to this JSON file (BENCH_<name>.json shape)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memprofile   = flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
		blockprofile = flag.String("blockprofile", "", "write a goroutine-blocking profile at exit to this file (go tool pprof)")
	)
	overlay := config.RegisterFlags(flag.CommandLine)
	flag.Parse()
	benchJSONPath = *benchjson

	// Platform knobs resolve through the shared layered loader, so
	// -ctx-shards / SWAMP_TIMESERIES_SHARDS / etc. mean the same thing
	// here as in swampd. Benches read the knobs they care about below.
	cfg, _, err := (&config.Loader{Flags: overlay}).Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swamp-sim:", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "swamp-sim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set before dumping
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "swamp-sim: memprofile:", err)
			}
		}()
	}

	if *blockprofile != "" {
		runtime.SetBlockProfileRate(100_000) // sample blocking events ≥100µs
		path := *blockprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "swamp-sim: blockprofile:", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("block").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "swamp-sim: blockprofile:", err)
			}
		}()
	}

	switch {
	case *experiments:
		if err := runExperiments(); err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim:", err)
			os.Exit(1)
		}
	case *ctxbench:
		if err := runCtxBench(ctxBenchConfig{
			Devices: *devices, Updates: *updates, Shards: cfg.NGSI.Shards,
			Subs: *subs, Workers: *workers, Batch: *batch,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim:", err)
			os.Exit(1)
		}
	case *apibench:
		if err := runAPIBench(apiBenchConfig{
			Devices: *devices, Queries: *apiqueries, Workers: *workers,
			Subs: *apisubs, Updates: *apiupdates,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim:", err)
			os.Exit(1)
		}
	case *mqttbench:
		if err := runMQTTBench(mqttBenchConfig{
			Pubs: *pubs, Subs: *fansubs, Msgs: *msgs, Queue: cfg.MQTT.SessionQueue, Stall: *stall,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim:", err)
			os.Exit(1)
		}
	case *walbench:
		if err := runWALBench(walBenchConfig{
			Dir: *waldir, Points: *walpoints, Batch: *walbatch, Workers: *walworkers,
			Devices: *devices, Ingest: *walingest, Verify: *walverify,
			Manifest: *walmanifest, SnapIntv: *walsnap,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim:", err)
			os.Exit(1)
		}
	case *tenantbench:
		if err := runTenantBench(tenantBenchConfig{
			Polite: *tbpolite, QuotaMsg: *tbquota, Duration: *tbduration,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim:", err)
			os.Exit(1)
		}
	case *clusterbench:
		if err := runClusterBench(clusterBenchConfig{
			Nodes: *clnodes, Partitions: cfg.Cluster.Partitions,
			Devices: *cldevices, Points: *clpoints, Batch: *clbatch,
			Interval: *clinterval, AckTimeout: cfg.Cluster.AckTimeout,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim:", err)
			os.Exit(1)
		}
	case *tsbench:
		if err := runTSBench(tsBenchConfig{
			Devices: *devices, Points: *points, Workers: *workers, Batch: *batch,
			Queries: *queries, Shards: cfg.Timeseries.Shards, ChunkSize: cfg.Timeseries.ChunkSize,
			Window: *qwindow, Legacy: *tslegacy,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim:", err)
			os.Exit(1)
		}
	default:
		if err := runSeason(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "swamp-sim:", err)
			os.Exit(1)
		}
	}
}

func runSeason(cfg *config.Config) error {
	pilot, err := core.PilotByName(cfg.Server.Pilot)
	if err != nil {
		return err
	}
	mode, err := core.ParseMode(cfg.Server.Mode)
	if err != nil {
		return err
	}
	p, err := core.New(core.Options{Pilot: pilot, Mode: mode, Sealed: cfg.Server.Sealed, Seed: cfg.Sim.Seed})
	if err != nil {
		return err
	}
	defer p.Close()

	fmt.Printf("running %s season (%d days) in %s mode, sealed=%v ...\n",
		pilot.Name, pilot.Crop.SeasonDays(), mode, cfg.Server.Sealed)
	start := time.Now()
	rep, err := p.RunSeason(core.SeasonHooks{})
	if err != nil {
		return err
	}
	fmt.Printf("simulated in %v\n\n%s", time.Since(start).Round(time.Millisecond), rep)
	return nil
}

func runExperiments() error {
	fmt.Println("== EXP-A1: deployment configurations (Intercrop, 5 cycles, 2ms backhaul) ==")
	a1, err := core.ExpDeploymentConfigs(core.PilotIntercrop, 5, 2*time.Millisecond)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %14s %14s\n", "MODE", "INGEST", "DECIDE")
	for _, r := range a1 {
		fmt.Printf("%-12s %14v %14v\n", r.Mode, r.SensorToStore.Round(time.Microsecond), r.DecideLatency.Round(time.Microsecond))
	}

	fmt.Println("\n== EXP-A2: availability through Internet disconnection (middle third cut) ==")
	a2, err := core.ExpFogOfflineAvailability(core.PilotIntercrop, 9)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %10s %9s %7s\n", "MODE", "CYCLES", "PARTITION", "FAILURES", "SYNCED")
	for _, r := range a2 {
		fmt.Printf("%-12s %8d %10d %9d %7v\n", r.Mode, r.Cycles, r.PartitionCycles, r.DecisionFailures, r.BacklogSynced)
	}

	fmt.Println("\n== EXP-A3: mobile-fog (drone NDVI) value with sparse probes (MATOPIBA) ==")
	a3, err := core.ExpMobileFogValue(6, 7)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %8s %12s %14s %8s %9s\n", "MODE", "PROBES", "STRESS-DAYS", "IRRIGATION mm", "YIELD", "SURVEYS")
	for _, r := range a3 {
		fmt.Printf("%-12s %8d %12.2f %14.1f %8.3f %9d\n",
			r.Mode, r.Probes, r.StressDays, r.Irrigation, r.YieldIndex, r.SurveysDone)
	}

	fmt.Println("\n== EXP-P1: VRI vs uniform pivot (MATOPIBA, variability 0.3) ==")
	p1, err := core.ExpVRIvsUniform(0.3, 42)
	if err != nil {
		return err
	}
	printStrategies(p1)

	fmt.Println("\n== EXP-P2: canal allocation under scarcity (CBEC) ==")
	p2, err := core.ExpCanalAllocation()
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %12s %12s %8s\n", "ALLOCATOR", "TOTAL m3", "WORST m3", "MIN-SAT")
	for _, r := range p2 {
		fmt.Printf("%-14s %12.1f %12.1f %8.2f\n", r.Allocator, r.TotalDelivered, r.WorstDelivery, r.MinSatisfaction)
	}

	fmt.Println("\n== EXP-P3: desalination-aware sourcing, 90 days (Intercrop) ==")
	p3, err := core.ExpDesalinationCost(90, 5)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %12s %12s %12s\n", "POLICY", "WATER m3", "COST EUR", "SHORTFALL")
	for _, r := range p3 {
		fmt.Printf("%-14s %12.0f %12.0f %12.0f\n", r.Policy, r.WaterM3, r.CostEUR, r.Shortfall)
	}

	fmt.Println("\n== EXP-P4: regulated deficit vs full supply (Guaspari, dry window) ==")
	p4, err := core.ExpDeficitQuality(9)
	if err != nil {
		return err
	}
	printStrategies(p4)

	fmt.Println("\n== EXP-S1: DoS detection latency (limit 10 msg/s, 10s window) ==")
	s1 := core.ExpDoSDetection([]float64{5, 20, 100, 1000})
	fmt.Printf("%-12s %9s %13s\n", "ATTACK msg/s", "DETECTED", "AFTER (msgs)")
	for _, r := range s1 {
		fmt.Printf("%-12.0f %9v %13d\n", r.AttackRate, r.Detected, r.DetectAfter)
	}

	fmt.Println("\n== EXP-S2: sensor tamper detection (10 honest peers) ==")
	s2 := core.ExpTamperDetection([]float64{0.0, 0.03, 0.05, 0.1, 0.2}, 3)
	fmt.Printf("%-10s %-14s %14s\n", "BIAS", "DETECTED BY", "SAMPLES")
	for _, r := range s2 {
		by := r.DetectedBy
		if by == "" {
			by = "(none)"
		}
		fmt.Printf("%-10.2f %-14s %14d\n", r.BiasMagnitude, by, r.SamplesToFlag)
	}

	fmt.Println("\n== EXP-S3: Sybil swarm detection ==")
	s3, err := core.ExpSybilDetection([]int{3, 6, 12}, []float64{0, 0.02})
	if err != nil {
		return err
	}
	fmt.Printf("%-7s %-8s %10s %8s\n", "SWARM", "JITTER", "DETECTED", "FALSE+")
	for _, r := range s3 {
		fmt.Printf("%-7d %-8.3f %10d %8d\n", r.SwarmSize, r.JitterStd, r.DetectedCount, r.FalsePositives)
	}

	fmt.Println("\n== EXP-S6: behavioral baseline vs sensor density (partial view) ==")
	s6 := core.ExpPartialViewBaseline([]int{1, 2, 4, 8, 16}, 5)
	fmt.Printf("%-8s %10s %8s %8s\n", "PROBES", "COVERAGE", "CAUGHT", "FALSE+")
	for _, r := range s6 {
		fmt.Printf("%-8d %9.0f%% %8v %8v\n", r.Probes, r.CoveragePct, r.TamperCaught, r.FalsePositive)
	}
	fmt.Println("\n(EXP-S4 crypto overhead and EXP-S5 auth pipeline are timing benches:")
	fmt.Println(" go test -bench 'CryptoOverhead|AuthPipeline' -benchmem .)")
	return nil
}

func printStrategies(rows []core.StrategyRow) {
	fmt.Printf("%-18s %10s %10s %10s %8s %8s %8s\n",
		"STRATEGY", "WATER mm", "WATER m3", "ENERGY", "YIELD", "QUALITY", "STRESS")
	for _, r := range rows {
		fmt.Printf("%-18s %10.1f %10.0f %10.1f %8.3f %8.3f %8.1f\n",
			r.Strategy, r.IrrigationMM, r.WaterM3, r.EnergyKWh, r.YieldIndex, r.QualityIndex, r.StressDays)
	}
}
