package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
)

// ctxBenchConfig parameterizes the context-plane stress run: how many
// simulated devices feed the broker, how hard, and through which path.
type ctxBenchConfig struct {
	Devices int // distinct entities
	Updates int // total attribute updates
	Shards  int // broker shards (0 = default)
	Subs    int // live subscriptions
	Workers int // concurrent writers
	Batch   int // entities per BatchUpdate; 1 = individual UpdateAttrs
}

// runCtxBench drives the sharded broker the way a fleet-scale deployment
// would: Subs live subscriptions (exact/prefix/wildcard mix), Workers
// concurrent ingest paths, updates applied in batches. It prints
// throughput plus the broker's own shard/queue/batch counters.
func runCtxBench(cfg ctxBenchConfig) error {
	if cfg.Devices <= 0 || cfg.Updates <= 0 || cfg.Workers <= 0 || cfg.Batch <= 0 {
		return fmt.Errorf("ctxbench: devices, updates, workers and batch must be positive")
	}
	broker := ngsi.NewBroker(ngsi.BrokerConfig{Shards: cfg.Shards, QueueLen: 8192})
	defer broker.Close()

	var delivered atomic.Uint64
	handler := func(ngsi.Notification) { delivered.Add(1) }
	for i := 0; i < cfg.Subs; i++ {
		var pattern string
		switch {
		case i%100 == 0:
			pattern = "*"
		case i%20 == 0:
			pattern = fmt.Sprintf("urn:sim:dev:%03d*", i%1000)
		default:
			pattern = entityID(i % cfg.Devices)
		}
		if _, err := broker.Subscribe(ngsi.Subscription{
			EntityIDPattern: pattern,
			ConditionAttrs:  []string{"soilMoisture_d20"},
			Notifier:        ngsi.Callback(handler),
		}); err != nil {
			return err
		}
	}

	fmt.Printf("ctxbench: %d devices, %d updates, %d shards, %d subs, %d workers, batch %d\n",
		cfg.Devices, cfg.Updates, broker.ShardCount(), cfg.Subs, cfg.Workers, cfg.Batch)

	var next, applied atomic.Uint64 // applied counts distinct entity writes (duplicates in a batch coalesce)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		// Distribute Updates across workers without dropping the remainder.
		perWorker := cfg.Updates / cfg.Workers
		if w < cfg.Updates%cfg.Workers {
			perWorker++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for done := 0; done < perWorker; {
				n := cfg.Batch
				if rest := perWorker - done; n > rest {
					n = rest
				}
				if n == 1 {
					i := int(next.Add(1))
					if err := broker.UpdateAttrs(entityID(i%cfg.Devices), "SoilProbe", simAttrs(i)); err != nil {
						errs <- err
						return
					}
					applied.Add(1)
				} else {
					batch := make(map[string]ngsi.BatchEntry, n)
					for j := 0; j < n; j++ {
						i := int(next.Add(1))
						batch[entityID(i%cfg.Devices)] = ngsi.BatchEntry{Type: "SoilProbe", Attrs: simAttrs(i)}
					}
					if err := broker.BatchUpdate(batch); err != nil {
						errs <- err
						return
					}
					applied.Add(uint64(len(batch)))
				}
				done += n
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return err
	default:
	}

	generated, written := next.Load(), applied.Load()
	reg := broker.Metrics()
	fmt.Printf("applied %d entity writes (%d generated updates) in %v  (%.0f writes/s)\n",
		written, generated, elapsed.Round(time.Millisecond), float64(written)/elapsed.Seconds())
	fmt.Printf("entities=%d queued=%d dropped=%d delivered=%d queue-depth=%d\n",
		broker.EntityCount(),
		reg.Counter("ngsi.notify.queued").Value(),
		reg.Counter("ngsi.notify.dropped").Value(),
		reg.Counter("ngsi.notify.delivered").Value(),
		broker.QueueDepth())
	fmt.Printf("batch-calls=%d batch-entities=%d\n",
		reg.Counter("ngsi.batch.calls").Value(),
		reg.Counter("ngsi.batch.entities").Value())
	return writeBenchJSON("ctxbench", map[string]float64{
		"writes_per_s": float64(written) / elapsed.Seconds(),
	})
}

func entityID(i int) string { return fmt.Sprintf("urn:sim:dev:%07d", i) }

func simAttrs(i int) map[string]ngsi.Attribute {
	return map[string]ngsi.Attribute{
		"soilMoisture_d20": {Type: "Number", Value: 0.20 + float64(i%100)/1000},
		"soilMoisture_d50": {Type: "Number", Value: 0.28 + float64(i%50)/1000},
	}
}
