package main

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/mqtt"
	"github.com/swamp-project/swamp/internal/simnet"
)

// mqttBenchConfig parameterizes the transport-plane stress run: how many
// publishers fan into how many subscribers, with one deliberately stalled
// session attached to prove delivery isolation.
type mqttBenchConfig struct {
	Pubs  int           // concurrent publisher clients
	Subs  int           // healthy subscriber clients
	Msgs  int           // total messages published (split across publishers)
	Queue int           // per-session outbound queue bound (0 = default)
	Stall time.Duration // per-PUBLISH write delay of the stalled session
}

// mqttBenchResult is one mode's measurements.
type mqttBenchResult struct {
	name        string
	elapsed     time.Duration
	delivered   uint64
	expected    uint64
	p50, p99    time.Duration
	dropped     uint64
	parked      uint64
	flushes     uint64 // writer flush boundaries (mqtt.writer.flushes)
	flushedPkts uint64 // packets covered by those flushes
}

// flushBatch is the mean packets-per-flush — the coalescing win the writer's
// drain loop buys over per-packet flushing.
func (r mqttBenchResult) flushBatch() float64 {
	if r.flushes == 0 {
		return 0
	}
	return float64(r.flushedPkts) / float64(r.flushes)
}

func (r mqttBenchResult) throughput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.delivered) / r.elapsed.Seconds()
}

// runMQTTBench drives the broker fan-out path the way a pilot's telemetry
// storm would — Pubs publishers flooding one topic watched by Subs healthy
// subscribers plus one stalled session — first through the per-session
// queue path, then through the pre-PR synchronous path for comparison.
func runMQTTBench(cfg mqttBenchConfig) error {
	if cfg.Pubs <= 0 || cfg.Subs <= 0 || cfg.Msgs <= 0 {
		return fmt.Errorf("mqttbench: pubs, fansubs and msgs must be positive")
	}
	if cfg.Stall <= 0 {
		cfg.Stall = time.Millisecond
	}
	fmt.Printf("mqttbench: %d pubs × %d subs + 1 stalled (%v/write), %d msgs, queue %d\n",
		cfg.Pubs, cfg.Subs, cfg.Stall, cfg.Msgs, cfg.Queue)

	queued, err := mqttBenchRun(cfg, false)
	if err != nil {
		return err
	}
	syncRes, err := mqttBenchRun(cfg, true)
	if err != nil {
		return err
	}
	for _, r := range []mqttBenchResult{queued, syncRes} {
		fmt.Printf("%-12s delivered %d/%d in %v  (%.0f deliveries/s)  p50=%v p99=%v  dropped=%d parked=%d  flush_batch=%d/%d (%.1f pkts/flush)\n",
			r.name, r.delivered, r.expected, r.elapsed.Round(time.Millisecond), r.throughput(),
			r.p50.Round(time.Microsecond), r.p99.Round(time.Microsecond), r.dropped, r.parked,
			r.flushedPkts, r.flushes, r.flushBatch())
	}
	if syncRes.throughput() > 0 {
		fmt.Printf("fan-out speedup (queued vs synchronous): %.1f×\n",
			queued.throughput()/syncRes.throughput())
	}
	return writeBenchJSON("mqttbench", map[string]float64{
		"deliveries_per_s": queued.throughput(),
		"p50_us":           float64(queued.p50) / float64(time.Microsecond),
		"p99_us":           float64(queued.p99) / float64(time.Microsecond),
		"flush_batch_pkts": queued.flushBatch(),
	})
}

// mqttBenchRun executes one load: the queued path (compat=false) or the
// pre-PR synchronous fan-out (compat=true).
func mqttBenchRun(cfg mqttBenchConfig, compat bool) (mqttBenchResult, error) {
	name := "queued"
	if compat {
		name = "synchronous"
	}
	res := mqttBenchResult{name: name, expected: uint64(cfg.Msgs) * uint64(cfg.Subs)}

	reg := metrics.NewRegistry()
	broker := mqtt.NewBroker(mqtt.BrokerConfig{
		Metrics:            reg,
		SessionQueueLen:    cfg.Queue,
		CompatSyncDelivery: compat,
	})
	defer broker.Close()

	// The stalled session: subscribed to the fan topic, draining one
	// PUBLISH per Stall. On the synchronous path this back-pressures every
	// publisher; on the queued path it overflows only its own queue.
	stalled := mqtt.NewSlowTransport(cfg.Stall)
	defer stalled.Close()
	broker.AttachTransport(stalled)
	stalled.Inject(&mqtt.Packet{Type: mqtt.CONNECT, ClientID: "bench-stalled"})
	stalled.Inject(&mqtt.Packet{Type: mqtt.SUBSCRIBE, PacketID: 1,
		Filters: []mqtt.Subscription{{Filter: "bench/fan"}}})
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("mqtt.subscribe.ok").Value() == 0 {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("mqttbench: stalled session never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	dial := func(id string) (*mqtt.Client, error) {
		// Deep simnet queues so the measurement reflects broker fan-out,
		// not artificial link overflow.
		ct, st, cleanup, err := mqtt.NewSimPair(simnet.Config{QueueLen: cfg.Msgs + 64}, id)
		if err != nil {
			return nil, err
		}
		broker.AttachTransport(st)
		c, err := mqtt.Connect(ct, mqtt.ClientConfig{ClientID: id})
		if err != nil {
			cleanup()
			return nil, err
		}
		return c, nil
	}

	// Healthy subscribers take QoS 1 so an overflowing queue parks (and
	// later delivers) rather than drops; the stalled session subscribed at
	// QoS 0, so it sheds load without holding anything back.
	var delivered metrics.Counter
	hist := metrics.NewHistogram()
	for i := 0; i < cfg.Subs; i++ {
		sub, err := dial(fmt.Sprintf("bench-sub-%03d", i))
		if err != nil {
			return res, err
		}
		defer sub.Close()
		if _, err := sub.Subscribe("bench/fan", 1, func(m mqtt.Message) {
			if !m.Dup {
				if len(m.Payload) >= 8 {
					at := time.Unix(0, int64(binary.BigEndian.Uint64(m.Payload)))
					hist.Observe(time.Since(at))
				}
				delivered.Inc()
			}
		}); err != nil {
			return res, err
		}
	}

	pubs := make([]*mqtt.Client, cfg.Pubs)
	for i := range pubs {
		c, err := dial(fmt.Sprintf("bench-pub-%03d", i))
		if err != nil {
			return res, err
		}
		defer c.Close()
		pubs[i] = c
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Pubs)
	for w, c := range pubs {
		n := cfg.Msgs / cfg.Pubs
		if w < cfg.Msgs%cfg.Pubs {
			n++
		}
		wg.Add(1)
		go func(c *mqtt.Client, n int) {
			defer wg.Done()
			payload := make([]byte, 8)
			for i := 0; i < n; i++ {
				binary.BigEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
				// QoS 1: each publish is broker-acked, so the producers are
				// paced by broker ingest, not by the benchmark loop — the
				// measured rate is real routed fan-out, not queue filling.
				if err := c.Publish("bench/fan", payload, 1, false); err != nil {
					errs <- err
					return
				}
			}
		}(c, n)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return res, err
	default:
	}

	// Drain: wait until every expected delivery lands or progress stops
	// (the queued path may legitimately shed load on the stalled session
	// only — healthy subscribers receive everything).
	last, lastChange := uint64(0), time.Now()
	for {
		got := delivered.Value()
		if got >= res.expected {
			break
		}
		if got != last {
			last, lastChange = got, time.Now()
		} else if time.Since(lastChange) > time.Second {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	res.elapsed = time.Since(start)
	res.delivered = delivered.Value()
	res.p50 = hist.Quantile(0.5)
	res.p99 = hist.Quantile(0.99)
	res.dropped = reg.Counter("mqtt.queue.dropped").Value()
	res.parked = reg.Counter("mqtt.queue.parked").Value()
	res.flushes = reg.Counter("mqtt.writer.flushes").Value()
	res.flushedPkts = reg.Counter("mqtt.writer.flushed_packets").Value()
	return res, nil
}
