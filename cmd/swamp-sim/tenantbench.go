package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/httpapi"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/mqtt"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/security/identity"
	"github.com/swamp-project/swamp/internal/security/oauth"
	"github.com/swamp-project/swamp/internal/security/pep"
	"github.com/swamp-project/swamp/internal/simnet"
	"github.com/swamp-project/swamp/internal/tenant"
)

// tenantBenchConfig parameterizes the tenant-isolation drill: one
// abusive tenant hammering at a multiple of its quota next to a fleet of
// polite tenants staying inside theirs.
type tenantBenchConfig struct {
	Polite   int           // polite tenants, each publishing at half quota
	QuotaMsg int           // per-tenant msgs/s quota
	Duration time.Duration // length of each measured phase
}

// tenantBenchByteQuota is the per-tenant bytes/s quota. The abusive
// tenant publishes payloads several times this budget, so each charged
// message pins its byte bucket in deep debt — the sustained-reject
// window that walks the ladder all the way to disconnect. Kept small:
// the debt is the payload/quota ratio, not the absolute size, and big
// payloads just add GC pressure that pollutes the polite latency tail.
const tenantBenchByteQuota = 2048

// runTenantBench proves the admission plane's isolation invariant on the
// real broker + HTTP facade:
//
//  1. solo phase — the polite fleet runs alone; its publish→PUBACK p99
//     is the baseline;
//  2. contended phase — one abusive tenant joins at ~10× quota; the
//     polite p99 must stay ≤ 2× the solo baseline, no polite message may
//     be refused, and every polite PUBACK-acked publish must be
//     delivered (zero acked-write loss);
//  3. the abusive tenant must be visibly throttled: MQTT quota
//     disconnects (and CONNACK 0x97 refusals on reconnect) plus HTTP
//     429 + Retry-After on the API surface.
//
// The invariants are enforced here — a violated bound is a non-zero
// exit, not just a number in the report.
func runTenantBench(cfg tenantBenchConfig) error {
	if cfg.Polite <= 0 || cfg.QuotaMsg <= 0 || cfg.Duration <= 0 {
		return fmt.Errorf("tenantbench: polite, quota and duration must be positive")
	}
	fmt.Printf("tenantbench: %d polite tenants @ half quota, 1 abusive @ ~10×, quota %d msgs/s, %v per phase\n",
		cfg.Polite, cfg.QuotaMsg, cfg.Duration)

	solo, err := tenantBenchPhase(cfg, false)
	if err != nil {
		return err
	}
	cont, err := tenantBenchPhase(cfg, true)
	if err != nil {
		return err
	}

	fmt.Printf("%-10s polite p50=%v p99=%v acked=%d delivered=%d refused=%d\n",
		"solo", solo.politeP50.Round(time.Microsecond), solo.politeP99.Round(time.Microsecond),
		solo.politeAcked, solo.politeDelivered, solo.politeRefused)
	fmt.Printf("%-10s polite p50=%v p99=%v acked=%d delivered=%d refused=%d\n",
		"contended", cont.politeP50.Round(time.Microsecond), cont.politeP99.Round(time.Microsecond),
		cont.politeAcked, cont.politeDelivered, cont.politeRefused)
	fmt.Printf("abusive: sampled=%d throttled=%d disconnects=%d connect_refused=%d http_429=%d retry_after=%v\n",
		cont.abusiveSampled, cont.abusiveThrottled, cont.quotaDisconnects,
		cont.connectRefused, cont.http429, cont.sawRetryAfter)

	// Isolation invariants (the ISSUE's acceptance bounds).
	var violations []string
	if cont.politeRefused != 0 || solo.politeRefused != 0 {
		violations = append(violations, fmt.Sprintf("polite tenants refused %d+%d messages", solo.politeRefused, cont.politeRefused))
	}
	if solo.politeAcked != solo.politeDelivered || cont.politeAcked != cont.politeDelivered {
		violations = append(violations, fmt.Sprintf("acked-write loss: solo %d/%d, contended %d/%d delivered",
			solo.politeDelivered, solo.politeAcked, cont.politeDelivered, cont.politeAcked))
	}
	// 2× the solo baseline, with an absolute jitter grace: at µs-scale
	// p99s a pure ratio is dominated by scheduler noise (a single 500µs
	// preemption in the tail flips the verdict), so the bound never
	// tightens below solo+500µs. Real contention bleed-through is
	// milliseconds, not hundreds of µs — the grace cannot mask it.
	lim := 2 * solo.politeP99
	if floor := solo.politeP99 + 500*time.Microsecond; lim < floor {
		lim = floor
	}
	if cont.politeP99 > lim {
		violations = append(violations, fmt.Sprintf("polite p99 %v exceeds bound %v (2× solo baseline %v)", cont.politeP99, lim, solo.politeP99))
	}
	if cont.quotaDisconnects == 0 {
		violations = append(violations, "abusive tenant was never quota-disconnected from MQTT")
	}
	if cont.http429 == 0 || !cont.sawRetryAfter {
		violations = append(violations, "abusive tenant never saw HTTP 429 with Retry-After")
	}
	if len(violations) > 0 {
		return fmt.Errorf("tenantbench: isolation violated:\n  %s", strings.Join(violations, "\n  "))
	}
	fmt.Printf("isolation held: contended p99 %.2f× solo (bound 2×), zero polite refusals, zero acked loss\n",
		float64(cont.politeP99)/float64(solo.politeP99))

	headroom := 0.0
	if cont.politeP99 > 0 {
		headroom = float64(lim) / float64(cont.politeP99)
	}
	return writeBenchJSON("tenantbench", map[string]float64{
		// Absolute latencies are machine-dependent — informational only
		// (the _info suffix keeps benchguard from gating them, same as
		// clusterbench's ack latencies). The guarded metric is the
		// self-normalized isolation ratio: bound / contended p99, ≥1
		// means the bound held, higher is more headroom.
		"polite_solo_p99_us_info":      float64(solo.politeP99) / float64(time.Microsecond),
		"polite_contended_p99_us_info": float64(cont.politeP99) / float64(time.Microsecond),
		"isolation_headroom_x":         headroom,
		"abusive_throttled":    float64(cont.abusiveThrottled),
		"quota_disconnects":    float64(cont.quotaDisconnects),
		"http_429":             float64(cont.http429),
		"acked_loss":           float64((solo.politeAcked - solo.politeDelivered) + (cont.politeAcked - cont.politeDelivered)),
	})
}

// tenantBenchResult is one phase's measurements.
type tenantBenchResult struct {
	politeP50, politeP99 time.Duration
	politeAcked          uint64
	politeDelivered      uint64
	politeRefused        uint64
	abusiveSampled       uint64
	abusiveThrottled     uint64
	quotaDisconnects     uint64
	connectRefused       uint64
	http429              uint64
	sawRetryAfter        bool
}

func tenantBenchTenantID(n int) tenant.ID {
	return tenant.ID(fmt.Sprintf("farm-%02d", n))
}

// tenantBenchPhase stands up one broker + HTTP facade sharing one
// admission controller, runs the polite fleet (plus, when contended, the
// abusive tenant on both planes), and collects the phase's numbers.
func tenantBenchPhase(cfg tenantBenchConfig, contended bool) (tenantBenchResult, error) {
	var res tenantBenchResult
	reg := metrics.NewRegistry()

	adm := tenant.NewAdmission(tenant.Config{
		Enabled: true,
		Limits: tenant.Limits{Default: tenant.Quota{
			MsgsPerSec: cfg.QuotaMsg, BytesPerSec: tenantBenchByteQuota, Inflight: 4,
		}},
		Burst: time.Second,
	})
	broker := mqtt.NewBroker(mqtt.BrokerConfig{
		Metrics:   reg,
		Admission: adm,
		TenantFunc: func(_, username string) tenant.ID {
			if rest, ok := strings.CutPrefix(username, "tenant:"); ok {
				return tenant.ID(rest)
			}
			return tenant.None
		},
	})
	defer broker.Close()

	// The collector drains every tenant topic as internal (None-tenant)
	// traffic: per-topic delivery counts are the acked-loss check.
	delivered := make([]atomic.Uint64, cfg.Polite)
	collector, err := tenantBenchDial(broker, "bench-collector", "")
	if err != nil {
		return res, err
	}
	defer collector.Close()
	if _, err := collector.Subscribe("t/#", 1, func(m mqtt.Message) {
		if m.Dup {
			return
		}
		var n int
		if _, err := fmt.Sscanf(m.Topic, "t/farm-%02d", &n); err == nil && n < cfg.Polite {
			delivered[n].Add(1)
		}
	}); err != nil {
		return res, err
	}

	// HTTP facade: one polite principal and one abusive principal, owner
	// = tenant, with a permit-all write policy. The abusive tenant's API
	// hammer shares the same admission ledger as its MQTT hammer.
	idm := identity.NewStore()
	abusiveID := tenant.ID("abuser")
	if err := idm.Register(identity.Principal{
		ID: "bench-abuser", Roles: []identity.Role{identity.RoleFarmer}, Owner: abusiveID,
	}, "bench-secret"); err != nil {
		return res, err
	}
	tokens := oauth.NewServer(idm, oauth.Config{})
	pdp := pep.NewPDP(pep.Policy{
		ID: "bench-write", Roles: []identity.Role{identity.RoleFarmer},
		Actions: []string{"write"}, Effect: pep.Permit,
	})
	ctxBroker := ngsi.NewBroker(ngsi.BrokerConfig{Metrics: reg})
	defer ctxBroker.Close()
	api, err := httpapi.NewServer(httpapi.Config{
		Context: ctxBroker, Tokens: tokens, PEP: pep.NewPEP(tokens, pdp, reg),
		Metrics: reg, Admission: adm,
	})
	if err != nil {
		return res, err
	}
	defer api.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, api) }()
	base := "http://" + ln.Addr().String()

	hist := metrics.NewHistogram()
	var politeAcked, politeRefused atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Polite fleet: each tenant publishes QoS 1 at half its quota, paced.
	interval := time.Second / time.Duration(cfg.QuotaMsg/2)
	for p := 0; p < cfg.Polite; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := tenantBenchTenantID(p)
			c, err := tenantBenchDial(broker, fmt.Sprintf("polite-%02d", p), "tenant:"+string(id))
			if err != nil {
				politeRefused.Add(1) // a polite CONNECT refusal is itself a violation
				return
			}
			defer c.Close()
			topic := "t/" + string(id)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			payload := []byte(`{"moisture":0.42}`)
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					at := time.Now()
					if err := c.Publish(topic, payload, 1, false); err != nil {
						politeRefused.Add(1)
					} else {
						hist.Observe(time.Since(at))
						politeAcked.Add(1)
					}
				}
			}
		}(p)
	}

	var connectRefused, http429 atomic.Uint64
	var sawRetryAfter atomic.Bool
	if contended {
		// Abusive MQTT hammer: QoS 1 publishes paced at ~10× quota, a
		// short ack timeout so withheld PUBACKs (the Reject rung) don't
		// idle the loop, and a reconnect (with a small backoff) after
		// each quota disconnect — a misbehaving-but-real device, not a
		// connect storm.
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Oversized payloads: ~4× the byte budget per message, so the
			// byte bucket (not just the message bucket) goes into deep
			// debt and holds the reject window open.
			payload := make([]byte, 4*tenantBenchByteQuota)
			pace := time.NewTicker(time.Second / time.Duration(10*cfg.QuotaMsg))
			defer pace.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c, err := tenantBenchDialCfg(broker, mqtt.ClientConfig{
					ClientID: fmt.Sprintf("abuser-%d", i), Username: "tenant:" + string(abusiveID),
					AckTimeout: 5 * time.Millisecond, PublishRetries: 1,
				})
				if err != nil {
					connectRefused.Add(1)
					select {
					case <-stop:
						return
					case <-time.After(25 * time.Millisecond):
					}
					continue
				}
			hammer:
				for {
					select {
					case <-stop:
						c.Close()
						return
					case <-pace.C:
						// A publish error is either a withheld PUBACK (the
						// Reject rung — session still up, keep hammering;
						// that's what builds the disconnect streak) or the
						// broker dropping the session (ActDisconnected).
						if err := c.Publish("t/abuser", payload, 1, false); err != nil && c.Closed() {
							break hammer
						}
					}
				}
				c.Close()
				select {
				case <-stop:
					return
				case <-time.After(25 * time.Millisecond):
				}
			}
		}()

		// Abusive HTTP hammer: authenticated attribute updates, counting
		// 429s and checking Retry-After accompanies them.
		resp, err := http.PostForm(base+"/oauth/token", url.Values{
			"grant_type": {"password"}, "username": {"bench-abuser"}, "password": {"bench-secret"},
		})
		if err != nil {
			return res, err
		}
		var tok struct {
			AccessToken string `json:"access_token"`
		}
		err = json.NewDecoder(resp.Body).Decode(&tok)
		resp.Body.Close()
		if err != nil || tok.AccessToken == "" {
			return res, fmt.Errorf("tenantbench: token grant failed (%v)", err)
		}
		if err := ctxBroker.UpsertEntity(&ngsi.Entity{
			ID: "urn:bench:probe", Type: "SoilProbe",
			Attrs: map[string]ngsi.Attribute{"soilMoisture": {Type: "Number", Value: 0.5}},
		}); err != nil {
			return res, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: time.Second}
			body := `{"soilMoisture":{"type":"Number","value":0.9}}`
			pace := time.NewTicker(5 * time.Millisecond)
			defer pace.Stop()
			for {
				select {
				case <-stop:
					return
				case <-pace.C:
				}
				req, _ := http.NewRequest("POST", base+"/v2/entities/urn:bench:probe/attrs", strings.NewReader(body))
				req.Header.Set("Authorization", "Bearer "+tok.AccessToken)
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					continue
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					http429.Add(1)
					if resp.Header.Get("Retry-After") != "" {
						sawRetryAfter.Store(true)
					}
				}
				resp.Body.Close()
			}
		}()
	}

	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	// Drain: acked QoS 1 messages may still be crossing the collector's
	// queue; give the fan-out a moment before comparing counts.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var sum uint64
		for i := range delivered {
			sum += delivered[i].Load()
		}
		if sum >= politeAcked.Load() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	res.politeP50 = hist.Quantile(0.5)
	res.politeP99 = hist.Quantile(0.99)
	res.politeAcked = politeAcked.Load()
	res.politeRefused = politeRefused.Load()
	for i := range delivered {
		res.politeDelivered += delivered[i].Load()
	}
	res.connectRefused = connectRefused.Load()
	res.http429 = http429.Load()
	res.sawRetryAfter = sawRetryAfter.Load()
	for _, st := range adm.Tenants() {
		if st.ID == "abuser" {
			res.abusiveSampled = st.Sampled
			res.abusiveThrottled = st.Throttled
			res.quotaDisconnects = st.Disconnects
		}
	}
	return res, nil
}

func tenantBenchDial(b *mqtt.Broker, clientID, username string) (*mqtt.Client, error) {
	return tenantBenchDialCfg(b, mqtt.ClientConfig{ClientID: clientID, Username: username})
}

func tenantBenchDialCfg(b *mqtt.Broker, cfg mqtt.ClientConfig) (*mqtt.Client, error) {
	ct, st, cleanup, err := mqtt.NewSimPair(simnet.Config{QueueLen: 4096}, cfg.ClientID)
	if err != nil {
		return nil, err
	}
	b.AttachTransport(st)
	c, err := mqtt.Connect(ct, cfg)
	if err != nil {
		cleanup()
		return nil, err
	}
	return c, nil
}
