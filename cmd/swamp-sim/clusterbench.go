package main

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/cluster"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/simnet"
	"github.com/swamp-project/swamp/internal/timeseries"
	"github.com/swamp-project/swamp/internal/wal"
)

// clusterbench measures what the cluster plane buys and what it costs:
//
//	phase A  single durable node, no replication — the baseline
//	phase B  N-node cluster, RF=2, MinISR=1 over simnet — acked ingest
//	phase C  failure drill: kill -9 the busiest leader mid-ingest,
//	         promote its partitions, prove zero acked-write loss
//
// The scaling phases model the pilots' actual load: a fixed population
// of devices per farm node, each emitting a telemetry batch on a fixed
// sampling interval and blocking until the node acks it (durable, and
// in phase B follower-replicated). Adding farm nodes adds device
// population — weak scaling, the paper's multi-farm story — so the
// cluster phase carries N× the device count of the baseline. The
// points/s ratio is the scaling factor only if the cluster actually
// sustains that tripled load end to end: every point journaled on the
// leader, shipped, and applied on a follower before its ack. When
// replication can't keep up, acks slip past the sampling schedule,
// the measured window stretches, and the ratio collapses — that is
// the regression this bench guards.
//
// The default offered load is sized for a colocated harness: all N
// nodes share one machine, and fsyncs to separate WAL files serialize
// at the disk, a contention real per-farm-node deployments don't have.
// Past ~30k points/s/node on a typical CI disk that artifact — not the
// replication plane — dominates ack latency, so the defaults stay
// below it. Raise -cldevices / shrink -clinterval on real multi-disk
// hardware to probe the true capacity ceiling.
type clusterBenchConfig struct {
	Nodes      int // cluster size for phases B and C
	Partitions int
	Devices    int           // devices per node, both phases
	Points     int           // telemetry points through the single node (cluster carries Nodes×)
	Batch      int           // points per device emission
	Interval   time.Duration // per-device sampling interval
	AckTimeout time.Duration
}

// benchPlat is the slice of a platform each node replicates: broker +
// store + WAL with journals attached — the same wiring core's
// durability layer does, minus subscriptions.
type benchPlat struct {
	ctx   *ngsi.Broker
	store *timeseries.Store
	wm    *wal.Manager
}

func openBenchPlat(dir string) (*benchPlat, error) {
	p := &benchPlat{
		ctx:   ngsi.NewBroker(ngsi.BrokerConfig{}),
		store: timeseries.New(),
	}
	m, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	p.wm = m
	if _, err := m.Recover(p.applyRec); err != nil {
		return nil, err
	}
	p.ctx.SetJournal(m.ContextJournal())
	p.store.SetJournal(m.TelemetryJournal())
	return p, nil
}

func (p *benchPlat) applyRec(rec wal.Record) error {
	switch rec.Type {
	case wal.TypeEntityUpsert:
		e, err := wal.DecodeEntityUpsert(rec)
		if err != nil {
			return err
		}
		return p.ctx.UpsertEntity(e)
	case wal.TypeEntityMerge:
		entries, err := wal.DecodeEntityMerge(rec)
		if err != nil {
			return err
		}
		for _, en := range entries {
			if err := p.ctx.UpdateAttrs(en.ID, en.Type, en.Attrs); err != nil {
				return err
			}
		}
		return nil
	case wal.TypeEntityDelete:
		id, err := wal.DecodeID(rec)
		if err != nil {
			return err
		}
		if err := p.ctx.DeleteEntity(id); err != nil && !errors.Is(err, ngsi.ErrNotFound) {
			return err
		}
		return nil
	case wal.TypeTelemetry:
		pts, err := wal.DecodeTelemetry(rec)
		if err != nil {
			return err
		}
		_, _, err = p.store.AppendBatch(pts)
		return err
	}
	return nil
}

func (p *benchPlat) snapshot() error {
	return p.wm.Snapshot(func(rotate func() error, sink func(wal.Record) error) error {
		err := p.store.DumpFrozen(rotate, func(key timeseries.SeriesKey, pts []timeseries.Point) error {
			batch := make([]timeseries.BatchPoint, len(pts))
			for i, pt := range pts {
				batch[i] = timeseries.BatchPoint{Key: key, Point: pt}
			}
			rec, err := wal.EncodeTelemetry(batch)
			if err != nil {
				return err
			}
			return sink(rec)
		})
		if err != nil {
			return err
		}
		return p.ctx.DumpEntities(func(e *ngsi.Entity) error {
			rec, err := wal.EncodeEntityUpsert(e)
			if err != nil {
				return err
			}
			return sink(rec)
		})
	})
}

// benchCluster wires N nodes over simnet duplexes.
type benchCluster struct {
	m     *cluster.Map
	reg   *metrics.Registry
	mu    sync.Mutex
	nodes map[string]*benchMember
	seed  int64
}

type benchMember struct {
	plat  *benchPlat
	node  *cluster.Node
	alive bool
}

func newBenchCluster(ids []string, dir string, partitions, replicas, minISR int, ackTimeout time.Duration) (*benchCluster, error) {
	m, err := cluster.NewMap(cluster.Topology{Partitions: partitions, Replicas: replicas, Nodes: ids})
	if err != nil {
		return nil, err
	}
	bc := &benchCluster{m: m, reg: metrics.NewRegistry(), nodes: make(map[string]*benchMember), seed: 1}
	for _, id := range ids {
		plat, err := openBenchPlat(fmt.Sprintf("%s/%s", dir, id))
		if err != nil {
			return nil, err
		}
		node, err := cluster.NewNode(cluster.NodeConfig{
			ID:  id,
			Map: m,
			Hooks: cluster.Hooks{
				Context:  plat.ctx,
				Store:    plat.store,
				WAL:      plat.wm,
				Snapshot: plat.snapshot,
			},
			MinISR:     minISR,
			AckTimeout: ackTimeout,
			Dial:       func(peer string) (cluster.Conn, error) { return bc.dial(peer) },
			Metrics:    bc.reg,
			Logf:       benchLogf(id),
		})
		if err != nil {
			return nil, err
		}
		bc.mu.Lock()
		bc.nodes[id] = &benchMember{plat: plat, node: node, alive: true}
		bc.mu.Unlock()
		node.Start()
	}
	return bc, nil
}

// benchLogf reports cluster-plane events (resyncs, bootstraps, fences)
// on stderr when SWAMP_CLUSTERBENCH_VERBOSE is set.
func benchLogf(id string) func(string, ...any) {
	if os.Getenv("SWAMP_CLUSTERBENCH_VERBOSE") == "" {
		return nil
	}
	return func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "[%s] "+format+"\n", append([]any{id}, args...)...)
	}
}

// counters prints the cluster-plane counters accumulated across nodes.
func (bc *benchCluster) counters(label string) {
	fmt.Printf("%s: shipped=%d skipped=%d applied=%d resyncs=%d fences=%d acks_rejected=%d\n",
		label,
		bc.reg.Counter("cluster.records.shipped").Value(),
		bc.reg.Counter("cluster.records.skipped").Value(),
		bc.reg.Counter("cluster.records.applied").Value(),
		bc.reg.Counter("cluster.resyncs").Value(),
		bc.reg.Counter("cluster.fences").Value(),
		bc.reg.Counter("cluster.acks.rejected").Value())
}

// dial connects through a fresh simnet duplex — an unimpaired link, but
// the same queue/drop discipline swamp's farm-cloud backhauls use. The
// queue must clear the node's in-flight window or the link, not flow
// control, becomes the bound.
func (bc *benchCluster) dial(peer string) (cluster.Conn, error) {
	bc.mu.Lock()
	member, ok := bc.nodes[peer]
	bc.seed++
	seed := bc.seed
	bc.mu.Unlock()
	if !ok || !member.alive {
		return nil, fmt.Errorf("peer %s down", peer)
	}
	d, err := simnet.NewDuplex(simnet.Config{QueueLen: 1 << 15, Seed: seed})
	if err != nil {
		return nil, err
	}
	a, b := cluster.SimnetPair(d)
	go member.node.ServeConn(b)
	return a, nil
}

func (bc *benchCluster) kill(id string) {
	bc.mu.Lock()
	member := bc.nodes[id]
	member.alive = false
	bc.mu.Unlock()
	member.node.Kill()
}

func (bc *benchCluster) closeAll() {
	bc.mu.Lock()
	members := make([]*benchMember, 0, len(bc.nodes))
	for _, m := range bc.nodes {
		if m.alive {
			m.alive = false
			members = append(members, m)
		}
	}
	bc.mu.Unlock()
	for _, m := range members {
		m.node.Close()
		_ = m.plat.wm.Close()
	}
}

func (bc *benchCluster) member(id string) *benchMember {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.nodes[id]
}

// devicesFor returns `want` device names whose partitions the node leads.
func devicesFor(m *cluster.Map, node string, want int) ([]string, error) {
	out := make([]string, 0, want)
	for i := 0; len(out) < want; i++ {
		if i > want*1000 {
			return nil, fmt.Errorf("node %s leads too few partitions for %d devices", node, want)
		}
		dev := fmt.Sprintf("dev-%05d", i)
		if leader, _ := m.Leader(m.PartitionOf(dev)); leader == node {
			out = append(out, dev)
		}
	}
	return out, nil
}

// ingestStats reports one paced-ingest run: the measured wall window
// (first emission to last ack) and the time devices spent blocked
// waiting for acks.
type ingestStats struct {
	points  int
	elapsed time.Duration
	ackNs   int64
	acks    int64
}

func (s ingestStats) rate() float64 { return float64(s.points) / s.elapsed.Seconds() }

func (s ingestStats) meanAckMs() float64 {
	if s.acks == 0 {
		return 0
	}
	return float64(s.ackNs) / float64(s.acks) / 1e6
}

// pacedIngest runs one goroutine per device. Each device emits a batch
// every interval on a wall-clock schedule (phase-staggered so the load
// is steady, catch-up immediate when an ack comes back late) and blocks
// until the node acks the batch. Timestamps are a strictly increasing
// per-series clock — out-of-order points would (correctly) be dropped
// by the follower's re-delivery filter, and a bench that feeds the
// cluster duplicates isn't measuring replication.
func pacedIngest(node *cluster.Node, devices []string, emissions, batch int, interval time.Duration, at time.Time) (ingestStats, error) {
	var (
		firstErr atomic.Value
		ackNs    atomic.Int64
		acks     atomic.Int64
		wg       sync.WaitGroup
	)
	start := time.Now()
	for d, dev := range devices {
		wg.Add(1)
		go func(d int, dev string) {
			defer wg.Done()
			key := timeseries.SeriesKey{Device: dev, Quantity: "soilMoisture"}
			offset := interval * time.Duration(d) / time.Duration(len(devices))
			seq := 0
			for e := 0; e < emissions; e++ {
				if wait := time.Until(start.Add(offset + interval*time.Duration(e))); wait > 0 {
					time.Sleep(wait)
				}
				pts := make([]timeseries.BatchPoint, batch)
				for i := range pts {
					seq++
					pts[i] = timeseries.BatchPoint{
						Key:   key,
						Point: timeseries.Point{At: at.Add(time.Duration(seq) * time.Millisecond), Value: float64(i)},
					}
				}
				t0 := time.Now()
				_, _, err := node.AppendBatch(pts)
				ackNs.Add(int64(time.Since(t0)))
				acks.Add(1)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(d, dev)
	}
	wg.Wait()
	stats := ingestStats{
		points:  len(devices) * emissions * batch,
		elapsed: time.Since(start),
		ackNs:   ackNs.Load(),
		acks:    acks.Load(),
	}
	if err, _ := firstErr.Load().(error); err != nil {
		return stats, err
	}
	return stats, nil
}

func runClusterBench(cfg clusterBenchConfig) error {
	if cfg.Nodes < 3 {
		cfg.Nodes = 3
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	emissions := cfg.Points / (cfg.Devices * cfg.Batch)
	if emissions < 1 {
		emissions = 1
	}
	dir, err := os.MkdirTemp("", "swamp-clusterbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	at := time.Now().Truncate(time.Hour)

	offered := float64(cfg.Devices*cfg.Batch) / cfg.Interval.Seconds()
	fmt.Printf("clusterbench: %d nodes, %d partitions, %d devices/node x%d emissions x%d batch every %s (offered %.0f points/s/node)\n",
		cfg.Nodes, cfg.Partitions, cfg.Devices, emissions, cfg.Batch, cfg.Interval, offered)

	// Phase A: one durable node, no replication. Scoped so the baseline's
	// stores are collectable before phase B — the phases must not compete
	// for heap.
	singleStats, err := func() (ingestStats, error) {
		single, err := newBenchCluster([]string{"s1"}, dir+"/single", cfg.Partitions, 1, 0, cfg.AckTimeout)
		if err != nil {
			return ingestStats{}, err
		}
		defer single.closeAll()
		sDevices, err := devicesFor(single.m, "s1", cfg.Devices)
		if err != nil {
			return ingestStats{}, err
		}
		stats, err := pacedIngest(single.member("s1").node, sDevices, emissions, cfg.Batch, cfg.Interval, at)
		if err != nil {
			return stats, fmt.Errorf("single-node phase: %w", err)
		}
		return stats, nil
	}()
	if err != nil {
		return err
	}
	singleRate := singleStats.rate()
	fmt.Printf("single node:  %10.0f points/s sustained  (%.2fs, mean ack %.2fms)\n",
		singleRate, singleStats.elapsed.Seconds(), singleStats.meanAckMs())
	runtime.GC()

	// Phase B: N nodes, RF=2, synchronous replication (MinISR=1), each
	// carrying its own device population. Every write is journaled
	// locally AND acked by a follower before it returns.
	ids := make([]string, cfg.Nodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%d", i+1)
	}
	bc, err := newBenchCluster(ids, dir+"/cluster", cfg.Partitions, 2, 1, cfg.AckTimeout)
	if err != nil {
		return err
	}
	defer bc.closeAll()

	var (
		wg      sync.WaitGroup
		stats   = make([]ingestStats, cfg.Nodes)
		ingErrs = make([]error, cfg.Nodes)
	)
	start := time.Now()
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			devs, err := devicesFor(bc.m, id, cfg.Devices)
			if err != nil {
				ingErrs[i] = err
				return
			}
			stats[i], ingErrs[i] = pacedIngest(bc.member(id).node, devs, emissions, cfg.Batch, cfg.Interval, at)
		}(i, id)
	}
	wg.Wait()
	for i, err := range ingErrs {
		if err != nil {
			return fmt.Errorf("cluster phase, node %s: %w", ids[i], err)
		}
	}
	clusterElapsed := time.Since(start)
	var clusterPoints int
	var clusterAckNs, clusterAcks int64
	for _, s := range stats {
		clusterPoints += s.points
		clusterAckNs += s.ackNs
		clusterAcks += s.acks
	}
	clusterStats := ingestStats{points: clusterPoints, elapsed: clusterElapsed, ackNs: clusterAckNs, acks: clusterAcks}
	clusterRate := clusterStats.rate()
	scaling := clusterRate / singleRate
	fmt.Printf("cluster (%dx): %10.0f points/s sustained  (%.2fs, mean ack %.2fms)  scaling %.2fx\n",
		cfg.Nodes, clusterRate, clusterElapsed.Seconds(), clusterStats.meanAckMs(), scaling)
	bc.counters("cluster counters")
	if applied := bc.reg.Counter("cluster.records.applied").Value(); applied < uint64(clusterPoints) {
		return fmt.Errorf("clusterbench: followers applied %d of %d points — replication fell behind the acks", applied, clusterPoints)
	}

	// Phase C: the drill. Acked entity writes against every node, then
	// kill -9 the first node mid-role, promote its partitions to the
	// surviving followers, repair follower sets, and verify that every
	// write acked before or after the kill is present on the current
	// leader of its partition.
	acked, promoted, err := runClusterDrill(bc, ids)
	if err != nil {
		return err
	}
	lost := 0
	for id, want := range acked {
		leader, _ := bc.m.Leader(bc.m.PartitionOf(id))
		e, gerr := bc.member(leader).plat.ctx.GetEntity(id)
		if gerr != nil {
			lost++
			continue
		}
		if got := e.Attrs["seq"].Value; fmt.Sprint(got) != fmt.Sprint(want) {
			lost++
		}
	}
	fmt.Printf("drill: %d acked writes, %d lost, promotion: %d partitions\n", len(acked), lost, promoted)
	if lost > 0 {
		return fmt.Errorf("clusterbench: %d acked writes lost through promotion", lost)
	}
	fmt.Println("zero acked-write loss")

	if err := writeBenchJSON("clusterbench", map[string]float64{
		"single_points_per_s":  singleRate,
		"cluster_points_per_s": clusterRate,
		"cluster_scaling_x":    scaling,
		// The _info suffix keeps these out of benchguard's gated set:
		// mean ack latency on a shared CI disk is too noisy to gate on,
		// but it belongs in the record — it is the bench's health signal.
		"single_ack_ms_info":  singleStats.meanAckMs(),
		"cluster_ack_ms_info": clusterStats.meanAckMs(),
		"drill_acked_writes":  float64(len(acked)),
		"drill_lost_writes":   float64(lost),
		"promoted_partitions": float64(promoted),
	}); err != nil {
		return err
	}
	return nil
}

// runClusterDrill writes acked entities, kills ids[0], promotes, and
// returns the acked id→seq map plus how many partitions were promoted.
func runClusterDrill(bc *benchCluster, ids []string) (map[string]int, int, error) {
	victim := ids[0]
	survivors := ids[1:]
	acked := make(map[string]int)
	upsert := func(seq int) error {
		id := fmt.Sprintf("urn:drill:%04d", seq)
		leader, _ := bc.m.Leader(bc.m.PartitionOf(id))
		member := bc.member(leader)
		if member == nil || !member.alive {
			return fmt.Errorf("leader %s down", leader)
		}
		err := member.node.UpsertEntity(&ngsi.Entity{
			ID: id, Type: "Drill",
			Attrs: map[string]ngsi.Attribute{"seq": {Type: "Number", Value: seq}},
		})
		if err == nil {
			acked[id] = seq
		}
		return err
	}

	// Pre-kill: acked writes across every partition.
	const preKill, postKill = 200, 200
	for seq := 0; seq < preKill; seq++ {
		if err := upsert(seq); err != nil {
			return nil, 0, fmt.Errorf("drill pre-kill write %d: %w", seq, err)
		}
	}

	bc.kill(victim)
	fmt.Printf("drill: killed %s\n", victim)

	// Promote every victim-led partition to a surviving follower; give it
	// a replacement follower so MinISR can be met again. Then repair
	// partitions that only *followed* the victim the same way.
	promoted := 0
	for _, p := range bc.m.LedBy(victim) {
		info := bc.m.Info(p)
		var heir string
		for _, f := range info.Followers {
			if f != victim {
				heir = f
				break
			}
		}
		if heir == "" {
			return nil, 0, fmt.Errorf("drill: partition %d has no surviving follower", p)
		}
		var repl string
		for _, s := range survivors {
			if s != heir {
				repl = s
				break
			}
		}
		if _, err := bc.m.Promote(p, heir, repl); err != nil {
			return nil, 0, fmt.Errorf("drill: promote partition %d: %w", p, err)
		}
		promoted++
	}
	for leader, parts := range bc.m.FollowedBy(victim) {
		if leader == victim {
			continue
		}
		for _, p := range parts {
			info := bc.m.Info(p)
			var repl string
			for _, s := range survivors {
				if s == info.Leader {
					continue
				}
				already := false
				for _, f := range info.Followers {
					if f == s {
						already = true
					}
				}
				if !already {
					repl = s
					break
				}
			}
			if repl == "" {
				continue // follower set already healthy
			}
			if err := bc.m.ReplaceFollower(p, victim, repl); err != nil {
				return nil, 0, fmt.Errorf("drill: repair partition %d: %w", p, err)
			}
		}
	}

	// Post-promotion: writes must ack again once the survivors' follower
	// links reconcile to the new map. Retry with a deadline.
	deadline := time.Now().Add(30 * time.Second)
	for seq := preKill; seq < preKill+postKill; seq++ {
		for {
			err := upsert(seq)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return nil, 0, fmt.Errorf("drill post-kill write %d never acked: %w", seq, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return acked, promoted, nil
}
