package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/httpapi"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/security/identity"
	"github.com/swamp-project/swamp/internal/security/oauth"
	"github.com/swamp-project/swamp/internal/security/pep"
)

// apiBenchConfig parameterizes the northbound API stress run: filtered
// queries against a seeded entity store, then webhook notification
// fan-out with one deliberately stalled endpoint.
type apiBenchConfig struct {
	Devices int // entities seeded into the context broker
	Queries int // filtered GET /v2/entities requests
	Workers int // concurrent HTTP query clients
	Subs    int // healthy webhook subscriptions (one stalled is added)
	Updates int // entity updates driving notifications
}

// runAPIBench stands up the real HTTP facade (OAuth + PEP + query engine
// + subscription CRUD) on a loopback listener and drives it the way an
// application tier would: authenticated filtered queries with pagination
// and count, then webhook subscriptions receiving NGSI notifications —
// with a stalled endpoint attached to prove delivery isolation.
func runAPIBench(cfg apiBenchConfig) error {
	if cfg.Devices <= 0 || cfg.Queries <= 0 || cfg.Workers <= 0 || cfg.Subs <= 0 || cfg.Updates <= 0 {
		return fmt.Errorf("apibench: devices, queries, workers, subs and updates must be positive")
	}
	reg := metrics.NewRegistry()
	idm := identity.NewStore()
	if err := idm.Register(identity.Principal{
		ID: "bench-svc", Roles: []identity.Role{identity.RoleService},
	}, "bench-secret"); err != nil {
		return err
	}
	tokens := oauth.NewServer(idm, oauth.Config{})
	pdp := pep.NewPDP(pep.Policy{
		ID: "services-full", Roles: []identity.Role{identity.RoleService},
		Actions: []string{"read", "subscribe"}, Effect: pep.Permit,
	})
	broker := ngsi.NewBroker(ngsi.BrokerConfig{Metrics: reg, QueueLen: 8192})
	defer broker.Close()
	pool := ngsi.NewWebhookPool(ngsi.WebhookConfig{
		Metrics:          reg,
		Client:           &http.Client{Timeout: 250 * time.Millisecond},
		QueueLen:         cfg.Updates, // absorb the update burst; the stalled queue still overflows
		RetryBackoff:     5 * time.Millisecond,
		MaxRetries:       1,
		FailureThreshold: 3,
		OnStatus:         ngsi.StatusUpdater(broker),
	})
	defer pool.Close()
	api, err := httpapi.NewServer(httpapi.Config{
		Context: broker, Tokens: tokens, PEP: pep.NewPEP(tokens, pdp, reg),
		Metrics: reg, Webhooks: pool,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() { _ = http.Serve(ln, api) }()
	base := "http://" + ln.Addr().String()

	// Seed the store directly — the ingest path has its own bench.
	for i := 0; i < cfg.Devices; i++ {
		if err := broker.UpsertEntity(&ngsi.Entity{
			ID: entityID(i), Type: "SoilProbe",
			Attrs: map[string]ngsi.Attribute{
				"soilMoisture": {Type: "Number", Value: float64(i%1000) / 1000},
				"zone":         {Type: "Text", Value: fmt.Sprintf("zone-%d", i%16)},
			},
		}); err != nil {
			return err
		}
	}

	resp, err := http.PostForm(base+"/oauth/token", url.Values{
		"grant_type": {"password"}, "username": {"bench-svc"}, "password": {"bench-secret"},
	})
	if err != nil {
		return err
	}
	var tok struct {
		AccessToken string `json:"access_token"`
	}
	err = json.NewDecoder(resp.Body).Decode(&tok)
	resp.Body.Close()
	if err != nil || tok.AccessToken == "" {
		return fmt.Errorf("apibench: token grant failed (%v)", err)
	}

	fmt.Printf("apibench: %d entities, %d queries x %d workers, %d subs, %d updates on %s\n",
		cfg.Devices, cfg.Queries, cfg.Workers, cfg.Subs, cfg.Updates, base)

	// --- phase 1: filtered queries ---
	queryPaths := []string{
		"/v2/entities?q=soilMoisture%3C0.05&limit=50&options=count",
		"/v2/entities?q=soilMoisture%3E%3D0.9%3Bzone==zone-3&limit=20",
		"/v2/entities?idPattern=urn:sim:dev:000*&attrs=soilMoisture&limit=100",
		"/v2/entities?orderBy=!soilMoisture&limit=10",
	}
	var qerrs atomic.Uint64
	// The default transport keeps only 2 idle conns per host, so at
	// higher worker counts the bench would measure TCP handshakes, not
	// the API. Size the pool to the worker count.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers,
	}}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		perWorker := cfg.Queries / cfg.Workers
		if w < cfg.Queries%cfg.Workers {
			perWorker++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				req, _ := http.NewRequest("GET", base+queryPaths[(w+i)%len(queryPaths)], nil)
				req.Header.Set("Authorization", "Bearer "+tok.AccessToken)
				resp, err := client.Do(req)
				if err != nil {
					qerrs.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					qerrs.Add(1)
				}
			}
		}(w, perWorker)
	}
	wg.Wait()
	qElapsed := time.Since(start)
	fmt.Printf("queries: %d in %v (%.0f queries/s, %d errors)\n",
		cfg.Queries, qElapsed.Round(time.Millisecond),
		float64(cfg.Queries)/qElapsed.Seconds(), qerrs.Load())

	// --- phase 2: webhook notification fan-out ---
	var received atomic.Uint64
	recvSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		received.Add(1)
		w.WriteHeader(http.StatusNoContent)
	})}
	recvLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer recvLn.Close()
	go func() { _ = recvSrv.Serve(recvLn) }()
	stallSrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Second) // past the pool client timeout
		w.WriteHeader(http.StatusNoContent)
	})}
	stallLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer stallLn.Close()
	go func() { _ = stallSrv.Serve(stallLn) }()

	mkSub := func(target string) error {
		body := fmt.Sprintf(`{"subject":{"entities":[{"idPattern":"urn:sim:dev:*"}],
			"condition":{"attrs":["soilMoisture"]}},
			"notification":{"http":{"url":%q}}}`, target)
		req, _ := http.NewRequest("POST", base+"/v2/subscriptions", strings.NewReader(body))
		req.Header.Set("Authorization", "Bearer "+tok.AccessToken)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("apibench: subscription create status %d", resp.StatusCode)
		}
		return nil
	}
	for i := 0; i < cfg.Subs; i++ {
		if err := mkSub("http://" + recvLn.Addr().String() + "/hook"); err != nil {
			return err
		}
	}
	if err := mkSub("http://" + stallLn.Addr().String() + "/hook"); err != nil {
		return err
	}

	start = time.Now()
	for i := 0; i < cfg.Updates; i++ {
		if err := broker.UpdateAttrs(entityID(i%cfg.Devices), "SoilProbe", map[string]ngsi.Attribute{
			"soilMoisture": {Type: "Number", Value: float64(i%1000) / 1000},
		}); err != nil {
			return err
		}
	}
	// Wait for the healthy subscriptions to drain. The stalled endpoint
	// keeps timing out in the background bounded by its own queue, so the
	// loop ends on the healthy target, a quiet period, or the deadline.
	want := uint64(cfg.Updates * cfg.Subs)
	deadline := time.Now().Add(30 * time.Second)
	lastRecv := start
	prev := uint64(0)
	quiet := 0
	for received.Load() < want && time.Now().Before(deadline) {
		if got := received.Load(); got != prev {
			prev, lastRecv, quiet = got, time.Now(), 0
		} else if broker.QueueDepth() == 0 && pool.Depth() == 0 {
			if quiet++; quiet > 40 { // ~200ms with nothing pending anywhere
				break
			}
		} else {
			quiet = 0
		}
		time.Sleep(5 * time.Millisecond)
	}
	if received.Load() != prev {
		lastRecv = time.Now()
	}
	nElapsed := lastRecv.Sub(start)
	if nElapsed <= 0 {
		nElapsed = time.Since(start)
	}
	fmt.Printf("webhooks: %d/%d healthy notifications in %v (%.0f deliveries/s)\n",
		received.Load(), want, nElapsed.Round(time.Millisecond),
		float64(received.Load())/nElapsed.Seconds())
	fmt.Printf("webhook counters: sent=%d failed=%d retries=%d dropped=%d depth=%d\n",
		reg.Counter("ngsi.webhook.sent").Value(),
		reg.Counter("ngsi.webhook.failed").Value(),
		reg.Counter("ngsi.webhook.retries").Value(),
		reg.Counter("ngsi.webhook.dropped").Value(),
		pool.Depth())
	// Give the stalled endpoint a moment to cross its consecutive-failure
	// threshold so the status flip is visible in the report.
	stalledFailed := 0
	failDeadline := time.Now().Add(5 * time.Second)
	for {
		stalledFailed = 0
		for _, v := range broker.Subscriptions() {
			if v.Status == ngsi.SubFailed {
				stalledFailed++
			}
		}
		if stalledFailed > 0 || !time.Now().Before(failDeadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("subscriptions: %d total, %d failed (the stalled endpoint isolates to itself)\n",
		broker.SubscriptionCount(), stalledFailed)
	return writeBenchJSON("apibench", map[string]float64{
		"queries_per_s":            float64(cfg.Queries) / qElapsed.Seconds(),
		"webhook_deliveries_per_s": float64(received.Load()) / nElapsed.Seconds(),
	})
}
