// Command swamp-attack exercises every §III threat against a freshly wired
// SWAMP platform and prints an attack-vs-defense report: what each injector
// achieved and which security layer (broker ACL, secchan, replay guard,
// PEP, anomaly engine) caught or blocked it.
//
// Usage:
//
//	swamp-attack                # plaintext deployment
//	swamp-attack -sealed        # with payload encryption
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/swamp-project/swamp/internal/attack"
	"github.com/swamp-project/swamp/internal/core"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/simnet"
)

func main() {
	sealed := flag.Bool("sealed", false, "enable secchan payload encryption")
	flag.Parse()
	if err := run(*sealed); err != nil {
		fmt.Fprintln(os.Stderr, "swamp-attack:", err)
		os.Exit(1)
	}
}

func run(sealed bool) error {
	p, err := core.New(core.Options{Pilot: core.PilotMATOPIBA, Mode: core.ModeFarmFog, Sealed: sealed, Seed: 5})
	if err != nil {
		return err
	}
	defer p.Close()
	at := time.Now()
	fmt.Printf("target: pilot=%s sealed=%v\n\n", p.Opts.Pilot.Name, sealed)

	// Some honest traffic to establish baselines.
	for i := 0; i < 5; i++ {
		if err := p.PumpOnce(at, 5*time.Second); err != nil {
			return err
		}
		at = at.Add(time.Minute)
	}

	// --- 1. DoS flood ---
	fmt.Println("[1] DoS flood (500 msg/s for 2s against the broker)")
	flooder, err := p.DialDevice("dos-bot", simnet.Config{})
	if err != nil {
		return err
	}
	f := &attack.DoSFlooder{
		Publish: func(topic string, payload []byte) error {
			// ACL confines the bot to its own topic; the flood is the point.
			return flooder.Publish("ul/swamp-matopiba/dos-bot/attrs", payload, 0, false)
		},
		Topic: "ul/swamp-matopiba/dos-bot/attrs", RatePerSec: 500,
	}
	stats, err := f.Run(nil, 2*time.Second)
	if err != nil {
		return err
	}
	time.Sleep(100 * time.Millisecond)
	dosAlerts := p.Anomaly.CountByKind()["dos"]
	fmt.Printf("    attacker sent %d frames; anomaly engine raised %d dos alert(s)\n\n", stats.Sent, dosAlerts)

	// --- 2. Unknown-device injection (unauthorized node) ---
	fmt.Println("[2] Unauthorized node injecting fake measurements")
	rogue, err := p.DialDevice("ghost-probe", simnet.Config{})
	if err != nil {
		return err
	}
	_ = rogue.Publish("ul/swamp-matopiba/ghost-probe/attrs", []byte("m1|0.01"), 1, false)
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("    agent dropped %d unknown-device batch(es); broker denied %d publish(es)\n\n",
		p.Metrics().Counter("agent.north.unknown").Value(),
		p.Metrics().Counter("mqtt.publish.denied").Value())

	// --- 3. Eavesdropping ---
	fmt.Println("[3] Passive eavesdropper on the broker fabric")
	var eve attack.Eavesdropper
	prevTap := p.Broker.Tap
	p.Broker.Tap = func(clientID, topic string, payload []byte, t time.Time) {
		eve.Observe(topic, payload)
		if prevTap != nil {
			prevTap(clientID, topic, payload, t)
		}
	}
	if err := p.PumpOnce(at, 5*time.Second); err != nil {
		return err
	}
	exp := eve.Analyze()
	fmt.Printf("    captured %d frames: %d intelligible, %d opaque (sealed=%v)\n\n",
		exp.Total, exp.Intelligible, exp.Opaque, sealed)

	// --- 4. Replay ---
	if sealed {
		fmt.Println("[4] Replay of captured sealed envelopes")
		before := p.Metrics().Counter("agent.north.replay").Value()
		var rep attack.Replayer
		p.Broker.Tap = func(clientID, topic string, payload []byte, t time.Time) {
			rep.Capture(topic, payload)
			if prevTap != nil {
				prevTap(clientID, topic, payload, t)
			}
		}
		if err := p.PumpOnce(at.Add(time.Minute), 5*time.Second); err != nil {
			return err
		}
		replayClient, err := p.DialDevice("replay-bot", simnet.Config{})
		if err != nil {
			return err
		}
		// The bot republishes as the original devices would (topic reuse).
		sent, _ := rep.ReplayAll(func(topic string, payload []byte) error {
			return p.Broker.InjectPublish("iot-agent", topic, payload, 0, false)
		})
		_ = replayClient
		time.Sleep(200 * time.Millisecond)
		after := p.Metrics().Counter("agent.north.replay").Value()
		fmt.Printf("    replayed %d frames; replay guard rejected %d\n\n", sent, after-before)
	} else {
		fmt.Println("[4] Replay attack: skipped (only meaningful with -sealed)")
		fmt.Println()
	}

	// --- 5. Rogue actuator commands ---
	fmt.Println("[5] Rogue actuator takeover with a stolen identity")
	rc := &attack.RogueCommander{
		Issuer: "stolen-token",
		Send: func(c model.Command) error {
			// All command traffic crosses the PEP in a real deployment;
			// the stolen token fails introspection.
			if _, err := p.PEP.Authorize("bogus-token-value", "command", "actuator:matopiba:"+string(c.Target)); err != nil {
				return err
			}
			return p.Agent.SendCommand(c)
		},
	}
	res := rc.OpenEverything([]model.DeviceID{"matopiba-pivot-s00", "matopiba-valve"}, at)
	blocked := 0
	for _, err := range res {
		if err != nil {
			blocked++
		}
	}
	fmt.Printf("    %d/%d rogue commands blocked at the PEP\n\n", blocked, len(res))

	// --- 6. Sybil swarm ---
	fmt.Println("[6] Sybil swarm (6 fake identities reporting identical NDVI)")
	swarm := &attack.SybilSwarm{
		IDPrefix: "sybil", N: 6, Value: 0.82, Quantity: model.QNDVI,
		Publish: func(dev string, rs []model.Reading) error {
			for _, r := range rs {
				p.Anomaly.OnReading(r)
			}
			return nil
		},
	}
	for k := 0; k < 8; k++ {
		if err := swarm.Round(at.Add(time.Duration(k) * time.Minute)); err != nil {
			return err
		}
	}
	p.Anomaly.ScanSybil(at.Add(time.Hour))
	fmt.Printf("    anomaly engine flagged %d sybil identities\n\n", p.Anomaly.CountByKind()["sybil"])

	fmt.Println("alert summary:", p.Anomaly.CountByKind())
	fmt.Println("audit entries:", len(p.PEP.Audit()))
	return nil
}
