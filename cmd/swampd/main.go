// Command swampd runs a SWAMP platform as a long-lived daemon: the MQTT
// broker listens on a real TCP port (external devices and dashboards can
// connect with any MQTT 3.1.1 client), the simulated pilot devices feed it,
// and the decision loop runs on a wall-clock cadence.
//
// Configuration is layered: schema defaults, then the -config file (TOML,
// or JSON by extension), then SWAMP_* environment variables, then any
// explicitly set command-line flag — last writer wins. -config-check
// resolves the stack, prints every knob with its provenance, and exits.
//
// The HTTP listener comes up before the platform constructs, so the
// operational surface is honest about startup: /healthz is 200 as soon as
// the port is bound, /readyz is 503 until WAL recovery completes (and
// again whenever the aggregate MQTT queue depth exceeds
// server.ready_queue_watermark), and API routes return 503 "starting"
// until the platform attaches. SIGHUP and POST /admin/reload re-resolve
// the config stack and apply dynamic knobs validate-then-swap; SIGINT and
// SIGTERM drain the HTTP server gracefully and exit 0.
//
// Usage:
//
//	swampd -config swampd.toml
//	swampd -pilot intercrop -mode farm-fog -listen 127.0.0.1:1883 -interval 2s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/swamp-project/swamp/internal/cluster"
	"github.com/swamp-project/swamp/internal/config"
	"github.com/swamp-project/swamp/internal/core"
	"github.com/swamp-project/swamp/internal/httpapi"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/tenant"
)

// The cluster router satisfies the northbound's cluster seam
// structurally — httpapi deliberately does not import internal/cluster,
// so the contract is pinned here, where both packages meet.
var _ httpapi.ClusterBackend = (*cluster.Router)(nil)

func main() {
	configPath := flag.String("config", "", "config file (TOML; .json for JSON); flags and SWAMP_* env override it")
	configCheck := flag.Bool("config-check", false, "resolve the config stack, print every knob with provenance, and exit")
	overlay := config.RegisterFlags(flag.CommandLine)
	flag.Parse()

	loader := &config.Loader{Path: *configPath, Flags: overlay}
	cfg, prov, err := loader.Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swampd:", err)
		os.Exit(1)
	}
	if *configCheck {
		fmt.Print(config.Describe(cfg, prov))
		return
	}
	logger := newLogger(cfg.Log)
	slog.SetDefault(logger)
	if err := run(loader, cfg, logger); err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the structured logger from the [log] section.
func newLogger(lc config.Log) *slog.Logger {
	var lvl slog.Level
	switch lc.Level {
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if lc.Format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

func run(loader *config.Loader, cfg *config.Config, logger *slog.Logger) error {
	reg := metrics.NewRegistry()
	config.ExportGauges(reg, cfg)

	// Reload state. cfgMu serialises SIGHUP and POST /admin/reload; the
	// platform and API pointers are atomic because the HTTP mux reads them
	// before core.New has finished.
	var (
		cfgMu       sync.Mutex
		platform    atomic.Pointer[core.Platform]
		api         atomic.Pointer[httpapi.Server]
		clusterNode atomic.Pointer[cluster.Node]
		maxReadyLag atomic.Int64
		ready       atomic.Bool
	)
	current := cfg
	maxReadyLag.Store(cfg.Cluster.MaxReadyLag)

	doReload := func() ([]string, error) {
		cfgMu.Lock()
		defer cfgMu.Unlock()
		candidate, _, err := loader.Load()
		if err != nil {
			return nil, err
		}
		applied, err := config.ValidateReload(current, candidate)
		if err != nil {
			return nil, err
		}
		if p := platform.Load(); p != nil {
			p.ApplyDynamic(candidate)
		}
		if a := api.Load(); a != nil {
			a.SetQueryCap(candidate.HTTP.QueryCap)
		}
		if cn := clusterNode.Load(); cn != nil {
			cn.SetAckTimeout(candidate.Cluster.AckTimeout)
		}
		maxReadyLag.Store(candidate.Cluster.MaxReadyLag)
		config.ExportGauges(reg, candidate)
		current = candidate
		return applied, nil
	}
	var reloadHook func() ([]string, error)
	if loader.Path != "" {
		reloadHook = doReload // without a file the stack cannot change at runtime
	}

	watermark := cfg.Server.ReadyQueueWatermark
	readiness := func() error {
		if !ready.Load() {
			return errors.New("platform starting (WAL recovery in progress)")
		}
		if watermark > 0 {
			if depth := reg.Gauge("mqtt.queue.depth").Value(); depth > float64(watermark) {
				return fmt.Errorf("mqtt queue depth %.0f above watermark %d", depth, watermark)
			}
		}
		if cn := clusterNode.Load(); cn != nil {
			if err := cn.ReadyLag(maxReadyLag.Load()); err != nil {
				return err
			}
		}
		return nil
	}
	ops := httpapi.NewOps(reg, readiness, reloadHook)
	ops.Detail = func() map[string]any {
		d := map[string]any{
			"queue_depth": reg.Gauge("mqtt.queue.depth").Value(),
		}
		if p := platform.Load(); p != nil && p.Durable != nil {
			st := p.Durable.Recovered
			d["recovery"] = map[string]any{
				"snapshot_records": st.SnapshotRecords,
				"tail_records":     st.TailRecords,
				"torn":             st.Torn,
			}
		}
		if cn := clusterNode.Load(); cn != nil {
			d["cluster"] = cn.Status()
		}
		return d
	}
	ops.Tenants = func() *tenant.Admission {
		if p := platform.Load(); p != nil {
			return p.Admission
		}
		return nil
	}
	// PUT /admin/tenants/{id}/quota rides the same validate-then-swap
	// pipeline as a reload: edit the quota table on a clone, validate the
	// whole candidate, then apply. Runtime overrides last until the next
	// file reload re-resolves the stack from disk.
	ops.SetQuota = func(id, spec string) error {
		cfgMu.Lock()
		defer cfgMu.Unlock()
		candidate := current.Clone()
		if spec == "" {
			delete(candidate.Tenant.Quotas, id)
		} else {
			if candidate.Tenant.Quotas == nil {
				candidate.Tenant.Quotas = map[string]string{}
			}
			candidate.Tenant.Quotas[id] = spec
		}
		if _, err := config.ValidateReload(current, candidate); err != nil {
			return err
		}
		if p := platform.Load(); p != nil {
			p.ApplyDynamic(candidate)
		}
		config.ExportGauges(reg, candidate)
		current = candidate
		return nil
	}

	// Bind and serve HTTP before the (possibly long) platform construction,
	// so /readyz can report 503 during WAL recovery instead of the port
	// simply not existing yet.
	var httpSrv *http.Server
	if cfg.Server.HTTPListen != "" {
		httpLn, err := net.Listen("tcp", cfg.Server.HTTPListen)
		if err != nil {
			return err
		}
		httpSrv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if ops.Handles(r.URL.Path) {
				ops.ServeHTTP(w, r)
				return
			}
			if a := api.Load(); a != nil {
				a.ServeHTTP(w, r)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"starting","description":"platform is constructing; poll /readyz"}`)
		})}
		go func() {
			if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("http", "err", err)
			}
		}()
		logger.Info("http listening", "addr", httpLn.Addr().String())
	}

	opts, err := core.OptionsFromConfig(cfg)
	if err != nil {
		return err
	}
	opts.Metrics = reg
	if opts.Seed == 0 {
		opts.Seed = time.Now().UnixNano()
	}
	p, err := core.New(opts)
	if err != nil {
		return err
	}
	defer p.Close()
	platform.Store(p)

	// Cluster plane: replication listener + peer router. Comes up after
	// recovery (followers must not stream half-recovered state) but before
	// the northbound attaches, so routed requests never race bring-up.
	var clusterRouter *cluster.Router
	if cfg.Cluster.NodeID != "" {
		peers, err := cluster.ParsePeers(cfg.Cluster.Peers)
		if err != nil {
			return err
		}
		ids := make([]string, 0, len(peers))
		for id := range peers {
			ids = append(ids, id)
		}
		m, err := cluster.NewMap(cluster.Topology{
			Partitions: cfg.Cluster.Partitions,
			Replicas:   cfg.Cluster.Replicas,
			Nodes:      ids,
		})
		if err != nil {
			return err
		}
		hooks, err := p.ClusterHooks()
		if err != nil {
			return err
		}
		node, err := cluster.NewNode(cluster.NodeConfig{
			ID:         cfg.Cluster.NodeID,
			Map:        m,
			Hooks:      hooks,
			MinISR:     cfg.Cluster.MinISR,
			AckTimeout: cfg.Cluster.AckTimeout,
			Dial: func(id string) (cluster.Conn, error) {
				addr, ok := peers[id]
				if !ok {
					return nil, fmt.Errorf("cluster: no endpoint for peer %q", id)
				}
				return cluster.DialTCP(addr)
			},
			Metrics: reg,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			return err
		}
		replLn, err := cluster.ListenTCP(cfg.Cluster.Listen, node.ServeConn)
		if err != nil {
			node.Close()
			return err
		}
		defer replLn.Close()
		node.Start()
		defer node.Close()
		clusterNode.Store(node)
		clusterRouter = cluster.NewRouter(node)
		defer clusterRouter.Close()
		logger.Info("cluster up",
			"node", node.ID(), "peers", len(peers),
			"partitions", m.Partitions(), "led", len(m.LedBy(node.ID())))
	}

	ln, err := net.Listen("tcp", cfg.Server.Listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		if err := p.Broker.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
			logger.Error("broker", "err", err)
		}
	}()

	if cfg.Server.HTTPListen != "" {
		apiCfg := httpapi.Config{
			Context: p.Context, Tokens: p.Tokens, PEP: p.PEP,
			Analytics: p.Analytics, Metrics: reg,
			Webhooks:      p.Webhooks,
			Admission:     p.Admission,
			QueryMaxLimit: cfg.HTTP.QueryCap,
		}
		if clusterRouter != nil {
			apiCfg.Cluster = clusterRouter
		}
		a, err := httpapi.NewServer(apiCfg)
		if err != nil {
			return err
		}
		defer a.Close()
		api.Store(a)
	}
	ready.Store(true)

	logger.Info("swampd up",
		"pilot", opts.Pilot.Name, "mode", opts.Mode.String(),
		"mqtt", ln.Addr().String(), "sealed", opts.Sealed)
	if p.Durable != nil {
		st := p.Durable.Recovered
		logger.Info("wal recovered",
			"dir", cfg.WAL.Dir, "snapshot_records", st.SnapshotRecords,
			"tail_records", st.TailRecords, "torn", st.Torn,
			"entities", p.Context.EntityCount(), "points", p.Store.Stats().Points)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)

	tick := time.NewTicker(cfg.Server.Interval)
	defer tick.Stop()
	pilot := opts.Pilot
	day := 0
	for {
		select {
		case <-stop:
			logger.Info("shutting down")
			if httpSrv != nil {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err := httpSrv.Shutdown(ctx)
				cancel()
				if err != nil {
					logger.Warn("http drain", "err", err)
				}
			}
			return nil
		case <-hup:
			if reloadHook == nil {
				logger.Warn("SIGHUP ignored: no -config file to reload from")
				continue
			}
			applied, err := doReload()
			if err != nil {
				logger.Error("reload rejected", "err", err)
				continue
			}
			logger.Info("config reloaded", "applied", applied)
		case at := <-tick.C:
			// Each tick is one accelerated "day" of the pilot.
			doy := (pilot.SeasonStartDOY+day-1)%365 + 1
			wd := p.Weather.Next(doy)
			p.Station.SetDay(wd)
			p.Decision.SetSeasonDay(day % pilot.Crop.SeasonDays())
			if err := p.PumpOnce(at, 5*time.Second); err != nil {
				logger.Error("pump", "err", err)
				continue
			}
			cmds, err := p.DecideOnce(at)
			if err != nil {
				logger.Error("decide", "err", err)
			}
			vec, _, err := p.Decision.PrescriptionFromCommands(cmds, p.Field.Grid.NumCells())
			if err != nil {
				logger.Error("prescription", "err", err)
				continue
			}
			if _, err := p.Field.StepAll(4, wd.RainMM, vec); err != nil {
				logger.Error("soil", "err", err)
				continue
			}
			mean, min, max := p.Field.MoistureStats()
			logger.Info("day",
				"day", day, "entities", p.Context.EntityCount(), "commands", len(cmds),
				"moisture", fmt.Sprintf("%.3f [%.3f..%.3f]", mean, min, max),
				"sessions", p.Broker.SessionCount())
			day++
		}
	}
}
