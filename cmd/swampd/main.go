// Command swampd runs a SWAMP platform as a long-lived daemon: the MQTT
// broker listens on a real TCP port (external devices and dashboards can
// connect with any MQTT 3.1.1 client), the simulated pilot devices feed it,
// and the decision loop runs on a wall-clock cadence. SIGINT shuts down
// cleanly.
//
// Usage:
//
//	swampd -pilot intercrop -mode farm-fog -listen 127.0.0.1:1883 -interval 2s
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/swamp-project/swamp/internal/core"
	"github.com/swamp-project/swamp/internal/httpapi"
)

func main() {
	var (
		pilotName = flag.String("pilot", "matopiba", "pilot: matopiba, guaspari, intercrop, cbec")
		modeName  = flag.String("mode", "farm-fog", "deployment: cloud-only, farm-fog, mobile-fog")
		listen    = flag.String("listen", "127.0.0.1:1883", "MQTT TCP listen address")
		httpAddr  = flag.String("http", "127.0.0.1:8026", "HTTP API listen address (empty disables)")
		interval  = flag.Duration("interval", 2*time.Second, "sensor sampling / decision interval")
		sealed    = flag.Bool("sealed", false, "enable secchan payload encryption")
		mqttQueue = flag.Int("mqtt-queue", 0, "per-session MQTT outbound queue bound (0 = default)")
		mqttRetry = flag.Duration("mqtt-retry", 0, "MQTT QoS 1 redelivery interval (0 = default 1s)")
		mqttFlush = flag.Int("mqtt-flush-watermark", 0, "MQTT session writer flush watermark in bytes (0 = default 8KiB, negative = flush per packet)")
		mqttRC    = flag.Int("mqtt-route-cache", 0, "MQTT topic route cache capacity (0 = default 4096, negative = disabled)")
		whWorkers = flag.Int("webhook-workers", 0, "concurrent webhook notification deliveries (0 = default)")
		whRetry   = flag.Duration("webhook-retry", 0, "first webhook retry backoff, doubling per attempt (0 = default)")
		queryCap  = flag.Int("query-cap", 0, "hard cap on /v2/entities page sizes (0 = default)")
		walDir    = flag.String("wal-dir", "", "durability: WAL+snapshot directory (empty = in-memory only; existing state is recovered on start)")
		walSeg    = flag.Int64("wal-segment-bytes", 0, "durability: WAL segment roll threshold (0 = default 8MiB)")
		walFsync  = flag.Duration("wal-fsync-interval", 0, "durability: group-commit coalescing window (0 = fsync when the commit queue drains)")
		snapEvery = flag.Duration("snapshot-interval", 0, "durability: snapshot + WAL truncation cadence (0 = default 5m)")
	)
	flag.Parse()
	if err := run(*pilotName, *modeName, *listen, *httpAddr, *interval, core.Options{
		Sealed:           *sealed,
		MQTTSessionQueue: *mqttQueue, MQTTRetryInterval: *mqttRetry,
		MQTTFlushWatermark: *mqttFlush, MQTTRouteCache: *mqttRC,
		WebhookWorkers: *whWorkers, WebhookRetry: *whRetry, QueryResultCap: *queryCap,
		WALDir: *walDir, WALSegmentBytes: *walSeg,
		WALFsyncInterval: *walFsync, SnapshotInterval: *snapEvery,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "swampd:", err)
		os.Exit(1)
	}
}

func run(pilotName, modeName, listen, httpAddr string, interval time.Duration, opts core.Options) error {
	pilot, err := core.PilotByName(pilotName)
	if err != nil {
		return err
	}
	var mode core.Mode
	switch modeName {
	case "cloud-only":
		mode = core.ModeCloudOnly
	case "farm-fog":
		mode = core.ModeFarmFog
	case "mobile-fog":
		mode = core.ModeMobileFog
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}

	opts.Pilot = pilot
	opts.Mode = mode
	opts.Seed = time.Now().UnixNano()
	p, err := core.New(opts)
	if err != nil {
		return err
	}
	defer p.Close()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		if err := p.Broker.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintln(os.Stderr, "swampd: broker:", err)
		}
	}()
	if httpAddr != "" {
		api, err := httpapi.NewServer(httpapi.Config{
			Context: p.Context, Tokens: p.Tokens, PEP: p.PEP,
			Analytics: p.Analytics, Metrics: p.Metrics(),
			Webhooks:      p.Webhooks,
			QueryMaxLimit: opts.QueryResultCap,
		})
		if err != nil {
			return err
		}
		defer api.Close()
		httpLn, err := net.Listen("tcp", httpAddr)
		if err != nil {
			return err
		}
		defer httpLn.Close()
		go func() {
			if err := http.Serve(httpLn, api); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "swampd: http:", err)
			}
		}()
		fmt.Printf("swampd: http API on %s (POST /oauth/token, GET /v2/entities?q=&limit=, /v2/subscriptions, /healthz, /metrics)\n", httpLn.Addr())
	}
	fmt.Printf("swampd: pilot=%s mode=%s mqtt=%s sealed=%v\n", pilot.Name, mode, ln.Addr(), opts.Sealed)
	if p.Durable != nil {
		st := p.Durable.Recovered
		fmt.Printf("swampd: wal=%s recovered %d snapshot + %d tail records (torn=%v) — entities=%d points=%d\n",
			opts.WALDir, st.SnapshotRecords, st.TailRecords, st.Torn,
			p.Context.EntityCount(), p.Store.Stats().Points)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	tick := time.NewTicker(interval)
	defer tick.Stop()
	day := 0
	for {
		select {
		case <-stop:
			fmt.Println("\nswampd: shutting down")
			return nil
		case at := <-tick.C:
			// Each tick is one accelerated "day" of the pilot.
			doy := (pilot.SeasonStartDOY+day-1)%365 + 1
			wd := p.Weather.Next(doy)
			p.Station.SetDay(wd)
			p.Decision.SetSeasonDay(day % pilot.Crop.SeasonDays())
			if err := p.PumpOnce(at, 5*time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "swampd: pump:", err)
				continue
			}
			cmds, err := p.DecideOnce(at)
			if err != nil {
				fmt.Fprintln(os.Stderr, "swampd: decide:", err)
			}
			vec, _, err := p.Decision.PrescriptionFromCommands(cmds, p.Field.Grid.NumCells())
			if err != nil {
				fmt.Fprintln(os.Stderr, "swampd: prescription:", err)
				continue
			}
			if _, err := p.Field.StepAll(4, wd.RainMM, vec); err != nil {
				fmt.Fprintln(os.Stderr, "swampd: soil:", err)
				continue
			}
			mean, min, max := p.Field.MoistureStats()
			fmt.Printf("day %3d: ctx-entities=%d commands=%d moisture=%.3f [%.3f..%.3f] sessions=%d\n",
				day, p.Context.EntityCount(), len(cmds), mean, min, max, p.Broker.SessionCount())
			day++
		}
	}
}
