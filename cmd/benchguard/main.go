// Command benchguard is the CI bench-regression gate: it compares the
// BENCH_<name>.json files a fresh bench run produced (-current) against
// the baselines committed at the repository root (-baseline) and exits
// non-zero when any guarded metric regressed by more than the threshold.
//
// Metric direction is encoded in the key suffix, matching what the
// swamp-sim harnesses emit:
//
//	_per_s, _x   higher is better (throughput, speedup ratios)
//	_us, _ms     lower is better (latency)
//	anything else is informational and never gates
//
// Usage:
//
//	benchguard -baseline . -current bench-out [-threshold 0.30]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

type report struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

func loadReport(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// direction returns +1 for higher-is-better metrics, -1 for
// lower-is-better, 0 for informational.
func direction(key string) int {
	switch {
	case strings.HasSuffix(key, "_per_s"), strings.HasSuffix(key, "_x"):
		return 1
	case strings.HasSuffix(key, "_us"), strings.HasSuffix(key, "_ms"):
		return -1
	}
	return 0
}

func main() {
	baselineDir := flag.String("baseline", ".", "directory holding the committed BENCH_*.json baselines")
	currentDir := flag.String("current", "bench-out", "directory holding this run's BENCH_*.json files")
	threshold := flag.Float64("threshold", 0.30, "fractional regression that fails the gate (0.30 = 30%)")
	flag.Parse()

	baselines, err := filepath.Glob(filepath.Join(*baselineDir, "BENCH_*.json"))
	if err != nil || len(baselines) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: no BENCH_*.json baselines in %s\n", *baselineDir)
		os.Exit(2)
	}
	sort.Strings(baselines)

	failed := false
	fmt.Printf("%-12s %-28s %14s %14s %9s  %s\n", "BENCH", "METRIC", "BASELINE", "CURRENT", "DELTA", "STATUS")
	for _, basePath := range baselines {
		base, err := loadReport(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			failed = true
			continue
		}
		curPath := filepath.Join(*currentDir, filepath.Base(basePath))
		cur, err := loadReport(curPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: missing current run (%v)\n", base.Name, err)
			failed = true
			continue
		}
		keys := make([]string, 0, len(base.Metrics))
		for k := range base.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			bv := base.Metrics[k]
			cv, ok := cur.Metrics[k]
			if !ok {
				// Only guarded metrics gate; an informational one gone
				// missing is reported but never fails the run.
				status := "missing"
				if direction(k) != 0 {
					status = "MISSING"
					failed = true
				}
				fmt.Printf("%-12s %-28s %14.1f %14s %9s  %s\n", base.Name, k, bv, "-", "-", status)
				continue
			}
			delta := 0.0
			if bv != 0 {
				delta = (cv - bv) / bv
			}
			status := "info"
			switch dir := direction(k); {
			case dir == 0:
			case dir > 0 && cv < bv*(1-*threshold):
				status = "REGRESSED"
				failed = true
			case dir < 0 && cv > bv*(1+*threshold):
				status = "REGRESSED"
				failed = true
			default:
				status = "ok"
			}
			fmt.Printf("%-12s %-28s %14.1f %14.1f %8.1f%%  %s\n", base.Name, k, bv, cv, delta*100, status)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: FAILED — regression beyond %.0f%% (or missing data)\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}
