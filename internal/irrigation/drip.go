package irrigation

import (
	"fmt"
	"math"

	"github.com/swamp-project/swamp/internal/soil"
)

// DripScheduler is the threshold-refill controller used by the drip pilots
// (Intercrop vegetables, Guaspari vines): irrigate a zone when its
// depletion passes the trigger, refill toward the target.
type DripScheduler struct {
	Config PlannerConfig
}

// NewDripScheduler builds a scheduler.
func NewDripScheduler(cfg PlannerConfig) *DripScheduler {
	cfg.defaults()
	return &DripScheduler{Config: cfg}
}

// Plan returns today's application depth (mm) for one zone.
func (d *DripScheduler) Plan(b *soil.Balance) float64 {
	raw := b.RAW()
	dep := b.Depletion()
	if dep <= d.Config.TriggerFrac*raw {
		return 0
	}
	return math.Min(dep-d.Config.RefillFrac*raw, d.Config.MaxDepthMM)
}

// DeficitScheduler implements regulated deficit irrigation (RDI) — the
// Guaspari strategy: during selected crop stages, deliberately supply only
// a fraction of the full refill so the vines experience controlled stress,
// which concentrates berry flavour (higher quality index) while saving
// water.
type DeficitScheduler struct {
	Inner *DripScheduler
	// StageSupplyFrac scales the full-refill depth per FAO crop stage
	// (initial, development, mid, late). 1 = full supply.
	StageSupplyFrac [4]float64
}

// NewDeficitScheduler validates and builds an RDI scheduler.
func NewDeficitScheduler(cfg PlannerConfig, stageSupply [4]float64) (*DeficitScheduler, error) {
	for i, f := range stageSupply {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("irrigation: stage %d supply fraction %g outside [0,1]", i, f)
		}
	}
	return &DeficitScheduler{Inner: NewDripScheduler(cfg), StageSupplyFrac: stageSupply}, nil
}

// stageOf returns the FAO stage index for a season day.
func stageOf(crop soil.Crop, day int) int {
	d := day
	for i := 0; i < 4; i++ {
		if d < crop.StageDays[i] {
			return i
		}
		d -= crop.StageDays[i]
	}
	return 3
}

// Plan returns today's (possibly deficit) application depth for the zone.
func (r *DeficitScheduler) Plan(b *soil.Balance) float64 {
	full := r.Inner.Plan(b)
	if full == 0 {
		return 0
	}
	return full * r.StageSupplyFrac[stageOf(b.Crop(), b.Day())]
}

// WineQualityIndex scores a finished Guaspari season: moderate stress in
// mid/late season raises quality; severe stress or no stress lowers it.
// The shape follows the RDI literature (quality peaks at mild deficit).
//
// The index combines: water saved (deficit) and yield retention.
func WineQualityIndex(b *soil.Balance) float64 {
	tot := b.Totals()
	if tot.ETc <= 0 {
		return 0
	}
	// Deficit severity: stress-day fraction over the season.
	season := float64(b.Crop().SeasonDays())
	stress := tot.StressDays / season
	// Quality peaks around 10-20% cumulative mild stress.
	const peak = 0.15
	quality := 1 - 2.2*math.Abs(stress-peak)
	return math.Max(0, math.Min(1, quality))
}
