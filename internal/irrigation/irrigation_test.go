package irrigation

import (
	"math"
	"testing"

	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/soil"
)

func grid(t *testing.T, n int) model.FieldGrid {
	t.Helper()
	g, err := model.NewFieldGrid(model.GeoPoint{Lat: -12.15, Lon: -45}, n, n, 25)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func field(t *testing.T, g model.FieldGrid, variability float64) *soil.Field {
	t.Helper()
	f, err := soil.NewHeterogeneousField(g, soil.CropSoybean, soil.ProfileSandyLoam, variability, 42)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPivotLayoutGeometry(t *testing.T) {
	g := grid(t, 16)
	l, err := NewPivotLayout(g, 24)
	if err != nil {
		t.Fatal(err)
	}
	// Corners are outside the circle, centre inside.
	if s := l.SectorOfCell(g.CellIndex(0, 0)); s != -1 {
		t.Errorf("corner in sector %d", s)
	}
	if s := l.SectorOfCell(g.CellIndex(8, 8)); s < 0 {
		t.Error("centre cell outside circle")
	}
	if l.SectorOfCell(-1) != -1 || l.SectorOfCell(9999) != -1 {
		t.Error("out-of-range cell got a sector")
	}
	// Circle fill ratio ≈ π/4 of the square.
	frac := float64(l.IrrigatedCells()) / float64(g.NumCells())
	if math.Abs(frac-math.Pi/4) > 0.08 {
		t.Errorf("irrigated fraction %.3f, want ~%.3f", frac, math.Pi/4)
	}
	// Every sector non-empty and disjoint cover.
	seen := make(map[int]bool)
	total := 0
	for s := 0; s < 24; s++ {
		cells := l.CellsOfSector(s)
		if len(cells) == 0 {
			t.Errorf("sector %d empty", s)
		}
		total += len(cells)
		for _, c := range cells {
			if seen[c] {
				t.Fatalf("cell %d in two sectors", c)
			}
			seen[c] = true
		}
	}
	if total != l.IrrigatedCells() {
		t.Errorf("sector cover %d != irrigated %d", total, l.IrrigatedCells())
	}
	if _, err := NewPivotLayout(g, 0); err == nil {
		t.Error("0 sectors accepted")
	}
}

func TestApplyPrescription(t *testing.T) {
	g := grid(t, 8)
	l, _ := NewPivotLayout(g, 4)
	p := Prescription{1, 2, 3, 4}
	vec, err := l.ApplyPrescription(p)
	if err != nil {
		t.Fatal(err)
	}
	for idx, v := range vec {
		s := l.SectorOfCell(idx)
		if s == -1 && v != 0 {
			t.Errorf("cell %d outside circle watered %g", idx, v)
		}
		if s >= 0 && v != p[s] {
			t.Errorf("cell %d sector %d got %g, want %g", idx, s, v, p[s])
		}
	}
	if _, err := l.ApplyPrescription(Prescription{1}); err == nil {
		t.Error("wrong-length prescription accepted")
	}
}

func TestVRIPlannerTriggersOnlyDrySectors(t *testing.T) {
	g := grid(t, 16)
	f := field(t, g, 0)
	l, _ := NewPivotLayout(g, 8)
	planner := NewVRIPlanner(l, PlannerConfig{})

	// Fresh field at FC: nothing to do.
	if p := planner.Plan(f); sum(p) != 0 {
		t.Errorf("plan on saturated field: %v", p)
	}

	// Dry only sector 3's cells by stepping them individually.
	for _, idx := range l.CellsOfSector(3) {
		for i := 0; i < 60; i++ {
			f.Cells[idx].Step(6, 0, 0)
		}
	}
	p := planner.Plan(f)
	if p[3] <= 0 {
		t.Error("dry sector not triggered")
	}
	for s, depth := range p {
		if s != 3 && depth != 0 {
			t.Errorf("wet sector %d prescribed %g mm", s, depth)
		}
	}
	if p[3] > planner.Config.MaxDepthMM {
		t.Errorf("prescription %g exceeds machine limit", p[3])
	}
}

func TestUniformPlannerWatersWholeCircle(t *testing.T) {
	g := grid(t, 16)
	f := field(t, g, 0.2)
	l, _ := NewPivotLayout(g, 8)
	u := NewUniformPlanner(l, PlannerConfig{})

	// Dry the whole field.
	for i := 0; i < 60; i++ {
		f.StepAll(6, 0, nil)
	}
	p := u.Plan(f)
	first := p[0]
	if first <= 0 {
		t.Fatal("uniform planner did not trigger on dry field")
	}
	for s, d := range p {
		if d != first {
			t.Errorf("sector %d depth %g != %g (not uniform)", s, d, first)
		}
	}
}

// The headline property: on a heterogeneous field over a dry season, VRI
// uses less water than uniform for at least equal yield.
func TestVRIBeatsUniformOnHeterogeneousField(t *testing.T) {
	g := grid(t, 16)
	fVRI := field(t, g, 0.3)
	fUni := field(t, g, 0.3) // same seed → identical soils
	l, _ := NewPivotLayout(g, 24)
	vri := NewVRIPlanner(l, PlannerConfig{})
	uni := NewUniformPlanner(l, PlannerConfig{})

	for day := 0; day < soil.CropSoybean.SeasonDays(); day++ {
		et0 := 5.5
		pV := vri.Plan(fVRI)
		vecV, _ := l.ApplyPrescription(pV)
		if _, err := fVRI.StepAll(et0, 0, vecV); err != nil {
			t.Fatal(err)
		}
		pU := uni.Plan(fUni)
		vecU, _ := l.ApplyPrescription(pU)
		if _, err := fUni.StepAll(et0, 0, vecU); err != nil {
			t.Fatal(err)
		}
	}
	waterV := fVRI.FieldTotals().Irrigation
	waterU := fUni.FieldTotals().Irrigation
	yieldV := fVRI.MeanYieldIndex()
	yieldU := fUni.MeanYieldIndex()
	if waterV >= waterU {
		t.Errorf("VRI used %.1f mm, uniform %.1f mm — expected savings", waterV, waterU)
	}
	if yieldV < yieldU-0.03 {
		t.Errorf("VRI yield %.3f fell below uniform %.3f", yieldV, yieldU)
	}
}

func TestPrescriptionMeanDepth(t *testing.T) {
	g := grid(t, 8)
	l, _ := NewPivotLayout(g, 4)
	if got := l.PrescriptionMeanDepth(Prescription{0, 0, 0, 0}); got != 0 {
		t.Errorf("zero prescription mean %g", got)
	}
	// Uniform 10mm everywhere → mean exactly 10.
	if got := l.PrescriptionMeanDepth(Prescription{10, 10, 10, 10}); math.Abs(got-10) > 1e-9 {
		t.Errorf("uniform mean %g", got)
	}
	// One quadrant watered → mean roughly a quarter (sector sizes are
	// approximately equal).
	got := l.PrescriptionMeanDepth(Prescription{20, 0, 0, 0})
	if got < 3 || got > 7 {
		t.Errorf("single-sector mean %g, want ~5", got)
	}
}

func TestPumpModel(t *testing.T) {
	pm := PumpModel{HeadM: 60, Efficiency: 0.7}
	if err := pm.Validate(); err != nil {
		t.Fatal(err)
	}
	// 1000 m³ against 60 m head at 70%: ~233 kWh.
	e := pm.EnergyKWh(1000)
	if e < 200 || e < 0 || e > 280 {
		t.Errorf("energy = %.1f kWh", e)
	}
	// Less water, less energy — linear.
	if pm.EnergyKWh(500) >= e {
		t.Error("energy not monotone in volume")
	}
	if err := (PumpModel{HeadM: -1, Efficiency: 0.5}).Validate(); err == nil {
		t.Error("negative head accepted")
	}
	if err := (PumpModel{HeadM: 50, Efficiency: 1.5}).Validate(); err == nil {
		t.Error("efficiency >1 accepted")
	}
}

func TestVolumeM3(t *testing.T) {
	if v := VolumeM3(10, 50); v != 5000 {
		t.Errorf("10mm on 50ha = %g m³, want 5000", v)
	}
}

func TestDripScheduler(t *testing.T) {
	d := NewDripScheduler(PlannerConfig{})
	b, _ := soil.NewBalance(soil.CropLettuce, soil.ProfileSandyLoam, 0)
	if got := d.Plan(b); got != 0 {
		t.Errorf("saturated zone scheduled %g mm", got)
	}
	for i := 0; i < 25; i++ {
		b.Step(6, 0, 0)
	}
	got := d.Plan(b)
	if got <= 0 {
		t.Fatal("depleted zone not scheduled")
	}
	if got > d.Config.MaxDepthMM {
		t.Errorf("depth %g exceeds limit", got)
	}
}

func TestDeficitScheduler(t *testing.T) {
	if _, err := NewDeficitScheduler(PlannerConfig{}, [4]float64{1, 1, 2, 1}); err == nil {
		t.Error("supply fraction >1 accepted")
	}
	rdi, err := NewDeficitScheduler(PlannerConfig{}, [4]float64{1, 1, 0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	full := NewDripScheduler(PlannerConfig{})

	// Put a vine zone into mid-season and deplete it.
	bRDI, _ := soil.NewBalance(soil.CropWineGrape, soil.ProfileClayLoam, 0)
	for bRDI.Day() < 90 { // into mid-season
		bRDI.Step(5, 0, 8)
	}
	for i := 0; i < 30; i++ {
		bRDI.Step(5, 0, 0)
	}
	fullDepth := full.Plan(bRDI)
	rdiDepth := rdi.Plan(bRDI)
	if fullDepth <= 0 {
		t.Fatal("zone should need water")
	}
	if math.Abs(rdiDepth-0.5*fullDepth) > 1e-9 {
		t.Errorf("mid-season RDI depth %g, want half of %g", rdiDepth, fullDepth)
	}
}

func TestWineQualityPeaksAtMildStress(t *testing.T) {
	mk := func(trigger float64, irrigate bool) *soil.Balance {
		b, _ := soil.NewBalance(soil.CropWineGrape, soil.ProfileClayLoam, 0)
		d := NewDripScheduler(PlannerConfig{TriggerFrac: trigger, MaxDepthMM: 100})
		for i := 0; i < soil.CropWineGrape.SeasonDays(); i++ {
			depth := 0.0
			if irrigate {
				depth = d.Plan(b)
			}
			b.Step(5, 0, depth)
		}
		return b
	}
	lush := WineQualityIndex(mk(0.9, true))  // irrigated before any stress
	mild := WineQualityIndex(mk(1.5, true))  // regulated deficit: trigger past RAW
	severe := WineQualityIndex(mk(0, false)) // drought
	if !(mild > lush) {
		t.Errorf("mild deficit quality %.3f should beat full supply %.3f", mild, lush)
	}
	if !(mild > severe) {
		t.Errorf("mild deficit quality %.3f should beat drought %.3f", mild, severe)
	}
}

func TestActuatorBank(t *testing.T) {
	a := NewActuatorBank()
	if err := a.Apply(model.Command{Target: "valve-1", Name: "open", Value: 0.8, Issuer: "farmer"}); err != nil {
		t.Fatal(err)
	}
	if got := a.State("valve-1"); got != 0.8 {
		t.Errorf("state = %g", got)
	}
	if err := a.Apply(model.Command{Target: "valve-1", Name: "close", Issuer: "farmer"}); err != nil {
		t.Fatal(err)
	}
	if got := a.State("valve-1"); got != 0 {
		t.Errorf("state after close = %g", got)
	}
	if err := a.Apply(model.Command{Target: "valve-1", Name: "explode", Value: 1}); err == nil {
		t.Error("unknown verb accepted")
	}
	if err := a.Apply(model.Command{Target: "valve-1", Name: "set", Value: -2}); err == nil {
		t.Error("negative value accepted")
	}
	a.Apply(model.Command{Target: "pump-1", Name: "setRate", Value: 5, Issuer: "attacker"})
	if len(a.Journal()) != 3 {
		t.Errorf("journal = %d entries", len(a.Journal()))
	}
	sum := a.IssuerSummary()
	if len(sum) != 2 || sum[0].Issuer != "attacker" || sum[0].Commands != 1 {
		t.Errorf("issuer summary %+v", sum)
	}
	if len(a.States()) != 2 {
		t.Errorf("states = %v", a.States())
	}
}

func sum(p Prescription) float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}
