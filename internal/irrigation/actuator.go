package irrigation

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/model"
)

// ActuatorBank tracks the commanded state of a deployment's actuators
// (valves, pumps, pivot sector rates). It is the component a hijacked
// credential would drive — the §III actuator-takeover threat — so every
// state change is journaled with its issuer for the anomaly layer to audit.
type ActuatorBank struct {
	mu      sync.Mutex
	states  map[model.DeviceID]float64
	journal []model.Command
	maxLog  int
}

// NewActuatorBank returns an empty bank retaining up to 10k journal
// entries.
func NewActuatorBank() *ActuatorBank {
	return &ActuatorBank{states: make(map[model.DeviceID]float64), maxLog: 10_000}
}

// Apply executes a command: "open"/"setRate"/"close" set the target's
// state value. Unknown verbs fail.
func (a *ActuatorBank) Apply(cmd model.Command) error {
	if err := cmd.Validate(); err != nil {
		return err
	}
	var v float64
	switch cmd.Name {
	case "open", "setRate", "set":
		v = cmd.Value
	case "close", "stop":
		v = 0
	default:
		return fmt.Errorf("irrigation: unknown actuator verb %q", cmd.Name)
	}
	if v < 0 {
		return fmt.Errorf("irrigation: negative actuator value %g", v)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.states[cmd.Target] = v
	if cmd.At.IsZero() {
		cmd.At = time.Now()
	}
	a.journal = append(a.journal, cmd)
	if len(a.journal) > a.maxLog {
		a.journal = append(a.journal[:0], a.journal[len(a.journal)-a.maxLog:]...)
	}
	return nil
}

// State returns the current value of an actuator (0 when never commanded).
func (a *ActuatorBank) State(id model.DeviceID) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.states[id]
}

// States returns a copy of all actuator states.
func (a *ActuatorBank) States() map[model.DeviceID]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[model.DeviceID]float64, len(a.states))
	for k, v := range a.states {
		out[k] = v
	}
	return out
}

// Journal returns a copy of the command journal, oldest first.
func (a *ActuatorBank) Journal() []model.Command {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]model.Command(nil), a.journal...)
}

// IssuerSummary counts journal entries per issuer — the quick forensic view
// after a suspected takeover.
func (a *ActuatorBank) IssuerSummary() []IssuerCount {
	a.mu.Lock()
	defer a.mu.Unlock()
	counts := make(map[string]int)
	for _, c := range a.journal {
		counts[c.Issuer]++
	}
	out := make([]IssuerCount, 0, len(counts))
	for issuer, n := range counts {
		out = append(out, IssuerCount{Issuer: issuer, Commands: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Issuer < out[j].Issuer })
	return out
}

// IssuerCount pairs an issuer with its command count.
type IssuerCount struct {
	Issuer   string
	Commands int
}
