// Package irrigation implements the actuation side of SWAMP: center-pivot
// geometry with Variable Rate Irrigation (the MATOPIBA pilot's headline
// mechanism), a uniform-rate baseline for comparison, threshold and
// regulated-deficit drip scheduling (Intercrop, Guaspari), the pump energy
// model behind the pilot's energy-saving goal, and the valve/actuator state
// bank that southbound commands act on.
package irrigation

import (
	"fmt"
	"math"

	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/soil"
)

// PivotLayout maps a center pivot onto a field grid: the machine sits at
// the grid centre and sweeps a circle divided into equal angular sectors,
// each of which a VRI controller can water at its own rate.
type PivotLayout struct {
	Grid    model.FieldGrid
	Sectors int
	// radius in cells (derived).
	radiusCells float64
	sectorOf    []int // per-cell sector index, -1 outside the circle
}

// NewPivotLayout builds a layout with the largest circle that fits the
// grid.
func NewPivotLayout(grid model.FieldGrid, sectors int) (*PivotLayout, error) {
	if sectors < 1 || sectors > 360 {
		return nil, fmt.Errorf("irrigation: %d sectors outside [1,360]", sectors)
	}
	l := &PivotLayout{Grid: grid, Sectors: sectors}
	l.radiusCells = math.Min(float64(grid.Rows), float64(grid.Cols)) / 2
	l.sectorOf = make([]int, grid.NumCells())
	cr, cc := float64(grid.Rows)/2, float64(grid.Cols)/2
	for idx := range l.sectorOf {
		r, c := grid.CellRC(idx)
		dy := float64(r) + 0.5 - cr
		dx := float64(c) + 0.5 - cc
		if math.Hypot(dx, dy) > l.radiusCells {
			l.sectorOf[idx] = -1
			continue
		}
		ang := math.Atan2(dy, dx) // [-pi, pi]
		if ang < 0 {
			ang += 2 * math.Pi
		}
		s := int(ang / (2 * math.Pi) * float64(sectors))
		if s == sectors {
			s = sectors - 1
		}
		l.sectorOf[idx] = s
	}
	return l, nil
}

// SectorOfCell returns the sector of a cell, or -1 outside the circle.
func (l *PivotLayout) SectorOfCell(idx int) int {
	if idx < 0 || idx >= len(l.sectorOf) {
		return -1
	}
	return l.sectorOf[idx]
}

// CellsOfSector returns the cell indices of sector s.
func (l *PivotLayout) CellsOfSector(s int) []int {
	var out []int
	for idx, sec := range l.sectorOf {
		if sec == s {
			out = append(out, idx)
		}
	}
	return out
}

// IrrigatedCells returns how many cells lie inside the circle.
func (l *PivotLayout) IrrigatedCells() int {
	n := 0
	for _, s := range l.sectorOf {
		if s >= 0 {
			n++
		}
	}
	return n
}

// IrrigatedAreaHa returns the circle area actually covered by cells, in
// hectares.
func (l *PivotLayout) IrrigatedAreaHa() float64 {
	cellHa := l.Grid.CellSizeM * l.Grid.CellSizeM / 10_000
	return float64(l.IrrigatedCells()) * cellHa
}

// Prescription is a per-sector application depth map (mm).
type Prescription []float64

// PrescriptionMeanDepth returns the area-weighted mean application depth
// (mm) over the irrigated circle.
func (l *PivotLayout) PrescriptionMeanDepth(p Prescription) float64 {
	total, n := 0.0, 0
	for _, s := range l.sectorOf {
		if s < 0 {
			continue
		}
		total += p[s]
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// ApplyPrescription expands a per-sector prescription to a per-cell
// irrigation vector suitable for soil.Field.StepAll.
func (l *PivotLayout) ApplyPrescription(p Prescription) ([]float64, error) {
	if len(p) != l.Sectors {
		return nil, fmt.Errorf("irrigation: prescription has %d sectors, layout %d", len(p), l.Sectors)
	}
	out := make([]float64, len(l.sectorOf))
	for idx, s := range l.sectorOf {
		if s >= 0 {
			out[idx] = p[s]
		}
	}
	return out, nil
}

// PlannerConfig tunes the irrigation decision threshold and refill target —
// identical for VRI and uniform planners so comparisons isolate the spatial
// resolution.
type PlannerConfig struct {
	// TriggerFrac: irrigate when depletion exceeds TriggerFrac × RAW
	// (default 0.9 — just before stress).
	TriggerFrac float64
	// RefillFrac: apply enough water to return depletion to RefillFrac ×
	// RAW (default 0.1).
	RefillFrac float64
	// MaxDepthMM bounds a single application (machine limit, default 20).
	MaxDepthMM float64
}

func (c *PlannerConfig) defaults() {
	if c.TriggerFrac <= 0 {
		c.TriggerFrac = 0.9
	}
	if c.RefillFrac < 0 {
		c.RefillFrac = 0
	} else if c.RefillFrac == 0 {
		c.RefillFrac = 0.1
	}
	if c.MaxDepthMM <= 0 {
		c.MaxDepthMM = 20
	}
}

// VRIPlanner decides a per-sector prescription from the field's current
// depletion state: each sector is triggered and sized independently.
type VRIPlanner struct {
	Layout *PivotLayout
	Config PlannerConfig
}

// NewVRIPlanner builds a planner.
func NewVRIPlanner(layout *PivotLayout, cfg PlannerConfig) *VRIPlanner {
	cfg.defaults()
	return &VRIPlanner{Layout: layout, Config: cfg}
}

// Plan inspects the field and produces today's prescription.
func (v *VRIPlanner) Plan(field *soil.Field) Prescription {
	p := make(Prescription, v.Layout.Sectors)
	for s := 0; s < v.Layout.Sectors; s++ {
		cells := v.Layout.CellsOfSector(s)
		if len(cells) == 0 {
			continue
		}
		var dep, raw float64
		for _, idx := range cells {
			dep += field.Cells[idx].Depletion()
			raw += field.Cells[idx].RAW()
		}
		dep /= float64(len(cells))
		raw /= float64(len(cells))
		if dep > v.Config.TriggerFrac*raw {
			depth := dep - v.Config.RefillFrac*raw
			p[s] = math.Min(depth, v.Config.MaxDepthMM)
		}
	}
	return p
}

// UniformPlanner is the conventional-practice baseline: one rate for the
// whole circle, sized so that no zone is under-irrigated. The SWAMP paper's
// introduction describes exactly this behaviour — "in an attempt to avoid
// loss of productivity by under-irrigation, farmers feed more water than is
// needed" — so the baseline triggers on the *driest* sector and applies
// that sector's requirement everywhere.
type UniformPlanner struct {
	Layout *PivotLayout
	Config PlannerConfig
}

// NewUniformPlanner builds the baseline planner.
func NewUniformPlanner(layout *PivotLayout, cfg PlannerConfig) *UniformPlanner {
	cfg.defaults()
	return &UniformPlanner{Layout: layout, Config: cfg}
}

// Plan returns a prescription with the same depth in every sector, driven
// by the neediest sector.
func (u *UniformPlanner) Plan(field *soil.Field) Prescription {
	p := make(Prescription, u.Layout.Sectors)
	worstDep, worstRAW := 0.0, 0.0
	worstRatio := -1.0
	for s := 0; s < u.Layout.Sectors; s++ {
		cells := u.Layout.CellsOfSector(s)
		if len(cells) == 0 {
			continue
		}
		var dep, raw float64
		for _, idx := range cells {
			dep += field.Cells[idx].Depletion()
			raw += field.Cells[idx].RAW()
		}
		dep /= float64(len(cells))
		raw /= float64(len(cells))
		if raw > 0 && dep/raw > worstRatio {
			worstRatio = dep / raw
			worstDep, worstRAW = dep, raw
		}
	}
	if worstRatio < 0 || worstDep <= u.Config.TriggerFrac*worstRAW {
		return p
	}
	depth := math.Min(worstDep-u.Config.RefillFrac*worstRAW, u.Config.MaxDepthMM)
	for s := range p {
		p[s] = depth
	}
	return p
}

// PumpModel converts irrigation volume to pump energy — the quantity the
// MATOPIBA pilot wants to cut.
type PumpModel struct {
	// HeadM is the total dynamic head the pump works against.
	HeadM float64
	// Efficiency is the wire-to-water efficiency (0,1].
	Efficiency float64
}

// Validate reports the first implausible parameter.
func (p PumpModel) Validate() error {
	if p.HeadM <= 0 || p.HeadM > 500 {
		return fmt.Errorf("irrigation: pump head %g m implausible", p.HeadM)
	}
	if p.Efficiency <= 0 || p.Efficiency > 1 {
		return fmt.Errorf("irrigation: pump efficiency %g outside (0,1]", p.Efficiency)
	}
	return nil
}

// EnergyKWh returns the energy to lift volumeM3 against the head:
// E = ρ·g·H·V / (3.6e6 · η).
func (p PumpModel) EnergyKWh(volumeM3 float64) float64 {
	const rhoG = 1000 * 9.81
	return rhoG * p.HeadM * volumeM3 / (3.6e6 * p.Efficiency)
}

// VolumeM3 converts an application depth over an area to volume:
// 1 mm over 1 ha = 10 m³.
func VolumeM3(depthMM, areaHa float64) float64 {
	return depthMM * areaHa * 10
}
