// Package clock abstracts time so the platform can run against the wall
// clock in deployments and against a fast simulated clock in tests,
// benchmarks and season-long simulations (a 120-day irrigation season must
// run in milliseconds).
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time source the platform depends on.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the then-current time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the wall clock. The zero value is ready to use.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sim is a manually advanced simulated clock. It is safe for concurrent
// use. Timers fire during Advance in timestamp order.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters []simWaiter
}

type simWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewSim returns a simulated clock starting at start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// After implements Clock. The returned channel has capacity 1 so Advance
// never blocks on an abandoned waiter.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.waiters = append(s.waiters, simWaiter{at: s.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing any timers that come due, in
// order.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	// Fire waiters in timestamp order up to target.
	sort.Slice(s.waiters, func(i, j int) bool { return s.waiters[i].at.Before(s.waiters[j].at) })
	var rest []simWaiter
	fired := s.waiters[:0]
	for _, w := range s.waiters {
		if !w.at.After(target) {
			fired = append(fired, w)
		} else {
			rest = append(rest, w)
		}
	}
	s.waiters = rest
	s.now = target
	s.mu.Unlock()
	for _, w := range fired {
		w.ch <- w.at
	}
}

// PendingWaiters returns how many timers are currently registered. Tests
// use it to synchronize with goroutines that loop on After: advance only
// once the loop has re-armed its timer.
func (s *Sim) PendingWaiters() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}

// Set jumps the clock to t (which must not be in the past of the clock),
// firing due timers.
func (s *Sim) Set(t time.Time) {
	s.mu.Lock()
	d := t.Sub(s.now)
	s.mu.Unlock()
	if d > 0 {
		s.Advance(d)
	}
}
