package clock

import (
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	var c Real
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestSimAdvanceFiresTimers(t *testing.T) {
	start := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	s := NewSim(start)

	ch1 := s.After(10 * time.Minute)
	ch2 := s.After(30 * time.Minute)

	s.Advance(15 * time.Minute)
	select {
	case at := <-ch1:
		if want := start.Add(10 * time.Minute); !at.Equal(want) {
			t.Errorf("timer fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("10-minute timer did not fire after 15-minute advance")
	}
	select {
	case <-ch2:
		t.Fatal("30-minute timer fired early")
	default:
	}

	s.Advance(15 * time.Minute)
	select {
	case <-ch2:
	default:
		t.Fatal("30-minute timer did not fire")
	}
	if got := s.Now(); !got.Equal(start.Add(30 * time.Minute)) {
		t.Errorf("Now = %v", got)
	}
}

func TestSimAfterNonPositive(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	select {
	case <-s.After(0):
	default:
		t.Error("After(0) did not fire immediately")
	}
	select {
	case <-s.After(-time.Second):
	default:
		t.Error("After(negative) did not fire immediately")
	}
}

func TestSimSet(t *testing.T) {
	start := time.Unix(1000, 0)
	s := NewSim(start)
	ch := s.After(5 * time.Second)
	s.Set(start.Add(10 * time.Second))
	select {
	case <-ch:
	default:
		t.Error("Set did not fire due timer")
	}
	// Set to the past is a no-op.
	s.Set(start)
	if got := s.Now(); !got.Equal(start.Add(10 * time.Second)) {
		t.Errorf("Set backwards moved the clock to %v", got)
	}
}

func TestSimTimersFireInOrder(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	chans := make([]<-chan time.Time, 10)
	for i := range chans {
		chans[i] = s.After(time.Duration(10-i) * time.Second) // reverse order
	}
	s.Advance(time.Minute)
	var last time.Time
	for i := len(chans) - 1; i >= 0; i-- { // chans[9] fires first (1s)
		at := <-chans[i]
		if at.Before(last) {
			t.Fatalf("timers fired out of order: %v before %v", at, last)
		}
		last = at
	}
}
