// Package shardhash is the allocation-free FNV-1a hash both sharded
// planes (the NGSI context broker and the time-series engine) use to
// spread keys over shards. Keeping it in one place keeps their shard
// distribution behavior from silently diverging.
package shardhash

const (
	offset32 = 2166136261
	prime32  = 16777619
)

// Sum hashes parts as if joined by '/', without allocating.
func Sum(parts ...string) uint32 {
	h := uint32(offset32)
	for i, part := range parts {
		if i > 0 {
			h ^= uint32('/')
			h *= prime32
		}
		for j := 0; j < len(part); j++ {
			h ^= uint32(part[j])
			h *= prime32
		}
	}
	return h
}

// Index maps parts onto one of n shards. n must be positive.
func Index(n int, parts ...string) int {
	return int(Sum(parts...) % uint32(n))
}
