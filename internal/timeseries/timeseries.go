// Package timeseries implements the in-memory time-series store the SWAMP
// cloud and fog layers persist telemetry into. It supports appends, range
// queries, aggregation and downsampling, with optional retention by count.
//
// The store stands in for the historical-data backends a FIWARE deployment
// would use (STH-Comet / QuantumLeap); it offers the same query shapes the
// analytics layer needs.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Point is one sample in a series.
type Point struct {
	At    time.Time
	Value float64
}

// SeriesKey identifies a series: one device/quantity pair.
type SeriesKey struct {
	Device   string
	Quantity string
}

// String implements fmt.Stringer.
func (k SeriesKey) String() string { return k.Device + "/" + k.Quantity }

// Store is a concurrency-safe collection of series. The zero value is not
// usable; construct with New.
type Store struct {
	mu        sync.RWMutex
	series    map[SeriesKey]*series
	maxPoints int // per-series retention, 0 = unlimited
}

type series struct {
	pts []Point // kept sorted by At
}

// Option configures a Store.
type Option func(*Store)

// WithMaxPointsPerSeries bounds per-series memory: when a series exceeds n
// points the oldest are dropped.
func WithMaxPointsPerSeries(n int) Option {
	return func(s *Store) { s.maxPoints = n }
}

// New constructs an empty store.
func New(opts ...Option) *Store {
	s := &Store{series: make(map[SeriesKey]*series)}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Append adds a point to the series identified by key. Out-of-order appends
// are accepted and inserted in timestamp order.
func (s *Store) Append(key SeriesKey, p Point) error {
	if key.Device == "" || key.Quantity == "" {
		return fmt.Errorf("timeseries: empty series key")
	}
	if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
		return fmt.Errorf("timeseries %s: non-finite value", key)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[key]
	if sr == nil {
		sr = &series{}
		s.series[key] = sr
	}
	n := len(sr.pts)
	if n == 0 || !p.At.Before(sr.pts[n-1].At) {
		sr.pts = append(sr.pts, p)
	} else {
		// Out-of-order: binary search for insertion point.
		i := sort.Search(n, func(i int) bool { return sr.pts[i].At.After(p.At) })
		sr.pts = append(sr.pts, Point{})
		copy(sr.pts[i+1:], sr.pts[i:])
		sr.pts[i] = p
	}
	if s.maxPoints > 0 && len(sr.pts) > s.maxPoints {
		drop := len(sr.pts) - s.maxPoints
		sr.pts = append(sr.pts[:0], sr.pts[drop:]...)
	}
	return nil
}

// Len returns the number of points currently held for key.
func (s *Store) Len(key SeriesKey) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sr := s.series[key]; sr != nil {
		return len(sr.pts)
	}
	return 0
}

// Keys returns all series keys, sorted for determinism.
func (s *Store) Keys() []SeriesKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]SeriesKey, 0, len(s.series))
	for k := range s.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Device != keys[j].Device {
			return keys[i].Device < keys[j].Device
		}
		return keys[i].Quantity < keys[j].Quantity
	})
	return keys
}

// Range returns a copy of the points in [from, to) for key, in order.
func (s *Store) Range(key SeriesKey, from, to time.Time) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[key]
	if sr == nil {
		return nil
	}
	lo := sort.Search(len(sr.pts), func(i int) bool { return !sr.pts[i].At.Before(from) })
	hi := sort.Search(len(sr.pts), func(i int) bool { return !sr.pts[i].At.Before(to) })
	if lo >= hi {
		return nil
	}
	out := make([]Point, hi-lo)
	copy(out, sr.pts[lo:hi])
	return out
}

// Latest returns the most recent point for key, and whether one exists.
func (s *Store) Latest(key SeriesKey) (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[key]
	if sr == nil || len(sr.pts) == 0 {
		return Point{}, false
	}
	return sr.pts[len(sr.pts)-1], true
}

// Aggregate summarises the points of key in [from, to).
type Aggregate struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
	Sum   float64
}

// Summarize computes an Aggregate over [from, to). Count==0 means no data.
func (s *Store) Summarize(key SeriesKey, from, to time.Time) Aggregate {
	pts := s.Range(key, from, to)
	agg := Aggregate{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, p := range pts {
		agg.Count++
		agg.Sum += p.Value
		agg.Min = math.Min(agg.Min, p.Value)
		agg.Max = math.Max(agg.Max, p.Value)
	}
	if agg.Count > 0 {
		agg.Mean = agg.Sum / float64(agg.Count)
	} else {
		agg.Min, agg.Max = 0, 0
	}
	return agg
}

// Downsample buckets the points of key in [from, to) into fixed windows and
// returns one mean point per non-empty window, stamped at the window start.
func (s *Store) Downsample(key SeriesKey, from, to time.Time, window time.Duration) ([]Point, error) {
	if window <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive downsample window %v", window)
	}
	pts := s.Range(key, from, to)
	if len(pts) == 0 {
		return nil, nil
	}
	var out []Point
	wStart := from
	var sum float64
	var n int
	flush := func() {
		if n > 0 {
			out = append(out, Point{At: wStart, Value: sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for _, p := range pts {
		for !p.At.Before(wStart.Add(window)) {
			flush()
			wStart = wStart.Add(window)
		}
		sum += p.Value
		n++
	}
	flush()
	return out, nil
}

// DeleteBefore removes all points older than cutoff from every series and
// returns how many points were dropped.
func (s *Store) DeleteBefore(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for _, sr := range s.series {
		i := sort.Search(len(sr.pts), func(i int) bool { return !sr.pts[i].At.Before(cutoff) })
		if i > 0 {
			dropped += i
			sr.pts = append(sr.pts[:0], sr.pts[i:]...)
		}
	}
	return dropped
}
