// Package timeseries implements the in-memory time-series store the SWAMP
// cloud and fog layers persist telemetry into: the stand-in for the
// historical-data backends of a FIWARE deployment (STH-Comet /
// QuantumLeap), offering the query shapes the analytics layer needs.
//
// The engine is sharded and chunked. Series are spread over hash-sharded
// maps (one lock each) so appends to different devices never contend, and
// each series stores its points as fixed-size chunks: sealed chunks are
// immutable and carry precomputed summaries (count/sum/min/max/first/last),
// so Summarize and AggregateWindows push aggregation down onto chunk
// summaries plus a partial scan of at most the two edge chunks per range —
// no point copying — and the heavy part of a read runs on a lock-free
// snapshot of the sealed slice. Retention is by point count
// (WithMaxPointsPerSeries) and by age (WithMaxAge plus a background
// eviction loop that also drops emptied series).
//
// LegacyStore preserves the previous engine (one RWMutex over flat sorted
// slices, O(points) copy per query) for benchmarks and equivalence tests.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/shardhash"
)

// Point is one sample in a series.
type Point struct {
	At    time.Time
	Value float64
}

// SeriesKey identifies a series: one device/quantity pair.
type SeriesKey struct {
	Device   string
	Quantity string
}

// String implements fmt.Stringer.
func (k SeriesKey) String() string { return k.Device + "/" + k.Quantity }

// Defaults for the tunable knobs.
const (
	// DefaultShards is the shard count used when WithShards is not given.
	DefaultShards = 8
	// DefaultChunkSize is the points-per-sealed-chunk used when
	// WithChunkSize is not given.
	DefaultChunkSize = 512
	// DefaultEvictionInterval is the background eviction cadence used when
	// WithMaxAge is set without WithEvictionInterval.
	DefaultEvictionInterval = time.Minute
)

// Store is a concurrency-safe collection of series. The zero value is not
// usable; construct with New. Close releases the background eviction
// goroutine (a no-op when age-based retention is off).
type Store struct {
	shards     []*tsShard
	chunkSize  int
	maxPoints  int          // per-series retention by count, 0 = unlimited
	maxAge     atomic.Int64 // per-point retention by age in ns, 0 = unlimited; reloadable
	evictEvery time.Duration
	clk        clock.Clock

	// journal, when set, receives every accepted append; callers are only
	// acknowledged once the journal ack resolves. Set via SetJournal
	// before the store receives traffic.
	journal Journal

	nshards   int // applied by options before shards are built
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	loopMu      sync.Mutex // guards loopRunning/closed for lazy loop start
	loopRunning bool
	closed      bool
}

type tsShard struct {
	mu     sync.RWMutex
	series map[SeriesKey]*series
}

// Option configures a Store.
type Option func(*Store)

// WithMaxPointsPerSeries bounds per-series memory: when a series exceeds n
// points the oldest are dropped. The bound is exact while a series fits in
// its head run; once chunks have sealed it is chunk-granular — the oldest
// chunk drops when it is entirely over the cap, so a series may hold up to
// one extra chunk (keeping steady-state appends O(1) at the cap).
func WithMaxPointsPerSeries(n int) Option {
	return func(s *Store) { s.maxPoints = n }
}

// WithShards sets the number of hash-sharded series maps (default
// DefaultShards). Non-positive values keep the default.
func WithShards(n int) Option {
	return func(s *Store) {
		if n > 0 {
			s.nshards = n
		}
	}
}

// WithChunkSize sets the seal threshold: a series' head run seals into an
// immutable summarised chunk once it reaches n points (default
// DefaultChunkSize). Values below 2 keep the default.
func WithChunkSize(n int) Option {
	return func(s *Store) {
		if n >= 2 {
			s.chunkSize = n
		}
	}
}

// WithMaxAge enables time-based retention: points older than d are dropped
// by the background eviction loop (see WithEvictionInterval) and by
// EvictExpired. Series emptied by eviction are removed entirely.
func WithMaxAge(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.maxAge.Store(int64(d))
		}
	}
}

// WithEvictionInterval sets the background eviction cadence (default
// DefaultEvictionInterval). Only meaningful together with WithMaxAge.
func WithEvictionInterval(d time.Duration) Option {
	return func(s *Store) {
		if d > 0 {
			s.evictEvery = d
		}
	}
}

// WithClock sets the time source for age-based retention; nil keeps the
// wall clock. Tests drive eviction with a simulated clock.
func WithClock(c clock.Clock) Option {
	return func(s *Store) {
		if c != nil {
			s.clk = c
		}
	}
}

// New constructs an empty store. If WithMaxAge is given, a background
// eviction goroutine starts; call Close to stop it.
func New(opts ...Option) *Store {
	s := &Store{
		nshards:   DefaultShards,
		chunkSize: DefaultChunkSize,
		clk:       clock.Real{},
	}
	for _, o := range opts {
		o(s)
	}
	s.shards = make([]*tsShard, s.nshards)
	for i := range s.shards {
		s.shards[i] = &tsShard{series: make(map[SeriesKey]*series)}
	}
	if s.evictEvery <= 0 {
		s.evictEvery = DefaultEvictionInterval
	}
	s.done = make(chan struct{})
	if s.maxAge.Load() > 0 {
		s.startEvictLoop()
	}
	return s
}

// SetMaxAge changes the retention window at runtime: d > 0 enables
// age-based eviction (starting the background loop if it never ran),
// d <= 0 disables it — retained points stop expiring but stay queryable.
func (s *Store) SetMaxAge(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.maxAge.Store(int64(d))
	if d > 0 {
		s.startEvictLoop()
	}
}

// MaxAge returns the current retention window (0 = unlimited).
func (s *Store) MaxAge() time.Duration { return time.Duration(s.maxAge.Load()) }

// startEvictLoop starts the background eviction goroutine once; the loop
// itself no-ops while retention is disabled, so it is safe to leave
// running across disable/enable cycles.
func (s *Store) startEvictLoop() {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if s.loopRunning || s.closed {
		return
	}
	s.loopRunning = true
	s.wg.Add(1)
	go s.evictLoop()
}

// Close stops the background eviction goroutine. Safe to call multiple
// times; the store itself remains usable for appends and queries.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		s.loopMu.Lock()
		s.closed = true
		s.loopMu.Unlock()
		close(s.done)
		s.wg.Wait()
	})
}

func (s *Store) evictLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.clk.After(s.evictEvery):
			s.EvictExpired()
		}
	}
}

// EvictExpired applies age-based retention now: every point older than
// MaxAge is dropped and emptied series are removed. It returns the number
// of points dropped (0 while retention is disabled).
func (s *Store) EvictExpired() int {
	maxAge := time.Duration(s.maxAge.Load())
	if maxAge <= 0 {
		return 0
	}
	return s.DeleteBefore(s.clk.Now().Add(-maxAge))
}

// shardIndex hashes a series key onto its shard (FNV-1a over
// device + '/' + quantity, allocation-free).
func (s *Store) shardIndex(k SeriesKey) int {
	return shardhash.Index(len(s.shards), k.Device, k.Quantity)
}

func (s *Store) shardFor(k SeriesKey) *tsShard { return s.shards[s.shardIndex(k)] }

func validatePoint(key SeriesKey, p Point) error {
	if key.Device == "" || key.Quantity == "" {
		return fmt.Errorf("timeseries: empty series key")
	}
	if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
		return fmt.Errorf("timeseries %s: non-finite value", key)
	}
	return nil
}

// appendLocked inserts p into the (existing or new) series for key and
// applies count-based retention. The shard write lock must be held.
// applyLocked inserts a point without enforcing the retention cap. The
// journaled paths use it and defer eviction until the ack succeeds (see
// enforceCapGroup): evicting before durability is known would let a
// failed batch's rollback — which removes only the new points — drain a
// capped series a little further on every retry.
func (s *Store) applyLocked(sh *tsShard, key SeriesKey, p Point) {
	sr := sh.series[key]
	if sr == nil {
		sr = &series{}
		sh.series[key] = sr
	}
	sr.appendLocked(p, s.chunkSize)
}

// appendLocked is applyLocked plus immediate cap enforcement — the
// unjournaled path.
func (s *Store) appendLocked(sh *tsShard, key SeriesKey, p Point) {
	s.applyLocked(sh, key, p)
	if s.maxPoints > 0 {
		sh.series[key].enforceCapLocked(s.maxPoints)
	}
}

// enforceCapGroup applies the retention cap to every series in pts —
// the deferred half of applyLocked, run after a successful journal ack.
func (s *Store) enforceCapGroup(sh *tsShard, pts []BatchPoint) {
	if s.maxPoints <= 0 {
		return
	}
	sh.mu.Lock()
	for _, bp := range pts {
		if sr := sh.series[bp.Key]; sr != nil {
			sr.enforceCapLocked(s.maxPoints)
		}
	}
	sh.mu.Unlock()
}

// JournalAck is the durability handle a Journal hook returns: Wait
// blocks until the logged append is durable.
type JournalAck interface {
	Wait() error
}

// Journal receives every accepted append after it has been applied in
// memory, called under the shard lock so log order matches apply order
// per shard; the Wait happens after the lock is released. Together with
// DumpFrozen's full-store freeze this gives exact-count recovery:
// snapshot state plus tail replay reproduces precisely the acknowledged
// points, with no duplicates and no losses.
type Journal interface {
	PointsAppended(batch []BatchPoint) JournalAck
}

// SetJournal attaches a journal. It must be called before the store
// receives traffic (between recovery and serving) — the field is read
// without synchronization on the append paths.
func (s *Store) SetJournal(j Journal) { s.journal = j }

// Append adds a point to the series identified by key. Out-of-order appends
// are accepted and inserted in timestamp order.
func (s *Store) Append(key SeriesKey, p Point) error {
	if err := validatePoint(key, p); err != nil {
		return err
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	var ack JournalAck
	if s.journal != nil {
		s.applyLocked(sh, key, p)
		ack = s.journal.PointsAppended([]BatchPoint{{Key: key, Point: p}})
	} else {
		s.appendLocked(sh, key, p)
	}
	sh.mu.Unlock()
	if ack != nil {
		if err := ack.Wait(); err != nil {
			s.rollback(sh, []BatchPoint{{Key: key, Point: p}})
			return err
		}
		s.enforceCapGroup(sh, []BatchPoint{{Key: key, Point: p}})
	}
	return nil
}

// rollback removes a group of just-applied points whose journal ack
// failed, so the in-memory state matches the reported outcome and a
// caller's retry cannot duplicate points. A series emptied by the
// rollback is dropped from the shard map (else device churn during a
// durability outage would grow it unboundedly). Returns how many points
// were actually removed (one may already be gone via the retention cap).
func (s *Store) rollback(sh *tsShard, pts []BatchPoint) int {
	removed := 0
	sh.mu.Lock()
	for _, bp := range pts {
		sr := sh.series[bp.Key]
		if sr == nil {
			continue
		}
		if sr.removeLocked(bp.Point) {
			removed++
		}
		if sr.totalLocked() == 0 {
			delete(sh.series, bp.Key)
		}
	}
	sh.mu.Unlock()
	return removed
}

// BatchPoint is one entry of an AppendBatch: a point addressed to a series.
type BatchPoint struct {
	Key   SeriesKey
	Point Point
}

// AppendBatch appends a batch of points taking each shard lock at most
// once, however many series the batch touches. Invalid entries (empty key,
// non-finite value) are skipped; every valid entry lands. It returns how
// many points were accepted, how many rejected, and — when a journal is
// attached — the durability error. The batch journals as a single
// record, so durability is all-or-nothing: on a failed ack every
// applied point is rolled back (removed from memory, not counted
// accepted), and the caller's retry cannot duplicate a
// partially-committed prefix.
func (s *Store) AppendBatch(batch []BatchPoint) (accepted, rejected int, err error) {
	if len(batch) == 0 {
		return 0, 0, nil
	}
	groups := make([][]int, len(s.shards))
	valid := 0
	for i := range batch {
		if validatePoint(batch[i].Key, batch[i].Point) != nil {
			rejected++
			continue
		}
		si := s.shardIndex(batch[i].Key)
		groups[si] = append(groups[si], i)
		valid++
	}
	if valid == 0 {
		return 0, rejected, nil
	}
	var touched []int
	for si := range groups {
		if len(groups[si]) > 0 {
			touched = append(touched, si)
		}
	}
	// Lock every touched shard (ascending index, the same order
	// DumpFrozen uses) and enqueue ONE record for the whole batch while
	// holding them: log order matches apply order on every shard, the
	// snapshot freeze still cleanly splits applied-and-logged from
	// not-yet-applied, and the single record is what makes durability
	// all-or-nothing across shards.
	for _, si := range touched {
		s.shards[si].mu.Lock()
	}
	applied := make([]BatchPoint, 0, valid)
	for _, si := range touched {
		sh := s.shards[si]
		for _, i := range groups[si] {
			if s.journal != nil {
				s.applyLocked(sh, batch[i].Key, batch[i].Point)
			} else {
				s.appendLocked(sh, batch[i].Key, batch[i].Point)
			}
			applied = append(applied, batch[i])
		}
	}
	var ack JournalAck
	if s.journal != nil {
		ack = s.journal.PointsAppended(applied)
	}
	for _, si := range touched {
		s.shards[si].mu.Unlock()
	}
	accepted = valid
	if ack != nil {
		werr := ack.Wait()
		pos := 0
		for _, si := range touched {
			n := len(groups[si])
			if werr != nil {
				accepted -= s.rollback(s.shards[si], applied[pos:pos+n])
			} else {
				s.enforceCapGroup(s.shards[si], applied[pos:pos+n])
			}
			pos += n
		}
		err = werr
	}
	return accepted, rejected, err
}

// DumpFrozen write-locks every shard, calls prepare (the snapshot's WAL
// rotation barrier), captures every series' state, then releases the
// locks and streams the captured points to sink in timestamp order.
// Because appenders enqueue their journal record before releasing the
// shard lock, the freeze guarantees the captured state contains exactly
// the points whose records precede the rotation — recovery replays
// snapshot + tail with neither duplicates nor losses. The freeze lasts
// only as long as the capture (sealed chunks are immutable so only head
// runs are copied — memory speed, no disk I/O); appends resume while
// sink serializes and writes. sink must not retain pts.
func (s *Store) DumpFrozen(prepare func() error, sink func(key SeriesKey, pts []Point) error) error {
	type run struct {
		key SeriesKey
		pts []Point
	}
	var runs []run
	err := func() error {
		for _, sh := range s.shards {
			sh.mu.Lock()
		}
		defer func() {
			for _, sh := range s.shards {
				sh.mu.Unlock()
			}
		}()
		if prepare != nil {
			if err := prepare(); err != nil {
				return err
			}
		}
		for _, sh := range s.shards {
			for k, sr := range sh.series {
				for _, c := range sr.loadSealed() {
					runs = append(runs, run{key: k, pts: c.pts})
				}
				if len(sr.head) > 0 {
					// The head run mutates in place after the freeze
					// lifts (in-place inserts, retention trims), so it
					// is the one thing that must be copied.
					head := make([]Point, len(sr.head))
					copy(head, sr.head)
					runs = append(runs, run{key: k, pts: head})
				}
			}
		}
		return nil
	}()
	if err != nil {
		return err
	}
	for _, r := range runs {
		if err := sink(r.key, r.pts); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of points currently held for key.
func (s *Store) Len(key SeriesKey) int {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sr := sh.series[key]; sr != nil {
		return sr.totalLocked()
	}
	return 0
}

// Keys returns all series keys, sorted for determinism.
func (s *Store) Keys() []SeriesKey {
	var keys []SeriesKey
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k := range sh.series {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Device != keys[j].Device {
			return keys[i].Device < keys[j].Device
		}
		return keys[i].Quantity < keys[j].Quantity
	})
	return keys
}

// snapshot captures a consistent view of one series: the immutable sealed
// slice plus a copy of the head points overlapping [from, to). The head
// copy is bounded by the chunk size; the sealed chunks are processed
// lock-free after the shard lock is released.
func (s *Store) snapshot(key SeriesKey, from, to time.Time) (sealed []*chunk, head []Point, ok bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	sr := sh.series[key]
	if sr == nil {
		sh.mu.RUnlock()
		return nil, nil, false
	}
	sealed = sr.loadSealed()
	lo := searchPoints(sr.head, from)
	hi := searchPoints(sr.head, to)
	if lo < hi {
		head = make([]Point, hi-lo)
		copy(head, sr.head[lo:hi])
	}
	sh.mu.RUnlock()
	return sealed, head, true
}

// Iter streams the points of key in [from, to) to fn in timestamp order,
// without materialising the range. fn returning false stops the iteration.
// fn runs outside the store's locks, so it may call back into the store.
func (s *Store) Iter(key SeriesKey, from, to time.Time, fn func(Point) bool) {
	sealed, head, ok := s.snapshot(key, from, to)
	if !ok {
		return
	}
	for _, c := range sealed {
		if c.last.At.Before(from) {
			continue
		}
		if !c.first.At.Before(to) {
			break
		}
		for _, p := range c.pts[searchPoints(c.pts, from):] {
			if !p.At.Before(to) {
				break
			}
			if !fn(p) {
				return
			}
		}
	}
	for _, p := range head {
		if !fn(p) {
			return
		}
	}
}

// Range returns a copy of the points in [from, to) for key, in order.
func (s *Store) Range(key SeriesKey, from, to time.Time) []Point {
	var out []Point
	s.Iter(key, from, to, func(p Point) bool {
		out = append(out, p)
		return true
	})
	return out
}

// Latest returns the most recent point for key, and whether one exists.
func (s *Store) Latest(key SeriesKey) (Point, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sr := sh.series[key]; sr != nil {
		return sr.latestLocked()
	}
	return Point{}, false
}

// ForEachLatest calls fn with the most recent point of every series. It
// walks each shard once under its read lock, so it is much cheaper than
// Keys+Latest per key at fleet scale. fn runs under a shard lock and must
// not call back into the store; iteration order is unspecified.
func (s *Store) ForEachLatest(fn func(SeriesKey, Point)) {
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, sr := range sh.series {
			if p, ok := sr.latestLocked(); ok {
				fn(k, p)
			}
		}
		sh.mu.RUnlock()
	}
}

// Aggregate summarises the points of key in [from, to).
type Aggregate struct {
	Count int
	Min   float64
	Max   float64
	Mean  float64
	Sum   float64
}

func (a *Aggregate) addPoint(v float64) {
	a.Count++
	a.Sum += v
	if v < a.Min {
		a.Min = v
	}
	if v > a.Max {
		a.Max = v
	}
}

func (a *Aggregate) addChunk(c *chunk) {
	a.Count += c.count
	a.Sum += c.sum
	if c.min < a.Min {
		a.Min = c.min
	}
	if c.max > a.Max {
		a.Max = c.max
	}
}

func (a *Aggregate) finalize() {
	if a.Count > 0 {
		a.Mean = a.Sum / float64(a.Count)
	} else {
		a.Min, a.Max = 0, 0
	}
}

// aggregateRange accumulates the points of pts within [from, to) into agg.
func aggregateRange(agg *Aggregate, pts []Point, from, to time.Time) {
	for _, p := range pts[searchPoints(pts, from):] {
		if !p.At.Before(to) {
			break
		}
		agg.addPoint(p.Value)
	}
}

// Summarize computes an Aggregate over [from, to). Count==0 means no data.
//
// This is the aggregate-pushdown path: chunks fully inside the range
// contribute their precomputed summary, only the at-most-two edge chunks
// are scanned (in place — sealed chunks are immutable, so the scan runs on
// a lock-free snapshot), and the head run is aggregated under the shard
// read lock. No points are copied and nothing is allocated.
func (s *Store) Summarize(key SeriesKey, from, to time.Time) Aggregate {
	agg := Aggregate{Min: math.Inf(1), Max: math.Inf(-1)}
	sh := s.shardFor(key)
	sh.mu.RLock()
	sr := sh.series[key]
	var sealed []*chunk
	if sr != nil {
		sealed = sr.loadSealed()
		aggregateRange(&agg, sr.head, from, to)
	}
	sh.mu.RUnlock()
	for _, c := range sealed {
		if c.last.At.Before(from) {
			continue
		}
		if !c.first.At.Before(to) {
			break
		}
		if !c.first.At.Before(from) && c.last.At.Before(to) {
			agg.addChunk(c) // fully covered: summary only
		} else {
			aggregateRange(&agg, c.pts, from, to) // edge chunk: partial scan
		}
	}
	agg.finalize()
	return agg
}

// WindowAggregate is one window of an AggregateWindows result, stamped at
// the window start.
type WindowAggregate struct {
	Start time.Time
	Aggregate
}

// AggregateWindows buckets the points of key in [from, to) into fixed
// windows aligned to from and returns one Aggregate per non-empty window,
// in order. Chunks that fall entirely inside one window contribute their
// precomputed summary; only edge and window-straddling chunks are scanned.
func (s *Store) AggregateWindows(key SeriesKey, from, to time.Time, window time.Duration) ([]WindowAggregate, error) {
	if window <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive window %v", window)
	}
	if !from.Before(to) {
		return nil, nil
	}
	sealed, head, ok := s.snapshot(key, from, to)
	if !ok {
		return nil, nil
	}

	var out []WindowAggregate
	cur := WindowAggregate{}
	curIdx := int64(-1)
	winOf := func(at time.Time) int64 { return int64(at.Sub(from) / window) }
	startWin := func(idx int64) {
		if cur.Count > 0 {
			cur.finalize()
			out = append(out, cur)
		}
		curIdx = idx
		cur = WindowAggregate{
			Start:     from.Add(time.Duration(idx) * window),
			Aggregate: Aggregate{Min: math.Inf(1), Max: math.Inf(-1)},
		}
	}
	addPoint := func(p Point) {
		if idx := winOf(p.At); idx != curIdx {
			startWin(idx)
		}
		cur.addPoint(p.Value)
	}

	for _, c := range sealed {
		if c.last.At.Before(from) {
			continue
		}
		if !c.first.At.Before(to) {
			break
		}
		if !c.first.At.Before(from) && c.last.At.Before(to) && winOf(c.first.At) == winOf(c.last.At) {
			// Whole chunk inside one window: summary pushdown.
			if idx := winOf(c.first.At); idx != curIdx {
				startWin(idx)
			}
			cur.addChunk(c)
			continue
		}
		for _, p := range c.pts[searchPoints(c.pts, from):] {
			if !p.At.Before(to) {
				break
			}
			addPoint(p)
		}
	}
	for _, p := range head {
		addPoint(p)
	}
	if cur.Count > 0 {
		cur.finalize()
		out = append(out, cur)
	}
	return out, nil
}

// Downsample buckets the points of key in [from, to) into fixed windows and
// returns one mean point per non-empty window, stamped at the window start.
func (s *Store) Downsample(key SeriesKey, from, to time.Time, window time.Duration) ([]Point, error) {
	wins, err := s.AggregateWindows(key, from, to, window)
	if err != nil || len(wins) == 0 {
		return nil, err
	}
	out := make([]Point, len(wins))
	for i, w := range wins {
		out[i] = Point{At: w.Start, Value: w.Mean}
	}
	return out, nil
}

// DeleteBefore removes all points older than cutoff from every series,
// drops series left empty, and returns how many points were removed.
// DeleteSeries drops one series entirely, returning how many points it
// held. Like DeleteBefore it is a retention/administrative operation:
// the deletion is not journaled, so a WAL-backed store resurrects the
// series on recovery unless a snapshot intervenes. The cluster plane
// uses it to wipe partition-owned series before installing a bootstrap
// snapshot (and takes a local snapshot right after, closing that gap).
func (s *Store) DeleteSeries(key SeriesKey) int {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sr := sh.series[key]
	if sr == nil {
		return 0
	}
	n := sr.totalLocked()
	delete(sh.series, key)
	return n
}

func (s *Store) DeleteBefore(cutoff time.Time) int {
	dropped := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k, sr := range sh.series {
			dropped += sr.deleteBeforeLocked(cutoff)
			if sr.totalLocked() == 0 {
				delete(sh.series, k)
			}
		}
		sh.mu.Unlock()
	}
	return dropped
}

// Stats is a point-in-time inventory of the store.
type Stats struct {
	Series       int // live series
	SealedChunks int // immutable summarised chunks
	Points       int // total points, head runs included
}

// Stats walks every shard under its read lock and returns the inventory.
func (s *Store) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, sr := range sh.series {
			st.Series++
			st.SealedChunks += len(sr.loadSealed())
			st.Points += sr.totalLocked()
		}
		sh.mu.RUnlock()
	}
	return st
}

// ShardCount returns the number of series shards.
func (s *Store) ShardCount() int { return len(s.shards) }
