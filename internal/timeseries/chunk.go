package timeseries

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// chunk is one fixed-size run of a series. A chunk in the sealed slice is
// immutable: its points never change and its summary (count/sum/min/max/
// first/last) is precomputed, so aggregate queries consume the summary
// instead of the points and readers holding a snapshot of the sealed slice
// never need a lock. "Rewrites" of sealed data (out-of-order inserts,
// retention trims) build a replacement chunk and publish a new slice.
type chunk struct {
	pts []Point // sorted by At; never mutated once the chunk is sealed

	// Precomputed summary over pts.
	count       int
	sum         float64
	min, max    float64
	first, last Point // earliest and latest point
}

// buildChunk seals pts (which must be non-empty and sorted by At) into an
// immutable chunk with its summary computed.
func buildChunk(pts []Point) *chunk {
	c := &chunk{
		pts:   pts,
		count: len(pts),
		min:   math.Inf(1),
		max:   math.Inf(-1),
		first: pts[0],
		last:  pts[len(pts)-1],
	}
	for _, p := range pts {
		c.sum += p.Value
		if p.Value < c.min {
			c.min = p.Value
		}
		if p.Value > c.max {
			c.max = p.Value
		}
	}
	return c
}

// searchPoints returns the index of the first point with At >= at.
func searchPoints(pts []Point, at time.Time) int {
	return sort.Search(len(pts), func(i int) bool { return !pts[i].At.Before(at) })
}

// series is one device/quantity stream: a copy-on-write slice of sealed
// immutable chunks plus a mutable head run. Invariants (under the shard
// write lock):
//
//   - sealed chunks are ordered and non-overlapping (boundary timestamps may
//     tie), each internally sorted;
//   - every head point is >= the last sealed chunk's last timestamp, so
//     sealed..head concatenation is the whole series in order;
//   - sealedPts equals the total point count across sealed chunks.
//
// The sealed slice is published through an atomic pointer: writers replace
// it under the shard lock, readers may snapshot it under the shard read
// lock and keep scanning it after releasing the lock.
type series struct {
	sealed    atomic.Pointer[[]*chunk]
	head      []Point // sorted by At; guarded by the shard lock
	sealedPts int     // guarded by the shard lock
}

func (sr *series) loadSealed() []*chunk {
	if p := sr.sealed.Load(); p != nil {
		return *p
	}
	return nil
}

func (sr *series) storeSealed(cs []*chunk) {
	sr.sealed.Store(&cs)
}

// totalLocked returns the series' point count. Shard lock required.
func (sr *series) totalLocked() int { return sr.sealedPts + len(sr.head) }

// latestLocked returns the most recent point. Shard read lock required.
func (sr *series) latestLocked() (Point, bool) {
	if n := len(sr.head); n > 0 {
		return sr.head[n-1], true
	}
	if sealed := sr.loadSealed(); len(sealed) > 0 {
		return sealed[len(sealed)-1].last, true
	}
	return Point{}, false
}

// appendLocked inserts p preserving sort order. Shard write lock required.
// chunkSize is the seal threshold for the head run.
func (sr *series) appendLocked(p Point, chunkSize int) {
	sealed := sr.loadSealed()
	if n := len(sealed); n > 0 && p.At.Before(sealed[n-1].last.At) {
		sr.insertSealedLocked(sealed, p, chunkSize)
		return
	}
	// In-order (or within-head out-of-order) fast path.
	if n := len(sr.head); n == 0 || !p.At.Before(sr.head[n-1].At) {
		sr.head = append(sr.head, p)
	} else {
		i := sort.Search(n, func(i int) bool { return sr.head[i].At.After(p.At) })
		sr.head = append(sr.head, Point{})
		copy(sr.head[i+1:], sr.head[i:])
		sr.head[i] = p
	}
	if len(sr.head) >= chunkSize {
		sr.sealHeadLocked(sealed)
	}
}

// sealHeadLocked turns the head run into a sealed chunk.
func (sr *series) sealHeadLocked(sealed []*chunk) {
	ns := make([]*chunk, len(sealed)+1)
	copy(ns, sealed)
	ns[len(sealed)] = buildChunk(sr.head)
	sr.sealedPts += len(sr.head)
	sr.head = nil // the old backing array now belongs to the sealed chunk
	sr.storeSealed(ns)
}

// insertSealedLocked handles the rare out-of-order append that lands before
// the end of sealed territory: the covering chunk is rebuilt with the point
// inserted (splitting if it grew past 2×chunkSize) and a fresh sealed slice
// is published.
func (sr *series) insertSealedLocked(sealed []*chunk, p Point, chunkSize int) {
	// Last chunk whose first point is <= p.At; points earlier than every
	// chunk go into chunk 0.
	idx := sort.Search(len(sealed), func(i int) bool { return sealed[i].first.At.After(p.At) }) - 1
	if idx < 0 {
		idx = 0
	}
	old := sealed[idx]
	pos := sort.Search(len(old.pts), func(i int) bool { return old.pts[i].At.After(p.At) })
	pts := make([]Point, 0, len(old.pts)+1)
	pts = append(pts, old.pts[:pos]...)
	pts = append(pts, p)
	pts = append(pts, old.pts[pos:]...)

	var repl []*chunk
	if len(pts) > 2*chunkSize {
		h := len(pts) / 2
		repl = []*chunk{buildChunk(pts[:h:h]), buildChunk(pts[h:])}
	} else {
		repl = []*chunk{buildChunk(pts)}
	}
	ns := make([]*chunk, 0, len(sealed)+len(repl)-1)
	ns = append(ns, sealed[:idx]...)
	ns = append(ns, repl...)
	ns = append(ns, sealed[idx+1:]...)
	sr.sealedPts++
	sr.storeSealed(ns)
}

// removeLocked removes one point equal to p (same timestamp and value)
// from the series — the journal-failure rollback inverse of
// appendLocked. The head run is preferred; a sealed hit rebuilds the
// covering chunk (copy-on-write, like insertSealedLocked). Returns
// false when no equal point remains (e.g. already evicted by the
// retention cap). Shard write lock required.
func (sr *series) removeLocked(p Point) bool {
	for j := len(sr.head) - 1; j >= 0; j-- {
		if sr.head[j].At.Equal(p.At) && sr.head[j].Value == p.Value {
			sr.head = append(sr.head[:j], sr.head[j+1:]...)
			return true
		}
		if sr.head[j].At.Before(p.At) {
			break
		}
	}
	sealed := sr.loadSealed()
	for ci := len(sealed) - 1; ci >= 0; ci-- {
		c := sealed[ci]
		if c.last.At.Before(p.At) {
			break
		}
		if c.first.At.After(p.At) {
			continue
		}
		for j := len(c.pts) - 1; j >= 0; j-- {
			if c.pts[j].At.Equal(p.At) && c.pts[j].Value == p.Value {
				ns := make([]*chunk, 0, len(sealed))
				ns = append(ns, sealed[:ci]...)
				if len(c.pts) > 1 {
					pts := make([]Point, 0, len(c.pts)-1)
					pts = append(pts, c.pts[:j]...)
					pts = append(pts, c.pts[j+1:]...)
					ns = append(ns, buildChunk(pts))
				}
				ns = append(ns, sealed[ci+1:]...)
				sr.sealedPts--
				sr.storeSealed(ns)
				return true
			}
		}
	}
	return false
}

// enforceCapLocked applies count-based retention: exact when the series
// is head-only, chunk-granular otherwise — a sealed chunk drops only once
// it is entirely over the cap, so a series may transiently hold up to one
// extra chunk. Trimming inside a chunk would rebuild it (summary rescan +
// copy-on-write publish) on every append once a series sits at the cap,
// turning the ingest hot path O(chunkSize); whole-chunk drops are pure
// suffix re-slices and keep steady-state appends O(1). Shard write lock
// required.
func (sr *series) enforceCapLocked(maxPoints int) {
	over := sr.totalLocked() - maxPoints
	if over <= 0 {
		return
	}
	sealed := sr.loadSealed()
	if len(sealed) == 0 {
		sr.head = append(sr.head[:0], sr.head[over:]...)
		return
	}
	i := 0
	for i < len(sealed) && over >= sealed[i].count {
		over -= sealed[i].count
		sr.sealedPts -= sealed[i].count
		i++
	}
	if i > 0 {
		// Copy the suffix rather than re-slice: a shared backing array
		// would pin the dropped chunks until the next seal. Drops happen
		// at most once per chunkSize appends, so the copy is cheap.
		ns := make([]*chunk, len(sealed)-i)
		copy(ns, sealed[i:])
		sr.storeSealed(ns)
	}
}

// deleteBeforeLocked drops every point older than cutoff and returns how
// many were removed. Shard write lock required.
func (sr *series) deleteBeforeLocked(cutoff time.Time) int {
	dropped := 0
	sealed := sr.loadSealed()
	i := 0
	for i < len(sealed) && sealed[i].last.At.Before(cutoff) {
		dropped += sealed[i].count
		i++
	}
	ns := sealed[i:]
	if len(ns) > 0 {
		if j := searchPoints(ns[0].pts, cutoff); j > 0 {
			pts := make([]Point, ns[0].count-j)
			copy(pts, ns[0].pts[j:])
			trimmed := make([]*chunk, len(ns))
			copy(trimmed, ns)
			trimmed[0] = buildChunk(pts)
			ns = trimmed
			dropped += j
		} else if i > 0 {
			// Copy the surviving suffix so the dropped chunks are not
			// pinned by a shared backing array (see enforceCapLocked).
			cp := make([]*chunk, len(ns))
			copy(cp, ns)
			ns = cp
		}
	}
	if dropped > 0 {
		sr.sealedPts -= dropped
		sr.storeSealed(ns)
	}
	if j := searchPoints(sr.head, cutoff); j > 0 {
		sr.head = append(sr.head[:0], sr.head[j:]...)
		dropped += j
	}
	return dropped
}
