package timeseries

import (
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
)

// TestSetMaxAgeEnablesRetentionLate covers the reload path: a store built
// without retention (no eviction loop) gains a retention window at
// runtime, and the lazily-started loop evicts.
func TestSetMaxAgeEnablesRetentionLate(t *testing.T) {
	sim := clock.NewSim(t0)
	s := New(WithChunkSize(4), WithEvictionInterval(time.Minute), WithClock(sim))
	defer s.Close()
	k := key()
	for i := 0; i < 8; i++ {
		s.Append(k, Point{At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)})
	}
	if dropped := s.EvictExpired(); dropped != 0 {
		t.Fatalf("retention disabled but evicted %d points", dropped)
	}

	s.SetMaxAge(10 * time.Minute)
	if got := s.MaxAge(); got != 10*time.Minute {
		t.Fatalf("MaxAge = %v", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for sim.PendingWaiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	sim.Advance(time.Hour)
	for time.Now().Before(deadline) && s.Len(k) > 0 {
		time.Sleep(time.Millisecond)
	}
	if got := s.Len(k); got != 0 {
		t.Fatalf("late-enabled retention left %d points", got)
	}
}

// TestSetMaxAgeDisable pins that setting retention to 0 stops expiry
// without stopping the store.
func TestSetMaxAgeDisable(t *testing.T) {
	sim := clock.NewSim(t0.Add(30 * time.Minute))
	s := New(WithChunkSize(4), WithMaxAge(10*time.Minute), WithClock(sim))
	defer s.Close()
	k := key()
	for i := 0; i < 4; i++ {
		s.Append(k, Point{At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)})
	}
	s.SetMaxAge(0)
	if dropped := s.EvictExpired(); dropped != 0 {
		t.Fatalf("disabled retention still evicted %d points", dropped)
	}
	if got := s.Len(k); got != 4 {
		t.Fatalf("points lost after disable: %d", got)
	}
}
