package timeseries

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// LegacyStore is the pre-chunking engine: one RWMutex over flat sorted
// slices, with every Summarize/Downsample/Range copying the whole point
// range under the lock. It is kept verbatim so benchmarks can measure the
// chunked engine's win and equivalence tests can prove the two engines
// answer queries identically. New code should use Store.
type LegacyStore struct {
	mu        sync.RWMutex
	series    map[SeriesKey]*legacySeries
	maxPoints int // per-series retention, 0 = unlimited
}

type legacySeries struct {
	pts []Point // kept sorted by At
}

// NewLegacy constructs an empty legacy store with the given per-series
// point cap (0 = unlimited).
func NewLegacy(maxPoints int) *LegacyStore {
	return &LegacyStore{series: make(map[SeriesKey]*legacySeries), maxPoints: maxPoints}
}

// Append adds a point to the series identified by key. Out-of-order appends
// are accepted and inserted in timestamp order.
func (s *LegacyStore) Append(key SeriesKey, p Point) error {
	if err := validatePoint(key, p); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[key]
	if sr == nil {
		sr = &legacySeries{}
		s.series[key] = sr
	}
	n := len(sr.pts)
	if n == 0 || !p.At.Before(sr.pts[n-1].At) {
		sr.pts = append(sr.pts, p)
	} else {
		i := sort.Search(n, func(i int) bool { return sr.pts[i].At.After(p.At) })
		sr.pts = append(sr.pts, Point{})
		copy(sr.pts[i+1:], sr.pts[i:])
		sr.pts[i] = p
	}
	if s.maxPoints > 0 && len(sr.pts) > s.maxPoints {
		drop := len(sr.pts) - s.maxPoints
		sr.pts = append(sr.pts[:0], sr.pts[drop:]...)
	}
	return nil
}

// Len returns the number of points currently held for key.
func (s *LegacyStore) Len(key SeriesKey) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sr := s.series[key]; sr != nil {
		return len(sr.pts)
	}
	return 0
}

// Keys returns all series keys, sorted for determinism.
func (s *LegacyStore) Keys() []SeriesKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]SeriesKey, 0, len(s.series))
	for k := range s.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Device != keys[j].Device {
			return keys[i].Device < keys[j].Device
		}
		return keys[i].Quantity < keys[j].Quantity
	})
	return keys
}

// Range returns a copy of the points in [from, to) for key, in order.
func (s *LegacyStore) Range(key SeriesKey, from, to time.Time) []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[key]
	if sr == nil {
		return nil
	}
	lo := sort.Search(len(sr.pts), func(i int) bool { return !sr.pts[i].At.Before(from) })
	hi := sort.Search(len(sr.pts), func(i int) bool { return !sr.pts[i].At.Before(to) })
	if lo >= hi {
		return nil
	}
	out := make([]Point, hi-lo)
	copy(out, sr.pts[lo:hi])
	return out
}

// Latest returns the most recent point for key, and whether one exists.
func (s *LegacyStore) Latest(key SeriesKey) (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[key]
	if sr == nil || len(sr.pts) == 0 {
		return Point{}, false
	}
	return sr.pts[len(sr.pts)-1], true
}

// Summarize computes an Aggregate over [from, to). Count==0 means no data.
func (s *LegacyStore) Summarize(key SeriesKey, from, to time.Time) Aggregate {
	pts := s.Range(key, from, to)
	agg := Aggregate{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, p := range pts {
		agg.Count++
		agg.Sum += p.Value
		agg.Min = math.Min(agg.Min, p.Value)
		agg.Max = math.Max(agg.Max, p.Value)
	}
	if agg.Count > 0 {
		agg.Mean = agg.Sum / float64(agg.Count)
	} else {
		agg.Min, agg.Max = 0, 0
	}
	return agg
}

// Downsample buckets the points of key in [from, to) into fixed windows and
// returns one mean point per non-empty window, stamped at the window start.
func (s *LegacyStore) Downsample(key SeriesKey, from, to time.Time, window time.Duration) ([]Point, error) {
	if window <= 0 {
		return nil, fmt.Errorf("timeseries: non-positive downsample window %v", window)
	}
	pts := s.Range(key, from, to)
	if len(pts) == 0 {
		return nil, nil
	}
	var out []Point
	wStart := from
	var sum float64
	var n int
	flush := func() {
		if n > 0 {
			out = append(out, Point{At: wStart, Value: sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for _, p := range pts {
		for !p.At.Before(wStart.Add(window)) {
			flush()
			wStart = wStart.Add(window)
		}
		sum += p.Value
		n++
	}
	flush()
	return out, nil
}

// DeleteBefore removes all points older than cutoff from every series and
// returns how many points were dropped. Unlike Store.DeleteBefore it keeps
// emptied series in the map — the leak the chunked engine fixes.
func (s *LegacyStore) DeleteBefore(cutoff time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for _, sr := range s.series {
		i := sort.Search(len(sr.pts), func(i int) bool { return !sr.pts[i].At.Before(cutoff) })
		if i > 0 {
			dropped += i
			sr.pts = append(sr.pts[:0], sr.pts[i:]...)
		}
	}
	return dropped
}
