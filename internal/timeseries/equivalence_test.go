package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// The chunked engine must answer every query exactly like the legacy
// flat-slice engine. These tests drive both with identical random
// workloads — in-order and out-of-order appends plus DeleteBefore churn —
// and compare Range, Len, Latest, Summarize and Downsample over random
// windows. Sums and means get a tiny float tolerance (the chunked engine
// groups additions per chunk).

const floatTol = 1e-9

func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= floatTol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

func compareEngines(t *testing.T, trial int, s *Store, leg *LegacyStore, keys []SeriesKey, rng *rand.Rand) {
	t.Helper()
	for _, k := range keys {
		if s.Len(k) != leg.Len(k) {
			t.Fatalf("trial %d %v: Len %d vs legacy %d", trial, k, s.Len(k), leg.Len(k))
		}
		gp, gok := s.Latest(k)
		lp, lok := leg.Latest(k)
		if gok != lok || (gok && (!gp.At.Equal(lp.At) || gp.Value != lp.Value)) {
			t.Fatalf("trial %d %v: Latest %+v/%v vs legacy %+v/%v", trial, k, gp, gok, lp, lok)
		}
		for q := 0; q < 8; q++ {
			from := t0.Add(time.Duration(rng.Intn(4000)-500) * time.Second)
			to := from.Add(time.Duration(rng.Intn(3000)) * time.Second)

			gr := s.Range(k, from, to)
			lr := leg.Range(k, from, to)
			if len(gr) != len(lr) {
				t.Fatalf("trial %d %v [%v,%v): Range %d vs legacy %d", trial, k, from, to, len(gr), len(lr))
			}
			for i := range gr {
				if !gr[i].At.Equal(lr[i].At) || gr[i].Value != lr[i].Value {
					t.Fatalf("trial %d %v: Range point %d %+v vs %+v", trial, k, i, gr[i], lr[i])
				}
			}

			ga := s.Summarize(k, from, to)
			la := leg.Summarize(k, from, to)
			if ga.Count != la.Count || ga.Min != la.Min || ga.Max != la.Max ||
				!closeEnough(ga.Sum, la.Sum) || !closeEnough(ga.Mean, la.Mean) {
				t.Fatalf("trial %d %v [%v,%v): Summarize %+v vs legacy %+v", trial, k, from, to, ga, la)
			}

			window := time.Duration(1+rng.Intn(600)) * time.Second
			gd, gerr := s.Downsample(k, from, to, window)
			ld, lerr := leg.Downsample(k, from, to, window)
			if (gerr == nil) != (lerr == nil) {
				t.Fatalf("trial %d %v: Downsample err %v vs %v", trial, k, gerr, lerr)
			}
			if len(gd) != len(ld) {
				t.Fatalf("trial %d %v window %v: Downsample %d vs legacy %d windows", trial, k, window, len(gd), len(ld))
			}
			for i := range gd {
				if !gd[i].At.Equal(ld[i].At) || !closeEnough(gd[i].Value, ld[i].Value) {
					t.Fatalf("trial %d %v: window %d = %+v vs legacy %+v", trial, k, i, gd[i], ld[i])
				}
			}
		}
	}
}

func TestEngineEquivalenceRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 12; trial++ {
		chunkSize := 2 + rng.Intn(15)
		shards := 1 + rng.Intn(5)
		// No point cap here: count-based retention is intentionally
		// chunk-granular in the new engine (see TestRetentionAcrossChunks),
		// so capped engines diverge by design. Query semantics — what this
		// suite proves — are compared on identical retained data.
		s := New(WithChunkSize(chunkSize), WithShards(shards))
		leg := NewLegacy(0)

		keys := []SeriesKey{
			{Device: "dev-a", Quantity: "m"},
			{Device: "dev-b", Quantity: "m"},
			{Device: "dev-b", Quantity: "t"},
		}
		n := 200 + rng.Intn(600)
		var wall time.Duration // advancing frontier for mostly-in-order load
		for i := 0; i < n; i++ {
			k := keys[rng.Intn(len(keys))]
			wall += time.Duration(rng.Intn(10)) * time.Second
			at := t0.Add(wall)
			if rng.Intn(10) == 0 { // occasional backfill, possibly deep
				at = t0.Add(wall - time.Duration(rng.Intn(2000))*time.Second)
			}
			p := Point{At: at, Value: rng.NormFloat64() * 10}
			if err := s.Append(k, p); err != nil {
				t.Fatal(err)
			}
			if err := leg.Append(k, p); err != nil {
				t.Fatal(err)
			}
			if i > 0 && i%137 == 0 { // retention churn mid-stream
				cutoff := t0.Add(time.Duration(rng.Intn(int(wall/time.Second)+1)) * time.Second)
				// Legacy keeps emptied series; only point counts must agree.
				if gd, ld := s.DeleteBefore(cutoff), leg.DeleteBefore(cutoff); gd != ld {
					t.Fatalf("trial %d: DeleteBefore dropped %d vs legacy %d", trial, gd, ld)
				}
			}
		}
		compareEngines(t, trial, s, leg, keys, rng)
	}
}

// Batched appends must land exactly the same state as the equivalent
// sequence of single appends.
func TestAppendBatchMatchesSingleAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	batched := New(WithChunkSize(8), WithShards(4))
	single := New(WithChunkSize(8), WithShards(4))
	keys := []SeriesKey{{Device: "a", Quantity: "m"}, {Device: "b", Quantity: "m"}}

	for round := 0; round < 20; round++ {
		batch := make([]BatchPoint, 0, 32)
		for i := 0; i < 32; i++ {
			k := keys[rng.Intn(len(keys))]
			at := t0.Add(time.Duration(round*1000+rng.Intn(900)) * time.Millisecond)
			batch = append(batch, BatchPoint{Key: k, Point: Point{At: at, Value: rng.Float64()}})
		}
		accepted, rejected, err := batched.AppendBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if accepted != len(batch) || rejected != 0 {
			t.Fatalf("round %d: accepted %d rejected %d", round, accepted, rejected)
		}
		for _, bp := range batch {
			if err := single.Append(bp.Key, bp.Point); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, k := range keys {
		bp := batched.Range(k, time.Time{}, t0.Add(time.Hour))
		sp := single.Range(k, time.Time{}, t0.Add(time.Hour))
		if len(bp) != len(sp) {
			t.Fatalf("%v: %d vs %d points", k, len(bp), len(sp))
		}
		for i := range bp {
			if !bp[i].At.Equal(sp[i].At) || bp[i].Value != sp[i].Value {
				t.Fatalf("%v point %d: %+v vs %+v", k, i, bp[i], sp[i])
			}
		}
	}
}
