package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
)

// verifySeries checks the full-series invariants through the public API:
// sorted order, completeness, and summary agreement with a naive recompute.
func verifySeries(t *testing.T, s *Store, k SeriesKey, wantN int) {
	t.Helper()
	pts := s.Range(k, time.Time{}, t0.Add(1000*time.Hour))
	if len(pts) != wantN {
		t.Fatalf("Range returned %d points, want %d", len(pts), wantN)
	}
	if s.Len(k) != wantN {
		t.Fatalf("Len = %d, want %d", s.Len(k), wantN)
	}
	agg := Aggregate{Min: math.Inf(1), Max: math.Inf(-1)}
	for i, p := range pts {
		if i > 0 && p.At.Before(pts[i-1].At) {
			t.Fatalf("points out of order at %d", i)
		}
		agg.addPoint(p.Value)
	}
	agg.finalize()
	got := s.Summarize(k, time.Time{}, t0.Add(1000*time.Hour))
	if got.Count != agg.Count || got.Min != agg.Min || got.Max != agg.Max ||
		math.Abs(got.Sum-agg.Sum) > 1e-9*(1+math.Abs(agg.Sum)) {
		t.Fatalf("Summarize = %+v, recompute = %+v", got, agg)
	}
}

// Out-of-order appends that land inside already-sealed chunks must rebuild
// the covering chunk (keeping it immutable for concurrent snapshots) and
// keep summaries exact.
func TestOutOfOrderAcrossChunkBoundaries(t *testing.T) {
	s := New(WithChunkSize(4), WithShards(2))
	k := key()
	// 16 in-order points → 4 sealed chunks, empty head.
	for i := 0; i < 16; i++ {
		if err := s.Append(k, Point{At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.SealedChunks != 4 {
		t.Fatalf("sealed chunks = %d, want 4", st.SealedChunks)
	}
	// Late arrivals into chunk 0 (before everything), chunk 1 interior, and
	// the last chunk's interior.
	late := []time.Duration{-30 * time.Second, 4*time.Minute + 30*time.Second, 14*time.Minute + 30*time.Second}
	for _, d := range late {
		if err := s.Append(k, Point{At: t0.Add(d), Value: 100}); err != nil {
			t.Fatal(err)
		}
	}
	verifySeries(t, s, k, 19)
	// The earliest point must now be the backfilled one.
	pts := s.Range(k, t0.Add(-time.Hour), t0.Add(time.Hour))
	if pts[0].Value != 100 || !pts[0].At.Equal(t0.Add(-30*time.Second)) {
		t.Errorf("first point = %+v", pts[0])
	}
}

// Sustained backfill into one sealed region must split oversized chunks so
// edge scans stay bounded.
func TestHeavyBackfillSplitsChunks(t *testing.T) {
	s := New(WithChunkSize(4))
	k := key()
	for i := 0; i < 8; i++ {
		s.Append(k, Point{At: t0.Add(time.Duration(i) * time.Hour), Value: float64(i)})
	}
	// 40 points squeezed between hour 0 and hour 1 — all land in chunk 0.
	for i := 0; i < 40; i++ {
		s.Append(k, Point{At: t0.Add(time.Duration(i+1) * time.Minute), Value: float64(i)})
	}
	verifySeries(t, s, k, 48)
	st := s.Stats()
	if st.SealedChunks < 5 {
		t.Errorf("sealed chunks = %d; backfilled chunk never split", st.SealedChunks)
	}
}

// Count-based retention over sealed chunks is chunk-granular: the oldest
// chunk drops once it is entirely over the cap, so the series oscillates
// between the cap and cap+chunkSize — and steady-state appends stay O(1)
// instead of rebuilding the oldest chunk per point.
func TestRetentionAcrossChunks(t *testing.T) {
	const cap, chunkSize = 10, 4
	s := New(WithChunkSize(chunkSize), WithMaxPointsPerSeries(cap))
	k := key()
	for i := 0; i < 25; i++ {
		s.Append(k, Point{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)})
		if got := s.Len(k); got > cap+chunkSize {
			t.Fatalf("append %d: cap overshoot, %d points", i, got)
		}
	}
	// 25 in-order appends, seal every 4, drop chunk 0 whenever over ≥ 4:
	// chunks [0-3],[4-7],[8-11] drop along the way, leaving [12..24].
	if got := s.Len(k); got != 13 {
		t.Fatalf("retention kept %d points, want 13", got)
	}
	pts := s.Range(k, t0, t0.Add(time.Hour))
	if pts[0].Value != 12 || pts[len(pts)-1].Value != 24 {
		t.Errorf("survivors [%g..%g], want [12..24]", pts[0].Value, pts[len(pts)-1].Value)
	}
}

// Retention and out-of-order appends together: backfilled points land in
// sealed territory while the cap keeps dropping oldest chunks. The series
// must stay sorted, self-consistent, and bounded within one chunk of the
// cap after every single append.
func TestRetentionWithBackfill(t *testing.T) {
	const cap, chunkSize = 8, 4
	s := New(WithChunkSize(chunkSize), WithMaxPointsPerSeries(cap))
	k := key()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		at := t0.Add(time.Duration(rng.Intn(500)) * time.Second)
		if err := s.Append(k, Point{At: at, Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
		n := s.Len(k)
		// Chunk-granular slack: backfill-rebuilt chunks may hold up to
		// 2×chunkSize points (the split threshold), so the cap overshoot
		// is bounded by one such chunk.
		if n > cap+2*chunkSize-1 {
			t.Fatalf("append %d: cap overshoot, %d points", i, n)
		}
		if i >= cap && n < cap {
			t.Fatalf("append %d: dropped below the cap, %d points", i, n)
		}
	}
	verifySeries(t, s, k, s.Len(k))
	pts := s.Range(k, time.Time{}, t0.Add(time.Hour))
	for i := 1; i < len(pts); i++ {
		if pts[i].At.Before(pts[i-1].At) {
			t.Fatalf("points out of order at %d", i)
		}
	}
}

// DeleteBefore must drop series it empties — churned devices must not leak
// map entries forever.
func TestDeleteBeforeDropsEmptiedSeries(t *testing.T) {
	s := New(WithChunkSize(4))
	kOld := SeriesKey{Device: "retired", Quantity: "x"}
	kLive := SeriesKey{Device: "live", Quantity: "x"}
	for i := 0; i < 10; i++ {
		s.Append(kOld, Point{At: t0.Add(time.Duration(i) * time.Second), Value: 1})
		s.Append(kLive, Point{At: t0.Add(time.Duration(i) * time.Hour), Value: 1})
	}
	dropped := s.DeleteBefore(t0.Add(5 * time.Hour))
	if dropped != 15 { // all 10 of retired + 5 of live
		t.Errorf("dropped %d, want 15", dropped)
	}
	keys := s.Keys()
	if len(keys) != 1 || keys[0] != kLive {
		t.Errorf("keys after delete = %v, want only %v", keys, kLive)
	}
	if st := s.Stats(); st.Series != 1 {
		t.Errorf("stats series = %d", st.Series)
	}
	// Deleting everything empties the store completely.
	s.DeleteBefore(t0.Add(1000 * time.Hour))
	if len(s.Keys()) != 0 {
		t.Errorf("keys not emptied: %v", s.Keys())
	}
}

// Age-based retention through the background eviction loop, driven by the
// simulated clock.
func TestMaxAgeBackgroundEviction(t *testing.T) {
	sim := clock.NewSim(t0)
	s := New(
		WithChunkSize(4),
		WithMaxAge(10*time.Minute),
		WithEvictionInterval(time.Minute),
		WithClock(sim),
	)
	defer s.Close()
	k := key()
	for i := 0; i < 8; i++ {
		s.Append(k, Point{At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)})
	}
	// Wait for the eviction loop to arm its timer, then jump far past the
	// retention horizon.
	deadline := time.Now().Add(2 * time.Second)
	for sim.PendingWaiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	sim.Advance(time.Hour)
	for time.Now().Before(deadline) && s.Len(k) > 0 {
		time.Sleep(time.Millisecond)
	}
	if got := s.Len(k); got != 0 {
		t.Fatalf("eviction left %d points", got)
	}
	if len(s.Keys()) != 0 {
		t.Errorf("emptied series not dropped: %v", s.Keys())
	}
}

// EvictExpired is the synchronous arm of age-based retention.
func TestEvictExpiredManual(t *testing.T) {
	sim := clock.NewSim(t0.Add(30 * time.Minute))
	s := New(WithChunkSize(4), WithMaxAge(10*time.Minute), WithClock(sim))
	defer s.Close()
	k := key()
	for i := 0; i < 12; i++ {
		s.Append(k, Point{At: t0.Add(time.Duration(i*3) * time.Minute), Value: float64(i)})
	}
	// now = t0+30m, horizon = t0+20m → points at 0,3,...,18 minutes drop.
	dropped := s.EvictExpired()
	if dropped != 7 {
		t.Errorf("dropped %d, want 7", dropped)
	}
	if got := s.Len(k); got != 5 {
		t.Errorf("kept %d, want 5", got)
	}
}

// Summarize over sealed chunks must not allocate: the pushdown path reads
// summaries and scans edge chunks in place.
func TestSummarizeAllocFreeOnSealed(t *testing.T) {
	s := New(WithChunkSize(8))
	k := key()
	for i := 0; i < 64; i++ { // exactly 8 sealed chunks, empty head
		s.Append(k, Point{At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)})
	}
	from, to := t0.Add(5*time.Minute), t0.Add(60*time.Minute)
	allocs := testing.AllocsPerRun(100, func() {
		agg := s.Summarize(k, from, to)
		if agg.Count != 55 {
			t.Fatalf("count = %d", agg.Count)
		}
	})
	if allocs != 0 {
		t.Errorf("Summarize allocated %.1f objects/op, want 0", allocs)
	}
}

// AggregateWindows must agree with a naive per-window recompute, including
// when whole chunks collapse into summaries.
func TestAggregateWindowsPushdown(t *testing.T) {
	s := New(WithChunkSize(4))
	k := key()
	for i := 0; i < 24; i++ {
		s.Append(k, Point{At: t0.Add(time.Duration(i) * 5 * time.Minute), Value: float64(i)})
	}
	wins, err := s.AggregateWindows(k, t0, t0.Add(2*time.Hour), 20*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 6 {
		t.Fatalf("windows = %d, want 6", len(wins))
	}
	for i, w := range wins {
		if !w.Start.Equal(t0.Add(time.Duration(i) * 20 * time.Minute)) {
			t.Errorf("window %d start = %v", i, w.Start)
		}
		if w.Count != 4 {
			t.Errorf("window %d count = %d", i, w.Count)
		}
		wantMean := float64(4*i) + 1.5
		if math.Abs(w.Mean-wantMean) > 1e-12 {
			t.Errorf("window %d mean = %g, want %g", i, w.Mean, wantMean)
		}
	}
	if _, err := s.AggregateWindows(k, t0, t0.Add(time.Hour), 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestAppendBatchOneLockPerShard(t *testing.T) {
	s := New(WithShards(4))
	batch := make([]BatchPoint, 0, 40)
	for i := 0; i < 40; i++ {
		batch = append(batch, BatchPoint{
			Key:   SeriesKey{Device: string(rune('a' + i%8)), Quantity: "m"},
			Point: Point{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)},
		})
	}
	// Poison two entries: they must be skipped, not fail the batch.
	batch[3].Key = SeriesKey{}
	batch[17].Point.Value = math.NaN()
	accepted, rejected, err := s.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 38 || rejected != 2 {
		t.Fatalf("accepted=%d rejected=%d, want 38/2", accepted, rejected)
	}
	if st := s.Stats(); st.Points != 38 {
		t.Errorf("stored %d points", st.Points)
	}
	if a, r, _ := s.AppendBatch(nil); a != 0 || r != 0 {
		t.Errorf("empty batch: %d/%d", a, r)
	}
}

func TestIterEarlyStopAndReentrancy(t *testing.T) {
	s := New(WithChunkSize(4))
	k := key()
	for i := 0; i < 10; i++ {
		s.Append(k, Point{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)})
	}
	var seen int
	s.Iter(k, t0, t0.Add(time.Hour), func(p Point) bool {
		seen++
		// Iter runs outside the store locks, so callbacks may query.
		_ = s.Len(k)
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("early stop after %d points, want 3", seen)
	}
}

func TestForEachLatest(t *testing.T) {
	s := New(WithShards(4), WithChunkSize(4))
	for d := 0; d < 6; d++ {
		k := SeriesKey{Device: string(rune('a' + d)), Quantity: "m"}
		for i := 0; i <= d; i++ {
			s.Append(k, Point{At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)})
		}
	}
	got := map[SeriesKey]Point{}
	s.ForEachLatest(func(k SeriesKey, p Point) { got[k] = p })
	if len(got) != 6 {
		t.Fatalf("visited %d series, want 6", len(got))
	}
	for d := 0; d < 6; d++ {
		k := SeriesKey{Device: string(rune('a' + d)), Quantity: "m"}
		if got[k].Value != float64(d) {
			t.Errorf("latest for %v = %g, want %d", k, got[k].Value, d)
		}
	}
}

// Concurrent appenders and aggregate readers across many series: run under
// -race this exercises the lock-free sealed snapshots against COW rewrites.
func TestConcurrentAppendAndQuery(t *testing.T) {
	s := New(WithShards(4), WithChunkSize(16))
	keys := []SeriesKey{
		{Device: "p1", Quantity: "m"}, {Device: "p2", Quantity: "m"},
		{Device: "p3", Quantity: "m"}, {Device: "p4", Quantity: "m"},
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				k := keys[rng.Intn(len(keys))]
				// Mostly in-order with occasional backfill.
				off := time.Duration(i) * time.Second
				if i%17 == 0 {
					off -= 3 * time.Minute
				}
				s.Append(k, Point{At: t0.Add(off), Value: float64(i)})
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 300; i++ {
				k := keys[i%len(keys)]
				s.Summarize(k, t0.Add(-time.Hour), t0.Add(time.Hour))
				s.AggregateWindows(k, t0, t0.Add(time.Hour), time.Minute)
				s.Latest(k)
				if i%50 == 0 {
					s.DeleteBefore(t0.Add(-30 * time.Minute))
				}
			}
		}(r)
	}
	for i := 0; i < 6; i++ {
		<-done
	}
	// Post-hoc invariant: everything still sorted and self-consistent.
	for _, k := range keys {
		pts := s.Range(k, time.Time{}, t0.Add(1000*time.Hour))
		for i := 1; i < len(pts); i++ {
			if pts[i].At.Before(pts[i-1].At) {
				t.Fatalf("series %v out of order at %d", k, i)
			}
		}
		if len(pts) != s.Len(k) {
			t.Fatalf("series %v: Range %d vs Len %d", k, len(pts), s.Len(k))
		}
	}
}
