package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func key() SeriesKey { return SeriesKey{Device: "probe-1", Quantity: "soilMoisture"} }

func TestAppendAndRange(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		if err := s.Append(key(), Point{At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := s.Range(key(), t0.Add(2*time.Minute), t0.Add(5*time.Minute))
	if len(got) != 3 {
		t.Fatalf("range returned %d points, want 3", len(got))
	}
	for i, p := range got {
		if p.Value != float64(i+2) {
			t.Errorf("point %d = %g", i, p.Value)
		}
	}
	if s.Len(key()) != 10 {
		t.Errorf("Len = %d", s.Len(key()))
	}
}

func TestAppendValidation(t *testing.T) {
	s := New()
	if err := s.Append(SeriesKey{}, Point{At: t0, Value: 1}); err == nil {
		t.Error("empty key accepted")
	}
	if err := s.Append(key(), Point{At: t0, Value: math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if err := s.Append(key(), Point{At: t0, Value: math.Inf(-1)}); err == nil {
		t.Error("-Inf accepted")
	}
}

func TestOutOfOrderAppendKeepsSorted(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(50)
	for _, i := range perm {
		if err := s.Append(key(), Point{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pts := s.Range(key(), t0, t0.Add(time.Hour))
	if len(pts) != 50 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At.Before(pts[i-1].At) {
			t.Fatalf("points out of order at %d", i)
		}
	}
}

// Property: for any insertion order, Range(-inf, +inf) is sorted and
// complete.
func TestSortedInvariantProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		for _, off := range offsets {
			if err := s.Append(key(), Point{At: t0.Add(time.Duration(off) * time.Second), Value: float64(off)}); err != nil {
				return false
			}
		}
		pts := s.Range(key(), t0.Add(-time.Hour), t0.Add(100*time.Hour))
		if len(pts) != len(offsets) {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].At.Before(pts[i-1].At) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLatest(t *testing.T) {
	s := New()
	if _, ok := s.Latest(key()); ok {
		t.Error("Latest on empty store returned ok")
	}
	s.Append(key(), Point{At: t0, Value: 1})
	s.Append(key(), Point{At: t0.Add(time.Minute), Value: 2})
	p, ok := s.Latest(key())
	if !ok || p.Value != 2 {
		t.Errorf("Latest = %+v, %v", p, ok)
	}
}

func TestSummarize(t *testing.T) {
	s := New()
	for i := 1; i <= 5; i++ {
		s.Append(key(), Point{At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)})
	}
	agg := s.Summarize(key(), t0, t0.Add(time.Hour))
	if agg.Count != 5 || agg.Min != 1 || agg.Max != 5 || agg.Sum != 15 || agg.Mean != 3 {
		t.Errorf("agg = %+v", agg)
	}
	empty := s.Summarize(key(), t0.Add(-time.Hour), t0)
	if empty.Count != 0 || empty.Min != 0 || empty.Max != 0 {
		t.Errorf("empty agg = %+v", empty)
	}
}

func TestDownsample(t *testing.T) {
	s := New()
	// Two per 10-minute window, values (0,1),(2,3),(4,5).
	for i := 0; i < 6; i++ {
		s.Append(key(), Point{At: t0.Add(time.Duration(i) * 5 * time.Minute), Value: float64(i)})
	}
	out, err := s.Downsample(key(), t0, t0.Add(time.Hour), 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 2.5, 4.5}
	if len(out) != len(want) {
		t.Fatalf("downsample returned %d windows, want %d", len(out), len(want))
	}
	for i, p := range out {
		if p.Value != want[i] {
			t.Errorf("window %d mean = %g, want %g", i, p.Value, want[i])
		}
	}
	if _, err := s.Downsample(key(), t0, t0.Add(time.Hour), 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestRetention(t *testing.T) {
	s := New(WithMaxPointsPerSeries(10))
	for i := 0; i < 25; i++ {
		s.Append(key(), Point{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)})
	}
	if got := s.Len(key()); got != 10 {
		t.Fatalf("retention kept %d points, want 10", got)
	}
	pts := s.Range(key(), t0, t0.Add(time.Hour))
	if pts[0].Value != 15 {
		t.Errorf("oldest kept point = %g, want 15", pts[0].Value)
	}
}

func TestDeleteBefore(t *testing.T) {
	s := New()
	k2 := SeriesKey{Device: "probe-2", Quantity: "x"}
	for i := 0; i < 10; i++ {
		s.Append(key(), Point{At: t0.Add(time.Duration(i) * time.Minute), Value: 1})
		s.Append(k2, Point{At: t0.Add(time.Duration(i) * time.Minute), Value: 1})
	}
	n := s.DeleteBefore(t0.Add(5 * time.Minute))
	if n != 10 {
		t.Errorf("deleted %d, want 10", n)
	}
	if s.Len(key()) != 5 || s.Len(k2) != 5 {
		t.Errorf("lens = %d, %d", s.Len(key()), s.Len(k2))
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	s.Append(SeriesKey{Device: "b", Quantity: "y"}, Point{At: t0, Value: 1})
	s.Append(SeriesKey{Device: "a", Quantity: "z"}, Point{At: t0, Value: 1})
	s.Append(SeriesKey{Device: "a", Quantity: "a"}, Point{At: t0, Value: 1})
	keys := s.Keys()
	if len(keys) != 3 || keys[0].Device != "a" || keys[0].Quantity != "a" || keys[2].Device != "b" {
		t.Errorf("keys = %v", keys)
	}
}

func TestConcurrentAppend(t *testing.T) {
	s := New()
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				s.Append(key(), Point{At: t0.Add(time.Duration(w*1000+i) * time.Millisecond), Value: 1})
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if got := s.Len(key()); got != 800 {
		t.Errorf("concurrent appends: %d points, want 800", got)
	}
}

// TestDumpFrozenReleasesLocksBeforeSink asserts the freeze lifts before
// sink runs: the sink appends through the normal (shard-write-locking)
// path, which would self-deadlock if DumpFrozen still held the locks,
// and the append lands before the captured head run's points — an
// in-place head shift that would corrupt the dump if it aliased the
// live slice instead of a copy.
func TestDumpFrozenReleasesLocksBeforeSink(t *testing.T) {
	s := New()
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.Append(key(), Point{At: t0.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []Point
	err := s.DumpFrozen(nil, func(k SeriesKey, pts []Point) error {
		if err := s.Append(key(), Point{At: t0.Add(-time.Hour), Value: -1}); err != nil {
			return err
		}
		got = append(got, pts...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("dumped %d points, want %d", len(got), n)
	}
	for i, p := range got {
		if p.Value != float64(i) {
			t.Fatalf("dumped point %d = %g, want %d (frozen state mutated)", i, p.Value, i)
		}
	}
}

var errTest = errors.New("journal down")

// failTSJournal fails every ack — a latched WAL under the store.
type failTSJournal struct{ err error }

type failTSAck struct{ err error }

func (a failTSAck) Wait() error { return a.err }

func (j failTSJournal) PointsAppended([]BatchPoint) JournalAck { return failTSAck{j.err} }

// TestAppendRollbackOnJournalFailure: a failed journal ack rolls the
// just-applied points back out of memory, so the store matches the
// reported outcome and the caller's retry cannot duplicate points.
func TestAppendRollbackOnJournalFailure(t *testing.T) {
	s := New()
	// Pre-existing durable state, applied before the journal fails.
	for i := 0; i < 5; i++ {
		if err := s.Append(key(), Point{At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.SetJournal(failTSJournal{err: errTest})

	if err := s.Append(key(), Point{At: t0.Add(time.Hour), Value: 99}); err == nil {
		t.Fatal("append with failing journal reported success")
	}
	batch := []BatchPoint{
		{Key: key(), Point: Point{At: t0.Add(2 * time.Hour), Value: 100}},
		{Key: SeriesKey{Device: "probe-2", Quantity: "airTemp"}, Point: Point{At: t0, Value: 1}},
	}
	accepted, rejected, err := s.AppendBatch(batch)
	if err == nil {
		t.Fatal("batch with failing journal reported success")
	}
	if accepted != 0 || rejected != 0 {
		t.Fatalf("accepted=%d rejected=%d after rollback, want 0/0", accepted, rejected)
	}
	if n := s.Len(key()); n != 5 {
		t.Fatalf("series holds %d points after rollback, want 5", n)
	}
	if n := s.Len(SeriesKey{Device: "probe-2", Quantity: "airTemp"}); n != 0 {
		t.Fatalf("second series holds %d points after rollback, want 0", n)
	}
	// Retry after the journal recovers lands exactly once.
	s.SetJournal(nil)
	if _, _, err := s.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(key()); n != 6 {
		t.Fatalf("series holds %d points after retry, want 6", n)
	}
}

// TestRollbackDoesNotDrainCappedSeries: at the retention cap, eviction
// must wait for the journal ack — otherwise each failed-and-rolled-back
// append would evict an old durable point without keeping the new one,
// draining the series a little further on every retry.
func TestRollbackDoesNotDrainCappedSeries(t *testing.T) {
	s := New(WithMaxPointsPerSeries(10))
	for i := 0; i < 10; i++ {
		if err := s.Append(key(), Point{At: t0.Add(time.Duration(i) * time.Minute), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.SetJournal(failTSJournal{err: errTest})
	for r := 0; r < 5; r++ {
		pt := BatchPoint{Key: key(), Point: Point{At: t0.Add(time.Hour + time.Duration(r)*time.Minute), Value: 99}}
		if _, _, err := s.AppendBatch([]BatchPoint{pt}); err == nil {
			t.Fatal("batch with failing journal reported success")
		}
	}
	if n := s.Len(key()); n != 10 {
		t.Fatalf("capped series holds %d points after rolled-back retries, want 10", n)
	}
	// With an accepting journal the cap is enforced after the ack.
	s.SetJournal(failTSJournal{})
	if _, _, err := s.AppendBatch([]BatchPoint{{Key: key(), Point: Point{At: t0.Add(2 * time.Hour), Value: 100}}}); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(key()); n != 10 {
		t.Fatalf("capped series holds %d points after accepted append, want 10", n)
	}
	if p, ok := s.Latest(key()); !ok || p.Value != 100 {
		t.Fatalf("latest = %+v, want the accepted point", p)
	}
}
