// Package tenant is the platform's multi-tenancy plane: one canonical
// tenant identity (ID) resolved once at each ingress point (OAuth
// principal, MQTT credentials, fog sync session) and threaded through the
// request path, plus the admission controller that enforces per-tenant
// quotas with a graduated load-shedding ladder (DESIGN.md §11).
//
// A tenant is the paper's unit of isolation — one farm/pilot sharing the
// cloud and fog infrastructure with others. Before this package, tenant
// identity was smeared across ad-hoc `owner string` fields; ID replaces
// them with one typed value that marshals exactly like the strings it
// replaced, so every JSON wire format (subscription bodies, WAL records,
// cluster DTOs) is unchanged.
package tenant

import (
	"context"
	"encoding/json"
	"fmt"
)

// ID is a canonical tenant identity — the farm / pilot a principal,
// device, subscription or request acts for. The zero value None means
// "no tenant": internal platform wiring, infrastructure clients and
// pre-auth traffic.
//
// ID deliberately marshals as a bare JSON string, byte-identical to the
// `owner string` fields it replaced, so wire formats and WAL segments
// written before the refactor parse unchanged.
type ID string

// None is the zero ID: no tenant attributed (internal/platform traffic).
const None ID = ""

// String returns the raw identity.
func (id ID) String() string { return string(id) }

// IsNone reports whether the ID is the zero "no tenant" value.
func (id ID) IsNone() bool { return id == None }

// MarshalJSON encodes the ID as a plain JSON string. This shim pins the
// wire format: a tenant.ID serializes byte-identically to the ad-hoc
// owner strings that predate it (see the deprecation note in doc.go).
func (id ID) MarshalJSON() ([]byte, error) {
	return json.Marshal(string(id))
}

// UnmarshalJSON decodes a plain JSON string into the ID.
func (id *ID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("tenant: id must be a JSON string: %w", err)
	}
	*id = ID(s)
	return nil
}

// ctxKey is the private context key type for the threaded tenant ID.
type ctxKey struct{}

// WithID returns a context carrying the tenant identity. Each ingress
// point (httpapi authorize, MQTT CONNECT, fog sync session) resolves the
// tenant once and threads it here; downstream layers read it with
// FromContext instead of re-deriving it from credentials.
func WithID(ctx context.Context, id ID) context.Context {
	if id.IsNone() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// FromContext returns the tenant identity threaded by WithID, or None.
func FromContext(ctx context.Context) ID {
	if ctx == nil {
		return None
	}
	if id, ok := ctx.Value(ctxKey{}).(ID); ok {
		return id
	}
	return None
}
