package tenant

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Quota is one tenant's admission budget. Zero values are meaningful and
// asymmetric: MsgsPerSec 0 suspends the tenant outright (an operator kill
// switch), while 0 in any other dimension leaves that dimension
// unenforced. Defaults are applied by the caller (config layer), never
// implied here.
type Quota struct {
	// MsgsPerSec is the sustained message budget across all three
	// ingress points (MQTT publishes, HTTP mutations/queries counted as
	// one message each, fog sync readings). 0 suspends the tenant.
	MsgsPerSec int `json:"msgs_per_sec"`
	// BytesPerSec is the sustained payload-byte budget (0 = unenforced).
	BytesPerSec int64 `json:"bytes_per_sec"`
	// Inflight bounds concurrently admitted-but-unfinished HTTP requests
	// (0 = unenforced).
	Inflight int `json:"inflight"`
	// Subscriptions bounds live NGSI subscriptions owned by the tenant
	// (0 = unenforced).
	Subscriptions int `json:"subscriptions"`
	// WebhookSharePct is the tenant's share of the webhook delivery
	// queue, in percent of each subscription queue's bound
	// (0 or 100 = the full queue).
	WebhookSharePct int `json:"webhook_share_pct"`
}

// Validate checks the quota's internal consistency. Zero rates are legal
// (they express a suspended tenant); negatives and out-of-range shares
// are not.
func (q Quota) Validate() error {
	if q.MsgsPerSec < 0 {
		return fmt.Errorf("msgs_per_sec %d is negative", q.MsgsPerSec)
	}
	if q.BytesPerSec < 0 {
		return fmt.Errorf("bytes_per_sec %d is negative", q.BytesPerSec)
	}
	if q.Inflight < 0 {
		return fmt.Errorf("inflight %d is negative", q.Inflight)
	}
	if q.Subscriptions < 0 {
		return fmt.Errorf("subscriptions %d is negative", q.Subscriptions)
	}
	if q.WebhookSharePct < 0 || q.WebhookSharePct > 100 {
		return fmt.Errorf("webhook_share_pct %d is outside 0..100", q.WebhookSharePct)
	}
	return nil
}

// specKeys maps the [tenant.quotas] spec-string keys onto Quota fields.
// Kept in one place so ParseSpec and Spec can never drift.
var specKeys = []string{"msgs", "bytes", "inflight", "subs", "webhook_pct"}

// ParseSpec parses a compact per-tenant quota override as written in a
// [tenant.quotas] config entry: comma-separated key=value pairs, e.g.
//
//	"msgs=500,bytes=1048576,inflight=64,subs=32,webhook_pct=25"
//
// Keys absent from the spec inherit from base (the configured defaults),
// so an operator can override one dimension without restating the rest.
func ParseSpec(spec string, base Quota) (Quota, error) {
	q := base
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return q, fmt.Errorf("empty quota spec (expected key=value pairs: %s)", strings.Join(specKeys, ", "))
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return q, fmt.Errorf("quota spec %q: missing '=' in %q", spec, part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return q, fmt.Errorf("quota spec %q: %s: invalid integer %q", spec, key, val)
		}
		switch key {
		case "msgs":
			q.MsgsPerSec = int(n)
		case "bytes":
			q.BytesPerSec = n
		case "inflight":
			q.Inflight = int(n)
		case "subs":
			q.Subscriptions = int(n)
		case "webhook_pct":
			q.WebhookSharePct = int(n)
		default:
			return q, fmt.Errorf("quota spec %q: unknown key %q (expected one of %s)",
				spec, key, strings.Join(specKeys, ", "))
		}
	}
	if err := q.Validate(); err != nil {
		return q, fmt.Errorf("quota spec %q: %w", spec, err)
	}
	return q, nil
}

// Spec renders the quota as the compact spec string ParseSpec accepts —
// the round-trip format the admin API writes back into [tenant.quotas].
func (q Quota) Spec() string {
	return fmt.Sprintf("msgs=%d,bytes=%d,inflight=%d,subs=%d,webhook_pct=%d",
		q.MsgsPerSec, q.BytesPerSec, q.Inflight, q.Subscriptions, q.WebhookSharePct)
}

// Limits is a full quota table: the default applied to unlisted tenants
// plus per-tenant overrides. Values are immutable once installed in an
// Admission controller (swap a new Limits to change them).
type Limits struct {
	// Default applies to any tenant without an override.
	Default Quota
	// Overrides maps tenant → explicit quota.
	Overrides map[ID]Quota
}

// For returns the quota governing the given tenant.
func (l Limits) For(id ID) Quota {
	if q, ok := l.Overrides[id]; ok {
		return q
	}
	return l.Default
}

// TenantIDs returns the override'd tenant ids, sorted — the stable
// iteration order the admin API and metrics export use.
func (l Limits) TenantIDs() []ID {
	ids := make([]ID, 0, len(l.Overrides))
	for id := range l.Overrides {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// clone returns a deep copy so an installed Limits can never alias a
// caller's map.
func (l Limits) clone() Limits {
	out := Limits{Default: l.Default}
	if l.Overrides != nil {
		out.Overrides = make(map[ID]Quota, len(l.Overrides))
		for id, q := range l.Overrides {
			out.Overrides[id] = q
		}
	}
	return out
}
