package tenant

import (
	"sort"
	"strings"

	"github.com/swamp-project/swamp/internal/metrics"
)

// tenantSeries is every per-label series name Export publishes; retiring
// a label deletes all of them (debt_sec exists only for named tenants —
// deleting an absent gauge is a no-op).
var tenantSeries = []string{
	"tenant.queue_depth.", "tenant.inflight.", "tenant.debt_sec.",
	"tenant.admitted.", "tenant.sampled.", "tenant.throttled.",
	"tenant.disconnects.", "tenant.bytes_in.",
}

// Export publishes the swamp_tenant_* family into reg, capping
// cardinality: the TopK tenants by cumulative admitted messages get named
// series (swamp_tenant_admitted_<id> etc.); every other tenant aggregates
// into the "_other" pseudo-tenant, so a fleet of thousands of farms can
// never blow up the scrape. Labels that fall out of the named set between
// rounds (a tenant displaced from the top-K, or evicted from the ledger)
// get their series deleted — its counts now ride _other, and a frozen
// named series would double-count them. swampd calls this just before
// serving /metrics, so the gauges are scrape-fresh without a background
// loop.
func (a *Admission) Export(reg *metrics.Registry) {
	if a == nil || reg == nil {
		return
	}
	stats := a.Tenants()
	reg.Gauge("tenant.active").Set(float64(len(stats)))

	a.mu.RLock()
	topK := a.topK
	a.mu.RUnlock()

	// Rank by cumulative admitted traffic; ties break by id so the named
	// set is stable between scrapes.
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Admitted != stats[j].Admitted {
			return stats[i].Admitted > stats[j].Admitted
		}
		return stats[i].ID < stats[j].ID
	})

	// One exporter at a time: the exported set is read-modify-write.
	a.expMu.Lock()
	defer a.expMu.Unlock()
	current := make(map[string]bool, topK+1)

	var other Status
	for i, s := range stats {
		if i < topK {
			label := metricLabel(s.ID)
			current[label] = true
			reg.Gauge("tenant.queue_depth." + label).Set(float64(s.QueueDepth))
			reg.Gauge("tenant.inflight." + label).Set(float64(s.Inflight))
			reg.Gauge("tenant.debt_sec." + label).Set(s.DebtSec)
			reg.Gauge("tenant.admitted." + label).Set(float64(s.Admitted))
			reg.Gauge("tenant.sampled." + label).Set(float64(s.Sampled))
			reg.Gauge("tenant.throttled." + label).Set(float64(s.Throttled))
			reg.Gauge("tenant.disconnects." + label).Set(float64(s.Disconnects))
			reg.Gauge("tenant.bytes_in." + label).Set(float64(s.BytesIn))
			continue
		}
		other.QueueDepth += s.QueueDepth
		other.Inflight += s.Inflight
		other.Admitted += s.Admitted
		other.Sampled += s.Sampled
		other.Throttled += s.Throttled
		other.Disconnects += s.Disconnects
		other.BytesIn += s.BytesIn
	}
	if len(stats) > topK {
		current["_other"] = true
		reg.Gauge("tenant.queue_depth._other").Set(float64(other.QueueDepth))
		reg.Gauge("tenant.inflight._other").Set(float64(other.Inflight))
		reg.Gauge("tenant.admitted._other").Set(float64(other.Admitted))
		reg.Gauge("tenant.sampled._other").Set(float64(other.Sampled))
		reg.Gauge("tenant.throttled._other").Set(float64(other.Throttled))
		reg.Gauge("tenant.disconnects._other").Set(float64(other.Disconnects))
		reg.Gauge("tenant.bytes_in._other").Set(float64(other.BytesIn))
	}
	for label := range a.exported {
		if !current[label] {
			for _, series := range tenantSeries {
				reg.DeleteGauge(series + label)
			}
		}
	}
	a.exported = current
}

// metricLabel makes a tenant id safe as a metric-name suffix (the
// registry's Prometheus writer mangles the rest).
func metricLabel(id ID) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, string(id))
}
