package tenant

import (
	"strings"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/metrics"
)

// A tenant displaced from the top-K between scrapes must lose its named
// series entirely — its counts fold into _other, and a frozen named
// series would double-count it.
func TestExportRetiresDisplacedSeries(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_700_000_000, 0))
	a := NewAdmission(Config{
		Enabled: true,
		Limits:  Limits{Default: Quota{MsgsPerSec: 1000}},
		Clock:   sim,
		TopK:    1,
	})
	reg := metrics.NewRegistry()

	for i := 0; i < 10; i++ {
		a.Admit("alpha", 1)
	}
	a.Admit("beta", 1)
	a.Export(reg)
	snap := reg.Snapshot()
	if !strings.Contains(snap, "tenant.admitted.alpha") {
		t.Fatalf("top tenant has no named series:\n%s", snap)
	}
	if !strings.Contains(snap, "tenant.admitted._other") {
		t.Fatalf("displaced tenant not aggregated into _other:\n%s", snap)
	}

	// beta overtakes alpha: alpha's named series must disappear, not
	// freeze at its last value while also riding _other.
	for i := 0; i < 20; i++ {
		a.Admit("beta", 1)
	}
	a.Export(reg)
	snap = reg.Snapshot()
	if strings.Contains(snap, "tenant.admitted.alpha") {
		t.Fatalf("displaced tenant kept its stale named series:\n%s", snap)
	}
	if !strings.Contains(snap, "tenant.admitted.beta") {
		t.Fatalf("new top tenant has no named series:\n%s", snap)
	}

	// alpha idles out of the ledger entirely; with one tenant left the
	// _other aggregate must retire too.
	a.mu.Lock()
	delete(a.tenants, "alpha")
	a.mu.Unlock()
	a.Export(reg)
	snap = reg.Snapshot()
	if strings.Contains(snap, "_other") {
		t.Fatalf("_other series survived with no aggregated tenants:\n%s", snap)
	}
}
