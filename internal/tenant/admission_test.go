package tenant

import (
	"sync"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
)

func simAdmission(t *testing.T, limits Limits) (*Admission, *clock.Sim) {
	t.Helper()
	sim := clock.NewSim(time.Unix(1_700_000_000, 0))
	a := NewAdmission(Config{Enabled: true, Limits: limits, Clock: sim})
	return a, sim
}

func TestDisabledAndNoneAdmitEverything(t *testing.T) {
	var nilA *Admission
	if d := nilA.Admit("farm-a", 1<<20); !d.Allowed() {
		t.Fatalf("nil controller refused: %+v", d)
	}
	a, _ := simAdmission(t, Limits{Default: Quota{MsgsPerSec: 1}})
	a.SetEnabled(false)
	for i := 0; i < 1000; i++ {
		if d := a.Admit("farm-a", 4096); !d.Allowed() {
			t.Fatalf("disabled controller refused at %d: %+v", i, d)
		}
	}
	a.SetEnabled(true)
	for i := 0; i < 1000; i++ {
		if d := a.Admit(None, 4096); !d.Allowed() {
			t.Fatalf("None tenant refused at %d: %+v", i, d)
		}
	}
}

// A zero-msgs quota is the operator kill switch: every message is
// refused (never sampled), CONNECT is refused at the door, and a
// sustained hammer escalates to disconnect.
func TestZeroQuotaSuspendsTenant(t *testing.T) {
	a, _ := simAdmission(t, Limits{
		Default:   Quota{MsgsPerSec: 100},
		Overrides: map[ID]Quota{"banned": {MsgsPerSec: 0}},
	})
	if a.AdmitConnect("banned") {
		t.Fatal("suspended tenant's CONNECT was admitted")
	}
	sawDisconnect := false
	for i := 0; i < 100; i++ {
		d := a.Admit("banned", 10)
		switch d.Action {
		case ActRejected:
		case ActDisconnected:
			sawDisconnect = true
		default:
			t.Fatalf("suspended tenant got %v at message %d", d.Action, i)
		}
	}
	if !sawDisconnect {
		t.Fatal("sustained hammer on a suspended tenant never escalated to disconnect")
	}
	// The healthy tenant is untouched.
	if d := a.Admit("farm-a", 10); !d.Allowed() {
		t.Fatalf("healthy tenant refused: %+v", d)
	}
	if a.AdmitConnect("farm-a") != true {
		t.Fatal("healthy tenant's CONNECT refused")
	}
}

// Burst-then-idle: a tenant may spend its full burst allowance at once,
// degrades under sustained overrun, and is fully forgiven after idling
// long enough for the buckets to refill (debt is capped, so recovery
// time is bounded).
func TestBurstThenIdleRefill(t *testing.T) {
	a, sim := simAdmission(t, Limits{Default: Quota{MsgsPerSec: 10}})
	a.SetBurst(2 * time.Second) // capacity: 20 messages

	// The full burst is admitted back-to-back.
	for i := 0; i < 20; i++ {
		if d := a.Admit("farm-a", 1); !d.Allowed() {
			t.Fatalf("burst message %d refused: %+v", i, d)
		}
	}
	// Past the burst the ladder engages: keep hammering until rejected.
	sawShed := false
	for i := 0; i < 200; i++ {
		d := a.Admit("farm-a", 1)
		if d.Action == ActSampled {
			sawShed = true
		}
		if d.Action == ActRejected {
			if d.RetryAfter <= 0 {
				t.Fatalf("reject without RetryAfter: %+v", d)
			}
			break
		}
	}
	if !sawShed {
		t.Fatal("ladder skipped the Sample rung")
	}

	// Idle past the debt cap + burst window: fully forgiven.
	sim.Advance(rejectCapSec*time.Second + 3*time.Second)
	for i := 0; i < 20; i++ {
		if d := a.Admit("farm-a", 1); !d.Allowed() {
			t.Fatalf("post-idle message %d refused: %+v (refill did not forgive)", i, d)
		}
	}
}

// Shrinking a quota below live usage (the reload path) clamps the
// tenant's bucket immediately: the very next burst throttles instead of
// riding the old allowance.
func TestReloadShrinkBelowUsageClampsImmediately(t *testing.T) {
	a, _ := simAdmission(t, Limits{Default: Quota{MsgsPerSec: 1000}})
	a.SetBurst(2 * time.Second)
	// Establish live usage at the old generous rate.
	for i := 0; i < 500; i++ {
		if d := a.Admit("farm-a", 1); !d.Allowed() {
			t.Fatalf("warm-up message %d refused: %+v", i, d)
		}
	}
	// Reload with a 10/s quota. Remaining tokens must clamp to the new
	// 20-message capacity — not the ~1500 the old rate would leave.
	a.SetLimits(Limits{Default: Quota{MsgsPerSec: 10}})
	allowed := 0
	for i := 0; i < 200; i++ {
		if a.Admit("farm-a", 1).Allowed() {
			allowed++
		}
	}
	// 20 clean admits plus the sampled rungs' 1-in-N draws (≤ ~15 in 180).
	if allowed > 60 {
		t.Fatalf("post-shrink burst admitted %d of 200 (clamp did not apply)", allowed)
	}
	q, override := a.QuotaFor("farm-a")
	if q.MsgsPerSec != 10 || override {
		t.Fatalf("QuotaFor after reload = %+v override=%v", q, override)
	}
}

// Isolation under -race: one abusive tenant hammering at many times its
// quota must not cost a polite tenant a single message.
func TestFairShareIsolationUnderConcurrency(t *testing.T) {
	a, sim := simAdmission(t, Limits{Default: Quota{MsgsPerSec: 100}})
	a.SetBurst(2 * time.Second)

	const politeTenants = 8
	var wg sync.WaitGroup
	politeRefused := make([]int, politeTenants)
	abusiveOutcomes := struct {
		sync.Mutex
		refused int
	}{}

	stop := make(chan struct{})
	wg.Add(1)
	go func() { // abusive: full-speed hammer, no pacing
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if !a.Admit("abusive", 512).Allowed() {
				abusiveOutcomes.Lock()
				abusiveOutcomes.refused++
				abusiveOutcomes.Unlock()
			}
		}
	}()
	// Polite tenants: 50 messages per simulated second each — half quota.
	for p := 0; p < politeTenants; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := ID('a' + byte(p))
			for round := 0; round < 40; round++ {
				for i := 0; i < 5; i++ {
					if !a.Admit(id, 128).Allowed() {
						politeRefused[p]++
					}
				}
				time.Sleep(time.Millisecond) // yield to the hammer
			}
		}(p)
	}
	// Drive the sim clock so buckets refill while the goroutines run.
	for i := 0; i < 40; i++ {
		time.Sleep(time.Millisecond)
		sim.Advance(100 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	for p, n := range politeRefused {
		if n != 0 {
			t.Errorf("polite tenant %d lost %d messages to the abusive neighbour", p, n)
		}
	}
	abusiveOutcomes.Lock()
	refused := abusiveOutcomes.refused
	abusiveOutcomes.Unlock()
	if refused == 0 {
		t.Error("abusive tenant was never refused")
	}
}

func TestInflightBound(t *testing.T) {
	a, _ := simAdmission(t, Limits{Default: Quota{MsgsPerSec: 1000, Inflight: 2}})
	d1, rel1 := a.AdmitRequest("farm-a", 10)
	d2, rel2 := a.AdmitRequest("farm-a", 10)
	if !d1.Allowed() || !d2.Allowed() {
		t.Fatalf("first two requests refused: %+v %+v", d1, d2)
	}
	if d3, rel3 := a.AdmitRequest("farm-a", 10); d3.Allowed() || rel3 != nil {
		t.Fatalf("third concurrent request admitted past Inflight=2: %+v", d3)
	}
	rel1()
	rel1() // double release must not free a second slot
	if d4, rel4 := a.AdmitRequest("farm-a", 10); !d4.Allowed() {
		t.Fatalf("request after release refused: %+v", d4)
	} else {
		rel4()
	}
	rel2()
}

func TestSubscriptionSlots(t *testing.T) {
	a, _ := simAdmission(t, Limits{Default: Quota{MsgsPerSec: 100, Subscriptions: 2}})
	if err := a.ReserveSubscription("farm-a"); err != nil {
		t.Fatal(err)
	}
	if err := a.ReserveSubscription("farm-a"); err != nil {
		t.Fatal(err)
	}
	if err := a.ReserveSubscription("farm-a"); err == nil {
		t.Fatal("third subscription admitted past quota 2")
	}
	a.ReleaseSubscription("farm-a")
	if err := a.ReserveSubscription("farm-a"); err != nil {
		t.Fatalf("slot not returned: %v", err)
	}
	// Over-release never goes negative.
	a.ReleaseSubscription("other")
	if err := a.ReserveSubscription("other"); err != nil {
		t.Fatal(err)
	}
}

func TestWebhookShares(t *testing.T) {
	a, sim := simAdmission(t, Limits{
		Default:   Quota{MsgsPerSec: 10},
		Overrides: map[ID]Quota{"half": {MsgsPerSec: 10, WebhookSharePct: 50}},
	})
	if got := a.WebhookQueueCap("half", 64); got != 32 {
		t.Fatalf("WebhookQueueCap(half, 64) = %d, want 32", got)
	}
	if got := a.WebhookQueueCap("full", 64); got != 64 {
		t.Fatalf("WebhookQueueCap(full, 64) = %d, want 64", got)
	}
	if d := a.WebhookDelay("half"); d != 0 {
		t.Fatalf("in-budget tenant delayed %v", d)
	}
	// Drive the tenant into the Delay rung and check the deferral.
	for i := 0; i < 40; i++ {
		a.Admit("half", 1)
	}
	if d := a.WebhookDelay("half"); d <= 0 || d > maxWebhookDelay {
		t.Fatalf("deep-debt WebhookDelay = %v, want (0, %v]", d, maxWebhookDelay)
	}
	sim.Advance(10 * time.Second)
	if d := a.WebhookDelay("half"); d != 0 {
		t.Fatalf("post-idle WebhookDelay = %v, want 0", d)
	}
}

// The ledger is bounded: at MaxTenants the longest-idle unused states
// are reclaimed to make room, fully idle states are swept past the idle
// window, and states with live usage or explicit overrides are never
// reclaimed — so an unbounded tenant-ID source cannot grow the map (or
// the /admin/tenants and Export snapshots) without limit.
func TestLedgerEviction(t *testing.T) {
	sim := clock.NewSim(time.Unix(1_700_000_000, 0))
	a := NewAdmission(Config{
		Enabled: true,
		Limits: Limits{
			Default:   Quota{MsgsPerSec: 100, Subscriptions: 4},
			Overrides: map[ID]Quota{"pinned": {MsgsPerSec: 5}},
		},
		Clock:      sim,
		MaxTenants: 4,
	})
	size := func() int {
		a.mu.RLock()
		defer a.mu.RUnlock()
		return len(a.tenants)
	}
	has := func(id ID) bool {
		a.mu.RLock()
		defer a.mu.RUnlock()
		_, ok := a.tenants[id]
		return ok
	}

	for _, id := range []ID{"t1", "t2", "t3", "t4"} {
		a.Admit(id, 1)
		sim.Advance(time.Second) // distinct idle ages, oldest first
	}
	if err := a.ReserveSubscription("t1"); err != nil {
		t.Fatal(err)
	}
	// At the bound: the next unseen tenant reclaims the longest-idle
	// unused state (t2 — t1 is older but holds a subscription slot).
	a.Admit("t5", 1)
	if size() > 4 {
		t.Fatalf("ledger grew past MaxTenants: %d states", size())
	}
	if has("t2") || !has("t1") {
		t.Fatalf("cap eviction picked wrong state: t1=%v t2=%v", has("t1"), has("t2"))
	}
	// Fully idle past the window: a sweep reclaims everything unused,
	// keeping the busy tenant and the explicit override.
	a.Admit("pinned", 1)
	sim.Advance(idleEvictAfter + time.Minute)
	a.Admit("t6", 1)
	if !has("t1") {
		t.Fatal("idle sweep evicted a tenant holding a subscription slot")
	}
	if !has("pinned") {
		t.Fatal("idle sweep evicted an explicit override")
	}
	for _, id := range []ID{"t3", "t4", "t5"} {
		if has(id) {
			t.Fatalf("idle state %s survived the sweep", id)
		}
	}
	// The evicted tenant is still enforced on its next sighting.
	if d := a.Admit("t3", 1); !d.Allowed() {
		t.Fatalf("recreated tenant refused: %+v", d)
	}
}
