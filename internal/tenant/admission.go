package tenant

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
)

// The graduated shed ladder, in seconds of accumulated quota debt
// (DESIGN.md §11.2). A tenant within budget pays nothing; past budget it
// is degraded in escalating rungs before anything is refused outright.
const (
	// sampleDebtSec: telemetry sampling starts (keep 1 in sampleKeepN).
	sampleDebtSec = 0.5
	// delayDebtSec: webhook deliveries are delayed and sampling hardens
	// to 1 in delayKeepN.
	delayDebtSec = 1.0
	// rejectCapSec caps accumulated debt: past delayDebtSec ingress is
	// refused (HTTP 429 + Retry-After, MQTT throttle), and debt never
	// grows beyond this, bounding the post-abuse recovery time.
	rejectCapSec = 3.0

	sampleKeepN = 4 // Sample rung: admit 1 in 4 telemetry messages
	delayKeepN  = 8 // Delay rung: admit 1 in 8

	// maxWebhookDelay bounds the Delay rung's webhook deferral.
	maxWebhookDelay = time.Second
)

// Ledger bounds: per-tenant states are created on first sight, so an
// unbounded ID source (a misconfigured fleet, a harness minting tenants)
// would otherwise grow the tenants map — and every /admin/tenants and
// Export snapshot — without limit.
const (
	// idleEvictAfter is how long a tenant must go without charging its
	// buckets (while holding no inflight requests, subscription slots or
	// queued webhooks) before its state is reclaimable. Long enough that
	// any capped debt (≤ rejectCapSec) has refilled, so eviction and
	// recreation both land on the same full-burst ledger.
	idleEvictAfter = 10 * time.Minute
	// idleSweepInterval paces the opportunistic idle sweep that runs as
	// new states are created.
	idleSweepInterval = time.Minute
	// defaultMaxTenants bounds the ledger when Config.MaxTenants is 0.
	defaultMaxTenants = 8192
)

// Action is an admission decision's disposition.
type Action uint8

// Admission dispositions, in ladder order.
const (
	// ActAllow admits the message.
	ActAllow Action = iota
	// ActSampled sheds the message as telemetry thinning: the tenant is
	// over budget and this message lost the 1-in-N draw. Observable
	// (tenant.sampled counts it), never silent.
	ActSampled
	// ActRejected refuses the message: HTTP surfaces 429 + Retry-After,
	// MQTT withholds the ack so QoS 1 clients back off and retry.
	ActRejected
	// ActDisconnected is the MQTT last resort: the tenant kept hammering
	// through a sustained reject streak and its session should be
	// dropped (CONNACK 0x97 on reconnect while pressure persists).
	ActDisconnected
)

// String names the action for logs and metrics.
func (a Action) String() string {
	switch a {
	case ActAllow:
		return "allow"
	case ActSampled:
		return "sampled"
	case ActRejected:
		return "rejected"
	case ActDisconnected:
		return "disconnected"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Decision is the outcome of one admission check.
type Decision struct {
	Action Action
	// RetryAfter is how long the tenant should wait before retrying —
	// the HTTP Retry-After header value. Set on ActRejected and
	// ActDisconnected.
	RetryAfter time.Duration
}

// Allowed reports whether the message was admitted.
func (d Decision) Allowed() bool { return d.Action == ActAllow }

// Config configures an Admission controller.
type Config struct {
	// Enabled turns enforcement on. A disabled controller still exists
	// (wiring is unconditional) but admits everything and keeps no
	// per-tenant ledger hot; the flag is a dynamic knob.
	Enabled bool
	// Limits is the initial quota table.
	Limits Limits
	// Clock drives bucket refill (nil → wall clock). Tests and
	// simulations pass clock.Sim.
	Clock clock.Clock
	// Burst is the token-bucket capacity expressed as a duration of
	// sustained rate (capacity = rate × Burst). 0 → 2s.
	Burst time.Duration
	// MetricsTopK caps per-tenant metric cardinality: the K busiest
	// tenants get named swamp_tenant_* series, the rest aggregate into
	// "_other". 0 → 8.
	TopK int
	// MaxTenants bounds the number of live per-tenant ledger states
	// (0 → 8192). At the bound, creating a state for an unseen tenant
	// first reclaims the longest-idle unused states. The bound is soft:
	// states with live usage (inflight, subscription slots, queued
	// webhooks) are never reclaimed, so a genuinely busy fleet exceeds
	// the bound rather than losing enforcement state.
	MaxTenants int
}

// Admission is the per-tenant admission controller shared by the three
// ingress points (MQTT publish, HTTP API, fog sync). All methods are safe
// for concurrent use, and all are nil-safe: a nil *Admission admits
// everything, so wiring stays unconditional and the controller is the
// single on/off switch.
//
// Isolation invariant: a tenant that stays within its quota is never
// sampled, delayed, rejected or disconnected — regardless of what any
// other tenant does. Each tenant draws on its own budget only.
type Admission struct {
	clk     clock.Clock
	enabled atomic.Bool

	mu         sync.RWMutex
	limits     Limits
	burst      time.Duration
	topK       int
	maxTenants int
	lastSweep  time.Time
	tenants    map[ID]*state

	// expMu guards exported, the metric labels published by the last
	// Export round; labels that fall out of the set get their series
	// deleted so stale per-tenant gauges never freeze at old values.
	expMu    sync.Mutex
	exported map[string]bool
}

// state is one tenant's live admission ledger. Token counts may go
// negative: the debt depth selects the shed-ladder rung.
type state struct {
	mu         sync.Mutex
	quota      Quota
	override   bool
	msgTokens  float64
	byteTokens float64
	last       time.Time
	sampleSeq  uint64
	// rejectStreak counts consecutive rejected messages; crossing
	// disconnectStreak(quota) escalates to ActDisconnected.
	rejectStreak int

	inflight atomic.Int64
	subs     atomic.Int64
	// queueDepth mirrors the tenant's aggregate MQTT outbound queue
	// depth, maintained by the broker's enqueue/dequeue accounting.
	queueDepth atomic.Int64

	admitted    atomic.Uint64
	sampled     atomic.Uint64
	throttled   atomic.Uint64
	disconnects atomic.Uint64
	bytesIn     atomic.Uint64
}

// NewAdmission builds a controller.
func NewAdmission(cfg Config) *Admission {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 2 * time.Second
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 8
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = defaultMaxTenants
	}
	a := &Admission{
		clk:        cfg.Clock,
		limits:     cfg.Limits.clone(),
		burst:      cfg.Burst,
		topK:       cfg.TopK,
		maxTenants: cfg.MaxTenants,
		tenants:    make(map[ID]*state),
	}
	a.enabled.Store(cfg.Enabled)
	return a
}

// SetEnabled flips enforcement — the tenant.enabled dynamic knob.
func (a *Admission) SetEnabled(on bool) {
	if a != nil {
		a.enabled.Store(on)
	}
}

// Enabled reports whether enforcement is on.
func (a *Admission) Enabled() bool { return a != nil && a.enabled.Load() }

// SetBurst updates the token-bucket capacity window (dynamic knob).
func (a *Admission) SetBurst(d time.Duration) {
	if a == nil || d <= 0 {
		return
	}
	a.mu.Lock()
	a.burst = d
	a.mu.Unlock()
}

// SetTopK updates the metrics cardinality cap (dynamic knob).
func (a *Admission) SetTopK(k int) {
	if a == nil || k <= 0 {
		return
	}
	a.mu.Lock()
	a.topK = k
	a.mu.Unlock()
}

// SetLimits swaps the quota table — the reload path. Every live tenant's
// governing quota updates immediately; token balances are clamped to the
// new burst capacity, so a reload that shrinks a quota below current
// usage throttles the tenant on its very next message instead of letting
// an old surplus ride.
func (a *Admission) SetLimits(l Limits) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.limits = l.clone()
	for id, st := range a.tenants {
		q := a.limits.For(id)
		_, over := a.limits.Overrides[id]
		st.mu.Lock()
		st.quota = q
		st.override = over
		st.clampLocked(a.burst)
		st.mu.Unlock()
	}
	a.mu.Unlock()
}

// Limits returns a copy of the installed quota table.
func (a *Admission) Limits() Limits {
	if a == nil {
		return Limits{}
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.limits.clone()
}

// QuotaFor returns the quota governing id and whether it is an explicit
// override (vs the table default).
func (a *Admission) QuotaFor(id ID) (Quota, bool) {
	if a == nil {
		return Quota{}, false
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	q, over := a.limits.Overrides[id]
	if !over {
		q = a.limits.Default
	}
	return q, over
}

// get returns the tenant's state, creating it on first sight. The
// create path bounds the ledger: a paced idle sweep reclaims states
// that have been fully idle past idleEvictAfter, and at maxTenants the
// longest-idle unused states are reclaimed immediately.
func (a *Admission) get(id ID) *state {
	a.mu.RLock()
	st := a.tenants[id]
	a.mu.RUnlock()
	if st != nil {
		return st
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := a.tenants[id]; st != nil {
		return st
	}
	now := a.clk.Now()
	if now.Sub(a.lastSweep) >= idleSweepInterval {
		a.lastSweep = now
		a.evictLocked(now, idleEvictAfter)
	}
	if len(a.tenants) >= a.maxTenants {
		a.evictLocked(now, 0)
	}
	q := a.limits.For(id)
	_, over := a.limits.Overrides[id]
	st = &state{quota: q, override: over, last: now}
	// A new tenant starts with a full burst allowance.
	st.msgTokens = float64(q.MsgsPerSec) * a.burst.Seconds()
	st.byteTokens = float64(q.BytesPerSec) * a.burst.Seconds()
	a.tenants[id] = st
	return st
}

// evictLocked reclaims unused tenant states, longest-idle first. A
// state is reclaimable when it holds no live usage — no inflight
// requests, subscription slots or queued webhooks — and last charged
// its buckets at least minIdle ago; explicit overrides are kept (their
// cardinality is bounded by the config). With minIdle 0 (the ledger is
// at maxTenants) reclamation stops as soon as the map is back under the
// bound. Reclaiming drops the tenant's cumulative counters and resets
// its ledger to the full-burst starting state — which, past
// idleEvictAfter, is exactly what refill would have restored anyway
// (debt is capped at rejectCapSec seconds). Callers hold a.mu for
// writing.
func (a *Admission) evictLocked(now time.Time, minIdle time.Duration) {
	type cand struct {
		id   ID
		last time.Time
	}
	var cands []cand
	for id, st := range a.tenants {
		if st.inflight.Load() != 0 || st.subs.Load() != 0 || st.queueDepth.Load() != 0 {
			continue
		}
		st.mu.Lock()
		c := cand{id: id, last: st.last}
		over := st.override
		st.mu.Unlock()
		if over || now.Sub(c.last) < minIdle {
			continue
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].last.Before(cands[j].last) })
	for _, c := range cands {
		if minIdle == 0 && len(a.tenants) < a.maxTenants {
			return
		}
		delete(a.tenants, c.id)
	}
}

// clampLocked bounds token balances to the (possibly new) burst capacity
// and the debt floor. Callers hold st.mu.
func (st *state) clampLocked(burst time.Duration) {
	capMsgs := float64(st.quota.MsgsPerSec) * burst.Seconds()
	capBytes := float64(st.quota.BytesPerSec) * burst.Seconds()
	st.msgTokens = math.Min(st.msgTokens, capMsgs)
	st.byteTokens = math.Min(st.byteTokens, capBytes)
	st.msgTokens = math.Max(st.msgTokens, -rejectCapSec*float64(st.quota.MsgsPerSec))
	st.byteTokens = math.Max(st.byteTokens, -rejectCapSec*float64(st.quota.BytesPerSec))
}

// refillLocked advances the buckets to now. Callers hold st.mu.
func (st *state) refillLocked(now time.Time, burst time.Duration) {
	dt := now.Sub(st.last).Seconds()
	if dt <= 0 {
		return
	}
	st.last = now
	st.msgTokens += dt * float64(st.quota.MsgsPerSec)
	st.byteTokens += dt * float64(st.quota.BytesPerSec)
	st.clampLocked(burst)
}

// debtSecLocked returns the deeper of the two buckets' debt, in seconds
// of sustained quota. Callers hold st.mu.
func (st *state) debtSecLocked() float64 {
	var d float64
	if st.quota.MsgsPerSec > 0 && st.msgTokens < 0 {
		d = -st.msgTokens / float64(st.quota.MsgsPerSec)
	}
	if st.quota.BytesPerSec > 0 && st.byteTokens < 0 {
		if bd := -st.byteTokens / float64(st.quota.BytesPerSec); bd > d {
			d = bd
		}
	}
	return d
}

// disconnectStreak is the sustained-reject threshold past which an MQTT
// tenant is disconnected: about a second of hammering at full quota rate.
func disconnectStreak(q Quota) int {
	if n := q.MsgsPerSec; n > 32 {
		return n
	}
	return 32
}

// Admit charges one message of the given payload size against the tenant
// and walks the shed ladder. The None tenant (internal platform traffic)
// is always admitted.
func (a *Admission) Admit(id ID, bytes int64) Decision {
	if !a.Enabled() || id.IsNone() {
		return Decision{Action: ActAllow}
	}
	st := a.get(id)
	a.mu.RLock()
	burst := a.burst
	a.mu.RUnlock()

	st.mu.Lock()
	defer st.mu.Unlock()
	st.refillLocked(a.clk.Now(), burst)

	// MsgsPerSec 0 suspends the tenant outright (an operator kill
	// switch); the other dimensions treat 0 as unenforced.
	if st.quota.MsgsPerSec == 0 {
		st.rejectStreak++
		if st.rejectStreak > disconnectStreak(st.quota) {
			st.disconnects.Add(1)
			return Decision{Action: ActDisconnected, RetryAfter: time.Duration(rejectCapSec * float64(time.Second))}
		}
		st.throttled.Add(1)
		return Decision{Action: ActRejected, RetryAfter: time.Second}
	}

	// Reject rung: debt is already past the delay window. Refused
	// messages are not charged — debt is capped so recovery time is
	// bounded by rejectCapSec.
	if debt := st.debtSecLocked(); debt > delayDebtSec {
		st.rejectStreak++
		retry := time.Duration(debt * float64(time.Second))
		if st.rejectStreak > disconnectStreak(st.quota) {
			st.disconnects.Add(1)
			return Decision{Action: ActDisconnected, RetryAfter: retry}
		}
		st.throttled.Add(1)
		return Decision{Action: ActRejected, RetryAfter: retry}
	}
	st.rejectStreak = 0

	// Charge the buckets (they may go negative — that's the ladder).
	st.msgTokens--
	if st.quota.BytesPerSec > 0 {
		st.byteTokens -= float64(bytes)
	}
	st.clampLocked(burst)

	switch debt := st.debtSecLocked(); {
	case debt <= 0:
		st.admitted.Add(1)
		st.bytesIn.Add(uint64(bytes))
		return Decision{Action: ActAllow}
	case debt <= sampleDebtSec:
		return st.sampleLocked(bytes, sampleKeepN)
	default:
		return st.sampleLocked(bytes, delayKeepN)
	}
}

// ChargeBytes settles payload bytes that were unknown at admission time
// (a chunked HTTP request body carries no Content-Length). It debits
// the byte bucket only — the message was already admitted and charged
// one message token — deepening debt that the tenant's next admission
// check observes, so oversized chunked uploads cannot evade the
// bytes/s quota; they just pay for it one request late.
func (a *Admission) ChargeBytes(id ID, n int64) {
	if !a.Enabled() || id.IsNone() || n <= 0 {
		return
	}
	st := a.get(id)
	a.mu.RLock()
	burst := a.burst
	a.mu.RUnlock()
	st.mu.Lock()
	st.refillLocked(a.clk.Now(), burst)
	if st.quota.BytesPerSec > 0 {
		st.byteTokens -= float64(n)
		st.clampLocked(burst)
	}
	st.mu.Unlock()
	st.bytesIn.Add(uint64(n))
}

// sampleLocked implements the Sample/Delay rungs: admit 1 in keepN,
// counting the rest as sampled sheds. Callers hold st.mu.
func (st *state) sampleLocked(bytes int64, keepN uint64) Decision {
	st.sampleSeq++
	if st.sampleSeq%keepN == 0 {
		st.admitted.Add(1)
		st.bytesIn.Add(uint64(bytes))
		return Decision{Action: ActAllow}
	}
	st.sampled.Add(1)
	return Decision{Action: ActSampled}
}

// AdmitConnect gates an MQTT CONNECT. It charges nothing: it only
// refuses while the tenant is suspended or already deep enough in debt
// that every publish would be rejected anyway — refusing at the door
// beats accepting a session whose first packet disconnects it.
func (a *Admission) AdmitConnect(id ID) bool {
	if !a.Enabled() || id.IsNone() {
		return true
	}
	st := a.get(id)
	a.mu.RLock()
	burst := a.burst
	a.mu.RUnlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.refillLocked(a.clk.Now(), burst)
	if st.quota.MsgsPerSec == 0 {
		st.throttled.Add(1)
		return false
	}
	if st.debtSecLocked() > delayDebtSec {
		st.throttled.Add(1)
		return false
	}
	return true
}

// AdmitRequest admits one HTTP request: the rate check plus the inflight
// bound. On ActAllow the returned release func MUST be called when the
// request completes; it is nil otherwise.
func (a *Admission) AdmitRequest(id ID, bytes int64) (Decision, func()) {
	if !a.Enabled() || id.IsNone() {
		return Decision{Action: ActAllow}, func() {}
	}
	st := a.get(id)
	if lim := st.quotaInflight(); lim > 0 && st.inflight.Load() >= int64(lim) {
		st.throttled.Add(1)
		return Decision{Action: ActRejected, RetryAfter: time.Second}, nil
	}
	d := a.Admit(id, bytes)
	if !d.Allowed() {
		return d, nil
	}
	st.inflight.Add(1)
	var once sync.Once
	return d, func() { once.Do(func() { st.inflight.Add(-1) }) }
}

func (st *state) quotaInflight() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.quota.Inflight
}

// ReserveSubscription claims one of the tenant's subscription slots,
// failing when the quota is exhausted. Callers pair it with
// ReleaseSubscription on teardown.
func (a *Admission) ReserveSubscription(id ID) error {
	if !a.Enabled() || id.IsNone() {
		return nil
	}
	st := a.get(id)
	st.mu.Lock()
	lim := st.quota.Subscriptions
	st.mu.Unlock()
	for {
		cur := st.subs.Load()
		if lim > 0 && cur >= int64(lim) {
			st.throttled.Add(1)
			return fmt.Errorf("tenant %s: subscription quota %d exhausted", id, lim)
		}
		if st.subs.CompareAndSwap(cur, cur+1) {
			return nil
		}
	}
}

// RestoreSubscription re-claims a subscription slot without enforcing
// the quota bound — the WAL-replay path. Recovered subscriptions were
// admitted (and charged a slot) when created, so replay must restore
// the slot unconditionally to keep reserve/release counts paired: a
// quota shrunk below the recovered count would otherwise leave live
// subscriptions uncounted, and a later delete would decrement a slot
// legitimately held by a post-restart subscription of the same tenant.
func (a *Admission) RestoreSubscription(id ID) {
	if !a.Enabled() || id.IsNone() {
		return
	}
	a.get(id).subs.Add(1)
}

// ReleaseSubscription returns a subscription slot.
func (a *Admission) ReleaseSubscription(id ID) {
	if a == nil || id.IsNone() {
		return
	}
	st := a.get(id)
	for {
		cur := st.subs.Load()
		if cur <= 0 {
			return
		}
		if st.subs.CompareAndSwap(cur, cur-1) {
			return
		}
	}
}

// WebhookDelay implements the Delay rung for outbound notifications: 0
// while the tenant is inside the delay window, else a deferral
// proportional to debt, capped at maxWebhookDelay. The webhook pool adds
// this to a delivery's schedule the way a retry backoff would be.
func (a *Admission) WebhookDelay(id ID) time.Duration {
	if !a.Enabled() || id.IsNone() {
		return 0
	}
	st := a.get(id)
	a.mu.RLock()
	burst := a.burst
	a.mu.RUnlock()
	st.mu.Lock()
	st.refillLocked(a.clk.Now(), burst)
	debt := st.debtSecLocked()
	st.mu.Unlock()
	if debt <= sampleDebtSec {
		return 0
	}
	d := time.Duration((debt - sampleDebtSec) * float64(time.Second))
	if d > maxWebhookDelay {
		d = maxWebhookDelay
	}
	return d
}

// WebhookQueueCap returns the tenant's share of a webhook queue of the
// given full length, per its WebhookSharePct (0 → the full queue).
func (a *Admission) WebhookQueueCap(id ID, full int) int {
	if !a.Enabled() || id.IsNone() {
		return full
	}
	q, _ := a.QuotaFor(id)
	if q.WebhookSharePct <= 0 || q.WebhookSharePct >= 100 {
		return full
	}
	cap := full * q.WebhookSharePct / 100
	if cap < 1 {
		cap = 1
	}
	return cap
}

// AddQueueDepth adjusts the tenant's webhook-backlog gauge — the
// pool's per-tenant enqueue/dequeue accounting. Informational only (the
// enforced bound is WebhookQueueCap), so toggling enablement mid-flight
// can only skew the gauge, never an enforcement decision.
func (a *Admission) AddQueueDepth(id ID, delta int64) {
	if !a.Enabled() || id.IsNone() {
		return
	}
	a.get(id).queueDepth.Add(delta)
}

// Status is one tenant's live usage snapshot — the GET /admin/tenants row.
type Status struct {
	ID            ID      `json:"id"`
	Quota         Quota   `json:"quota"`
	Override      bool    `json:"override"`
	DebtSec       float64 `json:"debt_sec"`
	Inflight      int64   `json:"inflight"`
	Subscriptions int64   `json:"subscriptions"`
	QueueDepth    int64   `json:"queue_depth"`
	Admitted      uint64  `json:"admitted"`
	Sampled       uint64  `json:"sampled"`
	Throttled     uint64  `json:"throttled"`
	Disconnects   uint64  `json:"disconnects"`
	BytesIn       uint64  `json:"bytes_in"`
}

// Tenants snapshots every tenant the controller has seen (live usage)
// plus configured-but-idle overrides, sorted by id.
func (a *Admission) Tenants() []Status {
	if a == nil {
		return nil
	}
	a.mu.RLock()
	burst := a.burst
	seen := make(map[ID]*state, len(a.tenants))
	for id, st := range a.tenants {
		seen[id] = st
	}
	idle := make([]ID, 0)
	for id := range a.limits.Overrides {
		if _, ok := seen[id]; !ok {
			idle = append(idle, id)
		}
	}
	limits := a.limits
	a.mu.RUnlock()

	out := make([]Status, 0, len(seen)+len(idle))
	now := a.clk.Now()
	for id, st := range seen {
		st.mu.Lock()
		st.refillLocked(now, burst)
		s := Status{
			ID:       id,
			Quota:    st.quota,
			Override: st.override,
			DebtSec:  st.debtSecLocked(),
		}
		st.mu.Unlock()
		s.Inflight = st.inflight.Load()
		s.Subscriptions = st.subs.Load()
		s.QueueDepth = st.queueDepth.Load()
		s.Admitted = st.admitted.Load()
		s.Sampled = st.sampled.Load()
		s.Throttled = st.throttled.Load()
		s.Disconnects = st.disconnects.Load()
		s.BytesIn = st.bytesIn.Load()
		out = append(out, s)
	}
	for _, id := range idle {
		out = append(out, Status{ID: id, Quota: limits.For(id), Override: true})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
