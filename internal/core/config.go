package core

import (
	"fmt"

	"github.com/swamp-project/swamp/internal/config"
	"github.com/swamp-project/swamp/internal/tenant"
)

// ParseMode maps a deployment-mode name onto its Mode constant.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "cloud-only":
		return ModeCloudOnly, nil
	case "farm-fog":
		return ModeFarmFog, nil
	case "mobile-fog":
		return ModeMobileFog, nil
	}
	return 0, fmt.Errorf("core: unknown mode %q (have cloud-only, farm-fog, mobile-fog)", name)
}

// OptionsFromConfig maps the resolved configuration plane onto the
// platform's Options. Options is the compat shim over the config schema:
// components keep their narrow knob structs, and this is the one place
// the two vocabularies meet. The error reports an unknown pilot or mode
// (every other field was already validated by config.Validate).
func OptionsFromConfig(c *config.Config) (Options, error) {
	pilot, err := PilotByName(c.Server.Pilot)
	if err != nil {
		return Options{}, err
	}
	mode, err := ParseMode(c.Server.Mode)
	if err != nil {
		return Options{}, err
	}
	return Options{
		Pilot:  pilot,
		Mode:   mode,
		Seed:   c.Sim.Seed,
		Sealed: c.Server.Sealed,

		BackhaulLatency: c.Sim.BackhaulLatency,

		MQTTSessionQueue:   c.MQTT.SessionQueue,
		MQTTRetryInterval:  c.MQTT.RetryInterval,
		MQTTFlushWatermark: c.MQTT.FlushWatermark,
		MQTTRouteCache:     c.MQTT.RouteCache,

		ContextShards:      c.NGSI.Shards,
		AgentBatchInterval: c.NGSI.AgentBatch,
		FogSyncBatches:     c.NGSI.FogSyncBatches,

		TimeseriesShards:          c.Timeseries.Shards,
		TimeseriesChunkSize:       c.Timeseries.ChunkSize,
		TelemetryMaxAge:           c.Timeseries.Retention,
		TelemetryEvictionInterval: c.Timeseries.EvictionInterval,

		WALDir:           c.WAL.Dir,
		WALSegmentBytes:  c.WAL.SegmentBytes,
		WALFsyncInterval: c.WAL.FsyncInterval,
		SnapshotInterval: c.WAL.SnapshotInterval,

		WebhookWorkers: c.Webhooks.Workers,
		WebhookRetry:   c.Webhooks.Retry,
		WebhookQueue:   c.Webhooks.Queue,

		QueryResultCap: c.HTTP.QueryCap,

		AuditRingSize:      c.Security.AuditRing,
		TokenPurgeInterval: c.Security.TokenPurgeInterval,

		Tenant: tenant.Config{
			Enabled: c.Tenant.Enabled,
			Limits:  c.Tenant.Limits(),
			Burst:   c.Tenant.Burst,
			TopK:    c.Tenant.MetricsTopK,
		},
	}, nil
}

// ApplyDynamic pushes the reloadable knobs of a validated candidate
// config into the running platform. It is the "swap" half of the
// validate-then-swap reload protocol: the caller has already run
// config.ValidateReload, so every change here is a dynamic field.
// Setters are individually atomic; there is no cross-knob transaction,
// which is fine — every dynamic knob is an independent tuning bound.
func (p *Platform) ApplyDynamic(c *config.Config) {
	p.Broker.SetSessionQueueLen(c.MQTT.SessionQueue)
	p.Broker.SetFlushWatermark(c.MQTT.FlushWatermark)
	p.Broker.SetRouteCacheSize(c.MQTT.RouteCache)
	// The whole tenant section is dynamic: quota-table edits (including
	// the admin API's PUT) and the enablement switch land here. SetLimits
	// clamps live buckets, so shrinking a quota below current usage
	// throttles immediately rather than after the old allowance drains.
	p.Admission.SetEnabled(c.Tenant.Enabled)
	p.Admission.SetLimits(c.Tenant.Limits())
	p.Admission.SetBurst(c.Tenant.Burst)
	p.Admission.SetTopK(c.Tenant.MetricsTopK)
	p.Webhooks.SetWorkers(c.Webhooks.Workers)
	p.Webhooks.SetRetryBackoff(c.Webhooks.Retry)
	p.Store.SetMaxAge(c.Timeseries.Retention)
	if p.Durable != nil {
		interval := c.WAL.SnapshotInterval
		if interval == 0 {
			interval = DefaultSnapshotInterval
		}
		p.Durable.WAL.SetSnapshotInterval(interval)
	}
}
