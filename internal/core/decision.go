package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"github.com/swamp-project/swamp/internal/irrigation"
	"github.com/swamp-project/swamp/internal/model"
)

// DecisionEngine turns the platform's *sensor-derived* view (never the
// simulation ground truth — decisions live with the same partial view the
// paper warns about) into irrigation commands for the pilot's actuators.
type DecisionEngine struct {
	pilot  Pilot
	layout *irrigation.PivotLayout // VRI pilots only
	cfg    irrigation.PlannerConfig

	probeCell   map[model.DeviceID]int
	probeSector map[model.DeviceID]int

	// seasonDay feeds the RDI stage logic; the season runner advances it.
	seasonDay int

	// ndviStress holds per-sector stressed-cell counts from the latest
	// drone survey (mobile-fog input). Stressed sectors irrigate earlier:
	// the survey covers every cell, compensating for sparse probes.
	ndviStress []int

	// tawMM / rawMM are the decision-side estimates from the pilot's base
	// soil profile (the controller does not know per-cell truth).
	tawMM float64
	rawMM float64

	// canalCapacityM3 bounds daily supply for canal pilots; 0 = unlimited.
	canalCapacityM3 float64
}

// NewDecisionEngine builds the engine for a pilot.
func NewDecisionEngine(pilot Pilot, grid model.FieldGrid, probeCells map[model.DeviceID]int) (*DecisionEngine, error) {
	e := &DecisionEngine{
		pilot:     pilot,
		cfg:       irrigation.PlannerConfig{TriggerFrac: 0.9, RefillFrac: 0.1, MaxDepthMM: 20},
		probeCell: probeCells,
		tawMM:     pilot.Soil.TAWmm(pilot.Crop.RootDepthM),
	}
	e.rawMM = pilot.Crop.DepletionFraction * e.tawMM
	if pilot.Irrigation == IrrigationVRIPivot {
		layout, err := irrigation.NewPivotLayout(grid, pilot.Sectors)
		if err != nil {
			return nil, err
		}
		e.layout = layout
		e.probeSector = make(map[model.DeviceID]int, len(probeCells))
		for dev, cell := range probeCells {
			e.probeSector[dev] = layout.SectorOfCell(cell)
		}
	}
	if pilot.Irrigation == IrrigationCanal {
		// District allotment: enough for ~6 mm/day over the field.
		areaHa := float64(pilot.GridRows*pilot.GridCols) * pilot.CellSizeM * pilot.CellSizeM / 10_000
		e.canalCapacityM3 = irrigation.VolumeM3(6, areaHa)
	}
	return e, nil
}

// SetSeasonDay advances the RDI stage pointer.
func (e *DecisionEngine) SetSeasonDay(d int) { e.seasonDay = d }

// SetNDVIStressCells installs the stressed-cell list from a drone survey.
// Only meaningful for VRI pilots; others ignore it.
func (e *DecisionEngine) SetNDVIStressCells(cells []int) {
	if e.layout == nil {
		return
	}
	stress := make([]int, e.pilot.Sectors)
	for _, c := range cells {
		if s := e.layout.SectorOfCell(c); s >= 0 {
			stress[s]++
		}
	}
	e.ndviStress = stress
}

// Layout exposes the pivot layout (nil for non-pivot pilots).
func (e *DecisionEngine) Layout() *irrigation.PivotLayout { return e.layout }

// estimateDepletion converts a moisture reading to root-zone depletion mm
// using the decision-side soil parameters.
func (e *DecisionEngine) estimateDepletion(theta float64) float64 {
	dep := (e.pilot.Soil.FieldCapacity - theta) * 1000 * e.pilot.Crop.RootDepthM
	return math.Max(0, math.Min(dep, e.tawMM))
}

// isMoisture selects soil-moisture readings (any depth).
func isMoisture(q model.Quantity) bool {
	return strings.HasPrefix(string(q), string(model.QSoilMoisture))
}

// Decide implements fog.DecisionFunc. It works off whatever latest view it
// is given — the fog node's local store or the cloud reconstruction.
func (e *DecisionEngine) Decide(latest map[string]model.Reading, at time.Time) []model.Command {
	switch e.pilot.Irrigation {
	case IrrigationVRIPivot:
		return e.decideVRI(latest, at)
	default:
		return e.decideZone(latest, at)
	}
}

// decideVRI issues one setRate command per triggered sector.
func (e *DecisionEngine) decideVRI(latest map[string]model.Reading, at time.Time) []model.Command {
	sums := make([]float64, e.pilot.Sectors)
	counts := make([]int, e.pilot.Sectors)
	var globalSum float64
	var globalN int
	for _, r := range latest {
		if !isMoisture(r.Quantity) {
			continue
		}
		dep := e.estimateDepletion(r.Value)
		globalSum += dep
		globalN++
		if s, ok := e.probeSector[r.Device]; ok && s >= 0 {
			sums[s] += dep
			counts[s]++
		}
	}
	if globalN == 0 {
		return nil
	}
	globalMean := globalSum / float64(globalN)
	var cmds []model.Command
	for s := 0; s < e.pilot.Sectors; s++ {
		dep := globalMean
		if counts[s] > 0 {
			dep = sums[s] / float64(counts[s])
		}
		trigger := e.cfg.TriggerFrac
		// Mobile-fog input: a sector the drone saw stress in irrigates
		// earlier — NDVI covers every cell, probes only a sample.
		if s < len(e.ndviStress) && e.ndviStress[s] > 0 {
			trigger *= 0.8
		}
		if dep <= trigger*e.rawMM {
			continue
		}
		depth := math.Min(dep-e.cfg.RefillFrac*e.rawMM, e.cfg.MaxDepthMM)
		cmds = append(cmds, model.Command{
			Target: model.DeviceID(fmt.Sprintf("%s-pivot-s%02d", e.pilot.Name, s)),
			Name:   "setRate", Value: depth, Issuer: "svc-irrigation", At: at,
		})
	}
	return cmds
}

// decideZone issues a single whole-field valve command (drip, deficit and
// canal pilots).
func (e *DecisionEngine) decideZone(latest map[string]model.Reading, at time.Time) []model.Command {
	var sum float64
	var n int
	for _, r := range latest {
		if !isMoisture(r.Quantity) {
			continue
		}
		sum += e.estimateDepletion(r.Value)
		n++
	}
	if n == 0 {
		return nil
	}
	dep := sum / float64(n)
	if dep <= e.cfg.TriggerFrac*e.rawMM {
		return nil
	}
	depth := math.Min(dep-e.cfg.RefillFrac*e.rawMM, e.cfg.MaxDepthMM)

	if e.pilot.Irrigation == IrrigationDeficitDrip {
		depth *= e.stageSupply()
		if depth <= 0 {
			return nil
		}
	}
	if e.pilot.Irrigation == IrrigationCanal && e.canalCapacityM3 > 0 {
		areaHa := e.fieldAreaHa()
		vol := irrigation.VolumeM3(depth, areaHa)
		if vol > e.canalCapacityM3 {
			depth = e.canalCapacityM3 / (areaHa * 10)
		}
	}
	return []model.Command{{
		Target: model.DeviceID(e.pilot.Name + "-valve"),
		Name:   "setRate", Value: depth, Issuer: "svc-irrigation", At: at,
	}}
}

// stageSupply is the Guaspari RDI supply fraction per crop stage: full in
// establishment, deficit from mid-season on.
func (e *DecisionEngine) stageSupply() float64 {
	fractions := [4]float64{1.0, 1.0, 0.6, 0.8}
	d := e.seasonDay
	for i := 0; i < 4; i++ {
		if d < e.pilot.Crop.StageDays[i] {
			return fractions[i]
		}
		d -= e.pilot.Crop.StageDays[i]
	}
	return fractions[3]
}

func (e *DecisionEngine) fieldAreaHa() float64 {
	return float64(e.pilot.GridRows*e.pilot.GridCols) * e.pilot.CellSizeM * e.pilot.CellSizeM / 10_000
}

// PrescriptionFromCommands converts a decision cycle's commands into the
// per-cell irrigation vector the soil simulation consumes, plus the total
// applied volume (m³) for energy accounting.
func (e *DecisionEngine) PrescriptionFromCommands(cmds []model.Command, nCells int) ([]float64, float64, error) {
	vec := make([]float64, nCells)
	cellHa := e.pilot.CellSizeM * e.pilot.CellSizeM / 10_000
	var volume float64
	for _, c := range cmds {
		if c.Name != "setRate" || c.Value <= 0 {
			continue
		}
		tgt := string(c.Target)
		switch {
		case strings.Contains(tgt, "-pivot-s"):
			if e.layout == nil {
				return nil, 0, fmt.Errorf("core: pivot command %q for non-pivot pilot", tgt)
			}
			idx := strings.LastIndex(tgt, "-s")
			s, err := strconv.Atoi(tgt[idx+2:])
			if err != nil || s < 0 || s >= e.pilot.Sectors {
				return nil, 0, fmt.Errorf("core: bad sector in command target %q", tgt)
			}
			for _, cell := range e.layout.CellsOfSector(s) {
				vec[cell] = c.Value
				volume += c.Value * cellHa * 10
			}
		case strings.HasSuffix(tgt, "-valve"):
			for i := range vec {
				vec[i] = c.Value
			}
			volume = c.Value * float64(nCells) * cellHa * 10
		default:
			return nil, 0, fmt.Errorf("core: unknown actuator target %q", tgt)
		}
	}
	return vec, volume, nil
}
