package core

import (
	"fmt"
	"time"
)

// MobileFogRow is one EXP-A3 line: the value of drone NDVI surveys when
// probe coverage is sparse.
type MobileFogRow struct {
	Mode        string // "farm-fog" or "mobile-fog"
	Probes      int
	StressDays  float64
	Irrigation  float64 // mm
	YieldIndex  float64
	SurveysDone int
}

// ExpMobileFogValue (EXP-A3) runs the MATOPIBA season with deliberately
// sparse probes, with and without weekly drone surveys feeding the VRI
// trigger. The paper motivates mobile fog nodes "acting in the field
// (e.g., drones)" (§I); the measurable value is earlier irrigation of
// sectors the probes cannot see.
func ExpMobileFogValue(probes int, seed int64) ([]MobileFogRow, error) {
	if probes < 1 {
		return nil, fmt.Errorf("core: need at least one probe")
	}
	pilot := PilotMATOPIBA
	pilot.Probes = probes

	var rows []MobileFogRow
	for _, withDrone := range []bool{false, true} {
		mode := ModeFarmFog
		if withDrone {
			mode = ModeMobileFog
		}
		p, err := New(Options{Pilot: pilot, Mode: mode, Seed: seed})
		if err != nil {
			return nil, err
		}
		surveys := 0
		rep, err := p.RunSeason(SeasonHooks{
			OnDay: func(day int, pl *Platform) {
				if !withDrone || day%7 != 0 {
					return
				}
				if _, err := pl.SurveyOnce(time.Now()); err == nil {
					surveys++
				}
			},
		})
		if err != nil {
			p.Close()
			return nil, err
		}
		rows = append(rows, MobileFogRow{
			Mode: mode.String(), Probes: probes,
			StressDays: rep.StressDays, Irrigation: rep.IrrigationMM,
			YieldIndex: rep.YieldIndex, SurveysDone: surveys,
		})
		p.Close()
	}
	return rows, nil
}
