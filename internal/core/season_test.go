package core

import (
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/attack"
)

// Every pilot must complete a full season through the real pipeline with a
// sane water balance and no decision failures.
func TestRunSeasonAllPilots(t *testing.T) {
	for _, pilot := range Pilots() {
		pilot := pilot
		t.Run(pilot.Name, func(t *testing.T) {
			p := newPlatform(t, pilot, ModeFarmFog, false)
			rep, err := p.RunSeason(SeasonHooks{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.DecisionFailures != 0 {
				t.Errorf("decision failures = %d", rep.DecisionFailures)
			}
			if rep.ET0MM <= 0 || rep.ETcMM <= 0 {
				t.Errorf("degenerate fluxes: %+v", rep)
			}
			if rep.IrrigationMM <= 0 {
				t.Errorf("pilot never irrigated (%+v)", rep)
			}
			if rep.YieldIndex < 0.5 {
				t.Errorf("yield %.3f collapsed despite irrigation", rep.YieldIndex)
			}
			// Water balance closes: in = out + Δstorage, and the report's
			// mm totals must be internally consistent.
			if rep.IrrigationMM+rep.RainMM < rep.ETcMM+rep.DeepPercMM-pilot.Soil.TAWmm(pilot.Crop.RootDepthM) {
				t.Errorf("water balance implausible: %+v", rep)
			}
		})
	}
}

// A sealed season must behave identically — encryption is transparent to
// the decision loop.
func TestRunSeasonSealed(t *testing.T) {
	plain := newPlatform(t, PilotIntercrop, ModeFarmFog, false)
	sealed := newPlatform(t, PilotIntercrop, ModeFarmFog, true)
	repP, err := plain.RunSeason(SeasonHooks{})
	if err != nil {
		t.Fatal(err)
	}
	repS, err := sealed.RunSeason(SeasonHooks{})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same pilot: identical agronomic outcome.
	if repP.IrrigationMM != repS.IrrigationMM || repP.YieldIndex != repS.YieldIndex {
		t.Errorf("sealing changed outcomes: plain %+v vs sealed %+v", repP, repS)
	}
	if sealed.Metrics().Counter("agent.north.badseal").Value() != 0 {
		t.Error("sealed season had seal failures")
	}
}

// A cloud-only season with a mid-season partition loses exactly the
// partitioned decision days — and the crop pays for it.
func TestRunSeasonCloudPartition(t *testing.T) {
	p := newPlatform(t, PilotMATOPIBA, ModeCloudOnly, false)
	cut, heal := 40, 70
	rep, err := p.RunSeason(SeasonHooks{
		OnDay: func(day int, p *Platform) {
			if day == cut {
				p.Backhaul.SetPartitioned(true)
			}
			if day == heal {
				p.Backhaul.SetPartitioned(false)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DecisionFailures != heal-cut {
		t.Errorf("failures = %d, want %d (the partition window)", rep.DecisionFailures, heal-cut)
	}

	// The same outage under farm-fog costs nothing.
	pf := newPlatform(t, PilotMATOPIBA, ModeFarmFog, false)
	repF, err := pf.RunSeason(SeasonHooks{
		OnDay: func(day int, p *Platform) {
			if day == cut {
				p.Backhaul.SetPartitioned(true)
			}
			if day == heal {
				p.Backhaul.SetPartitioned(false)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if repF.DecisionFailures != 0 {
		t.Errorf("fog failures = %d during partition", repF.DecisionFailures)
	}
	// Fog keeps commanding during the window, so it cannot issue fewer
	// commands than the stalled cloud loop. (Yield differences are within
	// seasonal noise and not asserted.)
	if repF.CommandsIssued < rep.CommandsIssued {
		t.Errorf("fog commands %d < partitioned-cloud commands %d",
			repF.CommandsIssued, rep.CommandsIssued)
	}
}

// A mid-season stuck-sensor tamper through the full platform pipeline must
// surface in the season report's alert summary.
func TestRunSeasonWithTamperDetected(t *testing.T) {
	p := newPlatform(t, PilotMATOPIBA, ModeFarmFog, false)
	var tampered func(day int, pl *Platform)
	installed := false
	tampered = func(day int, pl *Platform) {
		if day == 60 && !installed {
			installed = true
			victim := pl.Probes[2]
			wrapped, err := attack.TamperSender(victim.Send, attack.TamperStuck, 0, 0, 1)
			if err != nil {
				t.Errorf("tamper install: %v", err)
				return
			}
			victim.Send = wrapped
		}
	}
	rep, err := p.RunSeason(SeasonHooks{OnDay: tampered})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alerts["stuck"] == 0 {
		t.Errorf("stuck tamper not reflected in season alerts: %v", rep.Alerts)
	}
}

// Mobile fog: weekly drone surveys during the season populate the NDVI
// entity and track crop stress.
func TestRunSeasonMobileFogSurveys(t *testing.T) {
	p := newPlatform(t, PilotMATOPIBA, ModeMobileFog, false)
	surveys := 0
	rep, err := p.RunSeason(SeasonHooks{
		OnDay: func(day int, pl *Platform) {
			if day%14 != 0 {
				return
			}
			if _, err := pl.SurveyOnce(time.Now()); err != nil {
				t.Errorf("survey day %d: %v", day, err)
				return
			}
			surveys++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if surveys < 8 {
		t.Fatalf("surveys = %d", surveys)
	}
	if _, err := p.Context.GetEntity("urn:swamp:matopiba:ndvi"); err != nil {
		t.Error("ndvi entity missing after season")
	}
	if rep.DecisionFailures != 0 {
		t.Errorf("failures = %d", rep.DecisionFailures)
	}
}
