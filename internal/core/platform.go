package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/agent"
	"github.com/swamp-project/swamp/internal/anomaly"
	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/cloud"
	"github.com/swamp-project/swamp/internal/drone"
	"github.com/swamp-project/swamp/internal/fog"
	"github.com/swamp-project/swamp/internal/irrigation"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/mqtt"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/security/identity"
	"github.com/swamp-project/swamp/internal/security/oauth"
	"github.com/swamp-project/swamp/internal/security/pep"
	"github.com/swamp-project/swamp/internal/security/secchan"
	"github.com/swamp-project/swamp/internal/sensor"
	"github.com/swamp-project/swamp/internal/simnet"
	"github.com/swamp-project/swamp/internal/soil"
	"github.com/swamp-project/swamp/internal/tenant"
	"github.com/swamp-project/swamp/internal/timeseries"
	"github.com/swamp-project/swamp/internal/weather"
)

// Mode selects the paper's deployment configuration (§I).
type Mode int

// Deployment modes.
const (
	// ModeCloudOnly: decisions run in the cloud; every loop crosses the
	// backhaul, so a partition stalls irrigation.
	ModeCloudOnly Mode = iota + 1
	// ModeFarmFog: a fog node on the farm premises decides locally and
	// syncs telemetry opportunistically.
	ModeFarmFog
	// ModeMobileFog: farm fog plus mobile fog (drone NDVI) inputs.
	ModeMobileFog
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeCloudOnly:
		return "cloud-only"
	case ModeFarmFog:
		return "farm-fog"
	case ModeMobileFog:
		return "mobile-fog"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Backhaul models the farm↔cloud Internet path: a latency plus a
// partition switch. Both the fog sync and cloud-mode decision loops cross
// it. Entirely lock-free: the partition flag and the trip/failure counters
// are atomics and the latency is fixed at construction, so concurrent
// round trips never serialize on backhaul state.
type Backhaul struct {
	partitioned atomic.Bool
	latency     time.Duration // immutable after NewBackhaul
	trips       atomic.Uint64
	failures    atomic.Uint64
}

// NewBackhaul builds a backhaul with one-way latency lat.
func NewBackhaul(lat time.Duration) *Backhaul {
	return &Backhaul{latency: lat}
}

// ErrPartitioned is returned for traffic during a partition.
var ErrPartitioned = errors.New("core: backhaul partitioned")

// Do executes one round trip: it fails during partitions and otherwise
// charges 2× latency before invoking f.
func (b *Backhaul) Do(f func() error) error {
	if b.partitioned.Load() {
		b.failures.Add(1)
		return ErrPartitioned
	}
	if b.latency > 0 {
		time.Sleep(2 * b.latency)
	}
	b.trips.Add(1)
	return f()
}

// SetPartitioned cuts or heals the backhaul.
func (b *Backhaul) SetPartitioned(p bool) {
	b.partitioned.Store(p)
}

// Partitioned reports the current state.
func (b *Backhaul) Partitioned() bool {
	return b.partitioned.Load()
}

// Trips returns (successful round trips, failures).
func (b *Backhaul) Trips() (uint64, uint64) {
	return b.trips.Load(), b.failures.Load()
}

// Options configures a Platform.
type Options struct {
	Pilot Pilot
	Mode  Mode
	// Seed drives every stochastic component deterministically.
	Seed int64
	// Sealed turns on secchan payload encryption end to end.
	Sealed bool
	// BackhaulLatency is the one-way farm↔cloud latency (default 20ms;
	// use 0 in unit tests).
	BackhaulLatency time.Duration
	// DeviceLink impairs the device→broker links (default perfect).
	DeviceLink simnet.Config
	// Metrics receives all component counters; nil allocates one.
	Metrics *metrics.Registry
	// ContextShards overrides the context broker's shard count
	// (0 → ngsi.DefaultShards).
	ContextShards int
	// AgentBatchInterval tunes the IoT agent's batched ingest path: the
	// coalescing window before measurements flush to the context broker.
	// 0 means the 2ms default; negative disables batching (synchronous
	// per-message context updates).
	AgentBatchInterval time.Duration
	// FogSyncBatches is the number of buffered telemetry batches the fog
	// node coalesces per backhaul round trip (0 → 32).
	FogSyncBatches int
	// TimeseriesShards overrides the telemetry store's shard count
	// (0 → timeseries.DefaultShards).
	TimeseriesShards int
	// TimeseriesChunkSize overrides the points-per-sealed-chunk seal
	// threshold (0 → timeseries.DefaultChunkSize).
	TimeseriesChunkSize int
	// TelemetryMaxAge enables age-based retention in the telemetry store:
	// points older than this are evicted in the background and series
	// emptied by eviction are dropped. 0 disables age-based retention.
	TelemetryMaxAge time.Duration
	// TelemetryEvictionInterval is the background eviction cadence
	// (0 → timeseries.DefaultEvictionInterval; only meaningful with
	// TelemetryMaxAge set).
	TelemetryEvictionInterval time.Duration
	// TelemetryClock drives age-based retention decisions (nil → wall
	// clock). Simulations that enable TelemetryMaxAge must pass their
	// simulated clock here: readings carry simulated timestamps, and
	// evicting against wall time would silently delete the whole season.
	TelemetryClock clock.Clock
	// MQTTSessionQueue bounds each broker session's outbound queue
	// (0 → mqtt.DefaultSessionQueueLen). A stalled subscriber overflows
	// only its own queue; other sessions keep streaming.
	MQTTSessionQueue int
	// MQTTRetryInterval overrides the broker's QoS 1 redelivery /
	// keepalive cadence (0 → 1s).
	MQTTRetryInterval time.Duration
	// MQTTFlushWatermark is the byte threshold at which a session writer
	// flushes mid-batch instead of waiting for its queue to drain
	// (0 → mqtt.DefaultFlushWatermark; negative flushes per packet,
	// disabling write coalescing).
	MQTTFlushWatermark int
	// MQTTRouteCache bounds the broker's topic→subscriber route cache
	// (0 → mqtt.DefaultRouteCacheSize; negative disables caching so every
	// publish re-walks the subscription trie).
	MQTTRouteCache int
	// TransportClock drives the MQTT broker's keepalive, QoS 1 redelivery
	// and Tap timestamps (nil → wall clock). Simulations pass their
	// simulated clock so retransmission behaviour is deterministic.
	TransportClock clock.Clock
	// WebhookWorkers bounds concurrent outbound webhook deliveries
	// (0 → ngsi.DefaultWebhookWorkers).
	WebhookWorkers int
	// WebhookRetry is the first webhook retry backoff, doubling per
	// attempt (0 → ngsi.DefaultWebhookBackoff).
	WebhookRetry time.Duration
	// WebhookQueue bounds each subscription's pending-notification queue
	// (0 → ngsi.DefaultWebhookQueueLen). Overflow drops the newest
	// notification for that subscription only.
	WebhookQueue int
	// QueryResultCap is the hard cap on northbound query page sizes the
	// HTTP API enforces (0 → httpapi.DefaultQueryCap). The platform
	// records it here; swampd passes it to the API server.
	QueryResultCap int
	// WALDir enables the durability plane: a segmented write-ahead log
	// plus snapshots under the context broker and telemetry store. On
	// New, any existing state in the directory is recovered before the
	// platform starts serving. Empty disables durability (the pre-WAL
	// in-memory behavior).
	WALDir string
	// WALSegmentBytes is the WAL segment roll threshold
	// (0 → wal.DefaultSegmentBytes).
	WALSegmentBytes int64
	// WALFsyncInterval is the group-commit coalescing window: how long
	// the committer accumulates more records after a batch's first before
	// fsyncing once for all of them (0 → fsync as soon as the commit
	// queue drains; batching still emerges under concurrent writers).
	WALFsyncInterval time.Duration
	// SnapshotInterval is the cadence of point-in-time snapshots that
	// seal store state and truncate covered WAL segments
	// (0 → DefaultSnapshotInterval; negative disables periodic
	// snapshots). Only meaningful with WALDir set.
	SnapshotInterval time.Duration
	// AuditRingSize bounds the PEP's audit ring (entries, rounded up to
	// a power of two; 0 → pep.DefaultAuditCap). Overflow overwrites the
	// oldest entries and counts security.audit.dropped.
	AuditRingSize int
	// TokenPurgeInterval is the cadence of the OAuth token-store purge
	// loop that reclaims expired and revoked tokens (0 →
	// DefaultTokenPurgeInterval; negative disables the loop).
	TokenPurgeInterval time.Duration
	// SecurityClock drives token expiry and the purge loop (nil → wall
	// clock). Simulations pass their simulated clock so token lifetimes
	// follow simulated time.
	SecurityClock clock.Clock
	// Tenant configures the per-tenant admission controller. The zero
	// value builds a disabled controller: all wiring is in place but
	// every Admit answers Allow until tenant.enabled flips it on.
	Tenant tenant.Config
	// TrustTenantUsernames honors the "tenant:<id>" MQTT username
	// override in the broker's tenant resolution. Off by default: the
	// username is client-supplied and the platform broker runs no
	// AuthFunc, so trusting it would let any device impersonate another
	// tenant (draining the victim's quota) or mint fresh tenant IDs for
	// a new burst allowance per connect. Only multi-tenant harnesses
	// that control every attached transport (tenantbench-style cluster
	// fronts) should set it; production resolution stays credential-based.
	TrustTenantUsernames bool
}

// DefaultTokenPurgeInterval is the token-store purge cadence when
// Options.TokenPurgeInterval is zero.
const DefaultTokenPurgeInterval = time.Minute

// Platform is one fully wired SWAMP deployment.
type Platform struct {
	Opts Options

	// Transport and context plane.
	Broker   *mqtt.Broker
	Context  *ngsi.Broker
	Agent    *agent.Agent
	Webhooks *ngsi.WebhookPool

	// Security plane (§III).
	IDM     *identity.Store
	Tokens  *oauth.Server
	PDP     *pep.PDP
	PEP     *pep.PEP
	KeyRing *secchan.KeyRing
	Anomaly *anomaly.Engine

	// Admission is the per-tenant admission controller shared by every
	// ingress (MQTT publish, HTTP API, fog sync, webhook egress). Always
	// constructed; enforcement is gated on the tenant.enabled knob.
	Admission *tenant.Admission

	// Cloud plane.
	Store     *timeseries.Store
	Ingestor  *cloud.Ingestor
	Analytics *cloud.Analytics
	Backhaul  *Backhaul

	// Durability plane (nil unless Options.WALDir is set).
	Durable *Durability

	// Farm plane.
	Fog       *fog.Node
	Actuators *irrigation.ActuatorBank
	Field     *soil.Field
	Weather   *weather.Generator
	Station   *sensor.WeatherStation
	Probes    []*ProbeUnit
	Decision  *DecisionEngine

	reg       *metrics.Registry
	cleanups  []func()
	closed    bool
	mu        sync.Mutex
	droneUnit *drone.Drone
}

// ProbeUnit bundles one provisioned soil probe with its transport.
type ProbeUnit struct {
	Probe  *sensor.SoilProbe
	Prov   agent.Provision
	Client *mqtt.Client
	Send   func([]model.Reading) error
	Cell   int
}

// New wires a complete platform for the pilot. Close releases everything.
func New(opts Options) (*Platform, error) {
	if err := opts.Pilot.Validate(); err != nil {
		return nil, err
	}
	if opts.Mode == 0 {
		opts.Mode = ModeFarmFog
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	p := &Platform{Opts: opts, reg: opts.Metrics}

	// --- security plane ---
	p.IDM = identity.NewStore()
	p.Tokens = oauth.NewServer(p.IDM, oauth.Config{Clock: opts.SecurityClock})
	if opts.TokenPurgeInterval >= 0 {
		interval := opts.TokenPurgeInterval
		if interval == 0 {
			interval = DefaultTokenPurgeInterval
		}
		p.Tokens.StartPurge(interval)
	}
	owner := opts.Pilot.Name
	tid := tenant.ID(owner)
	p.PDP = pep.NewPDP(
		pep.Policy{
			ID:              "farmer-own-data",
			Roles:           []identity.Role{identity.RoleFarmer, identity.RoleAgronomist},
			Owners:          []tenant.ID{tid},
			Actions:         []string{"read", "subscribe"},
			ResourcePattern: "ngsi:urn:swamp:" + owner + ":*",
			Effect:          pep.Permit,
		},
		pep.Policy{
			ID:              "farmer-commands",
			Roles:           []identity.Role{identity.RoleFarmer},
			Owners:          []tenant.ID{tid},
			Actions:         []string{"command"},
			ResourcePattern: "actuator:" + owner + ":*",
			Effect:          pep.Permit,
		},
		pep.Policy{
			ID:              "farmer-subscriptions",
			Roles:           []identity.Role{identity.RoleFarmer, identity.RoleAgronomist},
			Owners:          []tenant.ID{tid},
			Actions:         []string{"read", "subscribe"},
			ResourcePattern: "subscriptions",
			Effect:          pep.Permit,
		},
		pep.Policy{
			ID:      "services-full",
			Roles:   []identity.Role{identity.RoleService},
			Actions: []string{"read", "subscribe", "command"},
			Effect:  pep.Permit,
		},
	)
	p.PEP = pep.NewPEP(p.Tokens, p.PDP, p.reg, pep.WithAuditCap(opts.AuditRingSize))
	if err := p.IDM.Register(identity.Principal{
		ID: owner + "-farmer", Roles: []identity.Role{identity.RoleFarmer}, Owner: tid,
	}, "farmer-secret"); err != nil {
		return nil, err
	}
	if err := p.IDM.Register(identity.Principal{
		ID: "svc-irrigation", Roles: []identity.Role{identity.RoleService}, Owner: tid,
	}, "svc-secret"); err != nil {
		return nil, err
	}
	if opts.Sealed {
		p.KeyRing = secchan.NewKeyRing()
		if _, err := p.KeyRing.Generate("agent"); err != nil {
			return nil, err
		}
	}

	// --- anomaly engine, fed by the broker tap and context notifications ---
	p.Anomaly = anomaly.NewEngine(anomaly.EngineConfig{
		Rate: anomaly.RateConfig{Window: 5 * time.Second, LimitPerSec: 50},
		// Heterogeneous soil makes honest probes genuinely disagree, so
		// the cross-sensor check needs a generous spread floor here; the
		// per-series EWMA carries the fine-grained tamper detection.
		Consistency: anomaly.ConsistencyConfig{MinPeers: 4, K: 8, MinSpread: 0.02},
		// Honest probes carry ≥0.004 m³/m³ instrument noise, so their
		// pairwise streams differ by ~0.006 on average; only fabricated
		// replicas fall under this epsilon.
		Sybil:   anomaly.SybilConfig{SimilarityEps: 0.002, MinSamples: 6},
		Sink:    func(anomaly.Alert) {},
		Metrics: p.reg,
	})

	// --- tenant admission plane ---
	// Constructed unconditionally (enforcement is behind tenant.enabled)
	// so every ingress wires through it and a reload can turn admission
	// on without a restart.
	p.Admission = tenant.NewAdmission(opts.Tenant)

	// --- transport plane ---
	p.Broker = mqtt.NewBroker(mqtt.BrokerConfig{
		Metrics:         p.reg,
		ACL:             p.brokerACL,
		TenantFunc:      p.brokerTenant,
		Admission:       p.Admission,
		SessionQueueLen: opts.MQTTSessionQueue,
		RetryInterval:   opts.MQTTRetryInterval,
		FlushWatermark:  opts.MQTTFlushWatermark,
		RouteCacheSize:  opts.MQTTRouteCache,
		Clock:           opts.TransportClock,
	})
	p.Broker.Tap = p.Anomaly.OnMessage

	// --- context plane ---
	// Component shutdown is NOT registered in cleanups: Close sequences
	// the planes explicitly (ingress → drains → stores → WAL) so
	// in-flight work lands before the stores it lands in go away.
	p.Context = ngsi.NewBroker(ngsi.BrokerConfig{Metrics: p.reg, Shards: opts.ContextShards})
	p.Webhooks = ngsi.NewWebhookPool(ngsi.WebhookConfig{
		Metrics:      p.reg,
		Workers:      opts.WebhookWorkers,
		RetryBackoff: opts.WebhookRetry,
		QueueLen:     opts.WebhookQueue,
		OnStatus:     ngsi.StatusUpdater(p.Context),
		Admission:    p.Admission,
	})

	// --- cloud plane ---
	tsOpts := []timeseries.Option{
		timeseries.WithMaxPointsPerSeries(100_000),
		timeseries.WithShards(opts.TimeseriesShards),
		timeseries.WithChunkSize(opts.TimeseriesChunkSize),
	}
	if opts.TelemetryMaxAge > 0 {
		tsOpts = append(tsOpts,
			timeseries.WithMaxAge(opts.TelemetryMaxAge),
			timeseries.WithEvictionInterval(opts.TelemetryEvictionInterval),
			timeseries.WithClock(opts.TelemetryClock))
	}
	p.Store = timeseries.New(tsOpts...)
	p.Ingestor = cloud.NewIngestor(p.Store, p.reg)
	p.Analytics = cloud.NewAnalytics(p.Store)
	lat := opts.BackhaulLatency
	p.Backhaul = NewBackhaul(lat)

	// --- durability plane ---
	// Recovery runs before any internal subscription is wired, so
	// replaying entities cannot fire platform callbacks; only recovered
	// webhook subscriptions see (at-least-once) tail redeliveries.
	if opts.WALDir != "" {
		d, err := OpenDurability(DurabilityConfig{
			Dir:              opts.WALDir,
			SegmentBytes:     opts.WALSegmentBytes,
			FsyncInterval:    opts.WALFsyncInterval,
			SnapshotInterval: opts.SnapshotInterval,
			Metrics:          p.reg,
			Admission:        p.Admission,
		}, p.Context, p.Store, p.Webhooks)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.Durable = d
	}

	// Context → anomaly + cloud persistence. In fog modes the fog node
	// forwards telemetry instead, so the context subscription only feeds
	// anomaly detection there.
	if _, err := p.Context.Subscribe(ngsi.Subscription{
		ID:              "platform-telemetry",
		EntityIDPattern: "*",
		Notifier:        ngsi.Callback(p.onContextNotification),
	}); err != nil {
		return nil, err
	}

	// --- IoT agent ---
	agentClient, err := p.dial("iot-agent")
	if err != nil {
		p.Close()
		return nil, err
	}
	batchInterval := opts.AgentBatchInterval
	switch {
	case batchInterval == 0:
		batchInterval = 2 * time.Millisecond
	case batchInterval < 0:
		batchInterval = 0 // synchronous path
	}
	p.Agent, err = agent.New(agent.Config{
		Client: agentClient, Context: p.Context, KeyRing: p.KeyRing, Metrics: p.reg,
		BatchInterval: batchInterval,
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	// Agent.Stop is sequenced explicitly in Close (after the clients
	// disconnect, before the context broker closes) so the northbound
	// batcher flushes into a live broker.
	if err := p.Agent.Start(); err != nil {
		p.Close()
		return nil, err
	}

	// --- farm plane: field, weather, devices ---
	grid, err := model.NewFieldGrid(
		model.GeoPoint{Lat: opts.Pilot.Climate.LatitudeDeg, Lon: -45},
		opts.Pilot.GridRows, opts.Pilot.GridCols, opts.Pilot.CellSizeM)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.Field, err = soil.NewHeterogeneousField(grid, opts.Pilot.Crop, opts.Pilot.Soil,
		opts.Pilot.SoilVariability, opts.Seed)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.Weather, err = weather.NewGenerator(opts.Pilot.Climate, opts.Seed+1)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.Actuators = irrigation.NewActuatorBank()

	if err := p.provisionDevices(); err != nil {
		p.Close()
		return nil, err
	}

	// --- decision engine + fog ---
	p.Decision, err = NewDecisionEngine(opts.Pilot, p.Field.Grid, p.probeCells())
	if err != nil {
		p.Close()
		return nil, err
	}
	if opts.Mode != ModeCloudOnly {
		syncBatches := opts.FogSyncBatches
		if syncBatches <= 0 {
			syncBatches = 32
		}
		p.Fog, err = fog.NewNode(fog.Config{
			Uplink:            p.cloudUplink,
			Decide:            p.Decision.Decide,
			Commands:          p.applyCommand,
			MaxBatchesPerTrip: syncBatches,
			Metrics:           p.reg,
		})
		if err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// brokerTenant resolves an MQTT client to its tenant at CONNECT time:
// infrastructure clients are internal platform traffic (tenant.None,
// exempt from admission); every device client belongs to the pilot's
// tenant. A username of the form "tenant:<id>" overrides the mapping
// only when Options.TrustTenantUsernames is set — the username is
// client-supplied, so honoring it unconditionally would let any device
// impersonate (and throttle) another tenant or mint fresh tenant IDs to
// evade quotas.
func (p *Platform) brokerTenant(clientID, username string) tenant.ID {
	if rest, ok := strings.CutPrefix(username, "tenant:"); ok && p.Opts.TrustTenantUsernames {
		return tenant.ID(rest)
	}
	switch clientID {
	case "iot-agent", "fog", "cloud", "platform", "bench":
		return tenant.None
	}
	return tenant.ID(p.Opts.Pilot.Name)
}

// brokerACL restricts devices to their own topics; infrastructure clients
// are unrestricted. This is the transport-level arm of the §III access
// control story.
func (p *Platform) brokerACL(clientID, topic string, write bool) bool {
	switch clientID {
	case "iot-agent", "fog", "cloud", "platform", "bench":
		return true
	}
	apiKey, devID, err := agent.ParseAttrsTopic(topic)
	if err == nil {
		_ = apiKey
		return write && devID == clientID
	}
	// Command topics: only the device itself may subscribe.
	if k, d, ok := parseCmdTopic(topic); ok {
		_ = k
		return !write && d == clientID
	}
	return false
}

func parseCmdTopic(topic string) (apiKey, dev string, ok bool) {
	// topic = ul/<key>/<dev>/cmd
	parts := splitTopic(topic)
	if len(parts) == 4 && parts[0] == "ul" && parts[3] == "cmd" {
		return parts[1], parts[2], true
	}
	return "", "", false
}

func splitTopic(t string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(t); i++ {
		if t[i] == '/' {
			parts = append(parts, t[start:i])
			start = i + 1
		}
	}
	return append(parts, t[start:])
}

// dial connects an infrastructure client to the platform broker over a
// perfect in-memory link.
func (p *Platform) dial(clientID string) (*mqtt.Client, error) {
	ct, st, cleanup, err := mqtt.NewSimPair(simnet.Config{}, clientID)
	if err != nil {
		return nil, err
	}
	p.Broker.AttachTransport(st)
	c, err := mqtt.Connect(ct, mqtt.ClientConfig{ClientID: clientID, KeepAlive: 0})
	if err != nil {
		cleanup()
		return nil, fmt.Errorf("core: dial %s: %w", clientID, err)
	}
	p.cleanups = append(p.cleanups, func() { c.Close(); cleanup() })
	return c, nil
}

// DialDevice connects a (possibly impaired) device client — also used by
// attack injectors to join as rogue devices.
func (p *Platform) DialDevice(clientID string, link simnet.Config) (*mqtt.Client, error) {
	ct, st, cleanup, err := mqtt.NewSimPair(link, clientID)
	if err != nil {
		return nil, err
	}
	p.Broker.AttachTransport(st)
	c, err := mqtt.Connect(ct, mqtt.ClientConfig{ClientID: clientID})
	if err != nil {
		cleanup()
		return nil, fmt.Errorf("core: dial device %s: %w", clientID, err)
	}
	p.mu.Lock()
	p.cleanups = append(p.cleanups, func() { c.Close(); cleanup() })
	p.mu.Unlock()
	return c, nil
}

// provisionDevices creates the pilot's probes and weather station,
// registers them with IDM, agent and (optionally) the key ring.
func (p *Platform) provisionDevices() error {
	pilot := p.Opts.Pilot
	n := p.Field.Grid.NumCells()
	stride := n / pilot.Probes
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < pilot.Probes; i++ {
		cell := (i*stride + stride/2) % n
		id := fmt.Sprintf("%s-probe-%02d", pilot.Name, i)
		desc := model.Descriptor{
			ID: model.DeviceID(id), Kind: model.KindSoilProbe, Owner: tenant.ID(pilot.Name),
			Location: cellCenter(p.Field.Grid, cell),
			Depths:   []float64{0.2, 0.5},
			APIKey:   "swamp-" + pilot.Name,
		}
		prov := agent.Provision{
			Desc:       desc,
			EntityID:   fmt.Sprintf("urn:swamp:%s:probe:%02d", pilot.Name, i),
			EntityType: "SoilProbe",
			AttrMap: map[string]agent.AttrSpec{
				"m1": {Quantity: model.QSoilMoisture, Depth: 0.2},
				"m2": {Quantity: model.QSoilMoisture, Depth: 0.5},
			},
		}
		if err := p.Agent.Provision(prov); err != nil {
			return err
		}
		if err := p.IDM.Register(identity.Principal{
			ID: id, Roles: []identity.Role{identity.RoleDevice}, Owner: tenant.ID(pilot.Name),
		}, "device-"+id); err != nil {
			return err
		}
		if p.KeyRing != nil {
			if _, err := p.KeyRing.Generate(id); err != nil {
				return err
			}
		}
		probe, err := sensor.NewSoilProbe(desc, p.Field, cell, 0.004, p.Opts.Seed+int64(i)+10)
		if err != nil {
			return err
		}
		client, err := p.DialDevice(id, p.Opts.DeviceLink)
		if err != nil {
			return err
		}
		send, err := agent.DeviceSender(prov, client, p.KeyRing)
		if err != nil {
			return err
		}
		p.Probes = append(p.Probes, &ProbeUnit{Probe: probe, Prov: prov, Client: client, Send: send, Cell: cell})
	}

	// Weather station.
	wsID := pilot.Name + "-ws"
	wsDesc := model.Descriptor{
		ID: model.DeviceID(wsID), Kind: model.KindWeatherStation, Owner: tenant.ID(pilot.Name),
		APIKey: "swamp-" + pilot.Name,
	}
	ws, err := sensor.NewWeatherStation(wsDesc, p.Opts.Seed+99)
	if err != nil {
		return err
	}
	p.Station = ws
	return nil
}

func cellCenter(g model.FieldGrid, idx int) model.GeoPoint {
	r, c := g.CellRC(idx)
	return g.CellCenter(r, c)
}

// probeCells maps probe device id → field cell.
func (p *Platform) probeCells() map[model.DeviceID]int {
	out := make(map[model.DeviceID]int, len(p.Probes))
	for _, u := range p.Probes {
		out[u.Prov.Desc.ID] = u.Cell
	}
	return out
}

// onContextNotification feeds anomaly detection (always) and, in cloud-only
// mode, persists through the backhaul (fog forwards otherwise).
func (p *Platform) onContextNotification(n ngsi.Notification) {
	for name, attr := range n.Entity.Attrs {
		v, ok := attr.Float()
		if !ok {
			continue
		}
		dev := attr.Metadata["device"]
		if dev == "" {
			dev = n.Entity.ID
		}
		at := attr.At
		if at.IsZero() {
			at = n.At
		}
		p.Anomaly.OnReading(model.Reading{
			Device: model.DeviceID(dev), Quantity: model.Quantity(name), Value: v, At: at,
		})
	}
	defer p.reg.Counter("platform.notify.processed").Inc()
	if p.Opts.Mode == ModeCloudOnly {
		_ = p.Backhaul.Do(func() error {
			p.Ingestor.NotificationHandler()(n)
			return nil
		})
	} else if p.Fog != nil {
		// Fog ingests the decoded readings for local decisions + sync.
		var batch []model.Reading
		for name, attr := range n.Entity.Attrs {
			v, ok := attr.Float()
			if !ok {
				continue
			}
			dev := attr.Metadata["device"]
			if dev == "" {
				dev = n.Entity.ID
			}
			at := attr.At
			if at.IsZero() {
				at = n.At
			}
			batch = append(batch, model.Reading{
				Device: model.DeviceID(dev), Quantity: model.Quantity(name), Value: v, At: at,
			})
		}
		_ = p.Fog.Ingest(batch)
	}
}

// approxReadingBytes is the admission byte charge per fog-synced reading
// (the rough wire footprint of one encoded sample).
const approxReadingBytes = 24

// cloudUplink is the fog node's northbound path: a backhaul round trip
// into the cloud ingestor.
//
// Admission here is pure backpressure: any non-Allow decision surfaces
// as an error, which the fog node treats exactly like a partition — the
// batch stays in its store-and-forward queue and replays later. Nothing
// acknowledged is ever shed; an over-quota tenant's sync just falls
// behind its own queue bound.
func (p *Platform) cloudUplink(batch []model.Reading) error {
	tid := tenant.ID(p.Opts.Pilot.Name)
	if d := p.Admission.Admit(tid, int64(len(batch))*approxReadingBytes); !d.Allowed() {
		return fmt.Errorf("core: fog uplink throttled for tenant %s (retry in %v)", tid, d.RetryAfter)
	}
	return p.Backhaul.Do(func() error {
		return p.Ingestor.IngestReadings(batch)
	})
}

// applyCommand journals a decision into the actuator bank and the anomaly
// sequence profiler.
func (p *Platform) applyCommand(c model.Command) error {
	p.Anomaly.OnEvent("decision-loop", "command:"+c.Name, c.At)
	return p.Actuators.Apply(c)
}

// PumpOnce drives one full northbound cycle: every probe samples and
// publishes over MQTT, and the call blocks until the agent has processed
// the batches (or the timeout expires).
func (p *Platform) PumpOnce(at time.Time, timeout time.Duration) error {
	before := p.reg.Counter("agent.north.ok").Value()
	for _, u := range p.Probes {
		readings, err := u.Probe.Sample(at)
		if err != nil {
			return err
		}
		if err := u.Send(readings); err != nil {
			return fmt.Errorf("core: probe %s publish: %w", u.Prov.Desc.ID, err)
		}
	}
	want := before + uint64(len(p.Probes))
	if !p.Agent.WaitNorthbound(want, timeout) {
		return fmt.Errorf("core: northbound pipeline incomplete (%d/%d)",
			p.reg.Counter("agent.north.ok").Value()-before, len(p.Probes))
	}
	return nil
}

// WaitPipeline blocks until the mode-appropriate downstream (fog ingest or
// cloud persistence) has processed at least n notification batches, making
// Pump→Decide cycles deterministic. It reports whether the target was
// reached before the timeout.
func (p *Platform) WaitPipeline(n uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if p.reg.Counter("platform.notify.processed").Value() >= n {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// DecideOnce runs one decision cycle appropriate to the deployment mode
// and returns the issued commands. In cloud-only mode the loop crosses the
// backhaul twice (state fetch + command push) and therefore fails during
// partitions; in fog modes it is local and always available.
func (p *Platform) DecideOnce(at time.Time) ([]model.Command, error) {
	p.Anomaly.OnEvent("decision-loop", "plan", at)
	switch p.Opts.Mode {
	case ModeCloudOnly:
		var cmds []model.Command
		err := p.Backhaul.Do(func() error { // fetch state
			latest := p.cloudLatest()
			cmds = p.Decision.Decide(latest, at)
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, c := range cmds {
			if err := p.Backhaul.Do(func() error { return p.applyCommand(c) }); err != nil {
				return cmds, err
			}
		}
		return cmds, nil
	default:
		if p.Fog == nil {
			return nil, errors.New("core: fog node missing")
		}
		return p.Fog.RunDecision(at)
	}
}

// cloudLatest reconstructs the latest-readings view from the cloud store
// in one pass over the store's shards (no key copying, no per-key lock).
func (p *Platform) cloudLatest() map[string]model.Reading {
	out := make(map[string]model.Reading)
	p.Store.ForEachLatest(func(key timeseries.SeriesKey, pt timeseries.Point) {
		out[key.Device+"/"+key.Quantity] = model.Reading{
			Device:   model.DeviceID(key.Device),
			Quantity: model.Quantity(key.Quantity),
			Value:    pt.Value,
			At:       pt.At,
		}
	})
	return out
}

// Metrics returns the shared registry.
func (p *Platform) Metrics() *metrics.Registry { return p.reg }

// Close tears the platform down in dependency order, not construction
// order: stop ingress first, then drain every in-flight queue into the
// stores it feeds, then close the stores, and flush the WAL last — so
// no acknowledged work is lost at shutdown.
//
//  1. disconnect MQTT clients (devices, then infrastructure) so no new
//     traffic enters;
//  2. stop the IoT agent, flushing its northbound batcher into the
//     context broker;
//  3. close the MQTT broker, draining per-session outbound queues;
//  4. close the context broker, draining shard notification queues into
//     their notifiers (webhook queues, fog ingest, cloud persistence);
//  5. drain and close the webhook pool (bounded wait — a stalled
//     endpoint cannot wedge shutdown);
//  6. flush the fog node's store-and-forward backlog while the backhaul
//     is still reachable;
//  7. close the telemetry store (stops background eviction);
//  8. close the durability plane last: every write the steps above
//     produced group-commits and fsyncs before Close returns.
func (p *Platform) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	cleanups := p.cleanups
	p.cleanups = nil
	p.mu.Unlock()
	for i := len(cleanups) - 1; i >= 0; i-- {
		cleanups[i]()
	}
	if p.Agent != nil {
		p.Agent.Stop()
	}
	if p.Broker != nil {
		p.Broker.Close()
	}
	if p.Context != nil {
		p.Context.Close()
	}
	if p.Webhooks != nil {
		p.Webhooks.Drain(2 * time.Second)
		p.Webhooks.Close()
	}
	if p.Fog != nil {
		p.Fog.Flush()
	}
	if p.Store != nil {
		p.Store.Close()
	}
	if p.Tokens != nil {
		p.Tokens.Close()
	}
	if p.Durable != nil {
		_ = p.Durable.Close()
	}
}
