package core

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/tenant"
	"github.com/swamp-project/swamp/internal/timeseries"
)

// durablePair builds a fresh broker+store+pool over dir. snapIntv < 0
// disables periodic snapshots.
func durablePair(t *testing.T, dir string, snapIntv time.Duration) (*ngsi.Broker, *timeseries.Store, *ngsi.WebhookPool, *Durability) {
	t.Helper()
	reg := metrics.NewRegistry()
	broker := ngsi.NewBroker(ngsi.BrokerConfig{Metrics: reg})
	store := timeseries.New()
	pool := ngsi.NewWebhookPool(ngsi.WebhookConfig{
		Metrics:  reg,
		OnStatus: ngsi.StatusUpdater(broker),
	})
	d, err := OpenDurability(DurabilityConfig{
		Dir:              dir,
		SnapshotInterval: snapIntv,
		Metrics:          reg,
	}, broker, store, pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		broker.Close()
		pool.Close()
		store.Close()
		_ = d.Close()
	})
	return broker, store, pool, d
}

func TestDurabilityRecoversContextAndTelemetry(t *testing.T) {
	dir := t.TempDir()
	broker, store, _, d := durablePair(t, dir, -1)

	// Context mutations: upsert, merge, delete.
	if err := broker.UpsertEntity(&ngsi.Entity{
		ID: "urn:test:a", Type: "SoilProbe",
		Attrs: map[string]ngsi.Attribute{"m": {Type: "Number", Value: 0.25}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := broker.UpdateAttrs("urn:test:a", "SoilProbe", map[string]ngsi.Attribute{
		"m2": {Type: "Number", Value: 0.5},
	}); err != nil {
		t.Fatal(err)
	}
	if err := broker.BatchUpdate(map[string]ngsi.BatchEntry{
		"urn:test:b": {Type: "SoilProbe", Attrs: map[string]ngsi.Attribute{"m": {Type: "Number", Value: 1.0}}},
		"urn:test:c": {Type: "SoilProbe", Attrs: map[string]ngsi.Attribute{"m": {Type: "Number", Value: 2.0}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := broker.DeleteEntity("urn:test:c"); err != nil {
		t.Fatal(err)
	}

	// Telemetry: single and batch.
	key := timeseries.SeriesKey{Device: "dev-1", Quantity: "m"}
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	if err := store.Append(key, timeseries.Point{At: base, Value: 1}); err != nil {
		t.Fatal(err)
	}
	batch := make([]timeseries.BatchPoint, 50)
	for i := range batch {
		batch[i] = timeseries.BatchPoint{Key: key, Point: timeseries.Point{
			At: base.Add(time.Duration(i+1) * time.Second), Value: float64(i),
		}}
	}
	if _, _, err := store.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}

	broker.Close()
	store.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh stores over the same dir: everything must come back.
	broker2, store2, _, d2 := durablePair(t, dir, -1)
	if d2.Recovered.TailRecords == 0 {
		t.Fatalf("nothing replayed: %+v", d2.Recovered)
	}
	if n := broker2.EntityCount(); n != 2 {
		t.Fatalf("recovered %d entities, want 2 (a, b — c was deleted)", n)
	}
	a, err := broker2.GetEntity("urn:test:a")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Attrs["m"].Float(); v != 0.25 {
		t.Fatalf("a.m = %v", a.Attrs["m"].Value)
	}
	if v, _ := a.Attrs["m2"].Float(); v != 0.5 {
		t.Fatalf("a.m2 = %v", a.Attrs["m2"].Value)
	}
	if _, err := broker2.GetEntity("urn:test:c"); err == nil {
		t.Fatal("deleted entity resurrected")
	}
	if n := store2.Len(key); n != 51 {
		t.Fatalf("recovered %d points, want 51", n)
	}
	latest, ok := store2.Latest(key)
	if !ok || !latest.At.Equal(base.Add(50*time.Second)) {
		t.Fatalf("latest = %+v", latest)
	}
}

func TestDurabilityRecoversAcrossSnapshot(t *testing.T) {
	dir := t.TempDir()
	broker, store, _, d := durablePair(t, dir, -1)

	key := timeseries.SeriesKey{Device: "dev-1", Quantity: "m"}
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 40; i++ {
		if err := store.Append(key, timeseries.Point{At: base.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := broker.UpsertEntity(&ngsi.Entity{
		ID: "urn:test:a", Type: "SoilProbe",
		Attrs: map[string]ngsi.Attribute{"m": {Type: "Number", Value: 0.25}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail.
	for i := 40; i < 55; i++ {
		if err := store.Append(key, timeseries.Point{At: base.Add(time.Duration(i) * time.Second), Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := broker.UpdateAttrs("urn:test:a", "SoilProbe", map[string]ngsi.Attribute{
		"m": {Type: "Number", Value: 0.75},
	}); err != nil {
		t.Fatal(err)
	}
	broker.Close()
	store.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	broker2, store2, _, d2 := durablePair(t, dir, -1)
	if d2.Recovered.SnapshotRecords == 0 || d2.Recovered.TailRecords == 0 {
		t.Fatalf("expected snapshot + tail replay: %+v", d2.Recovered)
	}
	if n := store2.Len(key); n != 55 {
		t.Fatalf("recovered %d points, want 55 (snapshot 40 + tail 15, no duplicates)", n)
	}
	a, err := broker2.GetEntity("urn:test:a")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Attrs["m"].Float(); v != 0.75 {
		t.Fatalf("tail update lost: m = %v", a.Attrs["m"].Value)
	}
}

// TestDurabilityExactCountsUnderConcurrentSnapshots is the core
// correctness property: with appends racing snapshots (rotation +
// DumpFrozen + truncation), recovery must reproduce exactly the
// acknowledged point count — no duplicates from the snapshot/tail
// overlap, no losses from truncation.
func TestDurabilityExactCountsUnderConcurrentSnapshots(t *testing.T) {
	dir := t.TempDir()
	broker, store, _, d := durablePair(t, dir, -1)

	const workers = 4
	const perWorker = 300
	base := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	var acked atomic.Uint64
	var appenders sync.WaitGroup
	errs := make(chan error, workers+1)
	for w := 0; w < workers; w++ {
		appenders.Add(1)
		go func(w int) {
			defer appenders.Done()
			key := timeseries.SeriesKey{Device: fmt.Sprintf("dev-%d", w), Quantity: "m"}
			for i := 0; i < perWorker; i++ {
				batch := []timeseries.BatchPoint{
					{Key: key, Point: timeseries.Point{At: base.Add(time.Duration(2*i) * time.Millisecond), Value: 1}},
					{Key: key, Point: timeseries.Point{At: base.Add(time.Duration(2*i+1) * time.Millisecond), Value: 2}},
				}
				if _, _, err := store.AppendBatch(batch); err != nil {
					errs <- err
					return
				}
				acked.Add(2)
			}
		}(w)
	}
	// Snapshot storm concurrent with the appends.
	stop := make(chan struct{})
	var snapper sync.WaitGroup
	snapper.Add(1)
	go func() {
		defer snapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := d.Snapshot(); err != nil {
					errs <- err
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	appenders.Wait()
	close(stop)
	snapper.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	total := int(acked.Load())
	broker.Close()
	store.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	_, store2, _, _ := durablePair(t, dir, -1)
	if got := store2.Stats().Points; got != total {
		t.Fatalf("recovered %d points, want exactly %d acked", got, total)
	}
}

func TestDurabilityWebhookSubscriptionRecovery(t *testing.T) {
	dir := t.TempDir()

	var received atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		received.Add(1)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	broker, store, pool, d := durablePair(t, dir, -1)
	notifier, err := pool.Notifier("urn:swamp:subscription:000007", srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Subscribe(ngsi.Subscription{
		ID:              "urn:swamp:subscription:000007",
		EntityIDPattern: "urn:test:*",
		NotifyAttrs:     []string{"m"},
		Owner:           "tenant-1",
		Notifier:        notifier,
	}); err != nil {
		t.Fatal(err)
	}
	// A second durable subscription that gets deleted: must stay deleted.
	n2, err := pool.Notifier("urn:swamp:subscription:000008", srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Subscribe(ngsi.Subscription{
		ID: "urn:swamp:subscription:000008", EntityIDPattern: "*", Notifier: n2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := broker.Unsubscribe("urn:swamp:subscription:000008"); err != nil {
		t.Fatal(err)
	}
	pool.Remove("urn:swamp:subscription:000008")
	// An in-process subscription: must NOT be journaled.
	if _, err := broker.Subscribe(ngsi.Subscription{
		EntityIDPattern: "*", Notifier: ngsi.Callback(func(ngsi.Notification) {}),
	}); err != nil {
		t.Fatal(err)
	}
	broker.Close()
	pool.Close()
	store.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	broker2, _, pool2, _ := durablePair(t, dir, -1)
	subs := broker2.Subscriptions()
	if len(subs) != 1 || subs[0].ID != "urn:swamp:subscription:000007" {
		t.Fatalf("recovered subscriptions: %+v", subs)
	}
	if subs[0].Owner != "tenant-1" || subs[0].EntityIDPattern != "urn:test:*" {
		t.Fatalf("subscription fields lost: %+v", subs[0])
	}
	if url, ok := pool2.URL("urn:swamp:subscription:000007"); !ok || url != srv.URL {
		t.Fatalf("webhook URL not restored: %q %v", url, ok)
	}
	// And it still delivers: an update must reach the endpoint.
	if err := broker2.UpsertEntity(&ngsi.Entity{
		ID: "urn:test:x", Type: "SoilProbe",
		Attrs: map[string]ngsi.Attribute{"m": {Type: "Number", Value: 0.1}},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if received.Load() == 0 {
		t.Fatal("recovered webhook subscription never delivered")
	}
}

func TestPlatformWALRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Pilot:  PilotIntercrop,
		Mode:   ModeFarmFog,
		WALDir: dir,
		// Disable periodic snapshots: this test exercises pure tail replay
		// through the full platform wiring.
		SnapshotInterval: -1,
	}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Context.UpsertEntity(&ngsi.Entity{
		ID: "urn:test:persist", Type: "Marker",
		Attrs: map[string]ngsi.Attribute{"v": {Type: "Number", Value: 42.0}},
	}); err != nil {
		p.Close()
		t.Fatal(err)
	}
	key := timeseries.SeriesKey{Device: "dev-p", Quantity: "m"}
	if err := p.Store.Append(key, timeseries.Point{At: time.Now(), Value: 7}); err != nil {
		p.Close()
		t.Fatal(err)
	}
	entities := p.Context.EntityCount()
	p.Close()

	p2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.Durable == nil {
		t.Fatal("platform did not open durability plane")
	}
	if got := p2.Context.EntityCount(); got < entities {
		t.Fatalf("recovered %d entities, want >= %d", got, entities)
	}
	e, err := p2.Context.GetEntity("urn:test:persist")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Attrs["v"].Float(); v != 42.0 {
		t.Fatalf("v = %v", e.Attrs["v"].Value)
	}
	if n := p2.Store.Len(key); n != 1 {
		t.Fatalf("recovered %d points for %s, want 1", n, key)
	}
}

// WAL-recovered subscriptions must restore their tenant's subscription
// slots: without pairing, post-restart slot usage restarts at zero
// while the subscriptions live on, and a later delete would release a
// slot held by a post-restart subscription of the same tenant.
func TestDurabilityRestoresSubscriptionSlots(t *testing.T) {
	dir := t.TempDir()
	newAdm := func() *tenant.Admission {
		return tenant.NewAdmission(tenant.Config{
			Enabled: true,
			Limits:  tenant.Limits{Default: tenant.Quota{MsgsPerSec: 100, Subscriptions: 2}},
		})
	}
	open := func(adm *tenant.Admission) (*ngsi.Broker, *ngsi.WebhookPool, *Durability) {
		reg := metrics.NewRegistry()
		broker := ngsi.NewBroker(ngsi.BrokerConfig{Metrics: reg})
		store := timeseries.New()
		pool := ngsi.NewWebhookPool(ngsi.WebhookConfig{Metrics: reg, OnStatus: ngsi.StatusUpdater(broker)})
		d, err := OpenDurability(DurabilityConfig{
			Dir: dir, SnapshotInterval: -1, Metrics: reg, Admission: adm,
		}, broker, store, pool)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			broker.Close()
			pool.Close()
			store.Close()
			_ = d.Close()
		})
		return broker, pool, d
	}
	subscribe := func(broker *ngsi.Broker, pool *ngsi.WebhookPool, adm *tenant.Admission, id string) {
		t.Helper()
		if err := adm.ReserveSubscription("tenant-1"); err != nil {
			t.Fatal(err)
		}
		n, err := pool.Notifier(id, "http://127.0.0.1:1/hook")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := broker.Subscribe(ngsi.Subscription{
			ID: id, EntityIDPattern: "urn:test:*", Owner: "tenant-1", Notifier: n,
		}); err != nil {
			t.Fatal(err)
		}
	}

	adm := newAdm()
	broker, pool, d := open(adm)
	subscribe(broker, pool, adm, "urn:swamp:subscription:000001")
	subscribe(broker, pool, adm, "urn:swamp:subscription:000002")
	broker.Close()
	pool.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh admission over the same dir: replay must restore both slots,
	// so the quota of 2 is already exhausted.
	adm2 := newAdm()
	broker2, _, _ := open(adm2)
	if len(broker2.Subscriptions()) != 2 {
		t.Fatalf("recovered %d subscriptions, want 2", len(broker2.Subscriptions()))
	}
	if err := adm2.ReserveSubscription("tenant-1"); err == nil {
		t.Fatal("recovered subscriptions did not occupy their quota slots")
	}
	// Deleting a recovered subscription frees exactly one slot.
	if err := broker2.Unsubscribe("urn:swamp:subscription:000001"); err != nil {
		t.Fatal(err)
	}
	adm2.ReleaseSubscription("tenant-1")
	if err := adm2.ReserveSubscription("tenant-1"); err != nil {
		t.Fatalf("released slot not reusable: %v", err)
	}
	if err := adm2.ReserveSubscription("tenant-1"); err == nil {
		t.Fatal("slot accounting drifted: quota 2 admitted a third subscription")
	}
}
