package core

import (
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/model"
)

// Drone stress input lowers the trigger for the stressed sector only: a
// depletion level below the normal trigger fires once the sector shows
// NDVI stress.
func TestNDVIStressLowersTrigger(t *testing.T) {
	e, err := NewDecisionEngine(PilotMATOPIBA, mustGrid(t), map[model.DeviceID]int{})
	if err != nil {
		t.Fatal(err)
	}
	at := time.Now()
	// Choose a moisture level between 0.8×RAW-trigger and 0.9×RAW-trigger:
	// below the normal trigger, above the stress-lowered one.
	dep := 0.85 * e.cfg.TriggerFrac * e.rawMM
	theta := PilotMATOPIBA.Soil.FieldCapacity - dep/(1000*PilotMATOPIBA.Crop.RootDepthM)
	latest := map[string]model.Reading{
		"p0/soilMoisture_d20": {Device: "p0", Quantity: "soilMoisture_d20", Value: theta, At: at},
	}

	// Without stress input: silent.
	if cmds := e.Decide(latest, at); len(cmds) != 0 {
		t.Fatalf("fired below trigger without stress input: %v", cmds)
	}
	// Mark sector 5's cells stressed.
	e.SetNDVIStressCells(e.layout.CellsOfSector(5))
	cmds := e.Decide(latest, at)
	if len(cmds) != 1 {
		t.Fatalf("stressed decide issued %d commands, want 1", len(cmds))
	}
	if want := model.DeviceID("matopiba-pivot-s05"); cmds[0].Target != want {
		t.Errorf("command target %s, want %s", cmds[0].Target, want)
	}
}

func TestSetNDVIStressIgnoredForZonePilots(t *testing.T) {
	e, err := NewDecisionEngine(PilotIntercrop, mustGrid(t), map[model.DeviceID]int{})
	if err != nil {
		t.Fatal(err)
	}
	e.SetNDVIStressCells([]int{1, 2, 3}) // must not panic or change state
	if e.ndviStress != nil {
		t.Error("zone pilot stored NDVI stress")
	}
}

func TestPrescriptionFromCommandsErrors(t *testing.T) {
	e, err := NewDecisionEngine(PilotMATOPIBA, mustGrid(t), map[model.DeviceID]int{})
	if err != nil {
		t.Fatal(err)
	}
	n := PilotMATOPIBA.GridRows * PilotMATOPIBA.GridCols
	bad := []model.Command{{Target: "matopiba-pivot-s99", Name: "setRate", Value: 5}}
	if _, _, err := e.PrescriptionFromCommands(bad, n); err == nil {
		t.Error("out-of-range sector accepted")
	}
	unknown := []model.Command{{Target: "mystery-device", Name: "setRate", Value: 5}}
	if _, _, err := e.PrescriptionFromCommands(unknown, n); err == nil {
		t.Error("unknown target accepted")
	}
	// Zero-value and non-setRate commands are ignored, not errors.
	noop := []model.Command{
		{Target: "matopiba-valve", Name: "close", Value: 0},
		{Target: "matopiba-pivot-s01", Name: "setRate", Value: 0},
	}
	vec, vol, err := e.PrescriptionFromCommands(noop, n)
	if err != nil || vol != 0 {
		t.Errorf("noop commands: vol=%g err=%v", vol, err)
	}
	for _, v := range vec {
		if v != 0 {
			t.Fatal("noop commands watered cells")
		}
	}
}

func TestStageSupplySchedule(t *testing.T) {
	e, err := NewDecisionEngine(PilotGuaspari, mustGrid(t), map[model.DeviceID]int{})
	if err != nil {
		t.Fatal(err)
	}
	crop := PilotGuaspari.Crop
	// Establishment: full supply.
	e.SetSeasonDay(0)
	if got := e.stageSupply(); got != 1.0 {
		t.Errorf("initial stage supply = %g", got)
	}
	// Mid-season: deficit.
	e.SetSeasonDay(crop.StageDays[0] + crop.StageDays[1] + 1)
	if got := e.stageSupply(); got != 0.6 {
		t.Errorf("mid stage supply = %g", got)
	}
	// Past season: late fraction.
	e.SetSeasonDay(crop.SeasonDays() + 10)
	if got := e.stageSupply(); got != 0.8 {
		t.Errorf("late stage supply = %g", got)
	}
}
