package core

import (
	"testing"
	"time"
)

func TestExpDeploymentConfigs(t *testing.T) {
	rows, err := ExpDeploymentConfigs(PilotIntercrop, 3, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[Mode]ModeRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.SensorToStore <= 0 || r.DecideLatency <= 0 {
			t.Errorf("%v: non-positive latencies %+v", r.Mode, r)
		}
	}
	// The architectural claim: fog decisions are faster than cloud ones
	// (no backhaul round trips).
	if byMode[ModeFarmFog].DecideLatency >= byMode[ModeCloudOnly].DecideLatency {
		t.Errorf("fog decide %v should beat cloud %v",
			byMode[ModeFarmFog].DecideLatency, byMode[ModeCloudOnly].DecideLatency)
	}
}

func TestExpFogOfflineAvailability(t *testing.T) {
	rows, err := ExpFogOfflineAvailability(PilotIntercrop, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var cloud, fogRow AvailabilityRow
	for _, r := range rows {
		if r.Mode == ModeCloudOnly {
			cloud = r
		} else {
			fogRow = r
		}
	}
	if cloud.DecisionFailures != cloud.PartitionCycles {
		t.Errorf("cloud failures %d != partition cycles %d", cloud.DecisionFailures, cloud.PartitionCycles)
	}
	if fogRow.DecisionFailures != 0 {
		t.Errorf("fog failed %d decisions during partition", fogRow.DecisionFailures)
	}
	if !fogRow.BacklogSynced {
		t.Error("fog backlog not synced after heal")
	}
}

func TestExpVRIvsUniform(t *testing.T) {
	rows, err := ExpVRIvsUniform(0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Strategy != "vri" || rows[1].Strategy != "uniform" {
		t.Fatalf("rows = %+v", rows)
	}
	vri, uni := rows[0], rows[1]
	if vri.WaterM3 >= uni.WaterM3 {
		t.Errorf("VRI water %.0f >= uniform %.0f", vri.WaterM3, uni.WaterM3)
	}
	if vri.EnergyKWh >= uni.EnergyKWh {
		t.Errorf("VRI energy %.1f >= uniform %.1f", vri.EnergyKWh, uni.EnergyKWh)
	}
	if vri.YieldIndex < uni.YieldIndex-0.03 {
		t.Errorf("VRI yield %.3f fell below uniform %.3f", vri.YieldIndex, uni.YieldIndex)
	}
}

func TestExpCanalAllocation(t *testing.T) {
	rows, err := ExpCanalAllocation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	prop, fair := rows[0], rows[1]
	if fair.WorstDelivery <= prop.WorstDelivery {
		t.Errorf("maxmin worst %.1f should beat proportional %.1f", fair.WorstDelivery, prop.WorstDelivery)
	}
}

func TestExpDesalinationCost(t *testing.T) {
	rows, err := ExpDesalinationCost(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	smart, naive := rows[0], rows[1]
	if smart.CostEUR >= naive.CostEUR {
		t.Errorf("cost-aware %.0f EUR >= naive %.0f EUR", smart.CostEUR, naive.CostEUR)
	}
	if smart.WaterM3 < naive.WaterM3-1e-6 {
		t.Errorf("cost-aware delivered less water (%.0f vs %.0f)", smart.WaterM3, naive.WaterM3)
	}
}

func TestExpDeficitQuality(t *testing.T) {
	rows, err := ExpDeficitQuality(9)
	if err != nil {
		t.Fatal(err)
	}
	full, rdi := rows[0], rows[1]
	if rdi.IrrigationMM >= full.IrrigationMM {
		t.Errorf("RDI water %.0f >= full %.0f", rdi.IrrigationMM, full.IrrigationMM)
	}
	if rdi.QualityIndex <= full.QualityIndex {
		t.Errorf("RDI quality %.3f <= full %.3f", rdi.QualityIndex, full.QualityIndex)
	}
}

func TestExpDoSDetection(t *testing.T) {
	rows := ExpDoSDetection([]float64{5, 20, 100, 1000})
	if rows[0].Detected {
		t.Error("legitimate rate (5/s under 10/s limit) flagged")
	}
	for _, r := range rows[1:] {
		if !r.Detected {
			t.Errorf("rate %.0f/s not detected", r.AttackRate)
		}
	}
	// Detection latency (in messages) should not grow as attacks intensify.
	if rows[3].DetectAfter > rows[1].DetectAfter {
		t.Errorf("detection latency grew with intensity: %d @1000/s vs %d @20/s",
			rows[3].DetectAfter, rows[1].DetectAfter)
	}
}

func TestExpTamperDetection(t *testing.T) {
	rows := ExpTamperDetection([]float64{0.0, 0.05, 0.15}, 3)
	if rows[0].DetectedBy != "" {
		t.Errorf("honest probe flagged: %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if r.DetectedBy == "" {
			t.Errorf("bias %.2f not detected", r.BiasMagnitude)
		}
	}
	// Bigger lies are caught at least as fast.
	if rows[2].SamplesToFlag > rows[1].SamplesToFlag {
		t.Errorf("large bias slower to flag (%d) than small (%d)",
			rows[2].SamplesToFlag, rows[1].SamplesToFlag)
	}
}

func TestExpSybilDetection(t *testing.T) {
	rows, err := ExpSybilDetection([]int{3, 6}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DetectedCount != r.SwarmSize {
			t.Errorf("swarm %d: detected %d", r.SwarmSize, r.DetectedCount)
		}
		if r.FalsePositives != 0 {
			t.Errorf("swarm %d: %d false positives", r.SwarmSize, r.FalsePositives)
		}
	}
}

func TestExpPartialViewBaseline(t *testing.T) {
	rows := ExpPartialViewBaseline([]int{1, 3, 6, 12}, 5)
	// With one peer, the detector must abstain (partial view): no catch,
	// but also no false positive.
	if rows[0].TamperCaught {
		t.Error("detector judged with insufficient peers")
	}
	// With plenty of peers, the tamper is caught.
	last := rows[len(rows)-1]
	if !last.TamperCaught {
		t.Error("dense deployment missed the tamper")
	}
	for _, r := range rows {
		if r.FalsePositive {
			t.Errorf("density %d: false positive on honest probe", r.Probes)
		}
	}
}

func TestExpMobileFogValue(t *testing.T) {
	rows, err := ExpMobileFogValue(6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	farm, mobile := rows[0], rows[1]
	if mobile.SurveysDone == 0 {
		t.Fatal("mobile-fog ran no surveys")
	}
	if mobile.StressDays >= farm.StressDays {
		t.Errorf("drone surveys did not reduce stress: %.2f vs %.2f",
			mobile.StressDays, farm.StressDays)
	}
	if mobile.YieldIndex < farm.YieldIndex {
		t.Errorf("mobile-fog yield %.3f below farm-fog %.3f",
			mobile.YieldIndex, farm.YieldIndex)
	}
	if _, err := ExpMobileFogValue(0, 7); err == nil {
		t.Error("zero probes accepted")
	}
}

func TestSurveyOnceMobileFog(t *testing.T) {
	p := newPlatform(t, PilotMATOPIBA, ModeMobileFog, false)
	m, err := p.SurveyOnce(t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Values) != p.Field.Grid.NumCells() {
		t.Errorf("ndvi cells = %d", len(m.Values))
	}
	e, err := p.Context.GetEntity("urn:swamp:matopiba:ndvi")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Attrs["ndviMean"].Float(); !ok {
		t.Error("ndviMean missing")
	}
	// Drone is rejected on non-mobile-fog platforms.
	p2 := newPlatform(t, PilotMATOPIBA, ModeFarmFog, false)
	if _, err := p2.SurveyOnce(t0); err == nil {
		t.Error("survey allowed outside mobile-fog mode")
	}
}
