package core

import (
	"fmt"
	"strings"
	"time"

	"github.com/swamp-project/swamp/internal/irrigation"
	"github.com/swamp-project/swamp/internal/soil"
)

// SeasonReport aggregates one simulated irrigation season end to end —
// the platform-level rows the experiments print.
type SeasonReport struct {
	Pilot string
	Mode  string
	Days  int

	// Field-mean water fluxes, mm.
	IrrigationMM float64
	RainMM       float64
	ET0MM        float64
	ETcMM        float64
	DeepPercMM   float64

	// Volume and energy over the whole field.
	WaterM3   float64
	EnergyKWh float64

	// Outcome indices.
	YieldIndex   float64
	QualityIndex float64 // RDI pilots
	StressDays   float64

	// Decision-loop availability.
	DecisionCycles   int
	DecisionFailures int
	CommandsIssued   int

	// Security: alerts seen during the season, by kind.
	Alerts map[string]int
}

// String renders the report as aligned text.
func (r *SeasonReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pilot=%s mode=%s days=%d\n", r.Pilot, r.Mode, r.Days)
	fmt.Fprintf(&b, "  water: irrigation=%.1fmm rain=%.1fmm et0=%.1fmm etc=%.1fmm percolation=%.1fmm\n",
		r.IrrigationMM, r.RainMM, r.ET0MM, r.ETcMM, r.DeepPercMM)
	fmt.Fprintf(&b, "  volume=%.0fm3 energy=%.1fkWh\n", r.WaterM3, r.EnergyKWh)
	fmt.Fprintf(&b, "  yield=%.3f quality=%.3f stress-days=%.1f\n", r.YieldIndex, r.QualityIndex, r.StressDays)
	fmt.Fprintf(&b, "  decisions=%d failures=%d commands=%d\n", r.DecisionCycles, r.DecisionFailures, r.CommandsIssued)
	if len(r.Alerts) > 0 {
		fmt.Fprintf(&b, "  alerts=%v\n", r.Alerts)
	}
	return b.String()
}

// SeasonHooks lets experiments intervene in the daily loop.
type SeasonHooks struct {
	// OnDay runs before day d (0-based) is simulated.
	OnDay func(day int, p *Platform)
	// PumpTimeout bounds the northbound wait per day (default 5s).
	PumpTimeout time.Duration
}

// RunSeason simulates the pilot's full crop season through the real
// platform pipeline: every day the weather advances, probes publish over
// MQTT, the agent updates context, the mode-appropriate decision loop
// issues commands, and the soil responds. It returns the season report.
func (p *Platform) RunSeason(hooks SeasonHooks) (*SeasonReport, error) {
	if hooks.PumpTimeout <= 0 {
		hooks.PumpTimeout = 5 * time.Second
	}
	pilot := p.Opts.Pilot
	days := pilot.Crop.SeasonDays()
	report := &SeasonReport{Pilot: pilot.Name, Mode: p.Opts.Mode.String(), Days: days}
	at := time.Date(2026, 1, 1, 6, 0, 0, 0, time.UTC).AddDate(0, 0, pilot.SeasonStartDOY-1)
	expectedNotifications := p.reg.Counter("platform.notify.processed").Value()

	for day := 0; day < days; day++ {
		if hooks.OnDay != nil {
			hooks.OnDay(day, p)
		}
		p.Decision.SetSeasonDay(day)
		doy := (pilot.SeasonStartDOY+day-1)%365 + 1
		wd := p.Weather.Next(doy)
		p.Station.SetDay(wd)

		et0, err := soil.ET0PenmanMonteith(soil.ET0Input{
			TminC: wd.TminC, TmaxC: wd.TmaxC, RHMeanPct: wd.RHMeanPct,
			WindMS: wd.WindMS, SolarMJ: wd.SolarMJ,
			LatitudeDeg: pilot.Climate.LatitudeDeg, AltitudeM: pilot.Climate.AltitudeM,
			DOY: doy,
		})
		if err != nil {
			return nil, fmt.Errorf("core: day %d: %w", day, err)
		}

		// Northbound: sensors → MQTT → agent → context (→ fog/cloud).
		if err := p.PumpOnce(at, hooks.PumpTimeout); err != nil {
			return nil, fmt.Errorf("core: day %d: %w", day, err)
		}
		// Wait for the async context→fog/cloud tail so every decision sees
		// today's readings (deterministic seasons).
		expectedNotifications += uint64(len(p.Probes))
		if !p.WaitPipeline(expectedNotifications, hooks.PumpTimeout) {
			return nil, fmt.Errorf("core: day %d: pipeline tail incomplete", day)
		}

		// Decision loop.
		report.DecisionCycles++
		cmds, err := p.DecideOnce(at)
		if err != nil {
			// Unavailable (e.g. cloud mode during a partition): the crop
			// gets no water today. That is the availability experiment.
			report.DecisionFailures++
			cmds = nil
		}
		report.CommandsIssued += len(cmds)

		vec, volume, err := p.Decision.PrescriptionFromCommands(cmds, p.Field.Grid.NumCells())
		if err != nil {
			return nil, fmt.Errorf("core: day %d: %w", day, err)
		}
		report.WaterM3 += volume
		report.EnergyKWh += pilot.Pump.EnergyKWh(volume)

		if _, err := p.Field.StepAll(et0, wd.RainMM, vec); err != nil {
			return nil, fmt.Errorf("core: day %d: %w", day, err)
		}
		at = at.Add(24 * time.Hour)
	}

	tot := p.Field.FieldTotals()
	report.IrrigationMM = tot.Irrigation
	report.RainMM = tot.Rain
	report.ET0MM = tot.ET0
	report.ETcMM = tot.ETc
	report.DeepPercMM = tot.DeepPerc
	report.StressDays = tot.StressDays
	report.YieldIndex = p.Field.MeanYieldIndex()
	if pilot.Irrigation == IrrigationDeficitDrip {
		report.QualityIndex = meanQuality(p.Field)
	}
	report.Alerts = p.Anomaly.CountByKind()
	return report, nil
}

func meanQuality(f *soil.Field) float64 {
	sum := 0.0
	for _, c := range f.Cells {
		sum += irrigation.WineQualityIndex(c)
	}
	return sum / float64(len(f.Cells))
}
