package core

import (
	"strings"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/mqtt"
	"github.com/swamp-project/swamp/internal/simnet"
	"github.com/swamp-project/swamp/internal/timeseries"
)

var t0 = time.Date(2026, 6, 1, 6, 0, 0, 0, time.UTC)

func newPlatform(t *testing.T, pilot Pilot, mode Mode, sealed bool) *Platform {
	t.Helper()
	p, err := New(Options{Pilot: pilot, Mode: mode, Seed: 7, Sealed: sealed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPilotDefinitionsValid(t *testing.T) {
	for _, p := range Pilots() {
		if err := p.Validate(); err != nil {
			t.Errorf("pilot %s: %v", p.Name, err)
		}
	}
	if _, err := PilotByName("matopiba"); err != nil {
		t.Error(err)
	}
	if _, err := PilotByName("atlantis"); err == nil {
		t.Error("unknown pilot accepted")
	}
	bad := PilotMATOPIBA
	bad.Sectors = 0
	if err := bad.Validate(); err == nil {
		t.Error("VRI pilot without sectors accepted")
	}
}

func TestPlatformConstructionAllPilotsAndModes(t *testing.T) {
	for _, pilot := range Pilots() {
		for _, mode := range []Mode{ModeCloudOnly, ModeFarmFog, ModeMobileFog} {
			p := newPlatform(t, pilot, mode, false)
			if len(p.Probes) != pilot.Probes {
				t.Errorf("%s/%s: %d probes, want %d", pilot.Name, mode, len(p.Probes), pilot.Probes)
			}
			if mode != ModeCloudOnly && p.Fog == nil {
				t.Errorf("%s/%s: fog node missing", pilot.Name, mode)
			}
			if mode == ModeCloudOnly && p.Fog != nil {
				t.Errorf("%s/%s: unexpected fog node", pilot.Name, mode)
			}
		}
	}
}

func TestTelemetryStoreKnobs(t *testing.T) {
	sim := clock.NewSim(t0.Add(2 * time.Hour))
	p, err := New(Options{
		Pilot: PilotIntercrop, Mode: ModeFarmFog, Seed: 7,
		TimeseriesShards:          4,
		TimeseriesChunkSize:       64,
		TelemetryMaxAge:           time.Hour,
		TelemetryEvictionInterval: time.Minute,
		TelemetryClock:            sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	if got := p.Store.ShardCount(); got != 4 {
		t.Errorf("store shards = %d, want 4", got)
	}
	// Retention must cut off against the injected (simulated) clock, not
	// wall time: a reading stamped 30 simulated minutes ago survives, one
	// stamped 90 simulated minutes ago is evicted.
	k := timeseries.SeriesKey{Device: "probe-x", Quantity: "m"}
	p.Store.Append(k, timeseries.Point{At: t0.Add(30 * time.Minute), Value: 1}) // age 90m
	p.Store.Append(k, timeseries.Point{At: t0.Add(90 * time.Minute), Value: 2}) // age 30m
	if dropped := p.Store.EvictExpired(); dropped != 1 {
		t.Errorf("evicted %d points, want 1", dropped)
	}
	if got := p.Store.Len(k); got != 1 {
		t.Errorf("kept %d points, want 1", got)
	}
	// Close is registered as a cleanup: a second explicit Close must be
	// safe (Platform.Close and the eviction goroutine race otherwise).
	p.Store.Close()
}

func TestPumpOnceReachesContextAndCloud(t *testing.T) {
	p := newPlatform(t, PilotMATOPIBA, ModeFarmFog, false)
	if err := p.PumpOnce(t0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Context entities exist.
	entities := p.Context.QueryEntities("urn:swamp:matopiba:probe:*", "")
	if len(entities) != PilotMATOPIBA.Probes {
		t.Fatalf("context has %d probe entities", len(entities))
	}
	if _, ok := entities[0].Attrs["soilMoisture_d20"]; !ok {
		t.Errorf("entity attrs: %v", entities[0].AttrNames())
	}
	// Fog has a local view and forwarded to the cloud store.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && len(p.Store.Keys()) == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if len(p.Fog.Latest()) == 0 {
		t.Error("fog latest view empty")
	}
	if len(p.Store.Keys()) == 0 {
		t.Error("cloud store empty after pump")
	}
}

func TestPumpOnceCloudMode(t *testing.T) {
	p := newPlatform(t, PilotIntercrop, ModeCloudOnly, false)
	if err := p.PumpOnce(t0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && len(p.Store.Keys()) == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if len(p.Store.Keys()) == 0 {
		t.Fatal("cloud-only mode did not persist telemetry")
	}
}

func TestFogDecisionIssuesCommands(t *testing.T) {
	p := newPlatform(t, PilotMATOPIBA, ModeFarmFog, false)
	dryField(p)
	if err := p.PumpOnce(t0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Wait for fog ingest (async through context notifications).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && len(p.Fog.Latest()) == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	cmds, err := p.DecideOnce(t0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) == 0 {
		t.Fatal("dry field produced no irrigation commands")
	}
	for _, c := range cmds {
		if c.Name != "setRate" || c.Value <= 0 || c.Value > 20 {
			t.Errorf("command %+v", c)
		}
	}
	// Commands land in the actuator journal.
	if len(p.Actuators.Journal()) != len(cmds) {
		t.Errorf("journal %d vs commands %d", len(p.Actuators.Journal()), len(cmds))
	}
	vec, vol, err := p.Decision.PrescriptionFromCommands(cmds, p.Field.Grid.NumCells())
	if err != nil {
		t.Fatal(err)
	}
	if vol <= 0 {
		t.Error("no volume")
	}
	wet := 0
	for _, v := range vec {
		if v > 0 {
			wet++
		}
	}
	if wet == 0 {
		t.Error("prescription waters nothing")
	}
}

// The availability experiment in miniature: a partition stalls cloud-mode
// decisions but not fog-mode ones.
func TestPartitionAvailabilityContrast(t *testing.T) {
	cloudP := newPlatform(t, PilotMATOPIBA, ModeCloudOnly, false)
	fogP := newPlatform(t, PilotMATOPIBA, ModeFarmFog, false)
	for _, p := range []*Platform{cloudP, fogP} {
		dryField(p)
		if err := p.PumpOnce(t0, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && len(fogP.Fog.Latest()) == 0 {
		time.Sleep(5 * time.Millisecond)
	}

	// Sanity: both decide fine while connected.
	if _, err := cloudP.DecideOnce(t0); err != nil {
		t.Fatalf("cloud decide online: %v", err)
	}
	if _, err := fogP.DecideOnce(t0); err != nil {
		t.Fatalf("fog decide online: %v", err)
	}

	// Cut the Internet.
	cloudP.Backhaul.SetPartitioned(true)
	fogP.Backhaul.SetPartitioned(true)

	if _, err := cloudP.DecideOnce(t0.Add(time.Hour)); err == nil {
		t.Error("cloud-only decisions survived a partition (should fail)")
	}
	cmds, err := fogP.DecideOnce(t0.Add(time.Hour))
	if err != nil {
		t.Fatalf("fog decisions failed during partition: %v", err)
	}
	if len(cmds) == 0 {
		t.Error("fog issued no commands during partition despite dry field")
	}

	// Heal; fog syncs its backlog.
	fogP.Backhaul.SetPartitioned(false)
	if err := fogP.PumpOnce(t0.Add(2*time.Hour), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	fogP.Fog.Flush()
	if st := fogP.Fog.Stats(); st.Buffered != 0 {
		t.Errorf("fog backlog not drained: %+v", st)
	}
}

func TestSealedPlatformEndToEnd(t *testing.T) {
	p := newPlatform(t, PilotIntercrop, ModeFarmFog, true)
	if err := p.PumpOnce(t0, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics().Counter("agent.north.ok").Value(); got != uint64(PilotIntercrop.Probes) {
		t.Errorf("sealed northbound ok = %d", got)
	}
	if bad := p.Metrics().Counter("agent.north.badseal").Value(); bad != 0 {
		t.Errorf("badseal = %d", bad)
	}
}

func TestBrokerACLBlocksRogueDevice(t *testing.T) {
	p := newPlatform(t, PilotMATOPIBA, ModeFarmFog, false)
	rogue, err := p.DialDevice("rogue-node", simnet.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Rogue publishes to another device's attrs topic: dropped by ACL.
	if err := rogue.Publish("ul/swamp-matopiba/matopiba-probe-00/attrs", []byte("m1|0.01"), 0, false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got := p.Metrics().Counter("mqtt.publish.denied").Value(); got == 0 {
		t.Error("rogue publish not denied")
	}
	// Rogue cannot subscribe to another device's command topic.
	if _, err := rogue.Subscribe("ul/swamp-matopiba/matopiba-probe-00/cmd", 0, func(mqtt.Message) {}); err == nil {
		t.Error("rogue subscribed to another device's command topic")
	}
}

func TestPEPGuardsPlatformResources(t *testing.T) {
	p := newPlatform(t, PilotMATOPIBA, ModeFarmFog, false)
	tok, err := p.Tokens.GrantPassword("matopiba-farmer", "farmer-secret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PEP.Authorize(tok.Value, "read", "ngsi:urn:swamp:matopiba:probe:01"); err != nil {
		t.Errorf("farmer read own data: %v", err)
	}
	if _, err := p.PEP.Authorize(tok.Value, "read", "ngsi:urn:swamp:guaspari:probe:01"); err == nil {
		t.Error("cross-pilot read permitted")
	}
	if _, err := p.PEP.Authorize(tok.Value, "command", "actuator:matopiba:valve"); err != nil {
		t.Errorf("farmer command own actuator: %v", err)
	}
	svc, _ := p.Tokens.GrantClientCredentials("svc-irrigation", "svc-secret")
	if _, err := p.PEP.Authorize(svc.Value, "command", "actuator:matopiba:pivot-s01"); err != nil {
		t.Errorf("service command: %v", err)
	}
}

func TestDecisionEngineEstimates(t *testing.T) {
	e, err := NewDecisionEngine(PilotMATOPIBA, mustGrid(t), map[model.DeviceID]int{"p0": 0})
	if err != nil {
		t.Fatal(err)
	}
	// At field capacity: zero depletion. Far below: clamped to TAW.
	if d := e.estimateDepletion(PilotMATOPIBA.Soil.FieldCapacity); d != 0 {
		t.Errorf("depletion at FC = %g", d)
	}
	if d := e.estimateDepletion(0.0); d != e.tawMM {
		t.Errorf("depletion at zero = %g, want TAW %g", d, e.tawMM)
	}
	// Wet view → no commands.
	latest := map[string]model.Reading{
		"p0/soilMoisture_d20": {Device: "p0", Quantity: "soilMoisture_d20", Value: PilotMATOPIBA.Soil.FieldCapacity, At: t0},
	}
	if cmds := e.Decide(latest, t0); len(cmds) != 0 {
		t.Errorf("wet field commands: %v", cmds)
	}
	// Dry view → commands for every sector (global fallback).
	latest["p0/soilMoisture_d20"] = model.Reading{Device: "p0", Quantity: "soilMoisture_d20", Value: 0.05, At: t0}
	cmds := e.Decide(latest, t0)
	if len(cmds) != PilotMATOPIBA.Sectors {
		t.Errorf("dry field commands = %d, want %d", len(cmds), PilotMATOPIBA.Sectors)
	}
}

func mustGrid(t *testing.T) model.FieldGrid {
	t.Helper()
	g, err := model.NewFieldGrid(model.GeoPoint{Lat: -12, Lon: -45}, PilotMATOPIBA.GridRows, PilotMATOPIBA.GridCols, PilotMATOPIBA.CellSizeM)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunSeasonMATOPIBAFog(t *testing.T) {
	if testing.Short() {
		t.Skip("season simulation is long")
	}
	p := newPlatform(t, PilotMATOPIBA, ModeFarmFog, false)
	rep, err := p.RunSeason(SeasonHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Days != PilotMATOPIBA.Crop.SeasonDays() {
		t.Errorf("days = %d", rep.Days)
	}
	if rep.IrrigationMM <= 0 {
		t.Error("season applied no water")
	}
	if rep.EnergyKWh <= 0 {
		t.Error("no energy accounted")
	}
	if rep.YieldIndex < 0.7 {
		t.Errorf("irrigated yield %.3f too low", rep.YieldIndex)
	}
	if rep.DecisionFailures != 0 {
		t.Errorf("decision failures = %d", rep.DecisionFailures)
	}
	if !strings.Contains(rep.String(), "pilot=matopiba") {
		t.Error("report rendering broken")
	}
}
