package core

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/swamp-project/swamp/internal/anomaly"
	"github.com/swamp-project/swamp/internal/attack"
	"github.com/swamp-project/swamp/internal/irrigation"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/soil"
	"github.com/swamp-project/swamp/internal/waterdist"
	"github.com/swamp-project/swamp/internal/weather"
)

// weatherGen aliases the generator so experiment helpers read cleanly.
type weatherGen = *weather.Generator

func newWeatherGen(p Pilot, seed int64) (weatherGen, error) {
	return weather.NewGenerator(p.Climate, seed)
}

// This file is the experiment harness behind EXPERIMENTS.md: one function
// per derived experiment (the paper has no tables/figures of its own — see
// DESIGN.md). The root bench file and cmd/swamp-sim both call these and
// print the same rows.

// ModeRow is one EXP-A1 result line.
type ModeRow struct {
	Mode          Mode
	Cycles        int
	SensorToStore time.Duration // median northbound latency
	DecideLatency time.Duration // median decision-loop latency
}

// ExpDeploymentConfigs (EXP-A1) measures the sensor→store and decision
// latencies of the three deployment configurations with a realistic
// backhaul latency.
func ExpDeploymentConfigs(pilot Pilot, cycles int, backhaul time.Duration) ([]ModeRow, error) {
	var rows []ModeRow
	for _, mode := range []Mode{ModeCloudOnly, ModeFarmFog, ModeMobileFog} {
		p, err := New(Options{Pilot: pilot, Mode: mode, Seed: 11, BackhaulLatency: backhaul})
		if err != nil {
			return nil, err
		}
		at := time.Date(2026, 6, 1, 6, 0, 0, 0, time.UTC)
		dryField(p) // ensure decisions have work to do
		var pumpTotal, decideTotal time.Duration
		for c := 0; c < cycles; c++ {
			start := time.Now()
			if err := p.PumpOnce(at, 10*time.Second); err != nil {
				p.Close()
				return nil, fmt.Errorf("core: exp-a1 %v: %w", mode, err)
			}
			pumpTotal += time.Since(start)

			start = time.Now()
			if _, err := p.DecideOnce(at); err != nil {
				p.Close()
				return nil, fmt.Errorf("core: exp-a1 %v decide: %w", mode, err)
			}
			decideTotal += time.Since(start)
			at = at.Add(time.Hour)
		}
		rows = append(rows, ModeRow{
			Mode: mode, Cycles: cycles,
			SensorToStore: pumpTotal / time.Duration(cycles),
			DecideLatency: decideTotal / time.Duration(cycles),
		})
		p.Close()
	}
	return rows, nil
}

func dryField(p *Platform) {
	for i := 0; i < 60; i++ {
		p.Field.StepAll(6, 0, nil)
	}
}

// AvailabilityRow is the EXP-A2 result.
type AvailabilityRow struct {
	Mode             Mode
	Cycles           int
	PartitionCycles  int
	DecisionFailures int
	BacklogSynced    bool
}

// ExpFogOfflineAvailability (EXP-A2) cuts the Internet for the middle
// third of a run and counts decision-loop failures per mode.
func ExpFogOfflineAvailability(pilot Pilot, cycles int) ([]AvailabilityRow, error) {
	var rows []AvailabilityRow
	for _, mode := range []Mode{ModeCloudOnly, ModeFarmFog} {
		p, err := New(Options{Pilot: pilot, Mode: mode, Seed: 13})
		if err != nil {
			return nil, err
		}
		dryField(p)
		at := time.Date(2026, 6, 1, 6, 0, 0, 0, time.UTC)
		row := AvailabilityRow{Mode: mode, Cycles: cycles}
		cutFrom, cutTo := cycles/3, 2*cycles/3
		for c := 0; c < cycles; c++ {
			if c == cutFrom {
				p.Backhaul.SetPartitioned(true)
			}
			if c == cutTo {
				p.Backhaul.SetPartitioned(false)
			}
			if c >= cutFrom && c < cutTo {
				row.PartitionCycles++
			}
			if err := p.PumpOnce(at, 10*time.Second); err != nil {
				p.Close()
				return nil, fmt.Errorf("core: exp-a2: %w", err)
			}
			if _, err := p.DecideOnce(at); err != nil {
				row.DecisionFailures++
			}
			at = at.Add(time.Hour)
		}
		if mode != ModeCloudOnly {
			p.Fog.Flush()
			row.BacklogSynced = p.Fog.Stats().Buffered == 0
		} else {
			row.BacklogSynced = true
		}
		rows = append(rows, row)
		p.Close()
	}
	return rows, nil
}

// StrategyRow is one EXP-P1/P4 line.
type StrategyRow struct {
	Strategy     string
	IrrigationMM float64
	WaterM3      float64
	EnergyKWh    float64
	YieldIndex   float64
	QualityIndex float64
	StressDays   float64
}

// ExpVRIvsUniform (EXP-P1) runs the MATOPIBA season twice on identical
// heterogeneous soil — VRI vs uniform pivot — and reports water, energy
// and yield. This is a pure-simulation fast path (no MQTT), isolating the
// agronomic effect.
func ExpVRIvsUniform(variability float64, seed int64) ([]StrategyRow, error) {
	pilot := PilotMATOPIBA
	grid, err := model.NewFieldGrid(model.GeoPoint{Lat: pilot.Climate.LatitudeDeg, Lon: -45},
		pilot.GridRows, pilot.GridCols, pilot.CellSizeM)
	if err != nil {
		return nil, err
	}
	mk := func() (*soil.Field, error) {
		return soil.NewHeterogeneousField(grid, pilot.Crop, pilot.Soil, variability, seed)
	}
	layout, err := irrigation.NewPivotLayout(grid, pilot.Sectors)
	if err != nil {
		return nil, err
	}
	areaCellHa := pilot.CellSizeM * pilot.CellSizeM / 10_000

	run := func(name string, plan func(*soil.Field) irrigation.Prescription) (StrategyRow, error) {
		field, err := mk()
		if err != nil {
			return StrategyRow{}, err
		}
		gen, err := newPilotWeather(pilot, seed+1)
		if err != nil {
			return StrategyRow{}, err
		}
		var volume float64
		for day := 0; day < pilot.Crop.SeasonDays(); day++ {
			doy := (pilot.SeasonStartDOY+day-1)%365 + 1
			wd := gen.Next(doy)
			et0, err := soil.ET0PenmanMonteith(soil.ET0Input{
				TminC: wd.TminC, TmaxC: wd.TmaxC, RHMeanPct: wd.RHMeanPct,
				WindMS: wd.WindMS, SolarMJ: wd.SolarMJ,
				LatitudeDeg: pilot.Climate.LatitudeDeg, AltitudeM: pilot.Climate.AltitudeM, DOY: doy,
			})
			if err != nil {
				return StrategyRow{}, err
			}
			pres := plan(field)
			vec, err := layout.ApplyPrescription(pres)
			if err != nil {
				return StrategyRow{}, err
			}
			for _, mm := range vec {
				volume += mm * areaCellHa * 10
			}
			if _, err := field.StepAll(et0, wd.RainMM, vec); err != nil {
				return StrategyRow{}, err
			}
		}
		tot := field.FieldTotals()
		return StrategyRow{
			Strategy: name, IrrigationMM: tot.Irrigation, WaterM3: volume,
			EnergyKWh:  pilot.Pump.EnergyKWh(volume),
			YieldIndex: field.MeanYieldIndex(), StressDays: tot.StressDays,
		}, nil
	}

	cfg := irrigation.PlannerConfig{}
	vri := irrigation.NewVRIPlanner(layout, cfg)
	uni := irrigation.NewUniformPlanner(layout, cfg)
	rowV, err := run("vri", vri.Plan)
	if err != nil {
		return nil, err
	}
	rowU, err := run("uniform", uni.Plan)
	if err != nil {
		return nil, err
	}
	return []StrategyRow{rowV, rowU}, nil
}

// newPilotWeather builds the pilot's weather generator (shared helper).
func newPilotWeather(p Pilot, seed int64) (weatherGen, error) {
	return newWeatherGen(p, seed)
}

// CanalRow is one EXP-P2 line.
type CanalRow struct {
	Allocator       string
	TotalDelivered  float64
	WorstDelivery   float64
	MinSatisfaction float64
}

// ExpCanalAllocation (EXP-P2) compares proportional vs max-min fair
// allocation on the CBEC-style canal tree under scarcity.
func ExpCanalAllocation() ([]CanalRow, error) {
	n, err := waterdist.NewNetwork("src")
	if err != nil {
		return nil, err
	}
	add := func(parent, id string, kind waterdist.NodeKind, cap float64) {
		if err == nil {
			err = n.AddCanal(parent, id, kind, cap)
		}
	}
	add("src", "main", waterdist.KindJunction, 1200)
	add("main", "east", waterdist.KindJunction, 700)
	add("main", "west", waterdist.KindJunction, 450)
	for i := 0; i < 8; i++ {
		add("east", fmt.Sprintf("farm-e%d", i), waterdist.KindOfftake, 160)
	}
	for i := 0; i < 8; i++ {
		add("west", fmt.Sprintf("farm-w%d", i), waterdist.KindOfftake, 120)
	}
	if err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(21))
	demand := make(map[string]float64)
	for _, off := range n.Offtakes() {
		demand[off] = 60 + rng.Float64()*120
	}

	var rows []CanalRow
	for name, alloc := range map[string]func(map[string]float64) (waterdist.Allocation, error){
		"proportional": n.AllocateProportional,
		"maxmin-fair":  n.AllocateMaxMin,
	} {
		a, err := alloc(demand)
		if err != nil {
			return nil, err
		}
		worst := -1.0
		for _, off := range n.Offtakes() {
			if worst < 0 || a[off] < worst {
				worst = a[off]
			}
		}
		rows = append(rows, CanalRow{
			Allocator: name, TotalDelivered: a.Total(), WorstDelivery: worst,
			MinSatisfaction: waterdist.MinSatisfaction(a, demand),
		})
	}
	// Deterministic order: proportional first.
	if rows[0].Allocator != "proportional" {
		rows[0], rows[1] = rows[1], rows[0]
	}
	return rows, nil
}

// CostRow is one EXP-P3 line.
type CostRow struct {
	Policy    string
	WaterM3   float64
	CostEUR   float64
	Shortfall float64
}

// ExpDesalinationCost (EXP-P3) schedules a season of Intercrop demand
// across well/canal/desalination sources, cost-aware vs naive.
func ExpDesalinationCost(days int, seed int64) ([]CostRow, error) {
	sources := []waterdist.WaterSource{
		{Name: "well", CapacityM3: 350, CostPerM3: 0.08},
		{Name: "canal", CapacityM3: 250, CostPerM3: 0.15},
		{Name: "desal", CapacityM3: 5000, CostPerM3: 0.85},
	}
	rng := rand.New(rand.NewSource(seed))
	smart := CostRow{Policy: "cost-aware"}
	naive := CostRow{Policy: "naive-split"}
	for d := 0; d < days; d++ {
		demand := 400 + rng.Float64()*500
		ps, err := waterdist.AllocateByCost(demand, sources)
		if err != nil {
			return nil, err
		}
		pn, err := waterdist.AllocateNaive(demand, sources)
		if err != nil {
			return nil, err
		}
		smart.WaterM3 += demand - ps.Shortfall
		smart.CostEUR += ps.CostEUR
		smart.Shortfall += ps.Shortfall
		naive.WaterM3 += demand - pn.Shortfall
		naive.CostEUR += pn.CostEUR
		naive.Shortfall += pn.Shortfall
	}
	return []CostRow{smart, naive}, nil
}

// ExpDeficitQuality (EXP-P4) compares full-supply vs regulated-deficit
// drip on the Guaspari vine season. The pilot exists precisely because the
// winter harvest window is dry enough that irrigation controls the vines'
// water status (§I), so the experiment forces the dry-window climate
// (negligible rain) — with regular rain neither schedule would ever
// irrigate and the comparison would be vacuous.
func ExpDeficitQuality(seed int64) ([]StrategyRow, error) {
	pilot := PilotGuaspari
	dryWindow := pilot.Climate
	dryWindow.RainProb = 0.02
	pilot.Climate = dryWindow
	run := func(name string, trigger float64) (StrategyRow, error) {
		b, err := soil.NewBalance(pilot.Crop, pilot.Soil, 0)
		if err != nil {
			return StrategyRow{}, err
		}
		gen, err := newWeatherGen(pilot, seed)
		if err != nil {
			return StrategyRow{}, err
		}
		sched := irrigation.NewDripScheduler(irrigation.PlannerConfig{TriggerFrac: trigger, MaxDepthMM: 60})
		for day := 0; day < pilot.Crop.SeasonDays(); day++ {
			doy := (pilot.SeasonStartDOY+day-1)%365 + 1
			wd := gen.Next(doy)
			et0, err := soil.ET0PenmanMonteith(soil.ET0Input{
				TminC: wd.TminC, TmaxC: wd.TmaxC, RHMeanPct: wd.RHMeanPct,
				WindMS: wd.WindMS, SolarMJ: wd.SolarMJ,
				LatitudeDeg: pilot.Climate.LatitudeDeg, AltitudeM: pilot.Climate.AltitudeM, DOY: doy,
			})
			if err != nil {
				return StrategyRow{}, err
			}
			if _, err := b.Step(et0, wd.RainMM, sched.Plan(b)); err != nil {
				return StrategyRow{}, err
			}
		}
		tot := b.Totals()
		return StrategyRow{
			Strategy: name, IrrigationMM: tot.Irrigation,
			YieldIndex: b.YieldIndex(), QualityIndex: irrigation.WineQualityIndex(b),
			StressDays: tot.StressDays,
		}, nil
	}
	full, err := run("full-supply", 0.85)
	if err != nil {
		return nil, err
	}
	rdi, err := run("regulated-deficit", 1.5)
	if err != nil {
		return nil, err
	}
	return []StrategyRow{full, rdi}, nil
}

// DoSRow is one EXP-S1 line.
type DoSRow struct {
	AttackRate  float64 // msgs/s
	Detected    bool
	DetectAfter int // messages until first alert
}

// ExpDoSDetection (EXP-S1) floods the rate detector at multiples of the
// legitimate rate and records detection latency in messages.
func ExpDoSDetection(rates []float64) []DoSRow {
	var rows []DoSRow
	for _, rate := range rates {
		det := anomaly.NewRateDetector(anomaly.RateConfig{Window: 10 * time.Second, LimitPerSec: 10})
		at := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
		row := DoSRow{AttackRate: rate}
		interval := time.Duration(float64(time.Second) / rate)
		for i := 0; i < 5000; i++ {
			if a := det.Observe("attacker", at); a != nil {
				row.Detected = true
				row.DetectAfter = i + 1
				break
			}
			at = at.Add(interval)
		}
		rows = append(rows, row)
	}
	return rows
}

// TamperRow is one EXP-S2 line.
type TamperRow struct {
	BiasMagnitude float64 // m³/m³ added to the true value
	DetectedBy    string  // "deviation", "consistency" or "" (missed)
	SamplesToFlag int
}

// ExpTamperDetection (EXP-S2) runs 10 honest probes plus one tampered one
// through the detection stack at several bias magnitudes.
func ExpTamperDetection(biases []float64, seed int64) []TamperRow {
	var rows []TamperRow
	for _, bias := range biases {
		var first *anomaly.Alert
		samples := 0
		eng := anomaly.NewEngine(anomaly.EngineConfig{
			Consistency: anomaly.ConsistencyConfig{MinPeers: 5, K: 5, MinSpread: 0.008},
			Sink: func(a anomaly.Alert) {
				if first == nil && a.Device != "" && strings.Contains(a.Device, "victim") {
					cp := a
					first = &cp
				}
			},
		})
		rng := rand.New(rand.NewSource(seed))
		at := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
		// Baseline phase: everyone honest.
		for k := 0; k < 60; k++ {
			for i := 0; i < 10; i++ {
				eng.OnReading(model.Reading{
					Device: model.DeviceID(fmt.Sprintf("p%d", i)), Quantity: model.QSoilMoisture,
					Value: 0.25 + rng.NormFloat64()*0.01, At: at,
				})
			}
			eng.OnReading(model.Reading{
				Device: "victim", Quantity: model.QSoilMoisture,
				Value: 0.25 + rng.NormFloat64()*0.01, At: at,
			})
			at = at.Add(time.Minute)
		}
		// Attack phase.
		for k := 0; k < 120 && first == nil; k++ {
			for i := 0; i < 10; i++ {
				eng.OnReading(model.Reading{
					Device: model.DeviceID(fmt.Sprintf("p%d", i)), Quantity: model.QSoilMoisture,
					Value: 0.25 + rng.NormFloat64()*0.01, At: at,
				})
			}
			eng.OnReading(model.Reading{
				Device: "victim", Quantity: model.QSoilMoisture,
				Value: 0.25 + bias + rng.NormFloat64()*0.01, At: at,
			})
			samples++
			at = at.Add(time.Minute)
		}
		row := TamperRow{BiasMagnitude: bias, SamplesToFlag: samples}
		if first != nil {
			row.DetectedBy = first.Kind
		}
		rows = append(rows, row)
	}
	return rows
}

// SybilRow is one EXP-S3 line.
type SybilRow struct {
	SwarmSize      int
	JitterStd      float64
	DetectedCount  int
	FalsePositives int
}

// ExpSybilDetection (EXP-S3) launches swarms of varying size and care
// (jitter) against ten honest devices and reports detection counts.
func ExpSybilDetection(swarmSizes []int, jitters []float64) ([]SybilRow, error) {
	var rows []SybilRow
	for _, size := range swarmSizes {
		for _, jitter := range jitters {
			det := anomaly.NewSybilDetector(anomaly.SybilConfig{MinSamples: 6, MinClusterSize: 3})
			rng := rand.New(rand.NewSource(77))
			at := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
			// Honest population.
			for k := 0; k < 10; k++ {
				for i := 0; i < 10; i++ {
					det.Observe(fmt.Sprintf("honest-%d", i), 0.3+rng.NormFloat64()*0.02, at)
				}
				at = at.Add(time.Minute)
			}
			// Swarm via the attack package.
			swarm := &attack.SybilSwarm{
				IDPrefix: "sybil", N: size, Value: 0.8, Quantity: model.QNDVI, JitterStd: jitter,
				Publish: func(dev string, rs []model.Reading) error {
					for _, r := range rs {
						det.Observe(dev, r.Value, r.At)
					}
					return nil
				},
			}
			for k := 0; k < 10; k++ {
				if err := swarm.Round(at); err != nil {
					return nil, err
				}
				at = at.Add(time.Minute)
			}
			alerts := det.Scan(at)
			row := SybilRow{SwarmSize: size, JitterStd: jitter}
			for _, a := range alerts {
				if strings.HasPrefix(a.Device, "sybil") {
					row.DetectedCount++
				} else {
					row.FalsePositives++
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PartialViewRow is one EXP-S6 line.
type PartialViewRow struct {
	Probes        int
	CoveragePct   float64
	TamperCaught  bool
	FalsePositive bool
}

// ExpPartialViewBaseline (EXP-S6) varies sensor density and measures
// whether the cross-sensor baseline still catches a lying probe without
// flagging honest ones — the paper's partial-view risk made measurable.
func ExpPartialViewBaseline(probeCounts []int, seed int64) []PartialViewRow {
	var rows []PartialViewRow
	const fieldSensorsFull = 20
	for _, n := range probeCounts {
		det := anomaly.NewConsistencyDetector(anomaly.ConsistencyConfig{MinPeers: 4, K: 5, MinSpread: 0.008})
		rng := rand.New(rand.NewSource(seed))
		at := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
		row := PartialViewRow{Probes: n, CoveragePct: 100 * float64(n) / fieldSensorsFull}
		// Honest warm-up (n probes + the future victim).
		for k := 0; k < 30; k++ {
			for i := 0; i < n; i++ {
				if a := det.Observe(fmt.Sprintf("p%d", i), "soilMoisture", 0.25+rng.NormFloat64()*0.01, at); a != nil {
					row.FalsePositive = true
				}
			}
			if a := det.Observe("victim", "soilMoisture", 0.25+rng.NormFloat64()*0.01, at); a != nil {
				row.FalsePositive = true
			}
			at = at.Add(time.Minute)
		}
		// Victim starts lying by +0.15.
		for k := 0; k < 30 && !row.TamperCaught; k++ {
			for i := 0; i < n; i++ {
				if a := det.Observe(fmt.Sprintf("p%d", i), "soilMoisture", 0.25+rng.NormFloat64()*0.01, at); a != nil {
					row.FalsePositive = true
				}
			}
			if a := det.Observe("victim", "soilMoisture", 0.40+rng.NormFloat64()*0.01, at); a != nil {
				row.TamperCaught = true
			}
			at = at.Add(time.Minute)
		}
		rows = append(rows, row)
	}
	return rows
}
