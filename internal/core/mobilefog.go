package core

import (
	"fmt"
	"time"

	"github.com/swamp-project/swamp/internal/drone"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/tenant"
)

// EnsureDrone lazily creates the platform's survey drone (mobile fog).
// Only meaningful in ModeMobileFog; other modes get an error.
func (p *Platform) EnsureDrone() (*drone.Drone, error) {
	if p.Opts.Mode != ModeMobileFog {
		return nil, fmt.Errorf("core: drone requires %v, platform is %v", ModeMobileFog, p.Opts.Mode)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.droneUnit != nil {
		return p.droneUnit, nil
	}
	desc := model.Descriptor{
		ID:     model.DeviceID(p.Opts.Pilot.Name + "-drone-01"),
		Kind:   model.KindDrone,
		Owner:  tenant.ID(p.Opts.Pilot.Name),
		APIKey: "swamp-" + p.Opts.Pilot.Name,
	}
	d, err := drone.New(desc, 0.01, p.Opts.Seed+500)
	if err != nil {
		return nil, err
	}
	p.droneUnit = d
	return d, nil
}

// SurveyOnce flies the drone over the field, computes NDVI on board
// (mobile fog processing), publishes the summary into the context broker
// and feeds the per-survey mean into the anomaly engine (where Sybil
// clustering watches NDVI sources).
func (p *Platform) SurveyOnce(at time.Time) (*drone.NDVIMap, error) {
	d, err := p.EnsureDrone()
	if err != nil {
		return nil, err
	}
	m, err := d.SurveyNDVI(p.Field, at)
	if err != nil {
		return nil, err
	}
	stress := m.StressCells(0.45)
	entityID := fmt.Sprintf("urn:swamp:%s:ndvi", p.Opts.Pilot.Name)
	err = p.Context.UpdateAttrs(entityID, "VegetationIndex", map[string]ngsi.Attribute{
		"ndviMean": {Type: "Number", Value: m.Mean(), At: at,
			Metadata: map[string]string{"device": string(d.Desc.ID), "owner": p.Opts.Pilot.Name}},
		"stressCells": {Type: "Number", Value: float64(len(stress)), At: at,
			Metadata: map[string]string{"device": string(d.Desc.ID), "owner": p.Opts.Pilot.Name}},
	})
	if err != nil {
		return nil, err
	}
	p.Anomaly.OnReading(model.Reading{
		Device: d.Desc.ID, Quantity: model.QNDVI, Value: m.Mean(), At: at,
	})
	// Feed the stress map into the decision engine: stressed sectors will
	// irrigate earlier on the next cycle.
	p.Decision.SetNDVIStressCells(stress)
	return m, nil
}
