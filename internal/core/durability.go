package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/tenant"
	"github.com/swamp-project/swamp/internal/timeseries"
	"github.com/swamp-project/swamp/internal/wal"
)

// DefaultSnapshotInterval is the periodic snapshot cadence when
// DurabilityConfig.SnapshotInterval is zero.
const DefaultSnapshotInterval = 5 * time.Minute

// DurabilityConfig configures the durability plane of one deployment.
type DurabilityConfig struct {
	// Dir is the WAL directory. Required.
	Dir string
	// SegmentBytes is the WAL segment roll threshold
	// (0 → wal.DefaultSegmentBytes).
	SegmentBytes int64
	// FsyncInterval is the group-commit coalescing window (0 → fsync as
	// soon as the commit queue drains; batching still emerges under
	// concurrent writers).
	FsyncInterval time.Duration
	// SnapshotInterval is the periodic snapshot + truncation cadence
	// (0 → DefaultSnapshotInterval; negative disables periodic snapshots
	// — Snapshot can still be called manually).
	SnapshotInterval time.Duration
	// SyncEveryRecord forces one fsync per record (bench baseline).
	SyncEveryRecord bool
	// Metrics receives the wal.* counters; nil allocates one.
	Metrics *metrics.Registry
	// Admission, when set, has a subscription slot restored for every
	// owned subscription recovered during replay (and released again when
	// a tail delete removes one), so post-restart slot accounting matches
	// the live subscriptions instead of restarting at zero.
	Admission *tenant.Admission
}

// Durability wires one WAL manager under a context broker and a
// time-series store (plus, optionally, a webhook pool for recovering
// HTTP subscriptions): the composition the Platform and the walbench
// crash harness share.
//
// Recovery semantics: every mutation acknowledged before a crash is
// recovered. Entity records replay convergently (attribute writes are
// absolute assignments, so replaying a tail record already reflected in
// the snapshot is a no-op); telemetry records are exact-once — the
// snapshot dump freezes the store across the WAL rotation boundary, so
// snapshot state and tail records partition the acknowledged points.
// Notifications replayed from the tail may redeliver to webhook
// endpoints: durability is at-least-once at the notification layer.
type Durability struct {
	WAL       *wal.Manager
	Context   *ngsi.Broker
	Store     *timeseries.Store
	Webhooks  *ngsi.WebhookPool
	Admission *tenant.Admission
	// Recovered reports what the opening recovery replayed.
	Recovered wal.RecoverStats
}

// OpenDurability opens (or creates) the WAL directory, replays its
// snapshot + tail into the given broker, store and webhook pool — all of
// which must be freshly constructed and not yet serving traffic — then
// attaches the journals so every subsequent mutation is logged, and
// starts the periodic snapshotter. Close the Durability after the stores
// have stopped writing.
func OpenDurability(cfg DurabilityConfig, ctx *ngsi.Broker, store *timeseries.Store, hooks *ngsi.WebhookPool) (*Durability, error) {
	if ctx == nil || store == nil {
		return nil, fmt.Errorf("core: durability needs a context broker and a store")
	}
	m, err := wal.Open(wal.Config{
		Dir:             cfg.Dir,
		SegmentBytes:    cfg.SegmentBytes,
		FsyncInterval:   cfg.FsyncInterval,
		SyncEveryRecord: cfg.SyncEveryRecord,
		Metrics:         cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	d := &Durability{WAL: m, Context: ctx, Store: store, Webhooks: hooks, Admission: cfg.Admission}
	stats, err := m.Recover(d.apply)
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("core: WAL recovery: %w", err)
	}
	d.Recovered = stats
	ctx.SetJournal(m.ContextJournal())
	store.SetJournal(m.TelemetryJournal())
	// The snapshot loop always starts — parked when the interval is
	// negative — so a reload can enable or retune periodic snapshots via
	// SetSnapshotInterval without a restart.
	interval := cfg.SnapshotInterval
	if interval == 0 {
		interval = DefaultSnapshotInterval
	}
	m.StartSnapshots(interval, d.dump)
	return d, nil
}

// Close stops the snapshotter and flushes + closes the log. Call it after
// every writer (broker, store, webhook pool) has stopped.
func (d *Durability) Close() error { return d.WAL.Close() }

// Snapshot takes one snapshot now and truncates covered segments.
func (d *Durability) Snapshot() error { return d.WAL.Snapshot(d.dump) }

// apply replays one record during recovery. The journals are not yet
// attached, so nothing replayed is re-logged.
func (d *Durability) apply(rec wal.Record) error {
	switch rec.Type {
	case wal.TypeEntityUpsert:
		e, err := wal.DecodeEntityUpsert(rec)
		if err != nil {
			return err
		}
		return d.Context.UpsertEntity(e)
	case wal.TypeEntityMerge:
		entries, err := wal.DecodeEntityMerge(rec)
		if err != nil {
			return err
		}
		for _, en := range entries {
			if err := d.Context.UpdateAttrs(en.ID, en.Type, en.Attrs); err != nil {
				return err
			}
		}
		return nil
	case wal.TypeEntityDelete:
		id, err := wal.DecodeID(rec)
		if err != nil {
			return err
		}
		// A tail delete may target an entity the snapshot already lacks.
		if err := d.Context.DeleteEntity(id); err != nil && !errors.Is(err, ngsi.ErrNotFound) {
			return err
		}
		return nil
	case wal.TypeSubscriptionPut:
		sr, err := wal.DecodeSubscriptionPut(rec)
		if err != nil {
			return err
		}
		if d.Webhooks == nil {
			return nil // no pool to rebuild delivery workers in
		}
		// Replay idempotently: a subscription present in both the
		// snapshot and the tail replaces itself — releasing the slot the
		// earlier apply restored, so the pairing survives re-puts.
		if prev, err := d.Context.Subscription(sr.ID); err == nil {
			_ = d.Context.Unsubscribe(sr.ID)
			d.Admission.ReleaseSubscription(prev.Owner)
		}
		d.Webhooks.Remove(sr.ID)
		notifier, err := d.Webhooks.Notifier(sr.ID, sr.Endpoint)
		if err != nil {
			return err
		}
		notifier.SetOwner(tenant.ID(sr.Owner))
		_, err = d.Context.Subscribe(ngsi.Subscription{
			ID:              sr.ID,
			EntityIDPattern: sr.EntityIDPattern,
			EntityType:      sr.EntityType,
			ConditionAttrs:  sr.ConditionAttrs,
			NotifyAttrs:     sr.NotifyAttrs,
			Throttling:      sr.Throttling,
			Owner:           tenant.ID(sr.Owner),
			Notifier:        notifier,
		})
		if err != nil {
			d.Webhooks.Remove(sr.ID)
			return err
		}
		// Restore the recovered subscription's quota slot (bypassing the
		// quota bound — it was enforced at create time) so a post-restart
		// delete releases a slot this subscription actually holds.
		d.Admission.RestoreSubscription(tenant.ID(sr.Owner))
		return nil
	case wal.TypeSubscriptionDelete:
		id, err := wal.DecodeID(rec)
		if err != nil {
			return err
		}
		// A tail delete removes a subscription an earlier apply restored
		// a slot for; release it so the pairing holds through replay.
		if sub, err := d.Context.Subscription(id); err == nil {
			d.Admission.ReleaseSubscription(sub.Owner)
		}
		if err := d.Context.Unsubscribe(id); err != nil && !errors.Is(err, ngsi.ErrNotFound) {
			return err
		}
		if d.Webhooks != nil {
			d.Webhooks.Remove(id)
		}
		return nil
	case wal.TypeTelemetry:
		pts, err := wal.DecodeTelemetry(rec)
		if err != nil {
			return err
		}
		_, rejected, err := d.Store.AppendBatch(pts)
		if err != nil {
			return err
		}
		if rejected > 0 {
			return fmt.Errorf("core: replay rejected %d telemetry points", rejected)
		}
		return nil
	default:
		// Unknown record type: written by a newer version. Refuse rather
		// than silently dropping acknowledged writes.
		return fmt.Errorf("core: unknown WAL record type %d", rec.Type)
	}
}

// telemetrySnapshotChunk bounds the points per snapshot record so one
// huge series cannot produce an oversized record.
const telemetrySnapshotChunk = 2048

// dump streams the platform state as a snapshot. Order matters:
//
//  1. telemetry first, under DumpFrozen — the store is frozen while the
//     WAL rotates, which is what makes point recovery exact-count;
//  2. then entities (after the rotation, so any concurrent update is in
//     the tail too; replaying it on top of the snapshot converges
//     because attribute writes are absolute);
//  3. then webhook subscriptions — last, so replaying the snapshot's
//     entities never fires recovered subscriptions.
func (d *Durability) dump(rotate func() error, sink func(wal.Record) error) error {
	err := d.Store.DumpFrozen(rotate, func(key timeseries.SeriesKey, pts []timeseries.Point) error {
		for start := 0; start < len(pts); start += telemetrySnapshotChunk {
			end := start + telemetrySnapshotChunk
			if end > len(pts) {
				end = len(pts)
			}
			batch := make([]timeseries.BatchPoint, end-start)
			for i := range batch {
				batch[i] = timeseries.BatchPoint{Key: key, Point: pts[start+i]}
			}
			rec, err := wal.EncodeTelemetry(batch)
			if err != nil {
				return err
			}
			if err := sink(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := d.Context.DumpEntities(func(e *ngsi.Entity) error {
		rec, err := wal.EncodeEntityUpsert(e)
		if err != nil {
			return err
		}
		return sink(rec)
	}); err != nil {
		return err
	}
	if d.Webhooks == nil {
		return nil
	}
	for _, v := range d.Context.Subscriptions() {
		url, ok := d.Webhooks.URL(v.ID)
		if !ok {
			continue // in-process wiring: rebuilt on startup, not persisted
		}
		rec, err := wal.EncodeSubscriptionPut(wal.NewSubscriptionRecord(v, url))
		if err != nil {
			return err
		}
		if err := sink(rec); err != nil {
			return err
		}
	}
	return nil
}
