// Package core composes the SWAMP platform — the paper's contribution. It
// wires the substrates (MQTT transport, IoT agent, NGSI context broker,
// security GEs, anomaly engine, fog node, cloud services, irrigation
// controllers) into one deployable system, defines the four pilots of the
// paper's §I, and provides the deployment configurations (§I: "smart
// algorithms and analytics in the cloud, fog-based smart decisions located
// on the farm premises and possibly mobile fog nodes acting in the field")
// plus the season-scale scenario runner the experiments build on.
package core

import (
	"fmt"

	"github.com/swamp-project/swamp/internal/irrigation"
	"github.com/swamp-project/swamp/internal/soil"
	"github.com/swamp-project/swamp/internal/weather"
)

// IrrigationKind selects a pilot's actuation method.
type IrrigationKind int

// Irrigation kinds across the pilots.
const (
	// IrrigationVRIPivot: center pivot with per-sector variable rate
	// (MATOPIBA).
	IrrigationVRIPivot IrrigationKind = iota + 1
	// IrrigationDrip: threshold-refill drip (Intercrop).
	IrrigationDrip
	// IrrigationDeficitDrip: regulated-deficit drip (Guaspari).
	IrrigationDeficitDrip
	// IrrigationCanal: district canal distribution (CBEC).
	IrrigationCanal
)

// Pilot is one deployment site: climate, crop, soil, geometry and goals.
type Pilot struct {
	Name    string
	Goal    string
	Climate weather.Climate
	Crop    soil.Crop
	Soil    soil.Profile
	// SoilVariability is the spatial heterogeneity amplitude (drives VRI
	// benefit).
	SoilVariability float64
	// GridRows/GridCols/CellSizeM define the field raster.
	GridRows, GridCols int
	CellSizeM          float64
	// Probes is how many soil probes instrument the field.
	Probes int
	// Irrigation selects the actuation method.
	Irrigation IrrigationKind
	// Sectors is the VRI sector count (pivot pilots).
	Sectors int
	// Pump models the pressurizing pump (energy accounting).
	Pump irrigation.PumpModel
	// SeasonStartDOY anchors the crop season in the climate year.
	SeasonStartDOY int
}

// Validate reports the first problem with the pilot definition.
func (p Pilot) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("core: unnamed pilot")
	case p.GridRows <= 0 || p.GridCols <= 0 || p.CellSizeM <= 0:
		return fmt.Errorf("core: pilot %s: bad grid %dx%d@%g", p.Name, p.GridRows, p.GridCols, p.CellSizeM)
	case p.Probes <= 0:
		return fmt.Errorf("core: pilot %s: needs probes", p.Name)
	case p.Irrigation == 0:
		return fmt.Errorf("core: pilot %s: no irrigation kind", p.Name)
	case p.Irrigation == IrrigationVRIPivot && p.Sectors <= 0:
		return fmt.Errorf("core: pilot %s: VRI needs sectors", p.Name)
	case p.SeasonStartDOY < 1 || p.SeasonStartDOY > 365:
		return fmt.Errorf("core: pilot %s: season start DOY %d", p.Name, p.SeasonStartDOY)
	}
	if err := p.Crop.Validate(); err != nil {
		return fmt.Errorf("core: pilot %s: %w", p.Name, err)
	}
	if err := p.Soil.Validate(); err != nil {
		return fmt.Errorf("core: pilot %s: %w", p.Name, err)
	}
	if err := p.Pump.Validate(); err != nil {
		return fmt.Errorf("core: pilot %s: %w", p.Name, err)
	}
	return nil
}

// The four SWAMP pilots (§I of the paper).
var (
	// PilotMATOPIBA: VRI on center pivots for soybean; save water and
	// energy (the paper's "main pilot goal").
	PilotMATOPIBA = Pilot{
		Name:            "matopiba",
		Goal:            "variable-rate irrigation on center pivots; save water and energy",
		Climate:         weather.ClimateMATOPIBA,
		Crop:            soil.CropSoybean,
		Soil:            soil.ProfileSandyLoam,
		SoilVariability: 0.3,
		GridRows:        24, GridCols: 24, CellSizeM: 25,
		Probes:         12,
		Irrigation:     IrrigationVRIPivot,
		Sectors:        24,
		Pump:           irrigation.PumpModel{HeadM: 60, Efficiency: 0.7},
		SeasonStartDOY: 135, // dry-season soybean under irrigation
	}
	// PilotGuaspari: winter wine grapes under regulated deficit; goal is
	// wine quality.
	PilotGuaspari = Pilot{
		Name:            "guaspari",
		Goal:            "winter-harvest wine grapes; improve wine quality via RDI",
		Climate:         weather.ClimateGuaspari,
		Crop:            soil.CropWineGrape,
		Soil:            soil.ProfileClayLoam,
		SoilVariability: 0.2,
		GridRows:        16, GridCols: 16, CellSizeM: 20,
		Probes:         8,
		Irrigation:     IrrigationDeficitDrip,
		Pump:           irrigation.PumpModel{HeadM: 40, Efficiency: 0.65},
		SeasonStartDOY: 32, // prune in February, harvest in winter
	}
	// PilotIntercrop: semi-arid vegetables partly on desalinated water;
	// goal is rational water use.
	PilotIntercrop = Pilot{
		Name:            "intercrop",
		Goal:            "rational water use with desalinated supply",
		Climate:         weather.ClimateIntercrop,
		Crop:            soil.CropLettuce,
		Soil:            soil.ProfileSand,
		SoilVariability: 0.15,
		GridRows:        12, GridCols: 12, CellSizeM: 15,
		Probes:         6,
		Irrigation:     IrrigationDrip,
		Pump:           irrigation.PumpModel{HeadM: 35, Efficiency: 0.7},
		SeasonStartDOY: 60,
	}
	// PilotCBEC: maize in the Emilia district fed by canals; goal is
	// optimized distribution.
	PilotCBEC = Pilot{
		Name:            "cbec",
		Goal:            "optimize canal water distribution to farms",
		Climate:         weather.ClimateCBEC,
		Crop:            soil.CropMaizeSilage,
		Soil:            soil.ProfileLoam,
		SoilVariability: 0.2,
		GridRows:        16, GridCols: 16, CellSizeM: 30,
		Probes:         8,
		Irrigation:     IrrigationCanal,
		Pump:           irrigation.PumpModel{HeadM: 20, Efficiency: 0.75},
		SeasonStartDOY: 115,
	}
)

// Pilots lists the built-in pilots.
func Pilots() []Pilot {
	return []Pilot{PilotMATOPIBA, PilotGuaspari, PilotIntercrop, PilotCBEC}
}

// PilotByName finds a built-in pilot.
func PilotByName(name string) (Pilot, error) {
	for _, p := range Pilots() {
		if p.Name == name {
			return p, nil
		}
	}
	return Pilot{}, fmt.Errorf("core: unknown pilot %q (have matopiba, guaspari, intercrop, cbec)", name)
}
