package core

import (
	"fmt"

	"github.com/swamp-project/swamp/internal/cluster"
)

// ClusterHooks exposes the platform's durable stores to the cluster
// plane: the entity broker, the time-series store, the WAL the cluster
// node streams to followers, and the snapshot hook used for follower
// bootstrap. The platform must have been built with durability (a WAL
// directory) — replication is WAL shipping, so there is nothing to ship
// without one.
func (p *Platform) ClusterHooks() (cluster.Hooks, error) {
	if p.Durable == nil {
		return cluster.Hooks{}, fmt.Errorf("core: cluster mode needs durability (a WAL directory)")
	}
	return cluster.Hooks{
		Context:  p.Context,
		Store:    p.Store,
		WAL:      p.Durable.WAL,
		Snapshot: p.Durable.Snapshot,
	}, nil
}
