// Package cloud implements the SWAMP cloud services: telemetry ingestion
// into the historical time-series store, the analytics queries the
// irrigation optimizer and dashboards consume, and plain-text reporting.
// In FIWARE terms this is the STH-Comet/QuantumLeap + application-services
// tier.
//
// Ingestion rides the store's batched append path (one shard lock per
// batch, however many series it spans) and analytics ride the aggregate
// pushdown path (chunk summaries, no point copying).
package cloud

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
)

// Ingestor persists readings and NGSI notifications into the store.
type Ingestor struct {
	store *timeseries.Store
	reg   *metrics.Registry

	// Logf receives diagnostics; nil means log.Printf.
	Logf func(format string, args ...any)

	// lastJournalLog throttles durability-failure logging (UnixNano of
	// the last line): a latched WAL failure would otherwise turn every
	// notification into a log line.
	lastJournalLog atomic.Int64

	// Hot-path counters, resolved once so ingest never touches the
	// registry map.
	cReadings, cInvalid *metrics.Counter
	cBatches, cNotifs   *metrics.Counter
	cJournalErr         *metrics.Counter
}

// NewIngestor builds an ingestor over store. metricsReg may be nil.
func NewIngestor(store *timeseries.Store, metricsReg *metrics.Registry) *Ingestor {
	if metricsReg == nil {
		metricsReg = metrics.NewRegistry()
	}
	return &Ingestor{
		store:       store,
		reg:         metricsReg,
		cReadings:   metricsReg.Counter("cloud.ingest.readings"),
		cInvalid:    metricsReg.Counter("cloud.ingest.invalid"),
		cBatches:    metricsReg.Counter("cloud.ingest.batches"),
		cNotifs:     metricsReg.Counter("cloud.ingest.notifications"),
		cJournalErr: metricsReg.Counter("cloud.ingest.journal_errors"),
	}
}

// Metrics returns the ingestor's registry.
func (i *Ingestor) Metrics() *metrics.Registry { return i.reg }

func (i *Ingestor) logf(format string, args ...any) {
	if i.Logf != nil {
		i.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// journalLogThrottle bounds how often notification-path durability
// failures are logged.
const journalLogThrottle = 10 * time.Second

// noteJournalErr counts an ingest-path durability failure and logs it
// under the given path label, at most once per throttle window.
func (i *Ingestor) noteJournalErr(path string, err error) {
	i.cJournalErr.Inc()
	now := time.Now().UnixNano()
	last := i.lastJournalLog.Load()
	if now-last >= int64(journalLogThrottle) && i.lastJournalLog.CompareAndSwap(last, now) {
		i.logf("cloud: %s telemetry not durable (batch rolled back from memory): %v", path, err)
	}
}

// IngestReadings appends a batch of device readings through the store's
// batched path (one shard lock per batch). Invalid readings are
// skipped-and-counted (`cloud.ingest.invalid`), never an error: a
// validation failure is a data-quality fact about the reading, not a
// transport failure, and returning one would make the fog node's
// store-and-forward loop treat the batch as retryable — wedging its
// queue head on a deterministically poisoned batch forever. Accepted
// readings are counted exactly, even for mixed batches.
func (i *Ingestor) IngestReadings(batch []model.Reading) error {
	if len(batch) == 0 {
		return nil
	}
	pts := make([]timeseries.BatchPoint, 0, len(batch))
	invalid := 0
	for _, r := range batch {
		if err := r.Validate(); err != nil {
			invalid++
			continue
		}
		pts = append(pts, timeseries.BatchPoint{
			Key:   timeseries.SeriesKey{Device: string(r.Device), Quantity: quantityKey(r)},
			Point: timeseries.Point{At: r.At, Value: r.Value},
		})
	}
	accepted, rejected, err := i.store.AppendBatch(pts)
	invalid += rejected
	i.cBatches.Inc()
	if accepted > 0 {
		i.cReadings.Add(uint64(accepted))
	}
	if invalid > 0 {
		i.cInvalid.Add(uint64(invalid))
	}
	if err != nil {
		// The store rolled the unjournaled batch back, so the fog
		// node's store-and-forward copy is the only surviving one:
		// surface the error so it redelivers. While the WAL stays
		// latched each retry fails cleanly (rolled back again, no
		// duplicates); after the restart that clears it, the retry
		// lands durably.
		i.noteJournalErr("reading-batch", err)
		return err
	}
	return nil
}

func quantityKey(r model.Reading) string {
	if r.Depth > 0 {
		return fmt.Sprintf("%s_d%d", r.Quantity, int(r.Depth*100+0.5))
	}
	return string(r.Quantity)
}

// Notifier adapts the ingestor to the broker's Notifier interface — the
// form a catch-all persistence subscription wires in.
func (i *Ingestor) Notifier() ngsi.Notifier {
	return ngsi.Callback(i.NotificationHandler())
}

// NotificationHandler adapts the ingestor to NGSI subscriptions: every
// numeric attribute in a notification becomes a point in the entity's
// series, landed through one batched append. Wire it (via Notifier) as
// the handler of a catch-all subscription.
func (i *Ingestor) NotificationHandler() ngsi.Handler {
	return func(n ngsi.Notification) {
		pts := make([]timeseries.BatchPoint, 0, len(n.Entity.Attrs))
		for name, attr := range n.Entity.Attrs {
			v, ok := attr.Float()
			if !ok {
				continue
			}
			at := attr.At
			if at.IsZero() {
				at = n.At
			}
			pts = append(pts, timeseries.BatchPoint{
				Key:   timeseries.SeriesKey{Device: n.Entity.ID, Quantity: name},
				Point: timeseries.Point{At: at, Value: v},
			})
		}
		if len(pts) > 0 {
			accepted, rejected, err := i.store.AppendBatch(pts)
			if accepted > 0 {
				i.cReadings.Add(uint64(accepted))
			}
			if rejected > 0 {
				i.cInvalid.Add(uint64(rejected))
			}
			if err != nil {
				// Notification handlers cannot return errors and the
				// broker does not redeliver, so the rolled-back batch is
				// dropped: count and log the loss.
				i.noteJournalErr("notification", err)
			}
		}
		i.cNotifs.Inc()
	}
}

// Analytics answers the queries the optimizer and dashboards need. All
// aggregate queries use the store's pushdown path over chunk summaries.
type Analytics struct {
	store *timeseries.Store
}

// NewAnalytics builds an analytics facade over store.
func NewAnalytics(store *timeseries.Store) *Analytics {
	return &Analytics{store: store}
}

// Summary aggregates one series over [from, to).
func (a *Analytics) Summary(device, quantity string, from, to time.Time) timeseries.Aggregate {
	return a.store.Summarize(timeseries.SeriesKey{Device: device, Quantity: quantity}, from, to)
}

// Windows returns fixed-window aggregates (count/min/max/mean) for a
// series — the downsampled range the dashboard series endpoint serves.
func (a *Analytics) Windows(device, quantity string, from, to time.Time, window time.Duration) ([]timeseries.WindowAggregate, error) {
	return a.store.AggregateWindows(timeseries.SeriesKey{Device: device, Quantity: quantity}, from, to, window)
}

// Daily returns day-resolution means for a series.
func (a *Analytics) Daily(device, quantity string, from, to time.Time) ([]timeseries.Point, error) {
	return a.store.Downsample(timeseries.SeriesKey{Device: device, Quantity: quantity}, from, to, 24*time.Hour)
}

// Latest returns the freshest value of a series.
func (a *Analytics) Latest(device, quantity string) (timeseries.Point, bool) {
	return a.store.Latest(timeseries.SeriesKey{Device: device, Quantity: quantity})
}

// ReportRow is one line of a field report.
type ReportRow struct {
	Device   string
	Quantity string
	Agg      timeseries.Aggregate
}

// FieldReport summarises every series whose device id has the given prefix
// over [from, to), sorted by (device, quantity).
func (a *Analytics) FieldReport(devicePrefix string, from, to time.Time) []ReportRow {
	var rows []ReportRow
	for _, key := range a.store.Keys() {
		if !strings.HasPrefix(key.Device, devicePrefix) {
			continue
		}
		agg := a.store.Summarize(key, from, to)
		if agg.Count == 0 {
			continue
		}
		rows = append(rows, ReportRow{Device: key.Device, Quantity: key.Quantity, Agg: agg})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Device != rows[j].Device {
			return rows[i].Device < rows[j].Device
		}
		return rows[i].Quantity < rows[j].Quantity
	})
	return rows
}

// RenderReport formats rows as an aligned text table.
func RenderReport(rows []ReportRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-22s %8s %10s %10s %10s\n", "DEVICE", "QUANTITY", "N", "MIN", "MEAN", "MAX")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %-22s %8d %10.3f %10.3f %10.3f\n",
			r.Device, r.Quantity, r.Agg.Count, r.Agg.Min, r.Agg.Mean, r.Agg.Max)
	}
	return b.String()
}
