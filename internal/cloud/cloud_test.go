package cloud

import (
	"strings"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
)

var t0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func TestIngestReadings(t *testing.T) {
	store := timeseries.New()
	ing := NewIngestor(store, nil)
	batch := []model.Reading{
		{Device: "p1", Quantity: model.QSoilMoisture, Value: 0.2, Depth: 0.2, At: t0},
		{Device: "p1", Quantity: model.QSoilMoisture, Value: 0.3, Depth: 0.5, At: t0},
		{Device: "ws", Quantity: model.QAirTemp, Value: 28, At: t0},
	}
	if err := ing.IngestReadings(batch); err != nil {
		t.Fatal(err)
	}
	// Depth separates series.
	if got := store.Len(timeseries.SeriesKey{Device: "p1", Quantity: "soilMoisture_d20"}); got != 1 {
		t.Errorf("d20 points = %d", got)
	}
	if got := store.Len(timeseries.SeriesKey{Device: "p1", Quantity: "soilMoisture_d50"}); got != 1 {
		t.Errorf("d50 points = %d", got)
	}
	// An all-invalid batch is not an error (it must not look like a
	// transport failure to the fog retry loop) — it is skipped and counted.
	if err := ing.IngestReadings([]model.Reading{{}}); err != nil {
		t.Errorf("all-invalid batch returned error: %v", err)
	}
	if ing.Metrics().Counter("cloud.ingest.invalid").Value() != 1 {
		t.Error("invalid counter wrong")
	}
	if ing.Metrics().Counter("cloud.ingest.readings").Value() != 3 {
		t.Error("ingest counter wrong")
	}
}

// A mixed batch must not abort on the invalid reading: valid readings land
// and are counted, invalid ones are skipped and counted.
func TestIngestSkipsInvalidMidBatch(t *testing.T) {
	store := timeseries.New()
	ing := NewIngestor(store, nil)
	batch := []model.Reading{
		{Device: "p1", Quantity: model.QSoilMoisture, Value: 0.2, At: t0},
		{}, // invalid: must be skipped, not fail the batch
		{Device: "p2", Quantity: model.QSoilMoisture, Value: 0.3, At: t0},
	}
	if err := ing.IngestReadings(batch); err != nil {
		t.Fatalf("mixed batch rejected: %v", err)
	}
	if got := store.Len(timeseries.SeriesKey{Device: "p1", Quantity: "soilMoisture"}); got != 1 {
		t.Errorf("p1 points = %d", got)
	}
	if got := store.Len(timeseries.SeriesKey{Device: "p2", Quantity: "soilMoisture"}); got != 1 {
		t.Errorf("p2 points = %d", got)
	}
	if got := ing.Metrics().Counter("cloud.ingest.readings").Value(); got != 2 {
		t.Errorf("accepted counter = %d, want 2", got)
	}
	if got := ing.Metrics().Counter("cloud.ingest.invalid").Value(); got != 1 {
		t.Errorf("invalid counter = %d, want 1", got)
	}
}

func TestNotificationHandler(t *testing.T) {
	store := timeseries.New()
	ing := NewIngestor(store, nil)
	ctx := ngsi.NewBroker(ngsi.BrokerConfig{})
	defer ctx.Close()
	if _, err := ctx.Subscribe(ngsi.Subscription{
		EntityIDPattern: "*",
		Notifier:        ing.Notifier(),
	}); err != nil {
		t.Fatal(err)
	}
	ctx.UpdateAttrs("urn:plot:1", "AgriParcel", map[string]ngsi.Attribute{
		"soilMoisture_d20": {Type: "Number", Value: 0.22, At: t0},
		"label":            {Type: "Text", Value: "north plot", At: t0}, // non-numeric: skipped
	})
	deadline := time.Now().Add(2 * time.Second)
	key := timeseries.SeriesKey{Device: "urn:plot:1", Quantity: "soilMoisture_d20"}
	for time.Now().Before(deadline) && store.Len(key) == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if store.Len(key) != 1 {
		t.Fatal("notification not persisted")
	}
	if store.Len(timeseries.SeriesKey{Device: "urn:plot:1", Quantity: "label"}) != 0 {
		t.Error("non-numeric attribute persisted")
	}
}

func seedStore(t *testing.T) *timeseries.Store {
	t.Helper()
	store := timeseries.New()
	ing := NewIngestor(store, nil)
	for day := 0; day < 3; day++ {
		for h := 0; h < 24; h++ {
			at := t0.Add(time.Duration(day*24+h) * time.Hour)
			err := ing.IngestReadings([]model.Reading{
				{Device: "farm1-p1", Quantity: model.QSoilMoisture, Value: 0.2 + float64(day)*0.01, At: at},
				{Device: "farm1-ws", Quantity: model.QAirTemp, Value: 25, At: at},
				{Device: "farm2-p9", Quantity: model.QSoilMoisture, Value: 0.4, At: at},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return store
}

func TestAnalyticsQueries(t *testing.T) {
	store := seedStore(t)
	a := NewAnalytics(store)

	agg := a.Summary("farm1-p1", "soilMoisture", t0, t0.Add(72*time.Hour))
	if agg.Count != 72 {
		t.Errorf("summary count = %d", agg.Count)
	}
	daily, err := a.Daily("farm1-p1", "soilMoisture", t0, t0.Add(72*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(daily) != 3 {
		t.Fatalf("daily windows = %d", len(daily))
	}
	if !(daily[0].Value < daily[2].Value) {
		t.Errorf("daily trend lost: %v", daily)
	}
	if _, ok := a.Latest("farm1-p1", "soilMoisture"); !ok {
		t.Error("latest missing")
	}
	if _, ok := a.Latest("ghost", "x"); ok {
		t.Error("latest for unknown series")
	}

	wins, err := a.Windows("farm1-p1", "soilMoisture", t0, t0.Add(72*time.Hour), 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) != 6 {
		t.Fatalf("12h windows = %d, want 6", len(wins))
	}
	if wins[0].Count != 12 || !wins[0].Start.Equal(t0) {
		t.Errorf("window 0 = %+v", wins[0])
	}
	if _, err := a.Windows("farm1-p1", "soilMoisture", t0, t0.Add(time.Hour), 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestFieldReportFiltersAndSorts(t *testing.T) {
	store := seedStore(t)
	a := NewAnalytics(store)
	rows := a.FieldReport("farm1-", t0, t0.Add(72*time.Hour))
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Device != "farm1-p1" || rows[1].Device != "farm1-ws" {
		t.Errorf("order: %s, %s", rows[0].Device, rows[1].Device)
	}
	text := RenderReport(rows)
	if !strings.Contains(text, "farm1-p1") || !strings.Contains(text, "soilMoisture") {
		t.Errorf("report:\n%s", text)
	}
	if strings.Contains(text, "farm2") {
		t.Error("report leaked other farm's devices")
	}
}
