package cloud

import (
	"strings"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
)

var t0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func TestIngestReadings(t *testing.T) {
	store := timeseries.New()
	ing := NewIngestor(store, nil)
	batch := []model.Reading{
		{Device: "p1", Quantity: model.QSoilMoisture, Value: 0.2, Depth: 0.2, At: t0},
		{Device: "p1", Quantity: model.QSoilMoisture, Value: 0.3, Depth: 0.5, At: t0},
		{Device: "ws", Quantity: model.QAirTemp, Value: 28, At: t0},
	}
	if err := ing.IngestReadings(batch); err != nil {
		t.Fatal(err)
	}
	// Depth separates series.
	if got := store.Len(timeseries.SeriesKey{Device: "p1", Quantity: "soilMoisture_d20"}); got != 1 {
		t.Errorf("d20 points = %d", got)
	}
	if got := store.Len(timeseries.SeriesKey{Device: "p1", Quantity: "soilMoisture_d50"}); got != 1 {
		t.Errorf("d50 points = %d", got)
	}
	if err := ing.IngestReadings([]model.Reading{{}}); err == nil {
		t.Error("invalid reading accepted")
	}
	if ing.Metrics().Counter("cloud.ingest.readings").Value() != 3 {
		t.Error("ingest counter wrong")
	}
}

func TestNotificationHandler(t *testing.T) {
	store := timeseries.New()
	ing := NewIngestor(store, nil)
	ctx := ngsi.NewBroker(ngsi.BrokerConfig{})
	defer ctx.Close()
	if _, err := ctx.Subscribe(ngsi.Subscription{
		EntityIDPattern: "*",
		Handler:         ing.NotificationHandler(),
	}); err != nil {
		t.Fatal(err)
	}
	ctx.UpdateAttrs("urn:plot:1", "AgriParcel", map[string]ngsi.Attribute{
		"soilMoisture_d20": {Type: "Number", Value: 0.22, At: t0},
		"label":            {Type: "Text", Value: "north plot", At: t0}, // non-numeric: skipped
	})
	deadline := time.Now().Add(2 * time.Second)
	key := timeseries.SeriesKey{Device: "urn:plot:1", Quantity: "soilMoisture_d20"}
	for time.Now().Before(deadline) && store.Len(key) == 0 {
		time.Sleep(2 * time.Millisecond)
	}
	if store.Len(key) != 1 {
		t.Fatal("notification not persisted")
	}
	if store.Len(timeseries.SeriesKey{Device: "urn:plot:1", Quantity: "label"}) != 0 {
		t.Error("non-numeric attribute persisted")
	}
}

func seedStore(t *testing.T) *timeseries.Store {
	t.Helper()
	store := timeseries.New()
	ing := NewIngestor(store, nil)
	for day := 0; day < 3; day++ {
		for h := 0; h < 24; h++ {
			at := t0.Add(time.Duration(day*24+h) * time.Hour)
			err := ing.IngestReadings([]model.Reading{
				{Device: "farm1-p1", Quantity: model.QSoilMoisture, Value: 0.2 + float64(day)*0.01, At: at},
				{Device: "farm1-ws", Quantity: model.QAirTemp, Value: 25, At: at},
				{Device: "farm2-p9", Quantity: model.QSoilMoisture, Value: 0.4, At: at},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return store
}

func TestAnalyticsQueries(t *testing.T) {
	store := seedStore(t)
	a := NewAnalytics(store)

	agg := a.Summary("farm1-p1", "soilMoisture", t0, t0.Add(72*time.Hour))
	if agg.Count != 72 {
		t.Errorf("summary count = %d", agg.Count)
	}
	daily, err := a.Daily("farm1-p1", "soilMoisture", t0, t0.Add(72*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(daily) != 3 {
		t.Fatalf("daily windows = %d", len(daily))
	}
	if !(daily[0].Value < daily[2].Value) {
		t.Errorf("daily trend lost: %v", daily)
	}
	if _, ok := a.Latest("farm1-p1", "soilMoisture"); !ok {
		t.Error("latest missing")
	}
	if _, ok := a.Latest("ghost", "x"); ok {
		t.Error("latest for unknown series")
	}
}

func TestFieldReportFiltersAndSorts(t *testing.T) {
	store := seedStore(t)
	a := NewAnalytics(store)
	rows := a.FieldReport("farm1-", t0, t0.Add(72*time.Hour))
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Device != "farm1-p1" || rows[1].Device != "farm1-ws" {
		t.Errorf("order: %s, %s", rows[0].Device, rows[1].Device)
	}
	text := RenderReport(rows)
	if !strings.Contains(text, "farm1-p1") || !strings.Contains(text, "soilMoisture") {
		t.Errorf("report:\n%s", text)
	}
	if strings.Contains(text, "farm2") {
		t.Error("report leaked other farm's devices")
	}
}
