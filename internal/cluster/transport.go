package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/swamp-project/swamp/internal/simnet"
)

// ErrConnClosed is returned by Send on a closed connection.
var ErrConnClosed = errors.New("cluster: connection closed")

// maxFrameBytes bounds one TCP frame; a record can be at most
// wal.MaxRecordBytes, plus envelope.
const maxFrameBytes = 80 << 20

// Conn is one bidirectional message transport between two nodes. Send
// must be safe for concurrent use and must not retain the frame after
// returning (callers reuse encode buffers). Frames received after the
// connection closes are dropped; Recv's channel closes on Close or peer
// loss. A Conn may silently drop frames (simnet impairment, queue
// overflow) — the replication protocol detects gaps by position chaining
// and re-syncs, it never assumes reliability.
type Conn interface {
	Send(frame []byte) error
	Recv() <-chan []byte
	Close() error
}

// --- in-process pipe (reliable, for tests and same-process routing) ---

type pipeShared struct {
	once sync.Once
	done chan struct{}
}

type pipeConn struct {
	sh   *pipeShared
	out  chan []byte
	recv chan []byte
}

// Pipe returns a connected, reliable, in-process Conn pair. Send blocks
// when the peer's queue (queueLen, default 1024) is full — backpressure,
// never drops. Closing either end closes both; each end's Recv channel
// is then closed (in-flight frames may be discarded).
func Pipe(queueLen int) (Conn, Conn) {
	if queueLen <= 0 {
		queueLen = 1024
	}
	sh := &pipeShared{done: make(chan struct{})}
	ab := make(chan []byte, queueLen)
	ba := make(chan []byte, queueLen)
	a := &pipeConn{sh: sh, out: ab, recv: forwardUntil(ba, sh.done)}
	b := &pipeConn{sh: sh, out: ba, recv: forwardUntil(ab, sh.done)}
	return a, b
}

// forwardUntil relays frames from in until done closes, then closes the
// returned channel — giving every Conn implementation the same "Recv
// closes on Close" shape regardless of the underlying channel's owner.
func forwardUntil(in <-chan []byte, done <-chan struct{}) chan []byte {
	out := make(chan []byte)
	go func() {
		defer close(out)
		for {
			select {
			case <-done:
				return
			case f, ok := <-in:
				if !ok {
					return
				}
				select {
				case out <- f:
				case <-done:
					return
				}
			}
		}
	}()
	return out
}

func (c *pipeConn) Send(frame []byte) error {
	cp := append([]byte(nil), frame...)
	select {
	case <-c.sh.done:
		return ErrConnClosed
	case c.out <- cp:
		return nil
	}
}

func (c *pipeConn) Recv() <-chan []byte { return c.recv }

func (c *pipeConn) Close() error {
	c.sh.once.Do(func() { close(c.sh.done) })
	return nil
}

// --- simnet adapter ---

type simConn struct {
	ep     *simnet.Endpoint
	closer func()
	done   chan struct{}
	recv   chan []byte
}

// SimnetPair wraps the two ends of a simnet Duplex as Conns. Closing
// either end closes the duplex (both directions). Simnet links never
// block and silently drop on loss, partition or queue overflow — size
// Config.QueueLen above the session window so flow control, not the
// link, is the bound.
func SimnetPair(d *simnet.Duplex) (Conn, Conn) {
	done := make(chan struct{})
	var once sync.Once
	closer := func() { once.Do(func() { close(done); d.Close() }) }
	a := &simConn{ep: d.A, closer: closer, done: done, recv: forwardUntil(d.A.Recv(), done)}
	b := &simConn{ep: d.B, closer: closer, done: done, recv: forwardUntil(d.B.Recv(), done)}
	return a, b
}

func (c *simConn) Send(frame []byte) error {
	select {
	case <-c.done:
		return ErrConnClosed
	default:
	}
	return c.ep.Send(frame)
}

func (c *simConn) Recv() <-chan []byte { return c.recv }

func (c *simConn) Close() error {
	c.closer()
	return nil
}

// --- TCP (length-prefixed frames, for multi-process swampd) ---

type tcpConn struct {
	c    net.Conn
	wmu  sync.Mutex
	in   chan []byte
	once sync.Once
}

func newTCPConn(c net.Conn) *tcpConn {
	t := &tcpConn{c: c, in: make(chan []byte, 1024)}
	go t.readLoop()
	return t
}

func (t *tcpConn) readLoop() {
	defer close(t.in)
	defer t.c.Close()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(t.c, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrameBytes {
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(t.c, frame); err != nil {
			return
		}
		t.in <- frame
	}
}

func (t *tcpConn) Send(frame []byte) error {
	if len(frame) > maxFrameBytes {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if _, err := t.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := t.c.Write(frame)
	return err
}

func (t *tcpConn) Recv() <-chan []byte { return t.in }

func (t *tcpConn) Close() error {
	var err error
	t.once.Do(func() { err = t.c.Close() })
	return err
}

// DialTCP connects to a peer's replication listener.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

// ListenTCP accepts replication/forwarding connections and hands each to
// serve on its own goroutine. Close the returned listener to stop.
func ListenTCP(addr string, serve func(Conn)) (io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go serve(newTCPConn(c))
		}
	}()
	return ln, nil
}
