package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
	"github.com/swamp-project/swamp/internal/wal"
)

// Hooks is the slice of a platform a Node drives: the durable stores it
// replicates and the WAL whose committed records it ships. core wires
// these from a Platform via ClusterHooks.
type Hooks struct {
	// Context is the entity broker (NGSI plane).
	Context *ngsi.Broker
	// Store is the time-series store (telemetry plane).
	Store *timeseries.Store
	// WAL is the platform's write-ahead log; the Node installs a commit
	// hook on it and streams its segments to followers.
	WAL *wal.Manager
	// Snapshot compacts the WAL (core's Durability.Snapshot). Leaders
	// call it to produce a fresh bootstrap image for new followers;
	// followers call it right after installing one. Required for
	// bootstrap; a nil Snapshot limits the node to resume-mode peers.
	Snapshot func() error
}

// NodeConfig configures a cluster Node.
type NodeConfig struct {
	// ID is this node's id; it must appear in the Map's node list.
	ID string
	// Map is the shared (in-process) or config-derived (multi-process)
	// partition-ownership table.
	Map *Map
	// Hooks binds the node to its platform's stores and WAL.
	Hooks Hooks
	// MinISR is how many followers covering a partition must ack a
	// write's log position before the write returns. 0 disables
	// synchronous replication (acks are then only a lag signal).
	MinISR int
	// AckTimeout bounds the synchronous-replication wait (default 5s).
	// Adjustable at runtime via SetAckTimeout.
	AckTimeout time.Duration
	// Window is the per-session in-flight record cap (default 4096).
	// Must stay below the transport's queue length or the link, not
	// flow control, becomes the bound.
	Window int
	// Dial opens a transport to a peer node by id.
	Dial func(node string) (Conn, error)
	// Metrics receives the swamp_cluster_* gauges and counters
	// (optional).
	Metrics *metrics.Registry
	// Logf logs notable events (promotions, resyncs, fences); optional.
	Logf func(format string, args ...any)
}

// Node is one cluster member: leader for the partitions the Map assigns
// it, follower (via replication sessions) for the rest. It installs a
// WAL commit hook to learn every locally committed record's position and
// fans those out to follower sessions; its own follower manager keeps
// inbound sessions to every leader it replicates from.
type Node struct {
	cfg   NodeConfig
	id    string
	m     *Map
	hooks Hooks
	repl  *replicator
	fmgr  *followerMgr

	ackTimeoutNs atomic.Int64
	closed       chan struct{}
	closeOnce    sync.Once
	wg           sync.WaitGroup

	gLed, gFollowed, gSessions, gLag, gEpoch, gRole *metrics.Gauge
	cShipped, cSkipped, cApplied, cFences, cAcksRejected,
	cResyncs *metrics.Counter
}

// NewNode builds a node and installs the WAL commit hook. Build the node
// before exposing the platform to traffic; records committed earlier are
// still replicated (they are in the segments), but the first session may
// need one resync round to see them.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("cluster: NodeConfig.ID required")
	}
	if cfg.Map == nil {
		return nil, errors.New("cluster: NodeConfig.Map required")
	}
	if cfg.Hooks.Context == nil || cfg.Hooks.Store == nil || cfg.Hooks.WAL == nil {
		return nil, errors.New("cluster: NodeConfig.Hooks requires Context, Store and WAL")
	}
	known := false
	for _, n := range cfg.Map.Nodes() {
		if n == cfg.ID {
			known = true
		}
	}
	if !known {
		return nil, fmt.Errorf("cluster: node %q not in the map", cfg.ID)
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 4096
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	n := &Node{
		cfg:    cfg,
		id:     cfg.ID,
		m:      cfg.Map,
		hooks:  cfg.Hooks,
		closed: make(chan struct{}),
	}
	n.ackTimeoutNs.Store(int64(cfg.AckTimeout))
	if reg := cfg.Metrics; reg != nil {
		n.gLed = reg.Gauge("cluster.partitions.led")
		n.gFollowed = reg.Gauge("cluster.partitions.followed")
		n.gSessions = reg.Gauge("cluster.sessions")
		n.gLag = reg.Gauge("cluster.replication.lag")
		n.gEpoch = reg.Gauge("cluster.epoch.max")
		n.gRole = reg.Gauge("cluster.role.leader")
		n.cShipped = reg.Counter("cluster.records.shipped")
		n.cSkipped = reg.Counter("cluster.records.skipped")
		n.cApplied = reg.Counter("cluster.records.applied")
		n.cFences = reg.Counter("cluster.fences")
		n.cAcksRejected = reg.Counter("cluster.acks.rejected")
		n.cResyncs = reg.Counter("cluster.resyncs")
	}
	n.repl = newReplicator(n)
	n.fmgr = newFollowerMgr(n)
	n.hooks.WAL.SetCommitHook(n.repl.onCommit)
	n.repl.seedHead()
	return n, nil
}

// ID returns the node id.
func (n *Node) ID() string { return n.id }

// Map returns the partition-ownership table.
func (n *Node) Map() *Map { return n.m }

// Hooks returns the platform bindings (the router's local fast path).
func (n *Node) Hooks() Hooks { return n.hooks }

// Start launches the follower manager and the metrics updater.
func (n *Node) Start() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.fmgr.run()
	}()
	if n.cfg.Metrics != nil {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			t := time.NewTicker(250 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-n.closed:
					return
				case <-t.C:
					n.publishMetrics()
				}
			}
		}()
	}
}

// Close stops the node: the commit hook is removed, every replication
// session (both directions) is severed, and background loops exit. The
// underlying platform and WAL are left to their owner.
func (n *Node) Close() {
	n.shutdown(true)
}

// Kill is Close for the failure drill: it severs everything abruptly,
// simulating kill -9 — no offset flush, no goodbyes. A restart after
// Kill may re-bootstrap where one after Close would resume; it must
// never lose acked state (the sidecar only ever trails the stores).
func (n *Node) Kill() { n.shutdown(false) }

func (n *Node) shutdown(flushOffsets bool) {
	n.closeOnce.Do(func() {
		n.hooks.WAL.SetCommitHook(nil)
		close(n.closed)
		n.repl.closeAll()
		n.fmgr.closeAll()
	})
	n.wg.Wait()
	if flushOffsets {
		// All links are quiesced: persist the latest replication offsets
		// so a clean restart resumes instead of re-bootstrapping (the hot
		// path throttles sidecar writes, so the file may trail the
		// applied state).
		n.fmgr.offsets().flush()
	}
}

// SetAckTimeout adjusts the synchronous-replication wait at runtime
// (config plane dynamic knob).
func (n *Node) SetAckTimeout(d time.Duration) {
	if d > 0 {
		n.ackTimeoutNs.Store(int64(d))
	}
}

func (n *Node) ackTimeout() time.Duration {
	return time.Duration(n.ackTimeoutNs.Load())
}

// --- leader write path ---

// checkLeader rejects writes for partitions this node does not lead (or
// leads only per a fenced, stale view).
func (n *Node) checkLeader(p int) error {
	leader, _ := n.m.Leader(p)
	if leader != n.id {
		return fmt.Errorf("%w: partition %d is led by %s", ErrNotLeader, p, leader)
	}
	if epoch, fenced := n.repl.fencedEpoch(p); fenced {
		return fmt.Errorf("%w: partition %d at epoch %d", ErrFenced, p, epoch)
	}
	return nil
}

// waitReplicated blocks until MinISR followers covering every partition
// in parts have acked the current commit watermark — sampled after the
// local apply, so it covers the caller's write.
func (n *Node) waitReplicated(parts ...int) error {
	if n.cfg.MinISR <= 0 {
		return nil
	}
	w := n.repl.headPos()
	deadline := time.Now().Add(n.ackTimeout())
	for _, p := range parts {
		if err := n.repl.waitAcked(p, w, n.cfg.MinISR, deadline); err != nil {
			return err
		}
	}
	return nil
}

// UpsertEntity applies a full entity write on the owning leader.
func (n *Node) UpsertEntity(e *ngsi.Entity) error {
	p := n.m.PartitionOf(e.ID)
	if err := n.checkLeader(p); err != nil {
		return err
	}
	if err := n.hooks.Context.UpsertEntity(e); err != nil {
		return err
	}
	return n.waitReplicated(p)
}

// UpdateAttrs applies an attribute merge on the owning leader.
func (n *Node) UpdateAttrs(id, typ string, attrs map[string]ngsi.Attribute) error {
	p := n.m.PartitionOf(id)
	if err := n.checkLeader(p); err != nil {
		return err
	}
	if err := n.hooks.Context.UpdateAttrs(id, typ, attrs); err != nil {
		return err
	}
	return n.waitReplicated(p)
}

// BatchUpdate applies a batch whose entities this node must all own.
// The Router splits cross-node batches before calling this.
func (n *Node) BatchUpdate(updates map[string]ngsi.BatchEntry) error {
	parts := make(map[int]bool)
	for id := range updates {
		parts[n.m.PartitionOf(id)] = true
	}
	list := make([]int, 0, len(parts))
	for p := range parts {
		if err := n.checkLeader(p); err != nil {
			return err
		}
		list = append(list, p)
	}
	if err := n.hooks.Context.BatchUpdate(updates); err != nil {
		return err
	}
	return n.waitReplicated(list...)
}

// DeleteEntity deletes an entity on the owning leader.
func (n *Node) DeleteEntity(id string) error {
	p := n.m.PartitionOf(id)
	if err := n.checkLeader(p); err != nil {
		return err
	}
	if err := n.hooks.Context.DeleteEntity(id); err != nil {
		return err
	}
	return n.waitReplicated(p)
}

// AppendBatch appends telemetry whose devices this node must all own.
func (n *Node) AppendBatch(batch []timeseries.BatchPoint) (accepted, rejected int, err error) {
	parts := make(map[int]bool)
	for _, bp := range batch {
		parts[n.m.PartitionOf(bp.Key.Device)] = true
	}
	list := make([]int, 0, len(parts))
	for p := range parts {
		if err := n.checkLeader(p); err != nil {
			return 0, 0, err
		}
		list = append(list, p)
	}
	accepted, rejected, err = n.hooks.Store.AppendBatch(batch)
	if err != nil {
		return accepted, rejected, err
	}
	return accepted, rejected, n.waitReplicated(list...)
}

// --- record → partition mapping ---

// recordParts returns the partitions a record's elements land in, or nil
// for record types that do not replicate (subscriptions are node-local:
// each node serves its own webhooks). Used by both the sender (session
// relevance) and the follower (element filtering is finer-grained).
func (n *Node) recordParts(rec wal.Record) []int {
	add := func(parts []int, p int) []int {
		for _, q := range parts {
			if q == p {
				return parts
			}
		}
		return append(parts, p)
	}
	switch rec.Type {
	case wal.TypeEntityUpsert:
		e, err := wal.DecodeEntityUpsert(rec)
		if err != nil {
			return nil
		}
		return []int{n.m.PartitionOf(e.ID)}
	case wal.TypeEntityMerge:
		entries, err := wal.DecodeEntityMerge(rec)
		if err != nil {
			return nil
		}
		var parts []int
		for _, en := range entries {
			parts = add(parts, n.m.PartitionOf(en.ID))
		}
		return parts
	case wal.TypeEntityDelete:
		id, err := wal.DecodeID(rec)
		if err != nil {
			return nil
		}
		return []int{n.m.PartitionOf(id)}
	case wal.TypeTelemetry:
		pts, err := wal.DecodeTelemetry(rec)
		if err != nil {
			return nil
		}
		var parts []int
		for _, bp := range pts {
			parts = add(parts, n.m.PartitionOf(bp.Key.Device))
		}
		return parts
	}
	return nil
}

// --- follower-side state surgery ---

// wipe removes every entity and series owned by the given partitions —
// the first half of a snapshot install. Not journaled as a unit; the
// follower snapshots its own WAL right after the install so a crash in
// between re-bootstraps rather than recovering a half-wiped state.
func (n *Node) wipe(parts map[int]bool) error {
	var ids []string
	err := n.hooks.Context.DumpEntities(func(e *ngsi.Entity) error {
		if parts[n.m.PartitionOf(e.ID)] {
			ids = append(ids, e.ID)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, id := range ids {
		if err := n.hooks.Context.DeleteEntity(id); err != nil && !errors.Is(err, ngsi.ErrNotFound) {
			return err
		}
	}
	for _, k := range n.hooks.Store.Keys() {
		if parts[n.m.PartitionOf(k.Device)] {
			n.hooks.Store.DeleteSeries(k)
		}
	}
	return nil
}

// --- inbound connections ---

// ServeConn runs one inbound transport connection: a follower session
// (hello → record stream ← acks) and/or routed requests (msgReq) share
// the connection. Blocks until the connection or the node closes.
func (n *Node) ServeConn(c Conn) {
	defer c.Close()
	var sess *session
	defer func() {
		if sess != nil {
			n.repl.drop(sess)
		}
	}()
	for {
		select {
		case <-n.closed:
			return
		case frame, ok := <-c.Recv():
			if !ok {
				return
			}
			t, body, err := frameType(frame)
			if err != nil {
				return
			}
			switch t {
			case msgHello:
				h, err := decodeHello(body)
				if err != nil {
					return
				}
				if sess != nil {
					n.repl.drop(sess)
				}
				sess = n.repl.startSession(c, h)
			case msgAck:
				a, err := decodeAck(body)
				if err == nil && sess != nil {
					n.repl.onAck(sess, a)
				}
			case msgFence:
				f, err := decodeFence(body)
				if err == nil {
					n.repl.onFence(f)
				}
			case msgReq:
				rq, err := decodeReq(body)
				if err != nil {
					return
				}
				go n.serveReq(c, rq)
			}
		}
	}
}

// --- status & readiness ---

// SessionStatus is one outbound replication session's health.
type SessionStatus struct {
	Follower string   `json:"follower"`
	Parts    int      `json:"partitions"`
	Acked    wal.Pos  `json:"acked"`
	Lag      uint64   `json:"lag"` // records shipped but not yet acked
}

// Status is the node's cluster-plane health snapshot.
type Status struct {
	ID            string          `json:"id"`
	PartsLed      int             `json:"partitions_led"`
	PartsFollowed int             `json:"partitions_followed"`
	EpochMax      uint64          `json:"epoch_max"`
	Sessions      []SessionStatus `json:"sessions,omitempty"`
	MaxLag        uint64          `json:"max_lag"`
}

// Status snapshots the node's cluster-plane health.
func (n *Node) Status() Status {
	st := Status{ID: n.id}
	st.PartsLed = len(n.m.LedBy(n.id))
	for _, parts := range n.m.FollowedBy(n.id) {
		st.PartsFollowed += len(parts)
	}
	for p := 0; p < n.m.Partitions(); p++ {
		if e := n.m.Epoch(p); e > st.EpochMax {
			st.EpochMax = e
		}
	}
	st.Sessions = n.repl.sessionStatus()
	for _, s := range st.Sessions {
		if s.Lag > st.MaxLag {
			st.MaxLag = s.Lag
		}
	}
	return st
}

// ReadyLag gates readiness on replication lag: it returns an error when
// any follower session trails the leader by more than maxLag records.
// maxLag <= 0 disables the gate.
func (n *Node) ReadyLag(maxLag int64) error {
	if maxLag <= 0 {
		return nil
	}
	st := n.repl.sessionStatus()
	for _, s := range st {
		if s.Lag > uint64(maxLag) {
			return fmt.Errorf("cluster: follower %s lags by %d records (max %d)",
				s.Follower, s.Lag, maxLag)
		}
	}
	return nil
}

func (n *Node) publishMetrics() {
	st := n.Status()
	n.gLed.Set(float64(st.PartsLed))
	n.gFollowed.Set(float64(st.PartsFollowed))
	n.gSessions.Set(float64(len(st.Sessions)))
	n.gLag.Set(float64(st.MaxLag))
	n.gEpoch.Set(float64(st.EpochMax))
	role := 0.0
	if st.PartsLed > 0 {
		role = 1
	}
	n.gRole.Set(role)
}
