// Package cluster is the SWAMP scale-out plane: consistent-hash
// partitioning of entities and series across nodes, WAL-shipped
// replication (followers bootstrap from a snapshot transfer, then tail
// the leader's live segments — the crash-recovery path applied remotely),
// and leader promotion with epoch fencing so a deposed leader's late
// acks are rejected.
//
// A Node wraps one platform's durable stores (broker + time-series store
// + WAL). Partition ownership lives in a Map: partition → (leader,
// followers, epoch). Leaders stream committed records to followers over
// a Conn transport (in-process pipe, simnet, or TCP) and, with MinISR >
// 0, acknowledge a write only after enough followers covering its
// partition have acked the write's log position — that synchronous hop
// is what makes "zero acked-write loss across a leader kill" hold. The
// Router on top gives the northbound a cluster-wide surface: writes
// route to the owning leader, queries scatter-gather across partitions
// and merge with ordering/limit/count preserved (DESIGN.md §10).
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/swamp-project/swamp/internal/shardhash"
)

// Errors of the write path.
var (
	// ErrNotLeader rejects a write routed to a node that does not lead
	// the key's partition (per the node's view of the Map).
	ErrNotLeader = errors.New("cluster: not the partition leader")
	// ErrFenced rejects a write on a partition for which this node has
	// observed a higher epoch: it has been deposed, and acknowledging —
	// even if a late follower ack arrives — would hand the client a
	// durability promise the new leader never made.
	ErrFenced = errors.New("cluster: partition fenced by a higher epoch")
	// ErrAckTimeout reports that not enough in-sync followers acked the
	// write's position in time. The write is locally durable but was
	// NOT acknowledged; the caller must treat it as failed.
	ErrAckTimeout = errors.New("cluster: replication ack timeout")
)

// Topology is the static cluster layout: every node id plus the
// partition and replication counts. All nodes must agree on it (it is
// config in multi-process deployments); the derived Map is then
// identical everywhere because assignment is deterministic.
type Topology struct {
	// Partitions is the consistent-hash partition count. Fixed for the
	// lifetime of the cluster.
	Partitions int
	// Replicas is how many nodes hold each partition (leader included).
	Replicas int
	// Nodes lists every node id. Order does not matter; assignment
	// sorts them.
	Nodes []string
}

// PartitionInfo is one partition's ownership: its current leader, the
// follower set, and the fencing epoch (bumped on every promotion).
type PartitionInfo struct {
	Leader    string
	Followers []string
	Epoch     uint64
}

// Map is the partition-ownership table. In-process clusters share one
// Map (the harness's stand-in for an external control plane); multi-
// process deployments derive identical Maps from static config, and
// promotion is an operator action. All methods are safe for concurrent
// use.
type Map struct {
	mu      sync.RWMutex
	nodes   []string
	parts   []PartitionInfo
	version uint64
}

// NewMap derives the partition assignment from a topology: partitions
// round-robin over the sorted node list, each one's replicas on the
// consecutive nodes after its leader. Deterministic, so every process
// that agrees on the Topology agrees on the Map.
func NewMap(t Topology) (*Map, error) {
	if t.Partitions < 1 {
		return nil, fmt.Errorf("cluster: partitions must be >= 1, got %d", t.Partitions)
	}
	if t.Replicas < 1 {
		return nil, fmt.Errorf("cluster: replicas must be >= 1, got %d", t.Replicas)
	}
	if len(t.Nodes) == 0 {
		return nil, errors.New("cluster: topology has no nodes")
	}
	nodes := append([]string(nil), t.Nodes...)
	sort.Strings(nodes)
	for i := 1; i < len(nodes); i++ {
		if nodes[i] == nodes[i-1] {
			return nil, fmt.Errorf("cluster: duplicate node id %q", nodes[i])
		}
	}
	if t.Replicas > len(nodes) {
		return nil, fmt.Errorf("cluster: %d replicas but only %d nodes", t.Replicas, len(nodes))
	}
	m := &Map{nodes: nodes, parts: make([]PartitionInfo, t.Partitions), version: 1}
	for p := range m.parts {
		info := PartitionInfo{Leader: nodes[p%len(nodes)], Epoch: 1}
		for j := 1; j < t.Replicas; j++ {
			info.Followers = append(info.Followers, nodes[(p+j)%len(nodes)])
		}
		m.parts[p] = info
	}
	return m, nil
}

// Nodes returns the sorted node ids.
func (m *Map) Nodes() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]string(nil), m.nodes...)
}

// Partitions returns the partition count.
func (m *Map) Partitions() int { return len(m.parts) }

// PartitionOf hashes a key (entity id or series device) to its
// partition.
func (m *Map) PartitionOf(key string) int {
	return shardhash.Index(len(m.parts), key)
}

// Version increments on every mutation; pollers use it to notice
// promotions cheaply.
func (m *Map) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// Info returns a copy of one partition's ownership.
func (m *Map) Info(p int) PartitionInfo {
	m.mu.RLock()
	defer m.mu.RUnlock()
	info := m.parts[p]
	info.Followers = append([]string(nil), info.Followers...)
	return info
}

// Leader returns a partition's leader and epoch.
func (m *Map) Leader(p int) (string, uint64) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.parts[p].Leader, m.parts[p].Epoch
}

// Epoch returns a partition's fencing epoch.
func (m *Map) Epoch(p int) uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.parts[p].Epoch
}

// LedBy returns the sorted partitions the node currently leads.
func (m *Map) LedBy(node string) []int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []int
	for p := range m.parts {
		if m.parts[p].Leader == node {
			out = append(out, p)
		}
	}
	return out
}

// FollowedBy returns, per leader id, the sorted partitions the node
// follows under that leader. This is the follower manager's work list:
// one replication session per (leader, this node) pair.
func (m *Map) FollowedBy(node string) map[string][]int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string][]int)
	for p := range m.parts {
		for _, f := range m.parts[p].Followers {
			if f == node {
				out[m.parts[p].Leader] = append(out[m.parts[p].Leader], p)
			}
		}
	}
	return out
}

// Promote makes newLeader the partition's leader and bumps the epoch —
// the fencing term. The old leader joins the follower set (it may be
// dead; a dead follower is just a session that never connects), the new
// leader leaves it, and any replacements are added so the replica count
// survives losing a node. Promote does not check that newLeader was the
// most caught-up follower; the caller (harness or operator) chooses.
func (m *Map) Promote(p int, newLeader string, replacements ...string) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	info := &m.parts[p]
	if info.Leader == newLeader {
		return info.Epoch, nil
	}
	known := false
	for _, n := range m.nodes {
		if n == newLeader {
			known = true
			break
		}
	}
	if !known {
		return 0, fmt.Errorf("cluster: promote: unknown node %q", newLeader)
	}
	set := map[string]bool{info.Leader: true}
	for _, f := range info.Followers {
		set[f] = true
	}
	for _, r := range replacements {
		set[r] = true
	}
	delete(set, newLeader)
	followers := make([]string, 0, len(set))
	for f := range set {
		followers = append(followers, f)
	}
	sort.Strings(followers)
	info.Leader = newLeader
	info.Followers = followers
	info.Epoch++
	m.version++
	return info.Epoch, nil
}

// ReplaceFollower swaps one follower for another without a leadership
// change — the repair move for a partition whose LEADER survived a node
// loss but whose follower set did not. No epoch bump: leadership is
// unchanged, so no fencing is needed; the version bump alone makes the
// follower managers reconcile. Replacing a follower with the current
// leader or an unknown node is rejected.
func (m *Map) ReplaceFollower(p int, old, repl string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	info := &m.parts[p]
	if repl == info.Leader {
		return fmt.Errorf("cluster: replace: %q already leads partition %d", repl, p)
	}
	known := false
	for _, n := range m.nodes {
		if n == repl {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("cluster: replace: unknown node %q", repl)
	}
	for _, f := range info.Followers {
		if f == repl {
			return fmt.Errorf("cluster: replace: %q already follows partition %d", repl, p)
		}
	}
	for i, f := range info.Followers {
		if f == old {
			info.Followers[i] = repl
			sort.Strings(info.Followers)
			m.version++
			return nil
		}
	}
	return fmt.Errorf("cluster: replace: %q does not follow partition %d", old, p)
}

// Bump adopts an observed higher epoch for a partition (fencing
// feedback: some peer has seen a promotion this Map hasn't). The local
// leader entry is left alone — the node only knows it is deposed, not
// who won — so Leader() consumers must treat a bumped epoch with an
// unchanged leader as "unknown"; the write path does, via ErrFenced.
func (m *Map) Bump(p int, epoch uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if epoch > m.parts[p].Epoch {
		m.parts[p].Epoch = epoch
		m.version++
	}
}

// ParsePeers parses the swampd -cluster-peers syntax:
// "id=host:port,id2=host2:port2". Whitespace around entries is ignored.
func ParsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=host:port)", part)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		out[id] = addr
	}
	return out, nil
}
