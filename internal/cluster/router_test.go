package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
)

func newRouterCluster(t *testing.T) (*testCluster, []string) {
	t.Helper()
	ids := []string{"n1", "n2", "n3"}
	dirs := map[string]string{"n1": t.TempDir(), "n2": t.TempDir(), "n3": t.TempDir()}
	tc := newTestCluster(t, ids, dirs, clusterOpts{partitions: 9, replicas: 2, minISR: 0})
	t.Cleanup(tc.closeAll)
	return tc, ids
}

// TestRouterWriteRouting: writes through any node's router land on the
// key's owning leader, wherever the request entered.
func TestRouterWriteRouting(t *testing.T) {
	tc, ids := newRouterCluster(t)
	entry := tc.member("n3").router

	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("urn:rt:%03d", i)
		if err := entry.UpdateAttrs("", id, "Device", attrsOf(float64(i))); err != nil {
			t.Fatalf("routed write %s: %v", id, err)
		}
	}
	// Each entity lives on its owner (and only its owner, with minISR=0
	// followers may lag — so check the owner's local store directly).
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("urn:rt:%03d", i)
		owner, _ := tc.m.Leader(tc.m.PartitionOf(id))
		if _, err := tc.member(owner).plat.ctx.GetEntity(id); err != nil {
			t.Fatalf("entity %s missing on owner %s: %v", id, owner, err)
		}
	}
	// Reads route too: any entry node finds any entity.
	for _, nid := range ids {
		e, err := tc.member(nid).router.GetEntity("", "urn:rt:017")
		if err != nil || e.Attrs["level"].Value != 17.0 {
			t.Fatalf("routed read via %s: e=%+v err=%v", nid, e, err)
		}
	}
	// Missing ids map back to ngsi.ErrNotFound across the wire.
	for _, nid := range ids {
		if _, err := tc.member(nid).router.GetEntity("", "urn:rt:nope"); !errors.Is(err, ngsi.ErrNotFound) {
			t.Fatalf("missing entity via %s: err=%v, want ErrNotFound", nid, err)
		}
	}
	// Routed delete.
	if err := tc.member("n1").router.DeleteEntity("", "urn:rt:017"); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.member("n2").router.GetEntity("", "urn:rt:017"); !errors.Is(err, ngsi.ErrNotFound) {
		t.Fatalf("deleted entity still readable: %v", err)
	}
}

// TestRouterScatterGather: list queries fan out to every leader and the
// merged result preserves global ordering, offset/limit, and exact
// counts — the same answer a single node would give.
func TestRouterScatterGather(t *testing.T) {
	tc, ids := newRouterCluster(t)
	entry := tc.member("n1").router

	const n = 40
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("urn:sg:%03d", i)
		if err := entry.UpdateAttrs("", id, "Device", attrsOf(float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	// Ordered page with offset, exact count.
	res, err := entry.Query("", ngsi.Query{
		IDPattern: "urn:sg:*", OrderBy: ngsi.OrderByID, Limit: 10, Offset: 5, Count: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != n {
		t.Fatalf("total = %d, want %d", res.Total, n)
	}
	if len(res.Entities) != 10 {
		t.Fatalf("page size = %d, want 10", len(res.Entities))
	}
	for i, e := range res.Entities {
		want := fmt.Sprintf("urn:sg:%03d", i+5)
		if e.ID != want {
			t.Fatalf("page[%d] = %s, want %s", i, e.ID, want)
		}
	}

	// Same answer from every entry node.
	for _, nid := range ids {
		r2, err := tc.member(nid).router.Query("", ngsi.Query{
			IDPattern: "urn:sg:*", OrderBy: ngsi.OrderByID, Limit: 10, Offset: 5, Count: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(r2.Entities) != 10 || r2.Total != n || r2.Entities[0].ID != "urn:sg:005" {
			t.Fatalf("entry %s: len=%d total=%d first=%s", nid, len(r2.Entities), r2.Total, r2.Entities[0].ID)
		}
	}

	// Unordered limit honours the cap; count stays exact.
	res, err = entry.Query("", ngsi.Query{IDPattern: "urn:sg:*", Limit: 7, Count: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entities) != 7 || res.Total != n {
		t.Fatalf("unordered: len=%d total=%d", len(res.Entities), res.Total)
	}

	// Attribute ordering with reversal crosses partitions correctly.
	res, err = entry.Query("", ngsi.Query{IDPattern: "urn:sg:*", OrderBy: "!level", Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entities) != 3 || res.Entities[0].ID != fmt.Sprintf("urn:sg:%03d", n-1) {
		t.Fatalf("reverse attr order: %+v", res.Entities)
	}
	// No count requested → Total is -1.
	if res.Total != -1 {
		t.Fatalf("total without count = %d, want -1", res.Total)
	}

	// Offset past the result set yields an empty page, not an error.
	res, err = entry.Query("", ngsi.Query{IDPattern: "urn:sg:*", OrderBy: ngsi.OrderByID, Limit: 10, Offset: n + 5})
	if err != nil || len(res.Entities) != 0 {
		t.Fatalf("past-end page: len=%d err=%v", len(res.Entities), err)
	}
}

// TestRouterBatchAndTelemetry: batched entity updates and telemetry
// appends split by owner, and series reads route to the owning leader.
func TestRouterBatchAndTelemetry(t *testing.T) {
	tc, ids := newRouterCluster(t)
	entry := tc.member("n2").router

	batch := make(map[string]ngsi.BatchEntry)
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("urn:bt:%03d", i)
		batch[id] = ngsi.BatchEntry{Type: "Device", Attrs: attrsOf(float64(i))}
	}
	if err := entry.BatchUpdate("", batch); err != nil {
		t.Fatal(err)
	}
	for id := range batch {
		owner, _ := tc.m.Leader(tc.m.PartitionOf(id))
		if _, err := tc.member(owner).plat.ctx.GetEntity(id); err != nil {
			t.Fatalf("batched entity %s missing on owner: %v", id, err)
		}
	}

	at := time.Now().Truncate(time.Second)
	var pts []timeseries.BatchPoint
	for i := 0; i < 20; i++ {
		key := timeseries.SeriesKey{Device: fmt.Sprintf("urn:bt:%03d", i), Quantity: "moisture"}
		for j := 0; j < 5; j++ {
			pts = append(pts, timeseries.BatchPoint{
				Key:   key,
				Point: timeseries.Point{At: at.Add(time.Duration(j) * time.Minute), Value: float64(i*10 + j)},
			})
		}
	}
	accepted, rejected, err := entry.AppendBatch(pts)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != len(pts) || rejected != 0 {
		t.Fatalf("append: accepted=%d rejected=%d", accepted, rejected)
	}

	// Aggregates route to the owner regardless of entry node.
	for _, nid := range ids {
		agg, err := tc.member(nid).router.Summary("", "urn:bt:007", "moisture", at.Add(-time.Hour), at.Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		if agg.Count != 5 || agg.Min != 70 || agg.Max != 74 {
			t.Fatalf("summary via %s: %+v", nid, agg)
		}
		wins, err := tc.member(nid).router.Windows("", "urn:bt:007", "moisture", at.Add(-time.Minute), at.Add(5*time.Minute), 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, w := range wins {
			sum += w.Count
		}
		if sum != 5 {
			t.Fatalf("windows via %s sum to %d points: %+v", nid, sum, wins)
		}
	}
}
