package cluster

import (
	"encoding/binary"
	"errors"

	"github.com/swamp-project/swamp/internal/wal"
)

// Wire format: one message per transport frame, first byte the message
// type, the rest uvarint/length-prefixed fields. Records travel with
// their full typed body (type, codec, interned strings, payload) so the
// follower can hand them to the standard decoders unchanged.
const (
	msgHello   byte = iota + 1 // follower → leader: open a session
	msgWelcome                 // leader → follower: granted partitions + mode
	msgSnapRec                 // leader → follower: one bootstrap snapshot record
	msgSnapEnd                 // leader → follower: snapshot done (count, boundary)
	msgRecord                  // leader → follower: one log record (or position-only skip)
	msgAck                     // follower → leader: applied through Pos
	msgFence                   // either → peer: partition has a higher epoch
	msgReq                     // client → node: routed read/write request
	msgResp                    // node → client: reply
)

// Welcome modes.
const (
	modeResume   byte = 1 // catch-up from the hello's resume position
	modeSnapshot byte = 2 // full bootstrap: wipe, install snapshot, then tail
)

// Routed request kinds (msgReq bodies are JSON).
const (
	reqQuery byte = iota + 1
	reqGet
	reqUpdateAttrs
	reqBatchUpdate
	reqDelete
	reqAppend
	reqSummary
	reqWindows
)

// recSkip marks a msgRecord that carries only a position: the record was
// filtered out of this session (wrong partition, or a non-replicated
// type such as a subscription), but the position must still advance so
// acks stay comparable across sessions.
const recSkip byte = 1

var errShortFrame = errors.New("cluster: short or corrupt frame")

// partEpoch pairs a partition with its fencing epoch.
type partEpoch struct {
	Part  int
	Epoch uint64
}

type helloMsg struct {
	Node   string
	Resume wal.Pos // last applied position; zero requests a bootstrap
	Parts  []partEpoch
}

type welcomeMsg struct {
	Mode     byte
	Boundary uint64 // snapshot boundary when Mode == modeSnapshot
	Parts    []partEpoch
}

type recordMsg struct {
	Prev wal.Pos // position of the previous record in this session's stream
	Pos  wal.Pos
	Skip bool
	Rec  wal.Record
}

type snapEndMsg struct {
	Count    uint64
	Boundary uint64
}

type ackMsg struct {
	Pos   wal.Pos
	Count uint64 // session-scoped processed-record count, for lag gauges
}

type fenceMsg struct {
	Part  int
	Epoch uint64
}

type reqMsg struct {
	ID   uint64
	Kind byte
	Body []byte
}

type respMsg struct {
	ID   uint64
	Err  string
	Body []byte
}

// --- encoding ---

func putUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func putString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func putBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func putPos(b []byte, p wal.Pos) []byte {
	b = binary.AppendUvarint(b, p.Seg)
	return binary.AppendUvarint(b, p.Rec)
}

func putParts(b []byte, parts []partEpoch) []byte {
	b = binary.AppendUvarint(b, uint64(len(parts)))
	for _, pe := range parts {
		b = binary.AppendUvarint(b, uint64(pe.Part))
		b = binary.AppendUvarint(b, pe.Epoch)
	}
	return b
}

func putRecord(b []byte, rec wal.Record) []byte {
	b = append(b, byte(rec.Type), byte(rec.Codec))
	b = binary.AppendUvarint(b, uint64(len(rec.Strings)))
	for _, s := range rec.Strings {
		b = putString(b, s)
	}
	return putBytes(b, rec.Payload)
}

func encodeHello(buf []byte, h helloMsg) []byte {
	buf = append(buf[:0], msgHello)
	buf = putString(buf, h.Node)
	buf = putPos(buf, h.Resume)
	return putParts(buf, h.Parts)
}

func encodeWelcome(buf []byte, w welcomeMsg) []byte {
	buf = append(buf[:0], msgWelcome, w.Mode)
	buf = putUvarint(buf, w.Boundary)
	return putParts(buf, w.Parts)
}

func encodeSnapRec(buf []byte, rec wal.Record) []byte {
	return putRecord(append(buf[:0], msgSnapRec), rec)
}

func encodeSnapEnd(buf []byte, e snapEndMsg) []byte {
	buf = append(buf[:0], msgSnapEnd)
	buf = putUvarint(buf, e.Count)
	return putUvarint(buf, e.Boundary)
}

func encodeRecord(buf []byte, r recordMsg) []byte {
	flags := byte(0)
	if r.Skip {
		flags = recSkip
	}
	buf = append(buf[:0], msgRecord, flags)
	buf = putPos(buf, r.Prev)
	buf = putPos(buf, r.Pos)
	if !r.Skip {
		buf = putRecord(buf, r.Rec)
	}
	return buf
}

func encodeAck(buf []byte, a ackMsg) []byte {
	buf = putPos(append(buf[:0], msgAck), a.Pos)
	return putUvarint(buf, a.Count)
}

func encodeFence(buf []byte, f fenceMsg) []byte {
	buf = putUvarint(append(buf[:0], msgFence), uint64(f.Part))
	return putUvarint(buf, f.Epoch)
}

func encodeReq(buf []byte, r reqMsg) []byte {
	buf = putUvarint(append(buf[:0], msgReq), r.ID)
	buf = append(buf, r.Kind)
	return putBytes(buf, r.Body)
}

func encodeResp(buf []byte, r respMsg) []byte {
	buf = putUvarint(append(buf[:0], msgResp), r.ID)
	buf = putString(buf, r.Err)
	return putBytes(buf, r.Body)
}

// --- decoding ---

// wbuf is a cursor over one frame body; the first decode error sticks
// and every later read returns zero values, so message parsers can read
// field-by-field and check err once.
type wbuf struct {
	b   []byte
	err error
}

func (r *wbuf) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = errShortFrame
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wbuf) byte1() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.err = errShortFrame
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wbuf) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.err = errShortFrame
		return nil
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v
}

func (r *wbuf) str() string { return string(r.bytes()) }

func (r *wbuf) pos() wal.Pos { return wal.Pos{Seg: r.uvarint(), Rec: r.uvarint()} }

func (r *wbuf) parts() []partEpoch {
	n := r.uvarint()
	if r.err != nil || n > 1<<20 {
		if n > 1<<20 {
			r.err = errShortFrame
		}
		return nil
	}
	out := make([]partEpoch, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, partEpoch{Part: int(r.uvarint()), Epoch: r.uvarint()})
	}
	return out
}

func (r *wbuf) record() wal.Record {
	rec := wal.Record{Type: wal.Type(r.byte1()), Codec: wal.Codec(r.byte1())}
	n := r.uvarint()
	if r.err != nil || n > 1<<20 {
		if n > 1<<20 {
			r.err = errShortFrame
		}
		return wal.Record{}
	}
	if n > 0 {
		rec.Strings = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			rec.Strings = append(rec.Strings, r.str())
		}
	}
	rec.Payload = r.bytes()
	return rec
}

func decodeHello(b []byte) (helloMsg, error) {
	r := wbuf{b: b}
	h := helloMsg{Node: r.str(), Resume: r.pos(), Parts: r.parts()}
	return h, r.err
}

func decodeWelcome(b []byte) (welcomeMsg, error) {
	r := wbuf{b: b}
	w := welcomeMsg{Mode: r.byte1(), Boundary: r.uvarint(), Parts: r.parts()}
	return w, r.err
}

func decodeSnapRec(b []byte) (wal.Record, error) {
	r := wbuf{b: b}
	rec := r.record()
	return rec, r.err
}

func decodeSnapEnd(b []byte) (snapEndMsg, error) {
	r := wbuf{b: b}
	e := snapEndMsg{Count: r.uvarint(), Boundary: r.uvarint()}
	return e, r.err
}

func decodeRecord(b []byte) (recordMsg, error) {
	r := wbuf{b: b}
	m := recordMsg{}
	flags := r.byte1()
	m.Prev = r.pos()
	m.Pos = r.pos()
	m.Skip = flags&recSkip != 0
	if !m.Skip {
		m.Rec = r.record()
	}
	return m, r.err
}

func decodeAck(b []byte) (ackMsg, error) {
	r := wbuf{b: b}
	a := ackMsg{Pos: r.pos(), Count: r.uvarint()}
	return a, r.err
}

func decodeFence(b []byte) (fenceMsg, error) {
	r := wbuf{b: b}
	f := fenceMsg{Part: int(r.uvarint()), Epoch: r.uvarint()}
	return f, r.err
}

func decodeReq(b []byte) (reqMsg, error) {
	r := wbuf{b: b}
	m := reqMsg{ID: r.uvarint(), Kind: r.byte1(), Body: r.bytes()}
	return m, r.err
}

func decodeResp(b []byte) (respMsg, error) {
	r := wbuf{b: b}
	m := respMsg{ID: r.uvarint(), Err: r.str(), Body: r.bytes()}
	return m, r.err
}

func frameType(frame []byte) (byte, []byte, error) {
	if len(frame) < 1 {
		return 0, nil, errShortFrame
	}
	return frame[0], frame[1:], nil
}
