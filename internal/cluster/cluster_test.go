package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
	"github.com/swamp-project/swamp/internal/wal"
)

// --- harness: a minimal durable platform per node, clustered over pipes ---

// testPlat is the slice of a platform the cluster plane needs: broker +
// store + WAL with journals attached, and a snapshot hook — the same
// wiring core.OpenDurability does, minus subscriptions.
type testPlat struct {
	ctx   *ngsi.Broker
	store *timeseries.Store
	wm    *wal.Manager
	snaps atomic.Int64 // snapshot invocations, to tell resume from bootstrap
}

func openPlat(t *testing.T, dir string) *testPlat {
	t.Helper()
	p := &testPlat{
		ctx:   ngsi.NewBroker(ngsi.BrokerConfig{}),
		store: timeseries.New(),
	}
	m, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	p.wm = m
	if _, err := m.Recover(p.applyRec); err != nil {
		t.Fatal(err)
	}
	p.ctx.SetJournal(m.ContextJournal())
	p.store.SetJournal(m.TelemetryJournal())
	return p
}

func (p *testPlat) applyRec(rec wal.Record) error {
	switch rec.Type {
	case wal.TypeEntityUpsert:
		e, err := wal.DecodeEntityUpsert(rec)
		if err != nil {
			return err
		}
		return p.ctx.UpsertEntity(e)
	case wal.TypeEntityMerge:
		entries, err := wal.DecodeEntityMerge(rec)
		if err != nil {
			return err
		}
		for _, en := range entries {
			if err := p.ctx.UpdateAttrs(en.ID, en.Type, en.Attrs); err != nil {
				return err
			}
		}
		return nil
	case wal.TypeEntityDelete:
		id, err := wal.DecodeID(rec)
		if err != nil {
			return err
		}
		if err := p.ctx.DeleteEntity(id); err != nil && !errors.Is(err, ngsi.ErrNotFound) {
			return err
		}
		return nil
	case wal.TypeTelemetry:
		pts, err := wal.DecodeTelemetry(rec)
		if err != nil {
			return err
		}
		_, _, err = p.store.AppendBatch(pts)
		return err
	}
	return nil
}

func (p *testPlat) snapshot() error {
	p.snaps.Add(1)
	return p.wm.Snapshot(func(rotate func() error, sink func(wal.Record) error) error {
		err := p.store.DumpFrozen(rotate, func(key timeseries.SeriesKey, pts []timeseries.Point) error {
			batch := make([]timeseries.BatchPoint, len(pts))
			for i, pt := range pts {
				batch[i] = timeseries.BatchPoint{Key: key, Point: pt}
			}
			rec, err := wal.EncodeTelemetry(batch)
			if err != nil {
				return err
			}
			return sink(rec)
		})
		if err != nil {
			return err
		}
		return p.ctx.DumpEntities(func(e *ngsi.Entity) error {
			rec, err := wal.EncodeEntityUpsert(e)
			if err != nil {
				return err
			}
			return sink(rec)
		})
	})
}

func (p *testPlat) close() { _ = p.wm.Close() }

// testCluster wires N nodes over in-process pipes.
type testCluster struct {
	t     *testing.T
	m     *Map
	mu    sync.Mutex
	nodes map[string]*testMember
}

type testMember struct {
	plat   *testPlat
	node   *Node
	router *Router
	alive  bool
}

type clusterOpts struct {
	partitions, replicas, minISR int
	ackTimeout                   time.Duration
}

func newTestCluster(t *testing.T, ids []string, dirs map[string]string, o clusterOpts) *testCluster {
	t.Helper()
	m, err := NewMap(Topology{Partitions: o.partitions, Replicas: o.replicas, Nodes: ids})
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{t: t, m: m, nodes: make(map[string]*testMember)}
	for _, id := range ids {
		tc.addNode(id, dirs[id], o)
	}
	return tc
}

func (tc *testCluster) addNode(id, dir string, o clusterOpts) *testMember {
	tc.t.Helper()
	plat := openPlat(tc.t, dir)
	node, err := NewNode(NodeConfig{
		ID:  id,
		Map: tc.m,
		Hooks: Hooks{
			Context:  plat.ctx,
			Store:    plat.store,
			WAL:      plat.wm,
			Snapshot: plat.snapshot,
		},
		MinISR:     o.minISR,
		AckTimeout: o.ackTimeout,
		Dial:       func(peer string) (Conn, error) { return tc.dial(peer) },
		Logf:       func(format string, args ...any) { tc.t.Logf("[%s] "+format, append([]any{id}, args...)...) },
	})
	if err != nil {
		tc.t.Fatal(err)
	}
	member := &testMember{plat: plat, node: node, router: NewRouter(node), alive: true}
	tc.mu.Lock()
	tc.nodes[id] = member
	tc.mu.Unlock()
	node.Start()
	return member
}

func (tc *testCluster) dial(peer string) (Conn, error) {
	tc.mu.Lock()
	member, ok := tc.nodes[peer]
	tc.mu.Unlock()
	if !ok || !member.alive {
		return nil, fmt.Errorf("peer %s down", peer)
	}
	a, b := Pipe(8192)
	go member.node.ServeConn(b)
	return a, nil
}

// kill severs a member abruptly: future dials fail, its node is killed.
func (tc *testCluster) kill(id string) {
	tc.mu.Lock()
	member := tc.nodes[id]
	member.alive = false
	tc.mu.Unlock()
	member.node.Kill()
}

func (tc *testCluster) stop(id string) {
	tc.mu.Lock()
	member := tc.nodes[id]
	member.alive = false
	tc.mu.Unlock()
	member.node.Close()
	member.plat.close()
}

func (tc *testCluster) closeAll() {
	tc.mu.Lock()
	ids := make([]string, 0, len(tc.nodes))
	for id, m := range tc.nodes {
		if m.alive {
			ids = append(ids, id)
		}
	}
	tc.mu.Unlock()
	for _, id := range ids {
		tc.stop(id)
	}
}

func (tc *testCluster) member(id string) *testMember {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.nodes[id]
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func attrsOf(v float64) map[string]ngsi.Attribute {
	return map[string]ngsi.Attribute{"level": {Type: "Number", Value: v}}
}

// --- Map tests ---

func TestMapAssignmentDeterministic(t *testing.T) {
	m1, err := NewMap(Topology{Partitions: 16, Replicas: 2, Nodes: []string{"c", "a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewMap(Topology{Partitions: 16, Replicas: 2, Nodes: []string{"b", "c", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 16; p++ {
		i1, i2 := m1.Info(p), m2.Info(p)
		if i1.Leader != i2.Leader || len(i1.Followers) != len(i2.Followers) {
			t.Fatalf("partition %d differs across node orderings: %+v vs %+v", p, i1, i2)
		}
		if i1.Leader == i1.Followers[0] {
			t.Fatalf("partition %d leader also a follower", p)
		}
	}
	// Each node leads a fair share.
	for _, n := range []string{"a", "b", "c"} {
		if led := len(m1.LedBy(n)); led < 4 || led > 6 {
			t.Fatalf("node %s leads %d of 16 partitions", n, led)
		}
	}
}

func TestMapPromoteAndBump(t *testing.T) {
	m, err := NewMap(Topology{Partitions: 4, Replicas: 2, Nodes: []string{"a", "b", "c"}})
	if err != nil {
		t.Fatal(err)
	}
	p := m.LedBy("a")[0]
	info := m.Info(p)
	follower := info.Followers[0]
	v := m.Version()
	epoch, err := m.Promote(p, follower, "c")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("epoch after promote = %d, want 2", epoch)
	}
	if m.Version() == v {
		t.Fatal("version did not change on promote")
	}
	after := m.Info(p)
	if after.Leader != follower {
		t.Fatalf("leader = %s, want %s", after.Leader, follower)
	}
	found := false
	for _, f := range after.Followers {
		if f == "a" {
			found = true
		}
		if f == follower {
			t.Fatal("new leader still in follower set")
		}
	}
	if !found {
		t.Fatal("old leader not demoted to follower")
	}
	// Bump adopts only higher epochs.
	m.Bump(p, 1)
	if m.Epoch(p) != 2 {
		t.Fatal("Bump regressed the epoch")
	}
	m.Bump(p, 7)
	if m.Epoch(p) != 7 {
		t.Fatal("Bump did not adopt the higher epoch")
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=host1:9301, b = host2:9301 ,c=host3:9301")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 || peers["b"] != "host2:9301" {
		t.Fatalf("peers = %v", peers)
	}
	for _, bad := range []string{"a", "=addr", "a=", "a=x,a=y"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

// --- replication end to end ---

// TestReplicationSyncAck: with MinISR=1 a write returns only after the
// follower applied it, so the follower's stores are queryable the moment
// the leader acks.
func TestReplicationSyncAck(t *testing.T) {
	ids := []string{"n1", "n2"}
	dirs := map[string]string{"n1": t.TempDir(), "n2": t.TempDir()}
	tc := newTestCluster(t, ids, dirs, clusterOpts{partitions: 8, replicas: 2, minISR: 1, ackTimeout: 5 * time.Second})
	defer tc.closeAll()

	at := time.Now()
	for i := 0; i < 24; i++ {
		id := fmt.Sprintf("urn:dev:%03d", i)
		leader, _ := tc.m.Leader(tc.m.PartitionOf(id))
		owner := tc.member(leader)
		if err := owner.node.UpdateAttrs(id, "Device", attrsOf(float64(i))); err != nil {
			t.Fatalf("write %s via %s: %v", id, leader, err)
		}
		key := timeseries.SeriesKey{Device: id, Quantity: "moisture"}
		if _, _, err := owner.node.AppendBatch([]timeseries.BatchPoint{
			{Key: key, Point: timeseries.Point{At: at.Add(time.Duration(i) * time.Second), Value: float64(i)}},
		}); err != nil {
			t.Fatalf("append %s: %v", id, err)
		}
	}

	// Every write must now be present on BOTH nodes (leader + follower).
	for i := 0; i < 24; i++ {
		id := fmt.Sprintf("urn:dev:%03d", i)
		for _, nid := range ids {
			member := tc.member(nid)
			if _, err := member.plat.ctx.GetEntity(id); err != nil {
				t.Fatalf("entity %s missing on %s: %v", id, nid, err)
			}
			key := timeseries.SeriesKey{Device: id, Quantity: "moisture"}
			pt, ok := member.plat.store.Latest(key)
			if !ok || pt.Value != float64(i) {
				t.Fatalf("series %s on %s: ok=%v pt=%+v", id, nid, ok, pt)
			}
		}
	}

	// Deletes replicate too.
	victim := "urn:dev:000"
	leader, _ := tc.m.Leader(tc.m.PartitionOf(victim))
	if err := tc.member(leader).node.DeleteEntity(victim); err != nil {
		t.Fatal(err)
	}
	for _, nid := range ids {
		if _, err := tc.member(nid).plat.ctx.GetEntity(victim); !errors.Is(err, ngsi.ErrNotFound) {
			t.Fatalf("deleted entity still on %s (err=%v)", nid, err)
		}
	}
}

// TestNotLeaderRejected: writes routed to a non-leader bounce with
// ErrNotLeader instead of applying locally.
func TestNotLeaderRejected(t *testing.T) {
	ids := []string{"n1", "n2"}
	dirs := map[string]string{"n1": t.TempDir(), "n2": t.TempDir()}
	tc := newTestCluster(t, ids, dirs, clusterOpts{partitions: 8, replicas: 2, minISR: 0})
	defer tc.closeAll()

	id := "urn:dev:001"
	leader, _ := tc.m.Leader(tc.m.PartitionOf(id))
	wrong := "n1"
	if leader == "n1" {
		wrong = "n2"
	}
	err := tc.member(wrong).node.UpdateAttrs(id, "Device", attrsOf(1))
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
	if _, err := tc.member(wrong).plat.ctx.GetEntity(id); !errors.Is(err, ngsi.ErrNotFound) {
		t.Fatal("rejected write leaked into the store")
	}
}

// TestAckTimeoutWhenFollowerDown: with MinISR=1 and no live follower the
// write stays locally durable but reports ErrAckTimeout.
func TestAckTimeoutWhenFollowerDown(t *testing.T) {
	ids := []string{"n1", "n2"}
	dirs := map[string]string{"n1": t.TempDir(), "n2": t.TempDir()}
	tc := newTestCluster(t, ids, dirs, clusterOpts{partitions: 4, replicas: 2, minISR: 1, ackTimeout: 200 * time.Millisecond})
	defer tc.closeAll()

	id := "urn:dev:042"
	leader, _ := tc.m.Leader(tc.m.PartitionOf(id))
	other := "n1"
	if leader == "n1" {
		other = "n2"
	}
	tc.kill(other)
	// Give the leader a moment to notice the dead sessions.
	time.Sleep(50 * time.Millisecond)
	err := tc.member(leader).node.UpdateAttrs(id, "Device", attrsOf(1))
	if !errors.Is(err, ErrAckTimeout) {
		t.Fatalf("err = %v, want ErrAckTimeout", err)
	}
	// Locally durable regardless: the record is in the leader's WAL.
	if _, err := tc.member(leader).plat.ctx.GetEntity(id); err != nil {
		t.Fatal("write not applied locally")
	}
}

// TestPromotionZeroAckedLoss is the in-process drill: kill the leader
// mid-stream, promote a follower, and verify every acked write survived.
func TestPromotionZeroAckedLoss(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	dirs := map[string]string{"n1": t.TempDir(), "n2": t.TempDir(), "n3": t.TempDir()}
	tc := newTestCluster(t, ids, dirs, clusterOpts{partitions: 9, replicas: 2, minISR: 1, ackTimeout: 5 * time.Second})
	defer tc.closeAll()

	victim := "n1"
	acked := make(map[string]float64)
	write := func(i int) {
		id := fmt.Sprintf("urn:drill:%03d", i)
		leader, _ := tc.m.Leader(tc.m.PartitionOf(id))
		if err := tc.member(leader).node.UpdateAttrs(id, "Device", attrsOf(float64(i))); err == nil {
			acked[id] = float64(i)
		}
	}
	for i := 0; i < 60; i++ {
		write(i)
	}
	if len(acked) != 60 {
		t.Fatalf("only %d/60 pre-kill writes acked", len(acked))
	}

	// Kill the victim and promote each of its partitions to a follower,
	// backfilling the replica count from the survivors.
	tc.kill(victim)
	promoted := 0
	for _, p := range tc.m.LedBy(victim) {
		info := tc.m.Info(p)
		newLeader := ""
		for _, f := range info.Followers {
			if f != victim {
				newLeader = f
				break
			}
		}
		if newLeader == "" {
			t.Fatalf("partition %d has no surviving follower", p)
		}
		replacement := "n2"
		if newLeader == "n2" {
			replacement = "n3"
		}
		epoch, err := tc.m.Promote(p, newLeader, replacement)
		if err != nil {
			t.Fatal(err)
		}
		if epoch != 2 {
			t.Fatalf("partition %d epoch = %d after promotion, want 2", p, epoch)
		}
		promoted++
	}
	if promoted == 0 {
		t.Fatal("victim led no partitions")
	}
	// Partitions the victim FOLLOWED also need repair: their leader
	// survived, but it cannot meet MinISR again without a new follower.
	// (Skip partitions that already have a live replacement, e.g. the
	// just-promoted ones where the victim sits in the follower set only
	// as the demoted ex-leader.)
	for leader, parts := range tc.m.FollowedBy(victim) {
		for _, p := range parts {
			info := tc.m.Info(p)
			repl := ""
			for _, cand := range []string{"n2", "n3"} {
				if cand == leader {
					continue
				}
				already := false
				for _, f := range info.Followers {
					if f == cand {
						already = true
					}
				}
				if !already {
					repl = cand
					break
				}
			}
			if repl == "" {
				continue // a live follower already covers this partition
			}
			if err := tc.m.ReplaceFollower(p, victim, repl); err != nil {
				t.Fatalf("replace follower for partition %d: %v", p, err)
			}
		}
	}

	// Ingest continues: retry each write against the current map until
	// the new leaders accept (replacement followers need a beat to sync).
	for i := 60; i < 120; i++ {
		id := fmt.Sprintf("urn:drill:%03d", i)
		waitFor(t, "post-promotion write "+id, func() bool {
			leader, _ := tc.m.Leader(tc.m.PartitionOf(id))
			if leader == victim {
				t.Fatalf("map still routes %s to the dead victim", id)
			}
			err := tc.member(leader).node.UpdateAttrs(id, "Device", attrsOf(float64(i)))
			if err == nil {
				acked[id] = float64(i)
				return true
			}
			return false
		})
	}

	// Zero acked-write loss: every acked entity is on its current leader.
	lost := 0
	for id, want := range acked {
		leader, _ := tc.m.Leader(tc.m.PartitionOf(id))
		e, err := tc.member(leader).plat.ctx.GetEntity(id)
		if err != nil {
			lost++
			continue
		}
		if v, ok := e.Attrs["level"]; !ok || v.Value != want {
			t.Fatalf("entity %s has wrong value %v", id, e.Attrs["level"].Value)
		}
	}
	if lost != 0 {
		t.Fatalf("%d acked writes lost after promotion", lost)
	}
}

// TestFencingRejectsDeposedLeader: a hello carrying a higher epoch fences
// the stale leader — its writes fail with ErrFenced even though its own
// map still names it leader.
func TestFencingRejectsDeposedLeader(t *testing.T) {
	ids := []string{"n1", "n2"}
	dirs := map[string]string{"n1": t.TempDir(), "n2": t.TempDir()}
	tc := newTestCluster(t, ids, dirs, clusterOpts{partitions: 4, replicas: 2, minISR: 0})
	defer tc.closeAll()

	leaderID := "n1"
	p := tc.m.LedBy(leaderID)[0]
	member := tc.member(leaderID)

	// A peer that has seen epoch 5 for p introduces itself.
	a, b := Pipe(64)
	go member.node.ServeConn(b)
	if err := a.Send(encodeHello(nil, helloMsg{Node: "time-traveller", Parts: []partEpoch{{Part: p, Epoch: 5}}})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fence to land", func() bool {
		_, fenced := member.node.repl.fencedEpoch(p)
		return fenced
	})
	a.Close()

	// Pick an id hashing into the fenced partition.
	id := ""
	for i := 0; i < 10000; i++ {
		cand := fmt.Sprintf("urn:fence:%04d", i)
		if tc.m.PartitionOf(cand) == p {
			id = cand
			break
		}
	}
	if id == "" {
		t.Fatal("no id hashed into partition")
	}
	err := member.node.UpdateAttrs(id, "Device", attrsOf(1))
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
	// The epoch was adopted into the map.
	if tc.m.Epoch(p) != 5 {
		t.Fatalf("map epoch = %d, want 5", tc.m.Epoch(p))
	}
	// Other partitions are unaffected.
	otherID := "urn:fence:other"
	for i := 0; tc.m.PartitionOf(otherID) == p; i++ {
		otherID = fmt.Sprintf("urn:fence:other:%d", i)
	}
	otherLeader, _ := tc.m.Leader(tc.m.PartitionOf(otherID))
	if err := tc.member(otherLeader).node.UpdateAttrs(otherID, "Device", attrsOf(2)); err != nil {
		t.Fatalf("unfenced partition write failed: %v", err)
	}
}

// TestReadyLagGate: ReadyLag trips when a follower session trails by
// more than the threshold.
func TestReadyLagGate(t *testing.T) {
	ids := []string{"n1", "n2"}
	dirs := map[string]string{"n1": t.TempDir(), "n2": t.TempDir()}
	tc := newTestCluster(t, ids, dirs, clusterOpts{partitions: 4, replicas: 2, minISR: 1, ackTimeout: 5 * time.Second})
	defer tc.closeAll()

	id := "urn:lag:1"
	leader, _ := tc.m.Leader(tc.m.PartitionOf(id))
	member := tc.member(leader)
	if err := member.node.UpdateAttrs(id, "Device", attrsOf(1)); err != nil {
		t.Fatal(err)
	}
	// Healthy: acked through the watermark, lag 0.
	if err := member.node.ReadyLag(1000); err != nil {
		t.Fatalf("ReadyLag on healthy node: %v", err)
	}
	st := member.node.Status()
	if st.PartsLed == 0 || len(st.Sessions) == 0 {
		t.Fatalf("status = %+v", st)
	}
	// maxLag <= 0 disables the gate.
	if err := member.node.ReadyLag(0); err != nil {
		t.Fatal("disabled gate tripped")
	}
}
