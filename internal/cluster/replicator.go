package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/wal"
)

// errStopStream is the sentinel a catch-up replay returns to stop a
// segment scan at the live boundary (records past it arrive through the
// live queue instead).
var errStopStream = errors.New("cluster: stop streaming")

// liveEntry is one committed record on its way to follower sessions. The
// partition set is computed at most once, shared by every session.
type liveEntry struct {
	rec   wal.Record
	pos   wal.Pos
	once  sync.Once
	parts []int
}

func (e *liveEntry) partsOf(n *Node) []int {
	e.once.Do(func() { e.parts = n.recordParts(e.rec) })
	return e.parts
}

// session is one leader→follower replication stream.
type session struct {
	r        *replicator
	conn     Conn
	follower string
	parts    map[int]uint64 // granted partition → epoch at grant time
	live     chan *liveEntry
	dead     chan struct{}
	deadOnce sync.Once

	// guarded by r.mu:
	acked      wal.Pos
	sentCount  uint64
	ackedCount uint64
}

func (s *session) markDead() { s.deadOnce.Do(func() { close(s.dead) }) }

func (s *session) isDead() bool {
	select {
	case <-s.dead:
		return true
	default:
		return false
	}
}

func (s *session) covers(p int) bool { _, ok := s.parts[p]; return ok }

// overlaps reports whether any of a record's partitions is granted to
// this session. Empty parts (non-replicated record types) never overlap.
func (s *session) overlaps(parts []int) bool {
	for _, p := range parts {
		if s.covers(p) {
			return true
		}
	}
	return false
}

func (s *session) partsList() []partEpoch {
	out := make([]partEpoch, 0, len(s.parts))
	for p, e := range s.parts {
		out = append(out, partEpoch{Part: p, Epoch: e})
	}
	return out
}

// replicator is the leader half of the node: it owns the commit
// watermark, the outbound sessions, and the fencing table.
type replicator struct {
	n    *Node
	mu   sync.Mutex
	cond *sync.Cond

	head     wal.Pos // last committed position (from the WAL hook)
	sessions map[*session]bool
	fenced   map[int]uint64 // partition → higher epoch observed
}

func newReplicator(n *Node) *replicator {
	r := &replicator{
		n:        n,
		sessions: make(map[*session]bool),
		fenced:   make(map[int]uint64),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// seedHead initialises the commit watermark from the active segment, so
// sessions opened before the first post-hook commit still catch up fully.
// Best effort: a record committed mid-scan is picked up by the hook.
func (r *replicator) seedHead() {
	w := r.n.hooks.WAL
	segs, err := w.Segments()
	if err != nil || len(segs) == 0 {
		return
	}
	active := segs[len(segs)-1]
	count := uint64(0)
	n, _, _ := wal.ReplayFile(w.SegmentPath(active), func(wal.Record) error { return nil })
	count = uint64(n)
	pos := wal.Pos{Seg: active, Rec: count}
	r.mu.Lock()
	if r.head.Less(pos) {
		r.head = pos
	}
	r.mu.Unlock()
}

// onCommit is the WAL commit hook: it runs on the committer goroutine
// after fsync, before pending writers are released. It must not block —
// live queues are buffered, and a full queue kills that session (the
// follower re-syncs) rather than stalling the log.
func (r *replicator) onCommit(rec wal.Record, pos wal.Pos) {
	e := &liveEntry{rec: rec, pos: pos}
	r.mu.Lock()
	r.head = pos
	for s := range r.sessions {
		if s.isDead() {
			continue
		}
		select {
		case s.live <- e:
		default:
			s.markDead() // overflow: slow follower, force a resync
		}
	}
	r.cond.Broadcast()
	r.mu.Unlock()
}

func (r *replicator) headPos() wal.Pos {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.head
}

// fencedEpoch reports whether a higher epoch has been observed for p.
func (r *replicator) fencedEpoch(p int) (uint64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.fenced[p]
	return e, ok
}

// startSession grants a hello's partitions, registers the session, and
// spawns its pump. Returns nil when nothing was granted (the follower
// gets an empty welcome and will retry after the map changes).
func (r *replicator) startSession(c Conn, h helloMsg) *session {
	n := r.n
	granted := make(map[int]uint64)
	for _, pe := range h.Parts {
		if pe.Part < 0 || pe.Part >= n.m.Partitions() {
			continue
		}
		leader, epoch := n.m.Leader(pe.Part)
		if pe.Epoch > epoch {
			// The follower has seen a promotion we haven't: we are
			// deposed for this partition. Adopt the epoch and fence.
			r.fence(pe.Part, pe.Epoch)
			continue
		}
		if leader != n.id {
			continue
		}
		if _, fenced := r.fencedEpoch(pe.Part); fenced {
			continue
		}
		granted[pe.Part] = epoch
	}
	if len(granted) == 0 {
		_ = c.Send(encodeWelcome(nil, welcomeMsg{Mode: modeResume}))
		return nil
	}

	mode := byte(modeResume)
	segs, err := n.hooks.WAL.Segments()
	if err != nil {
		return nil
	}
	if h.Resume.IsZero() || len(segs) == 0 || h.Resume.Seg < segs[0] {
		mode = modeSnapshot
		if n.hooks.Snapshot == nil {
			n.cfg.Logf("cluster: %s needs a bootstrap but no snapshot hook is wired", h.Node)
			return nil
		}
		oldest := uint64(0)
		if len(segs) > 0 {
			oldest = segs[0]
		}
		n.cfg.Logf("cluster: bootstrapping %s (resume %s, oldest segment %d)", h.Node, h.Resume, oldest)
	}

	select {
	case <-n.closed:
		return nil
	default:
	}
	s := &session{
		r:        r,
		conn:     c,
		follower: h.Node,
		parts:    granted,
		live:     make(chan *liveEntry, n.cfg.Window),
		dead:     make(chan struct{}),
		acked:    h.Resume,
	}
	r.mu.Lock()
	r.sessions[s] = true
	r.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		s.pump(mode, h.Resume)
	}()
	return s
}

// drop unregisters a session and severs its connection.
func (r *replicator) drop(s *session) {
	r.mu.Lock()
	delete(r.sessions, s)
	s.markDead()
	r.cond.Broadcast()
	r.mu.Unlock()
	_ = s.conn.Close()
}

func (r *replicator) closeAll() {
	r.mu.Lock()
	list := make([]*session, 0, len(r.sessions))
	for s := range r.sessions {
		list = append(list, s)
	}
	r.mu.Unlock()
	for _, s := range list {
		r.drop(s)
	}
}

// onAck records a follower's applied-through position. Acks on a session
// all of whose partitions are fenced are rejected — the deposed leader
// must not let them satisfy a waiting write.
func (r *replicator) onAck(s *session, a ackMsg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	allFenced := len(s.parts) > 0
	for p := range s.parts {
		if _, ok := r.fenced[p]; !ok {
			allFenced = false
			break
		}
	}
	if allFenced {
		if r.n.cAcksRejected != nil {
			r.n.cAcksRejected.Inc()
		}
		return
	}
	if s.acked.Less(a.Pos) {
		s.acked = a.Pos
	}
	if a.Count > s.ackedCount {
		s.ackedCount = a.Count
	}
	r.cond.Broadcast()
}

// onFence adopts a higher epoch observed by a peer.
func (r *replicator) onFence(f fenceMsg) {
	if f.Part < 0 || f.Part >= r.n.m.Partitions() {
		return
	}
	if f.Epoch <= r.n.m.Epoch(f.Part) {
		return
	}
	r.fence(f.Part, f.Epoch)
}

func (r *replicator) fence(p int, epoch uint64) {
	r.n.m.Bump(p, epoch)
	r.mu.Lock()
	if epoch > r.fenced[p] {
		r.fenced[p] = epoch
	}
	r.cond.Broadcast()
	r.mu.Unlock()
	if r.n.cFences != nil {
		r.n.cFences.Inc()
	}
	r.n.cfg.Logf("cluster: %s fenced on partition %d (epoch %d)", r.n.id, p, epoch)
}

// waitAcked blocks until minISR live sessions covering p have acked w,
// the partition is fenced (ErrFenced), or the deadline passes
// (ErrAckTimeout).
func (r *replicator) waitAcked(p int, w wal.Pos, minISR int, deadline time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	timer := time.AfterFunc(time.Until(deadline), func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer timer.Stop()
	for {
		if e, fenced := r.fenced[p]; fenced {
			return fmt.Errorf("%w: partition %d at epoch %d", ErrFenced, p, e)
		}
		count := 0
		for s := range r.sessions {
			if !s.isDead() && s.covers(p) && !s.acked.Less(w) {
				count++
			}
		}
		if count >= minISR {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("%w: partition %d position %s acked by %d/%d followers",
				ErrAckTimeout, p, w, count, minISR)
		}
		r.cond.Wait()
	}
}

func (r *replicator) sessionStatus() []SessionStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SessionStatus, 0, len(r.sessions))
	for s := range r.sessions {
		if s.isDead() {
			continue
		}
		out = append(out, SessionStatus{
			Follower: s.follower,
			Parts:    len(s.parts),
			Acked:    s.acked,
			Lag:      s.sentCount - s.ackedCount,
		})
	}
	return out
}

// --- session pump: snapshot → catch-up → live ---

// pump streams the session: an optional snapshot transfer, then the
// sealed/active segments from the resume position up to the live
// boundary, then the live commit queue. Positions chain (each record
// carries its predecessor's), so any transport loss or truncation races
// surface as a chain break on the follower, which re-syncs.
func (s *session) pump(mode byte, resume wal.Pos) {
	defer s.r.drop(s)
	n := s.r.n
	var buf []byte

	if mode == modeSnapshot {
		boundary, ok := s.streamSnapshot(&buf)
		if !ok {
			return
		}
		resume = wal.Pos{Seg: boundary, Rec: 0}
	} else {
		if s.conn.Send(encodeWelcome(buf, welcomeMsg{Mode: modeResume, Parts: s.partsList()})) != nil {
			return
		}
	}

	last := resume
	liveStart := s.r.headPos()
	if last.Less(liveStart) {
		if !s.streamSegments(&buf, &last, liveStart) {
			return
		}
	}

	for {
		select {
		case <-s.dead:
			return
		case <-n.closed:
			return
		case e := <-s.live:
			if !last.Less(e.pos) {
				continue // duplicate across the catch-up/live boundary
			}
			if !s.sendRecord(&buf, e.rec, e.partsOf(n), e.pos, &last) {
				return
			}
		}
	}
}

// streamSnapshot produces a fresh snapshot and streams its records
// (filtered to the session's partitions), ending with the count-carrying
// snapEnd. Returns the snapshot boundary segment.
func (s *session) streamSnapshot(buf *[]byte) (uint64, bool) {
	n := s.r.n
	if err := n.hooks.Snapshot(); err != nil {
		n.cfg.Logf("cluster: bootstrap snapshot for %s failed: %v", s.follower, err)
		return 0, false
	}
	boundary, ok, err := n.hooks.WAL.SnapshotSeq()
	if err != nil || !ok {
		return 0, false
	}
	if s.conn.Send(encodeWelcome(*buf, welcomeMsg{
		Mode: modeSnapshot, Boundary: boundary, Parts: s.partsList(),
	})) != nil {
		return 0, false
	}
	count := uint64(0)
	_, _, err = wal.ReplayFile(n.hooks.WAL.SnapshotPath(boundary), func(rec wal.Record) error {
		if !s.overlaps(n.recordParts(rec)) {
			return nil
		}
		count++
		*buf = encodeSnapRec(*buf, rec)
		return s.conn.Send(*buf)
	})
	if err != nil {
		return 0, false
	}
	if s.conn.Send(encodeSnapEnd(*buf, snapEndMsg{Count: count, Boundary: boundary})) != nil {
		return 0, false
	}
	return boundary, true
}

// streamSegments replays segment files from *last (exclusive) to
// liveStart (inclusive), sending each record. A torn sealed segment is
// streamed up to the tear — the same acked prefix recovery replays — and
// the scan continues with the next segment.
func (s *session) streamSegments(buf *[]byte, last *wal.Pos, liveStart wal.Pos) bool {
	n := s.r.n
	segs, err := n.hooks.WAL.Segments()
	if err != nil {
		return false
	}
	for _, seg := range segs {
		if seg < last.Seg || seg > liveStart.Seg {
			continue
		}
		idx := uint64(0)
		_, _, err := wal.ReplayFile(n.hooks.WAL.SegmentPath(seg), func(rec wal.Record) error {
			idx++
			pos := wal.Pos{Seg: seg, Rec: idx}
			if !last.Less(pos) {
				return nil // already streamed (resume inside this segment)
			}
			if liveStart.Less(pos) {
				return errStopStream // the rest arrives via the live queue
			}
			if !s.sendRecord(buf, rec, n.recordParts(rec), pos, last) {
				return errStopStream
			}
			return nil
		})
		if err != nil && !errors.Is(err, errStopStream) {
			return false
		}
		if s.isDead() {
			return false
		}
	}
	return true
}

// sendRecord ships one record (or a position-only skip when none of its
// partitions belong to this session), honouring the in-flight window.
func (s *session) sendRecord(buf *[]byte, rec wal.Record, parts []int, pos wal.Pos, last *wal.Pos) bool {
	n := s.r.n
	skip := !s.overlaps(parts)
	r := s.r
	r.mu.Lock()
	for s.sentCount-s.ackedCount >= uint64(n.cfg.Window) {
		if s.isDead() {
			r.mu.Unlock()
			return false
		}
		select {
		case <-n.closed:
			r.mu.Unlock()
			return false
		default:
		}
		r.cond.Wait()
	}
	s.sentCount++
	r.mu.Unlock()

	m := recordMsg{Prev: *last, Pos: pos, Skip: skip}
	if !skip {
		m.Rec = rec
	}
	*buf = encodeRecord(*buf, m)
	if s.conn.Send(*buf) != nil {
		return false
	}
	*last = pos
	if skip {
		if n.cSkipped != nil {
			n.cSkipped.Inc()
		}
	} else if n.cShipped != nil {
		n.cShipped.Inc()
	}
	return true
}
