package cluster

import (
	"fmt"
	"os"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
	"github.com/swamp-project/swamp/internal/wal"
)

// idsOwned generates n entity ids that hash to partitions led by the
// given node.
func idsOwned(t *testing.T, m *Map, leader, prefix string, n int) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; len(out) < n && i < 100000; i++ {
		id := fmt.Sprintf("%s%04d", prefix, i)
		if l, _ := m.Leader(m.PartitionOf(id)); l == leader {
			out = append(out, id)
		}
	}
	if len(out) < n {
		t.Fatalf("could not generate %d ids owned by %s", n, leader)
	}
	return out
}

// TestCatchUpAcrossTornSegmentTail: a leader restarts with a torn record
// at the tail of a sealed segment. Catch-up must stream the segment's
// intact prefix, skip the torn record (which was never acked), continue
// into the next segment, and hand off to the live stream with the chain
// unbroken.
func TestCatchUpAcrossTornSegmentTail(t *testing.T) {
	ids := []string{"n1", "n2"}
	dirs := map[string]string{"n1": t.TempDir(), "n2": t.TempDir()}
	opts := clusterOpts{partitions: 4, replicas: 2, minISR: 1, ackTimeout: 5 * time.Second}
	tc := newTestCluster(t, ids, dirs, opts)

	owned := idsOwned(t, tc.m, "n1", "urn:torn:", 6)
	for i, id := range owned {
		if err := tc.member("n1").node.UpdateAttrs(id, "Device", attrsOf(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	tc.closeAll()

	// Append three more upserts straight into n1's WAL (simulating writes
	// that raced a crash), then tear the last record's bytes off the
	// segment tail — it never committed, so no follower acked it.
	m, err := wal.Open(wal.Config{Dir: dirs["n1"]})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(func(wal.Record) error { return nil }); err != nil {
		t.Fatal(err)
	}
	extras := idsOwned(t, tc.m, "n1", "urn:extra:", 3)
	for i, id := range extras {
		rec, err := wal.EncodeEntityUpsert(&ngsi.Entity{ID: id, Type: "Device", Attrs: attrsOf(float64(100 + i))})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AppendWait(rec); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := m.Segments()
	if err != nil {
		t.Fatal(err)
	}
	tornPath := m.SegmentPath(segs[len(segs)-1])
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(tornPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Restart the cluster over the same directories. The follower resumes
	// from its sidecar offset, which predates the extra records.
	tc2 := newTestCluster(t, ids, dirs, opts)
	defer tc2.closeAll()

	waitFor(t, "follower to catch up across the torn segment", func() bool {
		for _, id := range extras[:2] {
			if _, err := tc2.member("n2").plat.ctx.GetEntity(id); err != nil {
				return false
			}
		}
		return true
	})
	// The torn third record must exist on neither node.
	for _, nid := range ids {
		if _, err := tc2.member(nid).plat.ctx.GetEntity(extras[2]); err == nil {
			t.Fatalf("torn record resurrected on %s", nid)
		}
	}
	// The chain survives into the live stream: a fresh acked write works.
	live := idsOwned(t, tc2.m, "n1", "urn:live:", 1)[0]
	if err := tc2.member("n1").node.UpdateAttrs(live, "Device", attrsOf(7)); err != nil {
		t.Fatalf("live write after torn catch-up: %v", err)
	}
	if _, err := tc2.member("n2").plat.ctx.GetEntity(live); err != nil {
		t.Fatal("live write not replicated after torn catch-up")
	}
}

// TestFollowerRestartResumesFromSidecar: a follower that restarts
// mid-stream resumes from its durable offset — segment replay, not a
// fresh snapshot bootstrap.
func TestFollowerRestartResumesFromSidecar(t *testing.T) {
	ids := []string{"n1", "n2"}
	dirs := map[string]string{"n1": t.TempDir(), "n2": t.TempDir()}
	opts := clusterOpts{partitions: 4, replicas: 2, minISR: 0}
	tc := newTestCluster(t, ids, dirs, opts)
	defer tc.closeAll()

	phase1 := idsOwned(t, tc.m, "n1", "urn:res1:", 12)
	for i, id := range phase1 {
		if err := tc.member("n1").node.UpdateAttrs(id, "Device", attrsOf(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "initial sync", func() bool {
		for _, id := range phase1 {
			if _, err := tc.member("n2").plat.ctx.GetEntity(id); err != nil {
				return false
			}
		}
		return true
	})

	// The snapshot counter on n1 only stops moving once cluster birth is
	// fully quiescent, and a resume is only granted for an offset at or
	// past the leader's oldest retained segment. Three birth-time events
	// race the test's precondition: the bootstrap's snapEnd persists
	// n2's offset, n1's own install snapshot (for the partitions it
	// follows from n2 — its offsets entry for n2 appears only after that
	// snapshot) truncates n1's log, and the streaming-side snapshot did
	// so too. Keep nudging live records through until both directions
	// are installed and n2 holds a resumable offset — only then is
	// "restart must not re-bootstrap" a fair assertion.
	nudge := idsOwned(t, tc.m, "n1", "urn:nudge:", 1)[0]
	waitFor(t, "quiescent birth with resumable offset on n2", func() bool {
		if err := tc.member("n1").node.UpdateAttrs(nudge, "Device", attrsOf(1)); err != nil {
			return false
		}
		if _, ok := tc.member("n1").node.fmgr.offsets().get("n2"); !ok {
			return false
		}
		off, ok := tc.member("n2").node.fmgr.offsets().get("n1")
		if !ok {
			return false
		}
		segs, err := tc.member("n1").plat.wm.Segments()
		return err == nil && len(segs) > 0 && off.Seg >= segs[0]
	})

	tc.stop("n2")

	phase2 := idsOwned(t, tc.m, "n1", "urn:res2:", 8)
	for i, id := range phase2 {
		if err := tc.member("n1").node.UpdateAttrs(id, "Device", attrsOf(float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	m2 := tc.addNode("n2", dirs["n2"], opts)
	waitFor(t, "restarted follower to catch up", func() bool {
		for _, id := range phase2 {
			if _, err := m2.plat.ctx.GetEntity(id); err != nil {
				return false
			}
		}
		return true
	})
	// Local recovery preserved phase 1 through the restart.
	for _, id := range phase1 {
		if _, err := m2.plat.ctx.GetEntity(id); err != nil {
			t.Fatalf("phase-1 entity %s lost across restart: %v", id, err)
		}
	}
	// Resume path: the restarted follower installs a snapshot (its
	// platform's snapshot hook fires at snapEnd) iff it re-bootstrapped
	// instead of resuming — the counter on the fresh platform must stay
	// zero. (Asserting on the leader's counter instead would conflate
	// this with its own birth-time install/stream snapshots.)
	if n := m2.plat.snaps.Load(); n != 0 {
		t.Fatalf("restarted follower took %d install snapshot(s): re-bootstrapped instead of resuming", n)
	}
}

// TestSnapshotSupersedesTailedSegment: while a follower is away, the
// leader snapshots and truncates the segments the follower was tailing.
// The follower's resume offset now predates the oldest segment, so it
// must discard its tail position, re-bootstrap from the newer snapshot,
// and converge without duplicating telemetry.
func TestSnapshotSupersedesTailedSegment(t *testing.T) {
	ids := []string{"n1", "n2"}
	dirs := map[string]string{"n1": t.TempDir(), "n2": t.TempDir()}
	opts := clusterOpts{partitions: 4, replicas: 2, minISR: 0}
	tc := newTestCluster(t, ids, dirs, opts)
	defer tc.closeAll()

	at := time.Now().Truncate(time.Second)
	phase1 := idsOwned(t, tc.m, "n1", "urn:snapa:", 8)
	for i, id := range phase1 {
		if err := tc.member("n1").node.UpdateAttrs(id, "Device", attrsOf(float64(i))); err != nil {
			t.Fatal(err)
		}
		key := timeseries.SeriesKey{Device: id, Quantity: "flow"}
		if _, _, err := tc.member("n1").node.AppendBatch([]timeseries.BatchPoint{
			{Key: key, Point: timeseries.Point{At: at, Value: float64(i)}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "initial sync", func() bool {
		for _, id := range phase1 {
			if _, err := tc.member("n2").plat.ctx.GetEntity(id); err != nil {
				return false
			}
		}
		return true
	})
	tc.stop("n2")

	// More writes, then a snapshot that prunes the tailed segments, then
	// a post-snapshot tail the follower must still receive.
	phase2 := idsOwned(t, tc.m, "n1", "urn:snapb:", 6)
	for i, id := range phase2 {
		if err := tc.member("n1").node.UpdateAttrs(id, "Device", attrsOf(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tc.member("n1").plat.snapshot(); err != nil {
		t.Fatal(err)
	}
	phase3 := idsOwned(t, tc.m, "n1", "urn:snapc:", 2)
	for i, id := range phase3 {
		if err := tc.member("n1").node.UpdateAttrs(id, "Device", attrsOf(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snapsBefore := tc.member("n1").plat.snaps.Load()

	m2 := tc.addNode("n2", dirs["n2"], opts)
	all := append(append(append([]string{}, phase1...), phase2...), phase3...)
	waitFor(t, "bootstrap from newer snapshot", func() bool {
		for _, id := range all {
			if _, err := m2.plat.ctx.GetEntity(id); err != nil {
				return false
			}
		}
		return true
	})
	// Bootstrap path taken: the leader cut a fresh snapshot for it.
	if after := tc.member("n1").plat.snaps.Load(); after <= snapsBefore {
		t.Fatal("follower resumed from a pruned segment instead of re-bootstrapping")
	}
	// The wipe+install must not duplicate telemetry delivered both via
	// the earlier tail and the snapshot image.
	for i, id := range phase1 {
		key := timeseries.SeriesKey{Device: id, Quantity: "flow"}
		agg := m2.plat.store.Summarize(key, at.Add(-time.Hour), at.Add(time.Hour))
		if agg.Count != 1 || agg.Sum != float64(i) {
			t.Fatalf("series %s after re-bootstrap: count=%d sum=%v", id, agg.Count, agg.Sum)
		}
	}
}
