package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/tenant"
	"github.com/swamp-project/swamp/internal/timeseries"
)

// Wire DTOs for routed requests (msgReq/msgResp bodies, JSON). The
// partition scope replaces ngsi.Query.IDFilter on the wire: the serving
// node rebuilds the filter from the shared hash, so follower copies of
// foreign partitions never leak into a scatter leg.
type wireQuery struct {
	Tenant     tenant.ID        `json:"tenant,omitempty"`
	IDPattern  string           `json:"idPattern,omitempty"`
	Type       string           `json:"type,omitempty"`
	Conditions []ngsi.Condition `json:"conditions,omitempty"`
	Attrs      []string         `json:"attrs,omitempty"`
	OrderBy    string           `json:"orderBy,omitempty"`
	Limit      int              `json:"limit,omitempty"`
	Offset     int              `json:"offset,omitempty"`
	Count      bool             `json:"count,omitempty"`
	Parts      []int            `json:"parts,omitempty"`
}

type wireQueryResult struct {
	Entities []*ngsi.Entity `json:"entities"`
	Total    int            `json:"total"`
}

type wireID struct {
	Tenant tenant.ID `json:"tenant,omitempty"`
	ID     string    `json:"id"`
}

type wireUpdate struct {
	Tenant tenant.ID                 `json:"tenant,omitempty"`
	ID     string                    `json:"id"`
	Type   string                    `json:"type"`
	Attrs  map[string]ngsi.Attribute `json:"attrs"`
}

type wireBatch struct {
	Tenant  tenant.ID                  `json:"tenant,omitempty"`
	Updates map[string]ngsi.BatchEntry `json:"updates"`
}

type wireAppend struct {
	Points []timeseries.BatchPoint `json:"points"`
}

type wireAppendResult struct {
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

type wireSeries struct {
	Tenant   tenant.ID     `json:"tenant,omitempty"`
	Device   string        `json:"device"`
	Quantity string        `json:"quantity"`
	From     time.Time     `json:"from"`
	To       time.Time     `json:"to"`
	Window   time.Duration `json:"window,omitempty"`
}

type wireWindows struct {
	Windows []timeseries.WindowAggregate `json:"windows"`
}

// partFilter builds the scatter-leg id filter for a partition subset.
func (n *Node) partFilter(parts []int) func(string) bool {
	if len(parts) == 0 {
		return nil
	}
	set := make(map[int]bool, len(parts))
	for _, p := range parts {
		set[p] = true
	}
	return func(id string) bool { return set[n.m.PartitionOf(id)] }
}

// serveReq answers one routed request on the serving node.
func (n *Node) serveReq(c Conn, rq reqMsg) {
	body, err := n.handleReq(rq.Kind, rq.Body)
	resp := respMsg{ID: rq.ID, Body: body}
	if err != nil {
		resp.Err = err.Error()
	}
	_ = c.Send(encodeResp(nil, resp))
}

func (n *Node) handleReq(kind byte, body []byte) ([]byte, error) {
	switch kind {
	case reqQuery:
		var wq wireQuery
		if err := json.Unmarshal(body, &wq); err != nil {
			return nil, err
		}
		res, err := n.hooks.Context.Query(ngsi.Query{
			IDPattern:  wq.IDPattern,
			Type:       wq.Type,
			Conditions: wq.Conditions,
			Attrs:      wq.Attrs,
			OrderBy:    wq.OrderBy,
			Limit:      wq.Limit,
			Offset:     wq.Offset,
			Count:      wq.Count,
			IDFilter:   n.partFilter(wq.Parts),
		})
		if err != nil {
			return nil, err
		}
		return json.Marshal(wireQueryResult{Entities: res.Entities, Total: res.Total})
	case reqGet:
		var w wireID
		if err := json.Unmarshal(body, &w); err != nil {
			return nil, err
		}
		e, err := n.hooks.Context.GetEntity(w.ID)
		if err != nil {
			return nil, err
		}
		return json.Marshal(e)
	case reqUpdateAttrs:
		var w wireUpdate
		if err := json.Unmarshal(body, &w); err != nil {
			return nil, err
		}
		return nil, n.UpdateAttrs(w.ID, w.Type, w.Attrs)
	case reqBatchUpdate:
		var w wireBatch
		if err := json.Unmarshal(body, &w); err != nil {
			return nil, err
		}
		return nil, n.BatchUpdate(w.Updates)
	case reqDelete:
		var w wireID
		if err := json.Unmarshal(body, &w); err != nil {
			return nil, err
		}
		return nil, n.DeleteEntity(w.ID)
	case reqAppend:
		var w wireAppend
		if err := json.Unmarshal(body, &w); err != nil {
			return nil, err
		}
		acc, rej, err := n.AppendBatch(w.Points)
		if err != nil {
			return nil, err
		}
		return json.Marshal(wireAppendResult{Accepted: acc, Rejected: rej})
	case reqSummary:
		var w wireSeries
		if err := json.Unmarshal(body, &w); err != nil {
			return nil, err
		}
		agg := n.hooks.Store.Summarize(
			timeseries.SeriesKey{Device: w.Device, Quantity: w.Quantity}, w.From, w.To)
		return json.Marshal(agg)
	case reqWindows:
		var w wireSeries
		if err := json.Unmarshal(body, &w); err != nil {
			return nil, err
		}
		wins, err := n.hooks.Store.AggregateWindows(
			timeseries.SeriesKey{Device: w.Device, Quantity: w.Quantity}, w.From, w.To, w.Window)
		if err != nil {
			return nil, err
		}
		return json.Marshal(wireWindows{Windows: wins})
	}
	return nil, fmt.Errorf("cluster: unknown request kind %d", kind)
}

// --- peer client (one multiplexed request connection per peer) ---

type peerClient struct {
	conn    Conn
	mu      sync.Mutex
	nextID  uint64
	waiting map[uint64]chan respMsg
	broken  bool
}

func newPeerClient(conn Conn) *peerClient {
	pc := &peerClient{conn: conn, waiting: make(map[uint64]chan respMsg)}
	go pc.readLoop()
	return pc
}

func (pc *peerClient) readLoop() {
	for frame := range pc.conn.Recv() {
		t, body, err := frameType(frame)
		if err != nil || t != msgResp {
			continue
		}
		r, err := decodeResp(body)
		if err != nil {
			continue
		}
		pc.mu.Lock()
		ch := pc.waiting[r.ID]
		delete(pc.waiting, r.ID)
		pc.mu.Unlock()
		if ch != nil {
			ch <- r
		}
	}
	pc.mu.Lock()
	pc.broken = true
	for id, ch := range pc.waiting {
		close(ch)
		delete(pc.waiting, id)
	}
	pc.mu.Unlock()
}

func (pc *peerClient) call(kind byte, in, out any, timeout time.Duration) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	ch := make(chan respMsg, 1)
	pc.mu.Lock()
	if pc.broken {
		pc.mu.Unlock()
		return ErrConnClosed
	}
	pc.nextID++
	id := pc.nextID
	pc.waiting[id] = ch
	pc.mu.Unlock()
	if err := pc.conn.Send(encodeReq(nil, reqMsg{ID: id, Kind: kind, Body: body})); err != nil {
		pc.mu.Lock()
		delete(pc.waiting, id)
		pc.mu.Unlock()
		return err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r, ok := <-ch:
		if !ok {
			return ErrConnClosed
		}
		if r.Err != "" {
			// Re-establish the not-found sentinel across the wire so
			// callers' errors.Is checks keep working (broker errors wrap
			// it, so match the suffix, not the whole string).
			if strings.HasSuffix(r.Err, ngsi.ErrNotFound.Error()) {
				return fmt.Errorf("cluster: peer: %s: %w", strings.TrimSuffix(r.Err, ngsi.ErrNotFound.Error()), ngsi.ErrNotFound)
			}
			return errors.New(r.Err)
		}
		if out == nil || len(r.Body) == 0 {
			return nil
		}
		return json.Unmarshal(r.Body, out)
	case <-timer.C:
		pc.mu.Lock()
		delete(pc.waiting, id)
		pc.mu.Unlock()
		return fmt.Errorf("cluster: request to peer timed out after %s", timeout)
	}
}

// Router is the cluster-aware northbound backend: writes and point reads
// route to the owning partition leader, entity listings and analytics
// scatter-gather across every leader and merge with ordering, limit,
// offset and count preserved. It implements httpapi.ClusterBackend.
type Router struct {
	node *Node
	mu   sync.Mutex
	pcs  map[string]*peerClient
}

// NewRouter builds the routing layer over a node.
func NewRouter(n *Node) *Router {
	return &Router{node: n, pcs: make(map[string]*peerClient)}
}

// Close severs the peer request connections.
func (rt *Router) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for peer, pc := range rt.pcs {
		_ = pc.conn.Close()
		delete(rt.pcs, peer)
	}
}

func (rt *Router) reqTimeout() time.Duration {
	t := 2 * rt.node.ackTimeout()
	if t < 10*time.Second {
		t = 10 * time.Second
	}
	return t
}

func (rt *Router) peer(node string) (*peerClient, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if pc, ok := rt.pcs[node]; ok && !pc.broken {
		return pc, nil
	}
	if rt.node.cfg.Dial == nil {
		return nil, fmt.Errorf("cluster: no dialer configured, cannot reach %s", node)
	}
	conn, err := rt.node.cfg.Dial(node)
	if err != nil {
		return nil, err
	}
	pc := newPeerClient(conn)
	rt.pcs[node] = pc
	return pc, nil
}

// call routes one request to a node, locally short-circuiting.
func (rt *Router) call(node string, kind byte, in, out any) error {
	if node == rt.node.id {
		body, err := json.Marshal(in)
		if err != nil {
			return err
		}
		resp, err := rt.node.handleReq(kind, body)
		if err != nil {
			return err
		}
		if out == nil || len(resp) == 0 {
			return nil
		}
		return json.Unmarshal(resp, out)
	}
	pc, err := rt.peer(node)
	if err != nil {
		return err
	}
	return pc.call(kind, in, out, rt.reqTimeout())
}

func (rt *Router) owner(key string) string {
	leader, _ := rt.node.m.Leader(rt.node.m.PartitionOf(key))
	return leader
}

// GetEntity reads an entity from its owning leader.
func (rt *Router) GetEntity(tid tenant.ID, id string) (*ngsi.Entity, error) {
	node := rt.owner(id)
	if node == rt.node.id {
		return rt.node.hooks.Context.GetEntity(id)
	}
	var e ngsi.Entity
	if err := rt.call(node, reqGet, wireID{Tenant: tid, ID: id}, &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// UpdateAttrs routes an attribute merge to the owning leader.
func (rt *Router) UpdateAttrs(tid tenant.ID, id, typ string, attrs map[string]ngsi.Attribute) error {
	node := rt.owner(id)
	if node == rt.node.id {
		return rt.node.UpdateAttrs(id, typ, attrs)
	}
	return rt.call(node, reqUpdateAttrs, wireUpdate{Tenant: tid, ID: id, Type: typ, Attrs: attrs}, nil)
}

// DeleteEntity routes a delete to the owning leader.
func (rt *Router) DeleteEntity(tid tenant.ID, id string) error {
	node := rt.owner(id)
	if node == rt.node.id {
		return rt.node.DeleteEntity(id)
	}
	return rt.call(node, reqDelete, wireID{Tenant: tid, ID: id}, nil)
}

// BatchUpdate splits a batch by owning leader and applies the slices
// concurrently. Per-entity atomicity holds (an entity is in exactly one
// slice); cross-entity atomicity across nodes does not, matching the
// broker's own per-shard semantics.
func (rt *Router) BatchUpdate(tid tenant.ID, updates map[string]ngsi.BatchEntry) error {
	slices := make(map[string]map[string]ngsi.BatchEntry)
	for id, e := range updates {
		node := rt.owner(id)
		if slices[node] == nil {
			slices[node] = make(map[string]ngsi.BatchEntry)
		}
		slices[node][id] = e
	}
	return rt.fanOut(len(slices), func(errs chan<- error) {
		for node, slice := range slices {
			go func(node string, slice map[string]ngsi.BatchEntry) {
				if node == rt.node.id {
					errs <- rt.node.BatchUpdate(slice)
					return
				}
				errs <- rt.call(node, reqBatchUpdate, wireBatch{Updates: slice}, nil)
			}(node, slice)
		}
	})
}

// AppendBatch splits telemetry by owning leader. Returns the summed
// accepted/rejected counts; the first error aborts the report.
func (rt *Router) AppendBatch(batch []timeseries.BatchPoint) (accepted, rejected int, err error) {
	slices := make(map[string][]timeseries.BatchPoint)
	for _, bp := range batch {
		node := rt.owner(bp.Key.Device)
		slices[node] = append(slices[node], bp)
	}
	var mu sync.Mutex
	err = rt.fanOut(len(slices), func(errs chan<- error) {
		for node, slice := range slices {
			go func(node string, slice []timeseries.BatchPoint) {
				var acc, rej int
				var e error
				if node == rt.node.id {
					acc, rej, e = rt.node.AppendBatch(slice)
				} else {
					var res wireAppendResult
					e = rt.call(node, reqAppend, wireAppend{Points: slice}, &res)
					acc, rej = res.Accepted, res.Rejected
				}
				mu.Lock()
				accepted += acc
				rejected += rej
				mu.Unlock()
				errs <- e
			}(node, slice)
		}
	})
	return accepted, rejected, err
}

// fanOut runs n concurrent legs and returns the first error.
func (rt *Router) fanOut(n int, start func(errs chan<- error)) error {
	errs := make(chan error, n)
	start(errs)
	var first error
	for i := 0; i < n; i++ {
		if e := <-errs; e != nil && first == nil {
			first = e
		}
	}
	return first
}

// Query scatter-gathers an entity listing across every partition leader
// and merges: each leg runs the query over its own partitions with the
// global ordering and an offset+limit over-fetch, the merged set is
// re-sorted, and the global offset/limit window is cut. Counts are exact
// — partitions are disjoint, so leg totals sum.
func (rt *Router) Query(tid tenant.ID, q ngsi.Query) (ngsi.QueryResult, error) {
	m := rt.node.m
	byLeader := make(map[string][]int)
	for p := 0; p < m.Partitions(); p++ {
		leader, _ := m.Leader(p)
		byLeader[leader] = append(byLeader[leader], p)
	}
	need := 0
	if q.Limit > 0 {
		need = q.Offset + q.Limit
	}
	wq := wireQuery{
		Tenant:     tid,
		IDPattern:  q.IDPattern,
		Type:       q.Type,
		Conditions: q.Conditions,
		Attrs:      q.Attrs,
		OrderBy:    q.OrderBy,
		Limit:      need,
		Count:      q.Count,
	}

	type legResult struct {
		res wireQueryResult
		err error
	}
	results := make(chan legResult, len(byLeader))
	for leader, parts := range byLeader {
		go func(leader string, parts []int) {
			var lr legResult
			if leader == rt.node.id {
				res, err := rt.node.hooks.Context.Query(ngsi.Query{
					IDPattern:  q.IDPattern,
					Type:       q.Type,
					Conditions: q.Conditions,
					Attrs:      q.Attrs,
					OrderBy:    q.OrderBy,
					Limit:      need,
					Count:      q.Count,
					IDFilter:   rt.node.partFilter(parts),
				})
				lr = legResult{res: wireQueryResult{Entities: res.Entities, Total: res.Total}, err: err}
			} else {
				sub := wq
				sub.Parts = parts
				lr.err = rt.call(leader, reqQuery, sub, &lr.res)
			}
			results <- lr
		}(leader, parts)
	}

	var all []*ngsi.Entity
	total := 0
	for range byLeader {
		lr := <-results
		if lr.err != nil {
			return ngsi.QueryResult{}, lr.err
		}
		all = append(all, lr.res.Entities...)
		if q.Count {
			total += lr.res.Total
		}
	}
	if q.OrderBy != "" {
		ngsi.SortEntities(all, q.OrderBy)
	}
	if q.Offset > 0 {
		if q.Offset >= len(all) {
			all = nil
		} else {
			all = all[q.Offset:]
		}
	}
	if q.Limit > 0 && len(all) > q.Limit {
		all = all[:q.Limit]
	}
	res := ngsi.QueryResult{Entities: all, Total: -1}
	if q.Count {
		res.Total = total
	}
	return res, nil
}

// Summary routes a series aggregate to the device's owning leader.
func (rt *Router) Summary(tid tenant.ID, device, quantity string, from, to time.Time) (timeseries.Aggregate, error) {
	node := rt.owner(device)
	if node == rt.node.id {
		return rt.node.hooks.Store.Summarize(
			timeseries.SeriesKey{Device: device, Quantity: quantity}, from, to), nil
	}
	var agg timeseries.Aggregate
	err := rt.call(node, reqSummary,
		wireSeries{Tenant: tid, Device: device, Quantity: quantity, From: from, To: to}, &agg)
	return agg, err
}

// Windows routes a downsampled series read to the device's owning leader.
func (rt *Router) Windows(tid tenant.ID, device, quantity string, from, to time.Time, window time.Duration) ([]timeseries.WindowAggregate, error) {
	node := rt.owner(device)
	if node == rt.node.id {
		return rt.node.hooks.Store.AggregateWindows(
			timeseries.SeriesKey{Device: device, Quantity: quantity}, from, to, window)
	}
	var out wireWindows
	err := rt.call(node, reqWindows,
		wireSeries{Tenant: tid, Device: device, Quantity: quantity, From: from, To: to, Window: window}, &out)
	return out.Windows, err
}
