package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
	"github.com/swamp-project/swamp/internal/wal"
)

// offsetsFile is the sidecar name holding per-leader replication
// offsets, kept in the WAL directory next to the segments it indexes.
const offsetsFile = "replica-offsets.json"

// offsetEntry is one leader's durable resume state: the last applied
// position in that leader's log and the partitions the offset covers. A
// desired partition outside Parts means the offset cannot vouch for it
// and the link re-bootstraps.
type offsetEntry struct {
	Seg   uint64 `json:"seg"`
	Rec   uint64 `json:"rec"`
	Parts []int  `json:"parts"`
}

// replicaOffsets is the sidecar store. Writes go through a temp file +
// rename and are throttled (~100ms) on the hot path; the state the
// offset covers is applied — and fsynced by the leader before shipping —
// before the offset is advanced, so the sidecar never runs ahead of the
// stores. Running behind only costs duplicate re-application, which the
// apply path tolerates (entity ops converge, telemetry is At-filtered).
type replicaOffsets struct {
	mu       sync.Mutex
	path     string
	data     map[string]offsetEntry
	lastSave time.Time
}

func loadOffsets(dir string) *replicaOffsets {
	o := &replicaOffsets{
		path: filepath.Join(dir, offsetsFile),
		data: make(map[string]offsetEntry),
	}
	if b, err := os.ReadFile(o.path); err == nil {
		_ = json.Unmarshal(b, &o.data)
	}
	return o
}

func (o *replicaOffsets) get(leader string) (offsetEntry, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.data[leader]
	return e, ok
}

func (o *replicaOffsets) set(leader string, pos wal.Pos, parts []int, force bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.data[leader] = offsetEntry{Seg: pos.Seg, Rec: pos.Rec, Parts: append([]int(nil), parts...)}
	o.save(force)
}

// flush forces the in-memory offsets to disk, bypassing the throttle.
func (o *replicaOffsets) flush() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.save(true)
}

func (o *replicaOffsets) clear(leader string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.data, leader)
	o.save(true)
}

// save is called with mu held.
func (o *replicaOffsets) save(force bool) {
	now := time.Now()
	if !force && now.Sub(o.lastSave) < 100*time.Millisecond {
		return
	}
	o.lastSave = now
	b, err := json.Marshal(o.data)
	if err != nil {
		return
	}
	tmp := o.path + ".partial"
	if os.WriteFile(tmp, b, 0o644) == nil {
		_ = os.Rename(tmp, o.path)
	}
}

// followerMgr reconciles the node's inbound replication duties: one
// followLink per leader the Map says this node follows, restarted
// whenever the desired partition set changes (promotions, replacements).
type followerMgr struct {
	n     *Node
	mu    sync.Mutex
	links map[string]*followLink
	off   *replicaOffsets
}

func newFollowerMgr(n *Node) *followerMgr {
	return &followerMgr{
		n:     n,
		links: make(map[string]*followLink),
		off:   loadOffsets(n.hooks.WAL.Dir()),
	}
}

func (f *followerMgr) offsets() *replicaOffsets { return f.off }

func (f *followerMgr) run() {
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	f.reconcile()
	for {
		select {
		case <-f.n.closed:
			return
		case <-t.C:
			f.reconcile()
		}
	}
}

func (f *followerMgr) reconcile() {
	f.mu.Lock()
	defer f.mu.Unlock()
	desired := f.n.m.FollowedBy(f.n.id)
	for leader, link := range f.links {
		parts, ok := desired[leader]
		if ok && equalInts(link.parts, parts) {
			continue
		}
		link.close()
		delete(f.links, leader)
	}
	if f.n.cfg.Dial == nil {
		return
	}
	for leader, parts := range desired {
		if _, ok := f.links[leader]; ok {
			continue
		}
		link := newFollowLink(f.n, leader, parts)
		f.links[leader] = link
		f.n.wg.Add(1)
		go func() {
			defer f.n.wg.Done()
			link.run()
		}()
	}
}

func (f *followerMgr) closeAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for leader, link := range f.links {
		link.close()
		delete(f.links, leader)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// followLink is one follower→leader replication session, re-dialled with
// backoff across failures. Any protocol anomaly — a chain gap from a
// dropped frame, a snapshot count mismatch, a dead transport — tears the
// session down; the next attempt resumes from the durable sidecar offset
// (or re-bootstraps when the offset cannot vouch for the partitions).
type followLink struct {
	n      *Node
	leader string
	parts  []int // sorted
	stop   chan struct{}
}

func newFollowLink(n *Node, leader string, parts []int) *followLink {
	sorted := append([]int(nil), parts...)
	sort.Ints(sorted)
	return &followLink{n: n, leader: leader, parts: sorted, stop: make(chan struct{})}
}

func (l *followLink) close() {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
}

func (l *followLink) stopped() bool {
	select {
	case <-l.stop:
		return true
	case <-l.n.closed:
		return true
	default:
		return false
	}
}

func (l *followLink) run() {
	backoff := 50 * time.Millisecond
	for !l.stopped() {
		start := time.Now()
		err := l.session()
		if l.stopped() {
			return
		}
		if err != nil {
			l.n.cfg.Logf("cluster: %s ← %s session: %v", l.n.id, l.leader, err)
		}
		if time.Since(start) > time.Second {
			backoff = 50 * time.Millisecond // healthy run; reset
		}
		select {
		case <-l.stop:
			return
		case <-l.n.closed:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// tailState carries one session's progress through the record stream.
type tailState struct {
	chain     wal.Pos // last streamed position (chain check anchor)
	processed uint64  // messages processed this session (for lag acks)
	granted   map[int]uint64
	grantList []int
	mapVer    uint64
	installed bool // snapshot installed / resume accepted
	boundary  uint64
	snapCount uint64 // snapshot records received so far
}

func (l *followLink) session() error {
	n := l.n
	conn, err := n.cfg.Dial(l.leader)
	if err != nil {
		return err
	}
	defer conn.Close()

	off, haveOff := n.fmgr.offsets().get(l.leader)
	resume := wal.Pos{}
	if haveOff && subsetOf(l.parts, off.Parts) {
		resume = wal.Pos{Seg: off.Seg, Rec: off.Rec}
	} else if haveOff {
		n.cfg.Logf("cluster: %s ← %s: sidecar offset covers %v but %v is wanted; re-bootstrapping",
			n.id, l.leader, off.Parts, l.parts)
	}
	hello := helloMsg{Node: n.id, Resume: resume}
	for _, p := range l.parts {
		hello.Parts = append(hello.Parts, partEpoch{Part: p, Epoch: n.m.Epoch(p)})
	}
	var buf []byte
	if err := conn.Send(encodeHello(buf, hello)); err != nil {
		return err
	}

	st := &tailState{chain: resume, mapVer: n.m.Version()}
	var pend pending
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-l.stop:
			return nil
		case <-n.closed:
			return nil
		case <-tick.C:
			if st.installed && !l.watchEpochs(conn, st, &buf) {
				return nil
			}
		case frame, ok := <-conn.Recv():
			if !ok {
				return errors.New("transport closed")
			}
			if err := l.handleFrame(frame, st, &pend); err != nil {
				return err
			}
			// Drain whatever else is queued (bounded) so applies batch.
			drained := false
			for extra := 0; !drained && extra < 4096; extra++ {
				select {
				case frame, ok := <-conn.Recv():
					if !ok {
						drained = true
					} else if err := l.handleFrame(frame, st, &pend); err != nil {
						return err
					}
				default:
					drained = true
				}
			}
			if err := l.flush(conn, st, &pend, &buf); err != nil {
				return err
			}
		}
	}
}

// subsetOf reports whether every partition in want is covered by have.
func subsetOf(want, have []int) bool {
	set := make(map[int]bool, len(have))
	for _, p := range have {
		set[p] = true
	}
	for _, p := range want {
		if !set[p] {
			return false
		}
	}
	return true
}

// watchEpochs notices promotions (epoch bumps or leadership moves) on
// granted partitions, fences the (now stale) leader for them, and drops
// them from the apply set. Returns false when nothing is left to follow.
func (l *followLink) watchEpochs(conn Conn, st *tailState, buf *[]byte) bool {
	n := l.n
	v := n.m.Version()
	if v == st.mapVer {
		return true
	}
	st.mapVer = v
	for p, grantedEpoch := range st.granted {
		cur := n.m.Epoch(p)
		leader, _ := n.m.Leader(p)
		if cur <= grantedEpoch && leader == l.leader {
			continue
		}
		*buf = encodeFence(*buf, fenceMsg{Part: p, Epoch: cur})
		_ = conn.Send(*buf)
		delete(st.granted, p)
	}
	if len(st.granted) == 0 {
		return false
	}
	st.grantList = st.grantList[:0]
	for p := range st.granted {
		st.grantList = append(st.grantList, p)
	}
	sort.Ints(st.grantList)
	return true
}

// pending accumulates decoded records between flushes so the entity and
// telemetry planes apply in large batches. Per-entity and per-series
// order is preserved; the two planes are independent stores, so applying
// them in plane order within one flush is safe.
type pending struct {
	ents []entOp
	pts  []timeseries.BatchPoint
}

type entOp struct {
	kind  byte // 'u' upsert, 'm' merge, 'd' delete
	ent   *ngsi.Entity
	merge []ngsi.MergeEntry
	id    string
}

func (l *followLink) handleFrame(frame []byte, st *tailState, pend *pending) error {
	n := l.n
	t, body, err := frameType(frame)
	if err != nil {
		return err
	}
	switch t {
	case msgWelcome:
		w, err := decodeWelcome(body)
		if err != nil {
			return err
		}
		if len(w.Parts) == 0 {
			return errors.New("no partitions granted")
		}
		st.granted = make(map[int]uint64, len(w.Parts))
		for _, pe := range w.Parts {
			st.granted[pe.Part] = pe.Epoch
			n.m.Bump(pe.Part, pe.Epoch)
			st.grantList = append(st.grantList, pe.Part)
		}
		sort.Ints(st.grantList)
		switch w.Mode {
		case modeResume:
			st.installed = true
		case modeSnapshot:
			// Destructive half of the bootstrap: forget the old offset
			// first so a crash mid-install re-bootstraps, then drop the
			// partitions' state ahead of the incoming image.
			st.boundary = w.Boundary
			n.fmgr.offsets().clear(l.leader)
			wipeSet := make(map[int]bool, len(st.granted))
			for p := range st.granted {
				wipeSet[p] = true
			}
			if err := n.wipe(wipeSet); err != nil {
				return fmt.Errorf("wipe: %w", err)
			}
		default:
			return fmt.Errorf("unknown welcome mode %d", w.Mode)
		}
	case msgSnapRec:
		rec, err := decodeSnapRec(body)
		if err != nil {
			return err
		}
		st.snapCount++
		l.stash(rec, st, pend)
	case msgSnapEnd:
		e, err := decodeSnapEnd(body)
		if err != nil {
			return err
		}
		if e.Count != st.snapCount {
			return fmt.Errorf("snapshot count mismatch: got %d want %d", st.snapCount, e.Count)
		}
		if err := l.apply(pend); err != nil {
			return err
		}
		// Compact our own WAL so local crash recovery replays the
		// installed image, not the pre-wipe state (the wipe itself is
		// not journaled).
		if n.hooks.Snapshot != nil {
			if err := n.hooks.Snapshot(); err != nil {
				return fmt.Errorf("post-install snapshot: %w", err)
			}
		}
		st.chain = wal.Pos{Seg: e.Boundary, Rec: 0}
		st.installed = true
		n.fmgr.offsets().set(l.leader, st.chain, st.grantList, true)
	case msgRecord:
		m, err := decodeRecord(body)
		if err != nil {
			return err
		}
		if !st.installed {
			return errors.New("record before welcome")
		}
		if m.Prev != st.chain {
			if n.cResyncs != nil {
				n.cResyncs.Inc()
			}
			return fmt.Errorf("chain gap: have %s, record follows %s", st.chain, m.Prev)
		}
		st.chain = m.Pos
		st.processed++
		if !m.Skip {
			l.stash(m.Rec, st, pend)
		}
	case msgFence:
		f, err := decodeFence(body)
		if err == nil {
			n.repl.onFence(f)
		}
	case msgResp:
		// Routed responses are handled by peerClient conns, not links.
	}
	return nil
}

// stash decodes one record and queues the elements owned by the granted
// partitions. Subscriptions never replicate — webhook delivery pools are
// node-local.
func (l *followLink) stash(rec wal.Record, st *tailState, pend *pending) {
	n := l.n
	owned := func(key string) bool {
		_, ok := st.granted[n.m.PartitionOf(key)]
		return ok
	}
	switch rec.Type {
	case wal.TypeEntityUpsert:
		e, err := wal.DecodeEntityUpsert(rec)
		if err == nil && owned(e.ID) {
			pend.ents = append(pend.ents, entOp{kind: 'u', ent: e})
		}
	case wal.TypeEntityMerge:
		entries, err := wal.DecodeEntityMerge(rec)
		if err != nil {
			return
		}
		kept := entries[:0]
		for _, en := range entries {
			if owned(en.ID) {
				kept = append(kept, en)
			}
		}
		if len(kept) > 0 {
			pend.ents = append(pend.ents, entOp{kind: 'm', merge: kept})
		}
	case wal.TypeEntityDelete:
		id, err := wal.DecodeID(rec)
		if err == nil && owned(id) {
			pend.ents = append(pend.ents, entOp{kind: 'd', id: id})
		}
	case wal.TypeTelemetry:
		pts, err := wal.DecodeTelemetry(rec)
		if err != nil {
			return
		}
		for _, bp := range pts {
			if owned(bp.Key.Device) {
				pend.pts = append(pend.pts, bp)
			}
		}
	default:
		if n.cSkipped != nil {
			n.cSkipped.Inc()
		}
	}
}

// flush applies the pending batch, acks the chain position, and persists
// the sidecar offset (throttled).
func (l *followLink) flush(conn Conn, st *tailState, pend *pending, buf *[]byte) error {
	if err := l.apply(pend); err != nil {
		return err
	}
	if !st.installed {
		return nil
	}
	*buf = encodeAck(*buf, ackMsg{Pos: st.chain, Count: st.processed})
	if err := conn.Send(*buf); err != nil {
		return err
	}
	if !st.chain.IsZero() {
		l.n.fmgr.offsets().set(l.leader, st.chain, st.grantList, false)
	}
	return nil
}

// apply replays the batch into the local stores. Consecutive merges
// coalesce into one BatchUpdate; telemetry coalesces into one
// AppendBatch with an At-filter so re-delivered points (crash-window
// duplicates) drop instead of double-counting.
func (l *followLink) apply(pend *pending) error {
	n := l.n
	if len(pend.ents) > 0 {
		batch := make(map[string]ngsi.BatchEntry)
		flushBatch := func() error {
			if len(batch) == 0 {
				return nil
			}
			err := n.hooks.Context.BatchUpdate(batch)
			batch = make(map[string]ngsi.BatchEntry)
			return err
		}
		for _, op := range pend.ents {
			switch op.kind {
			case 'm':
				for _, en := range op.merge {
					be := batch[en.ID]
					if en.Type != "" {
						be.Type = en.Type
					}
					if be.Attrs == nil {
						be.Attrs = make(map[string]ngsi.Attribute, len(en.Attrs))
					}
					for k, v := range en.Attrs {
						be.Attrs[k] = v
					}
					batch[en.ID] = be
				}
			case 'u':
				if err := flushBatch(); err != nil {
					return err
				}
				if err := n.hooks.Context.UpsertEntity(op.ent); err != nil {
					return err
				}
			case 'd':
				if err := flushBatch(); err != nil {
					return err
				}
				if err := n.hooks.Context.DeleteEntity(op.id); err != nil && !errors.Is(err, ngsi.ErrNotFound) {
					return err
				}
			}
		}
		if err := flushBatch(); err != nil {
			return err
		}
		pend.ents = pend.ents[:0]
	}
	if len(pend.pts) > 0 {
		latest := make(map[timeseries.SeriesKey]time.Time)
		accepted := pend.pts[:0]
		for _, bp := range pend.pts {
			base, known := latest[bp.Key]
			if !known {
				if last, have := n.hooks.Store.Latest(bp.Key); have {
					base = last.At
				}
				latest[bp.Key] = base
			}
			if !bp.Point.At.After(base) {
				continue // re-delivered or stale: already absorbed
			}
			accepted = append(accepted, bp)
			latest[bp.Key] = bp.Point.At
		}
		if len(accepted) > 0 {
			if _, _, err := n.hooks.Store.AppendBatch(accepted); err != nil {
				return err
			}
		}
		if n.cApplied != nil {
			n.cApplied.Add(uint64(len(accepted)))
		}
		pend.pts = pend.pts[:0]
	}
	return nil
}
