// Package ngsi implements an NGSI-v2-style context broker — the stand-in
// for the FIWARE Orion Context Broker the SWAMP platform is built on. It
// stores context entities (a farm plot, a soil probe, a pivot), accepts
// attribute updates from the IoT agent, and pushes notifications to
// subscribers (the irrigation manager, the fog sync, dashboards) with the
// standard condition/throttling semantics.
package ngsi

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Attribute is one NGSI attribute: a typed value with optional metadata and
// the time it was last updated.
type Attribute struct {
	Type     string            `json:"type"`
	Value    any               `json:"value"`
	Metadata map[string]string `json:"metadata,omitempty"`
	At       time.Time         `json:"at"`
}

// Float returns the attribute value as a float64 when it is numeric.
func (a Attribute) Float() (float64, bool) {
	switch v := a.Value.(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	case json.Number:
		f, err := v.Float64()
		return f, err == nil
	}
	return 0, false
}

// Entity is an NGSI context entity: identity, type and attribute map.
type Entity struct {
	ID    string               `json:"id"`
	Type  string               `json:"type"`
	Attrs map[string]Attribute `json:"attrs"`
}

// Validate reports the first structural problem with the entity header.
func validateEntityKey(id, typ string) error {
	switch {
	case id == "":
		return fmt.Errorf("ngsi: empty entity id")
	case typ == "":
		return fmt.Errorf("ngsi: entity %q: empty type", id)
	case strings.ContainsAny(id, " \t\n"):
		return fmt.Errorf("ngsi: entity id %q contains whitespace", id)
	}
	return nil
}

// Clone deep-copies the entity so broker internals never alias caller data.
func (e *Entity) Clone() *Entity {
	cp := &Entity{ID: e.ID, Type: e.Type, Attrs: make(map[string]Attribute, len(e.Attrs))}
	for k, a := range e.Attrs {
		cp.Attrs[k] = cloneAttr(a)
	}
	return cp
}

func cloneAttr(a Attribute) Attribute {
	out := a
	if a.Metadata != nil {
		out.Metadata = make(map[string]string, len(a.Metadata))
		for k, v := range a.Metadata {
			out.Metadata[k] = v
		}
	}
	// Values are treated as immutable scalars (float64/string/bool) or
	// JSON-ish trees; deep-copy the tree forms.
	out.Value = cloneValue(a.Value)
	return out
}

func cloneValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		m := make(map[string]any, len(t))
		for k, e := range t {
			m[k] = cloneValue(e)
		}
		return m
	case []any:
		s := make([]any, len(t))
		for i, e := range t {
			s[i] = cloneValue(e)
		}
		return s
	case []float64:
		s := make([]float64, len(t))
		copy(s, t)
		return s
	default:
		return v
	}
}

// AttrNames returns the entity's attribute names, sorted.
func (e *Entity) AttrNames() []string {
	names := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MatchIDPattern reports whether id matches pattern. A pattern is either an
// exact id or a prefix followed by '*' ("urn:swamp:probe:*").
func MatchIDPattern(pattern, id string) bool {
	if pattern == "" || pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(id, strings.TrimSuffix(pattern, "*"))
	}
	return pattern == id
}
