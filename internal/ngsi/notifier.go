package ngsi

import (
	"fmt"
	"sort"
	"time"

	"github.com/swamp-project/swamp/internal/tenant"
)

// Notifier delivers notifications for one subscription. Implementations
// are invoked from a shard's dispatch goroutine and must not block for
// long: an in-process consumer runs its callback inline, while outbound
// transports (HTTPNotifier) enqueue onto their own bounded queue and
// return immediately.
type Notifier interface {
	Notify(Notification)
}

// callbackNotifier adapts a plain function to the Notifier interface.
type callbackNotifier struct{ fn Handler }

func (c callbackNotifier) Notify(n Notification) { c.fn(n) }

// Callback adapts a plain handler function to the Notifier interface —
// the path every in-process subscriber (fog sync, cloud ingest, anomaly
// feed, tests) uses.
func Callback(fn Handler) Notifier { return callbackNotifier{fn: fn} }

// SubStatus is the delivery health of a subscription. In-process
// subscriptions stay active; webhook subscriptions flip to failed when
// their endpoint accumulates consecutive delivery failures, and back to
// active on the next success.
type SubStatus string

// Subscription statuses.
const (
	SubActive SubStatus = "active"
	SubFailed SubStatus = "failed"
)

// SubscriptionView is a read-only snapshot of one registered
// subscription — the shape the HTTP API surface renders.
type SubscriptionView struct {
	ID              string
	EntityIDPattern string
	EntityType      string
	ConditionAttrs  []string
	NotifyAttrs     []string
	Throttling      time.Duration
	Owner           tenant.ID
	Status          SubStatus
}

func (b *Broker) viewLocked(st *subState) SubscriptionView {
	s := st.sub
	return SubscriptionView{
		ID:              s.ID,
		EntityIDPattern: s.EntityIDPattern,
		EntityType:      s.EntityType,
		ConditionAttrs:  append([]string(nil), s.ConditionAttrs...),
		NotifyAttrs:     append([]string(nil), s.NotifyAttrs...),
		Throttling:      s.Throttling,
		Owner:           s.Owner,
		Status:          st.status(),
	}
}

// Subscription returns a snapshot of the subscription with the given id.
func (b *Broker) Subscription(id string) (SubscriptionView, error) {
	b.subMu.Lock()
	defer b.subMu.Unlock()
	st, ok := b.subs[id]
	if !ok {
		return SubscriptionView{}, fmt.Errorf("ngsi: subscription %q: %w", id, ErrNotFound)
	}
	return b.viewLocked(st), nil
}

// Subscriptions returns snapshots of every registered subscription,
// sorted by id.
func (b *Broker) Subscriptions() []SubscriptionView {
	b.subMu.Lock()
	defer b.subMu.Unlock()
	out := make([]SubscriptionView, 0, len(b.subs))
	for _, st := range b.subs {
		out = append(out, b.viewLocked(st))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SetSubscriptionStatus flips the delivery-health status of a
// subscription — the webhook pool calls this when an endpoint crosses its
// consecutive-failure threshold (→ SubFailed) or recovers (→ SubActive).
func (b *Broker) SetSubscriptionStatus(id string, status SubStatus) error {
	b.subMu.Lock()
	defer b.subMu.Unlock()
	st, ok := b.subs[id]
	if !ok {
		return fmt.Errorf("ngsi: subscription %q: %w", id, ErrNotFound)
	}
	st.setStatus(status)
	return nil
}
