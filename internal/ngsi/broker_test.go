package ngsi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
)

func num(v float64) Attribute { return Attribute{Type: "Number", Value: v} }

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func TestUpsertGetDelete(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()

	e := &Entity{ID: "urn:swamp:plot:1", Type: "AgriParcel", Attrs: map[string]Attribute{
		"soilMoisture": num(0.23),
	}}
	if err := b.UpsertEntity(e); err != nil {
		t.Fatal(err)
	}
	got, err := b.GetEntity("urn:swamp:plot:1")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.Attrs["soilMoisture"].Float(); !ok || v != 0.23 {
		t.Errorf("soilMoisture = %v", got.Attrs["soilMoisture"].Value)
	}
	if got.Attrs["soilMoisture"].At.IsZero() {
		t.Error("timestamp not stamped")
	}

	if err := b.DeleteEntity("urn:swamp:plot:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.GetEntity("urn:swamp:plot:1"); err == nil {
		t.Error("deleted entity still readable")
	}
	if err := b.DeleteEntity("urn:swamp:plot:1"); err == nil {
		t.Error("double delete succeeded")
	}
}

func TestUpsertValidation(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	for i, e := range []*Entity{
		{ID: "", Type: "T"},
		{ID: "x", Type: ""},
		{ID: "has space", Type: "T"},
	} {
		if err := b.UpsertEntity(e); err == nil {
			t.Errorf("case %d: invalid entity accepted", i)
		}
	}
}

func TestGetReturnsCopy(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	b.UpsertEntity(&Entity{ID: "e1", Type: "T", Attrs: map[string]Attribute{"a": num(1)}})
	got, _ := b.GetEntity("e1")
	got.Attrs["a"] = num(999) // mutate the copy
	again, _ := b.GetEntity("e1")
	if v, _ := again.Attrs["a"].Float(); v != 1 {
		t.Error("mutation of returned entity leaked into the store")
	}
}

func TestUpdateAttrsMergesAndCreates(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	// Creates on first update (IoT-agent path).
	if err := b.UpdateAttrs("e1", "Device", map[string]Attribute{"t": num(20)}); err != nil {
		t.Fatal(err)
	}
	if err := b.UpdateAttrs("e1", "Device", map[string]Attribute{"h": num(0.5)}); err != nil {
		t.Fatal(err)
	}
	e, err := b.GetEntity("e1")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Attrs) != 2 {
		t.Errorf("attrs = %v", e.AttrNames())
	}
	if err := b.UpdateAttrs("e1", "Device", nil); err == nil {
		t.Error("empty update accepted")
	}
}

func TestQueryEntities(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	for i := 0; i < 5; i++ {
		b.UpsertEntity(&Entity{ID: fmt.Sprintf("urn:probe:%d", i), Type: "SoilProbe"})
	}
	b.UpsertEntity(&Entity{ID: "urn:pivot:1", Type: "Pivot"})

	if got := b.QueryEntities("urn:probe:*", ""); len(got) != 5 {
		t.Errorf("prefix query returned %d", len(got))
	}
	if got := b.QueryEntities("*", "Pivot"); len(got) != 1 {
		t.Errorf("type query returned %d", len(got))
	}
	if got := b.QueryEntities("", ""); len(got) != 6 {
		t.Errorf("match-all returned %d", len(got))
	}
	got := b.QueryEntities("urn:probe:*", "")
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Error("query result not sorted")
		}
	}
}

func TestSubscriptionFires(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	var notes atomic.Int32
	var last atomic.Value
	_, err := b.Subscribe(Subscription{
		EntityIDPattern: "urn:plot:*",
		ConditionAttrs:  []string{"soilMoisture"},
		Notifier: Callback(func(n Notification) {
			notes.Add(1)
			last.Store(n)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Non-matching attr change: no notification.
	b.UpdateAttrs("urn:plot:1", "AgriParcel", map[string]Attribute{"airTemp": num(30)})
	// Matching change: notify.
	b.UpdateAttrs("urn:plot:1", "AgriParcel", map[string]Attribute{"soilMoisture": num(0.19)})
	waitFor(t, time.Second, func() bool { return notes.Load() == 1 })

	n := last.Load().(Notification)
	if n.Entity.ID != "urn:plot:1" {
		t.Errorf("notified entity %q", n.Entity.ID)
	}
	// Entity outside the pattern: no notification.
	b.UpdateAttrs("urn:pivot:9", "Pivot", map[string]Attribute{"soilMoisture": num(0.5)})
	time.Sleep(20 * time.Millisecond)
	if notes.Load() != 1 {
		t.Errorf("notes = %d, want 1", notes.Load())
	}
}

func TestSubscriptionNotifyAttrsFilter(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	var got atomic.Value
	b.Subscribe(Subscription{
		EntityIDPattern: "*",
		NotifyAttrs:     []string{"soilMoisture"},
		Notifier:        Callback(func(n Notification) { got.Store(n) }),
	})
	b.UpsertEntity(&Entity{ID: "e", Type: "T", Attrs: map[string]Attribute{
		"soilMoisture": num(0.3), "secret": num(42),
	}})
	waitFor(t, time.Second, func() bool { return got.Load() != nil })
	n := got.Load().(Notification)
	if _, leaked := n.Entity.Attrs["secret"]; leaked {
		t.Error("NotifyAttrs filter leaked attribute")
	}
	if _, ok := n.Entity.Attrs["soilMoisture"]; !ok {
		t.Error("requested attribute missing")
	}
}

func TestSubscriptionThrottling(t *testing.T) {
	sim := clock.NewSim(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	b := NewBroker(BrokerConfig{Clock: sim})
	defer b.Close()
	var notes atomic.Int32
	b.Subscribe(Subscription{
		EntityIDPattern: "*",
		Throttling:      time.Minute,
		Notifier:        Callback(func(Notification) { notes.Add(1) }),
	})
	for i := 0; i < 5; i++ {
		b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(float64(i))})
	}
	waitFor(t, time.Second, func() bool { return notes.Load() >= 1 })
	time.Sleep(20 * time.Millisecond)
	if notes.Load() != 1 {
		t.Fatalf("throttling allowed %d notifications in one instant", notes.Load())
	}
	sim.Advance(2 * time.Minute)
	b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(99)})
	waitFor(t, time.Second, func() bool { return notes.Load() == 2 })
	if c := b.Metrics().Counter("ngsi.notify.throttled").Value(); c != 4 {
		t.Errorf("throttled counter = %d, want 4", c)
	}
}

func TestUnsubscribe(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	var notes atomic.Int32
	id, _ := b.Subscribe(Subscription{EntityIDPattern: "*", Notifier: Callback(func(Notification) { notes.Add(1) })})
	if err := b.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(id); err == nil {
		t.Error("double unsubscribe succeeded")
	}
	b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(1)})
	time.Sleep(20 * time.Millisecond)
	if notes.Load() != 0 {
		t.Error("unsubscribed handler still invoked")
	}
}

func TestSubscribeValidation(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	if _, err := b.Subscribe(Subscription{EntityIDPattern: "*"}); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := b.Subscribe(Subscription{ID: "s1", EntityIDPattern: "*", Notifier: Callback(func(Notification) {})}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(Subscription{ID: "s1", EntityIDPattern: "*", Notifier: Callback(func(Notification) {})}); err == nil {
		t.Error("duplicate subscription id accepted")
	}
}

func TestMatchIDPattern(t *testing.T) {
	tests := []struct {
		pattern, id string
		want        bool
	}{
		{"*", "anything", true},
		{"", "anything", true},
		{"urn:a:1", "urn:a:1", true},
		{"urn:a:1", "urn:a:2", false},
		{"urn:a:*", "urn:a:7", true},
		{"urn:a:*", "urn:b:7", false},
	}
	for _, tc := range tests {
		if got := MatchIDPattern(tc.pattern, tc.id); got != tc.want {
			t.Errorf("MatchIDPattern(%q,%q) = %v", tc.pattern, tc.id, got)
		}
	}
}

func TestBatchUpdate(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	updates := map[string]struct {
		Type  string
		Attrs map[string]Attribute
	}{
		"e1": {Type: "T", Attrs: map[string]Attribute{"a": num(1)}},
		"e2": {Type: "T", Attrs: map[string]Attribute{"a": num(2)}},
		"e3": {Type: "T", Attrs: map[string]Attribute{"a": num(3)}},
	}
	if err := b.BatchUpdate(updates); err != nil {
		t.Fatal(err)
	}
	if b.EntityCount() != 3 {
		t.Errorf("entity count = %d", b.EntityCount())
	}
}

func TestClosedBrokerRejects(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	b.Close()
	b.Close() // idempotent
	if err := b.UpsertEntity(&Entity{ID: "e", Type: "T"}); err != ErrClosed {
		t.Errorf("upsert after close = %v", err)
	}
	if _, err := b.Subscribe(Subscription{EntityIDPattern: "*", Notifier: Callback(func(Notification) {})}); err != ErrClosed {
		t.Errorf("subscribe after close = %v", err)
	}
}

func TestConcurrentUpdatesAndQueries(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("e%d", w)
				b.UpdateAttrs(id, "T", map[string]Attribute{"v": num(float64(i))})
				b.QueryEntities("e*", "")
				b.GetEntity(id)
			}
		}(w)
	}
	wg.Wait()
	if b.EntityCount() != 8 {
		t.Errorf("entity count = %d", b.EntityCount())
	}
}

// Property: after any sequence of attribute updates, the stored value for
// each attribute equals the last value written.
func TestLastWriteWinsProperty(t *testing.T) {
	f := func(values []float64) bool {
		if len(values) == 0 {
			return true
		}
		b := NewBroker(BrokerConfig{})
		defer b.Close()
		for _, v := range values {
			if v != v { // skip NaN inputs
				continue
			}
			b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(v)})
		}
		e, err := b.GetEntity("e")
		if err != nil {
			return true // all inputs were NaN
		}
		got, _ := e.Attrs["a"].Float()
		var want float64
		found := false
		for _, v := range values {
			if v == v {
				want = v
				found = true
			}
		}
		return !found || got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
