package ngsi

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
)

// TestThrottlingIsPerEntity: one throttled subscription watching two
// entities suppresses repeats per entity, not globally.
func TestThrottlingIsPerEntity(t *testing.T) {
	sim := clock.NewSim(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	b := NewBroker(BrokerConfig{Clock: sim})
	defer b.Close()
	var notes atomic.Int32
	if _, err := b.Subscribe(Subscription{
		EntityIDPattern: "urn:x:*",
		Throttling:      time.Minute,
		Notifier:        Callback(func(Notification) { notes.Add(1) }),
	}); err != nil {
		t.Fatal(err)
	}
	// Same instant: each entity gets its first notification through.
	b.UpdateAttrs("urn:x:1", "T", map[string]Attribute{"a": num(1)})
	b.UpdateAttrs("urn:x:2", "T", map[string]Attribute{"a": num(2)})
	waitFor(t, time.Second, func() bool { return notes.Load() == 2 })
	// Repeats inside the window are throttled for both.
	b.UpdateAttrs("urn:x:1", "T", map[string]Attribute{"a": num(3)})
	b.UpdateAttrs("urn:x:2", "T", map[string]Attribute{"a": num(4)})
	time.Sleep(20 * time.Millisecond)
	if notes.Load() != 2 {
		t.Fatalf("throttling not per-entity: %d notifications", notes.Load())
	}
	if c := b.Metrics().Counter("ngsi.notify.throttled").Value(); c != 2 {
		t.Errorf("throttled counter = %d, want 2", c)
	}
	// After the window, both fire again.
	sim.Advance(2 * time.Minute)
	b.UpdateAttrs("urn:x:1", "T", map[string]Attribute{"a": num(5)})
	b.UpdateAttrs("urn:x:2", "T", map[string]Attribute{"a": num(6)})
	waitFor(t, time.Second, func() bool { return notes.Load() == 4 })
}

// TestThrottledSubscriptionStillSeesOtherEntitiesFresh: a throttle refusal
// for one entity must not consume another entity's budget (regression guard
// for the shared lastNotified map across shards).
func TestThrottledSubscriptionStillSeesOtherEntitiesFresh(t *testing.T) {
	sim := clock.NewSim(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	b := NewBroker(BrokerConfig{Clock: sim, Shards: 4})
	defer b.Close()
	var notes atomic.Int32
	b.Subscribe(Subscription{
		EntityIDPattern: "*",
		Throttling:      time.Minute,
		Notifier:        Callback(func(Notification) { notes.Add(1) }),
	})
	b.UpdateAttrs("e1", "T", map[string]Attribute{"a": num(1)})
	b.UpdateAttrs("e1", "T", map[string]Attribute{"a": num(2)}) // throttled
	b.UpdateAttrs("e2", "T", map[string]Attribute{"a": num(3)}) // different entity: fresh
	waitFor(t, time.Second, func() bool { return notes.Load() == 2 })
}

// TestPrefixPatternMatching: '*'-suffixed patterns match by prefix across
// shards; exact and non-matching ids stay silent.
func TestPrefixPatternMatching(t *testing.T) {
	b := NewBroker(BrokerConfig{Shards: 4})
	defer b.Close()
	var farmNotes, allNotes atomic.Int32
	if _, err := b.Subscribe(Subscription{
		EntityIDPattern: "urn:farm:*",
		Notifier:        Callback(func(Notification) { farmNotes.Add(1) }),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(Subscription{
		EntityIDPattern: "*",
		Notifier:        Callback(func(Notification) { allNotes.Add(1) }),
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		b.UpdateAttrs(fmt.Sprintf("urn:farm:%d", i), "T", map[string]Attribute{"a": num(1)})
	}
	b.UpdateAttrs("urn:other:1", "T", map[string]Attribute{"a": num(1)})
	waitFor(t, time.Second, func() bool { return allNotes.Load() == 5 })
	if farmNotes.Load() != 4 {
		t.Errorf("prefix subscription fired %d times, want 4", farmNotes.Load())
	}
}

// TestWildcardWithTypeRestriction: a "*" pattern plus EntityType only sees
// entities of that type.
func TestWildcardWithTypeRestriction(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	var probeNotes atomic.Int32
	b.Subscribe(Subscription{
		EntityIDPattern: "*",
		EntityType:      "SoilProbe",
		Notifier:        Callback(func(Notification) { probeNotes.Add(1) }),
	})
	var allNotes atomic.Int32
	b.Subscribe(Subscription{
		EntityIDPattern: "*",
		Notifier:        Callback(func(Notification) { allNotes.Add(1) }),
	})
	b.UpdateAttrs("p1", "SoilProbe", map[string]Attribute{"a": num(1)})
	b.UpdateAttrs("v1", "Pivot", map[string]Attribute{"a": num(1)})
	waitFor(t, time.Second, func() bool { return allNotes.Load() == 2 })
	if probeNotes.Load() != 1 {
		t.Errorf("typed wildcard fired %d times, want 1", probeNotes.Load())
	}
}

// TestConditionAndNotifyAttrsIntersect: ConditionAttrs gates on the
// changed set while NotifyAttrs filters the delivered snapshot — they are
// independent, so a condition attribute outside NotifyAttrs still fires
// but is not delivered.
func TestConditionAndNotifyAttrsIntersect(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	var got atomic.Value
	var notes atomic.Int32
	if _, err := b.Subscribe(Subscription{
		EntityIDPattern: "*",
		ConditionAttrs:  []string{"soilMoisture"},
		NotifyAttrs:     []string{"battery"},
		Notifier: Callback(func(n Notification) {
			got.Store(n)
			notes.Add(1)
		}),
	}); err != nil {
		t.Fatal(err)
	}
	// Change only non-condition attributes: no notification.
	b.UpdateAttrs("e", "T", map[string]Attribute{"battery": num(0.9)})
	time.Sleep(20 * time.Millisecond)
	if notes.Load() != 0 {
		t.Fatal("non-condition change fired the subscription")
	}
	// Change the condition attribute: fires, but delivers only NotifyAttrs.
	b.UpdateAttrs("e", "T", map[string]Attribute{"soilMoisture": num(0.2), "airTemp": num(30)})
	waitFor(t, time.Second, func() bool { return notes.Load() == 1 })
	n := got.Load().(Notification)
	if _, ok := n.Entity.Attrs["battery"]; !ok {
		t.Error("NotifyAttrs attribute missing from snapshot")
	}
	if _, leaked := n.Entity.Attrs["soilMoisture"]; leaked {
		t.Error("attribute outside NotifyAttrs delivered")
	}
	if _, leaked := n.Entity.Attrs["airTemp"]; leaked {
		t.Error("attribute outside NotifyAttrs delivered")
	}
	// A condition attribute alongside unrelated changes still fires
	// (intersection, not equality).
	b.UpdateAttrs("e", "T", map[string]Attribute{"airTemp": num(31), "soilMoisture": num(0.19)})
	waitFor(t, time.Second, func() bool { return notes.Load() == 2 })
}

// TestNoNotificationsAfterClose: updates after Close are rejected with
// ErrClosed and handlers never run again.
func TestNoNotificationsAfterClose(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	var notes atomic.Int32
	if _, err := b.Subscribe(Subscription{
		EntityIDPattern: "*",
		Notifier:        Callback(func(Notification) { notes.Add(1) }),
	}); err != nil {
		t.Fatal(err)
	}
	b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(1)})
	b.Close()
	delivered := notes.Load()
	if delivered != 1 {
		t.Fatalf("queued notification not drained by Close: %d", delivered)
	}
	if err := b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(2)}); err != ErrClosed {
		t.Errorf("update after close = %v, want ErrClosed", err)
	}
	if err := b.BatchUpdate(map[string]BatchEntry{
		"e": {Type: "T", Attrs: map[string]Attribute{"a": num(3)}},
	}); err != ErrClosed {
		t.Errorf("batch update after close = %v, want ErrClosed", err)
	}
	time.Sleep(20 * time.Millisecond)
	if notes.Load() != delivered {
		t.Error("handler ran after Close")
	}
}

// TestUnsubscribeRemovesFromIndex: exact, prefix and wildcard
// subscriptions all stop firing after Unsubscribe (the rebuilt index must
// drop every shape).
func TestUnsubscribeRemovesFromIndex(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	var notes atomic.Int32
	h := func(Notification) { notes.Add(1) }
	ids := make([]string, 0, 3)
	for _, pattern := range []string{"urn:a:1", "urn:a:*", "*"} {
		id, err := b.Subscribe(Subscription{EntityIDPattern: pattern, Notifier: Callback(h)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	b.UpdateAttrs("urn:a:1", "T", map[string]Attribute{"a": num(1)})
	waitFor(t, time.Second, func() bool { return notes.Load() == 3 })
	for _, id := range ids {
		if err := b.Unsubscribe(id); err != nil {
			t.Fatal(err)
		}
	}
	b.UpdateAttrs("urn:a:1", "T", map[string]Attribute{"a": num(2)})
	time.Sleep(20 * time.Millisecond)
	if notes.Load() != 3 {
		t.Errorf("unsubscribed handlers fired: %d total", notes.Load())
	}
	if b.SubscriptionCount() != 0 {
		t.Errorf("subscription count = %d", b.SubscriptionCount())
	}
}

// TestBatchUpdateNotifiesPerEntity: one BatchUpdate fires matching
// subscriptions once per updated entity and is visible atomically per
// shard.
func TestBatchUpdateNotifiesPerEntity(t *testing.T) {
	b := NewBroker(BrokerConfig{Shards: 4})
	defer b.Close()
	var notes atomic.Int32
	b.Subscribe(Subscription{EntityIDPattern: "*", Notifier: Callback(func(Notification) { notes.Add(1) })})
	batch := make(map[string]BatchEntry, 10)
	for i := 0; i < 10; i++ {
		batch[fmt.Sprintf("e%d", i)] = BatchEntry{Type: "T", Attrs: map[string]Attribute{"a": num(float64(i))}}
	}
	if err := b.BatchUpdate(batch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, func() bool { return notes.Load() == 10 })
	if b.EntityCount() != 10 {
		t.Errorf("entity count = %d", b.EntityCount())
	}
	if got := b.Metrics().Counter("ngsi.batch.entities").Value(); got != 10 {
		t.Errorf("batch entities counter = %d", got)
	}
}

// TestIndexMatchesLinearScan pins the subscription index to
// MatchIDPattern's semantics: for every pattern shape × entity id, the
// indexed collect must select exactly the subscriptions the pre-index
// linear scan (MatchIDPattern over all of them) selects. If the pattern
// language ever grows, this catches the index diverging from the matcher.
func TestIndexMatchesLinearScan(t *testing.T) {
	patterns := []struct{ pattern, typ string }{
		{"", ""}, {"*", ""}, {"*", "SoilProbe"}, {"", "Pivot"},
		{"urn:a:1", ""}, {"urn:a:1", "SoilProbe"}, {"urn:a:*", ""},
		{"urn:a:*", "Pivot"}, {"urn:*", ""}, {"urn:a:10", ""},
	}
	ix := newSubIndex()
	for _, p := range patterns {
		ix.add(newSubState(Subscription{
			EntityIDPattern: p.pattern, EntityType: p.typ,
			Notifier: Callback(func(Notification) {}),
		}))
	}
	entities := []struct{ id, typ string }{
		{"urn:a:1", "SoilProbe"}, {"urn:a:1", "Pivot"}, {"urn:a:10", "SoilProbe"},
		{"urn:a:2", "Pivot"}, {"urn:b:1", "SoilProbe"}, {"x", "Thing"},
	}
	key := func(st *subState) string { return st.sub.EntityIDPattern + "|" + st.sub.EntityType }
	for _, e := range entities {
		want := map[string]int{}
		for _, st := range ix.collectScan(e.id, e.typ, nil) {
			want[key(st)]++
		}
		got := map[string]int{}
		for _, st := range ix.collect(e.id, e.typ, nil) {
			got[key(st)]++
		}
		if len(got) != len(want) {
			t.Errorf("entity (%q,%q): indexed %v, scan %v", e.id, e.typ, got, want)
			continue
		}
		for k, n := range want {
			if got[k] != n {
				t.Errorf("entity (%q,%q): pattern %q indexed %d, scan %d", e.id, e.typ, k, got[k], n)
			}
		}
	}
}

// TestBatchUpdateValidatesBeforeApplying: one bad entry fails the whole
// batch and nothing is applied.
func TestBatchUpdateValidatesBeforeApplying(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	err := b.BatchUpdate(map[string]BatchEntry{
		"good": {Type: "T", Attrs: map[string]Attribute{"a": num(1)}},
		"bad":  {Type: "", Attrs: map[string]Attribute{"a": num(2)}},
	})
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if b.EntityCount() != 0 {
		t.Error("partial batch applied despite validation error")
	}
}

// TestSubscribeExplicitIDAdvancesCounter: re-registering a recovered
// "sub-N" id must advance the generator so fresh subscriptions never
// collide with recovered ones.
func TestSubscribeExplicitIDAdvancesCounter(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	noop := Callback(func(Notification) {})
	if _, err := b.Subscribe(Subscription{ID: "sub-42", EntityIDPattern: "*", Notifier: noop}); err != nil {
		t.Fatal(err)
	}
	id, err := b.Subscribe(Subscription{EntityIDPattern: "*", Notifier: noop})
	if err != nil {
		t.Fatal(err)
	}
	if id != "sub-43" {
		t.Fatalf("generated id %q, want sub-43", id)
	}
}
