package ngsi

import (
	"errors"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
)

// FlushStats describes one Batcher flush.
type FlushStats struct {
	// Entities is the number of distinct entities in the flushed batch.
	Entities int
	// Updates is the number of Add calls coalesced into the batch (≥
	// Entities when several updates hit the same entity inside one
	// interval).
	Updates int
	// Err is the BatchUpdate error, nil on success.
	Err error
}

// BatcherConfig configures a Batcher.
type BatcherConfig struct {
	// Broker receives the flushed batches (required).
	Broker *Broker
	// FlushInterval is the coalescing window (default 5ms).
	FlushInterval time.Duration
	// MaxEntities flushes early once this many distinct entities are
	// pending (default 256), bounding both memory and notification delay
	// under burst load.
	MaxEntities int
	// OnFlush, if non-nil, observes every flush (including failed ones).
	// It runs on the flusher goroutine or inside Add/Close; keep it cheap.
	OnFlush func(FlushStats)
	// Metrics receives batcher counters; nil uses the broker's registry.
	Metrics *metrics.Registry
}

// Batcher coalesces per-entity attribute updates and flushes them to the
// broker as BatchUpdate calls on a fixed cadence — the batched ingest path
// the IoT agent's MQTT northbound uses. Within one window, later updates to
// the same attribute overwrite earlier ones (last-write-wins, the same
// outcome sequential UpdateAttrs calls produce) and the entity still gets
// exactly one notification per changed-attribute set.
//
// Construct with NewBatcher; call Close to flush the tail and stop the
// flusher goroutine.
type Batcher struct {
	cfg BatcherConfig

	// flushMu serializes flushes end to end (swap + BatchUpdate). Without
	// it, two concurrent flushers could apply their swapped-out batches in
	// the wrong order and an older value would overwrite a newer one.
	flushMu sync.Mutex

	mu      sync.Mutex
	pending map[string]*pendingEntity
	updates int
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup

	cFlush, cUpdates, cEntities, cAdded *metrics.Counter
	gPending                            *metrics.Gauge
}

type pendingEntity struct {
	typ     string
	attrs   map[string]Attribute
	updates int
}

// NewBatcher validates the config and starts the flusher goroutine.
func NewBatcher(cfg BatcherConfig) (*Batcher, error) {
	if cfg.Broker == nil {
		return nil, errors.New("ngsi: batcher requires a broker")
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Millisecond
	}
	if cfg.MaxEntities <= 0 {
		cfg.MaxEntities = 256
	}
	if cfg.Metrics == nil {
		cfg.Metrics = cfg.Broker.Metrics()
	}
	ba := &Batcher{
		cfg:       cfg,
		pending:   make(map[string]*pendingEntity),
		stop:      make(chan struct{}),
		cFlush:    cfg.Metrics.Counter("ngsi.batcher.flushes"),
		cUpdates:  cfg.Metrics.Counter("ngsi.batcher.updates"),
		cEntities: cfg.Metrics.Counter("ngsi.batcher.entities"),
		cAdded:    cfg.Metrics.Counter("ngsi.batcher.added"),
		gPending:  cfg.Metrics.Gauge("ngsi.batcher.pending"),
	}
	ba.wg.Add(1)
	go ba.loop()
	return ba, nil
}

func (ba *Batcher) loop() {
	defer ba.wg.Done()
	t := time.NewTicker(ba.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-ba.stop:
			ba.Flush()
			return
		case <-t.C:
			ba.Flush()
		}
	}
}

// Add buffers one entity update. It normally returns without touching the
// broker — the flush happens on the batcher's cadence — but once
// MaxEntities distinct entities are pending, the triggering Add flushes
// synchronously (running BatchUpdate, and OnFlush, on its goroutine) to
// bound memory and notification delay under burst load.
func (ba *Batcher) Add(id, typ string, attrs map[string]Attribute) error {
	if err := validateEntityKey(id, typ); err != nil {
		return err
	}
	if len(attrs) == 0 {
		return errors.New("ngsi: batcher: empty attribute update")
	}
	ba.mu.Lock()
	if ba.closed {
		ba.mu.Unlock()
		return ErrClosed
	}
	pe := ba.pending[id]
	if pe == nil {
		pe = &pendingEntity{typ: typ, attrs: make(map[string]Attribute, len(attrs))}
		ba.pending[id] = pe
	}
	for k, a := range attrs {
		pe.attrs[k] = cloneAttr(a)
	}
	pe.updates++
	ba.updates++
	full := len(ba.pending) >= ba.cfg.MaxEntities
	ba.gPending.Set(float64(len(ba.pending)))
	ba.cAdded.Inc()
	ba.mu.Unlock()
	if full {
		ba.Flush()
	}
	return nil
}

// Flush pushes everything pending to the broker now and returns the number
// of entities flushed. Safe to call concurrently with Add and other
// flushers; concurrent flushes apply in order.
func (ba *Batcher) Flush() int {
	ba.flushMu.Lock()
	defer ba.flushMu.Unlock()
	ba.mu.Lock()
	if len(ba.pending) == 0 {
		ba.mu.Unlock()
		return 0
	}
	pending := ba.pending
	updates := ba.updates
	ba.pending = make(map[string]*pendingEntity, len(pending))
	ba.updates = 0
	ba.gPending.Set(0)
	ba.mu.Unlock()

	batch := make(map[string]BatchEntry, len(pending))
	for id, pe := range pending {
		batch[id] = BatchEntry{Type: pe.typ, Attrs: pe.attrs}
	}
	err := ba.cfg.Broker.BatchUpdate(batch)
	ba.cFlush.Inc()
	ba.cUpdates.Add(uint64(updates))
	ba.cEntities.Add(uint64(len(batch)))
	if ba.cfg.OnFlush != nil {
		ba.cfg.OnFlush(FlushStats{Entities: len(batch), Updates: updates, Err: err})
	}
	return len(batch)
}

// Close flushes the tail and stops the flusher. Further Adds return
// ErrClosed. Idempotent.
func (ba *Batcher) Close() {
	ba.mu.Lock()
	if ba.closed {
		ba.mu.Unlock()
		return
	}
	ba.closed = true
	ba.mu.Unlock()
	close(ba.stop)
	ba.wg.Wait()
}
