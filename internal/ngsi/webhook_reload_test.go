package ngsi

import (
	"sync"
	"testing"
	"time"
)

// TestWebhookSetWorkersUnderLoad swaps the pool's concurrency bound while
// deliveries are in flight against a slow endpoint — under -race this is
// the proof the semaphore swap is safe mid-traffic. Every delivery must
// still complete: a holder releases into the semaphore it acquired from,
// so no swap can leak a slot or wedge a worker.
func TestWebhookSetWorkersUnderLoad(t *testing.T) {
	recv := newWebhookReceiver(t)
	p := fastWebhookPool(t, nil, WebhookConfig{Workers: 2})

	const subs = 8
	for i := 0; i < subs; i++ {
		n, err := p.Notifier(string(rune('a'+i)), recv.srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = n }()
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.SetWorkers(1 + i%8)
			p.SetRetryBackoff(time.Duration(1+i%5) * time.Millisecond)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const notes = 200
	e := &Entity{ID: "urn:x", Type: "Sensor"}
	p.mu.Lock()
	notifiers := make([]*HTTPNotifier, 0, len(p.notifiers))
	for _, n := range p.notifiers {
		notifiers = append(notifiers, n)
	}
	p.mu.Unlock()
	for i := 0; i < notes; i++ {
		notifiers[i%len(notifiers)].Notify(Notification{Entity: e})
	}

	deadline := time.Now().Add(10 * time.Second)
	for recv.count() < notes-int(p.cDropped.Value()) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := recv.count() + int(p.cDropped.Value()); got < notes {
		t.Fatalf("deliveries lost across semaphore swaps: delivered+dropped=%d, want >= %d", got, notes)
	}
}

// TestWebhookSetRetryBackoffApplies pins that a reloaded backoff is read
// by subsequent deliveries.
func TestWebhookSetRetryBackoffApplies(t *testing.T) {
	p := fastWebhookPool(t, nil, WebhookConfig{})
	p.SetRetryBackoff(7 * time.Millisecond)
	if got := time.Duration(p.backoffNanos.Load()); got != 7*time.Millisecond {
		t.Fatalf("backoff = %v", got)
	}
	p.SetRetryBackoff(0) // restores default
	if got := time.Duration(p.backoffNanos.Load()); got != DefaultWebhookBackoff {
		t.Fatalf("backoff after reset = %v", got)
	}
}
