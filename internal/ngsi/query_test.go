package ngsi

import (
	"fmt"
	"testing"
)

func TestParseQOperators(t *testing.T) {
	tests := []struct {
		q     string
		attr  string
		op    Op
		value string
		isNum bool
	}{
		{"soilMoisture==0.25", "soilMoisture", OpEq, "0.25", true},
		{"soilMoisture!=0.25", "soilMoisture", OpNe, "0.25", true},
		{"soilMoisture<0.25", "soilMoisture", OpLt, "0.25", true},
		{"soilMoisture<=0.25", "soilMoisture", OpLe, "0.25", true},
		{"soilMoisture>0.25", "soilMoisture", OpGt, "0.25", true},
		{"soilMoisture>=0.25", "soilMoisture", OpGe, "0.25", true},
		{"status==open", "status", OpEq, "open", false},
		{"status=='wine farm'", "status", OpEq, "wine farm", false},
		{`status=="quoted"`, "status", OpEq, "quoted", false},
		{"level=='5'", "level", OpEq, "5", false}, // quoted number stays a string
		{"battery", "battery", OpExists, "", false},
		{"!battery", "battery", OpNotExists, "", false},
		{" soilMoisture == 0.25 ", "soilMoisture", OpEq, "0.25", true},
	}
	for _, tc := range tests {
		conds, err := ParseQ(tc.q)
		if err != nil {
			t.Errorf("ParseQ(%q): %v", tc.q, err)
			continue
		}
		if len(conds) != 1 {
			t.Errorf("ParseQ(%q) = %d conditions", tc.q, len(conds))
			continue
		}
		c := conds[0]
		if c.Attr != tc.attr || c.Op != tc.op || c.Value != tc.value || c.IsNum != tc.isNum {
			t.Errorf("ParseQ(%q) = %+v, want attr=%q op=%v value=%q isNum=%v",
				tc.q, c, tc.attr, tc.op, tc.value, tc.isNum)
		}
	}
}

// TestParseQQuotedSemicolon: a ';' inside a quoted value is part of the
// value, not a conjunction separator.
func TestParseQQuotedSemicolon(t *testing.T) {
	conds, err := ParseQ("note=='a;b';zone==zone-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(conds) != 2 {
		t.Fatalf("conditions = %d, want 2", len(conds))
	}
	if conds[0].Attr != "note" || conds[0].Value != "a;b" || conds[0].IsNum {
		t.Errorf("first condition = %+v", conds[0])
	}
	if conds[1].Attr != "zone" || conds[1].Value != "zone-1" {
		t.Errorf("second condition = %+v", conds[1])
	}
}

func TestParseQConjunction(t *testing.T) {
	conds, err := ParseQ("soilMoisture<0.2;type==SoilProbe;battery")
	if err != nil {
		t.Fatal(err)
	}
	if len(conds) != 3 {
		t.Fatalf("conditions = %d, want 3", len(conds))
	}
	if conds[2].Op != OpExists || conds[2].Attr != "battery" {
		t.Errorf("third condition = %+v", conds[2])
	}
}

func TestParseQErrors(t *testing.T) {
	for _, q := range []string{
		"a=5",        // single '=' is not an operator
		"==5",        // missing attribute
		"a==",        // missing value
		"a=='x",      // unterminated quote
		";",          // empty statements
		"a==1;;b==2", // empty middle statement
		"!",          // bare negation
		"a b",        // whitespace inside attribute
	} {
		if _, err := ParseQ(q); err == nil {
			t.Errorf("ParseQ(%q): no error", q)
		}
	}
}

func TestParseQEmpty(t *testing.T) {
	for _, q := range []string{"", "   "} {
		conds, err := ParseQ(q)
		if err != nil || conds != nil {
			t.Errorf("ParseQ(%q) = %v, %v", q, conds, err)
		}
	}
}

func seedQueryBroker(t testing.TB, n int) *Broker {
	b := NewBroker(BrokerConfig{})
	t.Cleanup(b.Close)
	for i := 0; i < n; i++ {
		e := &Entity{
			ID:   fmt.Sprintf("urn:q:plot:%04d", i),
			Type: "AgriParcel",
			Attrs: map[string]Attribute{
				"soilMoisture": num(float64(i) / float64(n)),
				"zone":         {Type: "Text", Value: fmt.Sprintf("zone-%d", i%4)},
			},
		}
		if i%10 == 0 {
			e.Attrs["alarm"] = Attribute{Type: "Boolean", Value: true}
		}
		if err := b.UpsertEntity(e); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func mustQuery(t *testing.T, b *Broker, q Query) QueryResult {
	t.Helper()
	res, err := b.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestQueryFilterPushdown(t *testing.T) {
	b := seedQueryBroker(t, 100)

	conds, err := ParseQ("soilMoisture<0.1")
	if err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, b, Query{Conditions: conds, OrderBy: OrderByID, Count: true})
	if len(res.Entities) != 10 || res.Total != 10 {
		t.Fatalf("got %d entities, total %d, want 10/10", len(res.Entities), res.Total)
	}
	for i := 1; i < len(res.Entities); i++ {
		if res.Entities[i-1].ID >= res.Entities[i].ID {
			t.Fatal("result not ordered by id")
		}
	}

	// Conjunction with a string condition.
	conds, _ = ParseQ("soilMoisture<0.1;zone==zone-0")
	res = mustQuery(t, b, Query{Conditions: conds, Count: true, OrderBy: OrderByID})
	if res.Total != 3 { // i in {0,4,8} have zone-0 and moisture < 0.1
		t.Errorf("conjunction total = %d, want 3", res.Total)
	}

	// Unary existence.
	conds, _ = ParseQ("alarm")
	res = mustQuery(t, b, Query{Conditions: conds, Count: true})
	if res.Total != 10 {
		t.Errorf("existence total = %d, want 10", res.Total)
	}
	conds, _ = ParseQ("!alarm")
	res = mustQuery(t, b, Query{Conditions: conds, Count: true})
	if res.Total != 90 {
		t.Errorf("non-existence total = %d, want 90", res.Total)
	}
}

func TestQueryNumericVsStringComparison(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	b.UpsertEntity(&Entity{ID: "n", Type: "T", Attrs: map[string]Attribute{
		"level": num(5),
	}})
	b.UpsertEntity(&Entity{ID: "s", Type: "T", Attrs: map[string]Attribute{
		"level": {Type: "Text", Value: "5"},
	}})

	// Unquoted numeric value matches only the numeric attribute.
	conds, _ := ParseQ("level==5")
	res := mustQuery(t, b, Query{Conditions: conds})
	if len(res.Entities) != 1 || res.Entities[0].ID != "n" {
		t.Errorf("numeric compare matched %v", ids(res.Entities))
	}
	// Quoted value matches only the string attribute.
	conds, _ = ParseQ("level=='5'")
	res = mustQuery(t, b, Query{Conditions: conds})
	if len(res.Entities) != 1 || res.Entities[0].ID != "s" {
		t.Errorf("string compare matched %v", ids(res.Entities))
	}
}

// TestQueryEmptyResultVsMissingAttribute: a filter over an attribute
// nothing carries and a filter that simply matches nothing both return
// empty result sets (not errors), with Total 0 when counted.
func TestQueryEmptyResultVsMissingAttribute(t *testing.T) {
	b := seedQueryBroker(t, 20)
	for _, q := range []string{"soilMoisture>2", "nonexistent==1", "nonexistent"} {
		conds, err := ParseQ(q)
		if err != nil {
			t.Fatalf("ParseQ(%q): %v", q, err)
		}
		res := mustQuery(t, b, Query{Conditions: conds, Count: true})
		if len(res.Entities) != 0 || res.Total != 0 {
			t.Errorf("q=%q: %d entities, total %d", q, len(res.Entities), res.Total)
		}
	}
}

func TestQueryProjection(t *testing.T) {
	b := seedQueryBroker(t, 10)
	res := mustQuery(t, b, Query{Attrs: []string{"zone"}, OrderBy: OrderByID})
	if len(res.Entities) != 10 {
		t.Fatalf("entities = %d", len(res.Entities))
	}
	for _, e := range res.Entities {
		if _, ok := e.Attrs["zone"]; !ok {
			t.Fatal("projected attribute missing")
		}
		if _, leaked := e.Attrs["soilMoisture"]; leaked {
			t.Fatal("projection leaked unrequested attribute")
		}
	}
}

func TestQueryPagination(t *testing.T) {
	b := seedQueryBroker(t, 50)
	var got []string
	for off := 0; ; off += 7 {
		res := mustQuery(t, b, Query{OrderBy: OrderByID, Limit: 7, Offset: off, Count: true})
		if res.Total != 50 {
			t.Fatalf("total = %d", res.Total)
		}
		if len(res.Entities) == 0 {
			break
		}
		got = append(got, ids(res.Entities)...)
	}
	if len(got) != 50 {
		t.Fatalf("paginated %d entities, want 50", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("pages overlap or out of order")
		}
	}
}

func TestQueryUnorderedEarlyStop(t *testing.T) {
	b := seedQueryBroker(t, 200)
	res := mustQuery(t, b, Query{Limit: 5})
	if len(res.Entities) != 5 {
		t.Fatalf("unordered limited query returned %d", len(res.Entities))
	}
	if res.Total != -1 {
		t.Errorf("total = %d, want -1 without Count", res.Total)
	}
}

func TestQueryOrderByAttribute(t *testing.T) {
	b := seedQueryBroker(t, 20)
	res := mustQuery(t, b, Query{OrderBy: "soilMoisture", Limit: 3})
	if len(res.Entities) != 3 {
		t.Fatalf("entities = %d", len(res.Entities))
	}
	if res.Entities[0].ID != "urn:q:plot:0000" {
		t.Errorf("ascending attr order first = %s", res.Entities[0].ID)
	}
	res = mustQuery(t, b, Query{OrderBy: "!soilMoisture", Limit: 1})
	if res.Entities[0].ID != "urn:q:plot:0019" {
		t.Errorf("descending attr order first = %s", res.Entities[0].ID)
	}
}

// TestQueryOrderByAttributeWithProjection: ordering by an attribute the
// projection excludes must still order (and paginate) by that attribute
// across shards — and must not leak the sort key into the result.
func TestQueryOrderByAttributeWithProjection(t *testing.T) {
	b := seedQueryBroker(t, 20)
	res := mustQuery(t, b, Query{
		OrderBy: "!soilMoisture", Attrs: []string{"zone"}, Limit: 3,
	})
	if len(res.Entities) != 3 {
		t.Fatalf("entities = %d", len(res.Entities))
	}
	want := []string{"urn:q:plot:0019", "urn:q:plot:0018", "urn:q:plot:0017"}
	for i, e := range res.Entities {
		if e.ID != want[i] {
			t.Errorf("position %d = %s, want %s", i, e.ID, want[i])
		}
		if _, leaked := e.Attrs["soilMoisture"]; leaked {
			t.Error("carried sort key leaked into the projected result")
		}
		if _, ok := e.Attrs["zone"]; !ok {
			t.Error("projected attribute missing")
		}
	}
}

func TestQueryValidation(t *testing.T) {
	b := seedQueryBroker(t, 5)
	if _, err := b.Query(Query{Limit: -1}); err == nil {
		t.Error("negative limit accepted")
	}
	if _, err := b.Query(Query{Offset: -1}); err == nil {
		t.Error("negative offset accepted")
	}
	const maxInt = int(^uint(0) >> 1)
	if _, err := b.Query(Query{Limit: 10, Offset: maxInt - 5}); err == nil {
		t.Error("offset+limit overflow accepted (materialization bound silently disabled)")
	}
}

// TestQueryEntitiesWrapperEquivalence pins the compat wrapper to the old
// behavior: all matches, sorted by id.
func TestQueryEntitiesWrapperEquivalence(t *testing.T) {
	b := seedQueryBroker(t, 30)
	got := b.QueryEntities("urn:q:plot:000*", "AgriParcel")
	if len(got) != 10 {
		t.Fatalf("wrapper returned %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID >= got[i].ID {
			t.Fatal("wrapper result not sorted")
		}
	}
	if got := b.QueryEntities("*", "NoSuchType"); len(got) != 0 {
		t.Errorf("type filter returned %d", len(got))
	}
}

func ids(es []*Entity) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}
