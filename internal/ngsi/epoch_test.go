package ngsi

import "testing"

// TestEpochAdvancesOnMutations: every entity mutation path moves the
// epoch, and pure reads leave it alone — the contract the HTTP listing
// cache depends on.
func TestEpochAdvancesOnMutations(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()

	e0 := b.Epoch()
	if err := b.UpsertEntity(&Entity{ID: "d1", Type: "Thing", Attrs: map[string]Attribute{
		"v": {Type: "Number", Value: 1.0},
	}}); err != nil {
		t.Fatal(err)
	}
	e1 := b.Epoch()
	if e1 <= e0 {
		t.Fatalf("upsert did not advance epoch: %d -> %d", e0, e1)
	}

	if err := b.UpdateAttrs("d1", "Thing", map[string]Attribute{
		"v": {Type: "Number", Value: 2.0},
	}); err != nil {
		t.Fatal(err)
	}
	e2 := b.Epoch()
	if e2 <= e1 {
		t.Fatalf("update did not advance epoch: %d -> %d", e1, e2)
	}

	if err := b.BatchUpdate(map[string]BatchEntry{
		"d2": {Type: "Thing", Attrs: map[string]Attribute{"v": {Type: "Number", Value: 3.0}}},
		"d3": {Type: "Thing", Attrs: map[string]Attribute{"v": {Type: "Number", Value: 4.0}}},
	}); err != nil {
		t.Fatal(err)
	}
	e3 := b.Epoch()
	if e3 < e2+2 {
		t.Fatalf("batch of 2 advanced epoch by %d, want >= 2", e3-e2)
	}

	// Reads do not move it.
	if _, err := b.GetEntity("d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Query(Query{IDPattern: "*", OrderBy: OrderByID}); err != nil {
		t.Fatal(err)
	}
	if b.EntityCount() != 3 || b.Epoch() != e3 {
		t.Fatalf("reads moved the epoch: %d -> %d", e3, b.Epoch())
	}

	if err := b.DeleteEntity("d3"); err != nil {
		t.Fatal(err)
	}
	if b.Epoch() <= e3 {
		t.Fatalf("delete did not advance epoch: %d -> %d", e3, b.Epoch())
	}
}
