package ngsi

import (
	"errors"
	"fmt"
)

// ErrDurability marks a mutation that was applied in memory but whose
// journal record could not be made durable (and, where possible, was
// rolled back). Surfaces map it to a server-side status so clients
// retry instead of treating the payload as rejected.
var ErrDurability = errors.New("ngsi: not durable")

// notDurable wraps a journal ack failure in ErrDurability, keeping the
// underlying error in the chain; nil stays nil.
func notDurable(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrDurability, err)
}

// JournalAck is the durability handle a Journal hook returns: Wait blocks
// until the logged mutation is durable (group-committed and fsynced) and
// reports the commit error. Write paths call the hook under the shard (or
// subscription) lock — so log order matches apply order — and Wait after
// releasing it, so an fsync never stalls other writers on the same shard.
type JournalAck interface {
	Wait() error
}

// MergeEntry is one entity's resolved slice of a journaled attribute
// merge: the attributes exactly as applied, timestamps already stamped,
// so replay reproduces the stored state byte for byte.
type MergeEntry struct {
	ID    string               `json:"id"`
	Type  string               `json:"type"`
	Attrs map[string]Attribute `json:"attrs"`
}

// Journal receives every accepted context mutation after it has been
// applied in memory. A mutation is only acknowledged to the caller once
// its ack's Wait returns nil, so "accepted" means "recoverable".
// Subscriptions are journaled only when their Notifier carries an
// external endpoint (see Endpointer): in-process subscriptions are
// platform wiring re-created on startup.
type Journal interface {
	EntityUpserted(e *Entity) JournalAck
	EntitiesMerged(entries []MergeEntry) JournalAck
	EntityDeleted(id string) JournalAck
	SubscriptionPut(v SubscriptionView, endpoint string) JournalAck
	SubscriptionDeleted(id string) JournalAck
}

// Endpointer marks notifiers bound to an external callback URL — the
// durable kind. HTTPNotifier implements it; Callback does not.
type Endpointer interface {
	Endpoint() string
}

// SetJournal attaches a journal to the broker. It must be called before
// the broker receives traffic (i.e. between recovery and serving) — the
// field is read without synchronization on the write paths.
func (b *Broker) SetJournal(j Journal) { b.journal = j }

// waitAcks waits for every non-nil ack and returns the first error.
func waitAcks(acks []JournalAck) error {
	var first error
	for _, a := range acks {
		if a == nil {
			continue
		}
		if err := a.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
