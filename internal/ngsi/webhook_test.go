package ngsi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// webhookReceiver is a test endpoint that records the notifications it
// receives.
type webhookReceiver struct {
	srv *httptest.Server

	mu    sync.Mutex
	notes []notificationBody
}

func newWebhookReceiver(t *testing.T) *webhookReceiver {
	t.Helper()
	r := &webhookReceiver{}
	r.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var body notificationBody
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		r.mu.Lock()
		r.notes = append(r.notes, body)
		r.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(r.srv.Close)
	return r
}

func (r *webhookReceiver) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.notes)
}

func (r *webhookReceiver) last() notificationBody {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.notes[len(r.notes)-1]
}

// newStalledServer returns an endpoint that sleeps past the client
// timeout, simulating a wedged consumer.
func newStalledServer(t *testing.T, d time.Duration) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(d)
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func fastWebhookPool(t *testing.T, b *Broker, extra WebhookConfig) *WebhookPool {
	t.Helper()
	cfg := extra
	cfg.Client = &http.Client{Timeout: 100 * time.Millisecond}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = time.Millisecond
	}
	if cfg.OnStatus == nil && b != nil {
		cfg.OnStatus = StatusUpdater(b)
	}
	p := NewWebhookPool(cfg)
	t.Cleanup(p.Close)
	return p
}

// TestWebhookDelivery: an entity update flows broker → HTTPNotifier →
// endpoint as an NGSI notification payload.
func TestWebhookDelivery(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	recv := newWebhookReceiver(t)
	pool := fastWebhookPool(t, b, WebhookConfig{})

	hn, err := pool.Notifier("sub-wh", recv.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(Subscription{
		ID: "sub-wh", EntityIDPattern: "urn:wh:*", Notifier: hn, Owner: "farm1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.UpdateAttrs("urn:wh:1", "SoilProbe", map[string]Attribute{"soilMoisture": num(0.21)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return recv.count() == 1 })
	note := recv.last()
	if note.SubscriptionID != "sub-wh" || len(note.Data) != 1 || note.Data[0].ID != "urn:wh:1" {
		t.Errorf("payload = %+v", note)
	}
	if v, ok := note.Data[0].Attrs["soilMoisture"].Float(); !ok || v != 0.21 {
		t.Errorf("attr = %v", note.Data[0].Attrs["soilMoisture"].Value)
	}
	// The worker increments the counter only after reading the response,
	// which races the receiver-side count above — wait, don't assert.
	waitFor(t, 2*time.Second, func() bool {
		return pool.cfg.Metrics.Counter("ngsi.webhook.sent").Value() == 1
	})
	if view, err := b.Subscription("sub-wh"); err != nil || view.Status != SubActive {
		t.Errorf("subscription view = %+v, %v", view, err)
	}
}

// TestWebhookStalledEndpointIsolation: a stalled endpoint exhausts its
// retries, flips its own subscription to failed, and never delays the
// healthy subscriber.
func TestWebhookStalledEndpointIsolation(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	recv := newWebhookReceiver(t)
	stalled := newStalledServer(t, time.Second)
	pool := fastWebhookPool(t, b, WebhookConfig{
		MaxRetries: 1, FailureThreshold: 2, Workers: 4,
	})

	healthy, err := pool.Notifier("sub-ok", recv.srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := pool.Notifier("sub-bad", stalled.URL)
	if err != nil {
		t.Fatal(err)
	}
	for id, n := range map[string]Notifier{"sub-ok": healthy, "sub-bad": bad} {
		if _, err := b.Subscribe(Subscription{ID: id, EntityIDPattern: "*", Notifier: n}); err != nil {
			t.Fatal(err)
		}
	}

	const updates = 5
	for i := 0; i < updates; i++ {
		if err := b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// The healthy subscriber receives everything promptly.
	waitFor(t, 2*time.Second, func() bool { return recv.count() == updates })

	// The stalled subscription accumulates failures and flips to failed.
	reg := pool.cfg.Metrics
	waitFor(t, 10*time.Second, func() bool {
		return reg.Counter("ngsi.webhook.failed").Value() >= 2
	})
	waitFor(t, 2*time.Second, func() bool {
		view, err := b.Subscription("sub-bad")
		return err == nil && view.Status == SubFailed
	})
	if view, _ := b.Subscription("sub-ok"); view.Status != SubActive {
		t.Errorf("healthy subscription status = %s", view.Status)
	}
	if reg.Counter("ngsi.webhook.retries").Value() == 0 {
		t.Error("retries not counted")
	}
	if reg.Counter("ngsi.webhook.sent").Value() < updates {
		t.Errorf("sent = %d, want >= %d", reg.Counter("ngsi.webhook.sent").Value(), updates)
	}
}

// TestWebhookRecoveryFlipsStatusBack: after an endpoint recovers, the
// next successful delivery returns the subscription to active.
func TestWebhookRecoveryFlipsStatusBack(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	var failing atomic.Bool
	failing.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(srv.Close)
	pool := fastWebhookPool(t, b, WebhookConfig{MaxRetries: -1, FailureThreshold: 1})
	hn, err := pool.Notifier("sub-r", srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(Subscription{ID: "sub-r", EntityIDPattern: "*", Notifier: hn}); err != nil {
		t.Fatal(err)
	}
	b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(1)})
	waitFor(t, 2*time.Second, func() bool {
		view, _ := b.Subscription("sub-r")
		return view.Status == SubFailed
	})
	failing.Store(false)
	b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(2)})
	waitFor(t, 2*time.Second, func() bool {
		view, _ := b.Subscription("sub-r")
		return view.Status == SubActive
	})
}

// TestWebhookQueueOverflowDrops: a wedged endpoint overflows only its
// own bounded queue; the drop counter advances and Notify never blocks.
func TestWebhookQueueOverflowDrops(t *testing.T) {
	stalled := newStalledServer(t, time.Second)
	pool := fastWebhookPool(t, nil, WebhookConfig{QueueLen: 2, Workers: 1})
	hn, err := pool.Notifier("sub-of", stalled.URL)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		hn.Notify(Notification{SubscriptionID: "sub-of", Entity: &Entity{ID: "e", Type: "T"}})
	}
	if d := pool.cfg.Metrics.Counter("ngsi.webhook.dropped").Value(); d == 0 {
		t.Error("overflow not counted")
	}
}

// TestWebhookPoolLifecycle: duplicate registration is rejected, Remove
// stops a worker, Close is idempotent.
func TestWebhookPoolLifecycle(t *testing.T) {
	recv := newWebhookReceiver(t)
	pool := fastWebhookPool(t, nil, WebhookConfig{})
	if _, err := pool.Notifier("s1", recv.srv.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Notifier("s1", recv.srv.URL); err == nil {
		t.Error("duplicate notifier accepted")
	}
	if _, err := pool.Notifier("", recv.srv.URL); err == nil {
		t.Error("empty subscription id accepted")
	}
	if url, ok := pool.URL("s1"); !ok || url != recv.srv.URL {
		t.Errorf("URL(s1) = %q, %v", url, ok)
	}
	pool.Remove("s1")
	if _, ok := pool.URL("s1"); ok {
		t.Error("removed notifier still registered")
	}
	pool.Close()
	pool.Close()
	if _, err := pool.Notifier("s2", recv.srv.URL); err == nil {
		t.Error("closed pool accepted a notifier")
	}
}

// TestConcurrentSubscribeQueryWebhook drives Subscribe/Unsubscribe,
// filtered queries, entity updates and webhook delivery (one healthy,
// one stalled endpoint) concurrently — the -race coverage for the
// northbound plane.
func TestConcurrentSubscribeQueryWebhook(t *testing.T) {
	b := NewBroker(BrokerConfig{Shards: 4})
	defer b.Close()
	recv := newWebhookReceiver(t)
	stalled := newStalledServer(t, 50*time.Millisecond)
	pool := fastWebhookPool(t, b, WebhookConfig{MaxRetries: 0, FailureThreshold: 2, Workers: 4})

	for i, url := range []string{recv.srv.URL, stalled.URL} {
		id := fmt.Sprintf("sub-wh-%d", i)
		hn, err := pool.Notifier(id, url)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Subscribe(Subscription{ID: id, EntityIDPattern: "urn:c:*", Notifier: hn}); err != nil {
			t.Fatal(err)
		}
	}

	conds, err := ParseQ("soilMoisture>=0;soilMoisture<1")
	if err != nil {
		t.Fatal(err)
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Writers.
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("urn:c:%d:%d", w, i%8)
				_ = b.UpdateAttrs(id, "SoilProbe", map[string]Attribute{
					"soilMoisture": num(float64(i%100) / 100),
				})
			}
		}(w)
	}
	// Queriers.
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := b.Query(Query{
					IDPattern: "urn:c:*", Conditions: conds,
					Attrs: []string{"soilMoisture"}, Limit: 10, Count: true,
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Subscription churn.
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := 0; i < 50; i++ {
			id, err := b.Subscribe(Subscription{
				EntityIDPattern: "urn:c:churn:*",
				Notifier:        Callback(func(Notification) {}),
			})
			if err != nil {
				t.Error(err)
				return
			}
			b.Subscriptions()
			if err := b.Unsubscribe(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Wait for writers + churn, then stop queriers.
	done := make(chan struct{})
	go func() { writers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent workload wedged")
	}
	close(stop)
	readers.Wait()

	waitFor(t, 5*time.Second, func() bool { return recv.count() > 0 })
	if b.EntityCount() == 0 {
		t.Error("no entities written")
	}
}
