package ngsi

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestNotificationQueueOverflow: a slow subscriber cannot block updates;
// excess notifications are counted and dropped.
func TestNotificationQueueOverflow(t *testing.T) {
	b := NewBroker(BrokerConfig{QueueLen: 4})
	defer b.Close()
	block := make(chan struct{})
	var delivered atomic.Int32
	if _, err := b.Subscribe(Subscription{
		EntityIDPattern: "*",
		Notifier: Callback(func(Notification) {
			<-block
			delivered.Add(1)
		}),
	}); err != nil {
		t.Fatal(err)
	}
	// Flood far past the queue size while the handler is blocked.
	for i := 0; i < 50; i++ {
		if err := b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Metrics().Counter("ngsi.notify.dropped").Value(); got == 0 {
		t.Error("overflow not counted")
	}
	close(block)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && delivered.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if delivered.Load() == 0 {
		t.Error("queued notifications never delivered after unblock")
	}
	// Updates themselves were never blocked.
	if e, err := b.GetEntity("e"); err != nil {
		t.Fatal(err)
	} else if v, _ := e.Attrs["a"].Float(); v != 49 {
		t.Errorf("last write lost: %v", v)
	}
}

// TestCloseDrainsQueuedNotifications: notifications already queued at Close
// are still delivered.
func TestCloseDrainsQueuedNotifications(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	var delivered atomic.Int32
	if _, err := b.Subscribe(Subscription{
		EntityIDPattern: "*",
		Notifier:        Callback(func(Notification) { delivered.Add(1) }),
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.UpdateAttrs("e", "T", map[string]Attribute{"a": num(float64(i))})
	}
	b.Close() // must drain before returning
	if delivered.Load() != 10 {
		t.Errorf("delivered %d/10 before close completed", delivered.Load())
	}
}
