package ngsi

import (
	"errors"
	"sync/atomic"
	"testing"
)

type stubAck struct{ err error }

func (a stubAck) Wait() error { return a.err }

// stubJournal fails the mutations with configured errors and accepts
// everything else.
type stubJournal struct{ putErr, delErr, entityDelErr error }

func (j stubJournal) EntityUpserted(*Entity) JournalAck      { return stubAck{} }
func (j stubJournal) EntitiesMerged([]MergeEntry) JournalAck { return stubAck{} }
func (j stubJournal) EntityDeleted(string) JournalAck        { return stubAck{err: j.entityDelErr} }
func (j stubJournal) SubscriptionPut(SubscriptionView, string) JournalAck {
	return stubAck{err: j.putErr}
}
func (j stubJournal) SubscriptionDeleted(string) JournalAck { return stubAck{err: j.delErr} }

// endpointNotifier is an in-process notifier that claims an external
// endpoint, making it journal-eligible.
type endpointNotifier struct {
	Notifier
	url string
}

func (e endpointNotifier) Endpoint() string { return e.url }

func TestSubscribeJournalFailureRollsBack(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	werr := errors.New("disk full")
	b.SetJournal(stubJournal{putErr: werr})

	var fired atomic.Int32
	id, err := b.Subscribe(Subscription{
		EntityIDPattern: "*",
		Notifier: endpointNotifier{
			Notifier: Callback(func(Notification) { fired.Add(1) }),
			url:      "http://example.test/hook",
		},
	})
	if !errors.Is(err, werr) {
		t.Fatalf("Subscribe error = %v, want %v", err, werr)
	}
	if id != "" {
		t.Errorf("failed Subscribe returned id %q", id)
	}
	if n := b.SubscriptionCount(); n != 0 {
		t.Fatalf("SubscriptionCount = %d after failed Subscribe", n)
	}

	// The rolled-back subscription must not deliver: Close drains the
	// dispatch queues, so fired is final after it.
	if err := b.UpsertEntity(&Entity{ID: "urn:swamp:plot:1", Type: "AgriParcel", Attrs: map[string]Attribute{
		"soilMoisture": num(0.5),
	}}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if n := fired.Load(); n != 0 {
		t.Fatalf("rolled-back subscription delivered %d notifications", n)
	}
}

func TestUnsubscribeJournalFailureRollsBack(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	werr := errors.New("disk full")
	b.SetJournal(stubJournal{delErr: werr})

	var fired atomic.Int32
	id, err := b.Subscribe(Subscription{
		EntityIDPattern: "*",
		Notifier: endpointNotifier{
			Notifier: Callback(func(Notification) { fired.Add(1) }),
			url:      "http://example.test/hook",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Unsubscribe(id); !errors.Is(err, werr) {
		t.Fatalf("Unsubscribe error = %v, want %v", err, werr)
	}
	// The failed delete must leave the subscription live — it would
	// resurrect on restart anyway (the delete record never became
	// durable).
	if n := b.SubscriptionCount(); n != 1 {
		t.Fatalf("SubscriptionCount = %d after failed Unsubscribe, want 1", n)
	}
	if err := b.UpsertEntity(&Entity{ID: "urn:swamp:plot:1", Type: "AgriParcel", Attrs: map[string]Attribute{
		"soilMoisture": num(0.5),
	}}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if n := fired.Load(); n != 1 {
		t.Fatalf("subscription delivered %d notifications after rolled-back Unsubscribe, want 1", n)
	}
}

func TestDeleteEntityJournalFailureRollsBack(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	if err := b.UpsertEntity(&Entity{ID: "urn:swamp:plot:1", Type: "AgriParcel", Attrs: map[string]Attribute{
		"soilMoisture": num(0.5),
	}}); err != nil {
		t.Fatal(err)
	}
	werr := errors.New("disk full")
	b.SetJournal(stubJournal{entityDelErr: werr})

	err := b.DeleteEntity("urn:swamp:plot:1")
	if !errors.Is(err, werr) || !errors.Is(err, ErrDurability) {
		t.Fatalf("DeleteEntity error = %v, want ErrDurability wrapping %v", err, werr)
	}
	// The failed delete must leave the entity readable — it would
	// resurrect on restart anyway (the delete record never became
	// durable, while the upserts did).
	if _, err := b.GetEntity("urn:swamp:plot:1"); err != nil {
		t.Fatalf("entity gone after rolled-back delete: %v", err)
	}
}
