package ngsi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/tenant"
)

// Webhook defaults.
const (
	// DefaultWebhookWorkers bounds concurrent outbound HTTP deliveries
	// across the whole pool.
	DefaultWebhookWorkers = 8
	// DefaultWebhookQueueLen is the per-subscription pending queue bound.
	DefaultWebhookQueueLen = 64
	// DefaultWebhookRetries is the number of redelivery attempts after a
	// failed POST.
	DefaultWebhookRetries = 2
	// DefaultWebhookBackoff is the first retry delay; it doubles per
	// attempt.
	DefaultWebhookBackoff = 250 * time.Millisecond
	// DefaultWebhookFailureThreshold is how many consecutive exhausted
	// deliveries flip a subscription to SubFailed.
	DefaultWebhookFailureThreshold = 3
	// DefaultWebhookTimeout bounds one POST when no Client is supplied.
	DefaultWebhookTimeout = 5 * time.Second
)

// WebhookConfig configures a WebhookPool.
type WebhookConfig struct {
	// Client performs the POSTs; nil uses a client with
	// DefaultWebhookTimeout. Supply a short-timeout client in tests.
	Client *http.Client
	// Clock drives retry backoff; nil means the wall clock.
	Clock clock.Clock
	// Metrics receives the webhook counters; nil allocates a private
	// registry.
	Metrics *metrics.Registry
	// Workers bounds concurrent HTTP deliveries across all
	// subscriptions (default DefaultWebhookWorkers).
	Workers int
	// QueueLen bounds each subscription's pending-notification queue
	// (default DefaultWebhookQueueLen). Overflow drops the newest
	// notification for that subscription only.
	QueueLen int
	// MaxRetries is the number of redelivery attempts per notification
	// after the first failure (default DefaultWebhookRetries; negative
	// disables retries).
	MaxRetries int
	// RetryBackoff is the first retry delay, doubling per attempt
	// (default DefaultWebhookBackoff).
	RetryBackoff time.Duration
	// FailureThreshold is the consecutive-exhausted-delivery count that
	// flips a subscription to SubFailed (default
	// DefaultWebhookFailureThreshold).
	FailureThreshold int
	// OnStatus, if set, is invoked when a subscription's endpoint
	// crosses the failure threshold (healthy=false) or recovers
	// (healthy=true). Wire it to Broker.SetSubscriptionStatus.
	OnStatus func(subscriptionID string, healthy bool)
	// Admission is the shared per-tenant admission controller. nil (or
	// disabled) changes nothing; when set, owned notifiers cap their
	// queue at the tenant's webhook share and delay deliveries on the
	// ladder's Delay rung.
	Admission *tenant.Admission
}

// WebhookPool delivers NGSI notifications to subscription callback URLs.
// It is the PR 3 per-session-queue recipe applied to outbound HTTP: each
// subscription owns a bounded pending queue and a delivery goroutine, so
// a stalled endpoint backs up (and overflows) only its own queue, while
// a shared semaphore bounds total concurrent HTTP requests.
type WebhookPool struct {
	cfg WebhookConfig
	// sem is the delivery-concurrency semaphore, swappable at runtime by
	// SetWorkers: acquirers load the current channel, and a holder
	// releases into the channel it acquired from, so a resize never
	// corrupts accounting — it just lets in-flight deliveries finish
	// under the old bound while new ones take the new bound.
	sem atomic.Pointer[chan struct{}]
	// backoffNanos is the reloadable first-retry delay (doubles per
	// attempt), read per delivery.
	backoffNanos atomic.Int64

	mu        sync.Mutex
	notifiers map[string]*HTTPNotifier
	closed    bool
	wg        sync.WaitGroup

	depth                              *metrics.Gauge
	cSent, cFailed, cRetries, cDropped *metrics.Counter
}

// NewWebhookPool builds a pool; Close releases the delivery goroutines.
func NewWebhookPool(cfg WebhookConfig) *WebhookPool {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: DefaultWebhookTimeout}
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWebhookWorkers
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultWebhookQueueLen
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultWebhookRetries
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = DefaultWebhookBackoff
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultWebhookFailureThreshold
	}
	p := &WebhookPool{
		cfg:       cfg,
		notifiers: make(map[string]*HTTPNotifier),
		depth:     cfg.Metrics.Gauge("ngsi.webhook.depth"),
		cSent:     cfg.Metrics.Counter("ngsi.webhook.sent"),
		cFailed:   cfg.Metrics.Counter("ngsi.webhook.failed"),
		cRetries:  cfg.Metrics.Counter("ngsi.webhook.retries"),
		cDropped:  cfg.Metrics.Counter("ngsi.webhook.dropped"),
	}
	sem := make(chan struct{}, cfg.Workers)
	p.sem.Store(&sem)
	p.backoffNanos.Store(int64(cfg.RetryBackoff))
	return p
}

// SetWorkers changes the delivery-concurrency bound by swapping in a new
// semaphore. Deliveries already in flight finish against the old
// semaphore (a transient overshoot bounded by old+new), so the new bound
// is exact once they drain. n <= 0 restores the default.
func (p *WebhookPool) SetWorkers(n int) {
	if n <= 0 {
		n = DefaultWebhookWorkers
	}
	sem := make(chan struct{}, n)
	p.sem.Store(&sem)
}

// SetRetryBackoff changes the first-retry delay (doubling per attempt),
// effective on the next delivery. d <= 0 restores the default.
func (p *WebhookPool) SetRetryBackoff(d time.Duration) {
	if d <= 0 {
		d = DefaultWebhookBackoff
	}
	p.backoffNanos.Store(int64(d))
}

// ErrPoolClosed is returned by Notifier on a closed pool.
var ErrPoolClosed = errors.New("ngsi: webhook pool closed")

// StatusUpdater returns the standard WebhookConfig.OnStatus wiring: flip
// the broker subscription between SubActive and SubFailed as its
// endpoint recovers or crosses the failure threshold.
func StatusUpdater(b *Broker) func(subscriptionID string, healthy bool) {
	return func(id string, healthy bool) {
		st := SubFailed
		if healthy {
			st = SubActive
		}
		_ = b.SetSubscriptionStatus(id, st)
	}
}

// Notifier registers a delivery worker for one subscription and returns
// its Notifier. The subscription id keys the worker: Remove stops it.
func (p *WebhookPool) Notifier(subscriptionID, url string) (*HTTPNotifier, error) {
	if subscriptionID == "" || url == "" {
		return nil, fmt.Errorf("ngsi: webhook notifier needs subscription id and url")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	if _, dup := p.notifiers[subscriptionID]; dup {
		return nil, fmt.Errorf("ngsi: duplicate webhook notifier for subscription %q", subscriptionID)
	}
	n := &HTTPNotifier{
		pool:  p,
		subID: subscriptionID,
		url:   url,
		queue: make(chan Notification, p.cfg.QueueLen),
		stop:  make(chan struct{}),
	}
	p.notifiers[subscriptionID] = n
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		n.run()
	}()
	return n, nil
}

// URL returns the callback URL registered for a subscription.
func (p *WebhookPool) URL(subscriptionID string) (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.notifiers[subscriptionID]
	if !ok {
		return "", false
	}
	return n.url, true
}

// Remove stops and forgets the subscription's delivery worker; pending
// notifications are discarded.
func (p *WebhookPool) Remove(subscriptionID string) {
	p.mu.Lock()
	n := p.notifiers[subscriptionID]
	delete(p.notifiers, subscriptionID)
	p.mu.Unlock()
	if n != nil {
		n.shutdown()
	}
}

// Close stops every delivery worker and waits for them to exit.
func (p *WebhookPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	notifiers := p.notifiers
	p.notifiers = make(map[string]*HTTPNotifier)
	p.mu.Unlock()
	for _, n := range notifiers {
		n.shutdown()
	}
	p.wg.Wait()
}

// Drain blocks until every subscription queue is empty or the timeout
// elapses, and returns the remaining depth. Use it before Close during
// shutdown so queued notifications are delivered rather than discarded —
// a stalled endpoint bounds the wait at the timeout instead of wedging
// shutdown.
func (p *WebhookPool) Drain(timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	for {
		d := p.Depth()
		if d == 0 || time.Now().After(deadline) {
			return d
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Depth returns the total number of pending notifications across all
// subscription queues.
func (p *WebhookPool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := 0
	for _, n := range p.notifiers {
		d += len(n.queue)
	}
	return d
}

// HTTPNotifier implements Notifier by POSTing NGSI notification payloads
// to one subscription's callback URL. Notify never blocks: it enqueues
// onto the subscription's bounded queue and drops (counted) on overflow,
// so a stalled endpoint cannot back-pressure the broker's dispatchers.
type HTTPNotifier struct {
	pool  *WebhookPool
	subID string
	url   string
	queue chan Notification
	stop  chan struct{}

	// owner is the subscription's tenant, set once via SetOwner before
	// the subscription starts receiving traffic; tenant.None exempts the
	// notifier from per-tenant queue caps and delivery delays.
	owner tenant.ID

	closed   atomic.Bool
	stopOnce sync.Once

	// consecFail and failed are only touched by the delivery goroutine.
	consecFail int
	failed     bool
}

// Endpoint implements Endpointer: it returns the callback URL, marking
// webhook subscriptions as durable for the journal.
func (n *HTTPNotifier) Endpoint() string { return n.url }

// SetOwner binds the notifier to its subscription's tenant for webhook
// quota accounting. Call it after Notifier and before the subscription is
// registered with the broker (registration is the synchronization point —
// no notification can race a SetOwner that precedes it).
func (n *HTTPNotifier) SetOwner(id tenant.ID) { n.owner = id }

// Notify implements Notifier.
func (n *HTTPNotifier) Notify(note Notification) {
	if n.closed.Load() {
		n.pool.cDropped.Inc()
		return
	}
	// The tenant's webhook share caps how much of the per-subscription
	// queue an owned subscription may fill: an over-subscribed tenant's
	// backlog saturates at its share while others keep their full queue.
	if adm := n.pool.cfg.Admission; adm.Enabled() && !n.owner.IsNone() {
		if len(n.queue) >= adm.WebhookQueueCap(n.owner, cap(n.queue)) {
			n.pool.cDropped.Inc()
			return
		}
	}
	select {
	case n.queue <- note:
		n.pool.depth.Add(1)
		n.pool.cfg.Admission.AddQueueDepth(n.owner, 1)
		// Re-check after the enqueue: if shutdown ran (and drained)
		// concurrently, nobody will ever service the queue again, so
		// drain one item ourselves to keep the depth gauge truthful.
		if n.closed.Load() {
			select {
			case <-n.queue:
				n.pool.depth.Add(-1)
				n.pool.cfg.Admission.AddQueueDepth(n.owner, -1)
				n.pool.cDropped.Inc()
			default:
			}
		}
	default:
		n.pool.cDropped.Inc()
	}
}

func (n *HTTPNotifier) shutdown() {
	n.stopOnce.Do(func() {
		n.closed.Store(true)
		close(n.stop)
	})
}

func (n *HTTPNotifier) run() {
	for {
		select {
		case <-n.stop:
			// Discard whatever is still pending so the depth gauge
			// stays truthful.
			for {
				select {
				case <-n.queue:
					n.pool.depth.Add(-1)
					n.pool.cfg.Admission.AddQueueDepth(n.owner, -1)
					n.pool.cDropped.Inc()
				default:
					return
				}
			}
		case note := <-n.queue:
			n.pool.depth.Add(-1)
			n.pool.cfg.Admission.AddQueueDepth(n.owner, -1)
			n.deliver(note)
		}
	}
}

// notificationBody is the NGSI-v2 notification wire format.
type notificationBody struct {
	SubscriptionID string    `json:"subscriptionId"`
	Data           []*Entity `json:"data"`
}

// deliver POSTs one notification with per-subscription retry/backoff and
// consecutive-failure tracking. The worker only occupies a pool slot
// while the HTTP request is in flight — backoff sleeps release it.
func (n *HTTPNotifier) deliver(note Notification) {
	cfg := &n.pool.cfg
	// Delay rung of the tenant shed ladder: an indebted tenant's webhooks
	// are postponed, not dropped — the sleep happens on this notifier's
	// own goroutine, before a pool slot is held, so no other tenant waits.
	if d := cfg.Admission.WebhookDelay(n.owner); d > 0 {
		select {
		case <-n.stop:
			return
		case <-cfg.Clock.After(d):
		}
	}
	body, err := json.Marshal(notificationBody{SubscriptionID: n.subID, Data: []*Entity{note.Entity}})
	if err != nil {
		n.pool.cFailed.Inc()
		return
	}
	backoff := time.Duration(n.pool.backoffNanos.Load())
	for attempt := 0; ; attempt++ {
		err := n.post(body)
		if err == nil {
			n.pool.cSent.Inc()
			n.consecFail = 0
			if n.failed {
				n.failed = false
				if cfg.OnStatus != nil {
					cfg.OnStatus(n.subID, true)
				}
			}
			return
		}
		if errors.Is(err, ErrPoolClosed) {
			return
		}
		if attempt >= cfg.MaxRetries {
			n.pool.cFailed.Inc()
			n.consecFail++
			if n.consecFail >= cfg.FailureThreshold && !n.failed {
				n.failed = true
				if cfg.OnStatus != nil {
					cfg.OnStatus(n.subID, false)
				}
			}
			return
		}
		n.pool.cRetries.Inc()
		select {
		case <-n.stop:
			return
		case <-cfg.Clock.After(backoff):
		}
		backoff *= 2
	}
}

// post performs one delivery attempt under the pool's concurrency bound.
func (n *HTTPNotifier) post(body []byte) error {
	sem := *n.pool.sem.Load()
	select {
	case sem <- struct{}{}:
	case <-n.stop:
		return ErrPoolClosed
	}
	defer func() { <-sem }()
	resp, err := n.pool.cfg.Client.Post(n.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= http.StatusMultipleChoices {
		return fmt.Errorf("ngsi: webhook %s: status %d", n.url, resp.StatusCode)
	}
	return nil
}
