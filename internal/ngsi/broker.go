package ngsi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/metrics"
)

// ErrNotFound is returned for lookups of unknown entities or subscriptions.
var ErrNotFound = errors.New("ngsi: not found")

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = errors.New("ngsi: broker closed")

// Notification is what a subscriber receives: the subscription that fired
// and the entity snapshot restricted to the requested attributes.
type Notification struct {
	SubscriptionID string
	Entity         *Entity
	At             time.Time
}

// Handler consumes notifications. Handlers run on the broker's dispatch
// goroutine; they must not block for long.
type Handler func(Notification)

// Subscription describes the NGSI-v2 subject+notification contract:
// which entities, which attribute changes trigger, which attributes are
// delivered, and optional throttling.
type Subscription struct {
	ID string
	// EntityIDPattern selects entities: exact id, prefix with '*', or "*".
	EntityIDPattern string
	// EntityType, if non-empty, further restricts matching entities.
	EntityType string
	// ConditionAttrs lists the attributes whose change fires the
	// subscription; empty means any attribute change.
	ConditionAttrs []string
	// NotifyAttrs restricts the attributes included in notifications;
	// empty means all.
	NotifyAttrs []string
	// Throttling suppresses notifications closer together than this.
	Throttling time.Duration
	// Handler receives the notifications. Required.
	Handler Handler
}

type subState struct {
	sub          Subscription
	lastNotified map[string]time.Time // per entity id
}

// BrokerConfig configures the context broker.
type BrokerConfig struct {
	// Clock drives throttling decisions; nil means the wall clock.
	Clock clock.Clock
	// Metrics receives broker counters; nil allocates a private registry.
	Metrics *metrics.Registry
	// QueueLen bounds the async notification queue (default 4096).
	QueueLen int
}

// Broker is the context broker. Construct with NewBroker; call Close to
// release the dispatch goroutine.
type Broker struct {
	clk clock.Clock
	reg *metrics.Registry

	mu       sync.RWMutex
	entities map[string]*Entity
	subs     map[string]*subState
	nextSub  int
	closed   bool

	queue chan queuedNotification
	done  chan struct{}
	wg    sync.WaitGroup
}

type queuedNotification struct {
	handler Handler
	note    Notification
}

// NewBroker constructs a broker and starts its dispatcher.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	b := &Broker{
		clk:      cfg.Clock,
		reg:      cfg.Metrics,
		entities: make(map[string]*Entity),
		subs:     make(map[string]*subState),
		queue:    make(chan queuedNotification, cfg.QueueLen),
		done:     make(chan struct{}),
	}
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.dispatch()
	}()
	return b
}

func (b *Broker) dispatch() {
	for {
		select {
		case <-b.done:
			// Drain what is already queued, then exit.
			for {
				select {
				case q := <-b.queue:
					q.handler(q.note)
				default:
					return
				}
			}
		case q := <-b.queue:
			q.handler(q.note)
		}
	}
}

// Close stops the dispatcher after draining queued notifications.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.done)
	b.wg.Wait()
}

// Metrics returns the broker's registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// UpsertEntity creates or replaces an entity wholesale and notifies
// subscribers of every attribute as changed.
func (b *Broker) UpsertEntity(e *Entity) error {
	if err := validateEntityKey(e.ID, e.Type); err != nil {
		return err
	}
	cp := e.Clone()
	now := b.clk.Now()
	for k, a := range cp.Attrs {
		if a.At.IsZero() {
			a.At = now
			cp.Attrs[k] = a
		}
	}
	changed := make([]string, 0, len(cp.Attrs))
	for k := range cp.Attrs {
		changed = append(changed, k)
	}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.entities[cp.ID] = cp
	b.reg.Counter("ngsi.upsert").Inc()
	b.notifyLocked(cp, changed)
	b.mu.Unlock()
	return nil
}

// UpdateAttrs merges attribute updates into an existing entity (creating it
// with type typ if absent, matching Orion's upsert semantics for the IoT
// agent path) and fires matching subscriptions.
func (b *Broker) UpdateAttrs(id, typ string, attrs map[string]Attribute) error {
	if err := validateEntityKey(id, typ); err != nil {
		return err
	}
	if len(attrs) == 0 {
		return fmt.Errorf("ngsi: entity %q: empty attribute update", id)
	}
	now := b.clk.Now()

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	e := b.entities[id]
	if e == nil {
		e = &Entity{ID: id, Type: typ, Attrs: make(map[string]Attribute)}
		b.entities[id] = e
	}
	changed := make([]string, 0, len(attrs))
	for k, a := range attrs {
		ca := cloneAttr(a)
		if ca.At.IsZero() {
			ca.At = now
		}
		e.Attrs[k] = ca
		changed = append(changed, k)
	}
	b.reg.Counter("ngsi.update").Inc()
	b.notifyLocked(e, changed)
	return nil
}

// BatchUpdate applies several entity updates atomically with respect to
// queries (one lock hold) and fires subscriptions per entity.
func (b *Broker) BatchUpdate(updates map[string]struct {
	Type  string
	Attrs map[string]Attribute
}) error {
	ids := make([]string, 0, len(updates))
	for id := range updates {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic application order
	for _, id := range ids {
		u := updates[id]
		if err := b.UpdateAttrs(id, u.Type, u.Attrs); err != nil {
			return fmt.Errorf("ngsi: batch update %q: %w", id, err)
		}
	}
	return nil
}

// GetEntity returns a deep copy of the entity.
func (b *Broker) GetEntity(id string) (*Entity, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e := b.entities[id]
	if e == nil {
		return nil, fmt.Errorf("ngsi: entity %q: %w", id, ErrNotFound)
	}
	return e.Clone(), nil
}

// QueryEntities returns copies of entities matching the id pattern and
// (optional) type, sorted by id.
func (b *Broker) QueryEntities(idPattern, entityType string) []*Entity {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []*Entity
	for id, e := range b.entities {
		if !MatchIDPattern(idPattern, id) {
			continue
		}
		if entityType != "" && e.Type != entityType {
			continue
		}
		out = append(out, e.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DeleteEntity removes an entity.
func (b *Broker) DeleteEntity(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.entities[id]; !ok {
		return fmt.Errorf("ngsi: entity %q: %w", id, ErrNotFound)
	}
	delete(b.entities, id)
	b.reg.Counter("ngsi.delete").Inc()
	return nil
}

// EntityCount returns the number of stored entities.
func (b *Broker) EntityCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.entities)
}

// Subscribe registers a subscription and returns its id.
func (b *Broker) Subscribe(sub Subscription) (string, error) {
	if sub.Handler == nil {
		return "", fmt.Errorf("ngsi: subscription without handler")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return "", ErrClosed
	}
	if sub.ID == "" {
		b.nextSub++
		sub.ID = fmt.Sprintf("sub-%d", b.nextSub)
	}
	if _, dup := b.subs[sub.ID]; dup {
		return "", fmt.Errorf("ngsi: duplicate subscription id %q", sub.ID)
	}
	b.subs[sub.ID] = &subState{sub: sub, lastNotified: make(map[string]time.Time)}
	b.reg.Counter("ngsi.subscribe").Inc()
	return sub.ID, nil
}

// Unsubscribe removes a subscription.
func (b *Broker) Unsubscribe(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[id]; !ok {
		return fmt.Errorf("ngsi: subscription %q: %w", id, ErrNotFound)
	}
	delete(b.subs, id)
	return nil
}

// SubscriptionCount returns the number of active subscriptions.
func (b *Broker) SubscriptionCount() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// notifyLocked evaluates subscriptions against an entity whose attributes
// in changed were just written. b.mu must be held.
func (b *Broker) notifyLocked(e *Entity, changed []string) {
	now := b.clk.Now()
	for _, st := range b.subs {
		s := &st.sub
		if !MatchIDPattern(s.EntityIDPattern, e.ID) {
			continue
		}
		if s.EntityType != "" && s.EntityType != e.Type {
			continue
		}
		if len(s.ConditionAttrs) > 0 && !intersects(s.ConditionAttrs, changed) {
			continue
		}
		if s.Throttling > 0 {
			if last, ok := st.lastNotified[e.ID]; ok && now.Sub(last) < s.Throttling {
				b.reg.Counter("ngsi.notify.throttled").Inc()
				continue
			}
		}
		st.lastNotified[e.ID] = now

		snapshot := e.Clone()
		if len(s.NotifyAttrs) > 0 {
			filtered := make(map[string]Attribute, len(s.NotifyAttrs))
			for _, k := range s.NotifyAttrs {
				if a, ok := snapshot.Attrs[k]; ok {
					filtered[k] = a
				}
			}
			snapshot.Attrs = filtered
		}
		note := Notification{SubscriptionID: s.ID, Entity: snapshot, At: now}
		select {
		case b.queue <- queuedNotification{handler: s.Handler, note: note}:
			b.reg.Counter("ngsi.notify.queued").Inc()
		default:
			b.reg.Counter("ngsi.notify.dropped").Inc()
		}
	}
}

func intersects(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
