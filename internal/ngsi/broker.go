package ngsi

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/shardhash"
	"github.com/swamp-project/swamp/internal/tenant"
)

// ErrNotFound is returned for lookups of unknown entities or subscriptions.
var ErrNotFound = errors.New("ngsi: not found")

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = errors.New("ngsi: broker closed")

// Notification is what a subscriber receives: the subscription that fired
// and the entity snapshot restricted to the requested attributes.
type Notification struct {
	SubscriptionID string
	Entity         *Entity
	At             time.Time
}

// Handler consumes notifications. Handlers run on a shard's dispatch
// goroutine; they must not block for long.
type Handler func(Notification)

// Subscription describes the NGSI-v2 subject+notification contract:
// which entities, which attribute changes trigger, which attributes are
// delivered, and optional throttling.
type Subscription struct {
	ID string
	// EntityIDPattern selects entities: exact id, prefix with '*', or "*".
	EntityIDPattern string
	// EntityType, if non-empty, further restricts matching entities.
	EntityType string
	// ConditionAttrs lists the attributes whose change fires the
	// subscription; empty means any attribute change.
	ConditionAttrs []string
	// NotifyAttrs restricts the attributes included in notifications;
	// empty means all.
	NotifyAttrs []string
	// Throttling suppresses notifications closer together than this,
	// tracked per entity.
	Throttling time.Duration
	// Notifier receives the notifications. Required. In-process
	// consumers wrap a function with Callback; HTTP subscriptions use an
	// HTTPNotifier from a WebhookPool.
	Notifier Notifier
	// Owner is the tenant that created the subscription; the HTTP API
	// scopes visibility and deletion to it, and the admission plane
	// charges webhook budgets against it. tenant.None for internal
	// wiring.
	Owner tenant.ID
}

// BrokerConfig configures the context broker.
type BrokerConfig struct {
	// Clock drives throttling decisions; nil means the wall clock.
	Clock clock.Clock
	// Metrics receives broker counters; nil allocates a private registry.
	Metrics *metrics.Registry
	// QueueLen bounds each shard's async notification queue (default 4096).
	QueueLen int
	// Shards is the number of hash-sharded entity stores, each with its own
	// lock and dispatch worker (default 8). Upserts on entities in
	// different shards never contend.
	Shards int
	// CompatLinearScan disables the subscription index and evaluates every
	// registered subscription on each update — the pre-sharding behavior.
	// Exists so benchmarks can measure the index win; leave false.
	CompatLinearScan bool
}

// DefaultShards is the shard count used when BrokerConfig.Shards is zero.
const DefaultShards = 8

// Broker is the context broker: a hash-sharded entity store with an
// indexed subscription table. Construct with NewBroker; call Close to
// release the dispatch goroutines.
type Broker struct {
	clk    clock.Clock
	reg    *metrics.Registry
	scan   bool
	shards []*shard
	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup

	// epoch counts entity mutations; see Epoch. Bumped after each
	// mutation is applied (inside the shard lock), so a reader that
	// captures the epoch before a scan can tell afterwards whether the
	// scanned state might since have changed.
	epoch atomic.Uint64

	// Subscription table. The index is copy-on-write: subscribe/unsubscribe
	// rebuild it under subMu and publish atomically; shard update paths
	// load it lock-free.
	subMu   sync.Mutex
	subs    map[string]*subState
	nextSub int
	index   atomic.Pointer[subIndex]

	// journal, when set, receives every accepted mutation; callers are
	// only acknowledged once the journal ack resolves. Set via SetJournal
	// before the broker receives traffic.
	journal Journal

	// Hot-path counters, resolved once so updates never touch the registry
	// map.
	cUpsert, cUpdate, cDelete     *metrics.Counter
	cQueued, cDropped, cDelivered *metrics.Counter
	cThrottled                    *metrics.Counter
	cBatchCalls, cBatchEntities   *metrics.Counter
}

// shard is one slice of the entity map with its own lock, notification
// queue and dispatch worker. An entity id always hashes to the same shard,
// which serializes updates (and thus notification order) per entity.
type shard struct {
	mu       sync.RWMutex
	entities map[string]*Entity
	queue    chan queuedNotification
	depth    *metrics.Gauge
}

type queuedNotification struct {
	notifier Notifier
	note     Notification
}

// NewBroker constructs a broker and starts one dispatcher per shard.
func NewBroker(cfg BrokerConfig) *Broker {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 4096
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	b := &Broker{
		clk:  cfg.Clock,
		reg:  cfg.Metrics,
		scan: cfg.CompatLinearScan,
		subs: make(map[string]*subState),
		done: make(chan struct{}),

		cUpsert:        cfg.Metrics.Counter("ngsi.upsert"),
		cUpdate:        cfg.Metrics.Counter("ngsi.update"),
		cDelete:        cfg.Metrics.Counter("ngsi.delete"),
		cQueued:        cfg.Metrics.Counter("ngsi.notify.queued"),
		cDropped:       cfg.Metrics.Counter("ngsi.notify.dropped"),
		cDelivered:     cfg.Metrics.Counter("ngsi.notify.delivered"),
		cThrottled:     cfg.Metrics.Counter("ngsi.notify.throttled"),
		cBatchCalls:    cfg.Metrics.Counter("ngsi.batch.calls"),
		cBatchEntities: cfg.Metrics.Counter("ngsi.batch.entities"),
	}
	b.index.Store(newSubIndex())
	b.reg.Gauge("ngsi.shards").Set(float64(cfg.Shards))
	b.shards = make([]*shard, cfg.Shards)
	for i := range b.shards {
		sh := &shard{
			entities: make(map[string]*Entity),
			queue:    make(chan queuedNotification, cfg.QueueLen),
			depth:    cfg.Metrics.Gauge(fmt.Sprintf("ngsi.queue.depth.%d", i)),
		}
		b.shards[i] = sh
		b.wg.Add(1)
		go func() {
			defer b.wg.Done()
			b.dispatch(sh)
		}()
	}
	return b
}

// shardFor hashes an entity id onto its shard (FNV-1a).
func (b *Broker) shardFor(id string) *shard {
	return b.shards[b.shardIndex(id)]
}

func (b *Broker) shardIndex(id string) int {
	return shardhash.Index(len(b.shards), id)
}

func (b *Broker) dispatch(sh *shard) {
	for {
		select {
		case <-b.done:
			// Drain what is already queued, then exit.
			for {
				select {
				case q := <-sh.queue:
					q.notifier.Notify(q.note)
					b.cDelivered.Inc()
				default:
					sh.depth.Set(0)
					return
				}
			}
		case q := <-sh.queue:
			q.notifier.Notify(q.note)
			b.cDelivered.Inc()
			sh.depth.Set(float64(len(sh.queue)))
		}
	}
}

// Close stops the dispatchers after draining queued notifications. Updates
// that were accepted before Close are guaranteed delivery: the shard-lock
// barrier below flushes in-flight writers (their enqueues happen under the
// shard lock), and writers arriving later see closed under the lock and
// return ErrClosed without enqueuing.
func (b *Broker) Close() {
	if !b.closed.CompareAndSwap(false, true) {
		return
	}
	for _, sh := range b.shards {
		sh.mu.Lock()
		//lint:ignore SA2001 empty critical section is the barrier
		sh.mu.Unlock()
	}
	close(b.done)
	b.wg.Wait()
}

// Metrics returns the broker's registry.
func (b *Broker) Metrics() *metrics.Registry { return b.reg }

// Epoch returns the entity-mutation counter. Two equal Epoch readings
// bracketing a query guarantee the store did not change in between, so
// callers can cache derived results (the HTTP listing cache does) and
// invalidate them by comparing epochs. The counter only ever advances.
func (b *Broker) Epoch() uint64 { return b.epoch.Load() }

// ShardCount returns the number of entity shards.
func (b *Broker) ShardCount() int { return len(b.shards) }

// QueueDepth returns the total number of notifications currently queued
// across all shard dispatchers.
func (b *Broker) QueueDepth() int {
	n := 0
	for _, sh := range b.shards {
		n += len(sh.queue)
	}
	return n
}

// UpsertEntity creates or replaces an entity wholesale and notifies
// subscribers of every attribute as changed.
func (b *Broker) UpsertEntity(e *Entity) error {
	if err := validateEntityKey(e.ID, e.Type); err != nil {
		return err
	}
	if b.closed.Load() {
		return ErrClosed
	}
	cp := e.Clone()
	now := b.clk.Now()
	for k, a := range cp.Attrs {
		if a.At.IsZero() {
			a.At = now
			cp.Attrs[k] = a
		}
	}
	changed := make([]string, 0, len(cp.Attrs))
	for k := range cp.Attrs {
		changed = append(changed, k)
	}

	sh := b.shardFor(cp.ID)
	sh.mu.Lock()
	if b.closed.Load() { // re-check under the lock; see Close
		sh.mu.Unlock()
		return ErrClosed
	}
	sh.entities[cp.ID] = cp
	b.epoch.Add(1)
	b.cUpsert.Inc()
	b.notifyShardLocked(sh, cp, changed)
	var ack JournalAck
	if b.journal != nil {
		// Encode under the shard lock (cp is the live stored entity) and
		// enqueue here so log order matches apply order; the fsync wait
		// happens after unlock.
		ack = b.journal.EntityUpserted(cp)
	}
	sh.mu.Unlock()
	if ack != nil {
		return notDurable(ack.Wait())
	}
	return nil
}

// UpdateAttrs merges attribute updates into an existing entity (creating it
// with type typ if absent, matching Orion's upsert semantics for the IoT
// agent path) and fires matching subscriptions.
func (b *Broker) UpdateAttrs(id, typ string, attrs map[string]Attribute) error {
	if err := validateEntityKey(id, typ); err != nil {
		return err
	}
	if len(attrs) == 0 {
		return fmt.Errorf("ngsi: entity %q: empty attribute update", id)
	}
	if b.closed.Load() {
		return ErrClosed
	}
	now := b.clk.Now()
	sh := b.shardFor(id)
	sh.mu.Lock()
	if b.closed.Load() { // re-check under the lock; see Close
		sh.mu.Unlock()
		return ErrClosed
	}
	entry := b.applyUpdateLocked(sh, id, typ, attrs, now)
	var ack JournalAck
	if b.journal != nil {
		ack = b.journal.EntitiesMerged([]MergeEntry{entry})
	}
	sh.mu.Unlock()
	if ack != nil {
		return notDurable(ack.Wait())
	}
	return nil
}

// applyUpdateLocked merges attrs into the entity and fires subscriptions.
// sh.mu must be held for writing. When a journal is attached, the
// returned MergeEntry carries the attributes exactly as applied
// (timestamps resolved) for the caller to log; otherwise it is zero.
func (b *Broker) applyUpdateLocked(sh *shard, id, typ string, attrs map[string]Attribute, now time.Time) MergeEntry {
	e := sh.entities[id]
	if e == nil {
		e = &Entity{ID: id, Type: typ, Attrs: make(map[string]Attribute, len(attrs))}
		sh.entities[id] = e
	}
	changed := make([]string, 0, len(attrs))
	var resolved map[string]Attribute
	if b.journal != nil {
		resolved = make(map[string]Attribute, len(attrs))
	}
	for k, a := range attrs {
		ca := cloneAttr(a)
		if ca.At.IsZero() {
			ca.At = now
		}
		e.Attrs[k] = ca
		changed = append(changed, k)
		if resolved != nil {
			resolved[k] = ca
		}
	}
	b.epoch.Add(1)
	b.cUpdate.Inc()
	b.notifyShardLocked(sh, e, changed)
	if resolved == nil {
		return MergeEntry{}
	}
	return MergeEntry{ID: id, Type: e.Type, Attrs: resolved}
}

// BatchEntry is one entity's slice of a BatchUpdate. It aliases the
// anonymous struct the original API used, so existing callers that build
// the map literally still compile.
type BatchEntry = struct {
	Type  string
	Attrs map[string]Attribute
}

// BatchUpdate applies several entity updates with one lock acquisition per
// shard and fires subscriptions per entity. Validation runs up front, so a
// malformed entry fails the whole batch before anything is applied. The
// one exception is a concurrent Close: it can interrupt between shards, in
// which case already-applied shards stay applied and the call returns
// ErrClosed — callers treat that as shutdown, not as a clean rejection.
func (b *Broker) BatchUpdate(updates map[string]BatchEntry) error {
	if len(updates) == 0 {
		return nil
	}
	if b.closed.Load() {
		return ErrClosed
	}
	for id, u := range updates {
		if err := validateEntityKey(id, u.Type); err != nil {
			return fmt.Errorf("ngsi: batch update %q: %w", id, err)
		}
		if len(u.Attrs) == 0 {
			return fmt.Errorf("ngsi: batch update %q: empty attribute update", id)
		}
	}
	groups := make([][]string, len(b.shards))
	for id := range updates {
		si := b.shardIndex(id)
		groups[si] = append(groups[si], id)
	}
	now := b.clk.Now()
	var acks []JournalAck
	for si, ids := range groups {
		if len(ids) == 0 {
			continue
		}
		sort.Strings(ids) // deterministic application order within a shard
		sh := b.shards[si]
		sh.mu.Lock()
		if b.closed.Load() { // re-check under the lock; see Close
			sh.mu.Unlock()
			return ErrClosed
		}
		var entries []MergeEntry
		if b.journal != nil {
			entries = make([]MergeEntry, 0, len(ids))
		}
		for _, id := range ids {
			u := updates[id]
			entry := b.applyUpdateLocked(sh, id, u.Type, u.Attrs, now)
			if entries != nil {
				entries = append(entries, entry)
			}
		}
		if len(entries) > 0 {
			// One record per shard, enqueued under its lock: per-shard
			// log order matches apply order.
			acks = append(acks, b.journal.EntitiesMerged(entries))
		}
		sh.mu.Unlock()
	}
	b.cBatchCalls.Inc()
	b.cBatchEntities.Add(uint64(len(updates)))
	return notDurable(waitAcks(acks))
}

// GetEntity returns a deep copy of the entity.
func (b *Broker) GetEntity(id string) (*Entity, error) {
	sh := b.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e := sh.entities[id]
	if e == nil {
		return nil, fmt.Errorf("ngsi: entity %q: %w", id, ErrNotFound)
	}
	return e.Clone(), nil
}

// QueryEntities returns copies of entities matching the id pattern and
// (optional) type, sorted by id. It is a thin compatibility wrapper over
// Query; new callers should use Query directly for filtering, projection
// and pagination pushdown.
func (b *Broker) QueryEntities(idPattern, entityType string) []*Entity {
	res, err := b.Query(Query{IDPattern: idPattern, Type: entityType, OrderBy: OrderByID})
	if err != nil {
		return nil
	}
	return res.Entities
}

// DeleteEntity removes an entity. A journal failure rolls the delete
// back so the live state matches the reported outcome (with the same
// conservative-reporting caveat as Subscribe: the failed record may
// still prove durable across a restart).
func (b *Broker) DeleteEntity(id string) error {
	sh := b.shardFor(id)
	sh.mu.Lock()
	e, ok := sh.entities[id]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("ngsi: entity %q: %w", id, ErrNotFound)
	}
	delete(sh.entities, id)
	b.epoch.Add(1)
	var ack JournalAck
	if b.journal != nil {
		ack = b.journal.EntityDeleted(id)
	}
	sh.mu.Unlock()
	if ack != nil {
		if err := ack.Wait(); err != nil {
			// Reinstate (the same rollback Subscribe/Unsubscribe do):
			// the delete record was not acknowledged durable, so
			// without this the entity would read as gone until restart
			// and then likely resurrect from the replayed upserts.
			sh.mu.Lock()
			if _, taken := sh.entities[id]; !taken {
				sh.entities[id] = e
				b.epoch.Add(1)
			}
			sh.mu.Unlock()
			return notDurable(err)
		}
	}
	b.cDelete.Inc()
	return nil
}

// DumpEntities streams every stored entity to fn, shard by shard under
// the shard read lock — the snapshot path. fn must neither retain nor
// mutate the entity (serialize it before returning) and must not call
// back into the broker.
func (b *Broker) DumpEntities(fn func(*Entity) error) error {
	for _, sh := range b.shards {
		sh.mu.RLock()
		for _, e := range sh.entities {
			if err := fn(e); err != nil {
				sh.mu.RUnlock()
				return err
			}
		}
		sh.mu.RUnlock()
	}
	return nil
}

// EntityCount returns the number of stored entities.
func (b *Broker) EntityCount() int {
	n := 0
	for _, sh := range b.shards {
		sh.mu.RLock()
		n += len(sh.entities)
		sh.mu.RUnlock()
	}
	return n
}

// Subscribe registers a subscription and returns its id. When a journal
// is attached and the notifier carries an external endpoint (see
// Endpointer), the subscription is logged for recovery; a journal
// failure rolls the registration back so the live state matches the
// reported outcome. Failure reporting is conservative: a commit that
// reported failure may still have reached disk, so a rolled-back
// mutation can reappear after a restart.
func (b *Broker) Subscribe(sub Subscription) (string, error) {
	if sub.Notifier == nil {
		return "", fmt.Errorf("ngsi: subscription without notifier")
	}
	b.subMu.Lock()
	if b.closed.Load() {
		b.subMu.Unlock()
		return "", ErrClosed
	}
	if sub.ID == "" {
		b.nextSub++
		sub.ID = fmt.Sprintf("sub-%d", b.nextSub)
	} else if n, ok := parseGeneratedSubID(sub.ID); ok && n > b.nextSub {
		// A recovered (or externally chosen) id from the generated
		// namespace advances the counter so fresh ids never collide.
		b.nextSub = n
	}
	if _, dup := b.subs[sub.ID]; dup {
		b.subMu.Unlock()
		return "", fmt.Errorf("ngsi: duplicate subscription id %q", sub.ID)
	}
	st := newSubState(sub)
	b.subs[sub.ID] = st
	b.rebuildIndexLocked()
	var ack JournalAck
	if b.journal != nil {
		if ep, ok := sub.Notifier.(Endpointer); ok {
			ack = b.journal.SubscriptionPut(b.viewLocked(st), ep.Endpoint())
		}
	}
	b.subMu.Unlock()
	if ack != nil {
		if err := ack.Wait(); err != nil {
			// Roll back so the observable state matches the reported
			// failure: left registered, the subscription would deliver
			// notifications until restart and then likely vanish (its
			// record was not acknowledged durable).
			b.subMu.Lock()
			if cur, ok := b.subs[sub.ID]; ok && cur == st {
				delete(b.subs, sub.ID)
				b.rebuildIndexLocked()
			}
			b.subMu.Unlock()
			return "", notDurable(err)
		}
	}
	b.reg.Counter("ngsi.subscribe").Inc()
	return sub.ID, nil
}

// parseGeneratedSubID recognizes ids from the broker's own "sub-N"
// namespace.
func parseGeneratedSubID(id string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(id, "sub-%d", &n); err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// Unsubscribe removes a subscription.
func (b *Broker) Unsubscribe(id string) error {
	b.subMu.Lock()
	st, ok := b.subs[id]
	if !ok {
		b.subMu.Unlock()
		return fmt.Errorf("ngsi: subscription %q: %w", id, ErrNotFound)
	}
	delete(b.subs, id)
	b.rebuildIndexLocked()
	var ack JournalAck
	if b.journal != nil {
		if _, durable := st.sub.Notifier.(Endpointer); durable {
			ack = b.journal.SubscriptionDeleted(id)
		}
	}
	b.subMu.Unlock()
	if ack != nil {
		if err := ack.Wait(); err != nil {
			// Mirror Subscribe's rollback: the caller is told the delete
			// failed, so the subscription must stay live — without this
			// it would stop notifying now yet likely resurrect on
			// restart (the delete record was not acknowledged durable).
			b.subMu.Lock()
			if _, taken := b.subs[id]; !taken {
				b.subs[id] = st
				b.rebuildIndexLocked()
			}
			b.subMu.Unlock()
			return notDurable(err)
		}
	}
	return nil
}

// SubscriptionCount returns the number of active subscriptions.
func (b *Broker) SubscriptionCount() int {
	b.subMu.Lock()
	defer b.subMu.Unlock()
	return len(b.subs)
}

// rebuildIndexLocked publishes a fresh immutable index built from the
// subscription set. b.subMu must be held. O(subscriptions), but Subscribe
// and Unsubscribe are rare next to updates.
func (b *Broker) rebuildIndexLocked() {
	ix := newSubIndex()
	for _, st := range b.subs {
		ix.add(st)
	}
	b.index.Store(ix)
}

// notifyShardLocked evaluates subscriptions against an entity whose
// attributes in changed were just written. The entity's shard lock must be
// held; the subscription index is read lock-free.
func (b *Broker) notifyShardLocked(sh *shard, e *Entity, changed []string) {
	ix := b.index.Load()
	var matched []*subState
	if b.scan {
		matched = ix.collectScan(e.ID, e.Type, nil)
	} else {
		matched = ix.collect(e.ID, e.Type, nil)
	}
	if len(matched) == 0 {
		return
	}
	now := b.clk.Now()
	for _, st := range matched {
		s := &st.sub
		if len(s.ConditionAttrs) > 0 && !intersects(s.ConditionAttrs, changed) {
			continue
		}
		if s.Throttling > 0 {
			st.mu.Lock()
			if last, ok := st.lastNotified[e.ID]; ok && now.Sub(last) < s.Throttling {
				st.mu.Unlock()
				b.cThrottled.Inc()
				continue
			}
			st.lastNotified[e.ID] = now
			st.mu.Unlock()
		}

		snapshot := e.Clone()
		if len(s.NotifyAttrs) > 0 {
			filtered := make(map[string]Attribute, len(s.NotifyAttrs))
			for _, k := range s.NotifyAttrs {
				if a, ok := snapshot.Attrs[k]; ok {
					filtered[k] = a
				}
			}
			snapshot.Attrs = filtered
		}
		note := Notification{SubscriptionID: s.ID, Entity: snapshot, At: now}
		select {
		case sh.queue <- queuedNotification{notifier: s.Notifier, note: note}:
			b.cQueued.Inc()
			sh.depth.Set(float64(len(sh.queue)))
		default:
			b.cDropped.Inc()
		}
	}
}

func intersects(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
