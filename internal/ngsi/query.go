package ngsi

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// Op is a filter comparison operator of the NGSI `q=` grammar.
type Op int

// Operators. OpExists/OpNotExists are the unary forms (`attr`, `!attr`).
const (
	OpExists Op = iota
	OpNotExists
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in `q=` syntax.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpNotExists:
		return "!"
	}
	return ""
}

// Condition is one parsed filter statement: attribute, operator, value.
// Unquoted values that parse as numbers compare numerically and only
// match numeric attribute values; quoted values always compare as
// strings.
type Condition struct {
	Attr  string
	Op    Op
	Value string  // raw comparison text (quotes stripped)
	Num   float64 // parsed numeric value when IsNum
	IsNum bool
}

var qOps = []struct {
	text string
	op   Op
}{
	{"==", OpEq}, {"!=", OpNe}, {"<=", OpLe}, {">=", OpGe}, {"<", OpLt}, {">", OpGt},
}

// ParseQ parses an NGSI-v2 `q=` filter expression: `;`-separated
// conjunctions of `attr==value`, `attr!=value`, `attr<value`,
// `attr<=value`, `attr>value`, `attr>=value`, unary existence `attr` and
// non-existence `!attr`. Values may be single- or double-quoted to force
// string comparison ("temperature=='21'").
func ParseQ(q string) ([]Condition, error) {
	if strings.TrimSpace(q) == "" {
		return nil, nil
	}
	var out []Condition
	for _, stmt := range splitStatements(q) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			return nil, fmt.Errorf("ngsi: q: empty statement")
		}
		c, err := parseStatement(stmt)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// splitStatements splits a q= expression on ';' conjunctions, but not
// on semicolons inside quoted values ("note=='a;b'"). An unterminated
// quote leaves the scanner in-quote to the end; the remainder reaches
// parseStatement, which reports the quoting error.
func splitStatements(q string) []string {
	var out []string
	var quote byte
	start := 0
	for i := 0; i < len(q); i++ {
		switch c := q[i]; {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ';':
			out = append(out, q[start:i])
			start = i + 1
		}
	}
	return append(out, q[start:])
}

func parseStatement(stmt string) (Condition, error) {
	for i := 0; i < len(stmt); i++ {
		for _, cand := range qOps {
			if !strings.HasPrefix(stmt[i:], cand.text) {
				continue
			}
			attr := strings.TrimSpace(stmt[:i])
			if attr == "" {
				return Condition{}, fmt.Errorf("ngsi: q: missing attribute in %q", stmt)
			}
			if err := validateQAttr(attr, stmt); err != nil {
				return Condition{}, err
			}
			raw := strings.TrimSpace(stmt[i+len(cand.text):])
			if raw == "" {
				return Condition{}, fmt.Errorf("ngsi: q: missing value in %q", stmt)
			}
			c := Condition{Attr: attr, Op: cand.op}
			var err error
			if c.Value, c.IsNum, err = parseQValue(raw, stmt); err != nil {
				return Condition{}, err
			}
			if c.IsNum {
				c.Num, _ = strconv.ParseFloat(c.Value, 64)
			}
			return c, nil
		}
	}
	// No binary operator: unary existence / non-existence.
	c := Condition{Op: OpExists, Attr: stmt}
	if strings.HasPrefix(stmt, "!") {
		c = Condition{Op: OpNotExists, Attr: strings.TrimSpace(stmt[1:])}
	}
	if c.Attr == "" {
		return Condition{}, fmt.Errorf("ngsi: q: missing attribute in %q", stmt)
	}
	if err := validateQAttr(c.Attr, stmt); err != nil {
		return Condition{}, err
	}
	return c, nil
}

// validateQAttr rejects attribute names containing operator or quote
// characters — the symptom of a malformed statement such as `attr=value`
// (single '=') or an unterminated quote.
func validateQAttr(attr, stmt string) error {
	if strings.ContainsAny(attr, "=<>!'\" \t") {
		return fmt.Errorf("ngsi: q: invalid operator in %q", stmt)
	}
	return nil
}

func parseQValue(raw, stmt string) (value string, isNum bool, err error) {
	if raw[0] == '\'' || raw[0] == '"' {
		quote := raw[0]
		if len(raw) < 2 || raw[len(raw)-1] != quote {
			return "", false, fmt.Errorf("ngsi: q: unterminated quote in %q", stmt)
		}
		return raw[1 : len(raw)-1], false, nil
	}
	if _, ferr := strconv.ParseFloat(raw, 64); ferr == nil {
		return raw, true, nil
	}
	return raw, false, nil
}

// match evaluates the condition against an entity in place — no cloning,
// so the shard scan can reject non-matching entities for free.
func (c Condition) match(e *Entity) bool {
	a, ok := e.Attrs[c.Attr]
	switch c.Op {
	case OpExists:
		return ok
	case OpNotExists:
		return !ok
	}
	if !ok {
		return false
	}
	if c.IsNum {
		v, isNum := a.Float()
		return isNum && cmpOp(compareFloat(v, c.Num), c.Op)
	}
	s, ok := attrString(a)
	return ok && cmpOp(strings.Compare(s, c.Value), c.Op)
}

// attrString renders string-comparable attribute values; numbers are
// excluded (they only match numeric condition values).
func attrString(a Attribute) (string, bool) {
	switch v := a.Value.(type) {
	case string:
		return v, true
	case bool:
		return strconv.FormatBool(v), true
	}
	return "", false
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpOp(cmp int, op Op) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// OrderByID is the deterministic default ordering of the HTTP surface.
const OrderByID = "id"

// Query is a typed northbound context query: subject selection
// (IDPattern/Type), attribute filter conditions (parsed from the `q=`
// grammar by ParseQ), attribute projection, ordering and pagination. The
// broker pushes every part down into the shard scans: non-matching
// entities are never cloned, projection clones only the requested
// attributes, and each shard materializes at most Offset+Limit entities.
type Query struct {
	// IDPattern selects entities by id: exact, prefix with '*', or
	// ""/"*" for all.
	IDPattern string
	// Type, if non-empty, restricts to entities of that type.
	Type string
	// Conditions must all hold (`;`-conjunction). See ParseQ.
	Conditions []Condition
	// Attrs projects the result entities to these attributes; empty
	// keeps all.
	Attrs []string
	// OrderBy: "" means unordered (the scan stops as soon as
	// Offset+Limit matches are found); OrderByID ("id") sorts by entity
	// id; any other value sorts by that attribute's value (numeric
	// before string, missing last). A '!' prefix reverses the order.
	OrderBy string
	// Limit bounds the number of returned entities; <= 0 means no
	// limit.
	Limit int
	// Offset skips that many matches (in OrderBy order) before the
	// first returned entity.
	Offset int
	// Count requests the exact total match count (forces a full scan
	// even for unordered limited queries).
	Count bool
	// IDFilter, if non-nil, additionally restricts the scan to entities
	// whose id it accepts. It runs under shard locks and must be fast
	// and side-effect free. The cluster plane uses it to scope a
	// scatter-gather sub-query to the partitions a node owns, so copies
	// held by followers are never double-counted.
	IDFilter func(id string) bool
}

// QueryResult is the answer to a Query.
type QueryResult struct {
	// Entities holds the (projected, ordered, paginated) matches.
	Entities []*Entity
	// Total is the exact number of matches when Query.Count was set,
	// and -1 otherwise.
	Total int
}

// Query runs a typed context query with filter, projection and limit
// pushdown: each shard is scanned under its read lock, non-matching
// entities are rejected in place without cloning, per-shard candidates
// are bounded to Offset+Limit before cloning, and an unordered query
// without Count stops scanning entirely once enough matches are found.
func (b *Broker) Query(q Query) (QueryResult, error) {
	if q.Limit < 0 || q.Offset < 0 {
		return QueryResult{}, fmt.Errorf("ngsi: query: negative limit or offset")
	}
	need := 0 // per-shard materialization bound; 0 = unbounded
	if q.Limit > 0 {
		need = q.Offset + q.Limit
		if need < 0 { // overflow would silently disable the bound
			return QueryResult{}, fmt.Errorf("ngsi: query: offset+limit overflows")
		}
	}
	earlyStop := q.OrderBy == "" && !q.Count && need > 0
	// The cross-shard sort below runs on the projected clones, so a
	// projection that excludes the OrderBy attribute must carry it
	// through the clone (and strip it again before returning).
	projAttrs := q.Attrs
	carriedKey := ""
	if len(q.Attrs) > 0 {
		if key := strings.TrimPrefix(q.OrderBy, "!"); key != "" && key != OrderByID {
			found := false
			for _, a := range q.Attrs {
				if a == key {
					found = true
					break
				}
			}
			if !found {
				projAttrs = append(append([]string(nil), q.Attrs...), key)
				carriedKey = key
			}
		}
	}
	res := QueryResult{Total: -1}
	total := 0
	var out []*Entity
	for _, sh := range b.shards {
		sh.mu.RLock()
		var cand []*Entity // raw pointers, only valid under sh.mu
		for id, e := range sh.entities {
			if !MatchIDPattern(q.IDPattern, id) {
				continue
			}
			if q.IDFilter != nil && !q.IDFilter(id) {
				continue
			}
			if q.Type != "" && e.Type != q.Type {
				continue
			}
			if !matchConditions(e, q.Conditions) {
				continue
			}
			total++
			cand = append(cand, e)
			if earlyStop && len(out)+len(cand) >= need {
				break
			}
		}
		if need > 0 && len(cand) > need {
			sortEntities(cand, q.OrderBy)
			cand = cand[:need]
		}
		for _, e := range cand {
			out = append(out, cloneProjected(e, projAttrs))
		}
		sh.mu.RUnlock()
		if earlyStop && len(out) >= need {
			break
		}
	}
	sortEntities(out, q.OrderBy)
	if q.Count {
		res.Total = total
	}
	if q.Offset > 0 {
		if q.Offset >= len(out) {
			out = out[:0]
		} else {
			out = out[q.Offset:]
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	if carriedKey != "" {
		for _, e := range out {
			delete(e.Attrs, carriedKey)
		}
	}
	res.Entities = out
	return res, nil
}

func matchConditions(e *Entity, conds []Condition) bool {
	for _, c := range conds {
		if !c.match(e) {
			return false
		}
	}
	return true
}

// cloneProjected deep-copies an entity restricted to the requested
// attributes (all when attrs is empty) — the projection pushdown, so a
// narrow query never copies wide entities.
func cloneProjected(e *Entity, attrs []string) *Entity {
	if len(attrs) == 0 {
		return e.Clone()
	}
	cp := &Entity{ID: e.ID, Type: e.Type, Attrs: make(map[string]Attribute, len(attrs))}
	for _, k := range attrs {
		if a, ok := e.Attrs[k]; ok {
			cp.Attrs[k] = cloneAttr(a)
		}
	}
	return cp
}

// sortEntities orders entities per the OrderBy spec: ""/"id" by entity
// id; any other key by that attribute's value (numeric values before
// string values, entities missing the attribute last), ties broken by
// id. A '!' prefix reverses the primary order (missing-attribute
// entities stay last).
// SortEntities sorts entities with the same semantics Query applies:
// "" or "id" by entity id, anything else by that attribute's value
// (numeric before string, missing last), '!' prefix reversed. Exported
// so a cluster scatter-gather can merge per-node pages under exactly the
// ordering each node produced.
func SortEntities(list []*Entity, orderBy string) { sortEntities(list, orderBy) }

func sortEntities(list []*Entity, orderBy string) {
	key := orderBy
	desc := strings.HasPrefix(key, "!")
	key = strings.TrimPrefix(key, "!")
	if key == "" || key == OrderByID {
		sort.Slice(list, func(i, j int) bool {
			if desc {
				return list[j].ID < list[i].ID
			}
			return list[i].ID < list[j].ID
		})
		return
	}
	// Decorate-sort-undecorate: resolve each entity's sort key once
	// (one map lookup + type switch per entity) instead of twice per
	// comparison — attribute ordering is the profiled hot spot of the
	// northbound query path.
	keys := make([]entitySortKey, len(list))
	for i, e := range list {
		keys[i].e = e
		keys[i].rank, keys[i].num, keys[i].str = attrRank(e, key)
	}
	slices.SortFunc(keys, func(a, b entitySortKey) int {
		if a.rank != b.rank {
			// Rank order (numeric, string, missing) is fixed: '!'
			// reverses values, not presence.
			return a.rank - b.rank
		}
		var c int
		switch a.rank {
		case 0:
			c = compareFloat(a.num, b.num)
		case 1:
			c = strings.Compare(a.str, b.str)
		}
		if c != 0 {
			if desc {
				return -c
			}
			return c
		}
		return strings.Compare(a.e.ID, b.e.ID)
	})
	for i := range keys {
		list[i] = keys[i].e
	}
}

// entitySortKey is the decorated form of one entity for attribute
// ordering: the attrRank triple resolved once up front.
type entitySortKey struct {
	e    *Entity
	num  float64
	str  string
	rank int
}

func attrRank(e *Entity, key string) (rank int, num float64, str string) {
	a, ok := e.Attrs[key]
	if !ok {
		return 2, 0, ""
	}
	if v, isNum := a.Float(); isNum {
		return 0, v, ""
	}
	if s, isStr := attrString(a); isStr {
		return 1, 0, s
	}
	return 2, 0, ""
}
