package ngsi

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherCoalescesPerEntity: several Adds for one entity inside a
// window produce one BatchUpdate entry with merged attributes
// (last-write-wins) and one notification.
func TestBatcherCoalescesPerEntity(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	var notes atomic.Int32
	b.Subscribe(Subscription{EntityIDPattern: "*", Notifier: Callback(func(Notification) { notes.Add(1) })})

	var flushes atomic.Int32
	var lastStats atomic.Value
	ba, err := NewBatcher(BatcherConfig{
		Broker:        b,
		FlushInterval: time.Hour, // flush manually
		OnFlush: func(fs FlushStats) {
			flushes.Add(1)
			lastStats.Store(fs)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()

	ba.Add("e1", "T", map[string]Attribute{"a": num(1), "b": num(2)})
	ba.Add("e1", "T", map[string]Attribute{"a": num(10)}) // overwrites a
	ba.Add("e2", "T", map[string]Attribute{"a": num(3)})
	if n := ba.Flush(); n != 2 {
		t.Fatalf("flush pushed %d entities, want 2", n)
	}
	fs := lastStats.Load().(FlushStats)
	if fs.Entities != 2 || fs.Updates != 3 || fs.Err != nil {
		t.Errorf("flush stats = %+v", fs)
	}
	e, err := b.GetEntity("e1")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Attrs["a"].Float(); v != 10 {
		t.Errorf("last write lost: a = %v", e.Attrs["a"].Value)
	}
	if v, _ := e.Attrs["b"].Float(); v != 2 {
		t.Errorf("earlier attribute lost: b = %v", e.Attrs["b"].Value)
	}
	// One notification per entity per flush, not per Add.
	waitFor(t, time.Second, func() bool { return notes.Load() == 2 })
	time.Sleep(20 * time.Millisecond)
	if notes.Load() != 2 {
		t.Errorf("notifications = %d, want 2", notes.Load())
	}
}

// TestBatcherFlushesOnInterval: without manual flushes the ticker drives
// updates into the broker.
func TestBatcherFlushesOnInterval(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	ba, err := NewBatcher(BatcherConfig{Broker: b, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()
	ba.Add("e1", "T", map[string]Attribute{"a": num(1)})
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if _, err := b.GetEntity("e1"); err == nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("interval flush never reached the broker")
}

// TestBatcherMaxEntitiesFlushesEarly: hitting the pending-entity cap
// flushes without waiting for the ticker.
func TestBatcherMaxEntitiesFlushesEarly(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	ba, err := NewBatcher(BatcherConfig{Broker: b, FlushInterval: time.Hour, MaxEntities: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()
	ba.Add("e1", "T", map[string]Attribute{"a": num(1)})
	ba.Add("e2", "T", map[string]Attribute{"a": num(2)})
	if b.EntityCount() != 0 {
		t.Fatal("flushed before reaching MaxEntities")
	}
	ba.Add("e3", "T", map[string]Attribute{"a": num(3)})
	if b.EntityCount() != 3 {
		t.Errorf("entity count after cap flush = %d, want 3", b.EntityCount())
	}
}

// TestBatcherCloseFlushesTail: Close pushes pending updates and further
// Adds fail with ErrClosed.
func TestBatcherCloseFlushesTail(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	ba, err := NewBatcher(BatcherConfig{Broker: b, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ba.Add("e1", "T", map[string]Attribute{"a": num(1)})
	ba.Close()
	ba.Close() // idempotent
	if b.EntityCount() != 1 {
		t.Error("pending update lost at Close")
	}
	if err := ba.Add("e2", "T", map[string]Attribute{"a": num(2)}); err != ErrClosed {
		t.Errorf("add after close = %v, want ErrClosed", err)
	}
}

// TestBatcherValidatesAdds: malformed updates are rejected at Add time so
// they cannot poison a whole flush later.
func TestBatcherValidatesAdds(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	defer b.Close()
	ba, err := NewBatcher(BatcherConfig{Broker: b, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()
	if err := ba.Add("", "T", map[string]Attribute{"a": num(1)}); err == nil {
		t.Error("empty id accepted")
	}
	if err := ba.Add("e", "", map[string]Attribute{"a": num(1)}); err == nil {
		t.Error("empty type accepted")
	}
	if err := ba.Add("e", "T", nil); err == nil {
		t.Error("empty attrs accepted")
	}
	if _, err := NewBatcher(BatcherConfig{}); err == nil {
		t.Error("batcher without broker accepted")
	}
}
