package ngsi

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// patternShape classifies a subscription's EntityIDPattern so the index can
// bucket it. The shape is computed once at Subscribe time; the index and
// every shard's update path only read it afterwards.
type patternShape int

const (
	shapeExact  patternShape = iota // literal entity id
	shapePrefix                     // "urn:farm:*"
	shapeWild                       // "" or "*"
)

// subState is one registered subscription plus its throttling memory. The
// throttle map is touched from every shard's update path, so it carries its
// own lock instead of relying on a broker-wide one.
type subState struct {
	sub   Subscription
	shape patternShape
	pfx   string // pattern prefix, pre-trimmed ("urn:x:*" → "urn:x:")

	// failed is the delivery-health flag behind SubStatus. It is written
	// by webhook delivery workers and read by API snapshots, so it is
	// atomic rather than guarded by mu.
	failed atomic.Bool

	mu           sync.Mutex
	lastNotified map[string]time.Time // per entity id
}

func (st *subState) status() SubStatus {
	if st.failed.Load() {
		return SubFailed
	}
	return SubActive
}

func (st *subState) setStatus(s SubStatus) { st.failed.Store(s == SubFailed) }

func newSubState(sub Subscription) *subState {
	st := &subState{sub: sub, lastNotified: make(map[string]time.Time)}
	switch p := sub.EntityIDPattern; {
	case p == "" || p == "*":
		st.shape = shapeWild
	case strings.HasSuffix(p, "*"):
		st.shape = shapePrefix
		st.pfx = strings.TrimSuffix(p, "*")
	default:
		st.shape = shapeExact
	}
	return st
}

// matchesType reports whether the subscription's (optional) type
// restriction admits typ.
func (st *subState) matchesType(typ string) bool {
	return st.sub.EntityType == "" || st.sub.EntityType == typ
}

// subIndex buckets subscriptions by pattern shape so an update only touches
// the subscriptions that can possibly match, instead of scanning all of
// them:
//
//   - exact:      pattern is a literal entity id → map lookup, O(1)
//   - prefix:     pattern ends in '*' ("urn:farm:*") → scan of prefix subs
//     only (typically a handful of per-farm views)
//   - wildByType: pattern is ""/"*" with an EntityType restriction → map
//     lookup by type
//   - wild:       pattern is ""/"*" with no type → always notified
//
// An index is immutable once published: Subscribe/Unsubscribe rebuild a
// fresh index from the subscription set and atomically swap it in, so shard
// update paths read it without any lock.
type subIndex struct {
	exact      map[string][]*subState
	prefix     []*subState
	wildByType map[string][]*subState
	wild       []*subState
	all        []*subState // every subscription, for the compat linear scan
}

func newSubIndex() *subIndex {
	return &subIndex{
		exact:      make(map[string][]*subState),
		wildByType: make(map[string][]*subState),
	}
}

func (ix *subIndex) add(st *subState) {
	ix.all = append(ix.all, st)
	switch st.shape {
	case shapeWild:
		if st.sub.EntityType != "" {
			ix.wildByType[st.sub.EntityType] = append(ix.wildByType[st.sub.EntityType], st)
		} else {
			ix.wild = append(ix.wild, st)
		}
	case shapePrefix:
		ix.prefix = append(ix.prefix, st)
	default:
		ix.exact[st.sub.EntityIDPattern] = append(ix.exact[st.sub.EntityIDPattern], st)
	}
}

// collect appends to out every subscription whose pattern and type admit
// the entity (id, typ). Condition-attribute and throttling checks remain
// with the caller.
func (ix *subIndex) collect(id, typ string, out []*subState) []*subState {
	for _, st := range ix.exact[id] {
		if st.matchesType(typ) {
			out = append(out, st)
		}
	}
	for _, st := range ix.prefix {
		if strings.HasPrefix(id, st.pfx) && st.matchesType(typ) {
			out = append(out, st)
		}
	}
	out = append(out, ix.wildByType[typ]...)
	out = append(out, ix.wild...)
	return out
}

// collectScan is the pre-index behavior: test every subscription with
// MatchIDPattern. Kept behind BrokerConfig.CompatLinearScan so benchmarks
// can measure the index win against the original O(subscriptions) path.
func (ix *subIndex) collectScan(id, typ string, out []*subState) []*subState {
	for _, st := range ix.all {
		if MatchIDPattern(st.sub.EntityIDPattern, id) && st.matchesType(typ) {
			out = append(out, st)
		}
	}
	return out
}
