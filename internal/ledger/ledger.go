// Package ledger implements the device-lifecycle ledger §III of the SWAMP
// paper sketches as a blockchain application: "it is possible to track all
// the attributes, relationships and events related to a device". Events
// (registration, provisioning, key rotation, compromise, revocation) are
// appended to a hash-chained log; any tampering with history breaks the
// chain and is detected by Verify. Within a single trust domain a chained
// log provides the integrity property the paper is after without the
// distributed-consensus machinery.
package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/model"
)

// EventType classifies lifecycle events.
type EventType string

// Lifecycle event types.
const (
	EventRegistered  EventType = "registered"
	EventProvisioned EventType = "provisioned"
	EventKeyRotated  EventType = "key-rotated"
	EventCompromised EventType = "compromised"
	EventRevoked     EventType = "revoked"
)

// Event is one immutable lifecycle record.
type Event struct {
	Seq      uint64
	At       time.Time
	Device   model.DeviceID
	Type     EventType
	Detail   string
	Actor    string // principal that caused the event
	PrevHash string
	Hash     string
}

// hashEvent computes the chained hash of an event.
func hashEvent(e Event) string {
	h := sha256.New()
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], e.Seq)
	h.Write(seq[:])
	var at [8]byte
	binary.BigEndian.PutUint64(at[:], uint64(e.At.UnixNano()))
	h.Write(at[:])
	h.Write([]byte(e.Device))
	h.Write([]byte(e.Type))
	h.Write([]byte(e.Detail))
	h.Write([]byte(e.Actor))
	prev, _ := hex.DecodeString(e.PrevHash)
	h.Write(prev)
	return hex.EncodeToString(h.Sum(nil))
}

// Errors returned by the ledger.
var (
	ErrChainBroken = errors.New("ledger: hash chain broken")
	ErrRevoked     = errors.New("ledger: device revoked")
)

// Ledger is an append-only hash-chained device event log. Safe for
// concurrent use.
type Ledger struct {
	mu     sync.RWMutex
	events []Event
}

// New returns an empty ledger.
func New() *Ledger { return &Ledger{} }

// Append records an event and returns the stored (hashed) record.
func (l *Ledger) Append(device model.DeviceID, typ EventType, detail, actor string, at time.Time) (Event, error) {
	if device == "" || typ == "" || actor == "" {
		return Event{}, fmt.Errorf("ledger: device, type and actor are required")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := Event{
		Seq: uint64(len(l.events)), At: at.UTC(),
		Device: device, Type: typ, Detail: detail, Actor: actor,
	}
	if len(l.events) > 0 {
		e.PrevHash = l.events[len(l.events)-1].Hash
	}
	e.Hash = hashEvent(e)
	l.events = append(l.events, e)
	return e, nil
}

// Verify walks the chain and returns the first inconsistency, or nil.
func (l *Ledger) Verify() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	prev := ""
	for i, e := range l.events {
		if e.Seq != uint64(i) {
			return fmt.Errorf("%w: event %d has seq %d", ErrChainBroken, i, e.Seq)
		}
		if e.PrevHash != prev {
			return fmt.Errorf("%w: event %d prev-hash mismatch", ErrChainBroken, i)
		}
		if hashEvent(e) != e.Hash {
			return fmt.Errorf("%w: event %d content hash mismatch", ErrChainBroken, i)
		}
		prev = e.Hash
	}
	return nil
}

// History returns a copy of all events for one device, in order.
func (l *Ledger) History(device model.DeviceID) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, e := range l.events {
		if e.Device == device {
			out = append(out, e)
		}
	}
	return out
}

// Status derives the device's current lifecycle state from its history:
// ErrRevoked after a revocation (unless re-registered later), nil when in
// good standing, and ErrChainBroken if the chain fails verification.
func (l *Ledger) Status(device model.DeviceID) error {
	if err := l.Verify(); err != nil {
		return err
	}
	revoked := false
	for _, e := range l.History(device) {
		switch e.Type {
		case EventRevoked, EventCompromised:
			revoked = true
		case EventRegistered, EventKeyRotated:
			revoked = false
		}
	}
	if revoked {
		return fmt.Errorf("%w: %s", ErrRevoked, device)
	}
	return nil
}

// Len returns the number of chained events.
func (l *Ledger) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// Tamper is a test hook that mutates a stored event in place; it exists so
// integrity tests (and demos) can show Verify catching history rewrites.
func (l *Ledger) Tamper(seq int, newDetail string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < 0 || seq >= len(l.events) {
		return fmt.Errorf("ledger: no event %d", seq)
	}
	l.events[seq].Detail = newDetail
	return nil
}
