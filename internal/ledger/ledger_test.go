package ledger

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/model"
)

var t0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func lifecycle(t *testing.T) *Ledger {
	t.Helper()
	l := New()
	steps := []struct {
		typ    EventType
		detail string
	}{
		{EventRegistered, "factory enrolment"},
		{EventProvisioned, "agent provision, farm matopiba"},
		{EventKeyRotated, "seasonal rotation"},
	}
	for i, s := range steps {
		if _, err := l.Append("probe-1", s.typ, s.detail, "operator", t0.Add(time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestAppendAndVerify(t *testing.T) {
	l := lifecycle(t)
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	hist := l.History("probe-1")
	if len(hist) != 3 || hist[0].Type != EventRegistered || hist[2].Type != EventKeyRotated {
		t.Errorf("history = %+v", hist)
	}
	// Chain links: each PrevHash equals the previous Hash.
	for i := 1; i < len(hist); i++ {
		if hist[i].PrevHash != hist[i-1].Hash {
			t.Fatalf("chain broken between %d and %d", i-1, i)
		}
	}
	if _, err := l.Append("", EventRevoked, "", "x", t0); err == nil {
		t.Error("empty device accepted")
	}
}

func TestTamperDetected(t *testing.T) {
	l := lifecycle(t)
	if err := l.Tamper(1, "rewritten history"); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(); !errors.Is(err, ErrChainBroken) {
		t.Errorf("tamper not detected: %v", err)
	}
	// Status must refuse to answer over a broken chain.
	if err := l.Status("probe-1"); !errors.Is(err, ErrChainBroken) {
		t.Errorf("status over broken chain: %v", err)
	}
	if err := l.Tamper(99, "x"); err == nil {
		t.Error("tamper out of range accepted")
	}
}

func TestStatusLifecycle(t *testing.T) {
	l := lifecycle(t)
	if err := l.Status("probe-1"); err != nil {
		t.Fatalf("healthy device: %v", err)
	}
	// Compromise → revoked status.
	l.Append("probe-1", EventCompromised, "sybil cluster member", "anomaly-engine", t0.Add(4*time.Hour))
	if err := l.Status("probe-1"); !errors.Is(err, ErrRevoked) {
		t.Errorf("compromised device status: %v", err)
	}
	// Key rotation restores standing.
	l.Append("probe-1", EventKeyRotated, "re-keyed after incident", "operator", t0.Add(5*time.Hour))
	if err := l.Status("probe-1"); err != nil {
		t.Errorf("re-keyed device: %v", err)
	}
	// Hard revocation is terminal until re-registration.
	l.Append("probe-1", EventRevoked, "decommissioned", "operator", t0.Add(6*time.Hour))
	if err := l.Status("probe-1"); !errors.Is(err, ErrRevoked) {
		t.Errorf("revoked device: %v", err)
	}
	// Unknown devices are in good standing (no history, nothing revoked).
	if err := l.Status("ghost"); err != nil {
		t.Errorf("unknown device: %v", err)
	}
}

func TestInterleavedDevices(t *testing.T) {
	l := New()
	for i := 0; i < 20; i++ {
		dev := model.DeviceID(fmt.Sprintf("d%d", i%4))
		if _, err := l.Append(dev, EventProvisioned, "", "op", t0.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Verify(); err != nil {
		t.Fatal(err)
	}
	if got := len(l.History("d1")); got != 5 {
		t.Errorf("d1 history = %d", got)
	}
}
