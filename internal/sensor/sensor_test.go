package sensor

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/soil"
	"github.com/swamp-project/swamp/internal/weather"
)

func testField(t *testing.T) *soil.Field {
	t.Helper()
	grid, err := model.NewFieldGrid(model.GeoPoint{Lat: -12, Lon: -45}, 8, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	f, err := soil.NewHeterogeneousField(grid, soil.CropSoybean, soil.ProfileSandyLoam, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func probeDesc(id string) model.Descriptor {
	return model.Descriptor{
		ID: model.DeviceID(id), Kind: model.KindSoilProbe, Owner: "farm",
		Depths: []float64{0.2, 0.5}, APIKey: "k",
	}
}

func TestSoilProbeSample(t *testing.T) {
	f := testField(t)
	p, err := NewSoilProbe(probeDesc("p1"), f, 10, 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := p.Sample(time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("readings = %d, want 2 depths", len(rs))
	}
	truth := f.Cells[10].Moisture()
	for _, r := range rs {
		if r.Quantity != model.QSoilMoisture || r.Device != "p1" {
			t.Errorf("reading %+v", r)
		}
		if err := r.Validate(); err != nil {
			t.Errorf("invalid reading: %v", err)
		}
		if math.Abs(r.Value-truth) > 0.08 {
			t.Errorf("depth %g reads %g, truth %g", r.Depth, r.Value, truth)
		}
	}
}

func TestSoilProbeNoiseAndBias(t *testing.T) {
	f := testField(t)
	p, _ := NewSoilProbe(probeDesc("p1"), f, 0, 0.01, 2)
	p.Bias = 0.05
	truth := f.Cells[0].Moisture()
	var sum float64
	const n = 200
	for i := 0; i < n; i++ {
		rs, _ := p.Sample(time.Now())
		sum += rs[0].Value
	}
	mean := sum / n
	if math.Abs(mean-(truth+0.05)) > 0.01 {
		t.Errorf("biased mean %g, want ~%g", mean, truth+0.05)
	}
}

func TestSoilProbeValidation(t *testing.T) {
	f := testField(t)
	if _, err := NewSoilProbe(probeDesc("p"), f, 999, 0.01, 1); err == nil {
		t.Error("out-of-field cell accepted")
	}
	bad := probeDesc("p")
	bad.Kind = model.KindDrone
	if _, err := NewSoilProbe(bad, f, 0, 0.01, 1); err == nil {
		t.Error("wrong kind accepted")
	}
	if _, err := NewSoilProbe(probeDesc("p"), f, 0, -1, 1); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestWeatherStation(t *testing.T) {
	desc := model.Descriptor{ID: "ws1", Kind: model.KindWeatherStation, Owner: "farm"}
	ws, err := NewWeatherStation(desc, 1)
	if err != nil {
		t.Fatal(err)
	}
	// No day installed yet.
	if _, err := ws.Sample(time.Now()); err == nil {
		t.Error("sample before SetDay succeeded")
	}
	ws.SetDay(weather.Day{DOY: 100, TminC: 15, TmaxC: 31, RHMeanPct: 60, WindMS: 2, SolarMJ: 22, RainMM: 0})

	at3pm := time.Date(2026, 6, 1, 15, 0, 0, 0, time.UTC)
	at5am := time.Date(2026, 6, 1, 5, 0, 0, 0, time.UTC)
	rs3, err := ws.Sample(at3pm)
	if err != nil {
		t.Fatal(err)
	}
	rs5, _ := ws.Sample(at5am)
	temp := func(rs []model.Reading) float64 {
		for _, r := range rs {
			if r.Quantity == model.QAirTemp {
				return r.Value
			}
		}
		t.Fatal("no temperature reading")
		return 0
	}
	if temp(rs3) <= temp(rs5) {
		t.Errorf("3pm temp %.1f should exceed 5am temp %.1f", temp(rs3), temp(rs5))
	}
	if len(rs3) != 5 {
		t.Errorf("station reported %d quantities, want 5", len(rs3))
	}
	for _, r := range rs3 {
		if err := r.Validate(); err != nil {
			t.Errorf("invalid reading %v: %v", r.Quantity, err)
		}
	}
}

func TestFlowMeterAndPivotEncoder(t *testing.T) {
	flow := 40.0
	fmDesc := model.Descriptor{ID: "fm1", Kind: model.KindFlowMeter, Owner: "farm"}
	fm, err := NewFlowMeter(fmDesc, func() float64 { return flow }, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := fm.Sample(time.Now())
	if err != nil || len(rs) != 1 {
		t.Fatalf("flow sample: %v %d", err, len(rs))
	}
	if math.Abs(rs[0].Value-40) > 3 {
		t.Errorf("flow = %g", rs[0].Value)
	}

	angle := 370.0
	peDesc := model.Descriptor{ID: "pe1", Kind: model.KindPivotEncoder, Owner: "farm"}
	pe, err := NewPivotEncoder(peDesc, func() float64 { return angle })
	if err != nil {
		t.Fatal(err)
	}
	rs, _ = pe.Sample(time.Now())
	if rs[0].Value != 10 {
		t.Errorf("angle wrap: got %g, want 10", rs[0].Value)
	}
	if _, err := NewFlowMeter(fmDesc, nil, 0.1, 1); err == nil {
		t.Error("nil truth accepted")
	}
}

// collectSender stores batches for inspection.
type collectSender struct {
	mu      sync.Mutex
	batches [][]model.Reading
	fail    bool
}

func (c *collectSender) send(rs []model.Reading) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.fail {
		return errors.New("link down")
	}
	cp := make([]model.Reading, len(rs))
	copy(cp, rs)
	c.batches = append(c.batches, cp)
	return nil
}

func (c *collectSender) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.batches)
}

func TestRunnerSamplesOnSimClock(t *testing.T) {
	f := testField(t)
	p, _ := NewSoilProbe(probeDesc("p1"), f, 0, 0.005, 1)
	sim := clock.NewSim(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
	var cs collectSender
	r, err := NewRunner(p, cs.send, RunnerConfig{Interval: time.Minute, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err == nil {
		t.Error("double start accepted")
	}
	defer r.Stop()

	waitArmed := func() {
		deadline := time.Now().Add(time.Second)
		for time.Now().Before(deadline) && sim.PendingWaiters() == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	for i := 0; i < 5; i++ {
		waitArmed()
		sim.Advance(time.Minute)
		deadline := time.Now().Add(time.Second)
		for time.Now().Before(deadline) && cs.count() < i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	if cs.count() != 5 {
		t.Fatalf("batches = %d, want 5", cs.count())
	}
	if st := r.Stats(); st.Samples != 5 || st.SendErrs != 0 || st.Battery != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRunnerBatteryExhaustion(t *testing.T) {
	f := testField(t)
	p, _ := NewSoilProbe(probeDesc("p1"), f, 0, 0, 1)
	var cs collectSender
	r, err := NewRunner(p, cs.send, RunnerConfig{
		Interval: time.Minute, Clock: clock.NewSim(time.Unix(0, 0)),
		BatteryCapacity: 3, EnergyPerSample: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := r.SampleOnce(); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if err := r.SampleOnce(); !errors.Is(err, ErrBatteryDead) {
		t.Errorf("4th cycle: %v, want battery dead", err)
	}
	st := r.Stats()
	if st.Samples != 3 || st.Battery != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Battery level must be included in batches.
	found := false
	for _, r := range cs.batches[0] {
		if r.Quantity == model.QBattery {
			found = true
		}
	}
	if !found {
		t.Error("battery reading missing from batch")
	}
}

func TestRunnerSendErrorCounted(t *testing.T) {
	f := testField(t)
	p, _ := NewSoilProbe(probeDesc("p1"), f, 0, 0, 1)
	cs := collectSender{fail: true}
	r, _ := NewRunner(p, cs.send, RunnerConfig{Interval: time.Minute, Clock: clock.NewSim(time.Unix(0, 0))})
	if err := r.SampleOnce(); err == nil {
		t.Error("send failure not propagated")
	}
	if st := r.Stats(); st.SendErrs != 1 || st.LastError == "" {
		t.Errorf("stats = %+v", st)
	}
}

func TestRunnerValidation(t *testing.T) {
	f := testField(t)
	p, _ := NewSoilProbe(probeDesc("p1"), f, 0, 0, 1)
	var cs collectSender
	if _, err := NewRunner(nil, cs.send, RunnerConfig{Interval: time.Second}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewRunner(p, nil, RunnerConfig{Interval: time.Second}); err == nil {
		t.Error("nil send accepted")
	}
	if _, err := NewRunner(p, cs.send, RunnerConfig{}); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestRunnerStopIdempotent(t *testing.T) {
	f := testField(t)
	p, _ := NewSoilProbe(probeDesc("p1"), f, 0, 0, 1)
	var cs collectSender
	r, _ := NewRunner(p, cs.send, RunnerConfig{Interval: time.Minute, Clock: clock.NewSim(time.Unix(0, 0))})
	r.Start()
	r.Stop()
	r.Stop() // must not panic or deadlock
}

func TestManyProbesOverField(t *testing.T) {
	f := testField(t)
	for i := 0; i < 16; i++ {
		p, err := NewSoilProbe(probeDesc(fmt.Sprintf("p%d", i)), f, i*4, 0.004, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := p.Sample(time.Now())
		if err != nil || len(rs) != 2 {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
}
