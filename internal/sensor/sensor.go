// Package sensor simulates the field devices of a SWAMP deployment: multi-
// depth soil-moisture probes, weather stations, flow meters and pivot
// position encoders. Each device samples a physical truth source (the soil
// package's water balance, the weather generator), applies realistic
// instrument noise, bias and battery drain, and hands readings to a
// pluggable send function — the platform wires that to UltraLight-over-MQTT
// (optionally through the secchan envelope).
package sensor

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/soil"
	"github.com/swamp-project/swamp/internal/weather"
)

// Source produces readings when sampled. Implementations are not required
// to be concurrency-safe; a Runner samples its source from one goroutine.
type Source interface {
	// Sample returns the device's readings at time at.
	Sample(at time.Time) ([]model.Reading, error)
	// Descriptor identifies the device.
	Descriptor() model.Descriptor
}

// SoilProbe samples the moisture of one cell of a soil.Field at one or more
// depths, with Gaussian noise and a fixed calibration bias per depth.
type SoilProbe struct {
	Desc     model.Descriptor
	Field    *soil.Field
	Cell     int
	NoiseStd float64 // m³/m³
	Bias     float64 // m³/m³, calibration offset
	rng      *rand.Rand
}

// NewSoilProbe validates and builds a probe. Depths come from the
// descriptor; an empty list means a single surface measurement.
func NewSoilProbe(desc model.Descriptor, field *soil.Field, cell int, noiseStd float64, seed int64) (*SoilProbe, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if desc.Kind != model.KindSoilProbe {
		return nil, fmt.Errorf("sensor: %s is %v, not a soil probe", desc.ID, desc.Kind)
	}
	if cell < 0 || cell >= len(field.Cells) {
		return nil, fmt.Errorf("sensor: probe %s: cell %d outside field", desc.ID, cell)
	}
	if noiseStd < 0 {
		return nil, fmt.Errorf("sensor: probe %s: negative noise", desc.ID)
	}
	return &SoilProbe{
		Desc: desc, Field: field, Cell: cell, NoiseStd: noiseStd,
		rng: rand.New(rand.NewSource(seed)),
	}, nil
}

// Descriptor implements Source.
func (p *SoilProbe) Descriptor() model.Descriptor { return p.Desc }

// Sample implements Source. Deeper measurements lag the root-zone mean
// slightly (damped by depth), mimicking real profiles.
func (p *SoilProbe) Sample(at time.Time) ([]model.Reading, error) {
	truth := p.Field.Cells[p.Cell].Moisture()
	depths := p.Desc.Depths
	if len(depths) == 0 {
		depths = []float64{0.2}
	}
	out := make([]model.Reading, 0, len(depths))
	for _, d := range depths {
		fc := p.Field.Cells[p.Cell].Profile().FieldCapacity
		// Damping toward field capacity with depth: deep soil dries slower.
		damp := math.Min(d/2, 0.5)
		v := truth*(1-damp) + fc*damp
		v += p.Bias + p.rng.NormFloat64()*p.NoiseStd
		out = append(out, model.Reading{
			Device:   p.Desc.ID,
			Quantity: model.QSoilMoisture,
			Value:    clamp(v, 0, 0.6),
			Unit:     "m3/m3",
			Depth:    d,
			Location: p.Desc.Location,
			At:       at,
		})
	}
	return out, nil
}

// WeatherStation reports air temperature (diurnal interpolation between the
// day's Tmin/Tmax), humidity, wind, radiation and rainfall from a
// weather.Day that the platform updates daily.
type WeatherStation struct {
	Desc model.Descriptor

	mu  sync.Mutex
	day weather.Day
	rng *rand.Rand
}

// NewWeatherStation builds a station.
func NewWeatherStation(desc model.Descriptor, seed int64) (*WeatherStation, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if desc.Kind != model.KindWeatherStation {
		return nil, fmt.Errorf("sensor: %s is %v, not a weather station", desc.ID, desc.Kind)
	}
	return &WeatherStation{Desc: desc, rng: rand.New(rand.NewSource(seed))}, nil
}

// SetDay installs the current day's weather. Safe to call concurrently
// with Sample.
func (w *WeatherStation) SetDay(d weather.Day) {
	w.mu.Lock()
	w.day = d
	w.mu.Unlock()
}

// Descriptor implements Source.
func (w *WeatherStation) Descriptor() model.Descriptor { return w.Desc }

// Sample implements Source.
func (w *WeatherStation) Sample(at time.Time) ([]model.Reading, error) {
	w.mu.Lock()
	d := w.day
	w.mu.Unlock()
	if d.DOY == 0 {
		return nil, fmt.Errorf("sensor: station %s: no weather installed", w.Desc.ID)
	}
	// Diurnal temperature: min at ~05h, max at ~15h.
	hour := float64(at.Hour()) + float64(at.Minute())/60
	phase := (hour - 15) / 24 * 2 * math.Pi
	mid := (d.TmaxC + d.TminC) / 2
	amp := (d.TmaxC - d.TminC) / 2
	temp := mid + amp*math.Cos(phase) + w.rng.NormFloat64()*0.3

	mk := func(q model.Quantity, v float64, unit string) model.Reading {
		return model.Reading{Device: w.Desc.ID, Quantity: q, Value: v, Unit: unit,
			Location: w.Desc.Location, At: at}
	}
	return []model.Reading{
		mk(model.QAirTemp, temp, "C"),
		mk(model.QHumidity, clamp(d.RHMeanPct+w.rng.NormFloat64()*3, 5, 100), "%"),
		mk(model.QWindSpeed, math.Max(0, d.WindMS+w.rng.NormFloat64()*0.4), "m/s"),
		mk(model.QSolarRad, math.Max(0, d.SolarMJ), "MJ/m2/day"),
		mk(model.QRainfall, d.RainMM, "mm"),
	}, nil
}

// FlowMeter reports the instantaneous flow of an irrigation line, reading
// the truth from a provider installed by the actuator side.
type FlowMeter struct {
	Desc model.Descriptor
	// Truth returns the current true flow (m³/h).
	Truth    func() float64
	NoiseStd float64
	rng      *rand.Rand
}

// NewFlowMeter builds a flow meter.
func NewFlowMeter(desc model.Descriptor, truth func() float64, noiseStd float64, seed int64) (*FlowMeter, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if desc.Kind != model.KindFlowMeter {
		return nil, fmt.Errorf("sensor: %s is %v, not a flow meter", desc.ID, desc.Kind)
	}
	if truth == nil {
		return nil, fmt.Errorf("sensor: flow meter %s: nil truth source", desc.ID)
	}
	return &FlowMeter{Desc: desc, Truth: truth, NoiseStd: noiseStd, rng: rand.New(rand.NewSource(seed))}, nil
}

// Descriptor implements Source.
func (f *FlowMeter) Descriptor() model.Descriptor { return f.Desc }

// Sample implements Source.
func (f *FlowMeter) Sample(at time.Time) ([]model.Reading, error) {
	v := f.Truth() + f.rng.NormFloat64()*f.NoiseStd
	return []model.Reading{{
		Device: f.Desc.ID, Quantity: model.QFlowRate, Value: math.Max(0, v),
		Unit: "m3/h", Location: f.Desc.Location, At: at,
	}}, nil
}

// PivotEncoder reports the angular position of a center pivot from a truth
// provider (degrees).
type PivotEncoder struct {
	Desc  model.Descriptor
	Truth func() float64
}

// NewPivotEncoder builds an encoder.
func NewPivotEncoder(desc model.Descriptor, truth func() float64) (*PivotEncoder, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if desc.Kind != model.KindPivotEncoder {
		return nil, fmt.Errorf("sensor: %s is %v, not a pivot encoder", desc.ID, desc.Kind)
	}
	if truth == nil {
		return nil, fmt.Errorf("sensor: encoder %s: nil truth source", desc.ID)
	}
	return &PivotEncoder{Desc: desc, Truth: truth}, nil
}

// Descriptor implements Source.
func (p *PivotEncoder) Descriptor() model.Descriptor { return p.Desc }

// Sample implements Source.
func (p *PivotEncoder) Sample(at time.Time) ([]model.Reading, error) {
	angle := math.Mod(p.Truth(), 360)
	if angle < 0 {
		angle += 360
	}
	return []model.Reading{{
		Device: p.Desc.ID, Quantity: model.QPivotAngle, Value: angle,
		Unit: "deg", Location: p.Desc.Location, At: at,
	}}, nil
}

func clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }
