package sensor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/clock"
	"github.com/swamp-project/swamp/internal/model"
)

// SendFunc transmits a batch of readings northbound. The platform supplies
// an implementation that UL-encodes and publishes over MQTT (optionally
// sealed by secchan). Errors are counted, not fatal: field devices retry on
// the next cycle.
type SendFunc func(readings []model.Reading) error

// RunnerConfig configures a device firmware loop.
type RunnerConfig struct {
	// Interval between samples (required).
	Interval time.Duration
	// Clock for scheduling; nil means the wall clock.
	Clock clock.Clock
	// BatteryCapacity in abstract joules; 0 disables the battery model.
	BatteryCapacity float64
	// EnergyPerSample drained per cycle (default 1 when battery enabled).
	EnergyPerSample float64
}

// RunnerStats counts a runner's lifetime activity.
type RunnerStats struct {
	Samples   uint64
	SendErrs  uint64
	LastError string
	Battery   float64 // remaining fraction 0..1; 1 when battery disabled
}

// Runner is the firmware loop of one device: sample, (optionally) spend
// battery, send, sleep. Construct with NewRunner, start with Start, stop
// with Stop. The loop stops by itself when the battery empties.
type Runner struct {
	src  Source
	send SendFunc
	cfg  RunnerConfig

	mu      sync.Mutex
	stats   RunnerStats
	battery float64
	started bool
	stopped bool

	done chan struct{}
	wg   sync.WaitGroup
}

// ErrBatteryDead is recorded when the battery model exhausts the device.
var ErrBatteryDead = errors.New("sensor: battery exhausted")

// NewRunner validates and builds a runner.
func NewRunner(src Source, send SendFunc, cfg RunnerConfig) (*Runner, error) {
	if src == nil || send == nil {
		return nil, fmt.Errorf("sensor: runner needs source and send func")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("sensor: non-positive interval %v", cfg.Interval)
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.BatteryCapacity > 0 && cfg.EnergyPerSample <= 0 {
		cfg.EnergyPerSample = 1
	}
	return &Runner{
		src: src, send: send, cfg: cfg,
		battery: cfg.BatteryCapacity,
		done:    make(chan struct{}),
	}, nil
}

// Start launches the loop. It may be called once.
func (r *Runner) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return fmt.Errorf("sensor: runner for %s already started", r.src.Descriptor().ID)
	}
	r.started = true
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.loop()
	}()
	return nil
}

// Stop terminates the loop and waits for it.
func (r *Runner) Stop() {
	r.mu.Lock()
	if r.stopped || !r.started {
		r.stopped = true
		r.mu.Unlock()
		return
	}
	r.stopped = true
	r.mu.Unlock()
	close(r.done)
	r.wg.Wait()
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	if r.cfg.BatteryCapacity > 0 {
		st.Battery = r.battery / r.cfg.BatteryCapacity
	} else {
		st.Battery = 1
	}
	return st
}

// SampleOnce performs one sample+send cycle immediately (used by tests and
// by the platform to prime retained topics).
func (r *Runner) SampleOnce() error {
	return r.cycle(r.cfg.Clock.Now())
}

func (r *Runner) loop() {
	for {
		select {
		case <-r.done:
			return
		case at := <-r.cfg.Clock.After(r.cfg.Interval):
			if err := r.cycle(at); errors.Is(err, ErrBatteryDead) {
				return
			}
		}
	}
}

func (r *Runner) cycle(at time.Time) error {
	if r.cfg.BatteryCapacity > 0 {
		r.mu.Lock()
		if r.battery < r.cfg.EnergyPerSample {
			r.stats.LastError = ErrBatteryDead.Error()
			r.mu.Unlock()
			return ErrBatteryDead
		}
		r.battery -= r.cfg.EnergyPerSample
		r.mu.Unlock()
	}
	readings, err := r.src.Sample(at)
	if err != nil {
		r.recordErr(err)
		return err
	}
	// Battery level piggybacks on every batch when the model is on.
	if r.cfg.BatteryCapacity > 0 {
		r.mu.Lock()
		lvl := r.battery / r.cfg.BatteryCapacity
		r.mu.Unlock()
		readings = append(readings, model.Reading{
			Device: r.src.Descriptor().ID, Quantity: model.QBattery,
			Value: lvl, Unit: "frac", Location: r.src.Descriptor().Location, At: at,
		})
	}
	if err := r.send(readings); err != nil {
		r.recordErr(err)
		return err
	}
	r.mu.Lock()
	r.stats.Samples++
	r.mu.Unlock()
	return nil
}

func (r *Runner) recordErr(err error) {
	r.mu.Lock()
	r.stats.SendErrs++
	r.stats.LastError = err.Error()
	r.mu.Unlock()
}
