// Package metrics is a small dependency-free telemetry registry the
// platform components use to expose operational counters (messages
// published, notifications delivered, authorization denials, alerts
// raised). Benchmarks and the scenario runner read the registry to build
// their report rows.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter named name, creating it on first use. Hot
// paths should resolve their counters once and hold the pointer; the
// read-locked fast path here keeps incidental lookups cheap anyway.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge named name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// DeleteGauge removes the named gauge so it no longer appears in
// snapshots or the Prometheus exposition. Publishers of dynamically
// named series (per-tenant gauges) use it to retire series whose
// subject fell out of the exported set; holders of a stale pointer can
// still Set it, but the value is unreachable through the registry.
func (r *Registry) DeleteGauge(name string) {
	r.mu.Lock()
	delete(r.gauges, name)
	r.mu.Unlock()
}

// Histogram returns the histogram named name, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.histograms[name]; h != nil {
		return h
	}
	h = NewHistogram()
	r.histograms[name] = h
	return h
}

// Snapshot renders every metric as "name value" lines, sorted by name.
func (r *Registry) Snapshot() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var lines []string
	for n, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", n, c.Value()))
	}
	for n, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %g", n, g.Value()))
	}
	for n, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("histogram %s count=%d p50=%v p99=%v",
			n, h.Count(), h.Quantile(0.5), h.Quantile(0.99)))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Counter is a monotonically increasing counter. It is lock-free: counters
// sit on every hot path (one MQTT publish or NGSI update touches several),
// and a mutex here becomes a cross-shard serialization point.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value, stored as atomic float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram records durations and answers quantile queries. It keeps the
// raw samples (bounded) — at platform scale (thousands of samples per
// bench run) this is simpler and more accurate than bucketing.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
	max     int
	// seen counts every observation ever made, not just retained ones:
	// it drives the rolling overwrite index once the reservoir is full
	// (len(samples) stops growing there, so an index derived from it
	// would pin every overwrite to one slot) and is what Prometheus
	// exposition reports as the cumulative _count.
	seen uint64
	// sum accumulates every observed duration for the exposition _sum.
	sum time.Duration
}

// NewHistogram returns a histogram bounded to 100k samples.
func NewHistogram() *Histogram {
	return &Histogram{max: 100_000}
}

// Observe records one duration. Once the bound is hit, a rolling
// overwrite driven by the total observation count keeps memory constant
// while spreading replacements across the whole reservoir.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) < h.max {
		h.samples = append(h.samples, d)
	} else {
		h.samples[int(h.seen%uint64(h.max))] = d
	}
	h.seen++
	h.sum += d
	h.sorted = false
}

// Count returns the number of retained samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Observations returns the total number of Observe calls, including
// samples since evicted from the reservoir.
func (h *Histogram) Observations() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seen
}

// Sum returns the cumulative total of every observed duration.
func (h *Histogram) Sum() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the q-quantile (0..1) of retained samples, or 0 if empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	q = math.Max(0, math.Min(1, q))
	idx := int(q * float64(len(h.samples)-1))
	return h.samples[idx]
}

// Mean returns the mean of retained samples, or 0 if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}
