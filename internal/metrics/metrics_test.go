package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("x") != c {
		t.Error("same name returned different counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Errorf("concurrent counter = %d, want 16000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("level")
	g.Set(3.5)
	g.Add(-1.5)
	if g.Value() != 2.0 {
		t.Errorf("gauge = %g", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should return 0")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 95*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
	if mean := h.Mean(); mean < 49*time.Millisecond || mean > 52*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	// Quantile clamping.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile clamping broken")
	}
}

func TestHistogramBounded(t *testing.T) {
	h := &Histogram{max: 100}
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() > 100 {
		t.Errorf("histogram grew past bound: %d", h.Count())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Inc()
	r.Gauge("b.level").Set(7)
	r.Histogram("c.lat").Observe(time.Second)
	snap := r.Snapshot()
	for _, want := range []string{"counter a.count 1", "gauge b.level 7", "histogram c.lat"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}
