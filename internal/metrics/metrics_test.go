package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("x") != c {
		t.Error("same name returned different counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := &Counter{}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Errorf("concurrent counter = %d, want 16000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("level")
	g.Set(3.5)
	g.Add(-1.5)
	if g.Value() != 2.0 {
		t.Errorf("gauge = %g", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram should return 0")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 95*time.Millisecond {
		t.Errorf("p99 = %v", p99)
	}
	if mean := h.Mean(); mean < 49*time.Millisecond || mean > 52*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
	// Quantile clamping.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile clamping broken")
	}
}

func TestHistogramBounded(t *testing.T) {
	h := &Histogram{max: 100}
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Count() > 100 {
		t.Errorf("histogram grew past bound: %d", h.Count())
	}
	if h.Observations() != 1000 {
		t.Errorf("observations = %d, want 1000", h.Observations())
	}
}

// Regression: once the reservoir filled, the overwrite index was derived
// from len(samples)%max — always 0 — so every later sample landed in one
// slot and the other max-1 slots fossilized. The rolling index must come
// from the total observation count so overwrites sweep the reservoir.
func TestHistogramReservoirRolls(t *testing.T) {
	h := &Histogram{max: 10}
	// Fill with a low value, then overwrite the entire reservoir with a
	// high one. With the rolling index every slot is replaced; with the
	// broken index 9 low samples survive and the median stays low.
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	if got := h.Quantile(0); got != time.Second {
		t.Fatalf("min retained sample = %v, want 1s: reservoir overwrites pinned to one slot", got)
	}
	if h.Observations() != 20 {
		t.Errorf("observations = %d, want 20", h.Observations())
	}
	if h.Sum() != 10*time.Millisecond+10*time.Second {
		t.Errorf("sum = %v", h.Sum())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("mqtt.publish.count").Add(42)
	r.Gauge("mqtt.queue.depth").Set(7)
	h := r.Histogram("api.latency")
	h.Observe(100 * time.Millisecond)
	h.Observe(300 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE swamp_mqtt_publish_count counter\n",
		"swamp_mqtt_publish_count 42\n",
		"# TYPE swamp_mqtt_queue_depth gauge\n",
		"swamp_mqtt_queue_depth 7\n",
		"# TYPE swamp_api_latency_seconds summary\n",
		"swamp_api_latency_seconds{quantile=\"0.5\"} ",
		"swamp_api_latency_seconds_sum 0.4\n",
		"swamp_api_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Structural check: every non-comment line is "name[{labels}] value"
	// and every sample is preceded by a TYPE declaration for its family.
	types := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			types[parts[2]] = true
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !types[name] && !types[family] {
			t.Errorf("sample %q has no TYPE declaration", line)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Inc()
	r.Gauge("b.level").Set(7)
	r.Histogram("c.lat").Observe(time.Second)
	snap := r.Snapshot()
	for _, want := range []string{"counter a.count 1", "gauge b.level 7", "histogram c.lat"} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing %q:\n%s", want, snap)
		}
	}
}
