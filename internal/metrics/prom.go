package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName mangles a dotted internal metric name into the Prometheus
// namespace: dots and dashes become underscores under a swamp_ prefix
// (mqtt.queue.depth → swamp_mqtt_queue_depth).
func promName(name string) string {
	mangled := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
	return "swamp_" + mangled
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms as summaries — quantile-labelled samples from the retained
// reservoir plus cumulative _sum (seconds) and _count over all
// observations. Families are sorted by name so output is diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()

	var b strings.Builder

	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, r.counters[n].Value())
	}

	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", pn, pn, r.gauges[n].Value())
	}

	names = names[:0]
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.histograms[n]
		pn := promName(n) + "_seconds"
		fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(&b, "%s{quantile=\"%g\"} %g\n", pn, q, h.Quantile(q).Seconds())
		}
		fmt.Fprintf(&b, "%s_sum %g\n", pn, h.Sum().Seconds())
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Observations())
	}

	_, err := io.WriteString(w, b.String())
	return err
}
