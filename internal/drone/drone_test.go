package drone

import (
	"math"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/soil"
)

func droneDesc() model.Descriptor {
	return model.Descriptor{ID: "drone-1", Kind: model.KindDrone, Owner: "farm"}
}

func midSeasonField(t *testing.T, stressSector bool) *soil.Field {
	t.Helper()
	grid, err := model.NewFieldGrid(model.GeoPoint{Lat: -12, Lon: -45}, 10, 10, 25)
	if err != nil {
		t.Fatal(err)
	}
	f, err := soil.NewHeterogeneousField(grid, soil.CropSoybean, soil.ProfileLoam, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Advance everyone to mid-season, well watered.
	for day := 0; day < 60; day++ {
		for _, c := range f.Cells {
			c.Step(5, 0, 5)
		}
	}
	if stressSector {
		// Drought the first two rows only.
		for idx := 0; idx < 20; idx++ {
			for day := 0; day < 40; day++ {
				f.Cells[idx].Step(7, 0, 0)
			}
		}
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(droneDesc(), 0.01, 1); err != nil {
		t.Fatal(err)
	}
	bad := droneDesc()
	bad.Kind = model.KindSoilProbe
	if _, err := New(bad, 0.01, 1); err == nil {
		t.Error("wrong kind accepted")
	}
	if _, err := New(droneDesc(), -0.1, 1); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestHealthyFieldHighNDVI(t *testing.T) {
	d, _ := New(droneDesc(), 0.01, 2)
	f := midSeasonField(t, false)
	m, err := d.SurveyNDVI(f, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if mean := m.Mean(); mean < 0.5 {
		t.Errorf("healthy mid-season NDVI %.2f, want >= 0.5", mean)
	}
	for _, v := range m.Values {
		if v < -1 || v > 1 {
			t.Fatalf("NDVI %.2f outside [-1,1]", v)
		}
	}
}

func TestStressShowsInNDVI(t *testing.T) {
	d, _ := New(droneDesc(), 0.01, 3)
	f := midSeasonField(t, true)
	m, err := d.SurveyNDVI(f, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	var stressed, healthy float64
	for i, v := range m.Values {
		if i < 20 {
			stressed += v / 20
		} else {
			healthy += v / 80
		}
	}
	if stressed >= healthy-0.1 {
		t.Errorf("stressed rows NDVI %.2f should sit well below healthy %.2f", stressed, healthy)
	}
	// StressCells should pick up (mostly) the droughted rows.
	cut := (stressed + healthy) / 2
	cells := m.StressCells(cut)
	if len(cells) < 10 {
		t.Fatalf("found only %d stressed cells", len(cells))
	}
	inFirstRows := 0
	for _, c := range cells {
		if c < 20 {
			inFirstRows++
		}
	}
	if float64(inFirstRows)/float64(len(cells)) < 0.8 {
		t.Errorf("stress localization poor: %d/%d in droughted rows", inFirstRows, len(cells))
	}
}

func TestComputeNDVIValidation(t *testing.T) {
	g, _ := model.NewFieldGrid(model.GeoPoint{}, 2, 2, 10)
	g2, _ := model.NewFieldGrid(model.GeoPoint{}, 4, 1, 10)
	red := Image{Grid: g, Pixels: []float64{0.1, 0.1, 0.1, 0.1}}
	nirShort := Image{Grid: g, Pixels: []float64{0.5}}
	if _, err := ComputeNDVI(red, nirShort, "d", time.Now()); err == nil {
		t.Error("mismatched band sizes accepted")
	}
	nirWrongGrid := Image{Grid: g2, Pixels: []float64{0.5, 0.5, 0.5, 0.5}}
	if _, err := ComputeNDVI(red, nirWrongGrid, "d", time.Now()); err == nil {
		t.Error("mismatched grids accepted")
	}
	nir := Image{Grid: g, Pixels: []float64{0.5, 0.5, 0.5, 0.5}}
	m, err := ComputeNDVI(red, nir, "d", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5 - 0.1) / (0.5 + 0.1)
	for _, v := range m.Values {
		if math.Abs(v-want) > 1e-9 {
			t.Errorf("NDVI %.3f, want %.3f", v, want)
		}
	}
}

func TestMeanEmptyMap(t *testing.T) {
	m := NDVIMap{}
	if m.Mean() != 0 {
		t.Error("empty map mean != 0")
	}
}
