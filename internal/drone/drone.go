// Package drone simulates the mobile fog nodes of the SWAMP architecture:
// survey drones that overfly a field, capture red/near-infrared imagery and
// compute NDVI (Normalized Difference Vegetation Index) maps on board. The
// paper's §III singles out fake drone imagery (Sybil nodes) corrupting NDVI
// as a concrete threat; this package provides both the honest pipeline and
// the hooks the attack package perturbs.
package drone

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/soil"
)

// Image is a single-band raster over a field grid.
type Image struct {
	Grid   model.FieldGrid
	Pixels []float64 // reflectance 0..1, row-major
}

// NDVIMap is a computed vegetation-index raster.
type NDVIMap struct {
	Grid   model.FieldGrid
	Values []float64 // -1..1
	Device model.DeviceID
	At     time.Time
}

// Drone is a survey drone. Construct with New.
type Drone struct {
	Desc     model.Descriptor
	NoiseStd float64 // per-pixel reflectance noise
	rng      *rand.Rand
}

// New validates and builds a drone.
func New(desc model.Descriptor, noiseStd float64, seed int64) (*Drone, error) {
	if err := desc.Validate(); err != nil {
		return nil, err
	}
	if desc.Kind != model.KindDrone {
		return nil, fmt.Errorf("drone: %s is %v, not a drone", desc.ID, desc.Kind)
	}
	if noiseStd < 0 {
		return nil, fmt.Errorf("drone: negative noise")
	}
	return &Drone{Desc: desc, NoiseStd: noiseStd, rng: rand.New(rand.NewSource(seed))}, nil
}

// Survey overflies the field and captures red + NIR imagery. Canopy
// reflectance is driven by the true crop state: healthy, unstressed canopy
// absorbs red and reflects NIR strongly; stressed or sparse canopy the
// reverse — the standard spectral response NDVI exploits.
func (d *Drone) Survey(field *soil.Field, at time.Time) (red, nir Image, err error) {
	n := field.Grid.NumCells()
	red = Image{Grid: field.Grid, Pixels: make([]float64, n)}
	nir = Image{Grid: field.Grid, Pixels: make([]float64, n)}
	for i, cell := range field.Cells {
		// Canopy density from the Kc curve (proxy for ground cover), vigor
		// from the stress coefficient.
		kc := cell.Crop().Kc(cell.Day())
		cover := clamp((kc-0.2)/1.0, 0, 1)
		vigor := cell.Ks()
		health := cover * vigor

		r := 0.30 - 0.22*health + d.rng.NormFloat64()*d.NoiseStd
		ir := 0.15 + 0.45*health + d.rng.NormFloat64()*d.NoiseStd
		red.Pixels[i] = clamp(r, 0.01, 1)
		nir.Pixels[i] = clamp(ir, 0.01, 1)
	}
	return red, nir, nil
}

// ComputeNDVI derives the NDVI raster from a red/NIR pair.
func ComputeNDVI(red, nir Image, device model.DeviceID, at time.Time) (*NDVIMap, error) {
	if len(red.Pixels) != len(nir.Pixels) {
		return nil, fmt.Errorf("drone: band size mismatch %d vs %d", len(red.Pixels), len(nir.Pixels))
	}
	if red.Grid != nir.Grid {
		return nil, fmt.Errorf("drone: band grids differ")
	}
	out := &NDVIMap{Grid: red.Grid, Values: make([]float64, len(red.Pixels)), Device: device, At: at}
	for i := range red.Pixels {
		den := nir.Pixels[i] + red.Pixels[i]
		if den <= 0 {
			out.Values[i] = 0
			continue
		}
		out.Values[i] = (nir.Pixels[i] - red.Pixels[i]) / den
	}
	return out, nil
}

// SurveyNDVI is the full onboard pipeline: capture then compute.
func (d *Drone) SurveyNDVI(field *soil.Field, at time.Time) (*NDVIMap, error) {
	red, nir, err := d.Survey(field, at)
	if err != nil {
		return nil, err
	}
	return ComputeNDVI(red, nir, d.Desc.ID, at)
}

// Mean returns the map's mean NDVI.
func (m *NDVIMap) Mean() float64 {
	if len(m.Values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range m.Values {
		s += v
	}
	return s / float64(len(m.Values))
}

// StressCells returns indices whose NDVI falls below threshold — the cells
// an agronomist would scout (or the VRI planner would prioritize).
func (m *NDVIMap) StressCells(threshold float64) []int {
	var out []int
	for i, v := range m.Values {
		if v < threshold {
			out = append(out, i)
		}
	}
	return out
}

func clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(hi, v)) }
