package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/security/identity"
	"github.com/swamp-project/swamp/internal/tenant"
)

// nextSubID numbers HTTP-created subscriptions. The prefix keeps them
// out of the broker's own "sub-N" namespace.
var nextSubID atomic.Uint64

// seedSubscriptionCounter bumps nextSubID past every existing
// HTTP-namespace subscription id in the broker (monotonically — the
// counter is shared across servers), so ids survive a WAL recovery
// without colliding.
func seedSubscriptionCounter(b *ngsi.Broker) {
	for _, v := range b.Subscriptions() {
		var n uint64
		if _, err := fmt.Sscanf(v.ID, "urn:swamp:subscription:%d", &n); err != nil {
			continue
		}
		for {
			cur := nextSubID.Load()
			if n <= cur || nextSubID.CompareAndSwap(cur, n) {
				break
			}
		}
	}
}

// subscriptionBody is the accepted payload of POST /v2/subscriptions —
// the Orion subscription shape restricted to one subject entity selector
// and an HTTP notification target.
type subscriptionBody struct {
	Description string `json:"description,omitempty"`
	Subject     struct {
		Entities []struct {
			ID        string `json:"id"`
			IDPattern string `json:"idPattern"`
			Type      string `json:"type"`
		} `json:"entities"`
		Condition struct {
			Attrs []string `json:"attrs"`
		} `json:"condition"`
	} `json:"subject"`
	Notification struct {
		HTTP struct {
			URL string `json:"url"`
		} `json:"http"`
		Attrs []string `json:"attrs"`
	} `json:"notification"`
	// Throttling is in seconds, per NGSI-v2.
	Throttling float64 `json:"throttling,omitempty"`
}

// subscriptionJSON is the wire form of a subscription view.
type subscriptionJSON struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Owner is a tenant.ID, which marshals as the same bare string the
	// pre-tenant `owner string` field produced — wire compatible.
	Owner   tenant.ID `json:"owner,omitempty"`
	Subject struct {
		Entities  []map[string]string `json:"entities"`
		Condition struct {
			Attrs []string `json:"attrs,omitempty"`
		} `json:"condition"`
	} `json:"subject"`
	Notification struct {
		HTTP struct {
			URL string `json:"url"`
		} `json:"http"`
		Attrs []string `json:"attrs,omitempty"`
	} `json:"notification"`
	Throttling float64 `json:"throttling,omitempty"`
}

func (s *Server) subscriptionToJSON(v ngsi.SubscriptionView) subscriptionJSON {
	var out subscriptionJSON
	out.ID = v.ID
	out.Status = string(v.Status)
	out.Owner = v.Owner
	ent := map[string]string{"idPattern": v.EntityIDPattern}
	if v.EntityType != "" {
		ent["type"] = v.EntityType
	}
	out.Subject.Entities = []map[string]string{ent}
	out.Subject.Condition.Attrs = v.ConditionAttrs
	if url, ok := s.cfg.Webhooks.URL(v.ID); ok {
		out.Notification.HTTP.URL = url
	}
	out.Notification.Attrs = v.NotifyAttrs
	out.Throttling = v.Throttling.Seconds()
	return out
}

// canManage reports whether the principal may see/delete a subscription:
// its owner, or an operator role. Ownerless subscriptions are internal
// platform wiring (e.g. the telemetry catch-all) and are never managed
// through the tenant path — an empty-owner principal must not match
// them, or a tenant could silently delete platform-wide ingestion.
func canManage(prin identity.Principal, v ngsi.SubscriptionView) bool {
	if prin.HasRole(identity.RoleService) || prin.HasRole(identity.RoleAdmin) {
		return true
	}
	return v.Owner != "" && v.Owner == prin.Owner
}

// handleCreateSubscription implements POST /v2/subscriptions: validate
// the payload, authorize "subscribe" on the watched entity pattern, then
// register a webhook delivery worker plus the broker subscription. The
// subscription is stamped with the caller's tenant for owner scoping.
func (s *Server) handleCreateSubscription(w http.ResponseWriter, r *http.Request) {
	var body subscriptionBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_body", "malformed subscription")
		return
	}
	if len(body.Subject.Entities) != 1 {
		writeErr(w, http.StatusBadRequest, "invalid_subject", "exactly one subject entity selector required")
		return
	}
	ent := body.Subject.Entities[0]
	pattern := ent.IDPattern
	if ent.ID != "" {
		pattern = ent.ID // exact-id selector
	}
	if pattern == "" {
		writeErr(w, http.StatusBadRequest, "invalid_subject", "subject entity needs id or idPattern")
		return
	}
	target, err := url.Parse(body.Notification.HTTP.URL)
	if err != nil || (target.Scheme != "http" && target.Scheme != "https") || target.Host == "" {
		writeErr(w, http.StatusBadRequest, "invalid_notification", "notification.http.url must be an absolute http(s) URL")
		return
	}
	if body.Throttling < 0 {
		writeErr(w, http.StatusBadRequest, "invalid_throttling", "throttling must be >= 0 seconds")
		return
	}
	prin, ok := s.authorize(w, r, "subscribe", "ngsi:"+pattern)
	if !ok {
		return
	}
	// The subscription slot is held for the subscription's lifetime, not
	// the request's: released on delete, or below if registration fails.
	if err := s.cfg.Admission.ReserveSubscription(prin.Tenant()); err != nil {
		s.cThrottled.Inc()
		w.Header().Set("Retry-After", "60")
		writeErr(w, http.StatusTooManyRequests, "too_many_requests", err.Error())
		return
	}

	id := fmt.Sprintf("urn:swamp:subscription:%06d", nextSubID.Add(1))
	notifier, err := s.cfg.Webhooks.Notifier(id, body.Notification.HTTP.URL)
	if err != nil {
		s.cfg.Admission.ReleaseSubscription(prin.Tenant())
		writeErr(w, http.StatusInternalServerError, "subscription_failed", err.Error())
		return
	}
	notifier.SetOwner(prin.Tenant())
	if _, err := s.cfg.Context.Subscribe(ngsi.Subscription{
		ID:              id,
		EntityIDPattern: pattern,
		EntityType:      ent.Type,
		ConditionAttrs:  body.Subject.Condition.Attrs,
		NotifyAttrs:     body.Notification.Attrs,
		Throttling:      time.Duration(body.Throttling * float64(time.Second)),
		Notifier:        notifier,
		Owner:           prin.Owner,
	}); err != nil {
		s.cfg.Webhooks.Remove(id)
		s.cfg.Admission.ReleaseSubscription(prin.Tenant())
		writeMutationErr(w, http.StatusBadRequest, "subscription_failed", err)
		return
	}
	s.cfg.Metrics.Counter("httpapi.subscriptions.created").Inc()
	w.Header().Set("Location", "/v2/subscriptions/"+id)
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

// handleListSubscriptions implements GET /v2/subscriptions: the caller
// sees the subscriptions of its own tenant; operator roles see all.
func (s *Server) handleListSubscriptions(w http.ResponseWriter, r *http.Request) {
	prin, ok := s.authorize(w, r, "read", "subscriptions")
	if !ok {
		return
	}
	views := s.cfg.Context.Subscriptions()
	out := make([]subscriptionJSON, 0, len(views))
	for _, v := range views {
		// canManage hides both other tenants' subscriptions and the
		// ownerless internal platform wiring from non-operators.
		if !canManage(prin, v) {
			continue
		}
		out = append(out, s.subscriptionToJSON(v))
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGetSubscription implements GET /v2/subscriptions/{id}.
func (s *Server) handleGetSubscription(w http.ResponseWriter, r *http.Request) {
	prin, ok := s.authorize(w, r, "read", "subscriptions")
	if !ok {
		return
	}
	v, err := s.cfg.Context.Subscription(r.PathValue("id"))
	if err != nil || !canManage(prin, v) {
		// A foreign subscription answers 404, exactly like a missing
		// one, so sequential ids cannot be used to map other tenants.
		writeErr(w, http.StatusNotFound, "not_found", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.subscriptionToJSON(v))
}

// handleDeleteSubscription implements DELETE /v2/subscriptions/{id}: the
// broker subscription is removed first, then the webhook worker, so no
// new notifications can be queued to a dead worker.
func (s *Server) handleDeleteSubscription(w http.ResponseWriter, r *http.Request) {
	prin, ok := s.authorize(w, r, "subscribe", "subscriptions")
	if !ok {
		return
	}
	id := r.PathValue("id")
	v, err := s.cfg.Context.Subscription(id)
	if err != nil || !canManage(prin, v) {
		// Same 404-for-foreign rule as the read path.
		writeErr(w, http.StatusNotFound, "not_found", id)
		return
	}
	if err := s.cfg.Context.Unsubscribe(id); err != nil {
		// A durability failure answers 503, not 404: the broker rolled
		// the delete back, so the subscription is still live.
		writeMutationErr(w, http.StatusNotFound, "not_found", err)
		return
	}
	s.cfg.Webhooks.Remove(id)
	// Return the owner's slot (not the caller's — an operator may delete
	// another tenant's subscription).
	s.cfg.Admission.ReleaseSubscription(v.Owner)
	s.cfg.Metrics.Counter("httpapi.subscriptions.deleted").Inc()
	w.WriteHeader(http.StatusNoContent)
}
