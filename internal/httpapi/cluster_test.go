package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/tenant"
	"github.com/swamp-project/swamp/internal/timeseries"
)

// fakeCluster is a scripted ClusterBackend that records routed calls.
type fakeCluster struct {
	calls    []string
	queryRes ngsi.QueryResult
	entity   *ngsi.Entity
	err      error
	agg      timeseries.Aggregate
	wins     []timeseries.WindowAggregate
}

func (f *fakeCluster) Query(_ tenant.ID, q ngsi.Query) (ngsi.QueryResult, error) {
	f.calls = append(f.calls, fmt.Sprintf("query limit=%d offset=%d order=%s", q.Limit, q.Offset, q.OrderBy))
	return f.queryRes, f.err
}

func (f *fakeCluster) GetEntity(_ tenant.ID, id string) (*ngsi.Entity, error) {
	f.calls = append(f.calls, "get "+id)
	if f.entity == nil && f.err == nil {
		return nil, fmt.Errorf("entity %q: %w", id, ngsi.ErrNotFound)
	}
	return f.entity, f.err
}

func (f *fakeCluster) UpdateAttrs(_ tenant.ID, id, typ string, attrs map[string]ngsi.Attribute) error {
	f.calls = append(f.calls, "update "+id)
	return f.err
}

func (f *fakeCluster) BatchUpdate(_ tenant.ID, updates map[string]ngsi.BatchEntry) error {
	f.calls = append(f.calls, fmt.Sprintf("batch n=%d", len(updates)))
	return f.err
}

func (f *fakeCluster) DeleteEntity(_ tenant.ID, id string) error {
	f.calls = append(f.calls, "delete "+id)
	return f.err
}

func (f *fakeCluster) Summary(_ tenant.ID, device, quantity string, from, to time.Time) (timeseries.Aggregate, error) {
	f.calls = append(f.calls, "summary "+device+"/"+quantity)
	return f.agg, f.err
}

func (f *fakeCluster) Windows(_ tenant.ID, device, quantity string, from, to time.Time, window time.Duration) ([]timeseries.WindowAggregate, error) {
	f.calls = append(f.calls, "windows "+device+"/"+quantity)
	return f.wins, f.err
}

func newClusterFixture(t *testing.T, fc *fakeCluster) *fixture {
	t.Helper()
	return newFixtureWith(t, func(c *Config) { c.Cluster = fc })
}

// TestClusterRoutesDataPlane: with a cluster backend configured, the
// entity and analytics routes go through it, not the local stores.
func TestClusterRoutesDataPlane(t *testing.T) {
	fc := &fakeCluster{
		queryRes: ngsi.QueryResult{Entities: []*ngsi.Entity{
			{ID: "urn:farm1:p9", Type: "SoilProbe", Attrs: map[string]ngsi.Attribute{}},
		}, Total: 41},
		entity: &ngsi.Entity{ID: "urn:farm1:p9", Type: "SoilProbe", Attrs: map[string]ngsi.Attribute{}},
		agg:    timeseries.Aggregate{Count: 3, Min: 1, Max: 5, Mean: 3},
		wins:   []timeseries.WindowAggregate{{Aggregate: timeseries.Aggregate{Count: 2}}},
	}
	f := newClusterFixture(t, fc)
	tok := f.token(t, "farmer")

	resp := f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*&options=count", tok, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Fiware-Total-Count"); got != "41" {
		t.Fatalf("total count header %q", got)
	}
	var list []entityJSON
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != "urn:farm1:p9" {
		t.Fatalf("list body %+v", list)
	}

	resp = f.do(t, "GET", "/v2/entities/urn:farm1:p9", tok, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = f.do(t, "POST", "/v2/entities/urn:farm1:p9/attrs", tok, []byte(`{"soilMoisture":{"value":0.4}}`))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = f.do(t, "POST", "/v2/op/update", tok, []byte(`{"entities":[{"id":"urn:farm1:p9","attrs":{"soilMoisture":{"value":0.5}}}]}`))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = f.do(t, "DELETE", "/v2/entities/urn:farm1:p9", tok, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = f.do(t, "GET", "/v2/analytics/farm1-p1/soilMoisture", tok, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analytics status %d", resp.StatusCode)
	}
	var sum map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&sum)
	resp.Body.Close()
	if sum["count"].(float64) != 3 {
		t.Fatalf("analytics body %+v", sum)
	}

	resp = f.do(t, "GET", "/v2/analytics/farm1-p1/soilMoisture/series?window=30m", tok, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("series status %d", resp.StatusCode)
	}
	resp.Body.Close()

	want := []string{
		"query limit=100 offset=0 order=id",
		"get urn:farm1:p9",
		"update urn:farm1:p9",
		"batch n=1",
		"delete urn:farm1:p9",
		"summary farm1-p1/soilMoisture",
		"windows farm1-p1/soilMoisture",
	}
	if len(fc.calls) != len(want) {
		t.Fatalf("calls %v, want %v", fc.calls, want)
	}
	for i := range want {
		if fc.calls[i] != want[i] {
			t.Fatalf("call %d = %q, want %q", i, fc.calls[i], want[i])
		}
	}
}

// TestClusterListBypassesCache: the same listing twice must hit the
// backend both times — the local epoch can't witness remote mutations.
func TestClusterListBypassesCache(t *testing.T) {
	fc := &fakeCluster{}
	f := newClusterFixture(t, fc)
	tok := f.token(t, "farmer")
	for i := 0; i < 2; i++ {
		resp := f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*", tok, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %d status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if len(fc.calls) != 2 {
		t.Fatalf("backend saw %d queries, want 2 (cache must be bypassed): %v", len(fc.calls), fc.calls)
	}
}

// TestClusterErrorMapping: infrastructure failures answer 503 so clients
// retry; not-found keeps its 404.
func TestClusterErrorMapping(t *testing.T) {
	fc := &fakeCluster{err: fmt.Errorf("%w: partition 3", errors.New("cluster: replication ack timeout"))}
	f := newClusterFixture(t, fc)
	tok := f.token(t, "farmer")

	resp := f.do(t, "POST", "/v2/entities/urn:farm1:p9/attrs", tok, []byte(`{"soilMoisture":{"value":0.4}}`))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update on ack timeout: status %d, want 503", resp.StatusCode)
	}
	var apiErr apiError
	_ = json.NewDecoder(resp.Body).Decode(&apiErr)
	resp.Body.Close()
	if apiErr.Error != "cluster_unavailable" {
		t.Fatalf("error kind %q", apiErr.Error)
	}

	resp = f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*", tok, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("list on cluster error: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	resp = f.do(t, "DELETE", "/v2/entities/urn:farm1:p9", tok, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("delete on cluster error: status %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Not-found stays 404 even through the cluster path.
	fc.err = nil
	fc.entity = nil
	resp = f.do(t, "GET", "/v2/entities/urn:farm1:p9", tok, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing entity: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestReadyzDetail: the ops readiness body carries the Detail fields on
// both the ready and unready paths.
func TestReadyzDetail(t *testing.T) {
	ready := errors.New("replication lag 123 records")
	gate := func() error { return ready }
	o := NewOps(nil, gate, nil)
	o.Metrics = nil // /metrics unused here
	o.Detail = func() map[string]any {
		return map[string]any{
			"recovery": map[string]any{"records": 42},
			"cluster":  map[string]any{"parts_led": 3, "max_lag": 123},
			"status":   "should-be-ignored",
		}
	}
	srv := httptest.NewServer(o)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unready status %d", resp.StatusCode)
	}
	if body["status"] != "unready" || body["reason"] != ready.Error() {
		t.Fatalf("unready body %+v", body)
	}
	if body["cluster"].(map[string]any)["max_lag"].(float64) != 123 {
		t.Fatalf("detail missing from unready body: %+v", body)
	}

	ready = nil
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body = map[string]any{}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("ready: status=%d body=%+v", resp.StatusCode, body)
	}
	if body["recovery"].(map[string]any)["records"].(float64) != 42 {
		t.Fatalf("detail missing from ready body: %+v", body)
	}
}
