// Package httpapi exposes the SWAMP platform northbound over HTTP, the way
// a FIWARE deployment exposes Orion: an NGSI-v2-flavoured REST API for
// context entities plus an OAuth2 token endpoint. Every data route demands
// a bearer token and crosses the PEP, so the paper's §III access-control
// chain (identify → authorize → audit) guards external clients exactly as
// it guards internal ones.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/swamp-project/swamp/internal/cloud"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/security/oauth"
	"github.com/swamp-project/swamp/internal/security/pep"
)

// Config wires a Server.
type Config struct {
	// Context is the entity store behind /v2/entities (required).
	Context *ngsi.Broker
	// Tokens backs POST /oauth/token (required).
	Tokens *oauth.Server
	// PEP authorizes every data route (required).
	PEP *pep.PEP
	// Analytics backs /v2/analytics (optional; 404 when nil).
	Analytics *cloud.Analytics
	// Metrics is rendered at GET /metrics; nil allocates a private one.
	Metrics *metrics.Registry
}

// Server is the HTTP facade. It implements http.Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux
}

// NewServer validates the config and builds the routing table.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Context == nil || cfg.Tokens == nil || cfg.PEP == nil {
		return nil, errors.New("httpapi: context, tokens and pep are required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /oauth/token", s.handleToken)
	s.mux.HandleFunc("GET /v2/entities", s.handleListEntities)
	s.mux.HandleFunc("GET /v2/entities/{id}", s.handleGetEntity)
	s.mux.HandleFunc("POST /v2/entities/{id}/attrs", s.handleUpdateAttrs)
	s.mux.HandleFunc("POST /v2/op/update", s.handleBatchUpdate)
	s.mux.HandleFunc("DELETE /v2/entities/{id}", s.handleDeleteEntity)
	s.mux.HandleFunc("GET /v2/analytics/{device}/{quantity}", s.handleAnalytics)
	s.mux.HandleFunc("GET /v2/analytics/{device}/{quantity}/series", s.handleAnalyticsSeries)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, cfg.Metrics.Snapshot())
	})
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope (Orion-style).
type apiError struct {
	Error       string `json:"error"`
	Description string `json:"description,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, kind, desc string) {
	writeJSON(w, code, apiError{Error: kind, Description: desc})
}

// handleToken implements the password and client_credentials grants with
// form encoding per RFC 6749.
func (s *Server) handleToken(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_request", "malformed form")
		return
	}
	var tok oauth.Token
	var err error
	switch r.PostForm.Get("grant_type") {
	case "password":
		tok, err = s.cfg.Tokens.GrantPassword(
			r.PostForm.Get("username"), r.PostForm.Get("password"))
	case "client_credentials":
		tok, err = s.cfg.Tokens.GrantClientCredentials(
			r.PostForm.Get("client_id"), r.PostForm.Get("client_secret"))
	default:
		writeErr(w, http.StatusBadRequest, "unsupported_grant_type", "")
		return
	}
	if err != nil {
		s.cfg.Metrics.Counter("httpapi.token.rejected").Inc()
		writeErr(w, http.StatusUnauthorized, "invalid_grant", "authentication failed")
		return
	}
	s.cfg.Metrics.Counter("httpapi.token.issued").Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"access_token": tok.Value,
		"token_type":   "Bearer",
		"expires_in":   int(time.Until(tok.ExpiresAt).Seconds()),
	})
}

// authorize enforces bearer-token + PEP on a data route; it returns false
// after writing the error response.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request, action, resource string) bool {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(auth, prefix) {
		writeErr(w, http.StatusUnauthorized, "missing_token", "Authorization: Bearer required")
		return false
	}
	if _, err := s.cfg.PEP.Authorize(strings.TrimPrefix(auth, prefix), action, resource); err != nil {
		if errors.Is(err, pep.ErrDenied) {
			writeErr(w, http.StatusForbidden, "access_denied", err.Error())
		} else {
			writeErr(w, http.StatusUnauthorized, "invalid_token", "token rejected")
		}
		return false
	}
	return true
}

// entityJSON is the wire form of an entity.
type entityJSON struct {
	ID    string                    `json:"id"`
	Type  string                    `json:"type"`
	Attrs map[string]ngsi.Attribute `json:"attrs"`
}

func toJSON(e *ngsi.Entity) entityJSON {
	return entityJSON{ID: e.ID, Type: e.Type, Attrs: e.Attrs}
}

func (s *Server) handleListEntities(w http.ResponseWriter, r *http.Request) {
	pattern := r.URL.Query().Get("idPattern")
	if pattern == "" {
		pattern = "*"
	}
	if !s.authorize(w, r, "read", "ngsi:"+pattern) {
		return
	}
	entities := s.cfg.Context.QueryEntities(pattern, r.URL.Query().Get("type"))
	out := make([]entityJSON, 0, len(entities))
	for _, e := range entities {
		out = append(out, toJSON(e))
	}
	s.cfg.Metrics.Counter("httpapi.entities.list").Inc()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetEntity(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.authorize(w, r, "read", "ngsi:"+id) {
		return
	}
	e, err := s.cfg.Context.GetEntity(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", id)
		return
	}
	writeJSON(w, http.StatusOK, toJSON(e))
}

// updateBody is the accepted payload of POST .../attrs: attribute name →
// {type, value}.
type updateBody map[string]struct {
	Type  string  `json:"type"`
	Value float64 `json:"value"`
}

func (s *Server) handleUpdateAttrs(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.authorize(w, r, "write", "ngsi:"+id) {
		return
	}
	var body updateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body) == 0 {
		writeErr(w, http.StatusBadRequest, "invalid_body", "expected {attr:{type,value}}")
		return
	}
	entityType := r.URL.Query().Get("type")
	if entityType == "" {
		entityType = "Thing"
	}
	attrs := make(map[string]ngsi.Attribute, len(body))
	for name, a := range body {
		typ := a.Type
		if typ == "" {
			typ = "Number"
		}
		attrs[name] = ngsi.Attribute{Type: typ, Value: a.Value}
	}
	if err := s.cfg.Context.UpdateAttrs(id, entityType, attrs); err != nil {
		writeErr(w, http.StatusBadRequest, "update_failed", err.Error())
		return
	}
	s.cfg.Metrics.Counter("httpapi.entities.update").Inc()
	w.WriteHeader(http.StatusNoContent)
}

// batchBody is the payload of POST /v2/op/update, following Orion's batch
// operation shape: an action plus the affected entities.
type batchBody struct {
	ActionType string `json:"actionType"`
	Entities   []struct {
		ID    string                    `json:"id"`
		Type  string                    `json:"type"`
		Attrs map[string]ngsi.Attribute `json:"attrs"`
	} `json:"entities"`
}

// handleBatchUpdate is the batched ingest path over HTTP: one request, a
// per-entity PEP pass, then one BatchUpdate with a single lock acquisition
// per broker shard — the NGSI-v2 `POST /v2/op/update` operation.
func (s *Server) handleBatchUpdate(w http.ResponseWriter, r *http.Request) {
	var body batchBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body.Entities) == 0 {
		writeErr(w, http.StatusBadRequest, "invalid_body", "expected {actionType, entities:[{id,type,attrs}]}")
		return
	}
	if body.ActionType != "" && body.ActionType != "append" && body.ActionType != "update" {
		writeErr(w, http.StatusBadRequest, "invalid_action", body.ActionType)
		return
	}
	updates := make(map[string]ngsi.BatchEntry, len(body.Entities))
	for _, e := range body.Entities {
		if !s.authorize(w, r, "write", "ngsi:"+e.ID) {
			return
		}
		typ := e.Type
		if typ == "" {
			typ = "Thing"
		}
		entry := updates[e.ID]
		if entry.Attrs == nil {
			entry = ngsi.BatchEntry{Type: typ, Attrs: make(map[string]ngsi.Attribute, len(e.Attrs))}
		} else if e.Type != "" {
			// Duplicate id: an explicitly typed entry wins over an earlier
			// defaulted one.
			entry.Type = e.Type
		}
		for name, a := range e.Attrs {
			if a.Type == "" {
				a.Type = "Number"
			}
			entry.Attrs[name] = a
		}
		updates[e.ID] = entry
	}
	if err := s.cfg.Context.BatchUpdate(updates); err != nil {
		writeErr(w, http.StatusBadRequest, "update_failed", err.Error())
		return
	}
	s.cfg.Metrics.Counter("httpapi.entities.batch").Inc()
	s.cfg.Metrics.Counter("httpapi.entities.batch.size").Add(uint64(len(updates)))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDeleteEntity(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.authorize(w, r, "write", "ngsi:"+id) {
		return
	}
	if err := s.cfg.Context.DeleteEntity(id); err != nil {
		writeErr(w, http.StatusNotFound, "not_found", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// analyticsRange parses the shared ?hours=N query range: it returns the
// [from, to) window or false after writing the error response.
func (s *Server) analyticsRange(w http.ResponseWriter, r *http.Request) (from, to time.Time, ok bool) {
	hours := 24
	if h := r.URL.Query().Get("hours"); h != "" {
		if _, err := fmt.Sscanf(h, "%d", &hours); err != nil || hours <= 0 {
			writeErr(w, http.StatusBadRequest, "invalid_hours", h)
			return time.Time{}, time.Time{}, false
		}
	}
	to = time.Now().Add(time.Hour) // include freshly stamped points
	from = to.Add(-time.Duration(hours+1) * time.Hour)
	return from, to, true
}

// handleAnalytics returns the summary aggregate of one series:
// GET /v2/analytics/{device}/{quantity}?hours=24
func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Analytics == nil {
		writeErr(w, http.StatusNotFound, "analytics_disabled", "")
		return
	}
	device := r.PathValue("device")
	quantity := r.PathValue("quantity")
	if !s.authorize(w, r, "read", "series:"+device) {
		return
	}
	from, to, ok := s.analyticsRange(w, r)
	if !ok {
		return
	}
	agg := s.cfg.Analytics.Summary(device, quantity, from, to)
	writeJSON(w, http.StatusOK, map[string]any{
		"device": device, "quantity": quantity,
		"count": agg.Count, "min": agg.Min, "max": agg.Max, "mean": agg.Mean,
	})
}

// seriesWindowJSON is one downsampled window of a series response.
type seriesWindowJSON struct {
	At    time.Time `json:"at"`
	Count int       `json:"count"`
	Min   float64   `json:"min"`
	Max   float64   `json:"max"`
	Mean  float64   `json:"mean"`
}

// handleAnalyticsSeries returns a downsampled range of one series, one
// aggregate per window:
// GET /v2/analytics/{device}/{quantity}/series?hours=24&window=1h
// The window accepts Go duration syntax (15m, 1h, 24h; default 1h). The
// aggregation is pushed down onto the store's chunk summaries, so the cost
// scales with chunks, not points.
func (s *Server) handleAnalyticsSeries(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Analytics == nil {
		writeErr(w, http.StatusNotFound, "analytics_disabled", "")
		return
	}
	device := r.PathValue("device")
	quantity := r.PathValue("quantity")
	if !s.authorize(w, r, "read", "series:"+device) {
		return
	}
	from, to, ok := s.analyticsRange(w, r)
	if !ok {
		return
	}
	window := time.Hour
	if ws := r.URL.Query().Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "invalid_window", ws)
			return
		}
		window = d
	}
	wins, err := s.cfg.Analytics.Windows(device, quantity, from, to, window)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "query_failed", err.Error())
		return
	}
	points := make([]seriesWindowJSON, 0, len(wins))
	for _, wa := range wins {
		points = append(points, seriesWindowJSON{
			At: wa.Start, Count: wa.Count, Min: wa.Min, Max: wa.Max, Mean: wa.Mean,
		})
	}
	s.cfg.Metrics.Counter("httpapi.analytics.series").Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"device": device, "quantity": quantity, "window": window.String(),
		"points": points,
	})
}
