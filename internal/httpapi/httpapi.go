// Package httpapi exposes the SWAMP platform northbound over HTTP, the way
// a FIWARE deployment exposes Orion: an NGSI-v2-flavoured REST API for
// context entities plus an OAuth2 token endpoint. Every data route demands
// a bearer token and crosses the PEP, so the paper's §III access-control
// chain (identify → authorize → audit) guards external clients exactly as
// it guards internal ones.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/swamp-project/swamp/internal/cloud"
	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/security/identity"
	"github.com/swamp-project/swamp/internal/security/oauth"
	"github.com/swamp-project/swamp/internal/security/pep"
	"github.com/swamp-project/swamp/internal/tenant"
	"github.com/swamp-project/swamp/internal/timeseries"
)

// Query pagination defaults: every entity listing is bounded, so a
// fleet-scale store can never produce an unbounded response body.
const (
	DefaultQueryLimit = 100
	DefaultQueryCap   = 1000
)

// Config wires a Server.
type Config struct {
	// Context is the entity store behind /v2/entities (required).
	Context *ngsi.Broker
	// Tokens backs POST /oauth/token (required).
	Tokens *oauth.Server
	// PEP authorizes every data route (required).
	PEP *pep.PEP
	// Analytics backs /v2/analytics (optional; 404 when nil).
	Analytics *cloud.Analytics
	// Metrics is rendered at GET /metrics; nil allocates a private one.
	Metrics *metrics.Registry
	// Webhooks delivers subscription notifications; nil builds a private
	// pool wired to Context (closed by Server.Close).
	Webhooks *ngsi.WebhookPool
	// Cluster, when non-nil, routes entity reads/writes and analytics to
	// partition owners across the cluster instead of the local stores.
	// Listing responses bypass the local cache in this mode (the local
	// broker epoch cannot witness remote mutations). Subscriptions stay
	// node-local either way.
	Cluster ClusterBackend
	// QueryDefaultLimit is the page size applied when a listing request
	// names none (0 → DefaultQueryLimit).
	QueryDefaultLimit int
	// QueryMaxLimit is the hard cap on requested page sizes
	// (0 → DefaultQueryCap). Requests above it are rejected with 400.
	QueryMaxLimit int
	// Admission is the shared per-tenant admission controller. nil (or
	// disabled) admits everything; when set, every authorized data route
	// is charged against the principal's tenant and over-quota requests
	// answer 429 with Retry-After.
	Admission *tenant.Admission
}

// Server is the HTTP facade. It implements http.Handler.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	ownPool bool

	// queryCap is the reloadable hard cap on listing page sizes and
	// offsets (see SetQueryCap); it starts at Config.QueryMaxLimit.
	queryCap atomic.Int64

	// lists memoizes entity-listing bodies across requests, invalidated
	// by the broker's mutation epoch.
	lists *listCache

	// Hot-path counters, resolved once so request handling never takes
	// the registry lock.
	cTokenIssued, cTokenRejected *metrics.Counter
	cList, cListCached           *metrics.Counter
	cUpdate, cBatch, cBatchSize  *metrics.Counter
	cSeries, cThrottled          *metrics.Counter
}

// NewServer validates the config and builds the routing table.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Context == nil || cfg.Tokens == nil || cfg.PEP == nil {
		return nil, errors.New("httpapi: context, tokens and pep are required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.QueryDefaultLimit <= 0 {
		cfg.QueryDefaultLimit = DefaultQueryLimit
	}
	if cfg.QueryMaxLimit <= 0 {
		cfg.QueryMaxLimit = DefaultQueryCap
	}
	if cfg.QueryDefaultLimit > cfg.QueryMaxLimit {
		cfg.QueryDefaultLimit = cfg.QueryMaxLimit
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		lists: newListCache(),

		cTokenIssued:   cfg.Metrics.Counter("httpapi.token.issued"),
		cTokenRejected: cfg.Metrics.Counter("httpapi.token.rejected"),
		cList:          cfg.Metrics.Counter("httpapi.entities.list"),
		cListCached:    cfg.Metrics.Counter("httpapi.entities.list.cached"),
		cUpdate:        cfg.Metrics.Counter("httpapi.entities.update"),
		cBatch:         cfg.Metrics.Counter("httpapi.entities.batch"),
		cBatchSize:     cfg.Metrics.Counter("httpapi.entities.batch.size"),
		cSeries:        cfg.Metrics.Counter("httpapi.analytics.series"),
		cThrottled:     cfg.Metrics.Counter("httpapi.throttled"),
	}
	// WAL recovery may have repopulated the broker with HTTP-created
	// subscriptions; advance the id counter past them so fresh creations
	// never collide with recovered ids.
	seedSubscriptionCounter(cfg.Context)
	if s.cfg.Webhooks == nil {
		s.cfg.Webhooks = ngsi.NewWebhookPool(ngsi.WebhookConfig{
			Metrics:  cfg.Metrics,
			OnStatus: ngsi.StatusUpdater(cfg.Context),
		})
		s.ownPool = true
	}
	s.mux.HandleFunc("POST /oauth/token", s.handleToken)
	s.mux.HandleFunc("GET /v2/entities", s.handleListEntities)
	s.mux.HandleFunc("GET /v2/entities/{id}", s.handleGetEntity)
	s.mux.HandleFunc("POST /v2/entities/{id}/attrs", s.handleUpdateAttrs)
	s.mux.HandleFunc("POST /v2/op/update", s.handleBatchUpdate)
	s.mux.HandleFunc("DELETE /v2/entities/{id}", s.handleDeleteEntity)
	s.mux.HandleFunc("POST /v2/subscriptions", s.handleCreateSubscription)
	s.mux.HandleFunc("GET /v2/subscriptions", s.handleListSubscriptions)
	s.mux.HandleFunc("GET /v2/subscriptions/{id}", s.handleGetSubscription)
	s.mux.HandleFunc("DELETE /v2/subscriptions/{id}", s.handleDeleteSubscription)
	s.mux.HandleFunc("GET /v2/analytics/{device}/{quantity}", s.handleAnalytics)
	s.mux.HandleFunc("GET /v2/analytics/{device}/{quantity}/series", s.handleAnalyticsSeries)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = cfg.Metrics.WritePrometheus(w)
	})
	s.queryCap.Store(int64(cfg.QueryMaxLimit))
	return s, nil
}

// SetQueryCap changes the hard cap on listing page sizes and offsets at
// runtime. n <= 0 restores the default. The static default page size is
// not re-clamped — a reload can only have raised or kept the cap it was
// validated against.
func (s *Server) SetQueryCap(n int) {
	if n <= 0 {
		n = DefaultQueryCap
	}
	s.queryCap.Store(int64(n))
}

// Close releases resources the server owns (the private webhook pool,
// when Config.Webhooks was nil).
func (s *Server) Close() {
	if s.ownPool {
		s.cfg.Webhooks.Close()
	}
}

// ServeHTTP implements http.Handler. Responses are routed through an
// envelope writer so even mux-generated failures (unknown route, method
// mismatch) carry the NGSI-v2 JSON error body instead of plain text.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ew := &envelopeWriter{ResponseWriter: w}
	s.mux.ServeHTTP(ew, r)
	// The tenant inflight slot claimed in authorize spans the whole
	// handler; it is returned here, once the response is written.
	if ew.release != nil {
		ew.release()
	}
}

// envelopeWriter rewrites non-JSON error responses (the mux's plain-text
// 404/405 pages) into the standard error envelope. Handlers in this
// package always set the JSON content type before writing an error, so
// their bodies pass through untouched.
type envelopeWriter struct {
	http.ResponseWriter
	suppressBody bool
	wroteHeader  bool
	// release returns the tenant admission inflight slot (set by
	// authorize on the first authorized route of the request).
	release func()
}

func (e *envelopeWriter) WriteHeader(code int) {
	if e.wroteHeader {
		e.ResponseWriter.WriteHeader(code)
		return
	}
	e.wroteHeader = true
	ct := e.Header().Get("Content-Type")
	if code < http.StatusBadRequest || strings.HasPrefix(ct, "application/json") {
		e.ResponseWriter.WriteHeader(code)
		return
	}
	e.suppressBody = true
	e.Header().Set("Content-Type", "application/json")
	e.ResponseWriter.WriteHeader(code)
	kind := "error"
	switch code {
	case http.StatusNotFound:
		kind = "not_found"
	case http.StatusMethodNotAllowed:
		kind = "method_not_allowed"
	case http.StatusBadRequest:
		kind = "bad_request"
	}
	_ = json.NewEncoder(e.ResponseWriter).Encode(apiError{Error: kind, Description: http.StatusText(code)})
}

func (e *envelopeWriter) Write(b []byte) (int, error) {
	if e.suppressBody {
		return len(b), nil // the plain-text body was replaced by the envelope
	}
	return e.ResponseWriter.Write(b)
}

// apiError is the JSON error envelope (Orion-style).
type apiError struct {
	Error       string `json:"error"`
	Description string `json:"description,omitempty"`
}

// jsonBufPool recycles response-encoding buffers across requests, so a
// hot northbound path allocates no per-response scratch. Buffers that
// grew past maxPooledBufBytes (an unusually wide listing) are dropped
// instead of pinned in the pool.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBufBytes = 1 << 16

func getJSONBuf() *bytes.Buffer {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	return buf
}

func putJSONBuf(buf *bytes.Buffer) {
	if buf.Cap() <= maxPooledBufBytes {
		jsonBufPool.Put(buf)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := getJSONBuf()
	_ = json.NewEncoder(buf).Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
	putJSONBuf(buf)
}

func writeErr(w http.ResponseWriter, code int, kind, desc string) {
	writeJSON(w, code, apiError{Error: kind, Description: desc})
}

// writeMutationErr maps a broker mutation failure. A durability error
// (journal record not durable — deletes and subscription changes are
// rolled back; entity upserts/merges stay applied and converge on
// restart to the durable state) is the server's fault: 503 tells
// well-behaved clients to retry instead of dropping the payload as
// rejected. Everything else answers with the caller's fallback
// status/kind (400 validation, 404 lookup).
func writeMutationErr(w http.ResponseWriter, fallbackCode int, kind string, err error) {
	if errors.Is(err, ngsi.ErrDurability) {
		writeErr(w, http.StatusServiceUnavailable, "durability_failure", err.Error())
		return
	}
	writeErr(w, fallbackCode, kind, err.Error())
}

// handleToken implements the password and client_credentials grants with
// form encoding per RFC 6749.
func (s *Server) handleToken(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_request", "malformed form")
		return
	}
	var tok oauth.Token
	var err error
	switch r.PostForm.Get("grant_type") {
	case "password":
		tok, err = s.cfg.Tokens.GrantPassword(
			r.PostForm.Get("username"), r.PostForm.Get("password"))
	case "client_credentials":
		tok, err = s.cfg.Tokens.GrantClientCredentials(
			r.PostForm.Get("client_id"), r.PostForm.Get("client_secret"))
	default:
		writeErr(w, http.StatusBadRequest, "unsupported_grant_type", "")
		return
	}
	if err != nil {
		s.cTokenRejected.Inc()
		writeErr(w, http.StatusUnauthorized, "invalid_grant", "authentication failed")
		return
	}
	s.cTokenIssued.Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"access_token": tok.Value,
		"token_type":   "Bearer",
		"expires_in":   int(time.Until(tok.ExpiresAt).Seconds()),
	})
}

// authorize enforces bearer-token + PEP on a data route; it returns the
// authenticated principal, or ok=false after writing the error response
// (401 missing/invalid token, 403 PEP deny).
func (s *Server) authorize(w http.ResponseWriter, r *http.Request, action, resource string) (identity.Principal, bool) {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if !strings.HasPrefix(auth, prefix) {
		writeErr(w, http.StatusUnauthorized, "missing_token", "Authorization: Bearer required")
		return identity.Principal{}, false
	}
	prin, err := s.cfg.PEP.Authorize(strings.TrimPrefix(auth, prefix), action, resource)
	if err != nil {
		if errors.Is(err, pep.ErrDenied) {
			writeErr(w, http.StatusForbidden, "access_denied", err.Error())
		} else {
			writeErr(w, http.StatusUnauthorized, "invalid_token", "token rejected")
		}
		return identity.Principal{}, false
	}
	// Tenant admission runs after authentication (the tenant is the
	// principal's) and once per request: handlers that authorize several
	// resources (batch update) are charged on the first pass only, so one
	// HTTP request always costs one quota message plus its body bytes.
	if ew, isEnvelope := w.(*envelopeWriter); !isEnvelope || ew.release == nil {
		bytes := r.ContentLength
		if bytes < 0 {
			// Chunked transfer: the body size is unknown until read, so
			// admit on the message token alone and settle the byte cost
			// as the handler consumes the body — otherwise a tenant
			// could evade the bytes/s quota entirely by never sending
			// Content-Length.
			bytes = 0
			if r.Body != nil {
				r.Body = &chargedBody{ReadCloser: r.Body, adm: s.cfg.Admission, id: prin.Tenant()}
			}
		}
		d, release := s.cfg.Admission.AdmitRequest(prin.Tenant(), bytes)
		if !d.Allowed() {
			s.cThrottled.Inc()
			writeThrottled(w, d)
			return identity.Principal{}, false
		}
		if isEnvelope {
			ew.release = release
		} else {
			// No envelope writer to park the slot on (a handler invoked
			// outside ServeHTTP): return it now — the rate charge stands,
			// only the inflight bound is skipped.
			release()
		}
		// Thread the tenant through the request context so downstream
		// layers can attribute work without re-deriving the principal.
		*r = *r.WithContext(tenant.WithID(r.Context(), prin.Tenant()))
	}
	return prin, true
}

// chargedBody settles a chunked request body's byte cost against the
// tenant's quota as the handler reads it. Charging per Read (rather
// than once on completion) means an abandoned oversized upload is still
// charged for everything consumed.
type chargedBody struct {
	io.ReadCloser
	adm *tenant.Admission
	id  tenant.ID
}

func (b *chargedBody) Read(p []byte) (int, error) {
	n, err := b.ReadCloser.Read(p)
	if n > 0 {
		b.adm.ChargeBytes(b.id, int64(n))
	}
	return n, err
}

// writeThrottled answers an over-quota request: 429 through the JSON
// error envelope plus a Retry-After header sized from the tenant's
// current quota debt (never below 1s — clients should back off, not spin).
func writeThrottled(w http.ResponseWriter, d tenant.Decision) {
	retry := int(d.RetryAfter / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeErr(w, http.StatusTooManyRequests, "too_many_requests",
		fmt.Sprintf("tenant quota exceeded; retry after %ds", retry))
}

// entityJSON is the wire form of an entity.
type entityJSON struct {
	ID    string                    `json:"id"`
	Type  string                    `json:"type"`
	Attrs map[string]ngsi.Attribute `json:"attrs"`
}

func toJSON(e *ngsi.Entity) entityJSON {
	return entityJSON{ID: e.ID, Type: e.Type, Attrs: e.Attrs}
}

// handleListEntities serves the NGSI-v2 query surface:
//
//	GET /v2/entities?idPattern=urn:farm1:*&type=SoilProbe&q=soilMoisture<0.2
//	    &attrs=soilMoisture,zone&orderBy=id&limit=50&offset=100&options=count
//
// Every knob is pushed down into the broker's shard scans (filter,
// projection, limit). The page size always applies — even a bare request
// gets QueryDefaultLimit — so the legacy unpaginated listing can no
// longer return an unbounded body. options=count adds the exact match
// total as the Fiware-Total-Count header.
func (s *Server) handleListEntities(w http.ResponseWriter, r *http.Request) {
	// Parse the query string strictly: Go's lenient Query() silently
	// drops pairs containing raw ';' — which would silently strip a
	// client's q= filter. Conjunctions must encode ';' as %3B.
	qs, err := url.ParseQuery(r.URL.RawQuery)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_query",
			"malformed query string (encode ';' as %3B): "+err.Error())
		return
	}
	pattern := qs.Get("idPattern")
	if pattern == "" {
		pattern = "*"
	}
	if _, ok := s.authorize(w, r, "read", "ngsi:"+pattern); !ok {
		return
	}
	// The epoch must be captured before the query runs: a mutation that
	// races the scan bumps it, so the filled entry can never validate
	// against post-mutation reads (see listCache.put). In cluster mode
	// the cache is bypassed entirely — remote mutations don't bump the
	// local epoch, so a hit could serve arbitrarily stale pages.
	epoch := s.cfg.Context.Epoch()
	if ent := s.lists.get(r.URL.RawQuery, epoch); ent != nil && s.cfg.Cluster == nil {
		if ent.total >= 0 {
			w.Header().Set("Fiware-Total-Count", strconv.Itoa(ent.total))
		}
		s.cList.Inc()
		s.cListCached.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(ent.body)
		return
	}
	conds, err := ngsi.ParseQ(qs.Get("q"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_query", err.Error())
		return
	}
	queryCap := int(s.queryCap.Load())
	limit := s.cfg.QueryDefaultLimit
	if ls := qs.Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil || limit <= 0 {
			writeErr(w, http.StatusBadRequest, "invalid_limit", ls)
			return
		}
		if limit > queryCap {
			writeErr(w, http.StatusBadRequest, "invalid_limit",
				fmt.Sprintf("limit %d exceeds maximum %d", limit, queryCap))
			return
		}
	}
	// The offset shares the hard cap: per-request clone work scales
	// with offset+limit, so an uncapped offset would let deep pagination
	// reinstate the unbounded full-store clone this surface removed.
	offset := 0
	if os := qs.Get("offset"); os != "" {
		offset, err = strconv.Atoi(os)
		if err != nil || offset < 0 {
			writeErr(w, http.StatusBadRequest, "invalid_offset", os)
			return
		}
		if offset > queryCap {
			writeErr(w, http.StatusBadRequest, "invalid_offset",
				fmt.Sprintf("offset %d exceeds maximum %d; narrow the query instead", offset, queryCap))
			return
		}
	}
	orderBy := qs.Get("orderBy")
	switch orderBy {
	case "":
		orderBy = ngsi.OrderByID // deterministic pagination by default
	case "none":
		orderBy = "" // engine-level unordered mode: early-stop scan
	}
	var attrs []string
	if as := qs.Get("attrs"); as != "" {
		attrs = strings.Split(as, ",")
	}
	count := false
	for _, opt := range strings.Split(qs.Get("options"), ",") {
		if opt == "count" {
			count = true
		}
	}
	res, err := s.backendQuery(r, ngsi.Query{
		IDPattern:  pattern,
		Type:       qs.Get("type"),
		Conditions: conds,
		Attrs:      attrs,
		OrderBy:    orderBy,
		Limit:      limit,
		Offset:     offset,
		Count:      count,
	})
	if err != nil {
		if s.cfg.Cluster != nil && clusterRetryable(err) {
			writeErr(w, http.StatusServiceUnavailable, "cluster_unavailable", err.Error())
			return
		}
		writeErr(w, http.StatusBadRequest, "invalid_query", err.Error())
		return
	}
	out := make([]entityJSON, 0, len(res.Entities))
	for _, e := range res.Entities {
		out = append(out, toJSON(e))
	}
	buf := getJSONBuf()
	_ = json.NewEncoder(buf).Encode(out)
	total := -1
	if count {
		total = res.Total
		w.Header().Set("Fiware-Total-Count", strconv.Itoa(total))
	}
	if s.cfg.Cluster == nil {
		s.lists.put(r.URL.RawQuery, epoch, &listCacheEntry{
			body:  append([]byte(nil), buf.Bytes()...),
			total: total,
		})
	}
	s.cList.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
	putJSONBuf(buf)
}

func (s *Server) handleGetEntity(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.authorize(w, r, "read", "ngsi:"+id); !ok {
		return
	}
	e, err := s.backendGetEntity(r, id)
	if err != nil {
		if s.cfg.Cluster != nil && !errors.Is(err, ngsi.ErrNotFound) && clusterRetryable(err) {
			writeErr(w, http.StatusServiceUnavailable, "cluster_unavailable", err.Error())
			return
		}
		writeErr(w, http.StatusNotFound, "not_found", id)
		return
	}
	writeJSON(w, http.StatusOK, toJSON(e))
}

// updateBody is the accepted payload of POST .../attrs: attribute name →
// {type, value}.
type updateBody map[string]struct {
	Type  string  `json:"type"`
	Value float64 `json:"value"`
}

func (s *Server) handleUpdateAttrs(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.authorize(w, r, "write", "ngsi:"+id); !ok {
		return
	}
	var body updateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body) == 0 {
		writeErr(w, http.StatusBadRequest, "invalid_body", "expected {attr:{type,value}}")
		return
	}
	entityType := r.URL.Query().Get("type")
	if entityType == "" {
		entityType = "Thing"
	}
	attrs := make(map[string]ngsi.Attribute, len(body))
	for name, a := range body {
		typ := a.Type
		if typ == "" {
			typ = "Number"
		}
		attrs[name] = ngsi.Attribute{Type: typ, Value: a.Value}
	}
	if err := s.backendUpdateAttrs(r, id, entityType, attrs); err != nil {
		if s.cfg.Cluster != nil {
			writeClusterMutationErr(w, http.StatusBadRequest, "update_failed", err)
		} else {
			writeMutationErr(w, http.StatusBadRequest, "update_failed", err)
		}
		return
	}
	s.cUpdate.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// batchBody is the payload of POST /v2/op/update, following Orion's batch
// operation shape: an action plus the affected entities.
type batchBody struct {
	ActionType string `json:"actionType"`
	Entities   []struct {
		ID    string                    `json:"id"`
		Type  string                    `json:"type"`
		Attrs map[string]ngsi.Attribute `json:"attrs"`
	} `json:"entities"`
}

// handleBatchUpdate is the batched ingest path over HTTP: one request, a
// per-entity PEP pass, then one BatchUpdate with a single lock acquisition
// per broker shard — the NGSI-v2 `POST /v2/op/update` operation.
func (s *Server) handleBatchUpdate(w http.ResponseWriter, r *http.Request) {
	var body batchBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil || len(body.Entities) == 0 {
		writeErr(w, http.StatusBadRequest, "invalid_body", "expected {actionType, entities:[{id,type,attrs}]}")
		return
	}
	if body.ActionType != "" && body.ActionType != "append" && body.ActionType != "update" {
		writeErr(w, http.StatusBadRequest, "invalid_action", body.ActionType)
		return
	}
	updates := make(map[string]ngsi.BatchEntry, len(body.Entities))
	for _, e := range body.Entities {
		if _, ok := s.authorize(w, r, "write", "ngsi:"+e.ID); !ok {
			return
		}
		typ := e.Type
		if typ == "" {
			typ = "Thing"
		}
		entry := updates[e.ID]
		if entry.Attrs == nil {
			entry = ngsi.BatchEntry{Type: typ, Attrs: make(map[string]ngsi.Attribute, len(e.Attrs))}
		} else if e.Type != "" {
			// Duplicate id: an explicitly typed entry wins over an earlier
			// defaulted one.
			entry.Type = e.Type
		}
		for name, a := range e.Attrs {
			if a.Type == "" {
				a.Type = "Number"
			}
			entry.Attrs[name] = a
		}
		updates[e.ID] = entry
	}
	if err := s.backendBatchUpdate(r, updates); err != nil {
		if s.cfg.Cluster != nil {
			writeClusterMutationErr(w, http.StatusBadRequest, "update_failed", err)
		} else {
			writeMutationErr(w, http.StatusBadRequest, "update_failed", err)
		}
		return
	}
	s.cBatch.Inc()
	s.cBatchSize.Add(uint64(len(updates)))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDeleteEntity(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.authorize(w, r, "write", "ngsi:"+id); !ok {
		return
	}
	if err := s.backendDeleteEntity(r, id); err != nil {
		// A durability failure answers 503, not 404: the delete was
		// rolled back, so the entity is still there and the client
		// must retry.
		if s.cfg.Cluster != nil {
			writeClusterMutationErr(w, http.StatusNotFound, "not_found", err)
		} else {
			writeMutationErr(w, http.StatusNotFound, "not_found", err)
		}
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// analyticsRange parses the shared ?hours=N query range: it returns the
// [from, to) window or false after writing the error response.
func (s *Server) analyticsRange(w http.ResponseWriter, r *http.Request) (from, to time.Time, ok bool) {
	hours := 24
	if h := r.URL.Query().Get("hours"); h != "" {
		if _, err := fmt.Sscanf(h, "%d", &hours); err != nil || hours <= 0 {
			writeErr(w, http.StatusBadRequest, "invalid_hours", h)
			return time.Time{}, time.Time{}, false
		}
	}
	to = time.Now().Add(time.Hour) // include freshly stamped points
	from = to.Add(-time.Duration(hours+1) * time.Hour)
	return from, to, true
}

// handleAnalytics returns the summary aggregate of one series:
// GET /v2/analytics/{device}/{quantity}?hours=24
func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Analytics == nil && s.cfg.Cluster == nil {
		writeErr(w, http.StatusNotFound, "analytics_disabled", "")
		return
	}
	device := r.PathValue("device")
	quantity := r.PathValue("quantity")
	if _, ok := s.authorize(w, r, "read", "series:"+device); !ok {
		return
	}
	from, to, ok := s.analyticsRange(w, r)
	if !ok {
		return
	}
	var agg timeseries.Aggregate
	if s.cfg.Cluster != nil {
		var err error
		agg, err = s.cfg.Cluster.Summary(tenant.FromContext(r.Context()), device, quantity, from, to)
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable, "cluster_unavailable", err.Error())
			return
		}
	} else {
		agg = s.cfg.Analytics.Summary(device, quantity, from, to)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"device": device, "quantity": quantity,
		"count": agg.Count, "min": agg.Min, "max": agg.Max, "mean": agg.Mean,
	})
}

// seriesWindowJSON is one downsampled window of a series response.
type seriesWindowJSON struct {
	At    time.Time `json:"at"`
	Count int       `json:"count"`
	Min   float64   `json:"min"`
	Max   float64   `json:"max"`
	Mean  float64   `json:"mean"`
}

// handleAnalyticsSeries returns a downsampled range of one series, one
// aggregate per window:
// GET /v2/analytics/{device}/{quantity}/series?hours=24&window=1h
// The window accepts Go duration syntax (15m, 1h, 24h; default 1h). The
// aggregation is pushed down onto the store's chunk summaries, so the cost
// scales with chunks, not points.
func (s *Server) handleAnalyticsSeries(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Analytics == nil && s.cfg.Cluster == nil {
		writeErr(w, http.StatusNotFound, "analytics_disabled", "")
		return
	}
	device := r.PathValue("device")
	quantity := r.PathValue("quantity")
	if _, ok := s.authorize(w, r, "read", "series:"+device); !ok {
		return
	}
	from, to, ok := s.analyticsRange(w, r)
	if !ok {
		return
	}
	window := time.Hour
	if ws := r.URL.Query().Get("window"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d <= 0 {
			writeErr(w, http.StatusBadRequest, "invalid_window", ws)
			return
		}
		window = d
	}
	var wins []timeseries.WindowAggregate
	var err error
	if s.cfg.Cluster != nil {
		wins, err = s.cfg.Cluster.Windows(tenant.FromContext(r.Context()), device, quantity, from, to, window)
		if err != nil {
			writeErr(w, http.StatusServiceUnavailable, "cluster_unavailable", err.Error())
			return
		}
	} else {
		wins, err = s.cfg.Analytics.Windows(device, quantity, from, to, window)
	}
	if err != nil {
		writeErr(w, http.StatusBadRequest, "query_failed", err.Error())
		return
	}
	points := make([]seriesWindowJSON, 0, len(wins))
	for _, wa := range wins {
		points = append(points, seriesWindowJSON{
			At: wa.Start, Count: wa.Count, Min: wa.Min, Max: wa.Max, Mean: wa.Mean,
		})
	}
	s.cSeries.Inc()
	writeJSON(w, http.StatusOK, map[string]any{
		"device": device, "quantity": quantity, "window": window.String(),
		"points": points,
	})
}
