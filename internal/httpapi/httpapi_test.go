package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/cloud"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/security/identity"
	"github.com/swamp-project/swamp/internal/security/oauth"
	"github.com/swamp-project/swamp/internal/security/pep"
	"github.com/swamp-project/swamp/internal/tenant"
	"github.com/swamp-project/swamp/internal/timeseries"
)

type fixture struct {
	srv    *httptest.Server
	api    *Server
	ctx    *ngsi.Broker
	tokens *oauth.Server
}

func newFixture(t *testing.T) *fixture {
	return newFixtureWith(t, nil)
}

// newFixtureWith builds the standard two-tenant fixture, letting the
// test tweak the server Config (webhook pool, query limits) before the
// server is constructed.
func newFixtureWith(t *testing.T, tweak func(*Config)) *fixture {
	t.Helper()
	idm := identity.NewStore()
	if err := idm.Register(identity.Principal{
		ID: "farmer", Roles: []identity.Role{identity.RoleFarmer}, Owner: "farm1",
	}, "pw"); err != nil {
		t.Fatal(err)
	}
	if err := idm.Register(identity.Principal{
		ID: "outsider", Roles: []identity.Role{identity.RoleFarmer}, Owner: "farm2",
	}, "pw"); err != nil {
		t.Fatal(err)
	}
	tokens := oauth.NewServer(idm, oauth.Config{})
	pdp := pep.NewPDP(
		pep.Policy{
			ID: "own-ngsi", Roles: []identity.Role{identity.RoleFarmer},
			Owners: []tenant.ID{"farm1"}, ResourcePattern: "ngsi:urn:farm1:*", Effect: pep.Permit,
		},
		pep.Policy{
			ID: "own-series", Roles: []identity.Role{identity.RoleFarmer},
			Owners: []tenant.ID{"farm1"}, ResourcePattern: "series:farm1-*", Effect: pep.Permit,
		},
		pep.Policy{
			ID: "subscriptions", Roles: []identity.Role{identity.RoleFarmer},
			Actions: []string{"read", "subscribe"}, ResourcePattern: "subscriptions",
			Effect: pep.Permit,
		},
		pep.Policy{
			ID: "outsider-ngsi", Roles: []identity.Role{identity.RoleFarmer},
			Owners: []tenant.ID{"farm2"}, ResourcePattern: "ngsi:urn:farm2:*", Effect: pep.Permit,
		},
	)
	ctx := ngsi.NewBroker(ngsi.BrokerConfig{})
	t.Cleanup(ctx.Close)
	store := timeseries.New()
	ing := cloud.NewIngestor(store, nil)
	if err := ing.IngestReadings([]model.Reading{
		{Device: "farm1-p1", Quantity: model.QSoilMoisture, Value: 0.25, At: time.Now()},
		{Device: "farm1-p1", Quantity: model.QSoilMoisture, Value: 0.27, At: time.Now()},
	}); err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		Context: ctx, Tokens: tokens, PEP: pep.NewPEP(tokens, pdp, nil),
		Analytics: cloud.NewAnalytics(store),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return &fixture{srv: ts, api: s, ctx: ctx, tokens: tokens}
}

func (f *fixture) token(t *testing.T, user string) string {
	t.Helper()
	resp, err := http.PostForm(f.srv.URL+"/oauth/token", url.Values{
		"grant_type": {"password"}, "username": {user}, "password": {"pw"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("token status %d", resp.StatusCode)
	}
	var body struct {
		AccessToken string `json:"access_token"`
		TokenType   string `json:"token_type"`
		ExpiresIn   int    `json:"expires_in"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.TokenType != "Bearer" || body.ExpiresIn <= 0 || body.AccessToken == "" {
		t.Fatalf("token body %+v", body)
	}
	return body.AccessToken
}

func (f *fixture) do(t *testing.T, method, path, token string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, f.srv.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestTokenEndpoint(t *testing.T) {
	f := newFixture(t)
	f.token(t, "farmer") // success path asserted inside

	// Wrong password.
	resp, err := http.PostForm(f.srv.URL+"/oauth/token", url.Values{
		"grant_type": {"password"}, "username": {"farmer"}, "password": {"nope"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad password status %d", resp.StatusCode)
	}
	// Unknown grant type.
	resp2, err := http.PostForm(f.srv.URL+"/oauth/token", url.Values{"grant_type": {"magic"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad grant status %d", resp2.StatusCode)
	}
}

func TestEntityCRUDOverHTTP(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, "farmer")

	// Create/update via POST attrs.
	body := []byte(`{"soilMoisture":{"type":"Number","value":0.31}}`)
	resp := f.do(t, "POST", "/v2/entities/urn:farm1:plot1/attrs?type=AgriParcel", tok, body)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	// Read it back.
	resp = f.do(t, "GET", "/v2/entities/urn:farm1:plot1", tok, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp.StatusCode)
	}
	var e entityJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Type != "AgriParcel" {
		t.Errorf("entity %+v", e)
	}
	if v, ok := e.Attrs["soilMoisture"].Float(); !ok || v != 0.31 {
		t.Errorf("attr = %v", e.Attrs["soilMoisture"].Value)
	}
	// List with pattern.
	resp = f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*", tok, nil)
	var list []entityJSON
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Errorf("list = %d entities", len(list))
	}
	// Delete.
	resp = f.do(t, "DELETE", "/v2/entities/urn:farm1:plot1", tok, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp = f.do(t, "GET", "/v2/entities/urn:farm1:plot1", tok, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get after delete status %d", resp.StatusCode)
	}
}

// TestBatchUpdateOverHTTP exercises the batched ingest path: one
// POST /v2/op/update request lands several entities in one BatchUpdate.
func TestBatchUpdateOverHTTP(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, "farmer")

	body := []byte(`{"actionType":"append","entities":[
		{"id":"urn:farm1:plot1","type":"AgriParcel","attrs":{"soilMoisture":{"type":"Number","value":0.28}}},
		{"id":"urn:farm1:plot2","type":"AgriParcel","attrs":{"soilMoisture":{"type":"Number","value":0.31}}}
	]}`)
	resp := f.do(t, "POST", "/v2/op/update", tok, body)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if f.ctx.EntityCount() != 2 {
		t.Errorf("entity count = %d, want 2", f.ctx.EntityCount())
	}
	e, err := f.ctx.GetEntity("urn:farm1:plot2")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Attrs["soilMoisture"].Float(); !ok || v != 0.31 {
		t.Errorf("attr = %v", e.Attrs["soilMoisture"].Value)
	}

	// A cross-tenant entity anywhere in the batch rejects the request
	// before anything is applied.
	denied := []byte(`{"entities":[
		{"id":"urn:farm1:plot3","type":"AgriParcel","attrs":{"soilMoisture":{"type":"Number","value":0.1}}},
		{"id":"urn:farm2:plot1","type":"AgriParcel","attrs":{"soilMoisture":{"type":"Number","value":0.1}}}
	]}`)
	resp = f.do(t, "POST", "/v2/op/update", tok, denied)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("cross-tenant batch status %d", resp.StatusCode)
	}
	if _, err := f.ctx.GetEntity("urn:farm1:plot3"); err == nil {
		t.Error("partially applied a denied batch")
	}

	// Malformed bodies are rejected.
	for _, bad := range []string{"", "{}", `{"entities":[]}`, `{"actionType":"delete","entities":[{"id":"x","type":"T"}]}`} {
		resp := f.do(t, "POST", "/v2/op/update", tok, []byte(bad))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d", bad, resp.StatusCode)
		}
	}
}

func TestAuthzEnforcedOverHTTP(t *testing.T) {
	f := newFixture(t)
	// No token → 401.
	resp := f.do(t, "GET", "/v2/entities/urn:farm1:plot1", "", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no-token status %d", resp.StatusCode)
	}
	// Garbage token → 401.
	resp = f.do(t, "GET", "/v2/entities/urn:farm1:plot1", "garbage", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("garbage-token status %d", resp.StatusCode)
	}
	// Cross-tenant token → 403.
	outsider := f.token(t, "outsider")
	resp = f.do(t, "GET", "/v2/entities/urn:farm1:plot1", outsider, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("cross-tenant status %d", resp.StatusCode)
	}
	// Revoked token → 401.
	tok := f.token(t, "farmer")
	f.tokens.Revoke(tok)
	resp = f.do(t, "GET", "/v2/entities/urn:farm1:plot1", tok, nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("revoked-token status %d", resp.StatusCode)
	}
}

func TestUpdateValidation(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, "farmer")
	for _, body := range []string{"", "{}", "not json"} {
		resp := f.do(t, "POST", "/v2/entities/urn:farm1:x/attrs", tok, []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d", body, resp.StatusCode)
		}
	}
}

func TestAnalyticsEndpoint(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, "farmer")
	resp := f.do(t, "GET", "/v2/analytics/farm1-p1/soilMoisture?hours=48", tok, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analytics status %d", resp.StatusCode)
	}
	var out struct {
		Count int     `json:"count"`
		Mean  float64 `json:"mean"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 2 || out.Mean != 0.26 {
		t.Errorf("analytics %+v", out)
	}
	// Foreign series denied.
	resp = f.do(t, "GET", "/v2/analytics/farm2-p9/soilMoisture", tok, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("foreign series status %d", resp.StatusCode)
	}
	// Bad hours.
	resp = f.do(t, "GET", "/v2/analytics/farm1-p1/soilMoisture?hours=-3", tok, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad hours status %d", resp.StatusCode)
	}
}

// TestAnalyticsSeriesEndpoint exercises the downsampled-series route: the
// window parameter, the PEP guard and input validation.
func TestAnalyticsSeriesEndpoint(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, "farmer")
	resp := f.do(t, "GET", "/v2/analytics/farm1-p1/soilMoisture/series?hours=48&window=1h", tok, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("series status %d", resp.StatusCode)
	}
	var out struct {
		Device string `json:"device"`
		Window string `json:"window"`
		Points []struct {
			Count int     `json:"count"`
			Min   float64 `json:"min"`
			Max   float64 `json:"max"`
			Mean  float64 `json:"mean"`
		} `json:"points"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Device != "farm1-p1" || out.Window != "1h0m0s" {
		t.Errorf("series envelope %+v", out)
	}
	total := 0
	for _, p := range out.Points {
		total += p.Count
		if p.Min > p.Mean || p.Mean > p.Max {
			t.Errorf("inconsistent window %+v", p)
		}
	}
	if len(out.Points) == 0 || total != 2 {
		t.Errorf("windows = %d, total count = %d (want 2 points total)", len(out.Points), total)
	}

	// Bad window values.
	for _, q := range []string{"window=0s", "window=-5m", "window=banana"} {
		resp := f.do(t, "GET", "/v2/analytics/farm1-p1/soilMoisture/series?"+q, tok, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", q, resp.StatusCode)
		}
	}
	// Foreign series denied by the PEP.
	resp = f.do(t, "GET", "/v2/analytics/farm2-p9/soilMoisture/series", tok, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("foreign series status %d", resp.StatusCode)
	}
	// No token.
	resp = f.do(t, "GET", "/v2/analytics/farm1-p1/soilMoisture/series", "", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated status %d", resp.StatusCode)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	f := newFixture(t)
	resp := f.do(t, "GET", "/healthz", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz %d", resp.StatusCode)
	}
	f.token(t, "farmer") // bump a counter
	resp = f.do(t, "GET", "/metrics", "", nil)
	buf := new(strings.Builder)
	if _, err := jsonSafeCopy(buf, resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "swamp_httpapi_token_issued 1") {
		t.Errorf("metrics output missing counters:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "# TYPE swamp_httpapi_token_issued counter") {
		t.Errorf("metrics output not in Prometheus exposition format:\n%s", buf.String())
	}
}

func jsonSafeCopy(dst *strings.Builder, resp *http.Response) (int64, error) {
	defer resp.Body.Close()
	buf := make([]byte, 32<<10)
	var n int64
	for {
		m, err := resp.Body.Read(buf)
		dst.Write(buf[:m])
		n += int64(m)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

// failJournal fails every mutation's ack — a latched WAL.
type failJournal struct{ err error }

type failJournalAck struct{ err error }

func (a failJournalAck) Wait() error { return a.err }

func (j failJournal) EntityUpserted(*ngsi.Entity) ngsi.JournalAck { return failJournalAck{j.err} }
func (j failJournal) EntitiesMerged([]ngsi.MergeEntry) ngsi.JournalAck {
	return failJournalAck{j.err}
}
func (j failJournal) EntityDeleted(string) ngsi.JournalAck { return failJournalAck{j.err} }
func (j failJournal) SubscriptionPut(ngsi.SubscriptionView, string) ngsi.JournalAck {
	return failJournalAck{j.err}
}
func (j failJournal) SubscriptionDeleted(string) ngsi.JournalAck { return failJournalAck{j.err} }

// TestDurabilityFailureMapsTo503 asserts WAL durability failures answer
// as server faults (503, retryable), not client errors: a 400 would make
// well-behaved agents drop the payload as rejected, and a 404 on delete
// would claim an entity is gone while it may resurrect on restart.
func TestDurabilityFailureMapsTo503(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, "farmer")

	// Seed one entity while the journal still accepts.
	body := []byte(`{"soilMoisture":{"type":"Number","value":0.3}}`)
	if resp := f.do(t, "POST", "/v2/entities/urn:farm1:plot1/attrs?type=AgriParcel", tok, body); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("seed status %d", resp.StatusCode)
	}

	f.ctx.SetJournal(failJournal{err: errors.New("disk full")})

	if resp := f.do(t, "POST", "/v2/entities/urn:farm1:plot1/attrs?type=AgriParcel", tok, body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("update attrs status = %d, want 503", resp.StatusCode)
	}
	batch := []byte(`{"entities":[{"id":"urn:farm1:plot1","type":"AgriParcel","attrs":{"soilMoisture":{"type":"Number","value":0.4}}}]}`)
	if resp := f.do(t, "POST", "/v2/op/update", tok, batch); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("batch update status = %d, want 503", resp.StatusCode)
	}
	if resp := f.do(t, "DELETE", "/v2/entities/urn:farm1:plot1", tok, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("delete entity status = %d, want 503", resp.StatusCode)
	}
	// A genuinely missing entity still answers 404.
	if resp := f.do(t, "DELETE", "/v2/entities/urn:farm1:nope", tok, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing delete status = %d, want 404", resp.StatusCode)
	}
}

// A chunked request body carries no Content-Length, so admission cannot
// charge it up front; the counting reader must settle the byte cost as
// the handler consumes it — otherwise chunked transfer encoding evades
// the bytes/s quota entirely.
func TestChunkedBodyChargedAgainstByteQuota(t *testing.T) {
	adm := tenant.NewAdmission(tenant.Config{
		Enabled: true,
		Limits:  tenant.Limits{Default: tenant.Quota{MsgsPerSec: 1000, BytesPerSec: 1024}},
	})
	f := newFixtureWith(t, func(c *Config) { c.Admission = adm })
	tok := f.token(t, "farmer")

	// ~40 KiB of attributes against a 2 KiB burst capacity: far past the
	// reject rung once the body lands in the byte bucket.
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i < 1000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `"attr%04d":{"type":"Number","value":0.5}`, i)
	}
	sb.WriteByte('}')
	body := []byte(sb.String())
	// Hiding the reader's concrete type strips ContentLength, so the
	// client sends Transfer-Encoding: chunked.
	req, err := http.NewRequest("POST",
		f.srv.URL+"/v2/entities/urn:farm1:plot9/attrs?type=AgriParcel",
		struct{ io.Reader }{bytes.NewReader(body)})
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("chunked update status %d", resp.StatusCode)
	}

	// The consumed body must have landed in the byte bucket: the tenant
	// is now deep in debt and its next request is refused.
	resp = f.do(t, "GET", "/v2/entities/urn:farm1:plot9", tok, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request after oversized chunked upload got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}
