package httpapi

import (
	"fmt"
	"net/http"

	"github.com/swamp-project/swamp/internal/metrics"
)

// Ops is swampd's operational surface, servable before the platform has
// finished constructing (WAL recovery can take a while, and the whole
// point of /readyz is to report 503 during that window):
//
//	GET  /healthz       liveness — 200 as soon as the process serves HTTP
//	GET  /readyz        readiness — 503 until Ready() returns nil
//	GET  /metrics       Prometheus text exposition of the shared registry
//	POST /admin/reload  validate-then-swap config reload (same as SIGHUP)
//
// Liveness and readiness are deliberately distinct: a deadlocked-but-
// listening process is live and unready, a process mid-recovery is live
// and unready, and orchestrators restart on liveness but only route on
// readiness.
type Ops struct {
	// Metrics is the registry /metrics renders. Required.
	Metrics *metrics.Registry
	// Ready reports nil when the daemon can serve traffic; the returned
	// error becomes the /readyz 503 body. Nil means always ready.
	Ready func() error
	// Reload performs one validate-then-swap config reload and returns
	// the dynamic fields applied. Nil disables POST /admin/reload (405).
	Reload func() (applied []string, err error)
	// Detail, when set, contributes extra fields to the /readyz JSON
	// body on both the ready and unready paths — recovery progress,
	// queue depths, replication lag. Keys named "status" or "reason"
	// are ignored (they belong to the gate itself).
	Detail func() map[string]any

	mux *http.ServeMux
}

// NewOps builds the ops handler.
func NewOps(reg *metrics.Registry, ready func() error, reload func() ([]string, error)) *Ops {
	o := &Ops{Metrics: reg, Ready: ready, Reload: reload}
	o.mux = http.NewServeMux()
	o.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	o.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		body := map[string]any{"status": "ready"}
		code := http.StatusOK
		if o.Ready != nil {
			if err := o.Ready(); err != nil {
				body["status"] = "unready"
				body["reason"] = err.Error()
				code = http.StatusServiceUnavailable
			}
		}
		if o.Detail != nil {
			for k, v := range o.Detail() {
				if k == "status" || k == "reason" {
					continue
				}
				body[k] = v
			}
		}
		writeJSON(w, code, body)
	})
	o.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Metrics.WritePrometheus(w)
	})
	o.mux.HandleFunc("POST /admin/reload", func(w http.ResponseWriter, _ *http.Request) {
		if o.Reload == nil {
			writeErr(w, http.StatusMethodNotAllowed, "reload_unavailable", "no config file to reload from")
			return
		}
		applied, err := o.Reload()
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "reload_rejected", err.Error())
			return
		}
		if applied == nil {
			applied = []string{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "applied": applied})
	})
	return o
}

// Handles reports whether path belongs to the ops surface — swampd's
// outer mux routes these to Ops and everything else to the API server.
func (o *Ops) Handles(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics", "/admin/reload":
		return true
	}
	return false
}

// ServeHTTP implements http.Handler.
func (o *Ops) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if o.Handles(r.URL.Path) {
		o.mux.ServeHTTP(w, r)
		return
	}
	writeErr(w, http.StatusNotFound, "not_found", fmt.Sprintf("no ops route %s", r.URL.Path))
}
