package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/tenant"
)

// Ops is swampd's operational surface, servable before the platform has
// finished constructing (WAL recovery can take a while, and the whole
// point of /readyz is to report 503 during that window):
//
//	GET  /healthz       liveness — 200 as soon as the process serves HTTP
//	GET  /readyz        readiness — 503 until Ready() returns nil
//	GET  /metrics       Prometheus text exposition of the shared registry
//	POST /admin/reload  validate-then-swap config reload (same as SIGHUP)
//
// Liveness and readiness are deliberately distinct: a deadlocked-but-
// listening process is live and unready, a process mid-recovery is live
// and unready, and orchestrators restart on liveness but only route on
// readiness.
type Ops struct {
	// Metrics is the registry /metrics renders. Required.
	Metrics *metrics.Registry
	// Ready reports nil when the daemon can serve traffic; the returned
	// error becomes the /readyz 503 body. Nil means always ready.
	Ready func() error
	// Reload performs one validate-then-swap config reload and returns
	// the dynamic fields applied. Nil disables POST /admin/reload (405).
	Reload func() (applied []string, err error)
	// Detail, when set, contributes extra fields to the /readyz JSON
	// body on both the ready and unready paths — recovery progress,
	// queue depths, replication lag. Keys named "status" or "reason"
	// are ignored (they belong to the gate itself).
	Detail func() map[string]any
	// Tenants, when set, resolves the admission controller backing the
	// tenant admin surface (GET /admin/tenants, GET
	// /admin/tenants/{id}/quota) and the per-tenant gauge export before
	// each /metrics render. A func, not a pointer, because the ops
	// surface serves before the platform (and its controller) exists;
	// returning nil answers 404 until then.
	Tenants func() *tenant.Admission
	// SetQuota applies one per-tenant quota override through the same
	// validate-then-swap pipeline as a config reload; spec is the compact
	// ParseSpec form, and an empty spec clears the override back to the
	// table default. Nil disables PUT /admin/tenants/{id}/quota (405).
	SetQuota func(id, spec string) error

	mux *http.ServeMux
}

// NewOps builds the ops handler.
func NewOps(reg *metrics.Registry, ready func() error, reload func() ([]string, error)) *Ops {
	o := &Ops{Metrics: reg, Ready: ready, Reload: reload}
	o.mux = http.NewServeMux()
	o.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	o.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		body := map[string]any{"status": "ready"}
		code := http.StatusOK
		if o.Ready != nil {
			if err := o.Ready(); err != nil {
				body["status"] = "unready"
				body["reason"] = err.Error()
				code = http.StatusServiceUnavailable
			}
		}
		if o.Detail != nil {
			for k, v := range o.Detail() {
				if k == "status" || k == "reason" {
					continue
				}
				body[k] = v
			}
		}
		writeJSON(w, code, body)
	})
	o.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		if adm := o.admission(); adm != nil {
			// Refresh the swamp_tenant_* gauges (top-K by admitted volume
			// plus an _other aggregate) so the scrape sees live usage.
			adm.Export(o.Metrics)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Metrics.WritePrometheus(w)
	})
	o.mux.HandleFunc("GET /admin/tenants", func(w http.ResponseWriter, _ *http.Request) {
		adm := o.admission()
		if adm == nil {
			writeErr(w, http.StatusNotFound, "tenants_unavailable", "tenant admission not wired")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"enabled": adm.Enabled(),
			"tenants": adm.Tenants(),
		})
	})
	o.mux.HandleFunc("GET /admin/tenants/{id}/quota", func(w http.ResponseWriter, r *http.Request) {
		adm := o.admission()
		if adm == nil {
			writeErr(w, http.StatusNotFound, "tenants_unavailable", "tenant admission not wired")
			return
		}
		id := tenant.ID(r.PathValue("id"))
		q, override := adm.QuotaFor(id)
		writeJSON(w, http.StatusOK, quotaJSON{ID: id, Quota: q, Override: override, Spec: q.Spec()})
	})
	o.mux.HandleFunc("PUT /admin/tenants/{id}/quota", func(w http.ResponseWriter, r *http.Request) {
		adm := o.admission()
		if adm == nil || o.SetQuota == nil {
			writeErr(w, http.StatusMethodNotAllowed, "tenants_unavailable", "tenant quota updates not wired")
			return
		}
		id := strings.TrimSpace(r.PathValue("id"))
		if id == "" {
			writeErr(w, http.StatusBadRequest, "invalid_tenant", "empty tenant id")
			return
		}
		var body struct {
			Spec string `json:"spec"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeErr(w, http.StatusBadRequest, "invalid_body", `expected {"spec": "msgs=...,bytes=..."}`)
			return
		}
		// SetQuota routes through validate-then-swap: an invalid spec (or
		// any other rejected candidate config) answers 422 and changes
		// nothing, exactly like a rejected reload.
		if err := o.SetQuota(id, strings.TrimSpace(body.Spec)); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "invalid_quota", err.Error())
			return
		}
		q, override := adm.QuotaFor(tenant.ID(id))
		writeJSON(w, http.StatusOK, quotaJSON{ID: tenant.ID(id), Quota: q, Override: override, Spec: q.Spec()})
	})
	o.mux.HandleFunc("POST /admin/reload", func(w http.ResponseWriter, _ *http.Request) {
		if o.Reload == nil {
			writeErr(w, http.StatusMethodNotAllowed, "reload_unavailable", "no config file to reload from")
			return
		}
		applied, err := o.Reload()
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "reload_rejected", err.Error())
			return
		}
		if applied == nil {
			applied = []string{}
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "reloaded", "applied": applied})
	})
	return o
}

// admission resolves the live admission controller, or nil when the
// hook is unset or the platform has not finished constructing.
func (o *Ops) admission() *tenant.Admission {
	if o.Tenants == nil {
		return nil
	}
	return o.Tenants()
}

// quotaJSON is the wire form of one tenant's effective quota: the
// structured fields plus the compact spec string PUT accepts, so a GET
// body can be edited and PUT straight back.
type quotaJSON struct {
	ID       tenant.ID    `json:"id"`
	Quota    tenant.Quota `json:"quota"`
	Override bool         `json:"override"`
	Spec     string       `json:"spec"`
}

// Handles reports whether path belongs to the ops surface — swampd's
// outer mux routes these to Ops and everything else to the API server.
func (o *Ops) Handles(path string) bool {
	switch path {
	case "/healthz", "/readyz", "/metrics", "/admin/reload", "/admin/tenants":
		return true
	}
	return strings.HasPrefix(path, "/admin/tenants/")
}

// ServeHTTP implements http.Handler.
func (o *Ops) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if o.Handles(r.URL.Path) {
		o.mux.ServeHTTP(w, r)
		return
	}
	writeErr(w, http.StatusNotFound, "not_found", fmt.Sprintf("no ops route %s", r.URL.Path))
}
