package httpapi

import (
	"errors"
	"net/http"
	"strings"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/timeseries"
)

// ClusterBackend is the cluster-aware data plane: reads and writes that
// must route to partition owners instead of the local stores. The
// concrete implementation lives in internal/cluster (its Router
// satisfies this structurally); httpapi deliberately does not import it,
// keeping the northbound buildable — and testable — without the cluster
// plane.
//
// Error contract: lookups wrap ngsi.ErrNotFound; infrastructure
// failures (not-the-leader bounces, fencing, replication-ack timeouts,
// peer transport loss) are prefixed "cluster: " and map to 503 — the
// write may be retried against the (possibly re-elected) owner.
type ClusterBackend interface {
	Query(q ngsi.Query) (ngsi.QueryResult, error)
	GetEntity(id string) (*ngsi.Entity, error)
	UpdateAttrs(id, typ string, attrs map[string]ngsi.Attribute) error
	BatchUpdate(updates map[string]ngsi.BatchEntry) error
	DeleteEntity(id string) error
	Summary(device, quantity string, from, to time.Time) (timeseries.Aggregate, error)
	Windows(device, quantity string, from, to time.Time, window time.Duration) ([]timeseries.WindowAggregate, error)
}

// clusterRetryable reports whether an error from the cluster backend is
// an infrastructure condition the client should retry (503) rather than
// a request defect (400/404). Cluster-plane errors all carry the
// package's "cluster: " prefix somewhere in the chain.
func clusterRetryable(err error) bool {
	return strings.Contains(err.Error(), "cluster: ")
}

// writeClusterMutationErr is writeMutationErr for routed writes: the
// not-found sentinel keeps its 404, durability and cluster-plane
// failures answer 503 (retry), everything else falls back to the
// caller's validation status.
func writeClusterMutationErr(w http.ResponseWriter, fallbackCode int, kind string, err error) {
	switch {
	case errors.Is(err, ngsi.ErrNotFound):
		writeErr(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, ngsi.ErrDurability):
		writeErr(w, http.StatusServiceUnavailable, "durability_failure", err.Error())
	case clusterRetryable(err):
		writeErr(w, http.StatusServiceUnavailable, "cluster_unavailable", err.Error())
	default:
		writeErr(w, fallbackCode, kind, err.Error())
	}
}

// Backend indirection: each data route calls through these so cluster
// mode changes routing, not handler logic.

func (s *Server) backendQuery(q ngsi.Query) (ngsi.QueryResult, error) {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.Query(q)
	}
	return s.cfg.Context.Query(q)
}

func (s *Server) backendGetEntity(id string) (*ngsi.Entity, error) {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.GetEntity(id)
	}
	return s.cfg.Context.GetEntity(id)
}

func (s *Server) backendUpdateAttrs(id, typ string, attrs map[string]ngsi.Attribute) error {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.UpdateAttrs(id, typ, attrs)
	}
	return s.cfg.Context.UpdateAttrs(id, typ, attrs)
}

func (s *Server) backendBatchUpdate(updates map[string]ngsi.BatchEntry) error {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.BatchUpdate(updates)
	}
	return s.cfg.Context.BatchUpdate(updates)
}

func (s *Server) backendDeleteEntity(id string) error {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.DeleteEntity(id)
	}
	return s.cfg.Context.DeleteEntity(id)
}
