package httpapi

import (
	"errors"
	"net/http"
	"strings"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/tenant"
	"github.com/swamp-project/swamp/internal/timeseries"
)

// ClusterBackend is the cluster-aware data plane: reads and writes that
// must route to partition owners instead of the local stores. The
// concrete implementation lives in internal/cluster (its Router
// satisfies this structurally); httpapi deliberately does not import it,
// keeping the northbound buildable — and testable — without the cluster
// plane.
//
// Error contract: lookups wrap ngsi.ErrNotFound; infrastructure
// failures (not-the-leader bounces, fencing, replication-ack timeouts,
// peer transport loss) are prefixed "cluster: " and map to 503 — the
// write may be retried against the (possibly re-elected) owner.
//
// Every call carries the originating tenant as typed request metadata.
// Admission is charged exactly once, at the ingress node that resolved
// the principal — the serving leader uses the ID for attribution
// (routed-load accounting, audit), never to re-admit, so a routed
// request can't be double-charged.
type ClusterBackend interface {
	Query(tid tenant.ID, q ngsi.Query) (ngsi.QueryResult, error)
	GetEntity(tid tenant.ID, id string) (*ngsi.Entity, error)
	UpdateAttrs(tid tenant.ID, id, typ string, attrs map[string]ngsi.Attribute) error
	BatchUpdate(tid tenant.ID, updates map[string]ngsi.BatchEntry) error
	DeleteEntity(tid tenant.ID, id string) error
	Summary(tid tenant.ID, device, quantity string, from, to time.Time) (timeseries.Aggregate, error)
	Windows(tid tenant.ID, device, quantity string, from, to time.Time, window time.Duration) ([]timeseries.WindowAggregate, error)
}

// clusterRetryable reports whether an error from the cluster backend is
// an infrastructure condition the client should retry (503) rather than
// a request defect (400/404). Cluster-plane errors all carry the
// package's "cluster: " prefix somewhere in the chain.
func clusterRetryable(err error) bool {
	return strings.Contains(err.Error(), "cluster: ")
}

// writeClusterMutationErr is writeMutationErr for routed writes: the
// not-found sentinel keeps its 404, durability and cluster-plane
// failures answer 503 (retry), everything else falls back to the
// caller's validation status.
func writeClusterMutationErr(w http.ResponseWriter, fallbackCode int, kind string, err error) {
	switch {
	case errors.Is(err, ngsi.ErrNotFound):
		writeErr(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, ngsi.ErrDurability):
		writeErr(w, http.StatusServiceUnavailable, "durability_failure", err.Error())
	case clusterRetryable(err):
		writeErr(w, http.StatusServiceUnavailable, "cluster_unavailable", err.Error())
	default:
		writeErr(w, fallbackCode, kind, err.Error())
	}
}

// Backend indirection: each data route calls through these so cluster
// mode changes routing, not handler logic. The request's context carries
// the tenant stamped by authorize; local (non-cluster) stores don't need
// it — single-node admission already ran at the front door.

func (s *Server) backendQuery(r *http.Request, q ngsi.Query) (ngsi.QueryResult, error) {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.Query(tenant.FromContext(r.Context()), q)
	}
	return s.cfg.Context.Query(q)
}

func (s *Server) backendGetEntity(r *http.Request, id string) (*ngsi.Entity, error) {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.GetEntity(tenant.FromContext(r.Context()), id)
	}
	return s.cfg.Context.GetEntity(id)
}

func (s *Server) backendUpdateAttrs(r *http.Request, id, typ string, attrs map[string]ngsi.Attribute) error {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.UpdateAttrs(tenant.FromContext(r.Context()), id, typ, attrs)
	}
	return s.cfg.Context.UpdateAttrs(id, typ, attrs)
}

func (s *Server) backendBatchUpdate(r *http.Request, updates map[string]ngsi.BatchEntry) error {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.BatchUpdate(tenant.FromContext(r.Context()), updates)
	}
	return s.cfg.Context.BatchUpdate(updates)
}

func (s *Server) backendDeleteEntity(r *http.Request, id string) error {
	if s.cfg.Cluster != nil {
		return s.cfg.Cluster.DeleteEntity(tenant.FromContext(r.Context()), id)
	}
	return s.cfg.Context.DeleteEntity(id)
}
