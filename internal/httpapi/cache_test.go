package httpapi

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/ngsi"
)

// TestListCacheServesAndInvalidates: a repeated identical listing is
// served from the response cache (the cached counter moves), and every
// kind of entity mutation — upsert, attribute update, delete —
// invalidates it so the next listing reflects the new state.
func TestListCacheServesAndInvalidates(t *testing.T) {
	reg := metrics.NewRegistry()
	f := newFixtureWith(t, func(c *Config) { c.Metrics = reg })
	tok := f.token(t, "farmer")

	probe := func(id string, v float64) *ngsi.Entity {
		return &ngsi.Entity{ID: id, Type: "SoilProbe", Attrs: map[string]ngsi.Attribute{
			"soilMoisture": {Type: "Number", Value: v},
		}}
	}
	if err := f.ctx.UpsertEntity(probe("urn:farm1:e1", 0.10)); err != nil {
		t.Fatal(err)
	}

	const path = "/v2/entities?idPattern=urn:farm1:*&options=count&orderBy=id"
	list := func() (out []entityJSON, total string) {
		t.Helper()
		resp := f.do(t, http.MethodGet, path, tok, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out, resp.Header.Get("Fiware-Total-Count")
	}

	if out, total := list(); len(out) != 1 || total != "1" {
		t.Fatalf("first list: %d entities, total %q", len(out), total)
	}
	if got := reg.Counter("httpapi.entities.list.cached").Value(); got != 0 {
		t.Fatalf("cold list counted as cached: %d", got)
	}
	// Identical repeat: served from cache, body and count header intact.
	if out, total := list(); len(out) != 1 || total != "1" {
		t.Fatalf("cached list: %d entities, total %q", len(out), total)
	}
	if got := reg.Counter("httpapi.entities.list.cached").Value(); got != 1 {
		t.Fatalf("cached counter = %d, want 1", got)
	}

	// Upsert invalidates: the next listing sees the new entity.
	if err := f.ctx.UpsertEntity(probe("urn:farm1:e2", 0.20)); err != nil {
		t.Fatal(err)
	}
	if out, total := list(); len(out) != 2 || total != "2" {
		t.Fatalf("post-upsert list: %d entities, total %q", len(out), total)
	}

	// Attribute update invalidates: the refreshed value is served.
	if err := f.ctx.UpdateAttrs("urn:farm1:e1", "SoilProbe", map[string]ngsi.Attribute{
		"soilMoisture": {Type: "Number", Value: 0.99},
	}); err != nil {
		t.Fatal(err)
	}
	out, _ := list()
	if len(out) != 2 {
		t.Fatalf("post-update list: %d entities", len(out))
	}
	if v, ok := out[0].Attrs["soilMoisture"].Value.(float64); !ok || v != 0.99 {
		t.Fatalf("post-update value = %v, want 0.99", out[0].Attrs["soilMoisture"].Value)
	}

	// Delete invalidates too.
	if err := f.ctx.DeleteEntity("urn:farm1:e2"); err != nil {
		t.Fatal(err)
	}
	if out, total := list(); len(out) != 1 || total != "1" {
		t.Fatalf("post-delete list: %d entities, total %q", len(out), total)
	}
}

// TestListCachePerQueryKey: different query strings get distinct cache
// entries — a hit on one never serves the other's body.
func TestListCachePerQueryKey(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, "farmer")
	for _, e := range []struct {
		id string
		v  float64
	}{{"urn:farm1:a", 0.1}, {"urn:farm1:b", 0.9}} {
		if err := f.ctx.UpsertEntity(&ngsi.Entity{ID: e.id, Type: "SoilProbe",
			Attrs: map[string]ngsi.Attribute{"soilMoisture": {Type: "Number", Value: e.v}}}); err != nil {
			t.Fatal(err)
		}
	}
	get := func(path string) []entityJSON {
		t.Helper()
		resp := f.do(t, http.MethodGet, path, tok, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d for %s", resp.StatusCode, path)
		}
		var out []entityJSON
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	wide := "/v2/entities?idPattern=urn:farm1:*"
	narrow := "/v2/entities?idPattern=urn:farm1:*&q=soilMoisture%3E0.5"
	if got := get(wide); len(got) != 2 {
		t.Fatalf("wide = %d entities", len(got))
	}
	if got := get(narrow); len(got) != 1 || got[0].ID != "urn:farm1:b" {
		t.Fatalf("narrow = %+v", got)
	}
	// Repeat both (cache hits now) — still distinct.
	if got := get(wide); len(got) != 2 {
		t.Fatalf("cached wide = %d entities", len(got))
	}
	if got := get(narrow); len(got) != 1 {
		t.Fatalf("cached narrow = %d entities", len(got))
	}
}
