package httpapi

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/swamp-project/swamp/internal/metrics"
)

func TestOpsReadyzTransitions(t *testing.T) {
	reg := metrics.NewRegistry()
	var readyErr error = errors.New("recovering WAL")
	ops := NewOps(reg, func() error { return readyErr }, nil)
	srv := httptest.NewServer(ops)
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("healthz = %d, want 200 while unready (liveness != readiness)", code)
	}
	code, body := get("/readyz")
	if code != 503 || !strings.Contains(body, "recovering WAL") {
		t.Errorf("readyz = %d %q, want 503 naming the reason", code, body)
	}
	readyErr = nil
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("readyz after recovery = %d, want 200", code)
	}

	reg.Counter("mqtt.publish.in").Add(3)
	code, body = get("/metrics")
	if code != 200 || !strings.Contains(body, "swamp_mqtt_publish_in 3") {
		t.Errorf("metrics = %d:\n%s", code, body)
	}
}

func TestOpsReload(t *testing.T) {
	reg := metrics.NewRegistry()
	var reloadErr error
	applied := []string{"mqtt.flush_watermark"}
	ops := NewOps(reg, nil, func() ([]string, error) { return applied, reloadErr })
	srv := httptest.NewServer(ops)
	defer srv.Close()

	post := func() (int, string) {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL+"/admin/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	code, body := post()
	if code != 200 || !strings.Contains(body, "mqtt.flush_watermark") {
		t.Errorf("reload = %d %q", code, body)
	}
	reloadErr = errors.New("static field changed (8 -> 16); restart required")
	code, body = post()
	if code != 422 || !strings.Contains(body, "restart required") {
		t.Errorf("rejected reload = %d %q, want 422 with the rejection detail", code, body)
	}

	// No reload hook → 405.
	none := httptest.NewServer(NewOps(reg, nil, nil))
	defer none.Close()
	resp, err := none.Client().Post(none.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("reload without hook = %d, want 405", resp.StatusCode)
	}
}

func TestSetQueryCap(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, "farmer")

	resp := f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*&limit=900", tok, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("limit under default cap rejected: %d", resp.StatusCode)
	}
	f.api.SetQueryCap(500)
	resp = f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*&limit=901", tok, nil)
	if resp.StatusCode != 400 {
		t.Fatalf("limit above reloaded cap = %d, want 400", resp.StatusCode)
	}
	resp = f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*&limit=400", tok, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("limit under reloaded cap = %d, want 200", resp.StatusCode)
	}
}
