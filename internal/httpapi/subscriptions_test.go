package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/ngsi"
)

// seedEntities writes n farm1 plots with a numeric soilMoisture spread
// over [0,1) and a zone text attribute.
func seedEntities(t *testing.T, f *fixture, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := f.ctx.UpsertEntity(&ngsi.Entity{
			ID:   fmt.Sprintf("urn:farm1:plot:%04d", i),
			Type: "AgriParcel",
			Attrs: map[string]ngsi.Attribute{
				"soilMoisture": {Type: "Number", Value: float64(i) / float64(n)},
				"zone":         {Type: "Text", Value: fmt.Sprintf("zone-%d", i%4)},
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func decodeEntities(t *testing.T, resp *http.Response) []entityJSON {
	t.Helper()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out []entityJSON
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func decodeErr(t *testing.T, resp *http.Response) apiError {
	t.Helper()
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body not a JSON envelope: %v", err)
	}
	if e.Error == "" {
		t.Fatal("error envelope missing error kind")
	}
	return e
}

// TestEntityQuerySurface exercises q=, attrs=, orderBy=, limit/offset
// and options=count over HTTP.
func TestEntityQuerySurface(t *testing.T) {
	f := newFixture(t)
	seedEntities(t, f, 40)
	tok := f.token(t, "farmer")

	// Filtered query with projection and count.
	resp := f.do(t, "GET",
		"/v2/entities?idPattern=urn:farm1:*&q=soilMoisture%3C0.25&attrs=soilMoisture&options=count&limit=5", tok, nil)
	list := decodeEntities(t, resp)
	if len(list) != 5 {
		t.Fatalf("page = %d entities", len(list))
	}
	if got := resp.Header.Get("Fiware-Total-Count"); got != "10" {
		t.Errorf("Fiware-Total-Count = %q, want 10", got)
	}
	for _, e := range list {
		if _, leaked := e.Attrs["zone"]; leaked {
			t.Fatal("projection leaked attribute over HTTP")
		}
	}

	// Conjunction with a string comparison.
	resp = f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*&q=soilMoisture%3C0.25%3Bzone==zone-0&options=count", tok, nil)
	decodeEntities(t, resp)
	if got := resp.Header.Get("Fiware-Total-Count"); got != "3" {
		t.Errorf("conjunction total = %q, want 3", got)
	}

	// Pagination is deterministic under the default orderBy=id.
	resp = f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*&limit=7&offset=7", tok, nil)
	page := decodeEntities(t, resp)
	if len(page) != 7 || page[0].ID != "urn:farm1:plot:0007" {
		t.Errorf("offset page starts at %s with %d entities", page[0].ID, len(page))
	}

	// orderBy attribute, descending.
	resp = f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*&orderBy=!soilMoisture&limit=1", tok, nil)
	top := decodeEntities(t, resp)
	if len(top) != 1 || top[0].ID != "urn:farm1:plot:0039" {
		t.Errorf("descending top = %+v", top)
	}

	// Unordered mode still honors the limit.
	resp = f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*&orderBy=none&limit=3", tok, nil)
	if got := decodeEntities(t, resp); len(got) != 3 {
		t.Errorf("unordered page = %d", len(got))
	}
}

// TestEntityQueryValidation: malformed q=, limit and offset values are
// rejected with a parseable JSON envelope and a 400.
func TestEntityQueryValidation(t *testing.T) {
	f := newFixture(t)
	seedEntities(t, f, 5)
	tok := f.token(t, "farmer")
	for _, path := range []string{
		"/v2/entities?idPattern=urn:farm1:*&q=soilMoisture%3D0.2",                // single '=' is not an operator
		"/v2/entities?idPattern=urn:farm1:*&q=soilMoisture%3E%3D",                // missing value
		"/v2/entities?idPattern=urn:farm1:*&q=a%3D%3D'x",                         // unterminated quote
		"/v2/entities?idPattern=urn:farm1:*&q=;",                                 // empty statements
		"/v2/entities?idPattern=urn:farm1:*&limit=0",                             // non-positive limit
		"/v2/entities?idPattern=urn:farm1:*&limit=nope",                          // non-numeric limit
		"/v2/entities?idPattern=urn:farm1:*&limit=100000",                        // above the hard cap
		"/v2/entities?idPattern=urn:farm1:*&offset=-2",                           // negative offset
		"/v2/entities?idPattern=urn:farm1:*&offset=2000000",                      // offset above the hard cap
		"/v2/entities?idPattern=urn:farm1:*&offset=9223372036854775000&limit=10", // offset+limit would overflow
	} {
		resp := f.do(t, "GET", path, tok, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
			continue
		}
		decodeErr(t, resp)
	}
}

// TestLegacyListIsCapped: a bare GET /v2/entities (the legacy
// unpaginated path) is bounded by the default limit.
func TestLegacyListIsCapped(t *testing.T) {
	f := newFixtureWith(t, func(cfg *Config) { cfg.QueryDefaultLimit = 10 })
	seedEntities(t, f, 25)
	tok := f.token(t, "farmer")
	resp := f.do(t, "GET", "/v2/entities?idPattern=urn:farm1:*", tok, nil)
	if got := decodeEntities(t, resp); len(got) != 10 {
		t.Errorf("bare listing returned %d entities, want the 10-entity cap", len(got))
	}
}

// TestErrorEnvelopeEverywhere: unknown routes and method mismatches also
// produce the JSON error envelope, not the mux's plain-text pages.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	f := newFixture(t)
	resp := f.do(t, "GET", "/v2/nope", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route status %d", resp.StatusCode)
	}
	if e := decodeErr(t, resp); e.Error != "not_found" {
		t.Errorf("unknown route error kind %q", e.Error)
	}
	resp = f.do(t, "PUT", "/v2/entities", "", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("method mismatch status %d", resp.StatusCode)
	}
	if e := decodeErr(t, resp); e.Error != "method_not_allowed" {
		t.Errorf("method mismatch error kind %q", e.Error)
	}
}

type subRecorder struct {
	mu    sync.Mutex
	notes []struct {
		SubscriptionID string       `json:"subscriptionId"`
		Data           []entityJSON `json:"data"`
	}
}

func (s *subRecorder) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			SubscriptionID string       `json:"subscriptionId"`
			Data           []entityJSON `json:"data"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.notes = append(s.notes, body)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}
}

func (s *subRecorder) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.notes)
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

// TestSubscriptionWebhookEndToEnd is the full northbound loop: create a
// subscription over HTTP, update a matching entity over HTTP, receive
// the NGSI notification on a test server — while a second subscription
// pointing at a stalled endpoint isolates to itself: its counters
// advance, its status flips to failed, and the healthy subscriber keeps
// receiving.
func TestSubscriptionWebhookEndToEnd(t *testing.T) {
	var pool *ngsi.WebhookPool
	var broker *ngsi.Broker
	f := newFixtureWith(t, func(cfg *Config) {
		broker = cfg.Context
		pool = ngsi.NewWebhookPool(ngsi.WebhookConfig{
			Metrics:          cfg.Metrics,
			Client:           &http.Client{Timeout: 100 * time.Millisecond},
			RetryBackoff:     time.Millisecond,
			MaxRetries:       1,
			FailureThreshold: 2,
			OnStatus:         ngsi.StatusUpdater(broker),
		})
		cfg.Webhooks = pool
	})
	t.Cleanup(pool.Close)
	tok := f.token(t, "farmer")

	recorder := &subRecorder{}
	receiver := httptest.NewServer(recorder.handler())
	t.Cleanup(receiver.Close)
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		time.Sleep(time.Second)
		w.WriteHeader(http.StatusNoContent)
	}))
	t.Cleanup(stalled.Close)

	mkSub := func(url string) string {
		t.Helper()
		body := fmt.Sprintf(`{
			"subject": {"entities": [{"idPattern": "urn:farm1:plot:*", "type": "AgriParcel"}],
			            "condition": {"attrs": ["soilMoisture"]}},
			"notification": {"http": {"url": %q}}
		}`, url)
		resp := f.do(t, "POST", "/v2/subscriptions", tok, []byte(body))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create status %d", resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc == "" {
			t.Fatal("no Location header")
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
			t.Fatalf("create body: %v (%+v)", err, out)
		}
		return out.ID
	}
	healthyID := mkSub(receiver.URL)
	stalledID := mkSub(stalled.URL)

	// Both visible in the listing, active.
	resp := f.do(t, "GET", "/v2/subscriptions", tok, nil)
	var subs []subscriptionJSON
	if err := json.NewDecoder(resp.Body).Decode(&subs); err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("listed %d subscriptions", len(subs))
	}
	for _, sub := range subs {
		if sub.Status != string(ngsi.SubActive) || sub.Owner != "farm1" {
			t.Errorf("subscription %+v", sub)
		}
	}

	// Drive matching updates through the HTTP ingest path.
	const updates = 4
	for i := 0; i < updates; i++ {
		body := fmt.Sprintf(`{"soilMoisture":{"type":"Number","value":0.%d}}`, 10+i)
		resp := f.do(t, "POST", "/v2/entities/urn:farm1:plot:0001/attrs?type=AgriParcel", tok, []byte(body))
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("update status %d", resp.StatusCode)
		}
	}

	// The healthy endpoint receives every notification with the right
	// subscription id and entity.
	waitUntil(t, 5*time.Second, func() bool { return recorder.count() >= updates })
	recorder.mu.Lock()
	first := recorder.notes[0]
	recorder.mu.Unlock()
	if first.SubscriptionID != healthyID || len(first.Data) != 1 || first.Data[0].ID != "urn:farm1:plot:0001" {
		t.Errorf("notification payload %+v", first)
	}

	// The stalled endpoint's failures accumulate and flip only its own
	// subscription to failed.
	waitUntil(t, 15*time.Second, func() bool {
		v, err := broker.Subscription(stalledID)
		return err == nil && v.Status == ngsi.SubFailed
	})
	if v, _ := broker.Subscription(healthyID); v.Status != ngsi.SubActive {
		t.Error("healthy subscription affected by stalled endpoint")
	}
	resp = f.do(t, "GET", "/v2/subscriptions/"+stalledID, tok, nil)
	var sv subscriptionJSON
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	if sv.Status != string(ngsi.SubFailed) {
		t.Errorf("stalled subscription status over HTTP = %s", sv.Status)
	}

	// Delete both; they disappear from the broker and the API.
	for _, id := range []string{healthyID, stalledID} {
		resp := f.do(t, "DELETE", "/v2/subscriptions/"+id, tok, nil)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete status %d", resp.StatusCode)
		}
	}
	resp = f.do(t, "GET", "/v2/subscriptions/"+healthyID, tok, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted subscription status %d", resp.StatusCode)
	}
}

// TestSubscriptionAuthz: token and tenancy rules on the subscription
// surface.
func TestSubscriptionAuthz(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, "farmer")
	outsider := f.token(t, "outsider")

	// No token.
	resp := f.do(t, "GET", "/v2/subscriptions", "", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no-token list status %d", resp.StatusCode)
	}
	// An outsider may not subscribe to farm1's entities.
	body := []byte(`{"subject":{"entities":[{"idPattern":"urn:farm1:*"}]},
		"notification":{"http":{"url":"http://127.0.0.1:1/hook"}}}`)
	resp = f.do(t, "POST", "/v2/subscriptions", outsider, body)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("cross-tenant create status %d", resp.StatusCode)
	}
	// The farmer creates one.
	resp = f.do(t, "POST", "/v2/subscriptions", tok, body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	// The outsider cannot see or delete it — and gets the same 404 a
	// missing id would give, so sequential ids leak nothing; the list
	// hides it too.
	resp = f.do(t, "GET", "/v2/subscriptions/"+out.ID, outsider, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cross-tenant get status %d, want indistinguishable 404", resp.StatusCode)
	}
	resp = f.do(t, "DELETE", "/v2/subscriptions/"+out.ID, outsider, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cross-tenant delete status %d, want indistinguishable 404", resp.StatusCode)
	}
	if _, err := f.ctx.Subscription(out.ID); err != nil {
		t.Error("cross-tenant delete actually removed the subscription")
	}
	resp = f.do(t, "GET", "/v2/subscriptions", outsider, nil)
	var subs []subscriptionJSON
	if err := json.NewDecoder(resp.Body).Decode(&subs); err != nil {
		t.Fatal(err)
	}
	if len(subs) != 0 {
		t.Errorf("outsider sees %d foreign subscriptions", len(subs))
	}
	// Unknown id → 404.
	resp = f.do(t, "GET", "/v2/subscriptions/urn:none", tok, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status %d", resp.StatusCode)
	}
}

// TestInternalSubscriptionsInvisibleToTenants: ownerless platform
// wiring (like core's telemetry catch-all) is hidden from, and not
// deletable by, non-operator principals — even ones with an empty Owner.
func TestInternalSubscriptionsInvisibleToTenants(t *testing.T) {
	f := newFixtureWith(t, nil)
	if _, err := f.ctx.Subscribe(ngsi.Subscription{
		ID:              "platform-telemetry",
		EntityIDPattern: "*",
		Notifier:        ngsi.Callback(func(ngsi.Notification) {}),
	}); err != nil {
		t.Fatal(err)
	}
	tok := f.token(t, "farmer")
	resp := f.do(t, "GET", "/v2/subscriptions", tok, nil)
	var subs []subscriptionJSON
	if err := json.NewDecoder(resp.Body).Decode(&subs); err != nil {
		t.Fatal(err)
	}
	if len(subs) != 0 {
		t.Errorf("internal subscription visible to tenant: %+v", subs)
	}
	resp = f.do(t, "GET", "/v2/subscriptions/platform-telemetry", tok, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("internal subscription readable: status %d", resp.StatusCode)
	}
	resp = f.do(t, "DELETE", "/v2/subscriptions/platform-telemetry", tok, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("internal subscription delete status %d", resp.StatusCode)
	}
	if _, err := f.ctx.Subscription("platform-telemetry"); err != nil {
		t.Error("tenant deleted the internal platform subscription")
	}
}

// TestSubscriptionValidation: malformed creation payloads are rejected
// with the envelope before any state is created.
func TestSubscriptionValidation(t *testing.T) {
	f := newFixture(t)
	tok := f.token(t, "farmer")
	for _, body := range []string{
		``,
		`not json`,
		`{}`, // no subject entities
		`{"subject":{"entities":[{"idPattern":"urn:farm1:*"},{"idPattern":"urn:farm1:b*"}]},
		  "notification":{"http":{"url":"http://x/h"}}}`, // two selectors
		`{"subject":{"entities":[{}]},"notification":{"http":{"url":"http://x/h"}}}`, // empty selector
		`{"subject":{"entities":[{"idPattern":"urn:farm1:*"}]}}`,                     // no URL
		`{"subject":{"entities":[{"idPattern":"urn:farm1:*"}]},
		  "notification":{"http":{"url":"ftp://x/h"}}}`, // bad scheme
		`{"subject":{"entities":[{"idPattern":"urn:farm1:*"}]},
		  "notification":{"http":{"url":"http://x/h"}},"throttling":-1}`, // negative throttling
	} {
		resp := f.do(t, "POST", "/v2/subscriptions", tok, []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d", body, resp.StatusCode)
			continue
		}
		decodeErr(t, resp)
	}
	if n := f.ctx.SubscriptionCount(); n != 0 {
		t.Errorf("invalid payloads created %d subscriptions", n)
	}
}
