package httpapi

import "sync"

// listCache memoizes rendered GET /v2/entities response bodies keyed by
// the raw query string, validated against the context broker's mutation
// epoch: every entity mutation bumps the epoch, so one comparison
// decides whether a cached body is still the answer the query engine
// would produce. Authorization is NOT cached — every request crosses
// the PEP before a cached body is served.
type listCache struct {
	mu      sync.RWMutex
	epoch   uint64
	entries map[string]*listCacheEntry
}

// listCacheEntry is one rendered listing: the JSON body exactly as it
// was sent, plus the Fiware-Total-Count value (-1 when the request did
// not ask for options=count).
type listCacheEntry struct {
	body  []byte
	total int
}

// listCacheCap bounds the entry map. On overflow the map is reset
// wholesale instead of evicted piecewise: the cache is a hot-query
// accelerator for a small working set of repeated listings, not a
// store, and a distinct-query flood must not grow it unboundedly.
const listCacheCap = 512

func newListCache() *listCache {
	return &listCache{entries: make(map[string]*listCacheEntry)}
}

// get returns the entry for key if it was rendered at epoch; any entity
// mutation since (a different broker epoch) makes the whole cache stale.
func (c *listCache) get(key string, epoch uint64) *listCacheEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.epoch != epoch {
		return nil
	}
	return c.entries[key]
}

// put stores a body rendered from a query that STARTED at epoch (the
// caller must capture the epoch before running the query). The
// capture-before-read protocol makes a racing mutation harmless: the
// broker bumps its epoch after applying, so a fill whose scan observed
// the mutation is stored under the pre-mutation epoch and never
// validates — at worst a wasted fill, never a stale hit.
func (c *listCache) put(key string, epoch uint64, ent *listCacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		if c.epoch > epoch {
			return // a mutation landed while this body was rendered
		}
		c.epoch = epoch
		clear(c.entries)
	}
	if len(c.entries) >= listCacheCap {
		clear(c.entries)
	}
	c.entries[key] = ent
}
