// Package soil implements the agronomic core the SWAMP decision layer runs
// on: the FAO-56 reference evapotranspiration (Penman-Monteith), crop
// coefficient curves, and the daily root-zone water balance that converts
// weather + irrigation into soil moisture — the quantity every pilot's
// sensors report and every irrigation decision hinges on.
package soil

import (
	"fmt"
	"math"
)

// ET0Input collects the daily inputs for reference evapotranspiration.
type ET0Input struct {
	TminC       float64
	TmaxC       float64
	RHMeanPct   float64
	WindMS      float64 // at 2 m
	SolarMJ     float64 // measured shortwave, MJ/m²/day
	LatitudeDeg float64
	AltitudeM   float64
	DOY         int
}

// Validate reports the first implausible input.
func (in ET0Input) Validate() error {
	switch {
	case in.TmaxC < in.TminC:
		return fmt.Errorf("soil: Tmax %.1f < Tmin %.1f", in.TmaxC, in.TminC)
	case in.RHMeanPct < 0 || in.RHMeanPct > 100:
		return fmt.Errorf("soil: RH %.1f%% outside [0,100]", in.RHMeanPct)
	case in.WindMS < 0:
		return fmt.Errorf("soil: negative wind %.1f", in.WindMS)
	case in.SolarMJ < 0:
		return fmt.Errorf("soil: negative radiation %.1f", in.SolarMJ)
	case in.DOY < 1 || in.DOY > 366:
		return fmt.Errorf("soil: DOY %d outside [1,366]", in.DOY)
	}
	return nil
}

// ET0PenmanMonteith computes daily reference evapotranspiration (mm/day)
// with the FAO-56 Penman-Monteith equation (eq. 6), using the standard
// daily approximations: soil heat flux G≈0, net radiation from measured
// shortwave with albedo 0.23 and the FAO net-longwave formula.
func ET0PenmanMonteith(in ET0Input) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	tmean := (in.TmaxC + in.TminC) / 2

	// Psychrometric constant (eq. 8) from altitude-derived pressure (eq. 7).
	pressure := 101.3 * math.Pow((293-0.0065*in.AltitudeM)/293, 5.26)
	gamma := 0.000665 * pressure

	// Vapour pressures (eq. 11-12, 19).
	es := (satVP(in.TmaxC) + satVP(in.TminC)) / 2
	ea := es * in.RHMeanPct / 100

	// Slope of the saturation curve at Tmean (eq. 13).
	delta := 4098 * satVP(tmean) / math.Pow(tmean+237.3, 2)

	// Net shortwave (eq. 38).
	rns := (1 - 0.23) * in.SolarMJ

	// Net longwave (eq. 39) needs clear-sky radiation for the cloudiness
	// term; reuse the weather package's formula inline to avoid a cycle.
	rso := clearSky(in.LatitudeDeg, in.AltitudeM, in.DOY)
	relSW := 1.0
	if rso > 0 {
		relSW = math.Min(in.SolarMJ/rso, 1.0)
	}
	const sigma = 4.903e-9 // MJ K⁻⁴ m⁻² day⁻¹
	tkMax, tkMin := in.TmaxC+273.16, in.TminC+273.16
	rnl := sigma * (math.Pow(tkMax, 4) + math.Pow(tkMin, 4)) / 2 *
		(0.34 - 0.14*math.Sqrt(math.Max(ea, 0))) * (1.35*relSW - 0.35)

	rn := rns - rnl
	const g = 0.0 // daily soil heat flux

	num := 0.408*delta*(rn-g) + gamma*900/(tmean+273)*in.WindMS*(es-ea)
	den := delta + gamma*(1+0.34*in.WindMS)
	et0 := num / den
	if et0 < 0 {
		et0 = 0
	}
	return et0, nil
}

// satVP is saturation vapour pressure (kPa) at temperature t (°C), FAO-56
// eq. 11.
func satVP(t float64) float64 {
	return 0.6108 * math.Exp(17.27*t/(t+237.3))
}

// clearSky duplicates weather.ClearSkyRadiation to keep soil free of a
// dependency on the stochastic generator package.
func clearSky(latDeg, altitudeM float64, doy int) float64 {
	phi := latDeg * math.Pi / 180
	dr := 1 + 0.033*math.Cos(2*math.Pi/365*float64(doy))
	delta := 0.409 * math.Sin(2*math.Pi/365*float64(doy)-1.39)
	x := -math.Tan(phi) * math.Tan(delta)
	if x > 1 {
		x = 1
	} else if x < -1 {
		x = -1
	}
	ws := math.Acos(x)
	const gsc = 0.0820
	ra := 24 * 60 / math.Pi * gsc * dr *
		(ws*math.Sin(phi)*math.Sin(delta) + math.Cos(phi)*math.Cos(delta)*math.Sin(ws))
	return (0.75 + 2e-5*altitudeM) * ra
}
