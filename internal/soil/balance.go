package soil

import (
	"fmt"
	"math"
)

// Balance runs the FAO-56 daily root-zone water balance (eq. 85) for one
// homogeneous patch of soil under one crop. It is the physical truth the
// simulated soil probes sample and the irrigation controllers act on.
type Balance struct {
	crop    Crop
	profile Profile

	day        int     // 0-based day of season
	depletion  float64 // Dr, mm
	cumulative Totals
}

// Totals accumulates season-to-date fluxes (mm, except Stress in days).
type Totals struct {
	ET0        float64
	ETc        float64 // actual (stress-adjusted) crop ET
	Rain       float64
	Irrigation float64
	DeepPerc   float64 // drainage below the root zone
	StressDays float64 // days with Ks below 1 (fractional)
}

// NewBalance starts a season with the root zone at initialDepletionFrac of
// TAW depleted (0 = field capacity).
func NewBalance(crop Crop, profile Profile, initialDepletionFrac float64) (*Balance, error) {
	if err := crop.Validate(); err != nil {
		return nil, err
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if initialDepletionFrac < 0 || initialDepletionFrac > 1 {
		return nil, fmt.Errorf("soil: initial depletion fraction %g outside [0,1]", initialDepletionFrac)
	}
	b := &Balance{crop: crop, profile: profile}
	b.depletion = initialDepletionFrac * b.TAW()
	return b, nil
}

// TAW is total available water in the root zone (mm).
func (b *Balance) TAW() float64 { return b.profile.TAWmm(b.crop.RootDepthM) }

// RAW is readily available water (mm): the depletion threshold below which
// the crop feels no stress.
func (b *Balance) RAW() float64 { return b.crop.DepletionFraction * b.TAW() }

// Depletion returns current root-zone depletion Dr (mm).
func (b *Balance) Depletion() float64 { return b.depletion }

// Day returns the 0-based season day of the next Step call.
func (b *Balance) Day() int { return b.day }

// Crop returns the crop being grown.
func (b *Balance) Crop() Crop { return b.crop }

// Profile returns the soil profile.
func (b *Balance) Profile() Profile { return b.profile }

// Moisture returns the volumetric water content θ (m³/m³) implied by the
// current depletion — what a perfect soil-moisture probe would read.
func (b *Balance) Moisture() float64 {
	return b.profile.FieldCapacity - b.depletion/(1000*b.crop.RootDepthM)
}

// Ks returns the current water-stress coefficient (FAO-56 eq. 84):
// 1 when Dr ≤ RAW, falling linearly to 0 at full depletion.
func (b *Balance) Ks() float64 {
	raw := b.RAW()
	if b.depletion <= raw {
		return 1
	}
	taw := b.TAW()
	ks := (taw - b.depletion) / (taw - raw)
	return math.Max(0, ks)
}

// StepResult reports one day's fluxes.
type StepResult struct {
	Day       int
	ET0       float64
	Kc        float64
	Ks        float64
	ETc       float64 // stress-adjusted, mm
	RainMM    float64
	IrrigMM   float64
	DeepPerc  float64
	Depletion float64 // after the step
	Moisture  float64 // after the step
	Stressed  bool
}

// Step advances one day with reference ET et0 (mm), rain and irrigation
// (mm). It returns the day's fluxes.
func (b *Balance) Step(et0, rainMM, irrigMM float64) (StepResult, error) {
	if et0 < 0 || rainMM < 0 || irrigMM < 0 {
		return StepResult{}, fmt.Errorf("soil: negative flux (et0=%g rain=%g irrig=%g)", et0, rainMM, irrigMM)
	}
	kc := b.crop.Kc(b.day)
	ks := b.Ks()
	etc := kc * ks * et0

	// Water in reduces depletion; ET increases it. Excess beyond field
	// capacity drains as deep percolation.
	dr := b.depletion - rainMM - irrigMM + etc
	var dp float64
	if dr < 0 {
		dp = -dr
		dr = 0
	}
	taw := b.TAW()
	if dr > taw {
		// Cannot deplete more than TAW; ET is already Ks-limited, so this
		// only guards rounding.
		dr = taw
	}
	b.depletion = dr

	res := StepResult{
		Day: b.day, ET0: et0, Kc: kc, Ks: ks, ETc: etc,
		RainMM: rainMM, IrrigMM: irrigMM, DeepPerc: dp,
		Depletion: dr, Moisture: b.Moisture(), Stressed: ks < 1,
	}
	b.cumulative.ET0 += et0
	b.cumulative.ETc += etc
	b.cumulative.Rain += rainMM
	b.cumulative.Irrigation += irrigMM
	b.cumulative.DeepPerc += dp
	if ks < 1 {
		b.cumulative.StressDays += 1 - ks
	}
	b.day++
	return res, nil
}

// Totals returns season-to-date cumulative fluxes.
func (b *Balance) Totals() Totals { return b.cumulative }

// YieldIndex estimates relative yield (0..1) from accumulated stress using
// a linearized FAO-33 response: each fully stressed day in the season
// costs proportionally.
func (b *Balance) YieldIndex() float64 {
	season := float64(b.crop.SeasonDays())
	if season == 0 {
		return 0
	}
	loss := b.cumulative.StressDays / season
	return math.Max(0, 1-1.2*loss)
}
