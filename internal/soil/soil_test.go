package soil

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/swamp-project/swamp/internal/model"
)

// A standard FAO-ish summer day for Bologna.
func summerDay() ET0Input {
	return ET0Input{
		TminC: 16, TmaxC: 30, RHMeanPct: 60, WindMS: 2,
		SolarMJ: 25, LatitudeDeg: 44.6, AltitudeM: 30, DOY: 190,
	}
}

func TestET0PlausibleMagnitude(t *testing.T) {
	et0, err := ET0PenmanMonteith(summerDay())
	if err != nil {
		t.Fatal(err)
	}
	// Mid-summer reference ET in the Po valley is ~4-7 mm/day.
	if et0 < 3 || et0 > 8 {
		t.Errorf("summer ET0 = %.2f mm/day, want 3-8", et0)
	}

	winter := ET0Input{TminC: 0, TmaxC: 8, RHMeanPct: 80, WindMS: 1.5,
		SolarMJ: 5, LatitudeDeg: 44.6, AltitudeM: 30, DOY: 15}
	et0w, err := ET0PenmanMonteith(winter)
	if err != nil {
		t.Fatal(err)
	}
	if et0w >= et0 || et0w < 0 || et0w > 2 {
		t.Errorf("winter ET0 = %.2f, summer %.2f", et0w, et0)
	}
}

func TestET0Monotonicity(t *testing.T) {
	base, _ := ET0PenmanMonteith(summerDay())

	hot := summerDay()
	hot.TmaxC += 6
	hot.TminC += 6
	et0hot, _ := ET0PenmanMonteith(hot)
	if et0hot <= base {
		t.Errorf("hotter day should raise ET0: %.2f vs %.2f", et0hot, base)
	}

	humid := summerDay()
	humid.RHMeanPct = 95
	et0humid, _ := ET0PenmanMonteith(humid)
	if et0humid >= base {
		t.Errorf("humid day should lower ET0: %.2f vs %.2f", et0humid, base)
	}

	windy := summerDay()
	windy.WindMS = 6
	et0windy, _ := ET0PenmanMonteith(windy)
	if et0windy <= base {
		t.Errorf("windy day should raise ET0: %.2f vs %.2f", et0windy, base)
	}
}

func TestET0Validation(t *testing.T) {
	bad := summerDay()
	bad.TmaxC = bad.TminC - 1
	if _, err := ET0PenmanMonteith(bad); err == nil {
		t.Error("Tmax<Tmin accepted")
	}
	bad = summerDay()
	bad.RHMeanPct = 150
	if _, err := ET0PenmanMonteith(bad); err == nil {
		t.Error("RH 150% accepted")
	}
	bad = summerDay()
	bad.DOY = 0
	if _, err := ET0PenmanMonteith(bad); err == nil {
		t.Error("DOY 0 accepted")
	}
}

func TestKcCurveShape(t *testing.T) {
	c := CropSoybean
	if got := c.Kc(0); got != c.KcIni {
		t.Errorf("Kc(0) = %g", got)
	}
	if got := c.Kc(-5); got != c.KcIni {
		t.Errorf("Kc(-5) = %g", got)
	}
	midStart := c.StageDays[0] + c.StageDays[1]
	if got := c.Kc(midStart + 1); got != c.KcMid {
		t.Errorf("Kc(mid) = %g, want %g", got, c.KcMid)
	}
	// Development stage is monotonic rising.
	prev := c.Kc(c.StageDays[0])
	for d := c.StageDays[0] + 1; d < midStart; d++ {
		cur := c.Kc(d)
		if cur < prev {
			t.Fatalf("Kc not monotone in development at day %d", d)
		}
		prev = cur
	}
	// Past season end holds KcEnd.
	if got := c.Kc(c.SeasonDays() + 30); got != c.KcEnd {
		t.Errorf("Kc past season = %g", got)
	}
}

func TestCropAndProfileValidation(t *testing.T) {
	for _, c := range []Crop{CropSoybean, CropWineGrape, CropLettuce, CropMaizeSilage} {
		if err := c.Validate(); err != nil {
			t.Errorf("built-in crop %s invalid: %v", c.Name, err)
		}
	}
	bad := CropSoybean
	bad.DepletionFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("bad depletion fraction accepted")
	}
	for _, p := range []Profile{ProfileSand, ProfileSandyLoam, ProfileLoam, ProfileClayLoam, ProfileClay} {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %s invalid: %v", p.Name, err)
		}
	}
	badP := ProfileLoam
	badP.WiltingPoint = badP.FieldCapacity + 0.01
	if err := badP.Validate(); err == nil {
		t.Error("WP>FC accepted")
	}
}

func TestBalanceDryDown(t *testing.T) {
	b, err := NewBalance(CropSoybean, ProfileLoam, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Moisture() != ProfileLoam.FieldCapacity {
		t.Errorf("initial moisture %g != FC %g", b.Moisture(), ProfileLoam.FieldCapacity)
	}
	prev := b.Moisture()
	for i := 0; i < 55; i++ {
		if _, err := b.Step(6, 0, 0); err != nil {
			t.Fatal(err)
		}
		cur := b.Moisture()
		if cur > prev+1e-12 {
			t.Fatalf("moisture rose on a dry day (%g -> %g)", prev, cur)
		}
		prev = cur
	}
	if b.Depletion() <= b.RAW() {
		t.Error("55 dry 6mm days should pass the RAW threshold for loam/soybean")
	}
	if b.Ks() >= 1 {
		t.Error("stress coefficient should be < 1 past RAW")
	}
}

func TestBalanceIrrigationRefills(t *testing.T) {
	b, _ := NewBalance(CropSoybean, ProfileLoam, 0.5)
	d0 := b.Depletion()
	res, err := b.Step(0, 0, d0/2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Depletion()-d0/2) > 1e-9 {
		t.Errorf("depletion after irrigation = %g, want %g", b.Depletion(), d0/2)
	}
	if res.DeepPerc != 0 {
		t.Errorf("unexpected percolation %g", res.DeepPerc)
	}
	// Over-irrigation drains, never pushes moisture above FC.
	res, _ = b.Step(0, 0, 500)
	if res.DeepPerc <= 0 {
		t.Error("500mm should percolate")
	}
	if b.Moisture() > b.Profile().FieldCapacity+1e-12 {
		t.Error("moisture exceeded field capacity")
	}
}

func TestBalanceRejectsNegativeFlux(t *testing.T) {
	b, _ := NewBalance(CropSoybean, ProfileLoam, 0)
	if _, err := b.Step(-1, 0, 0); err == nil {
		t.Error("negative ET0 accepted")
	}
	if _, err := b.Step(1, -1, 0); err == nil {
		t.Error("negative rain accepted")
	}
}

// Property: mass balance — over any schedule, rain+irrigation-ETc-percolation
// equals the change in storage (i.e. -ΔDr), to rounding.
func TestWaterMassBalanceProperty(t *testing.T) {
	f := func(days []uint8) bool {
		b, err := NewBalance(CropSoybean, ProfileSandyLoam, 0.3)
		if err != nil {
			return false
		}
		d0 := b.Depletion()
		for i, raw := range days {
			et0 := float64(raw % 8)
			rain := float64((raw >> 3) % 4 * 5)
			var irr float64
			if i%4 == 0 {
				irr = float64(raw % 16)
			}
			if _, err := b.Step(et0, rain, irr); err != nil {
				return false
			}
		}
		tot := b.Totals()
		lhs := tot.Rain + tot.Irrigation - tot.ETc - tot.DeepPerc
		rhs := d0 - b.Depletion()
		return math.Abs(lhs-rhs) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: moisture always stays within [WP-ish floor, FC].
func TestMoistureBoundsProperty(t *testing.T) {
	f := func(days []uint8) bool {
		b, err := NewBalance(CropLettuce, ProfileSand, 0.2)
		if err != nil {
			return false
		}
		for _, raw := range days {
			if _, err := b.Step(float64(raw%9), float64(raw%3)*4, float64(raw%5)*3); err != nil {
				return false
			}
			m := b.Moisture()
			if m > ProfileSand.FieldCapacity+1e-9 || m < ProfileSand.WiltingPoint-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestYieldIndexResponds(t *testing.T) {
	wellWatered, _ := NewBalance(CropSoybean, ProfileLoam, 0)
	droughted, _ := NewBalance(CropSoybean, ProfileLoam, 0)
	for i := 0; i < CropSoybean.SeasonDays(); i++ {
		wellWatered.Step(5, 0, 6)
		droughted.Step(5, 0, 0)
	}
	if wellWatered.YieldIndex() < 0.95 {
		t.Errorf("well-watered yield %g", wellWatered.YieldIndex())
	}
	if droughted.YieldIndex() > 0.6 {
		t.Errorf("droughted yield %g too high", droughted.YieldIndex())
	}
}

func TestHeterogeneousField(t *testing.T) {
	grid, err := model.NewFieldGrid(model.GeoPoint{Lat: -12.15, Lon: -45}, 16, 16, 25)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewHeterogeneousField(grid, CropSoybean, ProfileSandyLoam, 0.25, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cells) != 256 {
		t.Fatalf("cells = %d", len(f.Cells))
	}
	// Cells should differ (heterogeneity) but stay plausible.
	fcs := map[float64]bool{}
	for _, c := range f.Cells {
		p := c.Profile()
		if err := p.Validate(); err != nil {
			t.Fatalf("cell profile invalid: %v", err)
		}
		fcs[math.Round(p.FieldCapacity*1e6)] = true
	}
	if len(fcs) < 50 {
		t.Errorf("field too homogeneous: %d distinct FCs", len(fcs))
	}

	// Spatial correlation: adjacent cells closer than distant ones on average.
	adjDiff, farDiff := 0.0, 0.0
	n := 0
	for r := 0; r < grid.Rows-1; r++ {
		for c := 0; c < grid.Cols-8; c++ {
			a := f.Cells[grid.CellIndex(r, c)].Profile().FieldCapacity
			b := f.Cells[grid.CellIndex(r, c+1)].Profile().FieldCapacity
			d := f.Cells[grid.CellIndex(r, c+8)].Profile().FieldCapacity
			adjDiff += math.Abs(a - b)
			farDiff += math.Abs(a - d)
			n++
		}
	}
	if adjDiff/float64(n) >= farDiff/float64(n) {
		t.Error("no spatial correlation: adjacent cells differ as much as distant ones")
	}

	// Step the whole field and check vector length handling.
	if _, err := f.StepAll(5, 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.StepAll(5, 0, make([]float64, 3)); err == nil {
		t.Error("wrong irrigation vector length accepted")
	}
	irr := make([]float64, len(f.Cells))
	for i := range irr {
		irr[i] = 5
	}
	if _, err := f.StepAll(5, 0, irr); err != nil {
		t.Fatal(err)
	}
	mean, min, max := f.MoistureStats()
	if min > mean || mean > max {
		t.Errorf("stats inconsistent: %g %g %g", min, mean, max)
	}
	if got := f.FieldTotals(); got.Irrigation <= 0 || got.ETc <= 0 {
		t.Errorf("field totals %+v", got)
	}
	if len(f.MoistureMap()) != 256 || len(f.DepletionMap()) != 256 {
		t.Error("map lengths wrong")
	}
	if y := f.MeanYieldIndex(); y <= 0 || y > 1 {
		t.Errorf("yield index %g", y)
	}
}

func TestFieldVariabilityValidation(t *testing.T) {
	grid, _ := model.NewFieldGrid(model.GeoPoint{}, 4, 4, 10)
	if _, err := NewHeterogeneousField(grid, CropSoybean, ProfileLoam, 0.9, 1); err == nil {
		t.Error("variability 0.9 accepted")
	}
	badProfile := Profile{Name: "bad", FieldCapacity: 0.7, WiltingPoint: 0.1}
	if _, err := NewHeterogeneousField(grid, CropSoybean, badProfile, 0.2, 1); err == nil {
		t.Error("invalid base profile accepted")
	}
}
