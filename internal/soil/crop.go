package soil

import "fmt"

// Crop describes a crop's FAO-56 parameters: the four-stage Kc curve, root
// depth and the depletion fraction p (how much of the available water may
// be used before stress sets in).
type Crop struct {
	Name string
	// Stage lengths in days: initial, development, mid-season, late.
	StageDays [4]int
	// KcIni, KcMid, KcEnd anchor the crop coefficient curve; development
	// and late stages interpolate linearly.
	KcIni, KcMid, KcEnd float64
	// RootDepthM is the effective rooting depth Zr.
	RootDepthM float64
	// DepletionFraction is p: the readily-available fraction of TAW.
	DepletionFraction float64
}

// Validate reports the first implausible parameter.
func (c Crop) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("soil: unnamed crop")
	case c.SeasonDays() <= 0:
		return fmt.Errorf("soil: crop %s: empty season", c.Name)
	case c.RootDepthM <= 0:
		return fmt.Errorf("soil: crop %s: non-positive root depth", c.Name)
	case c.DepletionFraction <= 0 || c.DepletionFraction >= 1:
		return fmt.Errorf("soil: crop %s: depletion fraction %g outside (0,1)", c.Name, c.DepletionFraction)
	case c.KcIni <= 0 || c.KcMid <= 0 || c.KcEnd <= 0:
		return fmt.Errorf("soil: crop %s: non-positive Kc", c.Name)
	}
	return nil
}

// SeasonDays is the total season length.
func (c Crop) SeasonDays() int {
	return c.StageDays[0] + c.StageDays[1] + c.StageDays[2] + c.StageDays[3]
}

// Kc returns the crop coefficient on day (0-based) of the season, following
// the FAO-56 piecewise curve. Days past the season hold KcEnd.
func (c Crop) Kc(day int) float64 {
	if day < 0 {
		return c.KcIni
	}
	d := day
	if d < c.StageDays[0] {
		return c.KcIni
	}
	d -= c.StageDays[0]
	if d < c.StageDays[1] {
		f := float64(d) / float64(c.StageDays[1])
		return c.KcIni + f*(c.KcMid-c.KcIni)
	}
	d -= c.StageDays[1]
	if d < c.StageDays[2] {
		return c.KcMid
	}
	d -= c.StageDays[2]
	if d < c.StageDays[3] {
		f := float64(d) / float64(c.StageDays[3])
		return c.KcMid + f*(c.KcEnd-c.KcMid)
	}
	return c.KcEnd
}

// Crops grown in the SWAMP pilots (FAO-56 table 11/12/17/22 values).
var (
	// CropSoybean: the MATOPIBA pilot's crop under the VRI pivots.
	CropSoybean = Crop{
		Name:      "soybean",
		StageDays: [4]int{20, 30, 50, 20},
		KcIni:     0.4, KcMid: 1.15, KcEnd: 0.5,
		RootDepthM: 1.0, DepletionFraction: 0.5,
	}
	// CropWineGrape: the Guaspari pilot's crop (winter harvest window).
	CropWineGrape = Crop{
		Name:      "wine-grape",
		StageDays: [4]int{30, 50, 60, 40},
		KcIni:     0.3, KcMid: 0.7, KcEnd: 0.45,
		RootDepthM: 1.2, DepletionFraction: 0.45,
	}
	// CropLettuce: representative of the Intercrop vegetable rotation.
	CropLettuce = Crop{
		Name:      "lettuce",
		StageDays: [4]int{20, 30, 15, 10},
		KcIni:     0.7, KcMid: 1.0, KcEnd: 0.95,
		RootDepthM: 0.4, DepletionFraction: 0.3,
	}
	// CropMaizeSilage: grown in the CBEC district.
	CropMaizeSilage = Crop{
		Name:      "maize-silage",
		StageDays: [4]int{20, 35, 40, 30},
		KcIni:     0.3, KcMid: 1.20, KcEnd: 0.6,
		RootDepthM: 1.2, DepletionFraction: 0.55,
	}
)

// Profile captures a soil's water-holding characteristics.
type Profile struct {
	Name string
	// FieldCapacity and WiltingPoint are volumetric water contents, m³/m³.
	FieldCapacity float64
	WiltingPoint  float64
}

// Validate reports the first implausible parameter.
func (p Profile) Validate() error {
	switch {
	case p.FieldCapacity <= 0 || p.FieldCapacity >= 0.6:
		return fmt.Errorf("soil: profile %s: field capacity %g implausible", p.Name, p.FieldCapacity)
	case p.WiltingPoint <= 0 || p.WiltingPoint >= p.FieldCapacity:
		return fmt.Errorf("soil: profile %s: wilting point %g outside (0, FC)", p.Name, p.WiltingPoint)
	}
	return nil
}

// TAWmm is total available water (mm) for root depth zr (m), FAO-56 eq. 82.
func (p Profile) TAWmm(zr float64) float64 {
	return 1000 * (p.FieldCapacity - p.WiltingPoint) * zr
}

// Soil profiles spanning the pilots' textures.
var (
	ProfileSand      = Profile{Name: "sand", FieldCapacity: 0.12, WiltingPoint: 0.04}
	ProfileSandyLoam = Profile{Name: "sandy-loam", FieldCapacity: 0.20, WiltingPoint: 0.09}
	ProfileLoam      = Profile{Name: "loam", FieldCapacity: 0.27, WiltingPoint: 0.12}
	ProfileClayLoam  = Profile{Name: "clay-loam", FieldCapacity: 0.33, WiltingPoint: 0.19}
	ProfileClay      = Profile{Name: "clay", FieldCapacity: 0.38, WiltingPoint: 0.24}
)
