package soil

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/swamp-project/swamp/internal/model"
)

// Field is a spatially heterogeneous field: one water balance per grid
// cell, with soil properties that vary smoothly across space. That spatial
// variability is exactly why Variable Rate Irrigation out-performs uniform
// pivots (the MATOPIBA pilot's premise).
type Field struct {
	Grid  model.FieldGrid
	Cells []*Balance
}

// NewHeterogeneousField builds a field growing crop on soils derived from
// base, with field capacity and wilting point perturbed by a smooth random
// field of relative amplitude variability (e.g. 0.25 = ±25%).
func NewHeterogeneousField(grid model.FieldGrid, crop Crop, base Profile, variability float64, seed int64) (*Field, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if variability < 0 || variability > 0.6 {
		return nil, fmt.Errorf("soil: variability %g outside [0, 0.6]", variability)
	}
	noise := smoothNoise(grid.Rows, grid.Cols, 4, seed)
	f := &Field{Grid: grid, Cells: make([]*Balance, grid.NumCells())}
	for r := 0; r < grid.Rows; r++ {
		for c := 0; c < grid.Cols; c++ {
			idx := grid.CellIndex(r, c)
			scale := 1 + variability*noise[idx]
			p := Profile{
				Name:          fmt.Sprintf("%s-cell%d", base.Name, idx),
				FieldCapacity: base.FieldCapacity * scale,
				WiltingPoint:  base.WiltingPoint * scale,
			}
			b, err := NewBalance(crop, p, 0)
			if err != nil {
				return nil, fmt.Errorf("soil: cell %d: %w", idx, err)
			}
			f.Cells[idx] = b
		}
	}
	return f, nil
}

// smoothNoise returns a per-cell field in [-1, 1], generated on a coarse
// lattice (one knot per blockSize cells) and bilinearly interpolated so
// neighbouring cells correlate — like real soil texture maps.
func smoothNoise(rows, cols, blockSize int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	kr := rows/blockSize + 2
	kc := cols/blockSize + 2
	knots := make([]float64, kr*kc)
	for i := range knots {
		knots[i] = rng.Float64()*2 - 1
	}
	knot := func(r, c int) float64 { return knots[r*kc+c] }

	out := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			fr := float64(r) / float64(blockSize)
			fc := float64(c) / float64(blockSize)
			r0, c0 := int(fr), int(fc)
			tr, tc := fr-float64(r0), fc-float64(c0)
			v := knot(r0, c0)*(1-tr)*(1-tc) +
				knot(r0+1, c0)*tr*(1-tc) +
				knot(r0, c0+1)*(1-tr)*tc +
				knot(r0+1, c0+1)*tr*tc
			out[r*cols+c] = v
		}
	}
	return out
}

// StepAll advances every cell one day. irrig gives per-cell irrigation
// depth (mm); pass nil for a dry day. It returns the per-cell results.
func (f *Field) StepAll(et0, rainMM float64, irrig []float64) ([]StepResult, error) {
	if irrig != nil && len(irrig) != len(f.Cells) {
		return nil, fmt.Errorf("soil: irrigation vector length %d != %d cells", len(irrig), len(f.Cells))
	}
	out := make([]StepResult, len(f.Cells))
	for i, cell := range f.Cells {
		var im float64
		if irrig != nil {
			im = irrig[i]
		}
		res, err := cell.Step(et0, rainMM, im)
		if err != nil {
			return nil, fmt.Errorf("soil: cell %d: %w", i, err)
		}
		out[i] = res
	}
	return out, nil
}

// MoistureMap returns the current per-cell volumetric moisture.
func (f *Field) MoistureMap() []float64 {
	out := make([]float64, len(f.Cells))
	for i, c := range f.Cells {
		out[i] = c.Moisture()
	}
	return out
}

// DepletionMap returns current per-cell depletion (mm).
func (f *Field) DepletionMap() []float64 {
	out := make([]float64, len(f.Cells))
	for i, c := range f.Cells {
		out[i] = c.Depletion()
	}
	return out
}

// FieldTotals aggregates cell totals (mean per-cell mm).
func (f *Field) FieldTotals() Totals {
	var agg Totals
	n := float64(len(f.Cells))
	for _, c := range f.Cells {
		t := c.Totals()
		agg.ET0 += t.ET0 / n
		agg.ETc += t.ETc / n
		agg.Rain += t.Rain / n
		agg.Irrigation += t.Irrigation / n
		agg.DeepPerc += t.DeepPerc / n
		agg.StressDays += t.StressDays / n
	}
	return agg
}

// MeanYieldIndex averages the per-cell yield index.
func (f *Field) MeanYieldIndex() float64 {
	sum := 0.0
	for _, c := range f.Cells {
		sum += c.YieldIndex()
	}
	return sum / float64(len(f.Cells))
}

// MoistureStats summarises the spatial moisture distribution.
func (f *Field) MoistureStats() (mean, min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, c := range f.Cells {
		m := c.Moisture()
		mean += m
		min = math.Min(min, m)
		max = math.Max(max, m)
	}
	mean /= float64(len(f.Cells))
	return mean, min, max
}
