// Package simnet simulates the constrained rural network links the SWAMP
// paper calls out ("communication constraints in rural areas"): latency,
// jitter, random frame loss, limited bandwidth and hard partitions
// (Internet disconnection at the farm, §III availability requirement).
//
// A Link is a unidirectional, message-oriented channel. The MQTT layer
// treats one frame per MQTT packet, so frame loss maps exactly onto the
// QoS semantics the platform relies on: QoS 0 publishes die with the frame,
// QoS 1 publishes are retransmitted.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("simnet: link closed")

// Config describes a link's impairments. The zero value is a perfect link.
type Config struct {
	Latency   time.Duration // one-way propagation delay
	Jitter    time.Duration // uniform extra delay in [0, Jitter)
	LossProb  float64       // per-frame loss probability in [0, 1)
	Bandwidth int           // bytes/second; 0 means unlimited
	QueueLen  int           // frames buffered in flight; 0 means 1024
	Seed      int64         // RNG seed; 0 means 1
}

func (c Config) validate() error {
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("simnet: loss probability %g outside [0,1)", c.LossProb)
	}
	if c.Latency < 0 || c.Jitter < 0 || c.Bandwidth < 0 {
		return fmt.Errorf("simnet: negative impairment in %+v", c)
	}
	return nil
}

// Stats counts frames over the life of a link.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Lost      uint64 // random loss
	Cut       uint64 // dropped because partitioned
	Overflow  uint64 // dropped because the in-flight queue was full
}

// Link is a unidirectional impaired message channel. Construct with
// NewLink. Safe for concurrent use.
type Link struct {
	cfg Config

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned bool
	closed      bool
	stats       Stats

	in   chan frame
	out  chan []byte
	done chan struct{}
}

type frame struct {
	payload   []byte
	deliverAt time.Time
}

// NewLink builds a link and starts its delivery pump. Close must be called
// to release the pump goroutine.
func NewLink(cfg Config) (*Link, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	l := &Link{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
		in:   make(chan frame, cfg.QueueLen),
		out:  make(chan []byte, cfg.QueueLen),
		done: make(chan struct{}),
	}
	go l.pump()
	return l, nil
}

// pump delivers frames in FIFO order, honouring each frame's deliverAt.
func (l *Link) pump() {
	for {
		select {
		case <-l.done:
			return
		case f, ok := <-l.in:
			if !ok {
				return
			}
			if wait := time.Until(f.deliverAt); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-l.done:
					t.Stop()
					return
				}
			}
			select {
			case l.out <- f.payload:
				l.mu.Lock()
				l.stats.Delivered++
				l.mu.Unlock()
			case <-l.done:
				return
			}
		}
	}
}

// Send enqueues one frame. The payload is copied. Frames may be silently
// lost per the configured loss probability or an active partition — that is
// the point of the simulation; Send only returns an error once the link is
// closed.
func (l *Link) Send(payload []byte) error { return l.send(payload, false) }

// SendOwned enqueues one frame without copying: ownership of payload
// transfers to the link (and ultimately to the receiver), so the caller must
// not reuse the slice afterwards. This is the zero-copy path for pooled
// encode buffers.
func (l *Link) SendOwned(payload []byte) error { return l.send(payload, true) }

func (l *Link) send(payload []byte, owned bool) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.stats.Sent++
	if l.partitioned {
		l.stats.Cut++
		l.mu.Unlock()
		return nil
	}
	if l.cfg.LossProb > 0 && l.rng.Float64() < l.cfg.LossProb {
		l.stats.Lost++
		l.mu.Unlock()
		return nil
	}
	delay := l.cfg.Latency
	if l.cfg.Jitter > 0 {
		delay += time.Duration(l.rng.Int63n(int64(l.cfg.Jitter)))
	}
	if l.cfg.Bandwidth > 0 {
		delay += time.Duration(float64(len(payload)) / float64(l.cfg.Bandwidth) * float64(time.Second))
	}
	l.mu.Unlock()

	cp := payload
	if !owned {
		cp = make([]byte, len(payload))
		copy(cp, payload)
	}
	f := frame{payload: cp, deliverAt: time.Now().Add(delay)}
	select {
	case l.in <- f:
	default:
		l.mu.Lock()
		l.stats.Overflow++
		l.mu.Unlock()
	}
	return nil
}

// Recv returns the delivery channel. It is closed only when the link is
// closed AND drained is impossible; consumers should also watch their own
// shutdown signal.
func (l *Link) Recv() <-chan []byte { return l.out }

// SetPartitioned cuts (true) or heals (false) the link. While cut, frames
// are counted and discarded — exactly what a down backhaul does.
func (l *Link) SetPartitioned(p bool) {
	l.mu.Lock()
	l.partitioned = p
	l.mu.Unlock()
}

// Partitioned reports whether the link is currently cut.
func (l *Link) Partitioned() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.partitioned
}

// Stats returns a snapshot of the counters.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close stops the pump. Subsequent Sends fail with ErrClosed.
func (l *Link) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
}

// Duplex is a bidirectional link: a pair of endpoints connected by two
// independent unidirectional Links sharing a Config.
type Duplex struct {
	a2b, b2a *Link
	A, B     *Endpoint
}

// Endpoint is one side of a Duplex.
type Endpoint struct {
	send *Link
	recv *Link
}

// Send transmits toward the peer endpoint.
func (e *Endpoint) Send(payload []byte) error { return e.send.Send(payload) }

// SendOwned transmits toward the peer without copying; the slice becomes the
// link's (see Link.SendOwned).
func (e *Endpoint) SendOwned(payload []byte) error { return e.send.SendOwned(payload) }

// Recv returns the channel of frames arriving from the peer.
func (e *Endpoint) Recv() <-chan []byte { return e.recv.Recv() }

// NewDuplex builds a bidirectional impaired channel. Both directions use
// cfg; the reverse direction's RNG is derived from Seed+1 so loss patterns
// differ.
func NewDuplex(cfg Config) (*Duplex, error) {
	a2b, err := NewLink(cfg)
	if err != nil {
		return nil, err
	}
	rev := cfg
	if rev.Seed == 0 {
		rev.Seed = 1
	}
	rev.Seed++
	b2a, err := NewLink(rev)
	if err != nil {
		a2b.Close()
		return nil, err
	}
	d := &Duplex{a2b: a2b, b2a: b2a}
	d.A = &Endpoint{send: a2b, recv: b2a}
	d.B = &Endpoint{send: b2a, recv: a2b}
	return d, nil
}

// SetPartitioned cuts or heals both directions.
func (d *Duplex) SetPartitioned(p bool) {
	d.a2b.SetPartitioned(p)
	d.b2a.SetPartitioned(p)
}

// Stats returns (A→B, B→A) stats.
func (d *Duplex) Stats() (Stats, Stats) { return d.a2b.Stats(), d.b2a.Stats() }

// Close releases both directions.
func (d *Duplex) Close() {
	d.a2b.Close()
	d.b2a.Close()
}
