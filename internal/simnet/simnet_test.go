package simnet

import (
	"testing"
	"time"
)

func recvOne(t *testing.T, l *Link, timeout time.Duration) []byte {
	t.Helper()
	select {
	case b := <-l.Recv():
		return b
	case <-time.After(timeout):
		t.Fatal("no frame within timeout")
		return nil
	}
}

func TestPerfectLinkDelivers(t *testing.T) {
	l, err := NewLink(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := string(recvOne(t, l, time.Second)); got != "hello" {
		t.Errorf("got %q", got)
	}
	st := l.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Lost != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLinkCopiesPayload(t *testing.T) {
	l, err := NewLink(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	buf := []byte("abc")
	l.Send(buf)
	buf[0] = 'X' // mutate after send
	if got := string(recvOne(t, l, time.Second)); got != "abc" {
		t.Errorf("payload aliased: got %q", got)
	}
}

func TestLinkLatency(t *testing.T) {
	l, err := NewLink(Config{Latency: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	start := time.Now()
	l.Send([]byte("x"))
	recvOne(t, l, time.Second)
	if el := time.Since(start); el < 45*time.Millisecond {
		t.Errorf("delivered after %v, want >=50ms", el)
	}
}

func TestLinkLossStatistical(t *testing.T) {
	l, err := NewLink(Config{LossProb: 0.5, Seed: 42, QueueLen: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 1000
	for i := 0; i < n; i++ {
		l.Send([]byte{byte(i)})
	}
	time.Sleep(50 * time.Millisecond)
	st := l.Stats()
	if st.Lost < 400 || st.Lost > 600 {
		t.Errorf("lost %d of %d at p=0.5; outside [400,600]", st.Lost, n)
	}
	if st.Sent != n {
		t.Errorf("sent = %d", st.Sent)
	}
}

func TestLinkPartition(t *testing.T) {
	l, err := NewLink(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetPartitioned(true)
	if !l.Partitioned() {
		t.Error("Partitioned() = false")
	}
	l.Send([]byte("dropped"))
	time.Sleep(10 * time.Millisecond)
	select {
	case <-l.Recv():
		t.Fatal("frame crossed a partition")
	default:
	}
	if st := l.Stats(); st.Cut != 1 {
		t.Errorf("cut = %d", st.Cut)
	}
	// Heal and verify delivery resumes.
	l.SetPartitioned(false)
	l.Send([]byte("ok"))
	if got := string(recvOne(t, l, time.Second)); got != "ok" {
		t.Errorf("after heal got %q", got)
	}
}

func TestLinkClose(t *testing.T) {
	l, err := NewLink(Config{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	l.Close() // idempotent
	if err := l.Send([]byte("x")); err != ErrClosed {
		t.Errorf("Send after close = %v, want ErrClosed", err)
	}
}

func TestLinkFIFOOrder(t *testing.T) {
	l, err := NewLink(Config{Latency: time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 9, QueueLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 100
	for i := 0; i < n; i++ {
		l.Send([]byte{byte(i)})
	}
	for i := 0; i < n; i++ {
		b := recvOne(t, l, time.Second)
		if b[0] != byte(i) {
			t.Fatalf("frame %d arrived out of order (got %d)", i, b[0])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewLink(Config{LossProb: 1.0}); err == nil {
		t.Error("loss=1.0 accepted")
	}
	if _, err := NewLink(Config{LossProb: -0.1}); err == nil {
		t.Error("negative loss accepted")
	}
	if _, err := NewLink(Config{Latency: -time.Second}); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestDuplexBothDirections(t *testing.T) {
	d, err := NewDuplex(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.A.Send([]byte("a->b")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-d.B.Recv():
		if string(got) != "a->b" {
			t.Errorf("B got %q", got)
		}
	case <-time.After(time.Second):
		t.Fatal("B received nothing")
	}
	if err := d.B.Send([]byte("b->a")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-d.A.Recv():
		if string(got) != "b->a" {
			t.Errorf("A got %q", got)
		}
	case <-time.After(time.Second):
		t.Fatal("A received nothing")
	}
}

func TestDuplexPartitionCutsBoth(t *testing.T) {
	d, err := NewDuplex(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.SetPartitioned(true)
	d.A.Send([]byte("x"))
	d.B.Send([]byte("y"))
	time.Sleep(10 * time.Millisecond)
	a2b, b2a := d.Stats()
	if a2b.Cut != 1 || b2a.Cut != 1 {
		t.Errorf("cut counts = %d, %d", a2b.Cut, b2a.Cut)
	}
}

func TestBandwidthDelay(t *testing.T) {
	// 1000 B/s: a 100-byte frame takes ~100ms serialization.
	l, err := NewLink(Config{Bandwidth: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	start := time.Now()
	l.Send(make([]byte, 100))
	recvOne(t, l, time.Second)
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Errorf("100B at 1000B/s delivered in %v, want ~100ms", el)
	}
}
