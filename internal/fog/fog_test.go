package fog

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/model"
)

var t0 = time.Date(2026, 6, 1, 6, 0, 0, 0, time.UTC)

// fakeUplink is a controllable cloud endpoint.
type fakeUplink struct {
	mu      sync.Mutex
	down    bool
	batches [][]model.Reading
}

func (u *fakeUplink) forward(b []model.Reading) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.down {
		return errors.New("backhaul down")
	}
	u.batches = append(u.batches, b)
	return nil
}

func (u *fakeUplink) setDown(d bool) {
	u.mu.Lock()
	u.down = d
	u.mu.Unlock()
}

func (u *fakeUplink) received() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	n := 0
	for _, b := range u.batches {
		n += len(b)
	}
	return n
}

func reading(dev string, v float64, at time.Time) model.Reading {
	return model.Reading{Device: model.DeviceID(dev), Quantity: model.QSoilMoisture, Value: v, At: at}
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Error("missing uplink accepted")
	}
	u := &fakeUplink{}
	if _, err := NewNode(Config{Uplink: u.forward, Decide: func(map[string]model.Reading, time.Time) []model.Command { return nil }}); err == nil {
		t.Error("decide without command sink accepted")
	}
}

func TestIngestForwardsWhenOnline(t *testing.T) {
	u := &fakeUplink{}
	n, err := NewNode(Config{Uplink: u.forward})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := n.Ingest([]model.Reading{reading("p1", 0.2, t0.Add(time.Duration(i)*time.Minute))}); err != nil {
			t.Fatal(err)
		}
	}
	if u.received() != 5 {
		t.Errorf("cloud received %d readings", u.received())
	}
	st := n.Stats()
	if st.Ingested != 5 || st.Forwarded != 5 || st.Buffered != 0 {
		t.Errorf("stats = %+v", st)
	}
	if !n.Online() {
		t.Error("node thinks it is offline")
	}
}

func TestIngestValidates(t *testing.T) {
	u := &fakeUplink{}
	n, _ := NewNode(Config{Uplink: u.forward})
	// An all-invalid batch is not an error (it must not look like a
	// transport failure) — it is skipped and counted, like cloud.Ingestor.
	if err := n.Ingest([]model.Reading{{}}); err != nil {
		t.Errorf("all-invalid batch returned error: %v", err)
	}
	if got := n.Metrics().Counter("fog.ingest.invalid").Value(); got != 1 {
		t.Errorf("fog.ingest.invalid = %d, want 1", got)
	}
	if u.received() != 0 {
		t.Errorf("invalid readings forwarded: %d", u.received())
	}
	if err := n.Ingest(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestIngestPoisonedBatchKeepsValidReadings: one invalid reading must not
// discard its valid batchmates — they are ingested, forwarded and visible
// in the latest view, while the poisoned reading is skipped and counted.
func TestIngestPoisonedBatchKeepsValidReadings(t *testing.T) {
	u := &fakeUplink{}
	n, _ := NewNode(Config{Uplink: u.forward})
	batch := []model.Reading{
		reading("p1", 0.21, t0),
		{}, // poisoned: fails Validate
		reading("p2", 0.27, t0),
	}
	if err := n.Ingest(batch); err != nil {
		t.Fatalf("poisoned batch rejected outright: %v", err)
	}
	if u.received() != 2 {
		t.Errorf("cloud received %d readings, want the 2 valid ones", u.received())
	}
	if got := n.Metrics().Counter("fog.ingest.invalid").Value(); got != 1 {
		t.Errorf("fog.ingest.invalid = %d, want 1", got)
	}
	if st := n.Stats(); st.Ingested != 2 {
		t.Errorf("stats.Ingested = %d, want 2", st.Ingested)
	}
	if len(n.Latest()) != 2 {
		t.Errorf("latest view has %d series, want 2", len(n.Latest()))
	}
}

func TestPartitionBuffersThenSyncs(t *testing.T) {
	u := &fakeUplink{}
	n, _ := NewNode(Config{Uplink: u.forward})

	u.setDown(true)
	for i := 0; i < 10; i++ {
		n.Ingest([]model.Reading{reading("p1", 0.2, t0.Add(time.Duration(i)*time.Minute))})
	}
	if u.received() != 0 {
		t.Fatalf("readings crossed a partition: %d", u.received())
	}
	if n.Online() {
		t.Error("node did not notice the partition")
	}
	st := n.Stats()
	if st.Buffered != 10 {
		t.Errorf("buffered = %d, want 10", st.Buffered)
	}

	// Heal: everything syncs, in order.
	u.setDown(false)
	if sent := n.Flush(); sent != 10 {
		t.Errorf("flush forwarded %d batches", sent)
	}
	if u.received() != 10 {
		t.Errorf("cloud received %d after heal", u.received())
	}
	if !n.Online() {
		t.Error("node still offline after successful flush")
	}
	// Order preserved.
	u.mu.Lock()
	defer u.mu.Unlock()
	for i, b := range u.batches {
		if !b[0].At.Equal(t0.Add(time.Duration(i) * time.Minute)) {
			t.Fatalf("batch %d out of order", i)
		}
	}
}

func TestQueueBoundDropsOldest(t *testing.T) {
	u := &fakeUplink{}
	n, _ := NewNode(Config{Uplink: u.forward, QueueCap: 5})
	u.setDown(true)
	for i := 0; i < 12; i++ {
		n.Ingest([]model.Reading{reading("p1", float64(i), t0.Add(time.Duration(i)*time.Minute))})
	}
	st := n.Stats()
	if st.Buffered != 5 || st.Dropped != 7 {
		t.Errorf("stats = %+v", st)
	}
	u.setDown(false)
	n.Flush()
	// The 5 newest batches survived.
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.batches) != 5 || u.batches[0][0].Value != 7 {
		t.Errorf("synced batches start at %g", u.batches[0][0].Value)
	}
}

func TestLatestViewKeepsFreshest(t *testing.T) {
	u := &fakeUplink{}
	n, _ := NewNode(Config{Uplink: u.forward})
	n.Ingest([]model.Reading{reading("p1", 0.30, t0.Add(time.Hour))})
	n.Ingest([]model.Reading{reading("p1", 0.10, t0)}) // stale arrival
	latest := n.Latest()
	if len(latest) != 1 {
		t.Fatalf("latest has %d series", len(latest))
	}
	for _, r := range latest {
		if r.Value != 0.30 {
			t.Errorf("stale reading overwrote fresh one: %g", r.Value)
		}
	}
	// Depth-distinct series are separate keys.
	deep := reading("p1", 0.5, t0)
	deep.Depth = 0.5
	n.Ingest([]model.Reading{deep})
	if len(n.Latest()) != 2 {
		t.Errorf("depth series collapsed: %d keys", len(n.Latest()))
	}
}

// The availability headline: decisions keep flowing during a partition.
func TestDecisionsContinueOffline(t *testing.T) {
	u := &fakeUplink{}
	var mu sync.Mutex
	var applied []model.Command
	decide := func(latest map[string]model.Reading, at time.Time) []model.Command {
		for _, r := range latest {
			if r.Value < 0.15 { // dry → irrigate
				return []model.Command{{Target: "valve-1", Name: "open", Value: 1, Issuer: "fog", At: at}}
			}
		}
		return nil
	}
	sink := func(c model.Command) error {
		mu.Lock()
		applied = append(applied, c)
		mu.Unlock()
		return nil
	}
	n, err := NewNode(Config{Uplink: u.forward, Decide: decide, Commands: sink})
	if err != nil {
		t.Fatal(err)
	}

	u.setDown(true) // Internet is gone.
	n.Ingest([]model.Reading{reading("p1", 0.10, t0)})
	cmds, err := n.RunDecision(t0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 || cmds[0].Target != "valve-1" {
		t.Fatalf("offline decision = %+v", cmds)
	}
	mu.Lock()
	if len(applied) != 1 {
		t.Errorf("commands applied = %d", len(applied))
	}
	mu.Unlock()
	if st := n.Stats(); st.Decisions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestFlushCoalescesBatches: with MaxBatchesPerTrip set, a backlog syncs
// in bulk — far fewer backhaul round trips — while preserving order and
// reading counts.
func TestFlushCoalescesBatches(t *testing.T) {
	u := &fakeUplink{}
	n, err := NewNode(Config{Uplink: u.forward, MaxBatchesPerTrip: 4})
	if err != nil {
		t.Fatal(err)
	}
	u.setDown(true)
	for i := 0; i < 10; i++ {
		n.Ingest([]model.Reading{reading("p1", float64(i), t0.Add(time.Duration(i)*time.Minute))})
	}
	u.setDown(false)
	if sent := n.Flush(); sent != 10 {
		t.Errorf("flush forwarded %d batches, want 10", sent)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	// 10 batches in trips of ≤4 → 3 uplink calls.
	if len(u.batches) != 3 {
		t.Fatalf("uplink trips = %d, want 3", len(u.batches))
	}
	total := 0
	last := -1.0
	for _, b := range u.batches {
		total += len(b)
		for _, r := range b {
			if r.Value <= last {
				t.Fatal("coalesced sync out of order")
			}
			last = r.Value
		}
	}
	if total != 10 {
		t.Errorf("cloud received %d readings, want 10", total)
	}
	if st := n.Stats(); st.Forwarded != 10 || st.Buffered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestFlushFailureRequeuesHead: a mid-drain partition pushes the in-flight
// batches back so nothing is lost once the backhaul heals.
func TestFlushFailureRequeuesHead(t *testing.T) {
	u := &fakeUplink{}
	n, _ := NewNode(Config{Uplink: u.forward, MaxBatchesPerTrip: 4})
	u.setDown(true)
	for i := 0; i < 6; i++ {
		n.Ingest([]model.Reading{reading("p1", float64(i), t0.Add(time.Duration(i)*time.Minute))})
	}
	if st := n.Stats(); st.Buffered != 6 {
		t.Fatalf("buffered = %d", st.Buffered)
	}
	u.setDown(false)
	n.Flush()
	if u.received() != 6 {
		t.Errorf("cloud received %d readings after heal", u.received())
	}
}

func TestDecisionErrorsSurface(t *testing.T) {
	u := &fakeUplink{}
	n, _ := NewNode(Config{
		Uplink: u.forward,
		Decide: func(map[string]model.Reading, time.Time) []model.Command {
			return []model.Command{{Target: "v", Name: "open", Value: 1}}
		},
		Commands: func(model.Command) error { return errors.New("valve jammed") },
	})
	if _, err := n.RunDecision(t0); err == nil {
		t.Error("command failure swallowed")
	}
	if st := n.Stats(); st.CmdErrors != 1 {
		t.Errorf("stats = %+v", st)
	}
	bare, _ := NewNode(Config{Uplink: u.forward})
	if _, err := bare.RunDecision(t0); err == nil {
		t.Error("decision without decide func succeeded")
	}
}
