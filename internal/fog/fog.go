// Package fog implements the SWAMP farm-premises fog node. The paper's
// availability requirement (§III: "the availability of the platform must be
// provided even in case of Internet disconnections using local components
// (fog computing) to keep the platform running properly") maps to three
// responsibilities implemented here:
//
//  1. keep the freshest field state locally (LatestStore),
//  2. keep making irrigation decisions and driving local actuators while
//     the backhaul is down (RunDecision), and
//  3. buffer northbound telemetry in a bounded store-and-forward queue and
//     sync it to the cloud when connectivity returns (Flush).
package fog

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/model"
)

// UplinkFunc forwards one batch of readings to the cloud. It returns an
// error while the backhaul is down — the node treats any error as
// "partitioned, retry later".
type UplinkFunc func([]model.Reading) error

// DecisionFunc computes irrigation commands from the node's latest local
// view. It is invoked on the fog node, so it works during disconnections.
type DecisionFunc func(latest map[string]model.Reading, at time.Time) []model.Command

// CommandSink applies a command to a local actuator.
type CommandSink func(model.Command) error

// Config wires a Node.
type Config struct {
	// Uplink forwards batches cloudward (required).
	Uplink UplinkFunc
	// Decide computes local decisions; nil disables the decision loop.
	Decide DecisionFunc
	// Commands applies decisions to local actuators; required when Decide
	// is set.
	Commands CommandSink
	// QueueCap bounds the store-and-forward queue in batches (default
	// 4096). When full, the OLDEST batch is dropped — fresh state matters
	// more for irrigation than stale history.
	QueueCap int
	// MaxBatchesPerTrip coalesces up to this many queued batches into one
	// uplink call (default 1: one trip per batch). After a partition the
	// backlog can be thousands of batches and every trip costs a full
	// backhaul round trip, so syncing them in bulk shortens recovery by
	// the same factor.
	MaxBatchesPerTrip int
	// Metrics receives counters; nil allocates a private registry.
	Metrics *metrics.Registry
}

// Stats snapshot of the node's queue and traffic.
type Stats struct {
	Ingested  uint64
	Forwarded uint64
	Buffered  int
	Dropped   uint64
	Decisions uint64
	CmdErrors uint64
}

// Node is a fog node. Construct with NewNode. Safe for concurrent use.
type Node struct {
	cfg Config
	reg *metrics.Registry

	// flushMu serializes flushers so the queue has exactly one consumer;
	// the uplink call runs outside the state lock.
	flushMu sync.Mutex

	mu     sync.Mutex
	latest map[string]model.Reading // key: device/quantity(/depth)
	queue  [][]model.Reading
	stats  Stats
	online bool
}

// NewNode validates the config and builds a node. Nodes start optimistic
// (online) and discover partitions through uplink failures.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Uplink == nil {
		return nil, errors.New("fog: uplink is required")
	}
	if cfg.Decide != nil && cfg.Commands == nil {
		return nil, errors.New("fog: decision loop needs a command sink")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.MaxBatchesPerTrip <= 0 {
		cfg.MaxBatchesPerTrip = 1
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &Node{
		cfg:    cfg,
		reg:    cfg.Metrics,
		latest: make(map[string]model.Reading),
		online: true,
	}, nil
}

// Metrics returns the node's registry.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// seriesKey builds the latest-store key for a reading.
func seriesKey(r model.Reading) string {
	if r.Depth > 0 {
		return fmt.Sprintf("%s/%s/d%d", r.Device, r.Quantity, int(r.Depth*100+0.5))
	}
	return fmt.Sprintf("%s/%s", r.Device, r.Quantity)
}

// Ingest accepts a batch from the local sensor plane: it refreshes the
// local view, enqueues the batch for the cloud and opportunistically
// flushes. Invalid readings are skipped-and-counted (`fog.ingest.invalid`)
// rather than failing the batch — one poisoned reading must not discard its
// valid batchmates, mirroring the cloud ingestor's behaviour.
func (n *Node) Ingest(batch []model.Reading) error {
	if len(batch) == 0 {
		return nil
	}
	cp := make([]model.Reading, 0, len(batch))
	invalid := 0
	for _, r := range batch {
		if err := r.Validate(); err != nil {
			invalid++
			continue
		}
		cp = append(cp, r)
	}
	if invalid > 0 {
		n.reg.Counter("fog.ingest.invalid").Add(uint64(invalid))
	}
	if len(cp) == 0 {
		return nil
	}

	n.mu.Lock()
	for _, r := range cp {
		key := seriesKey(r)
		if cur, ok := n.latest[key]; !ok || r.At.After(cur.At) {
			n.latest[key] = r
		}
	}
	n.stats.Ingested += uint64(len(cp))
	n.queue = append(n.queue, cp)
	if len(n.queue) > n.cfg.QueueCap {
		drop := len(n.queue) - n.cfg.QueueCap
		n.stats.Dropped += uint64(drop)
		n.queue = append(n.queue[:0], n.queue[drop:]...)
		n.reg.Counter("fog.queue.dropped").Add(uint64(drop))
	}
	n.reg.Counter("fog.ingested").Add(uint64(len(cp)))
	n.mu.Unlock()

	n.Flush()
	return nil
}

// Flush drains the queue through the uplink until it empties or the uplink
// fails (partition), coalescing up to MaxBatchesPerTrip queued batches per
// uplink call. It returns how many ingested batches were forwarded.
func (n *Node) Flush() int {
	n.flushMu.Lock()
	defer n.flushMu.Unlock()
	sent := 0
	for {
		n.mu.Lock()
		k := len(n.queue)
		if k == 0 {
			n.mu.Unlock()
			return sent
		}
		if k > n.cfg.MaxBatchesPerTrip {
			k = n.cfg.MaxBatchesPerTrip
		}
		// Pop the head now; flushMu makes us the only consumer. On uplink
		// failure the head is pushed back, subject to the queue cap.
		head := make([][]model.Reading, k)
		copy(head, n.queue[:k])
		n.queue = n.queue[k:]
		n.mu.Unlock()

		payload := head[0]
		if k > 1 {
			total := 0
			for _, b := range head {
				total += len(b)
			}
			merged := make([]model.Reading, 0, total)
			for _, b := range head {
				merged = append(merged, b...)
			}
			payload = merged
		}

		if err := n.cfg.Uplink(payload); err != nil {
			n.mu.Lock()
			n.online = false
			n.queue = append(head, n.queue...)
			if over := len(n.queue) - n.cfg.QueueCap; over > 0 {
				n.stats.Dropped += uint64(over)
				n.queue = append(n.queue[:0:0], n.queue[over:]...)
				n.reg.Counter("fog.queue.dropped").Add(uint64(over))
			}
			n.mu.Unlock()
			n.reg.Counter("fog.uplink.fail").Inc()
			return sent
		}
		n.mu.Lock()
		n.online = true
		n.stats.Forwarded += uint64(len(payload))
		n.mu.Unlock()
		n.reg.Counter("fog.uplink.ok").Inc()
		n.reg.Counter("fog.uplink.batches").Add(uint64(k))
		sent += k
	}
}

// Online reports the node's last-known backhaul state.
func (n *Node) Online() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.online
}

// Latest returns a copy of the node's freshest reading per series.
func (n *Node) Latest() map[string]model.Reading {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]model.Reading, len(n.latest))
	for k, v := range n.latest {
		out[k] = v
	}
	return out
}

// RunDecision executes the local decision function against the current
// view and applies the resulting commands to local actuators. It works
// identically online and offline — that is the availability story.
func (n *Node) RunDecision(at time.Time) ([]model.Command, error) {
	if n.cfg.Decide == nil {
		return nil, errors.New("fog: no decision function configured")
	}
	cmds := n.cfg.Decide(n.Latest(), at)
	n.mu.Lock()
	n.stats.Decisions++
	n.mu.Unlock()
	n.reg.Counter("fog.decisions").Inc()
	for _, c := range cmds {
		if err := n.cfg.Commands(c); err != nil {
			n.mu.Lock()
			n.stats.CmdErrors++
			n.mu.Unlock()
			n.reg.Counter("fog.cmd.err").Inc()
			return cmds, fmt.Errorf("fog: applying %s to %s: %w", c.Name, c.Target, err)
		}
	}
	return cmds, nil
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.stats
	st.Buffered = len(n.queue)
	return st
}
