package agent

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/swamp-project/swamp/internal/metrics"
	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/mqtt"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/security/secchan"
)

// AttrSpec maps one UL short code to a quantity (and measurement depth for
// soil probes).
type AttrSpec struct {
	Quantity model.Quantity
	Depth    float64
}

// Provision registers one device with the agent: its descriptor, the NGSI
// entity it feeds, and its UL attribute dictionary.
type Provision struct {
	Desc       model.Descriptor
	EntityID   string
	EntityType string
	// AttrMap maps UL codes ("m", "t") to quantities.
	AttrMap map[string]AttrSpec
}

// Validate reports the first problem with the provision record.
func (p Provision) Validate() error {
	if err := p.Desc.Validate(); err != nil {
		return err
	}
	switch {
	case p.Desc.APIKey == "":
		return fmt.Errorf("agent: device %s: empty API key", p.Desc.ID)
	case p.EntityID == "":
		return fmt.Errorf("agent: device %s: empty entity id", p.Desc.ID)
	case p.EntityType == "":
		return fmt.Errorf("agent: device %s: empty entity type", p.Desc.ID)
	case len(p.AttrMap) == 0 && !p.Desc.Kind.IsActuator():
		return fmt.Errorf("agent: device %s: empty attribute map", p.Desc.ID)
	}
	return nil
}

// NGSIAttrName is the context attribute name for a spec: the quantity,
// suffixed with the depth in centimetres for below-ground measurements
// ("soilMoisture_d20").
func NGSIAttrName(s AttrSpec) string {
	if s.Depth > 0 {
		return fmt.Sprintf("%s_d%d", s.Quantity, int(s.Depth*100+0.5))
	}
	return string(s.Quantity)
}

// Config wires an Agent.
type Config struct {
	// Client is the agent's MQTT connection (already connected).
	Client *mqtt.Client
	// Context receives decoded measurements.
	Context *ngsi.Broker
	// KeyRing, if non-nil, requires every northbound payload to be a valid
	// secchan envelope (AAD = topic) and protects southbound commands the
	// same way.
	KeyRing *secchan.KeyRing
	// Replay guards sealed traffic; defaults to a fresh guard when KeyRing
	// is set.
	Replay *secchan.ReplayGuard
	// Metrics receives agent counters; nil allocates a private registry.
	Metrics *metrics.Registry
	// Logf receives diagnostics; nil means log.Printf.
	Logf func(format string, args ...any)
	// BatchInterval enables the batched ingest path: decoded measurements
	// are coalesced per entity and flushed to the context broker as
	// BatchUpdate calls on this cadence. Zero keeps the synchronous
	// per-message path.
	BatchInterval time.Duration
	// BatchMaxEntities flushes early once this many distinct entities are
	// pending (default 256). Only meaningful with BatchInterval > 0.
	BatchMaxEntities int
}

// Agent is the IoT agent. Construct with New, then Start. When batching is
// configured, call Stop to flush the northbound tail.
type Agent struct {
	cfg     Config
	reg     *metrics.Registry
	batcher *ngsi.Batcher

	mu      sync.RWMutex
	byID    map[model.DeviceID]*Provision
	byKeyID map[string]*Provision // apiKey+"/"+deviceID
	started bool
}

// Errors surfaced by the agent.
var (
	ErrUnknownDevice = errors.New("agent: unknown device")
	ErrBadAPIKey     = errors.New("agent: api key mismatch")
)

// New validates the config and builds an agent.
func New(cfg Config) (*Agent, error) {
	if cfg.Client == nil || cfg.Context == nil {
		return nil, fmt.Errorf("agent: client and context are required")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.KeyRing != nil && cfg.Replay == nil {
		cfg.Replay = secchan.NewReplayGuard()
	}
	a := &Agent{
		cfg:     cfg,
		reg:     cfg.Metrics,
		byID:    make(map[model.DeviceID]*Provision),
		byKeyID: make(map[string]*Provision),
	}
	if cfg.BatchInterval > 0 {
		okCtr := cfg.Metrics.Counter("agent.north.ok")
		errCtr := cfg.Metrics.Counter("agent.north.ctxerr")
		ba, err := ngsi.NewBatcher(ngsi.BatcherConfig{
			Broker:        cfg.Context,
			FlushInterval: cfg.BatchInterval,
			MaxEntities:   cfg.BatchMaxEntities,
			Metrics:       cfg.Metrics,
			// agent.north.ok counts northbound messages; with batching it
			// advances only once the measurements are visible in the
			// context broker, so WaitNorthbound keeps its meaning.
			OnFlush: func(fs ngsi.FlushStats) {
				if fs.Err != nil {
					errCtr.Add(uint64(fs.Updates))
					cfg.Logf("agent: batched context update (%d entities): %v", fs.Entities, fs.Err)
					return
				}
				okCtr.Add(uint64(fs.Updates))
			},
		})
		if err != nil {
			return nil, err
		}
		a.batcher = ba
	}
	return a, nil
}

// Stop flushes and stops the batched ingest path, if configured. The agent
// must not receive further northbound traffic afterwards. Idempotent.
func (a *Agent) Stop() {
	if a.batcher != nil {
		a.batcher.Close()
	}
}

// FlushNorthbound forces any coalesced-but-unflushed measurements into the
// context broker now. A no-op on the synchronous path.
func (a *Agent) FlushNorthbound() {
	if a.batcher != nil {
		a.batcher.Flush()
	}
}

// Metrics returns the agent's registry.
func (a *Agent) Metrics() *metrics.Registry { return a.reg }

// Provision registers a device. It may be called before or after Start.
func (a *Agent) Provision(p Provision) error {
	if err := p.Validate(); err != nil {
		return err
	}
	cp := p
	cp.AttrMap = make(map[string]AttrSpec, len(p.AttrMap))
	for k, v := range p.AttrMap {
		cp.AttrMap[k] = v
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.byID[p.Desc.ID]; dup {
		return fmt.Errorf("agent: device %s already provisioned", p.Desc.ID)
	}
	a.byID[p.Desc.ID] = &cp
	a.byKeyID[p.Desc.APIKey+"/"+string(p.Desc.ID)] = &cp
	a.reg.Counter("agent.provisioned").Inc()
	return nil
}

// Device returns the provision record for id.
func (a *Agent) Device(id model.DeviceID) (Provision, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	p := a.byID[id]
	if p == nil {
		return Provision{}, fmt.Errorf("%w: %s", ErrUnknownDevice, id)
	}
	return *p, nil
}

// Start subscribes to the northbound topic tree. Call once.
func (a *Agent) Start() error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return fmt.Errorf("agent: already started")
	}
	a.started = true
	a.mu.Unlock()
	_, err := a.cfg.Client.Subscribe(AttrsFilter, 1, a.onMeasure)
	if err != nil {
		return fmt.Errorf("agent: subscribe northbound: %w", err)
	}
	return nil
}

// onMeasure handles one northbound MQTT message.
func (a *Agent) onMeasure(msg mqtt.Message) {
	apiKey, devID, err := ParseAttrsTopic(msg.Topic)
	if err != nil {
		a.reg.Counter("agent.north.badtopic").Inc()
		return
	}
	a.mu.RLock()
	prov := a.byKeyID[apiKey+"/"+devID]
	a.mu.RUnlock()
	if prov == nil {
		// Unknown device or wrong API key — the unauthorized-node threat
		// of §III. Count and drop.
		a.reg.Counter("agent.north.unknown").Inc()
		return
	}

	payload := msg.Payload
	if a.cfg.KeyRing != nil {
		sender, seq, pt, err := a.cfg.KeyRing.Open(payload, []byte(msg.Topic))
		if err != nil {
			a.reg.Counter("agent.north.badseal").Inc()
			return
		}
		if sender != string(prov.Desc.ID) {
			a.reg.Counter("agent.north.badseal").Inc()
			return
		}
		if err := a.cfg.Replay.Check(sender, seq); err != nil {
			a.reg.Counter("agent.north.replay").Inc()
			return
		}
		payload = pt
	}

	values, err := DecodeUL(string(payload))
	if err != nil {
		a.reg.Counter("agent.north.baddecode").Inc()
		return
	}

	attrs := make(map[string]ngsi.Attribute, len(values))
	for code, v := range values {
		spec, ok := prov.AttrMap[code]
		if !ok {
			a.reg.Counter("agent.north.unknownattr").Inc()
			continue
		}
		attrs[NGSIAttrName(spec)] = ngsi.Attribute{
			Type:  "Number",
			Value: v,
			Metadata: map[string]string{
				"device": string(prov.Desc.ID),
				"owner":  string(prov.Desc.Owner),
			},
		}
	}
	if len(attrs) == 0 {
		return
	}
	if a.batcher != nil {
		// Batched ingest path: coalesce per entity, flush on the batcher's
		// cadence. agent.north.ok advances at flush time (see New).
		if err := a.batcher.Add(prov.EntityID, prov.EntityType, attrs); err != nil {
			a.reg.Counter("agent.north.ctxerr").Inc()
			a.cfg.Logf("agent: batch context update for %s: %v", prov.Desc.ID, err)
		}
		return
	}
	if err := a.cfg.Context.UpdateAttrs(prov.EntityID, prov.EntityType, attrs); err != nil {
		a.reg.Counter("agent.north.ctxerr").Inc()
		a.cfg.Logf("agent: context update for %s: %v", prov.Desc.ID, err)
		return
	}
	a.reg.Counter("agent.north.ok").Inc()
}

// SendCommand publishes a southbound actuator command over MQTT (QoS 1),
// sealed when a key ring is configured. The issuer must already be
// authorized by the PEP — the agent only transports.
func (a *Agent) SendCommand(cmd model.Command) error {
	if err := cmd.Validate(); err != nil {
		return err
	}
	a.mu.RLock()
	prov := a.byID[cmd.Target]
	a.mu.RUnlock()
	if prov == nil {
		return fmt.Errorf("%w: %s", ErrUnknownDevice, cmd.Target)
	}
	topic := CmdTopic(prov.Desc.APIKey, string(prov.Desc.ID))
	payload := []byte(EncodeCommand(string(cmd.Target), cmd.Name, cmd.Value))
	if a.cfg.KeyRing != nil {
		sealed, err := a.cfg.KeyRing.Seal("agent", payload, []byte(topic))
		if err != nil {
			return fmt.Errorf("agent: seal command: %w", err)
		}
		payload = sealed
	}
	if err := a.cfg.Client.Publish(topic, payload, 1, false); err != nil {
		a.reg.Counter("agent.south.err").Inc()
		return fmt.Errorf("agent: command to %s: %w", cmd.Target, err)
	}
	a.reg.Counter("agent.south.ok").Inc()
	return nil
}

// DeviceSender builds the SendFunc a simulated device uses to transmit its
// readings: UL-encode against the provision's dictionary, optionally seal,
// publish QoS 1 to the device's attrs topic over the given client.
func DeviceSender(prov Provision, client *mqtt.Client, ring *secchan.KeyRing) (func([]model.Reading) error, error) {
	if err := prov.Validate(); err != nil {
		return nil, err
	}
	// Reverse dictionary: (quantity, depth) -> code.
	type qd struct {
		q model.Quantity
		d int
	}
	rev := make(map[qd]string, len(prov.AttrMap))
	for code, spec := range prov.AttrMap {
		rev[qd{spec.Quantity, int(spec.Depth*100 + 0.5)}] = code
	}
	topic := AttrsTopic(prov.Desc.APIKey, string(prov.Desc.ID))

	return func(readings []model.Reading) error {
		values := make(map[string]float64, len(readings))
		for _, r := range readings {
			code, ok := rev[qd{r.Quantity, int(r.Depth*100 + 0.5)}]
			if !ok {
				continue // quantity not in this device's dictionary
			}
			values[code] = r.Value
		}
		if len(values) == 0 {
			return nil
		}
		payload := []byte(EncodeUL(values))
		if ring != nil {
			sealed, err := ring.Seal(string(prov.Desc.ID), payload, []byte(topic))
			if err != nil {
				return fmt.Errorf("agent: seal readings: %w", err)
			}
			payload = sealed
		}
		return client.Publish(topic, payload, 1, false)
	}, nil
}

// WaitNorthbound blocks until the agent has processed at least n
// northbound batches or the timeout elapses; used by integration tests and
// the scenario runner to synchronize.
func (a *Agent) WaitNorthbound(n uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if a.reg.Counter("agent.north.ok").Value() >= n {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}
