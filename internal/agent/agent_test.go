package agent

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/model"
	"github.com/swamp-project/swamp/internal/mqtt"
	"github.com/swamp-project/swamp/internal/ngsi"
	"github.com/swamp-project/swamp/internal/security/secchan"
	"github.com/swamp-project/swamp/internal/simnet"
)

// stack is a full northbound pipeline: MQTT broker + agent + NGSI.
type stack struct {
	broker *mqtt.Broker
	ctx    *ngsi.Broker
	agent  *Agent
}

func newStack(t *testing.T, ring *secchan.KeyRing) *stack {
	t.Helper()
	broker := mqtt.NewBroker(mqtt.BrokerConfig{})
	t.Cleanup(broker.Close)
	ctx := ngsi.NewBroker(ngsi.BrokerConfig{})
	t.Cleanup(ctx.Close)

	agentClient := dial(t, broker, "iot-agent")
	a, err := New(Config{Client: agentClient, Context: ctx, KeyRing: ring})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	return &stack{broker: broker, ctx: ctx, agent: a}
}

func dial(t *testing.T, b *mqtt.Broker, id string) *mqtt.Client {
	t.Helper()
	ct, st, cleanup, err := mqtt.NewSimPair(simnet.Config{}, id)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cleanup)
	b.AttachTransport(st)
	c, err := mqtt.Connect(ct, mqtt.ClientConfig{ClientID: id})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func probeProvision() Provision {
	return Provision{
		Desc: model.Descriptor{
			ID: "probe-1", Kind: model.KindSoilProbe, Owner: "farm1",
			APIKey: "k1", Depths: []float64{0.2, 0.5},
		},
		EntityID:   "urn:swamp:farm1:plot1",
		EntityType: "AgriParcel",
		AttrMap: map[string]AttrSpec{
			"m1": {Quantity: model.QSoilMoisture, Depth: 0.2},
			"m2": {Quantity: model.QSoilMoisture, Depth: 0.5},
			"b":  {Quantity: model.QBattery},
		},
	}
}

func TestProvisionValidation(t *testing.T) {
	s := newStack(t, nil)
	good := probeProvision()
	if err := s.agent.Provision(good); err != nil {
		t.Fatal(err)
	}
	if err := s.agent.Provision(good); err == nil {
		t.Error("duplicate provision accepted")
	}
	bad := probeProvision()
	bad.Desc.ID = "probe-2"
	bad.Desc.APIKey = ""
	if err := s.agent.Provision(bad); err == nil {
		t.Error("empty api key accepted")
	}
	bad = probeProvision()
	bad.Desc.ID = "probe-3"
	bad.EntityID = ""
	if err := s.agent.Provision(bad); err == nil {
		t.Error("empty entity accepted")
	}
	if _, err := s.agent.Device("probe-1"); err != nil {
		t.Error(err)
	}
	if _, err := s.agent.Device("ghost"); err == nil {
		t.Error("unknown device lookup succeeded")
	}
}

func TestNorthboundFlow(t *testing.T) {
	s := newStack(t, nil)
	if err := s.agent.Provision(probeProvision()); err != nil {
		t.Fatal(err)
	}
	dev := dial(t, s.broker, "probe-1")
	payload := EncodeUL(map[string]float64{"m1": 0.21, "m2": 0.27, "b": 0.93})
	if err := dev.Publish(AttrsTopic("k1", "probe-1"), []byte(payload), 1, false); err != nil {
		t.Fatal(err)
	}
	if !s.agent.WaitNorthbound(1, 2*time.Second) {
		t.Fatal("northbound batch not processed")
	}
	e, err := s.ctx.GetEntity("urn:swamp:farm1:plot1")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Attrs["soilMoisture_d20"].Float(); !ok || v != 0.21 {
		t.Errorf("d20 = %v", e.Attrs["soilMoisture_d20"].Value)
	}
	if v, ok := e.Attrs["soilMoisture_d50"].Float(); !ok || v != 0.27 {
		t.Errorf("d50 = %v", e.Attrs["soilMoisture_d50"].Value)
	}
	if e.Attrs["batteryLevel"].Metadata["owner"] != "farm1" {
		t.Error("owner metadata missing")
	}
}

func TestNorthboundRejectsUnknownAndWrongKey(t *testing.T) {
	s := newStack(t, nil)
	s.agent.Provision(probeProvision())
	dev := dial(t, s.broker, "rogue")

	// Unknown device id.
	dev.Publish(AttrsTopic("k1", "ghost"), []byte("m1|0.5"), 1, false)
	// Right device, wrong API key.
	dev.Publish(AttrsTopic("wrong", "probe-1"), []byte("m1|0.5"), 1, false)

	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if s.agent.Metrics().Counter("agent.north.unknown").Value() == 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.agent.Metrics().Counter("agent.north.unknown").Value(); got != 2 {
		t.Errorf("unknown counter = %d, want 2", got)
	}
	if s.ctx.EntityCount() != 0 {
		t.Error("rogue data reached the context broker")
	}
}

func TestNorthboundSealedFlow(t *testing.T) {
	ring := secchan.NewKeyRing()
	if _, err := ring.Generate("probe-1"); err != nil {
		t.Fatal(err)
	}
	s := newStack(t, ring)
	s.agent.Provision(probeProvision())
	dev := dial(t, s.broker, "probe-1")

	topic := AttrsTopic("k1", "probe-1")
	plain := []byte(EncodeUL(map[string]float64{"m1": 0.31}))
	sealed, err := ring.Seal("probe-1", plain, []byte(topic))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Publish(topic, sealed, 1, false); err != nil {
		t.Fatal(err)
	}
	if !s.agent.WaitNorthbound(1, 2*time.Second) {
		t.Fatal("sealed batch not processed")
	}

	// Plaintext on a sealed deployment is rejected.
	dev.Publish(topic, plain, 1, false)
	// Replay of the sealed envelope is rejected.
	dev.Publish(topic, sealed, 1, false)
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if s.agent.Metrics().Counter("agent.north.badseal").Value() >= 1 &&
			s.agent.Metrics().Counter("agent.north.replay").Value() >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s.agent.Metrics().Counter("agent.north.badseal").Value() < 1 {
		t.Error("plaintext accepted on sealed deployment")
	}
	if s.agent.Metrics().Counter("agent.north.replay").Value() < 1 {
		t.Error("replayed envelope accepted")
	}
	if got := s.agent.Metrics().Counter("agent.north.ok").Value(); got != 1 {
		t.Errorf("ok counter = %d, want 1", got)
	}
}

func TestSouthboundCommand(t *testing.T) {
	s := newStack(t, nil)
	valve := Provision{
		Desc: model.Descriptor{
			ID: "valve-1", Kind: model.KindValveActuator, Owner: "farm1", APIKey: "k2",
		},
		EntityID:   "urn:swamp:farm1:valve1",
		EntityType: "Device",
	}
	if err := s.agent.Provision(valve); err != nil {
		t.Fatal(err)
	}

	dev := dial(t, s.broker, "valve-1")
	var got atomic.Value
	if _, err := dev.Subscribe(CmdTopic("k2", "valve-1"), 1, func(m mqtt.Message) {
		got.Store(string(m.Payload))
	}); err != nil {
		t.Fatal(err)
	}
	cmd := model.Command{Target: "valve-1", Name: "open", Value: 0.8, Issuer: "farm1-farmer", At: time.Now()}
	if err := s.agent.SendCommand(cmd); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && got.Load() == nil {
		time.Sleep(2 * time.Millisecond)
	}
	if got.Load() == nil {
		t.Fatal("command not delivered")
	}
	dev2, name, v, err := DecodeCommand(got.Load().(string))
	if err != nil || dev2 != "valve-1" || name != "open" || v != 0.8 {
		t.Errorf("command decoded %q %q %g %v", dev2, name, v, err)
	}

	if err := s.agent.SendCommand(model.Command{Target: "ghost", Name: "x", Value: 1}); err == nil {
		t.Error("command to unknown device accepted")
	}
}

func TestDeviceSender(t *testing.T) {
	s := newStack(t, nil)
	prov := probeProvision()
	s.agent.Provision(prov)
	dev := dial(t, s.broker, "probe-1")
	send, err := DeviceSender(prov, dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	readings := []model.Reading{
		{Device: "probe-1", Quantity: model.QSoilMoisture, Value: 0.25, Depth: 0.2, At: now},
		{Device: "probe-1", Quantity: model.QSoilMoisture, Value: 0.29, Depth: 0.5, At: now},
		{Device: "probe-1", Quantity: model.QAirTemp, Value: 22, At: now}, // not in dictionary
	}
	if err := send(readings); err != nil {
		t.Fatal(err)
	}
	if !s.agent.WaitNorthbound(1, 2*time.Second) {
		t.Fatal("sender batch not processed")
	}
	e, _ := s.ctx.GetEntity(prov.EntityID)
	if v, _ := e.Attrs["soilMoisture_d20"].Float(); v != 0.25 {
		t.Errorf("d20 = %v", e.Attrs["soilMoisture_d20"].Value)
	}
	if _, found := e.Attrs["airTemperature"]; found {
		t.Error("undictionaried quantity leaked through")
	}
}

func TestNGSIAttrName(t *testing.T) {
	if got := NGSIAttrName(AttrSpec{Quantity: model.QSoilMoisture, Depth: 0.2}); got != "soilMoisture_d20" {
		t.Errorf("got %q", got)
	}
	if got := NGSIAttrName(AttrSpec{Quantity: model.QAirTemp}); got != "airTemperature" {
		t.Errorf("got %q", got)
	}
}
