// Package agent implements the SWAMP IoT agent — the stand-in for the
// FIWARE IoT Agent (UltraLight 2.0 flavour). It bridges the device world
// (short UL payloads on MQTT topics, per-device API keys, optional secchan
// envelopes) to the context world (NGSI entities and attributes), and
// routes southbound actuator commands back over MQTT.
package agent

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// EncodeUL renders a measurement map as an UltraLight 2.0 payload:
// "k1|v1|k2|v2", keys sorted for determinism.
func EncodeUL(values map[string]float64) string {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(k)
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(values[k], 'g', -1, 64))
	}
	return b.String()
}

// DecodeUL parses an UltraLight 2.0 payload into a measurement map.
func DecodeUL(s string) (map[string]float64, error) {
	if s == "" {
		return nil, fmt.Errorf("agent: empty UL payload")
	}
	parts := strings.Split(s, "|")
	if len(parts)%2 != 0 {
		return nil, fmt.Errorf("agent: UL payload with %d fields (odd)", len(parts))
	}
	out := make(map[string]float64, len(parts)/2)
	for i := 0; i < len(parts); i += 2 {
		key := parts[i]
		if key == "" {
			return nil, fmt.Errorf("agent: UL payload with empty key at field %d", i)
		}
		v, err := strconv.ParseFloat(parts[i+1], 64)
		if err != nil {
			return nil, fmt.Errorf("agent: UL value for %q: %w", key, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("agent: UL payload repeats key %q", key)
		}
		out[key] = v
	}
	return out, nil
}

// EncodeCommand renders a southbound command in UL command syntax:
// "device@name|value".
func EncodeCommand(deviceID, name string, value float64) string {
	return deviceID + "@" + name + "|" + strconv.FormatFloat(value, 'g', -1, 64)
}

// DecodeCommand parses "device@name|value".
func DecodeCommand(s string) (deviceID, name string, value float64, err error) {
	at := strings.IndexByte(s, '@')
	if at <= 0 {
		return "", "", 0, fmt.Errorf("agent: command %q missing device prefix", s)
	}
	deviceID = s[:at]
	rest := s[at+1:]
	bar := strings.IndexByte(rest, '|')
	if bar <= 0 || bar == len(rest)-1 {
		return "", "", 0, fmt.Errorf("agent: command %q missing name|value", s)
	}
	name = rest[:bar]
	value, err = strconv.ParseFloat(rest[bar+1:], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("agent: command value in %q: %w", s, err)
	}
	return deviceID, name, value, nil
}

// Topic layout, following the IoT Agent MQTT convention.

// AttrsTopic is the northbound measurement topic for a device.
func AttrsTopic(apiKey, deviceID string) string {
	return "ul/" + apiKey + "/" + deviceID + "/attrs"
}

// CmdTopic is the southbound command topic for a device.
func CmdTopic(apiKey, deviceID string) string {
	return "ul/" + apiKey + "/" + deviceID + "/cmd"
}

// AttrsFilter subscribes to every device's measurements.
const AttrsFilter = "ul/+/+/attrs"

// ParseAttrsTopic extracts (apiKey, deviceID) from an attrs topic.
func ParseAttrsTopic(topic string) (apiKey, deviceID string, err error) {
	parts := strings.Split(topic, "/")
	if len(parts) != 4 || parts[0] != "ul" || parts[3] != "attrs" {
		return "", "", fmt.Errorf("agent: %q is not an attrs topic", topic)
	}
	if parts[1] == "" || parts[2] == "" {
		return "", "", fmt.Errorf("agent: attrs topic %q with empty segment", topic)
	}
	return parts[1], parts[2], nil
}
