package agent

import (
	"testing"
	"time"

	"github.com/swamp-project/swamp/internal/mqtt"
	"github.com/swamp-project/swamp/internal/ngsi"
)

// newBatchedStack wires the northbound pipeline with the batched ingest
// path enabled.
func newBatchedStack(t *testing.T, interval time.Duration) *stack {
	t.Helper()
	broker := mqtt.NewBroker(mqtt.BrokerConfig{})
	t.Cleanup(broker.Close)
	ctx := ngsi.NewBroker(ngsi.BrokerConfig{})
	t.Cleanup(ctx.Close)

	agentClient := dial(t, broker, "iot-agent")
	a, err := New(Config{Client: agentClient, Context: ctx, BatchInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Stop)
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	return &stack{broker: broker, ctx: ctx, agent: a}
}

// TestBatchedNorthboundFlow: measurements reach the context broker through
// the coalescing path, and agent.north.ok advances only once they are
// visible.
func TestBatchedNorthboundFlow(t *testing.T) {
	s := newBatchedStack(t, time.Millisecond)
	if err := s.agent.Provision(probeProvision()); err != nil {
		t.Fatal(err)
	}
	dev := dial(t, s.broker, "probe-1")
	payload := EncodeUL(map[string]float64{"m1": 0.21, "m2": 0.27})
	if err := dev.Publish(AttrsTopic("k1", "probe-1"), []byte(payload), 1, false); err != nil {
		t.Fatal(err)
	}
	if !s.agent.WaitNorthbound(1, 2*time.Second) {
		t.Fatal("batched northbound not processed")
	}
	// WaitNorthbound returning means the flush already happened: the
	// entity must be visible without further waiting.
	e, err := s.ctx.GetEntity("urn:swamp:farm1:plot1")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Attrs["soilMoisture_d20"].Float(); !ok || v != 0.21 {
		t.Errorf("d20 = %v", e.Attrs["soilMoisture_d20"].Value)
	}
}

// TestBatchedNorthboundCoalesces: two messages for the same entity inside
// one window produce one batch flush whose update count still reflects
// both messages.
func TestBatchedNorthboundCoalesces(t *testing.T) {
	s := newBatchedStack(t, time.Hour) // flush manually
	if err := s.agent.Provision(probeProvision()); err != nil {
		t.Fatal(err)
	}
	dev := dial(t, s.broker, "probe-1")
	for _, payload := range []string{"m1|0.10", "m1|0.20|m2|0.30"} {
		if err := dev.Publish(AttrsTopic("k1", "probe-1"), []byte(payload), 1, false); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for both messages to be decoded and buffered.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) &&
		s.agent.Metrics().Counter("ngsi.batcher.added").Value() < 2 {
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.agent.Metrics().Counter("ngsi.batcher.added").Value(); got != 2 {
		t.Fatalf("buffered %d northbound messages, want 2", got)
	}
	// Both UL payloads landed on one pending entity; nothing flushed yet.
	if s.ctx.EntityCount() != 0 {
		t.Fatal("flushed before interval")
	}
	s.agent.FlushNorthbound()
	if !s.agent.WaitNorthbound(2, 2*time.Second) {
		t.Fatalf("ok counter = %d, want 2", s.agent.Metrics().Counter("agent.north.ok").Value())
	}
	e, err := s.ctx.GetEntity("urn:swamp:farm1:plot1")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Attrs["soilMoisture_d20"].Float(); v != 0.20 {
		t.Errorf("last write lost: d20 = %v", e.Attrs["soilMoisture_d20"].Value)
	}
	if v, _ := e.Attrs["soilMoisture_d50"].Float(); v != 0.30 {
		t.Errorf("d50 = %v", e.Attrs["soilMoisture_d50"].Value)
	}
	if got := s.agent.Metrics().Counter("ngsi.batcher.flushes").Value(); got != 1 {
		t.Errorf("flushes = %d, want 1", got)
	}
}
