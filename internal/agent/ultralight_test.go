package agent

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeUL(t *testing.T) {
	in := map[string]float64{"m": 0.23, "t": 25.5, "b": 0.9}
	s := EncodeUL(in)
	if s != "b|0.9|m|0.23|t|25.5" {
		t.Errorf("encoded %q", s)
	}
	out, err := DecodeUL(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out["m"] != 0.23 || out["t"] != 25.5 || out["b"] != 0.9 {
		t.Errorf("decoded %v", out)
	}
}

func TestDecodeULRejectsMalformed(t *testing.T) {
	for _, s := range []string{"", "m", "m|1|t", "m|abc", "|1", "m|1|m|2"} {
		if _, err := DecodeUL(s); err == nil {
			t.Errorf("DecodeUL(%q) succeeded", s)
		}
	}
}

// Property: encode→decode round-trips arbitrary finite measurement maps.
func TestULRoundTripProperty(t *testing.T) {
	f := func(keys []string, vals []float64) bool {
		in := make(map[string]float64)
		for i, k := range keys {
			if i >= len(vals) {
				break
			}
			k = strings.Map(func(r rune) rune {
				if r == '|' || r == 0 {
					return 'x'
				}
				return r
			}, k)
			if k == "" {
				continue
			}
			v := vals[i]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			in[k] = v
		}
		if len(in) == 0 {
			return true
		}
		out, err := DecodeUL(EncodeUL(in))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for k, v := range in {
			if out[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCommandRoundTrip(t *testing.T) {
	s := EncodeCommand("pivot-1", "setRate", 7.5)
	dev, name, v, err := DecodeCommand(s)
	if err != nil {
		t.Fatal(err)
	}
	if dev != "pivot-1" || name != "setRate" || v != 7.5 {
		t.Errorf("decoded %q %q %g", dev, name, v)
	}
	for _, bad := range []string{"", "noat|1", "@name|1", "dev@|1", "dev@name|", "dev@name|xyz", "dev@name"} {
		if _, _, _, err := DecodeCommand(bad); err == nil {
			t.Errorf("DecodeCommand(%q) succeeded", bad)
		}
	}
}

func TestTopics(t *testing.T) {
	top := AttrsTopic("key1", "dev1")
	if top != "ul/key1/dev1/attrs" {
		t.Errorf("attrs topic %q", top)
	}
	k, d, err := ParseAttrsTopic(top)
	if err != nil || k != "key1" || d != "dev1" {
		t.Errorf("parse: %q %q %v", k, d, err)
	}
	for _, bad := range []string{"", "ul/k/d/cmd", "x/k/d/attrs", "ul//d/attrs", "ul/k//attrs", "ul/k/d/e/attrs"} {
		if _, _, err := ParseAttrsTopic(bad); err == nil {
			t.Errorf("ParseAttrsTopic(%q) succeeded", bad)
		}
	}
	if CmdTopic("k", "d") != "ul/k/d/cmd" {
		t.Errorf("cmd topic %q", CmdTopic("k", "d"))
	}
}
