package config

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Source names where a knob's resolved value came from.
type Source string

// Provenance sources, in overlay order.
const (
	SourceDefault Source = "default"
	SourceFile    Source = "file"
	SourceEnv     Source = "env"
	SourceFlag    Source = "flag"
)

// Provenance maps knob name → the layer that set its resolved value.
type Provenance map[string]Source

// Loader resolves a layered configuration: declared defaults, then the
// config file, then SWAMP_* environment variables, then explicitly set
// command-line flags — last writer wins, tracked per knob. A Loader is
// reusable: Load re-reads the file and environment each call, which is
// exactly what a SIGHUP reload wants.
type Loader struct {
	// Path is the config file (TOML by default, JSON for .json). Empty
	// skips the file layer.
	Path string
	// Flags carries explicitly set command-line values; nil skips the
	// flag layer.
	Flags *FlagOverlay
	// Env looks up environment variables; nil means os.Getenv.
	Env func(string) string
}

// Load resolves the full configuration. On validation failure it still
// returns the resolved config (for error reporting) together with an
// Errors aggregate; on file read/parse failure the config is nil.
func (l *Loader) Load() (*Config, Provenance, error) {
	c := Default()
	prov := make(Provenance, len(Fields()))
	for _, f := range Fields() {
		prov[f.Name] = SourceDefault
	}
	var errs Errors

	if l.Path != "" {
		raw, err := os.ReadFile(l.Path)
		if err != nil {
			return nil, nil, fmt.Errorf("config: %w", err)
		}
		ferrs, err := applyFile(c, prov, l.Path, raw)
		if err != nil {
			return nil, nil, err
		}
		errs = append(errs, ferrs...)
	}

	getenv := l.Env
	if getenv == nil {
		getenv = os.Getenv
	}
	for _, f := range Fields() {
		raw := getenv(f.Env)
		if raw == "" {
			continue
		}
		if err := f.Set(c, raw); err != nil {
			errs = append(errs, FieldError{Name: f.Name, Err: fmt.Errorf("%s: %w", f.Env, err)})
			continue
		}
		prov[f.Name] = SourceEnv
	}

	if l.Flags != nil {
		l.Flags.apply(c, prov)
	}

	if verr := Validate(c); verr != nil {
		errs = append(errs, verr.(Errors)...)
	}
	return c, prov, errs.or()
}

// applyFile overlays one config file. Parse errors (unreadable syntax)
// abort; per-key problems (unknown keys, bad values) aggregate so the
// operator sees every mistake at once.
func applyFile(c *Config, prov Provenance, path string, raw []byte) (Errors, error) {
	var sections map[string]map[string]string
	if strings.EqualFold(filepath.Ext(path), ".json") {
		var doc map[string]map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			return nil, fmt.Errorf("config: %s: %w", path, err)
		}
		var errs Errors
		for _, section := range sortedKeys(doc) {
			for _, key := range sortedKeys(doc[section]) {
				name := section + "." + key
				if section == quotasSection {
					raw, ok := doc[section][key].(string)
					if !ok {
						errs = append(errs, FieldError{Name: name, Err: fmt.Errorf("quota specs are strings")})
						continue
					}
					setQuota(c, prov, key, raw)
					continue
				}
				f, ok := FieldByName(name)
				if !ok {
					errs = append(errs, FieldError{Name: name, Err: fmt.Errorf("unknown setting")})
					continue
				}
				if err := f.setAny(c, doc[section][key]); err != nil {
					errs = append(errs, FieldError{Name: name, Err: err})
					continue
				}
				prov[name] = SourceFile
			}
		}
		return errs, nil
	}
	sections, err := parseTOML(string(raw))
	if err != nil {
		return nil, fmt.Errorf("config: %s: %w", path, err)
	}
	var errs Errors
	for _, section := range sortedKeys(sections) {
		for _, key := range sortedKeys(sections[section]) {
			name := section + "." + key
			if section == quotasSection {
				setQuota(c, prov, key, sections[section][key])
				continue
			}
			f, ok := FieldByName(name)
			if !ok {
				errs = append(errs, FieldError{Name: name, Err: fmt.Errorf("unknown setting")})
				continue
			}
			if err := f.Set(c, sections[section][key]); err != nil {
				errs = append(errs, FieldError{Name: name, Err: err})
				continue
			}
			prov[name] = SourceFile
		}
	}
	return errs, nil
}

// setQuota records one [tenant.quotas] override. Spec syntax is not
// checked here — Validate aggregates ParseSpec failures with every other
// violation, so a bad spec reports alongside bad knobs.
func setQuota(c *Config, prov Provenance, id, spec string) {
	if c.Tenant.Quotas == nil {
		c.Tenant.Quotas = make(map[string]string)
	}
	c.Tenant.Quotas[id] = spec
	prov[quotasSection+"."+id] = SourceFile
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FlagOverlay binds the schema's knobs onto a flag.FlagSet: every knob
// with a flag tag is declared (typed, with its default and usage derived
// from the schema), and after parsing only the flags the user actually
// set overlay the config — an untouched flag never shadows a file or env
// value.
type FlagOverlay struct {
	fs      *flag.FlagSet
	scratch *Config
}

// RegisterFlags declares every schema knob as a flag on fs and returns
// the overlay to pass to Loader.Flags. Call before fs.Parse.
func RegisterFlags(fs *flag.FlagSet) *FlagOverlay {
	o := &FlagOverlay{fs: fs, scratch: Default()}
	for _, f := range Fields() {
		if f.Flag == "" {
			continue
		}
		fs.Var(&fieldFlag{f: f, c: o.scratch}, f.Flag, f.Usage)
	}
	return o
}

// fieldFlag adapts a schema field to flag.Value, parsing with the same
// type rules as the file and env layers.
type fieldFlag struct {
	f *Field
	c *Config
}

func (v *fieldFlag) String() string {
	if v.c == nil {
		return "" // flag package probes with a zero Value
	}
	if d, ok := v.f.Get(v.c).(fmt.Stringer); ok {
		return d.String()
	}
	return fmt.Sprint(v.f.Get(v.c))
}

func (v *fieldFlag) Set(s string) error { return v.f.Set(v.c, s) }

// IsBoolFlag lets bare -sealed work like the stdlib bool flags.
func (v *fieldFlag) IsBoolFlag() bool { return v.f.Kind == KindBool }

func (o *FlagOverlay) apply(c *Config, prov Provenance) {
	set := make(map[string]bool)
	o.fs.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
	for _, f := range Fields() {
		if f.Flag == "" || !set[f.Flag] {
			continue
		}
		f.value(c).Set(f.value(o.scratch))
		prov[f.Name] = SourceFlag
	}
}

// Describe renders the resolved config as aligned "name = value (source)"
// lines — the -config-check output.
func Describe(c *Config, prov Provenance) string {
	var b strings.Builder
	width := 0
	for _, f := range Fields() {
		if len(f.Name) > width {
			width = len(f.Name)
		}
	}
	for _, f := range Fields() {
		src := prov[f.Name]
		if src == "" {
			src = SourceDefault
		}
		fmt.Fprintf(&b, "%-*s = %-14s (%s)\n", width, f.Name, f.Format(c), src)
	}
	for _, id := range sortedKeys(c.Tenant.Quotas) {
		name := quotasSection + "." + id
		src := prov[name]
		if src == "" {
			src = SourceFile
		}
		fmt.Fprintf(&b, "%-*s = %-14s (%s)\n", width, name, fmt.Sprintf("%q", c.Tenant.Quotas[id]), src)
	}
	return b.String()
}
