package config

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeFile(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDefaultsValidate(t *testing.T) {
	if err := Validate(Default()); err != nil {
		t.Fatalf("declared defaults must validate: %v", err)
	}
}

func TestOverlayPrecedence(t *testing.T) {
	// File sets three knobs; env overrides one of them plus a fourth;
	// a flag overrides one of the env values. Last writer wins.
	path := writeFile(t, "swampd.toml", `
[mqtt]
flush_watermark = 1024
session_queue = 512

[timeseries]
retention = "48h"
`)
	env := map[string]string{
		"SWAMP_MQTT_FLUSH_WATERMARK": "2048",
		"SWAMP_WEBHOOKS_WORKERS":     "3",
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	overlay := RegisterFlags(fs)
	if err := fs.Parse([]string{"-mqtt-flush-watermark", "4096"}); err != nil {
		t.Fatal(err)
	}
	l := &Loader{Path: path, Flags: overlay, Env: func(k string) string { return env[k] }}
	c, prov, err := l.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	if got := c.MQTT.FlushWatermark; got != 4096 {
		t.Errorf("flush_watermark = %d, want 4096 (flag beats env beats file)", got)
	}
	if got := c.MQTT.SessionQueue; got != 512 {
		t.Errorf("session_queue = %d, want 512 (file)", got)
	}
	if got := c.Timeseries.Retention; got != 48*time.Hour {
		t.Errorf("retention = %s, want 48h (file)", got)
	}
	if got := c.Webhooks.Workers; got != 3 {
		t.Errorf("webhook workers = %d, want 3 (env)", got)
	}
	if got := c.MQTT.RouteCache; got != 4096 {
		t.Errorf("route_cache = %d, want default 4096", got)
	}

	wantProv := map[string]Source{
		"mqtt.flush_watermark": SourceFlag,
		"mqtt.session_queue":   SourceFile,
		"timeseries.retention": SourceFile,
		"webhooks.workers":     SourceEnv,
		"mqtt.route_cache":     SourceDefault,
	}
	for name, want := range wantProv {
		if got := prov[name]; got != want {
			t.Errorf("provenance[%s] = %s, want %s", name, got, want)
		}
	}
}

func TestUnsetFlagDoesNotShadowFile(t *testing.T) {
	path := writeFile(t, "swampd.toml", "[mqtt]\nsession_queue = 99\n")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	overlay := RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	c, _, err := (&Loader{Path: path, Flags: overlay, Env: func(string) string { return "" }}).Load()
	if err != nil {
		t.Fatal(err)
	}
	if c.MQTT.SessionQueue != 99 {
		t.Fatalf("session_queue = %d, want 99: declared-but-unset flag shadowed the file", c.MQTT.SessionQueue)
	}
}

func TestAggregatedErrors(t *testing.T) {
	// One unknown key, one unparseable value, one bounds violation, one
	// bad env var: all four must surface in a single error.
	path := writeFile(t, "swampd.toml", `
[mqtt]
bogus_knob = 1
session_queue = "not-a-number"

[timeseries]
chunk_size = 1
`)
	env := map[string]string{"SWAMP_WEBHOOKS_WORKERS": "zero"}
	c, _, err := (&Loader{Path: path, Env: func(k string) string { return env[k] }}).Load()
	if err == nil {
		t.Fatal("want aggregated error, got nil")
	}
	if c == nil {
		t.Fatal("config should still be returned alongside validation errors")
	}
	errs, ok := err.(Errors)
	if !ok {
		t.Fatalf("error type = %T, want Errors", err)
	}
	if len(errs) != 4 {
		t.Fatalf("got %d errors, want 4:\n%v", len(errs), err)
	}
	msg := err.Error()
	for _, frag := range []string{
		"mqtt.bogus_knob", "unknown setting",
		"mqtt.session_queue",
		"timeseries.chunk_size",
		"webhooks.workers", "SWAMP_WEBHOOKS_WORKERS",
	} {
		if !strings.Contains(msg, frag) {
			t.Errorf("aggregated error missing %q:\n%s", frag, msg)
		}
	}
}

func TestTOMLParser(t *testing.T) {
	src := `
# full-line comment
[server]
listen = "0.0.0.0:1883"   # trailing comment
pilot = "gua#spari"       # hash inside quotes survives
sealed = true

[log]
level = "debug"
`
	sections, err := parseTOML(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := sections["server"]["listen"]; got != "0.0.0.0:1883" {
		t.Errorf("listen = %q", got)
	}
	if got := sections["server"]["pilot"]; got != "gua#spari" {
		t.Errorf("pilot = %q, want hash preserved inside quotes", got)
	}
	if got := sections["server"]["sealed"]; got != "true" {
		t.Errorf("sealed = %q", got)
	}
	if got := sections["log"]["level"]; got != "debug" {
		t.Errorf("level = %q", got)
	}

	for _, bad := range []string{
		"key = 1",                      // key outside any section
		"[server]\nlisten = [1, 2]",    // array
		"[server]\nlisten = 'literal'", // literal string
		"[server]\nlisten = \"open",    // unterminated
		"[server]\nx = 1\nx = 2",       // duplicate key
		"[server\nlisten = \"a\"",      // malformed header
		"[server]\nbad key = 1",        // space in key
	} {
		if _, err := parseTOML(bad); err == nil {
			t.Errorf("parseTOML(%q) accepted invalid input", bad)
		}
	}
}

func TestJSONConfig(t *testing.T) {
	path := writeFile(t, "swampd.json", `{
  "mqtt": {"session_queue": 77, "flush_watermark": -1},
  "wal": {"snapshot_interval": "30s"},
  "server": {"sealed": true}
}`)
	c, prov, err := (&Loader{Path: path, Env: func(string) string { return "" }}).Load()
	if err != nil {
		t.Fatal(err)
	}
	if c.MQTT.SessionQueue != 77 || c.MQTT.FlushWatermark != -1 {
		t.Errorf("mqtt = %+v", c.MQTT)
	}
	if c.WAL.SnapshotInterval != 30*time.Second {
		t.Errorf("snapshot_interval = %s", c.WAL.SnapshotInterval)
	}
	if !c.Server.Sealed {
		t.Error("sealed not set from JSON bool")
	}
	if prov["wal.snapshot_interval"] != SourceFile {
		t.Errorf("provenance = %s", prov["wal.snapshot_interval"])
	}
}

func TestValidateReloadDynamicOnly(t *testing.T) {
	cur := Default()
	cand := Default()
	cand.MQTT.FlushWatermark = 1 << 20
	cand.Webhooks.Retry = time.Second
	dynamic, err := ValidateReload(cur, cand)
	if err != nil {
		t.Fatalf("dynamic-only reload rejected: %v", err)
	}
	want := map[string]bool{"mqtt.flush_watermark": true, "webhooks.retry_backoff": true}
	if len(dynamic) != len(want) {
		t.Fatalf("dynamic = %v, want %v", dynamic, want)
	}
	for _, name := range dynamic {
		if !want[name] {
			t.Errorf("unexpected dynamic field %s", name)
		}
	}
}

func TestValidateReloadRejectsStatic(t *testing.T) {
	cur := Default()
	cand := Default()
	cand.MQTT.FlushWatermark = 1 << 20 // dynamic — fine on its own
	cand.Timeseries.Shards = 32        // static — poisons the reload
	dynamic, err := ValidateReload(cur, cand)
	if err == nil {
		t.Fatal("static change must reject the reload")
	}
	if dynamic != nil {
		t.Fatalf("rejected reload must apply nothing, got dynamic=%v", dynamic)
	}
	if msg := err.Error(); !strings.Contains(msg, "timeseries.shards") || !strings.Contains(msg, "restart required") {
		t.Errorf("error should name the static field and demand a restart:\n%s", msg)
	}
}

func TestValidateReloadRejectsInvalidCandidate(t *testing.T) {
	cur := Default()
	cand := Default()
	cand.Webhooks.Workers = 0 // below min
	if _, err := ValidateReload(cur, cand); err == nil {
		t.Fatal("invalid candidate must reject the reload")
	}
}

func TestCrossFieldValidation(t *testing.T) {
	c := Default()
	c.HTTP.DefaultLimit = 5000 // exceeds query_cap 1000
	err := Validate(c)
	if err == nil || !strings.Contains(err.Error(), "http.query_cap") {
		t.Fatalf("cross-field violation not reported: %v", err)
	}

	c = Default()
	c.Timeseries.Retention = time.Minute
	c.Timeseries.EvictionInterval = time.Hour
	if err := Validate(c); err == nil {
		t.Fatal("eviction interval beyond retention window not reported")
	}

	c = Default()
	c.Cluster.MinISR = 2 // replicas defaults to 2: only 1 follower
	if err := Validate(c); err == nil || !strings.Contains(err.Error(), "cluster.min_isr") {
		t.Fatalf("min_isr beyond follower count not reported: %v", err)
	}

	c = Default()
	c.Cluster.NodeID = "n1" // no peers, no listen, no WAL dir
	err = Validate(c)
	if err == nil {
		t.Fatal("clustering without peers/listen/wal.dir not reported")
	}
	for _, want := range []string{"cluster.peers", "cluster.listen", "wal.dir"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing %s violation in %v", want, err)
		}
	}

	c = Default()
	c.Cluster.NodeID = "n1"
	c.Cluster.Peers = "n2=a:1,n3=b:1" // self absent
	c.Cluster.Listen = "127.0.0.1:0"
	c.WAL.Dir = t.TempDir()
	if err := Validate(c); err == nil || !strings.Contains(err.Error(), "must include this node") {
		t.Fatalf("peer list without self not reported: %v", err)
	}

	c.Cluster.Peers = "n1=a:1,n2=b:1,n3=c:1"
	if err := Validate(c); err != nil {
		t.Fatalf("valid cluster config rejected: %v", err)
	}
}

func TestOneofAndBounds(t *testing.T) {
	c := Default()
	c.Server.Mode = "peer-to-peer"
	if err := Validate(c); err == nil || !strings.Contains(err.Error(), "server.mode") {
		t.Fatalf("oneof violation not reported: %v", err)
	}

	f, ok := FieldByName("timeseries.chunk_size")
	if !ok {
		t.Fatal("missing field")
	}
	c = Default()
	if err := f.Set(c, "1"); err != nil {
		t.Fatal(err) // Set parses; bounds are a Validate concern
	}
	if err := Validate(c); err == nil {
		t.Fatal("chunk_size below min accepted")
	}
}

func TestDescribe(t *testing.T) {
	path := writeFile(t, "swampd.toml", "[mqtt]\nflush_watermark = 123\n")
	c, prov, err := (&Loader{Path: path, Env: func(string) string { return "" }}).Load()
	if err != nil {
		t.Fatal(err)
	}
	out := Describe(c, prov)
	if !strings.Contains(out, "mqtt.flush_watermark") || !strings.Contains(out, "(file)") {
		t.Errorf("Describe missing file-sourced knob:\n%s", out)
	}
	if !strings.Contains(out, "(default)") {
		t.Errorf("Describe missing default-sourced knobs:\n%s", out)
	}
	// Every schema field appears exactly once.
	for _, f := range Fields() {
		if !strings.Contains(out, f.Name+" ") && !strings.Contains(out, f.Name+"=") && !strings.Contains(out, f.Name) {
			t.Errorf("Describe missing %s", f.Name)
		}
	}
}

func TestEnvNamesDerived(t *testing.T) {
	f, ok := FieldByName("mqtt.flush_watermark")
	if !ok {
		t.Fatal("missing field")
	}
	if f.Env != "SWAMP_MQTT_FLUSH_WATERMARK" {
		t.Fatalf("env name = %s", f.Env)
	}
}

func TestDynamicSetMatchesIssueList(t *testing.T) {
	want := map[string]bool{
		"mqtt.session_queue":     true,
		"mqtt.flush_watermark":   true,
		"mqtt.route_cache":       true,
		"timeseries.retention":   true,
		"wal.snapshot_interval":  true,
		"webhooks.workers":       true,
		"webhooks.retry_backoff": true,
		"http.query_cap":         true,
		"cluster.ack_timeout":    true,
		"cluster.max_ready_lag":  true,
		// The whole tenant admission plane is dynamic: quota retuning
		// under load is the reload path's primary use case (PR 10).
		"tenant.enabled":                   true,
		"tenant.default_msgs_per_sec":      true,
		"tenant.default_bytes_per_sec":     true,
		"tenant.default_inflight":          true,
		"tenant.default_subscriptions":     true,
		"tenant.default_webhook_share_pct": true,
		"tenant.burst":                     true,
		"tenant.metrics_topk":              true,
	}
	got := map[string]bool{}
	for _, f := range Fields() {
		if f.Dynamic {
			got[f.Name] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("dynamic fields = %v, want %v", got, want)
	}
	for name := range want {
		if !got[name] {
			t.Errorf("field %s not marked dynamic", name)
		}
	}
}

func TestMissingFileIsError(t *testing.T) {
	if _, _, err := (&Loader{Path: "/nonexistent/swampd.toml"}).Load(); err == nil {
		t.Fatal("missing config file silently ignored")
	}
}
